(* The paper's pitch for Paxi (§4, Fig. 5) is that a developer only
   fills in two shaded blocks — the message structures and the replica
   logic — and inherits networking, quorums, the datastore, the
   benchmarker and the checkers. This example makes that concrete: a
   complete primary-backup replication protocol in ~80 lines, then
   driven by the shared benchmark runner and validated with the shared
   linearizability checker.

   (Primary-backup is NOT fault tolerant — if any backup is down,
   writes stall; that's the point of the consensus protocols in
   lib/protocols. It is, however, linearizable while everyone is up.)

   dune exec examples/custom_protocol.exe *)

open Paxi_benchmark

module Primary_backup = struct
  (* Block 1: the messages. *)
  type message =
    | Replicate of { seq : int; cmd : Command.t; client : Address.t }
    | Ack of { seq : int }

  (* Block 2: the replica. *)
  type replica = {
    env : message Proto.env;
    exec : Executor.t;
    mutable next_seq : int;
    (* primary: commands awaiting acks from every backup *)
    waiting : (int, Command.t * Address.t * Quorum.t) Hashtbl.t;
  }

  let name = "primary-backup"
  let cpu_factor _ = 1.0
  let message_label = function Replicate _ -> "Replicate" | Ack _ -> "Ack"

  let create env =
    { env; exec = Executor.create (); next_seq = 0; waiting = Hashtbl.create 32 }

  let primary = 0
  let is_primary t = t.env.Proto.id = primary

  let reply t ~client ~cmd ~read =
    t.env.Proto.reply client
      { Proto.command = cmd; read; replier = t.env.Proto.id; leader_hint = Some primary }

  let on_request t ~client (request : Proto.request) =
    let cmd = request.Proto.command in
    if not (is_primary t) then t.env.Proto.forward primary ~client request
    else if Command.is_read cmd then
      (* reads are served at the primary, which has every acked write *)
      reply t ~client ~cmd ~read:(Executor.execute t.exec cmd)
    else begin
      (* writes replicate to ALL backups before answering *)
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      let everyone = List.init t.env.Proto.n Fun.id in
      let quorum =
        Quorum.create (Quorum.Count { members = everyone; threshold = t.env.Proto.n })
      in
      Quorum.ack quorum primary;
      Hashtbl.replace t.waiting seq (cmd, client, quorum);
      t.env.Proto.broadcast (Replicate { seq; cmd; client })
    end

  let on_message t ~src = function
    | Replicate { seq; cmd; _ } ->
        ignore (Executor.execute t.exec cmd);
        t.env.Proto.send src (Ack { seq })
    | Ack { seq } -> (
        match Hashtbl.find_opt t.waiting seq with
        | None -> ()
        | Some (cmd, client, quorum) ->
            Quorum.ack quorum src;
            if Quorum.satisfied quorum then begin
              Hashtbl.remove t.waiting seq;
              let read = Executor.execute t.exec cmd in
              reply t ~client ~cmd ~read
            end)

  let on_start _ = ()
  let on_recover _ = ()
  let leader_of_key _ _ = Some primary
  let executor t = t.exec
end

let () =
  (* Drive it with the shared benchmark runner on a 5-node LAN... *)
  let spec =
    Runner.spec ~warmup_ms:500.0 ~duration_ms:5_000.0 ~collect_history:true
      ~config:(Config.default ~n_replicas:5)
      ~topology:(Topology.lan ~n_replicas:5 ())
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:8 Workload.default ]
      ()
  in
  let result = Runner.run (module Primary_backup) spec in
  Printf.printf "primary-backup: %.0f ops/s, mean %.3f ms, p99 %.3f ms\n"
    result.Runner.throughput_rps
    (Stats.mean result.Runner.latency)
    (Stats.percentile result.Runner.latency 99.0);

  (* ... and validate it with the shared checker. *)
  let anomalies = Linearizability.check result.Runner.history in
  Printf.printf "linearizable: %s\n"
    (if anomalies = [] then "yes" else Printf.sprintf "NO (%d)" (List.length anomalies));

  (* Writes wait for ALL nodes, so one crashed backup stalls them —
     exactly the availability gap consensus closes. *)
  let stall_spec =
    Runner.spec ~warmup_ms:500.0 ~duration_ms:5_000.0 ~max_retries:1
      ~faults:(fun f ->
        Faults.crash f ~node:(Address.replica 4) ~from_ms:1_000.0
          ~duration_ms:60_000.0)
      ~config:(Config.default ~n_replicas:5)
      ~topology:(Topology.lan ~n_replicas:5 ())
      ~client_specs:
        [ Runner.clients ~target:(Runner.Fixed 0) ~count:4
            { Workload.default with Workload.write_ratio = 1.0 } ]
      ()
  in
  let stalled = Runner.run (module Primary_backup) stall_spec in
  Printf.printf
    "with one backup down: %.0f ops/s (%d abandoned) — compare paxos, which \
     rides out a minority crash\n"
    stalled.Runner.throughput_rps stalled.Runner.gave_up
