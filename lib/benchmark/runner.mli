(** Benchmark runner (§4.2 Benchmarker): drives a protocol deployment
    — one consensus group, or K sharded groups behind a key
    partitioner — with closed- or open-loop clients generating a
    {!Workload}, measures per-request latency and aggregate + per-shard
    throughput over a measured window, optionally collects the full
    operation history for the offline checkers, and sweeps concurrency
    or arrival rate to find saturation (Fig. 7/9). *)

type target =
  | Nearest  (** the client's in-region replica (default) *)
  | Fixed of int
  | Round_robin

type arrival = Arrival.t =
  | Closed
  | Open of { rate_per_sec : float }
  | Bursty of { rate_per_sec : float; on_ms : float; off_ms : float }
      (** see {!Arrival}: closed loop paces on replies, the open-loop
          models pace on their own Poisson / on-off modulated clock *)

type sharding = {
  shards : int;  (** number of independent consensus groups, K *)
  partition : Paxi_shard.Partitioner.kind;
}
(** Deployment-level sharding: the runner builds K groups of
    [config.n_replicas] replicas each over one shared simulator and
    fault plane, and routes every command by key. The partitioned key
    space is the union of the client specs' declared ranges. *)

type client_spec = {
  region : Region.t option;
  count : int;  (** number of clients with this spec *)
  target : target;
  arrival : arrival;
  workload : Workload.t;
}

val clients :
  ?region:Region.t ->
  ?target:target ->
  ?arrival:arrival ->
  count:int ->
  Workload.t ->
  client_spec

type spec = {
  config : Config.t;
  topology : Topology.t;
  client_specs : client_spec list;
  warmup_ms : float;
  duration_ms : float;  (** measured window, after warmup *)
  cooldown_ms : float;  (** extra drain time before the run ends *)
  max_retries : int;  (** client retries before giving up a command *)
  collect_history : bool;
  check_consensus : bool;
      (** compare per-key histories across replicas at the end (per
          group, in a sharded deployment) *)
  faults : (Faults.t -> unit) option;  (** fault schedule installer *)
  sharding : sharding option;
      (** [None] (default) is the classic single-group deployment,
          byte-identical to the pre-shard runner; [Some _] with
          [shards = 1] performs the same event/draw sequence *)
}

val spec :
  ?warmup_ms:float ->
  ?duration_ms:float ->
  ?cooldown_ms:float ->
  ?max_retries:int ->
  ?collect_history:bool ->
  ?check_consensus:bool ->
  ?faults:(Faults.t -> unit) ->
  ?sharding:sharding ->
  config:Config.t ->
  topology:Topology.t ->
  client_specs:client_spec list ->
  unit ->
  spec

type shard_stat = {
  shard_completed : int;  (** in-window completions owned by the shard *)
  shard_throughput_rps : float;
  shard_latency : Stats.t;
  shard_leader : int;
      (** the group's busiest replica — its de-facto leader under
          leader-based protocols *)
  shard_leader_busy_ms : float;  (** that replica's queue occupancy *)
}

type result = {
  throughput_rps : float;  (** completed ops/sec in the window *)
  latency : Stats.t;  (** per-request latency (ms) in the window *)
  read_latency : Stats.t;
      (** in-window [Get] latencies only — the read-path sweeps compare
          this against [write_latency] to price a fast read *)
  write_latency : Stats.t;  (** in-window write latencies only *)
  per_region : (Region.t * Stats.t) list;
  shard_stats : shard_stat array;
      (** per-shard series, length = deployment shards (1 when
          unsharded: entry 0 then mirrors the aggregate) *)
  completed : int;  (** total completed ops, including warmup *)
  gave_up : int;  (** ops abandoned after [max_retries] *)
  history : Linearizability.op list;  (** empty unless collected *)
  consensus_violations : Consensus_check.violation list;
  busiest_node_busy_ms : float;
  busiest_node : int;
  messages_sent : int;
  sim_events : int;  (** simulator events executed during the run *)
  sim_events_inlined : int;
      (** subset of [sim_events] run inline at their arrival site by
          the collapsed-delivery fast path, never entering the heap *)
  retransmits : int;
      (** message copies re-sent by the reliable-delivery layer's
          backoff timers (0 unless [Config.retransmit] is set) *)
  dup_drops : int;
      (** duplicate explicit-ack payloads suppressed at receivers *)
  recoveries : int;
      (** crash-recovery edges completed: fresh replica instances
          booted from durable state. 0 on memory-only deployments,
          where crashes are transport-level pauses *)
  replay_ms_total : float;
      (** simulated time spent replaying durable logs at recovery
          edges, summed over every recovery *)
  timers_cancelled : int;
      (** pending timer events mass-cancelled at crash edges *)
  storage_writes : int;  (** records appended across all devices *)
  storage_fsyncs : int;  (** fsync operations serviced *)
  storage_busy_ms : float;
      (** total device occupancy servicing fsyncs;
          [storage_busy_ms /. storage_fsyncs] is the measured mean
          fsync latency compared against the model term *)
  storage_lost_writes : int;
      (** records lost to crashes before their fsync completed *)
  allocated_bytes : float;
      (** GC-reported bytes allocated by this domain across the event
          loop ([Gc.allocated_bytes] delta around [Sim.run_until]) —
          the hot path's allocation bill, excluding setup/teardown *)
  bytes_per_event : float;
      (** [allocated_bytes] per event fired during the loop; the
          allocation-regression figure pinned in tests and gated in CI *)
  trace : Paxi_obs.Trace.t;
      (** the latency-dissection trace (shard 0's, in a sharded
          deployment), windowed to the measured interval; disabled
          unless [config.tracing] *)
}

val run : (module Proto.RUNNABLE) -> spec -> result

val derive_seed : root:int -> int -> int
(** [derive_seed ~root i] hashes a stable point identity [i] (an index
    or a structural hash of the point's parameters) into a simulation
    seed. Points seeded this way give the same result no matter which
    domain runs them or in what order, which is what keeps pooled
    sweeps byte-identical to sequential ones. *)

val run_many :
  ?pool:Paxi_exec.Pool.t ->
  ((module Proto.RUNNABLE) * spec) list ->
  result list
(** Run every (protocol, spec) point — each an independent simulation
    seeded by its own [spec.config.seed] — across the pool's domains
    (default: the shared [PAXI_JOBS]-sized pool). Results come back in
    input order and are identical to mapping {!run} sequentially. *)

val saturation_sweep :
  ?pool:Paxi_exec.Pool.t ->
  (module Proto.RUNNABLE) ->
  make_spec:(concurrency:int -> spec) ->
  concurrencies:int list ->
  (int * result) list
(** One independent run per concurrency level, fanned out across the
    pool; the caller plots latency against throughput, as the paper's
    performance tier does by raising client concurrency until
    throughput stops growing. *)
