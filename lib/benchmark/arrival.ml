type t =
  | Closed
  | Open of { rate_per_sec : float }
  | Bursty of { rate_per_sec : float; on_ms : float; off_ms : float }

let validate = function
  | Closed -> Ok ()
  | Open { rate_per_sec } ->
      if rate_per_sec > 0.0 then Ok () else Error "open-loop rate must be > 0"
  | Bursty { rate_per_sec; on_ms; off_ms } ->
      if rate_per_sec <= 0.0 then Error "bursty rate must be > 0"
      else if on_ms <= 0.0 then Error "bursty on_ms must be > 0"
      else if off_ms < 0.0 then Error "bursty off_ms must be >= 0"
      else Ok ()

let rate_per_sec = function
  | Closed -> None
  | Open { rate_per_sec } | Bursty { rate_per_sec; _ } -> Some rate_per_sec

let describe = function
  | Closed -> "closed"
  | Open { rate_per_sec } -> Printf.sprintf "poisson(%.0f/s)" rate_per_sec
  | Bursty { rate_per_sec; on_ms; off_ms } ->
      Printf.sprintf "bursty(%.0f/s avg, %.0f/%.0f ms on/off)" rate_per_sec
        on_ms off_ms

(* The burst-window rate that preserves the requested long-run average:
   all arrivals are squeezed into the on fraction of each cycle. *)
let burst_rate ~rate_per_sec ~on_ms ~off_ms =
  rate_per_sec *. (on_ms +. off_ms) /. on_ms

let next_gap_ms t ~rng ~now_ms =
  match t with
  | Closed -> invalid_arg "Arrival.next_gap_ms: closed loops have no clock"
  | Open { rate_per_sec } ->
      Rng.exponential rng ~rate:(rate_per_sec /. 1000.0)
  | Bursty { rate_per_sec; on_ms; off_ms } ->
      (* On/off modulated (interrupted) Poisson: exponential gaps at the
         burst rate, with the off windows excised from the timeline.
         The exponential's memorylessness lets a draw that overruns the
         current on window carry its residual into the next one, so one
         draw per arrival suffices regardless of how many off windows
         it crosses. Phase is anchored at virtual time 0: cycle i is on
         during [i*(on+off), i*(on+off)+on). *)
      let cycle = on_ms +. off_ms in
      let rate = burst_rate ~rate_per_sec ~on_ms ~off_ms /. 1000.0 in
      let gap = Rng.exponential rng ~rate in
      let pos = Float.rem now_ms cycle in
      (* wait out the current off window (only possible for the very
         first tick, whose start jitter may land there) *)
      let wait = ref (if pos < on_ms then 0.0 else cycle -. pos) in
      let p = ref (if pos < on_ms then pos else 0.0) in
      let g = ref gap in
      while !p +. !g > on_ms do
        wait := !wait +. (on_ms -. !p) +. off_ms;
        g := !g -. (on_ms -. !p);
        p := 0.0
      done;
      !wait +. !g
