(** Pluggable client arrival models. The legacy closed loop waits for
    each reply before issuing the next command (throughput is then set
    by concurrency, the paper's sweep mode); open-loop models issue on
    their own clock regardless of outstanding replies, which is what a
    production front door does — offered load keeps arriving whether or
    not the system keeps up, so saturation shows as unbounded queueing
    rather than a throughput plateau. *)

type t =
  | Closed  (** next request issues when the previous one resolves *)
  | Open of { rate_per_sec : float }
      (** Poisson arrivals: i.i.d. exponential inter-arrival gaps with
          mean [1000 / rate_per_sec] ms — the analytic model's arrival
          assumption (§3.2) *)
  | Bursty of { rate_per_sec : float; on_ms : float; off_ms : float }
      (** On/off modulated Poisson: the same long-run average rate, but
          all arrivals are squeezed into periodic on windows ([on_ms]
          every [on_ms + off_ms]), so the instantaneous rate during a
          burst is [rate * (on+off)/on]. Models diurnal spikes and
          thundering herds. *)

val validate : t -> (unit, string) result

val rate_per_sec : t -> float option
(** Long-run average arrival rate; [None] for [Closed]. *)

val describe : t -> string

val burst_rate : rate_per_sec:float -> on_ms:float -> off_ms:float -> float
(** Instantaneous in-burst rate of the bursty model (exposed for
    tests and capacity math). *)

val next_gap_ms : t -> rng:Rng.t -> now_ms:float -> float
(** Milliseconds from [now_ms] until the next arrival. Draws exactly
    one exponential per call for both open-loop models ([Bursty]
    carries residual gaps across off windows by memorylessness, and
    deterministically skips the off part of each cycle). Raises
    [Invalid_argument] on [Closed], which has no arrival clock. *)
