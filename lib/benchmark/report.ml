let widths header rows =
  let all = header :: rows in
  let cols = List.length header in
  List.init cols (fun c ->
      List.fold_left
        (fun acc row ->
          match List.nth_opt row c with
          | Some cell -> Stdlib.max acc (String.length cell)
          | None -> acc)
        0 all)

let pad width s = s ^ String.make (Stdlib.max 0 (width - String.length s)) ' '

let table ~header ~rows ppf =
  let ws = widths header rows in
  let render row =
    List.mapi (fun c cell -> pad (List.nth ws c) cell) row
    |> String.concat "  "
  in
  Format.fprintf ppf "%s@." (render header);
  Format.fprintf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') ws));
  List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) rows

let print_table ~header ~rows =
  table ~header ~rows Format.std_formatter;
  Format.print_flush ()

(* RFC-4180: a cell containing a comma, double quote, CR or LF is
   wrapped in double quotes, with embedded quotes doubled. Emitting
   such cells raw used to shift every following column. *)
let csv_cell s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv ~header ~rows =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let csv_parse text =
  let n = String.length text in
  let rows = ref [] and row = ref [] in
  let cell = Buffer.create 32 in
  let flush_cell () =
    row := Buffer.contents cell :: !row;
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  let at_row_start = ref true in
  while !i < n do
    (match text.[!i] with
    | '"' ->
        (* quoted cell: consume to the closing quote, "" unescapes *)
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then closed := true
          else if text.[!i] = '"' then
            if !i + 1 < n && text.[!i + 1] = '"' then begin
              Buffer.add_char cell '"';
              i := !i + 2
            end
            else begin
              incr i;
              closed := true
            end
          else begin
            Buffer.add_char cell text.[!i];
            incr i
          end
        done;
        at_row_start := false
    | ',' ->
        flush_cell ();
        at_row_start := false;
        incr i
    | '\r' ->
        (* CRLF or lone CR both end the row *)
        flush_row ();
        at_row_start := true;
        incr i;
        if !i < n && text.[!i] = '\n' then incr i
    | '\n' ->
        flush_row ();
        at_row_start := true;
        incr i
    | c ->
        Buffer.add_char cell c;
        at_row_start := false;
        incr i)
  done;
  (* trailing cell without a final newline *)
  if (not !at_row_start) || Buffer.length cell > 0 || !row <> [] then
    flush_row ();
  List.rev !rows

let fms x =
  if Float.is_nan x || not (Float.is_finite x) then "-"
  else Printf.sprintf "%.3f" x

let frate x =
  if Float.is_nan x || not (Float.is_finite x) then "-"
  else Printf.sprintf "%.0f" x

let section title =
  let rule = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title rule
