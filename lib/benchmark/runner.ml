type target = Nearest | Fixed of int | Round_robin

type arrival = Closed | Open of { rate_per_sec : float }

type client_spec = {
  region : Region.t option;
  count : int;
  target : target;
  arrival : arrival;
  workload : Workload.t;
}

let clients ?region ?(target = Nearest) ?(arrival = Closed) ~count workload =
  { region; count; target; arrival; workload }

type spec = {
  config : Config.t;
  topology : Topology.t;
  client_specs : client_spec list;
  warmup_ms : float;
  duration_ms : float;
  cooldown_ms : float;
  max_retries : int;
  collect_history : bool;
  check_consensus : bool;
  faults : (Faults.t -> unit) option;
}

let spec ?(warmup_ms = 1_000.0) ?(duration_ms = 10_000.0)
    ?(cooldown_ms = 1_000.0) ?(max_retries = 10) ?(collect_history = false)
    ?(check_consensus = false) ?faults ~config ~topology ~client_specs () =
  {
    config;
    topology;
    client_specs;
    warmup_ms;
    duration_ms;
    cooldown_ms;
    max_retries;
    collect_history;
    check_consensus;
    faults;
  }

type result = {
  throughput_rps : float;
  latency : Stats.t;
  read_latency : Stats.t;
  write_latency : Stats.t;
  per_region : (Region.t * Stats.t) list;
  completed : int;
  gave_up : int;
  history : Linearizability.op list;
  consensus_violations : Consensus_check.violation list;
  busiest_node_busy_ms : float;
  busiest_node : int;
  messages_sent : int;
  sim_events : int;
  sim_events_inlined : int;
  retransmits : int;
  dup_drops : int;
  allocated_bytes : float;
  bytes_per_event : float;
  trace : Paxi_obs.Trace.t;
}

let kind_of_op (op : Command.op) (read : Command.value option) =
  match op with
  | Command.Put (_, v) -> Linearizability.Write v
  | Command.Delete _ -> Linearizability.Del
  | Command.Get _ -> Linearizability.Read read

let run (module P : Proto.RUNNABLE) spec =
  let module C = Cluster.Make (P) in
  let faults = Faults.create () in
  (match spec.faults with Some install -> install faults | None -> ());
  let cluster =
    C.create ~faults ~config:spec.config ~topology:spec.topology ()
  in
  let sim = C.sim cluster in
  let n = spec.config.Config.n_replicas in
  let window_start = spec.warmup_ms in
  let window_end = spec.warmup_ms +. spec.duration_ms in
  let horizon = window_end +. spec.cooldown_ms in
  Paxi_obs.Trace.set_window (C.trace cluster) ~from_ms:window_start
    ~until_ms:window_end;
  let latency = Stats.create () in
  let read_latency = Stats.create () in
  let write_latency = Stats.create () in
  let per_region : (Region.t * Stats.t) list ref = ref [] in
  let region_stats region =
    match List.find_opt (fun (r, _) -> Region.equal r region) !per_region with
    | Some (_, s) -> s
    | None ->
        let s = Stats.create () in
        per_region := (region, s) :: !per_region;
        s
  in
  let completed = ref 0 in
  let in_window = ref 0 in
  let gave_up = ref 0 in
  let history = ref [] in
  let next_client_id = ref 0 in
  let start_client cspec =
    let cid = !next_client_id in
    incr next_client_id;
    (match cspec.region with
    | Some region -> C.register_client cluster ~id:cid ~region ()
    | None -> C.register_client cluster ~id:cid ());
    let region = Topology.region_of spec.topology (Address.client cid) in
    (* [config.read_ratio] overrides every client's workload mix so a
       sweep can turn one knob; [None] leaves the specs untouched *)
    let workload =
      match spec.config.Config.read_ratio with
      | Some _ as r -> { cspec.workload with Workload.read_ratio = r }
      | None -> cspec.workload
    in
    let gen =
      Workload.generator workload ~rng:(Rng.split (Sim.rng sim)) ~client:cid
    in
    let rr = ref 0 in
    let pick_target ~attempt =
      match cspec.target with
      | Fixed r -> (r + attempt) mod n
      | Nearest ->
          if attempt = 0 then C.nearest_replica cluster ~client:cid
          else (C.nearest_replica cluster ~client:cid + attempt) mod n
      | Round_robin ->
          incr rr;
          (!rr + attempt) mod n
    in
    let op_counter = ref 0 in
    (* [issue ~continue] sends one command; [continue] fires once the
       command resolves (closed loop chains the next request there;
       open loop passes a no-op, pacing on a Poisson clock instead). *)
    let issue ~continue =
      let now = Sim.now sim in
      if now < window_end then begin
        let id = !op_counter in
        incr op_counter;
        let op = Workload.next_op gen ~now_ms:now in
        let command = Command.make ~id ~client:cid op in
        let invoked = now in
        let rec attempt_send attempt =
          let on_reply (reply : Proto.reply) =
            let responded = Sim.now sim in
            incr completed;
            if invoked >= window_start && responded <= window_end then begin
              incr in_window;
              let l = responded -. invoked in
              Stats.add latency l;
              Stats.add
                (if Command.is_read command then read_latency else write_latency)
                l;
              Stats.add (region_stats region) l
            end;
            if spec.collect_history then
              history :=
                {
                  Linearizability.client = cid;
                  op_id = id;
                  key = Command.key command;
                  kind = kind_of_op op reply.Proto.read;
                  invoked_ms = invoked;
                  responded_ms = responded;
                }
                :: !history;
            continue ()
          in
          C.submit cluster ~client:cid
            ~target:(pick_target ~attempt)
            ~command ~on_reply;
          ignore
          @@ Sim.schedule_after sim ~delay:spec.config.Config.client_timeout_ms
               (fun () ->
                 if C.pending cluster ~client:cid ~command then
                   if attempt < spec.max_retries then attempt_send (attempt + 1)
                   else begin
                     C.give_up cluster ~client:cid ~command;
                     incr gave_up;
                     continue ()
                   end)
        in
        attempt_send 0
      end
    in
    let jitter = Rng.float (Sim.rng sim) 5.0 in
    match cspec.arrival with
    | Closed ->
        (* Stagger client start a little to avoid lock-step *)
        let rec closed_loop () = issue ~continue:closed_loop in
        ignore (Sim.schedule_at sim ~time:jitter (fun () -> closed_loop ()))
    | Open { rate_per_sec } ->
        let rng = Rng.split (Sim.rng sim) in
        let rec tick () =
          if Sim.now sim < window_end then begin
            issue ~continue:(fun () -> ());
            let gap = Rng.exponential rng ~rate:(rate_per_sec /. 1000.0) in
            ignore (Sim.schedule_after sim ~delay:gap tick)
          end
        in
        ignore (Sim.schedule_at sim ~time:jitter (fun () -> tick ()))
  in
  List.iter
    (fun cspec ->
      for _ = 1 to cspec.count do
        start_client cspec
      done)
    spec.client_specs;
  (* Allocation accounting brackets exactly the event loop: the delta
     divided by events fired is the hot path's bytes/event figure
     gated in CI. [Gc.allocated_bytes] is per-domain, and [run]
     executes wholly on one domain even under [run_many]'s pool. *)
  let alloc_before = Gc.allocated_bytes () in
  let events_before = Sim.events_fired sim in
  Sim.run_until sim horizon;
  let allocated_bytes = Gc.allocated_bytes () -. alloc_before in
  let loop_events = Sim.events_fired sim - events_before in
  let consensus_violations =
    if spec.check_consensus then begin
      let state_machines =
        List.init n (fun i ->
            (i, Executor.state_machine (P.executor (C.replica cluster i))))
      in
      (* keys touched: union across nodes *)
      let keys = Hashtbl.create 64 in
      List.iter
        (fun (_, sm) ->
          List.iter
            (fun k -> if k >= 0 then Hashtbl.replace keys k ())
            (Kv.keys (State_machine.store sm)))
        state_machines;
      Consensus_check.check ~state_machines
        ~keys:(Hashtbl.fold (fun k () acc -> k :: acc) keys [])
    end
    else []
  in
  let busiest_node, busiest_node_busy_ms =
    let best = ref (0, 0.0) in
    for i = 0 to n - 1 do
      let b = C.replica_busy_ms cluster i in
      if b > snd !best then best := (i, b)
    done;
    !best
  in
  let messages_sent, _, _ = C.message_counts cluster in
  let retransmits, dup_drops = C.retransmit_counts cluster in
  {
    throughput_rps = float_of_int !in_window /. (spec.duration_ms /. 1000.0);
    latency;
    read_latency;
    write_latency;
    per_region = List.rev !per_region;
    completed = !completed;
    gave_up = !gave_up;
    history = List.rev !history;
    consensus_violations;
    busiest_node_busy_ms;
    busiest_node;
    messages_sent;
    sim_events = Sim.events_fired sim;
    sim_events_inlined = Sim.events_inlined sim;
    retransmits;
    dup_drops;
    allocated_bytes;
    bytes_per_event = allocated_bytes /. float_of_int (max 1 loop_events);
    trace = C.trace cluster;
  }

(* Stable per-point seed, splittable from a fixed root: every
   experiment point owns a seed that depends only on the root and the
   point's identity, never on which domain runs it or in what order —
   the invariant that makes pooled sweeps byte-identical to
   sequential ones. (murmur-style finalizer, 30-bit output) *)
let derive_seed ~root index =
  let mix h =
    let h = h lxor (h lsr 16) in
    let h = h * 0x85EBCA6B land max_int in
    let h = h lxor (h lsr 13) in
    let h = h * 0xC2B2AE35 land max_int in
    h lxor (h lsr 16)
  in
  mix (mix (index + 0x9E3779B9) lxor root) land 0x3FFFFFFF

let run_many ?pool points =
  Paxi_exec.Parmap.map ?pool
    (fun ((p : (module Proto.RUNNABLE)), spec) -> run p spec)
    points

let saturation_sweep ?pool p ~make_spec ~concurrencies =
  let results =
    Paxi_exec.Parmap.map ?pool
      (fun c -> run p (make_spec ~concurrency:c))
      concurrencies
  in
  List.combine concurrencies results
