type target = Nearest | Fixed of int | Round_robin

type arrival = Arrival.t =
  | Closed
  | Open of { rate_per_sec : float }
  | Bursty of { rate_per_sec : float; on_ms : float; off_ms : float }

type sharding = { shards : int; partition : Paxi_shard.Partitioner.kind }

type client_spec = {
  region : Region.t option;
  count : int;
  target : target;
  arrival : arrival;
  workload : Workload.t;
}

let clients ?region ?(target = Nearest) ?(arrival = Closed) ~count workload =
  { region; count; target; arrival; workload }

type spec = {
  config : Config.t;
  topology : Topology.t;
  client_specs : client_spec list;
  warmup_ms : float;
  duration_ms : float;
  cooldown_ms : float;
  max_retries : int;
  collect_history : bool;
  check_consensus : bool;
  faults : (Faults.t -> unit) option;
  sharding : sharding option;
}

let spec ?(warmup_ms = 1_000.0) ?(duration_ms = 10_000.0)
    ?(cooldown_ms = 1_000.0) ?(max_retries = 10) ?(collect_history = false)
    ?(check_consensus = false) ?faults ?sharding ~config ~topology
    ~client_specs () =
  {
    config;
    topology;
    client_specs;
    warmup_ms;
    duration_ms;
    cooldown_ms;
    max_retries;
    collect_history;
    check_consensus;
    faults;
    sharding;
  }

type shard_stat = {
  shard_completed : int;
  shard_throughput_rps : float;
  shard_latency : Stats.t;
  shard_leader : int;
  shard_leader_busy_ms : float;
}

type result = {
  throughput_rps : float;
  latency : Stats.t;
  read_latency : Stats.t;
  write_latency : Stats.t;
  per_region : (Region.t * Stats.t) list;
  shard_stats : shard_stat array;
  completed : int;
  gave_up : int;
  history : Linearizability.op list;
  consensus_violations : Consensus_check.violation list;
  busiest_node_busy_ms : float;
  busiest_node : int;
  messages_sent : int;
  sim_events : int;
  sim_events_inlined : int;
  retransmits : int;
  dup_drops : int;
  recoveries : int;
  replay_ms_total : float;
  timers_cancelled : int;
  storage_writes : int;
  storage_fsyncs : int;
  storage_busy_ms : float;
  storage_lost_writes : int;
  allocated_bytes : float;
  bytes_per_event : float;
  trace : Paxi_obs.Trace.t;
}

let kind_of_op (op : Command.op) (read : Command.value option) =
  match op with
  | Command.Put (_, v) -> Linearizability.Write v
  | Command.Delete _ -> Linearizability.Del
  | Command.Get _ -> Linearizability.Read read

(* What [drive] needs from a deployment — one cluster or K sharded
   groups. The classic path wraps [Cluster.Make] with [shards = 1] and
   a constant route, so the driving loop below is shared verbatim and
   the unsharded event/draw sequence stays byte-identical to the
   pre-shard runner. *)
module type DEPLOY = sig
  type t

  val sim : t -> Sim.t
  val shards : t -> int
  val route : t -> key:int -> int
  val register_client : t -> id:int -> ?region:Region.t -> unit -> unit
  val nearest_replica : t -> shard:int -> client:int -> int

  val submit :
    t ->
    shard:int ->
    client:int ->
    target:int ->
    command:Command.t ->
    on_reply:(Proto.reply -> unit) ->
    unit

  val pending : t -> shard:int -> client:int -> command:Command.t -> bool
  val give_up : t -> shard:int -> client:int -> command:Command.t -> unit
  val set_window : t -> from_ms:float -> until_ms:float -> unit
  val trace : t -> Paxi_obs.Trace.t
  val consensus_violations : t -> Consensus_check.violation list
  val busiest : t -> int * float
  val shard_leader_load : t -> shard:int -> int * float
  val message_counts : t -> int * int * int
  val retransmit_counts : t -> int * int
  val recovery_counts : t -> int * float * int
  val storage_totals : t -> int * int * float * int
end

let drive (type d) (module D : DEPLOY with type t = d) (dep : d) spec =
  let sim = D.sim dep in
  let n = spec.config.Config.n_replicas in
  let nshards = D.shards dep in
  let window_start = spec.warmup_ms in
  let window_end = spec.warmup_ms +. spec.duration_ms in
  let horizon = window_end +. spec.cooldown_ms in
  D.set_window dep ~from_ms:window_start ~until_ms:window_end;
  let latency = Stats.create () in
  let read_latency = Stats.create () in
  let write_latency = Stats.create () in
  let shard_latency = Array.init nshards (fun _ -> Stats.create ()) in
  let shard_in_window = Array.make nshards 0 in
  let per_region : (Region.t * Stats.t) list ref = ref [] in
  let region_stats region =
    match List.find_opt (fun (r, _) -> Region.equal r region) !per_region with
    | Some (_, s) -> s
    | None ->
        let s = Stats.create () in
        per_region := (region, s) :: !per_region;
        s
  in
  let completed = ref 0 in
  let in_window = ref 0 in
  let gave_up = ref 0 in
  let history = ref [] in
  let next_client_id = ref 0 in
  let start_client cspec =
    let cid = !next_client_id in
    incr next_client_id;
    (match cspec.region with
    | Some region -> D.register_client dep ~id:cid ~region ()
    | None -> D.register_client dep ~id:cid ());
    let region = Topology.region_of spec.topology (Address.client cid) in
    (* [config.read_ratio] overrides every client's workload mix so a
       sweep can turn one knob; [None] leaves the specs untouched *)
    let workload =
      match spec.config.Config.read_ratio with
      | Some _ as r -> { cspec.workload with Workload.read_ratio = r }
      | None -> cspec.workload
    in
    let gen =
      Workload.generator workload ~rng:(Rng.split (Sim.rng sim)) ~client:cid
    in
    let rr = ref 0 in
    let pick_target ~shard ~attempt =
      match cspec.target with
      | Fixed r -> (r + attempt) mod n
      | Nearest ->
          if attempt = 0 then D.nearest_replica dep ~shard ~client:cid
          else (D.nearest_replica dep ~shard ~client:cid + attempt) mod n
      | Round_robin ->
          incr rr;
          (!rr + attempt) mod n
    in
    let op_counter = ref 0 in
    (* [issue ~continue] sends one command; [continue] fires once the
       command resolves (closed loop chains the next request there;
       open loop passes a no-op, pacing on an arrival clock instead). *)
    let issue ~continue =
      let now = Sim.now sim in
      if now < window_end then begin
        let id = !op_counter in
        incr op_counter;
        let op = Workload.next_op gen ~now_ms:now in
        let command = Command.make ~id ~client:cid op in
        (* routing is pure arithmetic: no RNG, no events *)
        let shard = D.route dep ~key:(Command.key command) in
        let invoked = now in
        let rec attempt_send attempt =
          let on_reply (reply : Proto.reply) =
            let responded = Sim.now sim in
            incr completed;
            if invoked >= window_start && responded <= window_end then begin
              incr in_window;
              shard_in_window.(shard) <- shard_in_window.(shard) + 1;
              let l = responded -. invoked in
              Stats.add latency l;
              Stats.add
                (if Command.is_read command then read_latency else write_latency)
                l;
              Stats.add (region_stats region) l;
              Stats.add shard_latency.(shard) l
            end;
            if spec.collect_history then
              history :=
                {
                  Linearizability.client = cid;
                  op_id = id;
                  key = Command.key command;
                  kind = kind_of_op op reply.Proto.read;
                  invoked_ms = invoked;
                  responded_ms = responded;
                }
                :: !history;
            continue ()
          in
          D.submit dep ~shard ~client:cid
            ~target:(pick_target ~shard ~attempt)
            ~command ~on_reply;
          ignore
          @@ Sim.schedule_after sim ~delay:spec.config.Config.client_timeout_ms
               (fun () ->
                 if D.pending dep ~shard ~client:cid ~command then
                   if attempt < spec.max_retries then attempt_send (attempt + 1)
                   else begin
                     D.give_up dep ~shard ~client:cid ~command;
                     incr gave_up;
                     continue ()
                   end)
        in
        attempt_send 0
      end
    in
    let jitter = Rng.float (Sim.rng sim) 5.0 in
    match cspec.arrival with
    | Closed ->
        (* Stagger client start a little to avoid lock-step *)
        let rec closed_loop () = issue ~continue:closed_loop in
        ignore (Sim.schedule_at sim ~time:jitter (fun () -> closed_loop ()))
    | (Open _ | Bursty _) as arrival ->
        let rng = Rng.split (Sim.rng sim) in
        let rec tick () =
          if Sim.now sim < window_end then begin
            issue ~continue:(fun () -> ());
            let gap = Arrival.next_gap_ms arrival ~rng ~now_ms:(Sim.now sim) in
            ignore (Sim.schedule_after sim ~delay:gap tick)
          end
        in
        ignore (Sim.schedule_at sim ~time:jitter (fun () -> tick ()))
  in
  List.iter
    (fun cspec ->
      (match Arrival.validate cspec.arrival with
      | Ok () -> ()
      | Error e -> invalid_arg ("Runner.run: " ^ e));
      for _ = 1 to cspec.count do
        start_client cspec
      done)
    spec.client_specs;
  (* Allocation accounting brackets exactly the event loop: the delta
     divided by events fired is the hot path's bytes/event figure
     gated in CI. [Gc.allocated_bytes] is per-domain, and [run]
     executes wholly on one domain even under [run_many]'s pool. *)
  let alloc_before = Gc.allocated_bytes () in
  let events_before = Sim.events_fired sim in
  Sim.run_until sim horizon;
  let allocated_bytes = Gc.allocated_bytes () -. alloc_before in
  let loop_events = Sim.events_fired sim - events_before in
  let consensus_violations =
    if spec.check_consensus then D.consensus_violations dep else []
  in
  let busiest_node, busiest_node_busy_ms = D.busiest dep in
  let messages_sent, _, _ = D.message_counts dep in
  let retransmits, dup_drops = D.retransmit_counts dep in
  let recoveries, replay_ms_total, timers_cancelled = D.recovery_counts dep in
  let storage_writes, storage_fsyncs, storage_busy_ms, storage_lost_writes =
    D.storage_totals dep
  in
  let shard_stats =
    Array.init nshards (fun s ->
        let shard_leader, shard_leader_busy_ms =
          D.shard_leader_load dep ~shard:s
        in
        {
          shard_completed = shard_in_window.(s);
          shard_throughput_rps =
            float_of_int shard_in_window.(s) /. (spec.duration_ms /. 1000.0);
          shard_latency = shard_latency.(s);
          shard_leader;
          shard_leader_busy_ms;
        })
  in
  {
    throughput_rps = float_of_int !in_window /. (spec.duration_ms /. 1000.0);
    latency;
    read_latency;
    write_latency;
    per_region = List.rev !per_region;
    shard_stats;
    completed = !completed;
    gave_up = !gave_up;
    history = List.rev !history;
    consensus_violations;
    busiest_node_busy_ms;
    busiest_node;
    messages_sent;
    sim_events = Sim.events_fired sim;
    sim_events_inlined = Sim.events_inlined sim;
    retransmits;
    dup_drops;
    recoveries;
    replay_ms_total;
    timers_cancelled;
    storage_writes;
    storage_fsyncs;
    storage_busy_ms;
    storage_lost_writes;
    allocated_bytes;
    bytes_per_event = allocated_bytes /. float_of_int (max 1 loop_events);
    trace = D.trace dep;
  }

(* union of keys touched by any of the group's state machines *)
let touched_keys state_machines =
  let keys = Hashtbl.create 64 in
  List.iter
    (fun (_, sm) ->
      List.iter
        (fun k -> if k >= 0 then Hashtbl.replace keys k ())
        (Kv.keys (State_machine.store sm)))
    state_machines;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []

let partitioner_of spec sh =
  (* the partitioned key space is the union of every client spec's
     declared key range; hash partitioning ignores the bounds *)
  let lo, hi =
    List.fold_left
      (fun (lo, hi) c ->
        ( Int.min lo c.workload.Workload.min_key,
          Int.max hi (c.workload.Workload.min_key + c.workload.Workload.keys) ))
      (max_int, min_int) spec.client_specs
  in
  let lo, hi = if lo > hi then (0, sh.shards) else (lo, hi) in
  Paxi_shard.Partitioner.make sh.partition ~shards:sh.shards ~min_key:lo
    ~keys:(hi - lo)

let run (module P : Proto.RUNNABLE) spec =
  match spec.sharding with
  | None ->
      let module C = Cluster.Make (P) in
      let faults = Faults.create () in
      (match spec.faults with Some install -> install faults | None -> ());
      let cluster =
        C.create ~faults ~config:spec.config ~topology:spec.topology ()
      in
      let n = spec.config.Config.n_replicas in
      let module D = struct
        type t = C.t

        let sim = C.sim
        let shards _ = 1
        let route _ ~key:_ = 0
        let register_client = C.register_client
        let nearest_replica c ~shard:_ ~client = C.nearest_replica c ~client
        let submit c ~shard:_ = C.submit c
        let pending c ~shard:_ = C.pending c
        let give_up c ~shard:_ = C.give_up c

        let set_window c ~from_ms ~until_ms =
          Paxi_obs.Trace.set_window (C.trace c) ~from_ms ~until_ms

        let trace = C.trace

        let consensus_violations c =
          let state_machines =
            List.init n (fun i ->
                (i, Executor.state_machine (P.executor (C.replica c i))))
          in
          Consensus_check.check ~state_machines
            ~keys:(touched_keys state_machines)

        let busiest c =
          let best = ref (0, 0.0) in
          for i = 0 to n - 1 do
            let b = C.replica_busy_ms c i in
            if b > snd !best then best := (i, b)
          done;
          !best

        let shard_leader_load c ~shard:_ = busiest c
        let message_counts = C.message_counts
        let retransmit_counts = C.retransmit_counts

        let recovery_counts c =
          (C.recoveries c, C.replay_ms_total c, C.timers_cancelled c)

        let storage_totals = C.storage_totals
      end in
      drive (module D) cluster spec
  | Some sh ->
      let module S = Paxi_shard.Shard.Make (P) in
      let faults = Faults.create () in
      (match spec.faults with Some install -> install faults | None -> ());
      let partitioner = partitioner_of spec sh in
      let t =
        S.create ~faults ~config:spec.config ~topology:spec.topology
          ~partitioner ()
      in
      let n = spec.config.Config.n_replicas in
      let module D = struct
        type t = S.t

        let sim = S.sim
        let shards = S.shards
        let route = S.route
        let register_client = S.register_client
        let nearest_replica = S.nearest_replica
        let submit = S.submit
        let pending = S.pending
        let give_up = S.give_up
        let set_window = S.set_window
        let trace t = S.trace t ~shard:0

        let consensus_violations t =
          List.concat
            (List.init (S.shards t) (fun shard ->
                 let state_machines =
                   List.init n (fun i ->
                       ( i,
                         Executor.state_machine
                           (P.executor (S.replica t ~shard i)) ))
                 in
                 Consensus_check.check ~state_machines
                   ~keys:(touched_keys state_machines)))

        let busiest t =
          let best = ref (0, 0.0) in
          for s = 0 to S.shards t - 1 do
            let i, b = S.busiest_in_shard t ~shard:s in
            if b > snd !best then best := (i, b)
          done;
          !best

        let shard_leader_load t ~shard = S.busiest_in_shard t ~shard
        let message_counts = S.message_counts
        let retransmit_counts = S.retransmit_counts

        (* sum per-group counters across the K co-located groups *)
        module C = Cluster.Make (P)

        let fold_groups t f init =
          let acc = ref init in
          for s = 0 to S.shards t - 1 do
            acc := f !acc (S.group t s)
          done;
          !acc

        let recovery_counts t =
          fold_groups t
            (fun (r, ms, tc) g ->
              ( r + C.recoveries g,
                ms +. C.replay_ms_total g,
                tc + C.timers_cancelled g ))
            (0, 0.0, 0)

        let storage_totals t =
          fold_groups t
            (fun (w, f, b, l) g ->
              let w', f', b', l' = C.storage_totals g in
              (w + w', f + f', b +. b', l + l'))
            (0, 0, 0.0, 0)
      end in
      drive (module D) t spec

(* Stable per-point seed, splittable from a fixed root: every
   experiment point owns a seed that depends only on the root and the
   point's identity, never on which domain runs it or in what order —
   the invariant that makes pooled sweeps byte-identical to
   sequential ones. (murmur-style finalizer, 30-bit output) *)
let derive_seed ~root index =
  let mix h =
    let h = h lxor (h lsr 16) in
    let h = h * 0x85EBCA6B land max_int in
    let h = h lxor (h lsr 13) in
    let h = h * 0xC2B2AE35 land max_int in
    h lxor (h lsr 16)
  in
  mix (mix (index + 0x9E3779B9) lxor root) land 0x3FFFFFFF

let run_many ?pool points =
  Paxi_exec.Parmap.map ?pool
    (fun ((p : (module Proto.RUNNABLE)), spec) -> run p spec)
    points

let saturation_sweep ?pool p ~make_spec ~concurrencies =
  let results =
    Paxi_exec.Parmap.map ?pool
      (fun c -> run p (make_spec ~concurrency:c))
      concurrencies
  in
  List.combine concurrencies results
