type kind =
  | Write of Command.value
  | Del
  | Read of Command.value option

type op = {
  client : int;
  op_id : int;
  key : Command.key;
  kind : kind;
  invoked_ms : float;
  responded_ms : float;
}

type anomaly = { read : op; reason : string }

let is_mutation o = match o.kind with Write _ | Del -> true | Read _ -> false

(* A stale-read witness: a mutation [w'] distinct from the dictating
   write that definitely linearizes after it ([w'] began after the
   dictating write responded) and definitely before the read ([w']
   responded before the read was invoked). *)
let stale_witness mutations ~dict_resp ~read_inv =
  List.find_opt
    (fun w' -> w'.invoked_ms >= dict_resp && w'.responded_ms <= read_inv)
    mutations

let check_read mutations r =
  match r.kind with
  | Write _ | Del -> None
  | Read (Some v) -> (
      (* ANY write of [v] whose interval permits the read can dictate
         it. With duplicate written values, fixing on the first write
         of [v] would wrongly flag a read dictated by a later rewrite
         of the same value. *)
      let candidates =
        List.filter
          (fun o -> match o.kind with Write v' -> v' = v | _ -> false)
          mutations
      in
      match candidates with
      | [] ->
          Some { read = r; reason = Printf.sprintf "value %d never written" v }
      | _ -> (
          let in_time =
            List.filter (fun w -> w.invoked_ms <= r.responded_ms) candidates
          in
          let witness_for w =
            stale_witness
              (List.filter (fun o -> not (o == w)) mutations)
              ~dict_resp:w.responded_ms ~read_inv:r.invoked_ms
          in
          match in_time with
          | [] ->
              Some
                {
                  read = r;
                  reason =
                    Printf.sprintf
                      "future read: write of %d began after read ended" v;
                }
          | _ ->
              if List.exists (fun w -> witness_for w = None) in_time then None
              else
                (* every candidate is overwritten before the read; cite
                   the witness of the latest-responding one *)
                let w =
                  List.fold_left
                    (fun a b -> if b.responded_ms > a.responded_ms then b else a)
                    (List.hd in_time) in_time
                in
                let w' = Option.get (witness_for w) in
                Some
                  {
                    read = r;
                    reason =
                      Printf.sprintf
                        "stale read: value %d was overwritten by c%d#%d before \
                         the read began"
                        v w'.client w'.op_id;
                  }))
  | Read None ->
      (* candidates: the initial state, or any delete *)
      let puts = List.filter (fun o -> match o.kind with Write _ -> true | _ -> false) mutations in
      let initial_ok =
        not (List.exists (fun p -> p.responded_ms <= r.invoked_ms) puts)
      in
      let dels = List.filter (fun o -> o.kind = Del) mutations in
      let del_ok =
        List.exists
          (fun d ->
            d.invoked_ms <= r.responded_ms
            && stale_witness puts ~dict_resp:d.responded_ms
                 ~read_inv:r.invoked_ms
               = None)
          dels
      in
      if initial_ok || del_ok then None
      else
        Some
          {
            read = r;
            reason = "read of empty value after a completed write";
          }

let check_key ops =
  (match ops with
  | [] -> ()
  | o :: rest ->
      if List.exists (fun o' -> o'.key <> o.key) rest then
        invalid_arg "Linearizability.check_key: mixed keys");
  let mutations = List.filter is_mutation ops in
  List.filter_map (check_read mutations) ops

let check ops =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let l = Option.value (Hashtbl.find_opt by_key o.key) ~default:[] in
      Hashtbl.replace by_key o.key (o :: l))
    ops;
  Hashtbl.fold
    (fun _key l acc ->
      let sorted =
        List.sort (fun a b -> Float.compare a.invoked_ms b.invoked_ms) l
      in
      check_key sorted @ acc)
    by_key []

let is_linearizable ops = check ops = []
