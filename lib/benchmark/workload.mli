(** Tunable workload generation — the benchmark parameters of
    Table 3: key count K, write ratio W, key distribution (uniform /
    zipfian / normal / exponential, Fig. 6), conflict ratio against a
    designated hot key, and moving locality (Move/Speed). *)

type key_dist =
  | Uniform
  | Zipfian of { s : float; v : float }
  | Normal of { mu : float; sigma : float; speed_ms : float; drift : float }
      (** [speed_ms > 0] makes the mean advance by [drift] keys every
          [speed_ms] — Table 3's moving average *)
  | Exponential of { mean : float }
  | Hotspot of { hot_fraction : float; hot_mass : float }
      (** [hot_mass] of the draws land uniformly on the first
          [hot_fraction] of the key space (the production-traffic
          "80% of ops on 20% of keys" shape); the rest are uniform
          over the remainder. Composes with range partitioning to
          concentrate load on the shards owning the hot prefix. *)

type t = {
  keys : int;  (** K: size of the key space *)
  min_key : int;  (** Min: first key number *)
  write_ratio : float;  (** W *)
  read_ratio : float option;
      (** When set, overrides [write_ratio] as [1 - r] via the same
          single Bernoulli draw per op — the read-path sweeps set 0.5 /
          0.95 / 0.99 here without perturbing key selection. [None]
          keeps the write-ratio parameterization (and its exact RNG
          stream). *)
  dist : key_dist;
  conflict_ratio : float;
      (** fraction of requests redirected to the hot key — the §5.3
          conflict experiments drive this from 0% to 100% *)
  hot_key : int;
}

val default : t
(** 1000 uniform keys, 50% writes, no designated conflicts — the
    paper's LAN setup (§5.2). *)

val with_locality : t -> region_index:int -> regions:int -> t
(** Give each region its own Normal key distribution whose mean is
    region-specific, producing the locality workload of §5.3: region
    [i] of [regions] centres on key [(i + 1/2) * K / regions] with
    [sigma = K / (3 * regions)]. *)

val ycsb : [ `A | `B | `C | `D | `F ] -> keys:int -> t
(** YCSB core-workload presets, as the paper's benchmarker is meant to
    stand in for YCSB (§4.2): A = 50/50 update/read zipfian, B = 95/5
    read-heavy zipfian, C = read-only zipfian, D = read-latest (95/5
    with an exponential recency distribution), F = read-modify-write
    approximated as 50/50 zipfian. Workload E (scans) has no
    equivalent in a key-value interface and is omitted. *)

val hotspot : keys:int -> t
(** The 80/20 hotspot preset: [Hotspot { hot_fraction = 0.2;
    hot_mass = 0.8 }] over [keys] uniform keys, 50% writes. *)

val validate : t -> (unit, string) result

type gen
(** A stateful per-client command generator. *)

val generator : t -> rng:Rng.t -> client:int -> gen

val next_op : gen -> now_ms:float -> Command.op
(** Values written are unique per client (an incrementing counter), so
    offline checkers can identify each write. *)

val op_count : gen -> int
