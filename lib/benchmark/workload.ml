type key_dist =
  | Uniform
  | Zipfian of { s : float; v : float }
  | Normal of { mu : float; sigma : float; speed_ms : float; drift : float }
  | Exponential of { mean : float }
  | Hotspot of { hot_fraction : float; hot_mass : float }

type t = {
  keys : int;
  min_key : int;
  write_ratio : float;
  read_ratio : float option;
  dist : key_dist;
  conflict_ratio : float;
  hot_key : int;
}

let default =
  {
    keys = 1000;
    min_key = 0;
    write_ratio = 0.5;
    read_ratio = None;
    dist = Uniform;
    conflict_ratio = 0.0;
    hot_key = 0;
  }

let with_locality t ~region_index ~regions =
  assert (regions > 0 && region_index >= 0 && region_index < regions);
  let k = float_of_int t.keys in
  let mu = (float_of_int region_index +. 0.5) *. k /. float_of_int regions in
  let sigma = k /. (3.0 *. float_of_int regions) in
  { t with dist = Normal { mu; sigma; speed_ms = 0.0; drift = 0.0 } }

let ycsb kind ~keys =
  let zipf = Zipfian { s = 1.2; v = 1.0 } in
  let base = { default with keys; dist = zipf } in
  match kind with
  | `A -> { base with write_ratio = 0.5 }
  | `B -> { base with write_ratio = 0.05 }
  | `C -> { base with write_ratio = 0.0 }
  | `D ->
      {
        base with
        write_ratio = 0.05;
        dist = Exponential { mean = float_of_int keys /. 10.0 };
      }
  | `F -> { base with write_ratio = 0.5 }

let hotspot ~keys = { default with keys; dist = Hotspot { hot_fraction = 0.2; hot_mass = 0.8 } }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.keys < 1 then err "keys must be >= 1"
  else if t.write_ratio < 0.0 || t.write_ratio > 1.0 then
    err "write_ratio must be in [0,1]"
  else if
    match t.read_ratio with Some r -> r < 0.0 || r > 1.0 | None -> false
  then err "read_ratio must be in [0,1]"
  else if t.conflict_ratio < 0.0 || t.conflict_ratio > 1.0 then
    err "conflict_ratio must be in [0,1]"
  else
    match t.dist with
    | Zipfian { s; v } when s <= 0.0 || v <= 0.0 -> err "zipfian s,v must be > 0"
    | Normal { sigma; _ } when sigma <= 0.0 -> err "normal sigma must be > 0"
    | Exponential { mean } when mean <= 0.0 -> err "exponential mean must be > 0"
    | Hotspot { hot_fraction; hot_mass }
      when hot_fraction <= 0.0 || hot_fraction >= 1.0 || hot_mass < 0.0
           || hot_mass > 1.0 ->
        err "hotspot needs hot_fraction in (0,1) and hot_mass in [0,1]"
    | Hotspot _ when t.keys < 2 -> err "hotspot needs keys >= 2"
    | _ -> Ok ()

type gen = {
  spec : t;
  rng : Rng.t;
  sampler : Dist.Discrete.t;
  client : int;
  mutable counter : int;
}

let discrete_of spec =
  let k = spec.keys in
  match spec.dist with
  | Uniform -> Dist.Discrete.uniform ~k
  | Zipfian { s; v } -> Dist.Discrete.zipfian ~k ~s ~v
  | Normal { mu; sigma; speed_ms; drift } ->
      let d = Dist.Discrete.normal ~k ~mu ~sigma in
      if speed_ms > 0.0 then Dist.Discrete.with_moving_mean d ~speed_ms ~drift
      else d
  | Exponential { mean } -> Dist.Discrete.exponential ~k ~mean
  | Hotspot { hot_fraction; hot_mass } ->
      Dist.Discrete.hotspot ~k ~hot_fraction ~mass:hot_mass

let generator spec ~rng ~client =
  (match validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Workload.generator: " ^ e));
  { spec; rng; sampler = discrete_of spec; client; counter = 0 }

let next_op g ~now_ms =
  let spec = g.spec in
  let key =
    if spec.conflict_ratio > 0.0 && Rng.bernoulli g.rng ~p:spec.conflict_ratio
    then spec.hot_key
    else spec.min_key + Dist.Discrete.sample g.sampler g.rng ~now_ms
  in
  g.counter <- g.counter + 1;
  (* [read_ratio], when set, overrides [write_ratio] as 1 - r — but
     through the same single Bernoulli draw, so [None] and
     [Some (1 - write_ratio)] generate byte-identical streams *)
  let p_write =
    match spec.read_ratio with
    | Some r -> 1.0 -. r
    | None -> spec.write_ratio
  in
  if Rng.bernoulli g.rng ~p:p_write then
    (* unique value per (client, counter) so checkers can identify
       every write *)
    Command.Put (key, (g.client * 10_000_000) + g.counter)
  else Command.Get key

let op_count g = g.counter
