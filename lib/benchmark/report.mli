(** Plain-text table and CSV rendering for benchmark output — the
    rows/series each bench target prints when regenerating a paper
    table or figure. *)

val table :
  header:string list -> rows:string list list -> Format.formatter -> unit
(** Aligned columns, a rule under the header. *)

val print_table : header:string list -> rows:string list list -> unit
(** To stdout. *)

val csv : header:string list -> rows:string list list -> string
(** RFC-4180: cells containing commas, quotes, CR or LF are quoted
    with embedded quotes doubled, so arbitrary cell text survives a
    round trip through {!csv_parse}. *)

val csv_parse : string -> string list list
(** Parse RFC-4180 text (as produced by {!csv}) back into rows of
    cells; handles quoted cells, doubled quotes, and embedded
    newlines. *)

val fms : float -> string
(** Format a latency in ms with 3 decimals; empty-cell marker for
    nan/infinite. *)

val frate : float -> string
(** Format a throughput (ops/sec) with no decimals. *)

val section : string -> unit
(** Print a figure/table banner. *)
