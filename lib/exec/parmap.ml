let pool_of = function Some p -> p | None -> Pool.default ()

let map ?pool f xs =
  Pool.run_list (pool_of pool) (List.map (fun x () -> f x) xs)

let mapi ?pool f xs =
  Pool.run_list (pool_of pool) (List.mapi (fun i x () -> f i x) xs)

let map_array ?pool f xs =
  Pool.run_array (pool_of pool) (Array.map (fun x () -> f x) xs)

let iter ?pool f xs = ignore (map ?pool f xs)
