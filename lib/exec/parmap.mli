(** Order-preserving parallel map over a {!Pool}.

    [map f xs] applies [f] to every element on the pool's domains and
    returns results in list order, so replacing [List.map] with
    [Parmap.map] in a sweep changes wall-clock time and nothing else —
    provided [f] is self-contained (its own simulator, its own seeded
    RNG). Defaults to the shared {!Pool.default} pool, whose size
    honours [PAXI_JOBS]. *)

val map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
val mapi : ?pool:Pool.t -> (int -> 'a -> 'b) -> 'a list -> 'b list
val map_array : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array
val iter : ?pool:Pool.t -> ('a -> unit) -> 'a list -> unit
