(* Work-stealing domain pool. Tasks of a batch are dealt round-robin
   into one deque per worker; owners pop from the front, thieves take
   from the back. Deques are tiny (one slot per task index) and tasks
   are coarse (whole simulation runs), so a mutex per deque costs
   nothing measurable; the stealing is what keeps domains busy when
   point runtimes are skewed. *)

type deque = {
  ids : int array; (* task indices initially owned by this worker *)
  mutable lo : int; (* next index for the owner *)
  mutable hi : int; (* one past the last unstolen index *)
  lock : Mutex.t;
}

type batch = {
  run_task : int -> unit; (* never raises *)
  deques : deque array;
  remaining : int Atomic.t; (* tasks not yet finished *)
}

type t = {
  n_workers : int; (* worker domains + calling domain *)
  mutable domains : unit Domain.t array;
  lock : Mutex.t;
  work_cv : Condition.t; (* new batch available / shutting down *)
  done_cv : Condition.t; (* batch finished *)
  mutable batch : batch option;
  mutable generation : int;
  mutable stop : bool;
}

let default_jobs () =
  match Sys.getenv_opt "PAXI_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          invalid_arg
            (Printf.sprintf "PAXI_JOBS=%S: expected a positive integer" s))
  | None -> Stdlib.max 1 (Domain.recommended_domain_count ())

let jobs t = t.n_workers

let take_own (d : deque) =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then begin
      let i = d.ids.(d.lo) in
      d.lo <- d.lo + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let steal (d : deque) =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then begin
      d.hi <- d.hi - 1;
      Some d.ids.(d.hi)
    end
    else None
  in
  Mutex.unlock d.lock;
  r

(* Run batch tasks as worker [wid] until no task can be obtained. *)
let work pool batch wid =
  let w = Array.length batch.deques in
  let finish_one () =
    if Atomic.fetch_and_add batch.remaining (-1) = 1 then begin
      Mutex.lock pool.lock;
      Condition.broadcast pool.done_cv;
      Mutex.unlock pool.lock
    end
  in
  let rec next_task () =
    match take_own batch.deques.(wid) with
    | Some i -> Some i
    | None ->
        let rec try_steal k =
          if k >= w then None
          else
            match steal batch.deques.((wid + k) mod w) with
            | Some i -> Some i
            | None -> try_steal (k + 1)
        in
        try_steal 1
  and loop () =
    match next_task () with
    | Some i ->
        batch.run_task i;
        finish_one ();
        loop ()
    | None -> ()
  in
  loop ()

let worker_main pool wid () =
  let seen = ref 0 in
  Mutex.lock pool.lock;
  while not pool.stop do
    match pool.batch with
    | Some b when pool.generation > !seen ->
        seen := pool.generation;
        Mutex.unlock pool.lock;
        work pool b wid;
        Mutex.lock pool.lock
    | _ -> Condition.wait pool.work_cv pool.lock
  done;
  Mutex.unlock pool.lock

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      n_workers = jobs;
      domains = [||];
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      generation = 0;
      stop = false;
    }
  in
  pool.domains <-
    Array.init (jobs - 1) (fun wid -> Domain.spawn (worker_main pool wid));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let run_batch pool ~n run_task =
  if n > 0 then
    if Array.length pool.domains = 0 then
      (* sequential escape hatch: no domains, submission order *)
      for i = 0 to n - 1 do
        run_task i
      done
    else begin
      let w = pool.n_workers in
      let deques =
        Array.init w (fun wid ->
            (* indices wid, wid+w, wid+2w, ... *)
            let ids =
              Array.init ((n - wid + w - 1) / w) (fun k -> wid + (k * w))
            in
            { ids; lo = 0; hi = Array.length ids; lock = Mutex.create () })
      in
      let batch = { run_task; deques; remaining = Atomic.make n } in
      Mutex.lock pool.lock;
      pool.batch <- Some batch;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work_cv;
      Mutex.unlock pool.lock;
      (* the calling domain is the last worker *)
      work pool batch (w - 1);
      Mutex.lock pool.lock;
      while Atomic.get batch.remaining > 0 do
        Condition.wait pool.done_cv pool.lock
      done;
      pool.batch <- None;
      Mutex.unlock pool.lock
    end

let run_array pool fs =
  let n = Array.length fs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let run_task i =
      match fs.(i) () with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set first_error None (Some (e, bt)))
    in
    run_batch pool ~n run_task;
    (match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let run_list pool fs = Array.to_list (run_array pool (Array.of_list fs))

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      at_exit (fun () -> shutdown p);
      p
