(** Work-stealing pool of OCaml 5 domains for embarrassingly parallel
    experiment sweeps.

    Every point of the paper's evaluation grid (protocol x concurrency
    x topology) is an independent deterministic simulation with its own
    seeded RNG, so a sweep is a list of thunks that can be evaluated on
    any domain in any order. The pool distributes thunks round-robin
    across per-worker deques; a worker that drains its own deque steals
    from the back of its siblings', so stragglers (e.g. long WAN
    locality runs) do not serialize the batch. Results are returned in
    submission order regardless of which domain ran what.

    A pool with [jobs = 1] spawns no domains and evaluates thunks
    in the calling domain, in order — the sequential escape hatch
    ([PAXI_JOBS=1]) used to check that parallel output is
    byte-identical.

    Thunks must not share mutable state and must not themselves call
    back into the same pool (batches are not reentrant). *)

type t

val default_jobs : unit -> int
(** Parallelism used by {!default}: [PAXI_JOBS] if set to a positive
    integer, otherwise [Domain.recommended_domain_count ()] (the
    calling domain plus [recommended_domain_count () - 1] workers). *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains; the caller
    participates as the last worker during {!run_array}. [jobs]
    defaults to {!default_jobs}. Raises [Invalid_argument] when
    [jobs < 1]. *)

val jobs : t -> int
(** Total parallelism (worker domains + calling domain). *)

val run_array : t -> (unit -> 'a) array -> 'a array
(** Evaluate every thunk and return results in input order. If any
    thunk raises, the remaining thunks still run and the first
    exception (by completion time) is re-raised afterwards. Must be
    called from the domain that created the pool. *)

val run_list : t -> (unit -> 'a) list -> 'a list

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must not be used
    afterwards. *)

val default : unit -> t
(** Shared lazily-created pool sized by {!default_jobs}; shut down
    automatically at exit. *)
