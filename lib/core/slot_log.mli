(** Growable replicated-log abstraction shared by the multi-decree
    protocols: a sparse array of per-slot entries plus an execution
    frontier. The entry type is protocol-specific. *)

type 'a t

val create : unit -> 'a t
val get : 'a t -> int -> 'a option
val set : 'a t -> int -> 'a -> unit
val update : 'a t -> int -> f:('a option -> 'a) -> unit
val next_slot : 'a t -> int
(** One past the highest occupied slot (0 when empty). *)

val reserve : 'a t -> int
(** Allocate and return the next free slot index. *)

val exec_frontier : 'a t -> int
(** Index of the first slot not yet executed. *)

val advance_frontier :
  'a t -> executable:('a -> bool) -> f:(int -> 'a -> unit) -> unit
(** Run [f] on consecutive slots starting at the frontier while each
    slot is filled and [executable]; advances the frontier past them. *)

val iter_filled : 'a t -> f:(int -> 'a -> unit) -> unit

val iter_from : 'a t -> start:int -> f:(int -> 'a -> unit) -> unit
(** Like {!iter_filled} but starting at slot [start] (clamped to 0) —
    lets hot paths skip the already-executed prefix instead of
    rescanning the whole history. *)

val filled_count : 'a t -> int

val base : 'a t -> int
(** First slot still held in the log; slots below it were discarded by
    {!truncate} (their effect lives in a snapshot). 0 until the first
    truncation. *)

val truncate : 'a t -> upto:int -> unit
(** Discard every slot below [upto] (exclusive) and raise {!base} to
    it: [get] on a discarded slot returns [None], [set] below [base]
    is ignored, and the execution frontier is advanced to at least
    [upto] (a snapshot at [upto - 1] subsumes execution of the
    prefix). No-op when [upto <= base]. *)
