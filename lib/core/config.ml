type batching = { max_batch : int; max_wait_ms : float }

type retransmit = { base_ms : float; max_ms : float; max_tries : int }

type read_path =
  | Lease of { margin_ms : float }
  | Quorum
  | Tail

type t = {
  n_replicas : int;
  seed : int;
  msg_size_bytes : int;
  t_in_ms : float;
  t_out_ms : float;
  bandwidth_mbps : float;
  client_timeout_ms : float;
  q2_size : int option;
  fz : int;
  leaders_per_region : int;
  epaxos_penalty : float;
  piggyback_commit : bool;
  thrifty : bool;
  migration_threshold : int;
  migration_cooldown_ms : float;
  failover_timeout_ms : float;
  initial_object_owner : int option;
  master_region_index : int;
  batching : batching option;
  retransmit : retransmit option;
  tracing : bool;
  read_ratio : float option;
  read_path : read_path option;
  relay_groups : int;
      (** 0 = direct fan-out (the legacy path, byte-identical to
          pre-relay builds); r > 0 partitions the followers into r
          relay groups and routes phase-2 traffic through them. *)
  storage : Storage.config option;
      (** [None] = memory-only replicas (the legacy semantics: nemesis
          crashes pause, durability is free, byte-identical to
          pre-storage builds). [Some c] arms the stable-storage model:
          persistent writes traverse a simulated fsync queue before a
          replica may ack, and nemesis crashes destroy volatile state
          — recovery reloads only what storage holds. *)
}

let default ~n_replicas =
  {
    n_replicas;
    seed = 42;
    msg_size_bytes = 128;
    t_in_ms = 0.012;
    t_out_ms = 0.008;
    bandwidth_mbps = 10_000.0;
    client_timeout_ms = 1_000.0;
    q2_size = None;
    fz = 0;
    leaders_per_region = 1;
    epaxos_penalty = 4.0;
    piggyback_commit = true;
    thrifty = false;
    migration_threshold = 3;
    migration_cooldown_ms = 2_000.0;
    failover_timeout_ms = 1_000.0;
    initial_object_owner = None;
    master_region_index = 0;
    batching = None;
    retransmit = None;
    tracing = false;
    read_ratio = None;
    read_path = None;
    relay_groups = 0;
    storage = None;
  }

let majority t = (t.n_replicas / 2) + 1

let phase2_quorum_size t =
  match t.q2_size with Some q -> q | None -> majority t

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n_replicas < 1 then err "n_replicas must be >= 1 (got %d)" t.n_replicas
  else if t.t_in_ms < 0.0 || t.t_out_ms < 0.0 then
    err "service times must be non-negative"
  else if t.bandwidth_mbps <= 0.0 then err "bandwidth must be positive"
  else if t.client_timeout_ms <= 0.0 then err "client timeout must be positive"
  else if t.fz < 0 then err "fz must be non-negative"
  else if t.leaders_per_region < 1 then err "leaders_per_region must be >= 1"
  else if t.epaxos_penalty < 1.0 then err "epaxos_penalty must be >= 1.0"
  else if t.migration_threshold < 1 then err "migration_threshold must be >= 1"
  else if t.migration_cooldown_ms < 0.0 then err "migration_cooldown_ms must be >= 0"
  else if t.failover_timeout_ms <= 0.0 then err "failover timeout must be positive"
  else if t.master_region_index < 0 then err "master_region_index must be >= 0"
  else if
    match t.read_ratio with Some r -> r < 0.0 || r > 1.0 | None -> false
  then err "read_ratio must be in [0, 1]"
  else if
    match t.read_path with Some (Lease l) -> l.margin_ms < 0.0 | _ -> false
  then err "read_path lease margin_ms must be >= 0"
  else if t.relay_groups < 0 || t.relay_groups >= t.n_replicas then
    err "relay_groups %d out of range 0..%d" t.relay_groups (t.n_replicas - 1)
  else if t.relay_groups > 0 && t.thrifty then
    (* thrifty trims the phase-2 copy list below the follower set; a
       relay round always covers every follower, so the two knobs
       contradict each other *)
    err "relay_groups is incompatible with thrifty"
  else if
    (* a relay's ack bitmap is one immediate int; cap group size below
       the 63-bit word (largest group = ceil((n-1)/r)) *)
    t.relay_groups > 0
    && (t.n_replicas - 2 + t.relay_groups) / t.relay_groups > 62
  then
    err "relay_groups %d gives groups of more than 62 members at n=%d"
      t.relay_groups t.n_replicas
  else if
    (* quorum reads defer the leader's write ack behind an extra commit
       round per slot; batching would need per-batch sync tracking that
       the mode deliberately does not carry *)
    match (t.read_path, t.batching) with
    | Some Quorum, Some _ -> true
    | _ -> false
  then err "read_path quorum is incompatible with batching"
  else if t.storage <> None && t.relay_groups > 0 then
    (* relay rounds aggregate follower acks without the relays knowing
       about follower fsync schedules; gating each relayed vote on a
       sync would serialize the aggregation the mode exists to avoid *)
    err "storage is incompatible with relay_groups"
  else
    match Option.map Storage.validate_config t.storage with
    | Some (Error e) -> err "%s" e
    | _ ->
    match t.retransmit with
    | Some r when r.max_tries < 0 -> err "retransmit.max_tries must be >= 0"
    | Some r when r.max_tries > 0 && r.base_ms <= 0.0 ->
        err "retransmit.base_ms must be positive"
    | Some r when r.max_tries > 0 && r.max_ms < r.base_ms ->
        err "retransmit.max_ms must be >= base_ms"
    | _ -> (
    match t.batching with
    | Some b when b.max_batch < 1 ->
        err "batching.max_batch must be >= 1 (got %d)" b.max_batch
    | Some b when b.max_wait_ms < 0.0 ->
        err "batching.max_wait_ms must be >= 0"
    | _ -> (
    match t.q2_size with
    | Some q when q < 1 || q > t.n_replicas ->
        err "q2_size %d out of range 1..%d" q t.n_replicas
    | Some q ->
        (* FPaxos safety: |q1| + |q2| > N with q1 = N - q2 + 1 holds by
           construction; reject q2 that would force an empty q1. *)
        if t.n_replicas - q + 1 < 1 then err "q2_size %d leaves no q1" q
        else Ok ()
    | None -> Ok ()))

let to_json t =
  Json.Obj
    ([
       ("n_replicas", Json.Number (float_of_int t.n_replicas));
       ("seed", Json.Number (float_of_int t.seed));
       ("msg_size_bytes", Json.Number (float_of_int t.msg_size_bytes));
       ("t_in_ms", Json.Number t.t_in_ms);
       ("t_out_ms", Json.Number t.t_out_ms);
       ("bandwidth_mbps", Json.Number t.bandwidth_mbps);
       ("client_timeout_ms", Json.Number t.client_timeout_ms);
       ("fz", Json.Number (float_of_int t.fz));
       ("leaders_per_region", Json.Number (float_of_int t.leaders_per_region));
       ("epaxos_penalty", Json.Number t.epaxos_penalty);
       ("piggyback_commit", Json.Bool t.piggyback_commit);
       ("thrifty", Json.Bool t.thrifty);
       ("migration_threshold", Json.Number (float_of_int t.migration_threshold));
       ("migration_cooldown_ms", Json.Number t.migration_cooldown_ms);
       ("failover_timeout_ms", Json.Number t.failover_timeout_ms);
       ("master_region_index", Json.Number (float_of_int t.master_region_index));
       ("tracing", Json.Bool t.tracing);
     ]
    @ (match t.q2_size with
      | Some q -> [ ("q2_size", Json.Number (float_of_int q)) ]
      | None -> [])
    @ (match t.initial_object_owner with
      | Some o -> [ ("initial_object_owner", Json.Number (float_of_int o)) ]
      | None -> [])
    @ (match t.read_ratio with
      | Some r -> [ ("read_ratio", Json.Number r) ]
      | None -> [])
    @ (if t.relay_groups > 0 then
         [ ("relay_groups", Json.Number (float_of_int t.relay_groups)) ]
       else [])
    @ (match t.storage with
      | Some s -> [ ("storage", Storage.config_to_json s) ]
      | None -> [])
    @ (match t.read_path with
      | Some (Lease { margin_ms }) ->
          [
            ( "read_path",
              Json.Obj
                [
                  ("mode", Json.String "lease");
                  ("margin_ms", Json.Number margin_ms);
                ] );
          ]
      | Some Quorum ->
          [ ("read_path", Json.Obj [ ("mode", Json.String "quorum") ]) ]
      | Some Tail -> [ ("read_path", Json.Obj [ ("mode", Json.String "tail") ]) ]
      | None -> [])
    @ (match t.batching with
      | Some b ->
          [
            ( "batching",
              Json.Obj
                [
                  ("max_batch", Json.Number (float_of_int b.max_batch));
                  ("max_wait_ms", Json.Number b.max_wait_ms);
                ] );
          ]
      | None -> [])
    @
    match t.retransmit with
    | Some r ->
        [
          ( "retransmit",
            Json.Obj
              [
                ("base_ms", Json.Number r.base_ms);
                ("max_ms", Json.Number r.max_ms);
                ("max_tries", Json.Number (float_of_int r.max_tries));
              ] );
        ]
    | None -> [])

let known_fields =
  [
    "n_replicas"; "seed"; "msg_size_bytes"; "t_in_ms"; "t_out_ms";
    "bandwidth_mbps"; "client_timeout_ms"; "q2_size"; "fz";
    "leaders_per_region"; "epaxos_penalty"; "piggyback_commit"; "thrifty";
    "migration_threshold"; "migration_cooldown_ms"; "failover_timeout_ms";
    "initial_object_owner";
    "master_region_index";
    "batching";
    "retransmit";
    "tracing";
    "read_ratio";
    "read_path";
    "relay_groups";
    "storage";
  ]

let of_json json =
  match json with
  | Json.Obj fields -> (
      match
        List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
      with
      | Some (k, _) -> Error (Printf.sprintf "unknown configuration field %S" k)
      | None -> (
          let intf name fallback =
            match Json.member name json with
            | Some v -> (
                match Json.to_int v with
                | Some i -> Ok i
                | None -> Error (Printf.sprintf "%s must be an integer" name))
            | None -> Ok fallback
          in
          let floatf name fallback =
            match Json.member name json with
            | Some v -> (
                match Json.to_float v with
                | Some f -> Ok f
                | None -> Error (Printf.sprintf "%s must be a number" name))
            | None -> Ok fallback
          in
          let boolf name fallback =
            match Json.member name json with
            | Some v -> (
                match Json.to_bool v with
                | Some b -> Ok b
                | None -> Error (Printf.sprintf "%s must be a boolean" name))
            | None -> Ok fallback
          in
          let opt_int name =
            match Json.member name json with
            | Some Json.Null | None -> Ok None
            | Some v -> (
                match Json.to_int v with
                | Some i -> Ok (Some i)
                | None -> Error (Printf.sprintf "%s must be an integer" name))
          in
          let ( let* ) = Result.bind in
          let* n_replicas = intf "n_replicas" 0 in
          if n_replicas < 1 then Error "n_replicas is required and must be >= 1"
          else
            let d = default ~n_replicas in
            let* seed = intf "seed" d.seed in
            let* msg_size_bytes = intf "msg_size_bytes" d.msg_size_bytes in
            let* t_in_ms = floatf "t_in_ms" d.t_in_ms in
            let* t_out_ms = floatf "t_out_ms" d.t_out_ms in
            let* bandwidth_mbps = floatf "bandwidth_mbps" d.bandwidth_mbps in
            let* client_timeout_ms = floatf "client_timeout_ms" d.client_timeout_ms in
            let* q2_size = opt_int "q2_size" in
            let* fz = intf "fz" d.fz in
            let* leaders_per_region = intf "leaders_per_region" d.leaders_per_region in
            let* epaxos_penalty = floatf "epaxos_penalty" d.epaxos_penalty in
            let* piggyback_commit = boolf "piggyback_commit" d.piggyback_commit in
            let* thrifty = boolf "thrifty" d.thrifty in
            let* migration_threshold = intf "migration_threshold" d.migration_threshold in
            let* migration_cooldown_ms = floatf "migration_cooldown_ms" d.migration_cooldown_ms in
            let* failover_timeout_ms = floatf "failover_timeout_ms" d.failover_timeout_ms in
            let* initial_object_owner = opt_int "initial_object_owner" in
            let* master_region_index = intf "master_region_index" d.master_region_index in
            let* tracing = boolf "tracing" d.tracing in
            let* batching =
              match Json.member "batching" json with
              | Some Json.Null | None -> Ok None
              | Some (Json.Obj _ as b) -> (
                  match
                    ( Option.bind (Json.member "max_batch" b) Json.to_int,
                      Option.bind (Json.member "max_wait_ms" b) Json.to_float )
                  with
                  | Some max_batch, Some max_wait_ms ->
                      Ok (Some { max_batch; max_wait_ms })
                  | _ ->
                      Error
                        "batching requires integer max_batch and numeric \
                         max_wait_ms"
                  )
              | Some _ -> Error "batching must be an object or null"
            in
            let* retransmit =
              match Json.member "retransmit" json with
              | Some Json.Null | None -> Ok None
              | Some (Json.Obj _ as r) -> (
                  match
                    ( Option.bind (Json.member "base_ms" r) Json.to_float,
                      Option.bind (Json.member "max_ms" r) Json.to_float,
                      Option.bind (Json.member "max_tries" r) Json.to_int )
                  with
                  | Some base_ms, Some max_ms, Some max_tries ->
                      Ok (Some { base_ms; max_ms; max_tries })
                  | _ ->
                      Error
                        "retransmit requires numeric base_ms and max_ms and \
                         integer max_tries"
                  )
              | Some _ -> Error "retransmit must be an object or null"
            in
            let* read_ratio =
              match Json.member "read_ratio" json with
              | Some Json.Null | None -> Ok None
              | Some v -> (
                  match Json.to_float v with
                  | Some r -> Ok (Some r)
                  | None -> Error "read_ratio must be a number")
            in
            let* read_path =
              match Json.member "read_path" json with
              | Some Json.Null | None -> Ok None
              | Some (Json.Obj _ as rp) -> (
                  match Option.bind (Json.member "mode" rp) Json.get_string with
                  | Some "lease" -> (
                      match
                        Option.bind (Json.member "margin_ms" rp) Json.to_float
                      with
                      | Some margin_ms -> Ok (Some (Lease { margin_ms }))
                      | None ->
                          Error "read_path lease requires numeric margin_ms")
                  | Some "quorum" -> Ok (Some Quorum)
                  | Some "tail" -> Ok (Some Tail)
                  | _ ->
                      Error
                        "read_path mode must be \"lease\", \"quorum\" or \
                         \"tail\"")
              | Some _ -> Error "read_path must be an object or null"
            in
            let* relay_groups = intf "relay_groups" d.relay_groups in
            let* storage =
              match Json.member "storage" json with
              | Some Json.Null | None -> Ok None
              | Some (Json.Obj _ as s) ->
                  Result.map Option.some (Storage.config_of_json s)
              | Some _ -> Error "storage must be an object or null"
            in
            let config =
              {
                n_replicas; seed; msg_size_bytes; t_in_ms; t_out_ms;
                bandwidth_mbps; client_timeout_ms; q2_size; fz;
                leaders_per_region; epaxos_penalty; piggyback_commit; thrifty;
                migration_threshold; migration_cooldown_ms;
                failover_timeout_ms; initial_object_owner;
                master_region_index; batching; retransmit; tracing;
                read_ratio; read_path; relay_groups; storage;
              }
            in
            let* () = validate config in
            Ok config))
  | _ -> Error "configuration must be a JSON object"

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> Result.bind (Json.parse contents) of_json
  | exception Sys_error msg -> Error msg
