type t = {
  mutable sm : State_machine.t;
  memo : (int * int, Command.value option) Hashtbl.t;
}

let create () = { sm = State_machine.create (); memo = Hashtbl.create 256 }

let key_of (c : Command.t) = (c.Command.client, c.Command.id)

let already_executed t c =
  (not (Command.is_noop c)) && Hashtbl.mem t.memo (key_of c)

let execute t c =
  if Command.is_noop c then None
  else
    match Hashtbl.find_opt t.memo (key_of c) with
    | Some r -> r
    | None ->
        let { State_machine.read; _ } = State_machine.apply t.sm c in
        Hashtbl.add t.memo (key_of c) read;
        read

let read t (c : Command.t) =
  match c.Command.op with
  | Command.Get k -> Kv.get (State_machine.store t.sm) k
  | Command.Put _ | Command.Delete _ -> None

let state_machine t = t.sm
let executed_count t = Hashtbl.length t.memo

let image t = Array.of_list (State_machine.applied t.sm)

let install t image =
  t.sm <- State_machine.create ();
  Hashtbl.reset t.memo;
  Array.iter (fun c -> ignore (execute t c)) image
