(** Cluster and protocol configuration (§4.1 Configurations).

    One flat record carries the knobs shared by every protocol plus the
    per-protocol parameters the paper's evaluation varies: FPaxos
    phase-2 quorum size, WPaxos fault-tolerance level [fz] and
    leader-per-region restriction, the EPaxos conflict-bookkeeping
    penalty, thrifty quorums and commit piggybacking. *)

type batching = {
  max_batch : int;  (** flush a leader's batch at this many commands *)
  max_wait_ms : float;
      (** flush a non-full batch after this long (0 = next sim instant) *)
}
(** Leader command batching (§6's capacity lever): coalesce queued
    client commands into one multi-command phase-2 round — one
    serialized message per peer with summed wire size, one quorum per
    batch slot-range — amortizing [t_in]/[t_out] across the batch. *)

type retransmit = { base_ms : float; max_ms : float; max_tries : int }
(** Reliable-delivery policy applied by {!Paxi_net.Reliable} to every
    message a protocol posts with an ack key: first retransmission
    after [base_ms], backoff doubling up to [max_ms], giving up after
    [max_tries] retransmissions. [max_tries = 0] (or a [None] field)
    leaves the layer inert — no timers, no acks, no dedup state. *)

type read_path =
  | Lease of { margin_ms : float }
      (** the established leader answers reads from its local state
          machine while it holds a heartbeat-renewed lease; [margin_ms]
          is subtracted from the lease expiry before every serve, and
          must exceed twice the largest clock offset the deployment
          (or the nemesis) can produce — see DESIGN.md §11 *)
  | Quorum
      (** ABD-style quorum reads from any replica (query a majority's
          per-key registers, write the freshest value back to a
          majority); write acks are deferred behind a commit-ack round
          so acknowledged writes are majority-readable *)
  | Tail
      (** chain replication's head-write/tail-read split; other
          protocols ignore it *)
(** How [Get] commands are served. [None] (the default) routes reads
    through the full write path — one slot per read — exactly as every
    protocol behaved before the read path existed. *)

type t = {
  n_replicas : int;
  seed : int;
  msg_size_bytes : int;  (** wire size charged per protocol message *)
  t_in_ms : float;  (** CPU cost to process an incoming message *)
  t_out_ms : float;  (** CPU cost to serialize an outgoing message *)
  bandwidth_mbps : float;
  client_timeout_ms : float;  (** client retry timeout *)
  q2_size : int option;
      (** FPaxos phase-2 quorum size; [None] = majority *)
  fz : int;  (** WPaxos: number of zone (region) failures tolerated *)
  leaders_per_region : int;
      (** WPaxos/WanKeeper leader restriction used in §5 (one per
          region) *)
  epaxos_penalty : float;
      (** multiplier on message-processing cost at EPaxos replicas,
          accounting for dependency computation (§5) *)
  piggyback_commit : bool;
      (** piggyback phase-3 on the next phase-2 broadcast (§2) *)
  thrifty : bool;
      (** leaders contact only Q-1 followers instead of N-1 (§6.1) *)
  migration_threshold : int;
      (** consecutive remote accesses before object
          migration/stealing — the paper's "simple three-consecutive
          access policy" (§5.3) *)
  migration_cooldown_ms : float;
      (** minimum time between migrations of the same object; damps
          ownership ping-pong when several regions interleave accesses
          (uniform workloads) without slowing the first adaptation *)
  failover_timeout_ms : float;
      (** how long a follower waits without hearing from the leader
          before starting its own phase-1 (staggered by replica id) *)
  initial_object_owner : int option;
      (** multi-leader protocols: replica that initially owns every
          object (the locality experiment starts with all objects in
          Ohio); [None] = keys are claimed on first access *)
  master_region_index : int;
      (** WanKeeper/VPaxos: index (into the topology's region list) of
          the region hosting the master / level-2 group *)
  batching : batching option;
      (** leader command batching for Paxos/FPaxos/Raft; [None] (the
          default) proposes one slot per client command *)
  retransmit : retransmit option;
      (** reliable-delivery retransmission policy; [None] (the
          default) disables retransmission, matching a loss-free
          network assumption *)
  tracing : bool;
      (** collect per-request latency-dissection traces (see
          {!Paxi_obs.Trace}); off by default. Tracing only reads
          timestamps the simulator already computed — a fixed-seed run
          produces byte-identical statistics either way *)
  read_ratio : float option;
      (** when set, overrides every client workload's read share: an
          op is a [Get] with this probability (the workload's
          [write_ratio] is ignored). [None] leaves workloads exactly
          as specified — including their RNG draw sequence *)
  read_path : read_path option;
      (** read-serving strategy; [None] (the default) keeps reads on
          the write path and is byte-identical to builds without a
          read path *)
  relay_groups : int;
      (** PigPaxos-style relay trees for Paxos/Raft phase 2: partition
          the [n-1] followers into this many groups, send each round to
          one relay per group, and let relays fan out and aggregate
          acks into one bitmap reply — the leader touches [2r] messages
          per slot instead of [2(n-1)]. Group membership rotates
          deterministically and a silent relay is bypassed (the leader
          re-sends direct and re-partitions). [0] (the default) is the
          direct path, byte-identical to pre-relay builds. Incompatible
          with [thrifty]. See DESIGN.md §12. *)
  storage : Storage.config option;
      (** stable-storage model (DESIGN.md §14): [Some c] makes every
          persistent protocol write (ballots, terms, votes, accepted
          entries) traverse a simulated fsync queue before the replica
          may ack, arms Raft snapshot/log-compaction, and turns
          nemesis crashes into real crashes — volatile state is lost,
          timers are mass-cancelled, and recovery replays the durable
          log on the simulated clock. [None] (the default) keeps the
          legacy memory-only semantics and is byte-identical to
          pre-storage builds. Incompatible with [relay_groups]. *)
}

val default : n_replicas:int -> t
(** Calibrated to the paper's m5.large setup; see field defaults in the
    implementation. *)

val validate : t -> (unit, string) result
(** Reject inconsistent settings (bad quorum sizes, negative costs). *)

val majority : t -> int
(** [⌊n/2⌋ + 1]. *)

val phase2_quorum_size : t -> int
(** [q2_size] when set (FPaxos), else majority. *)

val to_json : t -> Json.t
(** Serialize to the JSON shape understood by {!of_json}. *)

val of_json : Json.t -> (t, string) result
(** Read a configuration from JSON: every field is optional and
    overrides {!default} (which requires ["n_replicas"]). Unknown
    fields are rejected to catch typos. *)

val load_file : string -> (t, string) result
(** Parse a JSON configuration file (the §4.1 distribution model). *)
