(** The protocol-developer interface of the framework (§4, Fig. 5):
    a protocol supplies its message type and a replica that handles
    client requests and peer messages; everything else — networking,
    quorums, datastore, benchmarking — comes from the shared modules.

    This mirrors Paxi's "fill in the two shaded blocks" design:
    [message] is the Messages block, and the [PROTOCOL] replica
    callbacks are the Replica block. *)

type request = { command : Command.t; sent_at_ms : float }

type reply = {
  command : Command.t;
  read : Command.value option;  (** value observed by a read *)
  replier : int;  (** replica that committed and replied *)
  leader_hint : int option;
      (** where the client should send next, if the protocol wants to
          redirect *)
}

(** Reliable-delivery operations (see {!Paxi_net.Reliable}): a message
    posted under an ack key is retransmitted on an exponential-backoff
    timer until every destination settles — by the protocol calling
    [settle] when the natural reply arrives ([ack:Piggyback]), or by
    the substrate's own acknowledgements ([ack:Explicit], which also
    suppresses duplicate deliveries at the receiver). All operations
    are inert no-ops when [Config.retransmit] is absent ([active =
    false]); posts then degrade to plain sends with identical
    accounting, so protocols call them unconditionally. *)
type 'm rel = {
  active : bool;
  fresh : unit -> int;  (** a never-used ack key *)
  post : ?key:int -> ?size_bytes:int -> ack:Reliable.ack_mode -> int -> 'm -> int;
      (** [post ~ack dst m] sends and registers; returns the key. *)
  post_multi :
    ?key:int -> ?size_bytes:int -> ack:Reliable.ack_mode -> int list -> 'm -> int;
      (** one multicast (single serialization), per-destination
          settling. *)
  post_all : ?key:int -> ?size_bytes:int -> ack:Reliable.ack_mode -> 'm -> int;
      (** [post_multi] to every other replica — the reliable
          [broadcast]. *)
  settle : dst:int -> key:int -> unit;
  settle_all : key:int -> unit;  (** withdraw the post entirely *)
  unpost_all : unit -> unit;  (** step-down: withdraw every post *)
}

val null_rel : unit -> 'm rel
(** A fully inert [rel] (unique keys, no sends, no state) for harness
    env stubs that also stub out the plain send operations. *)

(** Tracing hooks (see {!Paxi_obs.Trace}) for the two protocol-level
    milestones the transport cannot observe on its own: a client
    command being assigned a consensus slot, and that slot's quorum
    being satisfied. Protocols call these unconditionally — both are
    no-ops when tracing is disabled — and must not skip them on the
    grounds of [active]; the flag only lets a protocol avoid building
    expensive arguments. The hooks receive values the protocol already
    computed and never draw randomness or schedule events. *)
type obs = {
  active : bool;
  on_propose : slot:int -> cmd:Command.t -> unit;
  on_quorum : slot:int -> unit;
  on_read : unit -> unit;
      (** a read was served off the fast path — a local lease read, an
          ABD quorum read, or a chain tail read — i.e. it will never
          reach [on_propose] because it consumes no slot *)
  on_relay : start_ms:float -> end_ms:float -> unit;
      (** a relay (Config.relay_groups > 0) finished aggregating one
          round's group acks: [start_ms] is when the wrapped round
          reached it, [end_ms] when the combined bitmap ack left *)
}

val null_obs : obs
(** Inert hooks ([active = false]) for harness env stubs. *)

(** Capabilities handed to a replica by the cluster engine. Peer
    identifiers are replica ids [0 .. n-1]. *)
type 'm env = {
  id : int;
  n : int;
  config : Config.t;
  topology : Topology.t;
  rng : Rng.t;
  now : unit -> float;
  schedule : float -> (unit -> unit) -> Sim.handle;
      (** [schedule delay thunk] — virtual-time timer. *)
  cancel : Sim.handle -> unit;
      (** Cancel a timer from [schedule]. Stale handles (already
          fired, already cancelled, {!Sim.nil}) are ignored. *)
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;  (** to every other replica *)
  multicast : int list -> 'm -> unit;
  send_sized : int -> size_bytes:int -> 'm -> unit;
      (** like [send] with an explicit wire size — batched messages
          charge the sum of their commands' sizes instead of the
          configured per-message default *)
  broadcast_sized : size_bytes:int -> 'm -> unit;
  multicast_sized : int list -> size_bytes:int -> 'm -> unit;
  reply : Address.t -> reply -> unit;  (** answer a client *)
  forward : int -> client:Address.t -> request -> unit;
      (** hand a client request over to another replica, preserving the
          originating client address *)
  rel : 'm rel;  (** reliable-delivery operations *)
  obs : obs;  (** tracing hooks; inert when tracing is off *)
  storage : Storage.t option;
      (** this replica's stable storage ([Config.storage]); [None] =
          memory-only, where durability is free and protocols must
          keep their pre-storage behavior byte-for-byte *)
}

module type PROTOCOL = sig
  type message

  type replica

  val name : string

  val message_label : message -> string
  (** Constructor tag of a message, e.g. ["P2a"] — keys the
      per-message-type send counters of the tracing layer. *)

  val create : message env -> replica

  val on_request : replica -> client:Address.t -> request -> unit
  (** A client request arrived at this replica (directly or
      forwarded). *)

  val on_message : replica -> src:int -> message -> unit

  val on_start : replica -> unit
  (** Called once at time 0 (e.g. to elect an initial leader). *)

  val on_recover : replica -> unit
  (** Called on a {e fresh} replica instance (from {!create}) standing
      in for one that crashed, after the cluster restored whatever
      [env.storage] held. The replica must rebuild only from durable
      state — re-arm timers, rejoin the cluster — never assume its
      pre-crash volatile state (old ballot, quorum votes, leadership)
      survived. Only reached when [Config.storage] is set; memory-only
      clusters never call it. *)

  val leader_of_key : replica -> Command.key -> int option
  (** Introspection for routing and tests: which replica currently
      leads this key, if the protocol has the notion. *)

  val executor : replica -> Executor.t
  (** The replica's exactly-once execution layer; checkers read its
      state machine. *)
end

(** A protocol plus its node-cost shaping, as consumed by
    {!Cluster.Make} and the protocol registry. *)
module type RUNNABLE = sig
  include PROTOCOL

  val cpu_factor : Config.t -> float
  (** Multiplier on per-message CPU costs at this protocol's replicas
      (EPaxos charges its dependency-bookkeeping penalty here; other
      protocols return 1.0). *)
end
