(** The protocol-developer interface of the framework (§4, Fig. 5):
    a protocol supplies its message type and a replica that handles
    client requests and peer messages; everything else — networking,
    quorums, datastore, benchmarking — comes from the shared modules.

    This mirrors Paxi's "fill in the two shaded blocks" design:
    [message] is the Messages block, and the [PROTOCOL] replica
    callbacks are the Replica block. *)

type request = { command : Command.t; sent_at_ms : float }

type reply = {
  command : Command.t;
  read : Command.value option;  (** value observed by a read *)
  replier : int;  (** replica that committed and replied *)
  leader_hint : int option;
      (** where the client should send next, if the protocol wants to
          redirect *)
}

(** Capabilities handed to a replica by the cluster engine. Peer
    identifiers are replica ids [0 .. n-1]. *)
type 'm env = {
  id : int;
  n : int;
  config : Config.t;
  topology : Topology.t;
  rng : Rng.t;
  now : unit -> float;
  schedule : float -> (unit -> unit) -> Sim.handle;
      (** [schedule delay thunk] — virtual-time timer. *)
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;  (** to every other replica *)
  multicast : int list -> 'm -> unit;
  send_sized : int -> size_bytes:int -> 'm -> unit;
      (** like [send] with an explicit wire size — batched messages
          charge the sum of their commands' sizes instead of the
          configured per-message default *)
  broadcast_sized : size_bytes:int -> 'm -> unit;
  multicast_sized : int list -> size_bytes:int -> 'm -> unit;
  reply : Address.t -> reply -> unit;  (** answer a client *)
  forward : int -> client:Address.t -> request -> unit;
      (** hand a client request over to another replica, preserving the
          originating client address *)
}

module type PROTOCOL = sig
  type message

  type replica

  val name : string

  val create : message env -> replica

  val on_request : replica -> client:Address.t -> request -> unit
  (** A client request arrived at this replica (directly or
      forwarded). *)

  val on_message : replica -> src:int -> message -> unit

  val on_start : replica -> unit
  (** Called once at time 0 (e.g. to elect an initial leader). *)

  val leader_of_key : replica -> Command.key -> int option
  (** Introspection for routing and tests: which replica currently
      leads this key, if the protocol has the notion. *)

  val executor : replica -> Executor.t
  (** The replica's exactly-once execution layer; checkers read its
      state machine. *)
end

(** A protocol plus its node-cost shaping, as consumed by
    {!Cluster.Make} and the protocol registry. *)
module type RUNNABLE = sig
  include PROTOCOL

  val cpu_factor : Config.t -> float
  (** Multiplier on per-message CPU costs at this protocol's replicas
      (EPaxos charges its dependency-bookkeeping penalty here; other
      protocols return 1.0). *)
end
