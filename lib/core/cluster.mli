(** Cluster engine: instantiates one replica of a protocol per
    topology slot, wires them through a virtual-time transport, and
    routes client requests and replies.

    The engine is a functor over {!Proto.PROTOCOL}, so each protocol
    gets a transport specialized to its own message type — the
    simulation-mode equivalent of Paxi running all nodes in one
    process over Go channels (§4.1 Networking). *)

type 'p envelope =
  | Peer of 'p
  | Request of { client : Address.t; request : Proto.request }
  | Reply of Proto.reply
  | Rel of 'p Reliable.packet
      (** a protocol message under reliable-delivery bookkeeping, or
          one of the substrate's own acks (see {!Paxi_net.Reliable}) *)

module Make (P : Proto.RUNNABLE) : sig
  type t
  (** One consensus group: replicas, transport, reliable endpoints and
      the client pending table. *)

  type shared
  (** The context a group — or several groups, in a sharded deployment
      — runs over: one virtual-time heap ([Sim.t]), one latency matrix
      ([Topology.t]) and one fault plane ([Faults.t]). Groups sharing
      a [shared] are co-located by replica index: fault injection is
      addressed by [Address.replica i], so crashing machine [i] takes
      out replica [i] of every group at once (rack-scoped faults),
      while each group keeps its own leader, failover clocks and
      processing queues. *)

  val create_shared :
    ?sim:Sim.t ->
    ?faults:Faults.t ->
    config:Config.t ->
    topology:Topology.t ->
    unit ->
    shared
  (** Validate the config/topology pair and build the shared context
      (the sim defaults to a fresh one seeded from [config.seed]).
      Raises [Invalid_argument] on an invalid config or when the
      topology size disagrees with [config.n_replicas]. *)

  val create_group : ?gid:int -> shared -> t
  (** Instantiate one group over the shared context: replicas are
      created and [P.on_start] runs at virtual time 0. [gid] (default
      0) labels the group for sharded deployments. *)

  val create :
    ?sim:Sim.t ->
    ?faults:Faults.t ->
    config:Config.t ->
    topology:Topology.t ->
    unit ->
    t
  (** [create_shared] followed by [create_group ~gid:0] — the classic
      one-group deployment, byte-identical to the pre-shard engine. *)

  val sim : t -> Sim.t
  val gid : t -> int
  val shared : t -> shared

  val trace : t -> Paxi_obs.Trace.t
  (** The cluster's latency-dissection trace. Disabled (a no-op sink)
      unless [config.tracing] is set; when enabled, the transport
      observer and protocol hooks feed it per-request spans, per-hop
      queue accounting and per-message-type counters. *)

  val config : t -> Config.t
  val topology : t -> Topology.t
  val faults : t -> Faults.t
  val replica : t -> int -> P.replica

  val register_client : t -> id:int -> ?region:Region.t -> unit -> unit
  (** Declare a client and (for WAN topologies) pin it to a region. *)

  val submit :
    t ->
    client:int ->
    target:int ->
    command:Command.t ->
    on_reply:(Proto.reply -> unit) ->
    unit
  (** Send [command] from [client] to replica [target]. [on_reply]
      fires at most once, when some replica answers for this command
      id; re-submitting the same command id replaces the callback
      (client retry). *)

  val pending : t -> client:int -> command:Command.t -> bool
  (** Is this command still awaiting a reply? *)

  val give_up : t -> client:int -> command:Command.t -> unit
  (** Drop the pending callback (client abandons the request). *)

  val leader_of_key : t -> replica:int -> Command.key -> int option

  val nearest_replica : t -> client:int -> int
  (** Lowest-id replica in the client's region; falls back to replica
      0 when the region hosts none. *)

  val message_counts : t -> int * int * int
  (** (sent, delivered, dropped) protocol+client messages so far. *)

  val retransmit_counts : t -> int * int
  (** (retransmits, dup_drops) summed over every replica's
      reliable-delivery endpoint; both 0 when retransmission is
      disabled. *)

  val replica_busy_ms : t -> int -> float
  (** Cumulative processing-queue occupancy of a replica — the
      busiest-node load of §6. *)

  val storage : t -> int -> Storage.t option
  (** A replica's stable-storage device; [None] on memory-only
      clusters ([Config.storage] unset). *)

  val recoveries : t -> int
  (** Crash-recovery edges completed (a fresh replica instance booted
      from durable state). 0 on memory-only clusters, where crashes
      are transport-level pauses. *)

  val replay_ms_total : t -> float
  (** Total simulated time spent replaying durable logs at recovery
      edges. *)

  val timers_cancelled : t -> int
  (** Pending events mass-cancelled at crash edges across all
      replicas. *)

  val storage_totals : t -> int * int * float * int
  (** (writes, fsyncs, fsync busy ms, lost writes) summed over every
      replica's storage device; zeros when storage is off. *)
end
