type 'a t = {
  mutable slots : 'a option array;
  mutable high : int; (* one past highest occupied slot *)
  mutable frontier : int;
  mutable filled : int;
  mutable base : int; (* slots below this were compacted into a snapshot *)
}

let create () =
  { slots = Array.make 64 None; high = 0; frontier = 0; filled = 0; base = 0 }

let ensure t i =
  let cap = Array.length t.slots in
  if i >= cap then begin
    let ncap = ref (cap * 2) in
    while i >= !ncap do
      ncap := !ncap * 2
    done;
    let ns = Array.make !ncap None in
    Array.blit t.slots 0 ns 0 cap;
    t.slots <- ns
  end

let get t i = if i < 0 || i >= Array.length t.slots then None else t.slots.(i)

let set t i v =
  if i < 0 then invalid_arg "Slot_log.set: negative slot";
  if i >= t.base then begin
    ensure t i;
    if t.slots.(i) = None then t.filled <- t.filled + 1;
    t.slots.(i) <- Some v;
    if i >= t.high then t.high <- i + 1
  end
  (* below [base]: the slot's effect is already folded into the
     snapshot — a late duplicate append carries no new information *)

let update t i ~f = set t i (f (get t i))
let next_slot t = t.high

let reserve t =
  let s = t.high in
  t.high <- t.high + 1;
  s

let exec_frontier t = t.frontier

let advance_frontier t ~executable ~f =
  let continue = ref true in
  while !continue do
    match get t t.frontier with
    | Some v when executable v ->
        f t.frontier v;
        t.frontier <- t.frontier + 1
    | _ -> continue := false
  done

let iter_filled t ~f =
  for i = 0 to t.high - 1 do
    match t.slots.(i) with Some v -> f i v | None -> ()
  done

let iter_from t ~start ~f =
  for i = (if start < 0 then 0 else start) to t.high - 1 do
    match t.slots.(i) with Some v -> f i v | None -> ()
  done

let filled_count t = t.filled
let base t = t.base

let truncate t ~upto =
  if upto > t.base then begin
    let hi = min upto (Array.length t.slots) in
    for i = t.base to hi - 1 do
      if t.slots.(i) <> None then begin
        t.slots.(i) <- None;
        t.filled <- t.filled - 1
      end
    done;
    t.base <- upto;
    if t.frontier < upto then t.frontier <- upto;
    if t.high < upto then t.high <- upto
  end
