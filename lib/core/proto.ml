type request = { command : Command.t; sent_at_ms : float }

type reply = {
  command : Command.t;
  read : Command.value option;
  replier : int;
  leader_hint : int option;
}

(* Reliable-delivery operations over the cluster's shared
   {!Paxi_net.Reliable} endpoint: post a message under an ack key and
   the substrate retransmits it (per [Config.retransmit]) until every
   destination settles. Inert when retransmission is disabled
   ([active = false]): posts degrade to plain sends and settles are
   no-ops, so protocols can call these unconditionally. *)
type 'm rel = {
  active : bool;
  fresh : unit -> int;
  post : ?key:int -> ?size_bytes:int -> ack:Reliable.ack_mode -> int -> 'm -> int;
  post_multi :
    ?key:int -> ?size_bytes:int -> ack:Reliable.ack_mode -> int list -> 'm -> int;
  post_all : ?key:int -> ?size_bytes:int -> ack:Reliable.ack_mode -> 'm -> int;
  settle : dst:int -> key:int -> unit;
  settle_all : key:int -> unit;
  unpost_all : unit -> unit;
}

(* A fully inert [rel] for harness env stubs that also stub out the
   plain send operations: posts go nowhere and settles are no-ops,
   but keys are still unique. *)
let null_rel () =
  let next = ref 0 in
  let fresh () =
    incr next;
    !next
  in
  {
    active = false;
    fresh;
    post = (fun ?key ?size_bytes:_ ~ack:_ _ _ ->
        match key with Some k -> k | None -> fresh ());
    post_multi = (fun ?key ?size_bytes:_ ~ack:_ _ _ ->
        match key with Some k -> k | None -> fresh ());
    post_all = (fun ?key ?size_bytes:_ ~ack:_ _ ->
        match key with Some k -> k | None -> fresh ());
    settle = (fun ~dst:_ ~key:_ -> ());
    settle_all = (fun ~key:_ -> ());
    unpost_all = (fun () -> ());
  }

(* Tracing hooks a replica calls at the two protocol-level milestones
   the transport cannot see: a command being assigned a slot, and that
   slot's quorum being satisfied. Plain closures so protocols stay
   decoupled from the observability layer; no-ops when tracing is off
   ([active = false]). *)
type obs = {
  active : bool;
  on_propose : slot:int -> cmd:Command.t -> unit;
  on_quorum : slot:int -> unit;
  on_read : unit -> unit;
  on_relay : start_ms:float -> end_ms:float -> unit;
      (** a relay finished aggregating one round's group acks
          ([start_ms] = round received, [end_ms] = combined ack sent) *)
}

let null_obs =
  {
    active = false;
    on_propose = (fun ~slot:_ ~cmd:_ -> ());
    on_quorum = (fun ~slot:_ -> ());
    on_read = (fun () -> ());
    on_relay = (fun ~start_ms:_ ~end_ms:_ -> ());
  }

type 'm env = {
  id : int;
  n : int;
  config : Config.t;
  topology : Topology.t;
  rng : Rng.t;
  now : unit -> float;
  schedule : float -> (unit -> unit) -> Sim.handle;
  cancel : Sim.handle -> unit;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;
  multicast : int list -> 'm -> unit;
  send_sized : int -> size_bytes:int -> 'm -> unit;
  broadcast_sized : size_bytes:int -> 'm -> unit;
  multicast_sized : int list -> size_bytes:int -> 'm -> unit;
  reply : Address.t -> reply -> unit;
  forward : int -> client:Address.t -> request -> unit;
  rel : 'm rel;
  obs : obs;
  storage : Storage.t option;
}

module type PROTOCOL = sig
  type message
  type replica

  val name : string
  val message_label : message -> string
  val create : message env -> replica
  val on_request : replica -> client:Address.t -> request -> unit
  val on_message : replica -> src:int -> message -> unit
  val on_start : replica -> unit
  val on_recover : replica -> unit
  val leader_of_key : replica -> Command.key -> int option
  val executor : replica -> Executor.t
end

module type RUNNABLE = sig
  include PROTOCOL

  val cpu_factor : Config.t -> float
end
