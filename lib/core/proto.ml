type request = { command : Command.t; sent_at_ms : float }

type reply = {
  command : Command.t;
  read : Command.value option;
  replier : int;
  leader_hint : int option;
}

type 'm env = {
  id : int;
  n : int;
  config : Config.t;
  topology : Topology.t;
  rng : Rng.t;
  now : unit -> float;
  schedule : float -> (unit -> unit) -> Sim.handle;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;
  multicast : int list -> 'm -> unit;
  send_sized : int -> size_bytes:int -> 'm -> unit;
  broadcast_sized : size_bytes:int -> 'm -> unit;
  multicast_sized : int list -> size_bytes:int -> 'm -> unit;
  reply : Address.t -> reply -> unit;
  forward : int -> client:Address.t -> request -> unit;
}

module type PROTOCOL = sig
  type message
  type replica

  val name : string
  val create : message env -> replica
  val on_request : replica -> client:Address.t -> request -> unit
  val on_message : replica -> src:int -> message -> unit
  val on_start : replica -> unit
  val leader_of_key : replica -> Command.key -> int option
  val executor : replica -> Executor.t
end

module type RUNNABLE = sig
  include PROTOCOL

  val cpu_factor : Config.t -> float
end
