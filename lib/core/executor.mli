(** Exactly-once command execution over a replica's state machine.

    Consensus may decide the same command in more than one slot when
    clients retry after a timeout; the executor applies each distinct
    [(client, id)] once and memoizes the result so re-decided commands
    still produce a reply with the original read value. *)

type t

val create : unit -> t

val execute : t -> Command.t -> Command.value option
(** Apply the command (or recall its memoized result) and return the
    read value. No-ops return [None] and are not applied. *)

val read : t -> Command.t -> Command.value option
(** Peek at the current value of a [Get]'s key without consuming a
    slot or touching the memo table — the fast read path (lease, ABD
    and tail reads). Returns [None] for writes and absent keys. *)

val already_executed : t -> Command.t -> bool
val state_machine : t -> State_machine.t
val executed_count : t -> int
(** Distinct commands applied (excludes no-ops and duplicates). *)

val image : t -> Command.t array
(** The applied-command prefix, oldest first: a snapshot image that
    {!install} replays to rebuild the store, memo table and applied
    sequence exactly (no-ops are never applied, so never appear). *)

val install : t -> Command.t array -> unit
(** Reset to [image]: replay every command through a fresh state
    machine, deterministically reconstructing the KV — the receiving
    half of snapshot install and crash recovery. *)
