type 'p envelope =
  | Peer of 'p
  | Request of { client : Address.t; request : Proto.request }
  | Reply of Proto.reply
  | Rel of 'p Reliable.packet
      (** a protocol message under reliable-delivery bookkeeping, or
          one of the substrate's own acks *)

module Make (P : Proto.RUNNABLE) = struct
  (* The context one or more groups run over: a single virtual-time
     heap, latency matrix and fault plane. A classic deployment is one
     group; a sharded deployment instantiates K groups over one
     [shared] (lib/shard), each with its own replicas, transport,
     reliable endpoints and pending table. *)
  type shared = {
    sim : Sim.t;
    config : Config.t;
    topology : Topology.t;
    faults : Faults.t;
  }

  type t = {
    shared : shared;
    gid : int;
    transport : P.message envelope Transport.t;
    endpoints : (P.message, P.message envelope) Reliable.t array;
    replicas : P.replica array;
    (* (client << 32) | cmd_id -> reply callback. One flat table per
       group instead of a Hashtbl of per-client Hashtbls: the packed
       int key (same trick as Reliable's dedup keys) keeps the K-group
       client path from multiplying small-table allocation. *)
    pending : (int, Proto.reply -> unit) Hashtbl.t;
    trace : Paxi_obs.Trace.t;
    (* Crash domains (Config.storage only — all three stay inert on
       memory-only clusters): per-replica timer ownership registries,
       stable-storage devices, and the down flags that hold a replica
       offline between its crash window's end and the moment log
       replay finishes. *)
    timers : Timers.t array;
    storages : Storage.t option array;
    down : bool array;
    mutable recoveries : int;
    mutable replay_ms_total : float;
  }

  let pending_key ~client ~id = (client lsl 32) lor (id land 0xFFFF_FFFF)

  let deliver_reply t cid (reply : Proto.reply) =
    if reply.command.Command.client <> cid then ()
    else
      let key = pending_key ~client:cid ~id:reply.command.Command.id in
      match Hashtbl.find_opt t.pending key with
      | Some cb ->
          Hashtbl.remove t.pending key;
          cb reply
      | None -> () (* late duplicate reply after retry already answered *)

  let make_env t transport i : P.message Proto.env =
    let addr = Address.replica i in
    let ep = t.endpoints.(i) in
    let config = t.shared.config in
    let peer_addrs =
      List.init config.Config.n_replicas Fun.id
      |> List.filter_map (fun j ->
             if j = i then None else Some (Address.replica j))
    in
    let rel_active =
      match config.Config.retransmit with
      | Some r -> r.Config.max_tries > 0
      | None -> false
    in
    (* per-message-type counters: tag every protocol-level send (plain
       or reliable-posted) at the env wrappers, where the message is
       still a [P.message] rather than an envelope *)
    let tally =
      if Paxi_obs.Trace.enabled t.trace then fun m ->
        Paxi_obs.Trace.count_msg t.trace (P.message_label m)
      else fun _ -> ()
    in
    let tag label =
      if Paxi_obs.Trace.enabled t.trace then fun () ->
        Paxi_obs.Trace.count_msg t.trace label
      else fun () -> ()
    in
    let tally_reply = tag "reply" and tally_forward = tag "forward" in
    let obs =
      if Paxi_obs.Trace.enabled t.trace then
        {
          Proto.active = true;
          on_propose =
            (fun ~slot ~cmd ->
              Paxi_obs.Trace.on_propose t.trace ~slot
                ~client:cmd.Command.client ~cmd_id:cmd.Command.id
                ~now_ms:(Sim.now t.shared.sim));
          on_quorum =
            (fun ~slot ->
              Paxi_obs.Trace.on_quorum t.trace ~slot
                ~now_ms:(Sim.now t.shared.sim));
          on_read = (fun () -> Paxi_obs.Trace.on_fast_read t.trace);
          on_relay =
            (fun ~start_ms ~end_ms ->
              Paxi_obs.Trace.on_relay_hop t.trace ~start_ms ~end_ms);
        }
      else Proto.null_obs
    in
    {
      Proto.id = i;
      n = config.Config.n_replicas;
      config;
      topology = t.shared.topology;
      rng = Rng.split (Sim.rng t.shared.sim);
      (* A replica reads its *local* clock: simulator time plus
         whatever skew the nemesis is currently injecting at this node.
         Only protocol decisions (lease expiry, timeouts) see the
         offset; event scheduling stays on true simulator time. The
         fold is exactly 0.0 on an empty schedule, so fault-free runs
         are byte-identical. *)
      now =
        (fun () ->
          let t0 = Sim.now t.shared.sim in
          t0 +. Faults.clock_offset t.shared.faults ~now_ms:t0 addr);
      schedule =
        (* durable clusters route every protocol timer through the
           replica's ownership registry so a crash can mass-cancel
           them; memory-only clusters keep the raw path (identical
           closures, no tracking) *)
        (if config.Config.storage = None then fun delay f ->
           Sim.schedule_after t.shared.sim ~delay f
         else
           let tm = t.timers.(i) in
           fun delay f -> Timers.track tm (Sim.schedule_after t.shared.sim ~delay f));
      cancel = (fun h -> Sim.cancel t.shared.sim h);
      send =
        (fun dst m ->
          tally m;
          Transport.send transport ~src:addr ~dst:(Address.replica dst)
            (Peer m));
      broadcast =
        (fun m ->
          tally m;
          Transport.broadcast transport ~src:addr (Peer m));
      multicast =
        (fun dsts m ->
          tally m;
          Transport.multicast transport ~src:addr
            ~dsts:(List.map Address.replica dsts)
            (Peer m));
      send_sized =
        (fun dst ~size_bytes m ->
          tally m;
          Transport.send transport ~src:addr ~dst:(Address.replica dst)
            ~size_bytes (Peer m));
      broadcast_sized =
        (fun ~size_bytes m ->
          tally m;
          Transport.broadcast transport ~src:addr ~size_bytes (Peer m));
      multicast_sized =
        (fun dsts ~size_bytes m ->
          tally m;
          Transport.multicast transport ~src:addr
            ~dsts:(List.map Address.replica dsts)
            ~size_bytes (Peer m));
      reply =
        (fun client r ->
          tally_reply ();
          Transport.send transport ~src:addr ~dst:client (Reply r));
      forward =
        (fun dst ~client request ->
          tally_forward ();
          Transport.send transport ~src:addr ~dst:(Address.replica dst)
            (Request { client; request }));
      rel =
        {
          Proto.active = rel_active;
          fresh = (fun () -> Reliable.fresh ep);
          post =
            (fun ?key ?size_bytes ~ack dst m ->
              tally m;
              Reliable.post ep ?key ?size_bytes ~ack
                ~dst:(Address.replica dst) m);
          post_multi =
            (fun ?key ?size_bytes ~ack dsts m ->
              tally m;
              Reliable.post_multi ep ?key ?size_bytes ~ack
                ~dsts:(List.map Address.replica dsts)
                m);
          post_all =
            (fun ?key ?size_bytes ~ack m ->
              tally m;
              Reliable.post_multi ep ?key ?size_bytes ~ack ~dsts:peer_addrs m);
          settle =
            (fun ~dst ~key ->
              Reliable.settle ep ~dst:(Address.replica dst) ~key);
          settle_all = (fun ~key -> Reliable.settle_all ep ~key);
          unpost_all = (fun () -> Reliable.unpost_all ep);
        };
      obs;
      storage = t.storages.(i);
    }

  (* ---- crash / recovery edges (Config.storage only) ----------------- *)

  (* Merge a node's crash windows into disjoint [from, until) spans so
     overlapping or abutting windows yield one crash edge and one
     recovery edge. *)
  let merge_windows ws =
    let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) ws in
    List.rev
      (List.fold_left
         (fun acc (f, u) ->
           match acc with
           | (pf, pu) :: rest when f <= pu -> (pf, Float.max pu u) :: rest
           | _ -> (f, u) :: acc)
         [] sorted)

  (* The crash is real (the bug this PR fixes): the replica loses every
     byte of volatile state. Its timers are mass-cancelled, its
     reliable-delivery endpoint forgets open posts and dedup memory,
     and the storage device discards the unsynced tail. The replica
     object itself stays in place only as an inert corpse — [down]
     stops deliveries, and recovery replaces it wholesale. *)
  let crash_edge t i =
    t.down.(i) <- true;
    Timers.cancel_all t.timers.(i);
    Reliable.crash_reset t.endpoints.(i);
    match t.storages.(i) with Some st -> Storage.crash st | None -> ()

  (* Recovery edge (the crash window just closed): charge the log
     replay on the simulated clock, then boot a fresh replica instance
     that rebuilds itself from storage alone via [P.on_recover]. *)
  let recovery_edge t transport i =
    let sim = t.shared.sim in
    let replay =
      match t.storages.(i) with
      | Some st -> Storage.replay_cost_ms st
      | None -> 0.0
    in
    t.recoveries <- t.recoveries + 1;
    t.replay_ms_total <- t.replay_ms_total +. replay;
    ignore
      (Sim.schedule_after sim ~delay:replay (fun () ->
           (* a later crash window may have opened during replay; its
              own recovery edge owns the reboot then *)
           if
             not
               (Faults.is_crashed t.shared.faults ~now_ms:(Sim.now sim)
                  (Address.replica i))
           then begin
             let r = P.create (make_env t transport i) in
             t.replicas.(i) <- r;
             t.down.(i) <- false;
             P.on_recover r
           end))

  let schedule_crash_edges t transport =
    let sim = t.shared.sim in
    let now = Sim.now sim in
    for i = 0 to Array.length t.down - 1 do
      Faults.crash_windows t.shared.faults (Address.replica i)
      |> merge_windows
      |> List.iter (fun (from_ms, until_ms) ->
             ignore
               (Sim.schedule_at sim ~time:(Float.max from_ms now) (fun () ->
                    crash_edge t i));
             ignore
               (Sim.schedule_at sim ~time:(Float.max until_ms now) (fun () ->
                    recovery_edge t transport i)))
    done

  let create_shared ?sim ?faults ~config ~topology () =
    (match Config.validate config with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Cluster.create: " ^ msg));
    if Topology.n_replicas topology <> config.Config.n_replicas then
      invalid_arg
        (Printf.sprintf "Cluster.create: topology has %d replicas, config %d"
           (Topology.n_replicas topology)
           config.Config.n_replicas);
    let sim =
      match sim with Some s -> s | None -> Sim.create ~seed:config.Config.seed ()
    in
    let faults = match faults with Some f -> f | None -> Faults.create () in
    { sim; config; topology; faults }

  let create_group ?(gid = 0) (shared : shared) =
    let { sim; config; topology; faults } = shared in
    let factor = P.cpu_factor config in
    let processing _i =
      Procq.create
        ~t_in_ms:(config.Config.t_in_ms *. factor)
        ~t_out_ms:(config.Config.t_out_ms *. factor)
        ~bandwidth_mbps:config.Config.bandwidth_mbps ()
    in
    let transport =
      Transport.create ~sim ~topology ~faults
        ~default_size_bytes:config.Config.msg_size_bytes ~processing ()
    in
    let policy =
      match config.Config.retransmit with
      | Some r ->
          {
            Reliable.base_ms = r.Config.base_ms;
            max_ms = r.Config.max_ms;
            max_tries = r.Config.max_tries;
          }
      | None -> Reliable.inert
    in
    let endpoints =
      Array.init config.Config.n_replicas (fun i ->
          Reliable.create ~transport ~self:(Address.replica i) ~policy
            ~inject:(fun pkt -> Rel pkt))
    in
    let trace = Paxi_obs.Trace.create ~enabled:config.Config.tracing () in
    let n = config.Config.n_replicas in
    let timers =
      match config.Config.storage with
      | None -> [||]
      | Some _ -> Array.init n (fun _ -> Timers.create sim)
    in
    let storages =
      match config.Config.storage with
      | None -> Array.make n None
      | Some sc ->
          Array.init n (fun i ->
              let tm = timers.(i) in
              Some
                (Storage.create ~config:sc ~sim
                   ~schedule:(fun delay f ->
                     ignore (Timers.track tm (Sim.schedule_after sim ~delay f)))
                   ~rng_parent:(Sim.rng sim)))
    in
    let t =
      {
        shared;
        gid;
        transport;
        endpoints;
        replicas = [||];
        pending = Hashtbl.create 64;
        trace;
        timers;
        storages;
        down = Array.make n false;
        recoveries = 0;
        replay_ms_total = 0.0;
      }
    in
    if config.Config.tracing then
      Transport.set_observer transport
        (Some
           {
             Transport.on_delivery =
               (fun ~src:_ ~dst ~size_bytes:_ ~sent_ms ~arrival_ms ~wait_ms
                    ~service_ms ~ready_ms msg ->
                 (match msg with
                 | Request { client = Address.Client cid; request } ->
                     Paxi_obs.Trace.on_request_arrival trace ~client:cid
                       ~cmd_id:request.Proto.command.Command.id ~arrival_ms
                       ~wait_ms ~service_ms ~ready_ms
                 | Reply r ->
                     Paxi_obs.Trace.on_reply trace
                       ~client:r.Proto.command.Command.client
                       ~cmd_id:r.Proto.command.Command.id ~sent_ms ~ready_ms
                 | _ -> ());
                 match dst with
                 | Address.Replica i ->
                     Paxi_obs.Trace.on_hop trace ~node:i ~now_ms:arrival_ms
                       ~wait_ms ~service_ms
                 | Address.Client _ -> ());
             on_transmit =
               (fun ~src ~now_ms ~wait_ms ~service_ms ~copies:_ ~size_bytes:_ ->
                 match src with
                 | Address.Replica i ->
                     Paxi_obs.Trace.on_hop trace ~node:i ~now_ms ~wait_ms
                       ~service_ms
                 | Address.Client _ -> ());
           });
    let replicas =
      Array.init config.Config.n_replicas (fun i ->
          P.create (make_env t transport i))
    in
    let t = { t with replicas } in
    Array.iteri
      (fun i _ ->
        (* handlers look the replica up through [t.replicas] on every
           delivery (not a captured binding): recovery swaps in a
           fresh instance and deliveries must reach it, never the dead
           one. [down] holds the slot offline between the crash
           window's end and the end of log replay. *)
        Transport.register transport (Address.replica i) (fun ~src msg ->
            if t.down.(i) then ()
            else
              let replica = t.replicas.(i) in
              match msg with
              | Peer m -> P.on_message replica ~src:(Address.replica_id src) m
              | Request { client; request } ->
                  P.on_request replica ~client request
              | Rel pkt ->
                  Reliable.on_packet t.endpoints.(i) ~src
                    ~deliver:(fun ~src m ->
                      P.on_message replica ~src:(Address.replica_id src) m)
                    pkt
              | Reply _ -> () (* replicas never receive replies *)))
      replicas;
    Array.iter
      (fun r ->
        ignore
          (Sim.schedule_at sim ~time:(Sim.now sim) (fun () -> P.on_start r)))
      replicas;
    if config.Config.storage <> None then schedule_crash_edges t transport;
    t

  let create ?sim ?faults ~config ~topology () =
    create_group (create_shared ?sim ?faults ~config ~topology ())

  let sim t = t.shared.sim
  let trace t = t.trace
  let config t = t.shared.config
  let topology t = t.shared.topology
  let faults t = t.shared.faults
  let gid t = t.gid
  let shared t = t.shared
  let replica t i = t.replicas.(i)

  let register_client t ~id ?region () =
    (match region with
    | Some r -> Topology.assign_client t.shared.topology ~id ~region:r
    | None -> ());
    let addr = Address.client id in
    Transport.register t.transport addr (fun ~src:_ msg ->
        match msg with
        | Reply r -> deliver_reply t id r
        | Peer _ | Request _ | Rel _ -> ())

  let submit t ~client ~target ~command ~on_reply =
    Hashtbl.replace t.pending
      (pending_key ~client ~id:command.Command.id)
      on_reply;
    let request = { Proto.command; sent_at_ms = Sim.now t.shared.sim } in
    if Paxi_obs.Trace.enabled t.trace then
      Paxi_obs.Trace.on_submit t.trace ~client ~cmd_id:command.Command.id
        ~is_read:(Command.is_read command) ~now_ms:(Sim.now t.shared.sim);
    Transport.send t.transport ~src:(Address.client client)
      ~dst:(Address.replica target)
      (Request { client = Address.client client; request })

  let pending t ~client ~command =
    Hashtbl.mem t.pending (pending_key ~client ~id:command.Command.id)

  let give_up t ~client ~command =
    Hashtbl.remove t.pending (pending_key ~client ~id:command.Command.id)

  let leader_of_key t ~replica key = P.leader_of_key t.replicas.(replica) key

  let nearest_replica t ~client =
    let region = Topology.region_of t.shared.topology (Address.client client) in
    match Topology.replicas_in t.shared.topology region with
    | r :: _ -> r
    | [] -> 0

  let message_counts t =
    ( Transport.sent_count t.transport,
      Transport.delivered_count t.transport,
      Transport.dropped_count t.transport )

  let retransmit_counts t =
    Array.fold_left
      (fun (r, d) ep -> (r + Reliable.retransmits ep, d + Reliable.dup_drops ep))
      (0, 0) t.endpoints

  let replica_busy_ms t i =
    Procq.busy_time (Transport.procq t.transport (Address.replica i))

  let storage t i = t.storages.(i)
  let recoveries t = t.recoveries
  let replay_ms_total t = t.replay_ms_total

  let timers_cancelled t =
    Array.fold_left (fun acc tm -> acc + Timers.cancelled_total tm) 0 t.timers

  let storage_totals t =
    Array.fold_left
      (fun (w, f, b, l) st ->
        match st with
        | None -> (w, f, b, l)
        | Some st ->
            ( w + Storage.writes st,
              f + Storage.fsyncs st,
              b +. Storage.busy_ms st,
              l + Storage.lost_writes st ))
      (0, 0, 0.0, 0) t.storages
end
