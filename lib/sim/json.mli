(** Minimal JSON reader/writer for configuration files (§4.1: Paxi
    manages configuration "via a JSON file distributed to every
    node"). Supports the full JSON grammar except exotic number forms
    and unicode escapes beyond the BMP; no external dependencies.
    Lives in the base simulator layer so every layer above it — fault
    schedules in [paxi_net], configuration in [paxi], reports in the
    benchmark harness — can serialize without circular deps. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; the error carries a character
    offset. *)

val to_string : t -> string
(** Serialize (compact). *)

val member : string -> t -> t option
(** Field lookup on an object; [None] on anything else. *)

val to_int : t -> int option
val to_float : t -> float option
val to_bool : t -> bool option
val get_string : t -> string option
