(* Per-crash-domain timer ownership registry.

   A nemesis crash must take down every timer the dead replica owns —
   election clocks, heartbeat loops, retransmit backoffs, lease
   renewals, storage fsync completions — or stale events fire into the
   recovered instance and corrupt its fresh state (the pre-PR-10
   "pause-not-crash" bug). The simulator's packed (generation, slot)
   handles make this cheap: the registry just remembers every handle
   its owner scheduled and mass-cancels the still-live ones at the
   crash edge. [Sim.cancel] on the batch then triggers the heap's
   lazy-deletion compaction, so even thousands of pending retransmit
   timers are released in one O(heap) pass.

   Handles of events that already fired go stale on their own
   (generation bump at [retire]); [track] sweeps them out lazily when
   the vector fills, so steady-state loops (heartbeat, failover) keep
   the registry at O(live timers), not O(all timers ever). *)

type t = {
  sim : Sim.t;
  mutable handles : Sim.handle array;
  mutable len : int;
  mutable cancelled : int;
}

let create sim = { sim; handles = Array.make 16 Sim.nil; len = 0; cancelled = 0 }

(* Drop handles whose events already fired (or were cancelled). *)
let sweep t =
  let k = ref 0 in
  for i = 0 to t.len - 1 do
    let h = t.handles.(i) in
    if Sim.live t.sim h then begin
      t.handles.(!k) <- h;
      incr k
    end
  done;
  t.len <- !k

let track t h =
  if t.len >= Array.length t.handles then begin
    sweep t;
    (* still mostly live after the sweep: genuinely need more room *)
    if 2 * t.len >= Array.length t.handles then begin
      let grown = Array.make (2 * Array.length t.handles) Sim.nil in
      Array.blit t.handles 0 grown 0 t.len;
      t.handles <- grown
    end
  end;
  t.handles.(t.len) <- h;
  t.len <- t.len + 1;
  h

let cancel_all t =
  for i = 0 to t.len - 1 do
    let h = t.handles.(i) in
    if Sim.live t.sim h then begin
      Sim.cancel t.sim h;
      t.cancelled <- t.cancelled + 1
    end;
    t.handles.(i) <- Sim.nil
  done;
  t.len <- 0

let live_count t =
  let k = ref 0 in
  for i = 0 to t.len - 1 do
    if Sim.live t.sim t.handles.(i) then incr k
  done;
  !k

let cancelled_total t = t.cancelled
