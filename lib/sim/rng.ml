type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x85ebca6b |]
let split t = Random.State.split t
let[@inline] float t bound = Random.State.float t bound

let int t bound =
  assert (bound > 0);
  Random.State.int t bound

let bool t = Random.State.bool t
let[@inline] bernoulli t ~p = Random.State.float t 1.0 < p

let[@inline] uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. Random.State.float t (hi -. lo)

(* Box–Muller: draw u1 away from 0 to keep [log] finite. *)
let[@inline] normal t ~mu ~sigma =
  let u1 = 1.0 -. Random.State.float t 1.0 in
  let u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* Same draws and operation order as [normal], but the result lands in
   [dst.(0)] instead of a boxed return value: without flambda every
   cross-function float return allocates, and this sampler sits on the
   per-message delay path. *)
let normal_into t ~mu ~sigma dst =
  let u1 = 1.0 -. Random.State.float t 1.0 in
  let u2 = Random.State.float t 1.0 in
  dst.(0) <- mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let[@inline] exponential t ~rate =
  assert (rate > 0.0);
  let u = 1.0 -. Random.State.float t 1.0 in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(Random.State.int t (Array.length a))
