type t = Rng.t -> float

let constant c = fun _ -> c
let uniform ~lo ~hi = fun rng -> Rng.uniform rng ~lo ~hi
let normal ~mu ~sigma = fun rng -> Rng.normal rng ~mu ~sigma

let normal_pos ~mu ~sigma =
  fun rng ->
    let rec draw tries =
      let x = Rng.normal rng ~mu ~sigma in
      if x >= 0.0 then x else if tries > 32 then Float.max 0.0 mu else draw (tries + 1)
    in
    draw 0

let exponential ~mean =
  assert (mean > 0.0);
  fun rng -> Rng.exponential rng ~rate:(1.0 /. mean)

let shifted d ~by = fun rng -> d rng +. by
let scaled d ~by = fun rng -> d rng *. by
let sample d rng = d rng

let mean_estimate d rng ~n =
  assert (n > 0);
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. d rng
  done;
  !acc /. float_of_int n

module Discrete = struct
  (* A discrete sampler is either a direct draw or an inverse-CDF table
     over k keys; [moving] shifts the key space with workload time. *)
  type kind =
    | Uniform
    | Table of float array (* cumulative popularity, length k *)
    | Gaussian of { mu : float; sigma : float }
    | Hotspot of { hot_k : int; mass : float }
        (* [mass] of the draws land uniformly in [0..hot_k-1], the
           rest uniformly in [hot_k..k-1] *)

  type t = { k : int; kind : kind; move_speed_ms : float; move_drift : float }

  let plain k kind = { k; kind; move_speed_ms = 0.0; move_drift = 0.0 }

  let uniform ~k =
    assert (k > 0);
    plain k Uniform

  let cumulative weights =
    let k = Array.length weights in
    let cum = Array.make k 0.0 in
    let acc = ref 0.0 in
    for i = 0 to k - 1 do
      acc := !acc +. weights.(i);
      cum.(i) <- !acc
    done;
    let total = !acc in
    Array.map (fun x -> x /. total) cum

  let zipfian ~k ~s ~v =
    assert (k > 0 && v > 0.0);
    let weights = Array.init k (fun i -> 1.0 /. ((float_of_int i +. v) ** s)) in
    plain k (Table (cumulative weights))

  let normal ~k ~mu ~sigma =
    assert (k > 0 && sigma > 0.0);
    plain k (Gaussian { mu; sigma })

  let hotspot ~k ~hot_fraction ~mass =
    assert (k > 1 && hot_fraction > 0.0 && hot_fraction < 1.0);
    assert (mass >= 0.0 && mass <= 1.0);
    (* at least one key on each side so both uniform draws are valid *)
    let hot_k = Int.max 1 (Int.min (k - 1) (int_of_float (Float.round (hot_fraction *. float_of_int k)))) in
    plain k (Hotspot { hot_k; mass })

  let exponential ~k ~mean =
    assert (k > 0 && mean > 0.0);
    let weights = Array.init k (fun i -> exp (-.float_of_int i /. mean)) in
    plain k (Table (cumulative weights))

  let with_moving_mean t ~speed_ms ~drift =
    assert (speed_ms > 0.0);
    { t with move_speed_ms = speed_ms; move_drift = drift }

  (* Binary search for the first index whose cumulative weight covers u. *)
  let search cum u =
    let n = Array.length cum in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) < u then go (mid + 1) hi else go lo mid
    in
    go 0 (n - 1)

  let sample t rng ~now_ms =
    let offset =
      if t.move_speed_ms > 0.0 then
        int_of_float (now_ms /. t.move_speed_ms *. t.move_drift)
      else 0
    in
    let raw =
      match t.kind with
      | Uniform -> Rng.int rng t.k
      | Table cum -> search cum (Rng.float rng 1.0)
      | Hotspot { hot_k; mass } ->
          if Rng.bernoulli rng ~p:mass then Rng.int rng hot_k
          else hot_k + Rng.int rng (t.k - hot_k)
      | Gaussian { mu; sigma } ->
          let rec draw tries =
            let x = int_of_float (Float.round (Rng.normal rng ~mu ~sigma)) in
            if x >= 0 && x < t.k then x
            else if tries > 64 then
              (* Pathological mu/sigma: clamp instead of spinning. *)
              Int.max 0 (Int.min (t.k - 1) x)
            else draw (tries + 1)
          in
          draw 0
    in
    ((raw + offset) mod t.k + t.k) mod t.k

  let k t = t.k
end
