(** Priority queue of timestamped events for the discrete-event
    simulator. Ties on time are broken by insertion order so that runs
    are deterministic. Implemented as a 4-ary implicit heap over
    parallel arrays with a monomorphic float-key compare. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** [push q ~time ev] schedules [ev] at [time] with the next sequence
    number. O(log n). *)

val push_seq : 'a t -> time:float -> seq:int -> 'a -> unit
(** Like {!push} but with a caller-supplied sequence number (obtained
    from {!alloc_seq}), for callers that interleave heap entries with
    an external same-time lane and need one total (time, seq) order. *)

val alloc_seq : 'a t -> int
(** Claim the next sequence number from the queue's tie-break counter
    without pushing. Used by the scheduler's zero-delay FIFO lane so
    lane entries and heap entries share one deterministic order. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event (FIFO among equal times). *)

val peek_time : 'a t -> float option

val peek : 'a t -> (float * int) option
(** Time and sequence number of the earliest event, without popping. *)

val clear : 'a t -> unit
(** Empty the queue and drop the backing arrays, releasing every
    retained event (and anything its closure captured) to the GC. *)
