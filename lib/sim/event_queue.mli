(** Priority queue of timestamped events for the discrete-event
    simulator. Ties on time are broken by insertion order so that runs
    are deterministic. Implemented as a 4-ary implicit heap over
    parallel arrays with a monomorphic float-key compare; the
    scheduler's hot path reads the heap through the non-allocating
    [top_*]/[drop_top] accessors. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] backs retired payload slots: popped or compacted-away
    entries are overwritten with it so their payloads (typically
    closures over protocol state) are released to the GC immediately.
    Any ordinary value of the payload type works. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** [push q ~time ev] schedules [ev] at [time] with the next sequence
    number. O(log n), allocation-free (amortized over array growth). *)

val push_seq : 'a t -> time:float -> seq:int -> 'a -> unit
(** Like {!push} but with a caller-supplied sequence number (obtained
    from {!alloc_seq}), for callers that interleave heap entries with
    an external same-time lane and need one total (time, seq) order. *)

val alloc_seq : 'a t -> int
(** Claim the next sequence number from the queue's tie-break counter
    without pushing. Used by the scheduler's zero-delay FIFO lane so
    lane entries and heap entries share one deterministic order. *)

val top_time : 'a t -> float
(** Timestamp of the earliest event. Undefined on an empty queue —
    guard with {!is_empty}. Never allocates. *)

val top_seq : 'a t -> int
(** Sequence number of the earliest event. Same precondition. *)

val top_payload : 'a t -> 'a
(** Payload of the earliest event, without popping. Same precondition. *)

val drop_top : 'a t -> unit
(** Remove the earliest event (FIFO among equal times), resetting its
    retired slot to [dummy]. Same precondition. Never allocates. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. Boxes an option and a tuple
    per call — tests and cold paths only; the scheduler uses
    {!top_time}/{!top_payload}/{!drop_top}. *)

val peek_time : 'a t -> float option

val peek : 'a t -> (float * int) option
(** Time and sequence number of the earliest event, without popping. *)

val compact : 'a t -> dead:('a -> bool) -> int
(** [compact q ~dead] removes every entry whose payload satisfies
    [dead] (called exactly once per entry, so it may carry release
    side effects) and restores the heap invariant in one O(n)
    bottom-up pass. Returns the number of entries removed. Relative
    (time, seq) order of survivors is unchanged. The scheduler calls
    this when cancelled timers make up more than half the heap. *)

val clear : 'a t -> unit
(** Empty the queue and drop the backing arrays, releasing every
    retained event (and anything its closure captured) to the GC. *)
