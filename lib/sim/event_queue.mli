(** Priority queue of timestamped events for the discrete-event
    simulator. Ties on time are broken by insertion order so that runs
    are deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** [push q ~time ev] schedules [ev] at [time]. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event (FIFO among equal times). *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
(** Empty the queue and drop the backing array, releasing every
    retained event (and anything its closure captured) to the GC. *)
