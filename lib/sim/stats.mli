(** Sample statistics: streaming moments plus retained samples for
    percentiles, CDFs (paper Fig. 13b) and histograms (Fig. 3). *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_all : t -> float list -> unit
val count : t -> int
val mean : t -> float
(** Mean of the samples; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance via Welford's online recurrence — stable
    for samples sitting on a large common offset; [nan] for fewer than
    2 samples. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], linear interpolation
    between closest ranks; [nan] when empty. *)

val median : t -> float

val cdf : t -> points:int -> (float * float) list
(** [(value, fraction <= value)] pairs at [points] evenly spaced
    quantiles — the series behind the paper's latency CDF plots. Each
    value equals [percentile t (100 * fraction)] (both linearly
    interpolate between closest ranks). *)

val histogram : t -> bins:int -> (float * float * int) list
(** [(lo, hi, count)] buckets over the sample range. *)

val samples : t -> float array
(** Sorted copy of all retained samples. *)

val merge : t -> t -> t
(** Pooled statistics of two sample sets. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [n/mean/p50/p99/min/max] summary. *)
