type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

type state = { src : string; mutable pos : int }

let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

let advance s = s.pos <- s.pos + 1

let rec skip_ws s =
  match peek s with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance s;
      skip_ws s
  | _ -> ()

let expect s c =
  match peek s with
  | Some c' when c' = c -> advance s
  | _ -> fail s.pos (Printf.sprintf "expected %C" c)

let literal s word value =
  let n = String.length word in
  if s.pos + n <= String.length s.src && String.sub s.src s.pos n = word then begin
    s.pos <- s.pos + n;
    value
  end
  else fail s.pos (Printf.sprintf "expected %s" word)

let parse_string_body s =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek s with
    | None -> fail s.pos "unterminated string"
    | Some '"' -> advance s
    | Some '\\' -> (
        advance s;
        match peek s with
        | Some 'n' -> advance s; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance s; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance s; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance s; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance s; Buffer.add_char buf '\012'; go ()
        | Some '"' -> advance s; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance s; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance s; Buffer.add_char buf '/'; go ()
        | Some 'u' ->
            advance s;
            if s.pos + 4 > String.length s.src then fail s.pos "bad \\u escape";
            let hex = String.sub s.src s.pos 4 in
            s.pos <- s.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail s.pos "bad \\u escape"
            in
            (* encode as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail s.pos "bad escape")
    | Some c ->
        advance s;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number s =
  let start = s.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek s with Some c when is_num_char c -> true | _ -> false) do
    advance s
  done;
  let text = String.sub s.src start (s.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> fail start (Printf.sprintf "bad number %S" text)

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> fail s.pos "unexpected end of input"
  | Some '{' ->
      advance s;
      skip_ws s;
      if peek s = Some '}' then begin
        advance s;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws s;
          expect s '"';
          let key = parse_string_body s in
          skip_ws s;
          expect s ':';
          let value = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              advance s;
              members ((key, value) :: acc)
          | Some '}' ->
              advance s;
              List.rev ((key, value) :: acc)
          | _ -> fail s.pos "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance s;
      skip_ws s;
      if peek s = Some ']' then begin
        advance s;
        List []
      end
      else begin
        let rec elements acc =
          let value = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              advance s;
              elements (value :: acc)
          | Some ']' ->
              advance s;
              List.rev (value :: acc)
          | _ -> fail s.pos "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' ->
      advance s;
      String (parse_string_body s)
  | Some 't' -> literal s "true" (Bool true)
  | Some 'f' -> literal s "false" (Bool false)
  | Some 'n' -> literal s "null" Null
  | Some ('-' | '0' .. '9') -> parse_number s
  | Some c -> fail s.pos (Printf.sprintf "unexpected %C" c)

let parse src =
  let s = { src; pos = 0 } in
  match parse_value s with
  | value ->
      skip_ws s;
      if s.pos < String.length src then
        Error (Printf.sprintf "trailing garbage at offset %d" s.pos)
      else Ok value
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

let escape_string str =
  let buf = Buffer.create (String.length str + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    str;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Number f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | String s -> escape_string s
  | List l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> escape_string k ^ ":" ^ to_string v) fields)
      ^ "}"

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Number f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let get_string = function String s -> Some s | _ -> None
