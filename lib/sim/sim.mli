(** Virtual-time discrete-event scheduler.

    All simulated components (network links, node processing queues,
    clients, fault injectors) schedule thunks on one shared [Sim.t];
    [run_until] drains events in timestamp order while advancing the
    virtual clock. Time is in milliseconds, matching the paper's
    latency units.

    Events are totally ordered by (time, sequence number). Zero-delay
    events — those scheduled at exactly the current clock — go through
    a FIFO lane instead of the heap, and [try_inline] lets the network
    layer run a provably next-in-order continuation without scheduling
    it at all. Both preserve the exact firing order of the plain
    heap-only scheduler. *)

type t

type handle
(** Cancellation handle for a scheduled event: an immediate
    (generation, slot) pair, not a heap object. Handles stay valid
    forever — once the event fires, is cancelled, or is compacted
    away, the handle goes {e stale} and {!cancel} ignores it — so
    callers keep a plain [handle] (initialized to {!nil}) instead of
    a [handle option]. *)

val nil : handle
(** A handle that never names an event; {!cancel} on it is a no-op. *)

val is_nil : handle -> bool

val create : ?seed:int -> unit -> t
val now : t -> float
(** Current virtual time (ms). *)

val rng : t -> Rng.t
(** The root RNG of this simulation; split it for per-component
    streams. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Schedule a thunk at an absolute virtual time. Scheduling in the
    past raises [Invalid_argument]; scheduling at exactly [now] lands
    in the zero-delay lane (same order, O(1)). *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** Schedule relative to [now]; negative delays are clamped to 0. *)

val schedule_immediate : t -> (unit -> unit) -> handle
(** Equivalent to [schedule_after ~delay:0.] but skips the clamp and
    heap entirely: the thunk joins the zero-delay FIFO lane. *)

val live : t -> handle -> bool
(** [live t h] is true iff [h] still names a pending, uncancelled
    event: the handle's generation matches its slot's and the slot has
    not been cancelled, fired, or compacted away. Stale handles
    (including {!nil}) are [false]. Lets ownership registries
    ({!Timers}) sweep dead handles without bookkeeping on the firing
    path. *)

val cancel : t -> handle -> unit
(** Cancelled events are skipped (without counting or drawing
    randomness) when their time comes. Idempotent; stale handles —
    {!nil}, already fired, already cancelled — are ignored. When
    cancelled entries come to dominate the heap (> 1/2, above a small
    floor) the heap is compacted in one O(n) pass so mass-cancelled
    timers release their slots and payloads immediately. *)

val run_until : t -> float -> unit
(** Process every event with timestamp [<= horizon], advancing the
    clock; afterwards the clock reads [horizon]. *)

val run : t -> unit
(** Drain all pending events (the queue must be finite: protocols
    driven by closed-loop clients terminate when clients stop). *)

val step : t -> bool
(** Process exactly one event. Returns [false] when the queue is
    empty. Inline execution ({!try_inline}) is disabled under [step]
    so harnesses observe one event per call. *)

val try_inline : t -> time:float -> (unit -> unit) -> bool
(** [try_inline t ~time thunk] runs [thunk] immediately with the clock
    advanced to [time] — counting it as a fired event — iff doing so
    is indistinguishable from [schedule_at t ~time thunk]: we are
    inside [run]/[run_until], [now <= time <= horizon], and no pending
    event (heap or lane) precedes [(time, fresh seq)]. Returns [false]
    without side effects otherwise; the caller must then schedule
    normally. *)

val pending : t -> int
(** Number of scheduled events still queued: uncancelled ones plus any
    cancelled entries not yet popped or compacted away. *)

val events_fired : t -> int
(** Number of event thunks executed so far (cancelled events are not
    counted) — the denominator-free simulator throughput metric
    reported by the perf guard. Includes inlined continuations, so the
    total matches a run with inlining disabled. *)

val events_inlined : t -> int
(** How many of {!events_fired} ran inline via {!try_inline} instead
    of through the queue. *)
