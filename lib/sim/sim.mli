(** Virtual-time discrete-event scheduler.

    All simulated components (network links, node processing queues,
    clients, fault injectors) schedule thunks on one shared [Sim.t];
    [run_until] drains events in timestamp order while advancing the
    virtual clock. Time is in milliseconds, matching the paper's
    latency units. *)

type t

type handle
(** Cancellation handle for a scheduled event. *)

val create : ?seed:int -> unit -> t
val now : t -> float
(** Current virtual time (ms). *)

val rng : t -> Rng.t
(** The root RNG of this simulation; split it for per-component
    streams. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Schedule a thunk at an absolute virtual time. Scheduling in the
    past raises [Invalid_argument]. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** Schedule relative to [now]; negative delays are clamped to 0. *)

val cancel : handle -> unit
(** Cancelled events are skipped when their time comes. Idempotent. *)

val run_until : t -> float -> unit
(** Process every event with timestamp [<= horizon], advancing the
    clock; afterwards the clock reads [horizon]. *)

val run : t -> unit
(** Drain all pending events (the queue must be finite: protocols
    driven by closed-loop clients terminate when clients stop). *)

val step : t -> bool
(** Process exactly one event. Returns [false] when the queue is
    empty. *)

val pending : t -> int
(** Number of scheduled (uncancelled or cancelled-but-unprocessed)
    events. *)

val events_fired : t -> int
(** Number of event thunks executed so far (cancelled events are not
    counted) — the denominator-free simulator throughput metric
    reported by the perf guard. *)
