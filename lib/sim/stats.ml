type t = {
  mutable data : float array;
  mutable n : int;
  mutable sum : float;
  (* Welford running moments: the textbook sumsq - n*m^2 form cancels
     catastrophically once samples sit on a large offset (virtual-time
     stamps late in a run), so the second moment is accumulated as the
     centered [m2] instead. [sum] is kept alongside because [mean] as
     sum/n is the historically pinned value in fixed-seed outputs. *)
  mutable wmean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
  mutable sorted_n : int;
      (* [data.(0 .. sorted_n-1)] is sorted; [data.(sorted_n .. n-1)]
         is the unsorted tail appended since the last query *)
}

let create () =
  {
    data = [||];
    n = 0;
    sum = 0.0;
    wmean = 0.0;
    m2 = 0.0;
    lo = infinity;
    hi = neg_infinity;
    sorted_n = 0;
  }

let add t x =
  if t.n >= Array.length t.data then begin
    let cap = Int.max 64 (2 * Array.length t.data) in
    let nd = Array.make cap 0.0 in
    Array.blit t.data 0 nd 0 t.n;
    t.data <- nd
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let d = x -. t.wmean in
  t.wmean <- t.wmean +. (d /. float_of_int t.n);
  t.m2 <- t.m2 +. (d *. (x -. t.wmean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let add_all t xs = List.iter (add t) xs
let count t = t.n
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

let variance t =
  if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)
let min t = if t.n = 0 then nan else t.lo
let max t = if t.n = 0 then nan else t.hi

(* Reporting interleaves [add] and [percentile] (per-region tables,
   CDFs, summaries), so re-sorting all [n] samples on every query is
   O(n log n) each time. Instead keep the prefix sorted across
   queries: sort only the tail appended since the last query and merge
   it in — O(k log k + n) for a tail of k new samples. *)
let ensure_sorted t =
  if t.sorted_n < t.n then begin
    if t.sorted_n = 0 then begin
      let view = Array.sub t.data 0 t.n in
      Array.sort Float.compare view;
      Array.blit view 0 t.data 0 t.n
    end
    else begin
      let tail = Array.sub t.data t.sorted_n (t.n - t.sorted_n) in
      Array.sort Float.compare tail;
      (* merge sorted prefix and tail backwards, in place *)
      let i = ref (t.sorted_n - 1) and j = ref (Array.length tail - 1) in
      let k = ref (t.n - 1) in
      while !j >= 0 do
        if !i >= 0 && Float.compare t.data.(!i) tail.(!j) > 0 then begin
          t.data.(!k) <- t.data.(!i);
          decr i
        end
        else begin
          t.data.(!k) <- tail.(!j);
          decr j
        end;
        decr k
      done
    end;
    t.sorted_n <- t.n
  end

let percentile t p =
  if t.n = 0 then nan
  else begin
    ensure_sorted t;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo_idx = int_of_float (Float.floor rank) in
    let hi_idx = Stdlib.min (t.n - 1) (lo_idx + 1) in
    let frac = rank -. float_of_int lo_idx in
    t.data.(lo_idx) +. (frac *. (t.data.(hi_idx) -. t.data.(lo_idx)))
  end

let median t = percentile t 50.0

(* Quantiles through [percentile], so the two agree by construction:
   nearest-rank rounding here used to disagree with [percentile]'s
   linear interpolation at small n. *)
let cdf t ~points =
  if t.n = 0 || points <= 0 then []
  else
    List.init points (fun i ->
        let q = float_of_int (i + 1) /. float_of_int points in
        (percentile t (q *. 100.0), q))

let histogram t ~bins =
  if t.n = 0 || bins <= 0 then []
  else begin
    let lo = t.lo and hi = t.hi in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    for i = 0 to t.n - 1 do
      let b = int_of_float ((t.data.(i) -. lo) /. width) in
      let b = Stdlib.max 0 (Stdlib.min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1
    done;
    List.init bins (fun b ->
        ( lo +. (float_of_int b *. width),
          lo +. (float_of_int (b + 1) *. width),
          counts.(b) ))
  end

let samples t =
  ensure_sorted t;
  Array.sub t.data 0 t.n

let merge a b =
  let t = create () in
  for i = 0 to a.n - 1 do
    add t a.data.(i)
  done;
  for i = 0 to b.n - 1 do
    add t b.data.(i)
  done;
  t

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f"
      t.n (mean t) (median t) (percentile t 99.0) (min t) (max t)
