(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator draws from an [Rng.t]
    seeded explicitly, so whole-cluster experiments are reproducible
    bit-for-bit. Independent streams are obtained with {!split}, which
    derives a child generator whose sequence is statistically
    independent of the parent's subsequent draws. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent child stream and advances [t]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)]. Requires [lo <= hi]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian draw via the Box–Muller transform. *)

val normal_into : t -> mu:float -> sigma:float -> float array -> unit
(** [normal_into t ~mu ~sigma dst] stores a Gaussian draw in
    [dst.(0)]. Identical draws and IEEE operation order to {!normal};
    the out-parameter form exists because a boxed float return
    allocates on every call without flambda, and the delay sampler
    runs once per simulated message. *)

val exponential : t -> rate:float -> float
(** Exponential draw with rate [rate] (mean [1/rate]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)
