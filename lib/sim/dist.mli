(** Probability distributions used for network latencies and workload
    key popularity (paper Fig. 6: uniform, zipfian, normal,
    exponential). A continuous distribution is a sampler over floats;
    {!Discrete} builds integer key samplers over [0..k-1]. *)

type t
(** A sampler for a continuous, real-valued distribution. *)

val constant : float -> t
val uniform : lo:float -> hi:float -> t

val normal : mu:float -> sigma:float -> t
(** Unbounded Gaussian. *)

val normal_pos : mu:float -> sigma:float -> t
(** Gaussian truncated below at [0] (resampled); used for RTTs, which
    the paper measures to be approximately normal (Fig. 3). *)

val exponential : mean:float -> t
val shifted : t -> by:float -> t
val scaled : t -> by:float -> t
val sample : t -> Rng.t -> float
val mean_estimate : t -> Rng.t -> n:int -> float
(** Monte-Carlo mean of [n] samples; used in tests and calibration. *)

module Discrete : sig
  (** Integer-key samplers over the key space [0 .. k-1], mirroring the
      Paxi benchmark's key-distribution choices (Table 3). *)

  type t

  val uniform : k:int -> t

  val zipfian : k:int -> s:float -> v:float -> t
  (** Popularity [∝ 1/(i+v)^s], the paper's [zipfian_s]/[zipfian_v]. *)

  val normal : k:int -> mu:float -> sigma:float -> t
  (** Key [i] popularity follows a Gaussian centred at [mu]; draws
      outside [0..k-1] are clamped by resampling. The paper uses this
      to synthesise locality: each region gets its own [mu]. *)

  val hotspot : k:int -> hot_fraction:float -> mass:float -> t
  (** Two-level uniform: a [mass] fraction of draws lands uniformly in
      the first [hot_fraction] of the key space, the rest uniformly in
      the remainder — the classic "80% of ops on 20% of keys" shape at
      [hot_fraction = 0.2, mass = 0.8]. Costs one Bernoulli plus one
      bounded int draw per sample. Requires [0 < hot_fraction < 1] and
      [k > 1] so both sides of the split are non-empty. *)

  val exponential : k:int -> mean:float -> t

  val with_moving_mean : t -> speed_ms:float -> drift:float -> t
  (** Moving-locality decorator (Table 3 [Move]/[Speed]): every
      [speed_ms] of workload time the distribution mean advances by
      [drift] keys. Only meaningful for [normal]. *)

  val sample : t -> Rng.t -> now_ms:float -> int
  val k : t -> int
end
