(* 4-ary implicit min-heap ordered by (time, seq), stored as parallel
   arrays so the hot compare is a monomorphic [float] comparison on an
   unboxed float array (no polymorphic entry records, no boxed keys).

   Payloads live in a plain ['a array] backed by a caller-supplied
   [dummy] value: slots below [size] hold live payloads, retired slots
   are reset to [dummy] so a popped event's payload (typically a
   closure over protocol state) becomes collectable immediately
   instead of being pinned by the backing array for the rest of the
   run. No unsound sentinel is involved — [dummy] is an ordinary
   value of the payload type.

   The scheduler drives the queue through the non-allocating
   [top_time]/[top_seq]/[top_payload]/[drop_top] accessors; [pop]
   (which boxes an option and a tuple per call) remains for tests and
   generic callers off the hot path.

   Sift-up/down use the hole method: the moving entry is held in
   locals while ancestors/descendants shift, and written exactly once
   at its final slot. *)

type 'a t = {
  dummy : 'a;
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let arity = 4

let create ~dummy () =
  { dummy; times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let alloc_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let grow t =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nt = Array.make ncap 0.0 in
  let ns = Array.make ncap 0 in
  let np = Array.make ncap t.dummy in
  Array.blit t.times 0 nt 0 t.size;
  Array.blit t.seqs 0 ns 0 t.size;
  Array.blit t.payloads 0 np 0 t.size;
  t.times <- nt;
  t.seqs <- ns;
  t.payloads <- np

let push_seq t ~time ~seq payload =
  if t.size >= Array.length t.times then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / arity in
    if time < t.times.(p) || (time = t.times.(p) && seq < t.seqs.(p)) then begin
      t.times.(!i) <- t.times.(p);
      t.seqs.(!i) <- t.seqs.(p);
      t.payloads.(!i) <- t.payloads.(p);
      i := p
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.payloads.(!i) <- payload

let push t ~time payload = push_seq t ~time ~seq:(alloc_seq t) payload

(* Place (time, seq, payload) into the hole at [pos], sifting down
   within the first [n] slots. *)
let sift_down t ~pos ~n ~time ~seq payload =
  let i = ref pos in
  let continue = ref true in
  while !continue do
    let first = (arity * !i) + 1 in
    if first >= n then continue := false
    else begin
      let last = min (first + arity - 1) (n - 1) in
      let best = ref first in
      for c = first + 1 to last do
        if
          t.times.(c) < t.times.(!best)
          || (t.times.(c) = t.times.(!best) && t.seqs.(c) < t.seqs.(!best))
        then best := c
      done;
      let b = !best in
      if t.times.(b) < time || (t.times.(b) = time && t.seqs.(b) < seq)
      then begin
        t.times.(!i) <- t.times.(b);
        t.seqs.(!i) <- t.seqs.(b);
        t.payloads.(!i) <- t.payloads.(b);
        i := b
      end
      else continue := false
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.payloads.(!i) <- payload

let top_time t = t.times.(0)
let top_seq t = t.seqs.(0)
let top_payload t = t.payloads.(0)

let drop_top t =
  let n = t.size - 1 in
  t.size <- n;
  if n = 0 then t.payloads.(0) <- t.dummy
  else begin
    (* re-insert the last entry at the root hole and sift it down *)
    let time = t.times.(n) and seq = t.seqs.(n) in
    let payload = t.payloads.(n) in
    t.payloads.(n) <- t.dummy;
    sift_down t ~pos:0 ~n ~time ~seq payload
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top_time = t.times.(0) in
    let top = t.payloads.(0) in
    drop_top t;
    Some (top_time, top)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)
let peek t = if t.size = 0 then None else Some (t.times.(0), t.seqs.(0))

let compact t ~dead =
  let n = t.size in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    if not (dead t.payloads.(i)) then begin
      let j = !kept in
      if j <> i then begin
        t.times.(j) <- t.times.(i);
        t.seqs.(j) <- t.seqs.(i);
        t.payloads.(j) <- t.payloads.(i)
      end;
      incr kept
    end
  done;
  let k = !kept in
  for i = k to n - 1 do
    t.payloads.(i) <- t.dummy
  done;
  t.size <- k;
  (* bottom-up heapify over the survivors: sift every internal node *)
  if k > 1 then
    for i = (k - 2) / arity downto 0 do
      let time = t.times.(i) and seq = t.seqs.(i) in
      let payload = t.payloads.(i) in
      sift_down t ~pos:i ~n:k ~time ~seq payload
    done;
  n - k

let clear t =
  t.size <- 0;
  t.next_seq <- 0;
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||]
