(* 4-ary implicit min-heap ordered by (time, seq), stored as parallel
   arrays so the hot compare is a monomorphic [float] comparison on an
   unboxed float array (no polymorphic entry records, no boxed keys).

   Payloads live in an ['a option array]: slots below [size] are
   always [Some], retired slots are reset to [None] so a popped
   event's payload (typically a closure over protocol state) becomes
   collectable immediately instead of being pinned by the backing
   array for the rest of the run. When the heap drains to empty the
   arrays are dropped outright. No unsound sentinel is involved.

   Sift-up/down use the hole method: the moving entry is held in
   locals while ancestors/descendants shift, and written exactly once
   at its final slot. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : 'a option array;
  mutable size : int;
  mutable next_seq : int;
}

let arity = 4

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let alloc_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let grow t =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nt = Array.make ncap 0.0 in
  let ns = Array.make ncap 0 in
  let np = Array.make ncap None in
  Array.blit t.times 0 nt 0 t.size;
  Array.blit t.seqs 0 ns 0 t.size;
  Array.blit t.payloads 0 np 0 t.size;
  t.times <- nt;
  t.seqs <- ns;
  t.payloads <- np

let push_seq t ~time ~seq payload =
  if t.size >= Array.length t.times then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / arity in
    if time < t.times.(p) || (time = t.times.(p) && seq < t.seqs.(p)) then begin
      t.times.(!i) <- t.times.(p);
      t.seqs.(!i) <- t.seqs.(p);
      t.payloads.(!i) <- t.payloads.(p);
      i := p
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.payloads.(!i) <- Some payload

let push t ~time payload = push_seq t ~time ~seq:(alloc_seq t) payload

let pop t =
  if t.size = 0 then None
  else begin
    let top_time = t.times.(0) in
    let top =
      match t.payloads.(0) with Some p -> p | None -> assert false
    in
    let n = t.size - 1 in
    t.size <- n;
    if n = 0 then begin
      (* dropping the arrays releases every retained reference *)
      t.times <- [||];
      t.seqs <- [||];
      t.payloads <- [||]
    end
    else begin
      (* re-insert the last entry at the root hole and sift it down *)
      let time = t.times.(n) and seq = t.seqs.(n) in
      let payload = t.payloads.(n) in
      t.payloads.(n) <- None;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let first = (arity * !i) + 1 in
        if first >= n then continue := false
        else begin
          let last = min (first + arity - 1) (n - 1) in
          let best = ref first in
          for c = first + 1 to last do
            if
              t.times.(c) < t.times.(!best)
              || (t.times.(c) = t.times.(!best) && t.seqs.(c) < t.seqs.(!best))
            then best := c
          done;
          let b = !best in
          if t.times.(b) < time || (t.times.(b) = time && t.seqs.(b) < seq)
          then begin
            t.times.(!i) <- t.times.(b);
            t.seqs.(!i) <- t.seqs.(b);
            t.payloads.(!i) <- t.payloads.(b);
            i := b
          end
          else continue := false
        end
      done;
      t.times.(!i) <- time;
      t.seqs.(!i) <- seq;
      t.payloads.(!i) <- payload
    end;
    Some (top_time, top)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)
let peek t = if t.size = 0 then None else Some (t.times.(0), t.seqs.(0))

let clear t =
  t.size <- 0;
  t.next_seq <- 0;
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||]
