(* Array-backed binary min-heap ordered by (time, seq).

   Retired slots are overwritten with [dummy] so a popped event's
   payload (typically a closure over protocol state) becomes
   collectable immediately instead of being pinned by the backing
   array for the rest of the run. [dummy]'s payload is an unboxed
   dummy value ([Obj.magic ()]); it is never read: only slots below
   [size] are live, and [grow]/[pop] use it purely as array filler. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry;
}

let create () =
  let dummy = { time = nan; seq = -1; payload = Obj.magic () } in
  { heap = [||]; size = 0; next_seq = 0; dummy }

let is_empty t = t.size = 0
let length t = t.size

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nh = Array.make ncap t.dummy in
  Array.blit t.heap 0 nh 0 t.size;
  t.heap <- nh

let push t ~time payload =
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size >= Array.length t.heap then grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- t.dummy;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end
    else t.heap.(0) <- t.dummy;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  t.size <- 0;
  t.next_seq <- 0;
  t.heap <- [||]
