(** Timer ownership registry for crash domains.

    Wraps a replica's [Sim.schedule_*] handles so that a nemesis crash
    can mass-cancel every pending event the replica owns (election
    clocks, heartbeats, retransmit backoffs, storage fsync
    completions). Without this, timers scheduled before the crash fire
    into the recovered instance — the "pause-not-crash" bug. Tracking
    is O(1) amortized; handles of events that already fired are swept
    lazily via {!Sim.live} when the vector fills. *)

type t

val create : Sim.t -> t

val track : t -> Sim.handle -> Sim.handle
(** Register a handle with this owner and return it unchanged, so call
    sites read [Timers.track tm (Sim.schedule_after sim ~delay f)]. *)

val cancel_all : t -> unit
(** Cancel every still-live tracked event and empty the registry. Used
    at the crash edge; the burst of cancels rides the heap's
    lazy-deletion compaction, releasing slots in one O(heap) pass. *)

val live_count : t -> int
(** Number of tracked events still pending (test/debug aid). *)

val cancelled_total : t -> int
(** Cumulative events killed by {!cancel_all} over this registry's
    lifetime — surfaces in recovery accounting. *)
