type handle = { mutable cancelled : bool }

type event = { h : handle; thunk : unit -> unit }

type lane_entry = { lseq : int; lev : event }

type t = {
  queue : event Event_queue.t;
  lane : lane_entry Queue.t;
      (* same-instant FIFO: every entry was scheduled at exactly the
         current clock ([schedule_immediate] / zero-delay
         [schedule_after]), so it fires before the clock can advance.
         Entries carry seqs from the heap's counter so the merged
         (time, seq) order is identical to pushing them on the heap. *)
  mutable clock : float;
  mutable fired : int;
  mutable inlined : int;
  mutable horizon : float;
      (* upper bound on clock advancement for [try_inline]; only
         meaningful while [inline_ok]. *)
  mutable inline_ok : bool;
      (* true only inside [run]/[run_until]: [step]-driven harnesses
         expect one externally visible event per call, so inlining is
         disabled there. *)
  root_rng : Rng.t;
}

let create ?(seed = 42) () =
  {
    queue = Event_queue.create ();
    lane = Queue.create ();
    clock = 0.0;
    fired = 0;
    inlined = 0;
    horizon = neg_infinity;
    inline_ok = false;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock
let rng t = t.root_rng
let events_fired t = t.fired
let events_inlined t = t.inlined

let schedule_at t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g < now %g" time t.clock);
  let h = { cancelled = false } in
  if time = t.clock then
    Queue.add { lseq = Event_queue.alloc_seq t.queue; lev = { h; thunk } }
      t.lane
  else Event_queue.push t.queue ~time { h; thunk };
  h

let schedule_after t ~delay thunk =
  schedule_at t ~time:(t.clock +. Float.max 0.0 delay) thunk

let schedule_immediate t thunk =
  let h = { cancelled = false } in
  Queue.add { lseq = Event_queue.alloc_seq t.queue; lev = { h; thunk } } t.lane;
  h

let cancel h = h.cancelled <- true

let fire t time ev =
  t.clock <- time;
  if not ev.h.cancelled then begin
    t.fired <- t.fired + 1;
    ev.thunk ()
  end

(* Earliest event across the heap and the lane. Lane entries all sit
   at [t.clock]; a heap entry at the same time fires first iff its seq
   is smaller (it was scheduled earlier). *)
let pop_next t =
  if Queue.is_empty t.lane then Event_queue.pop t.queue
  else
    let take_heap =
      match Event_queue.peek t.queue with
      | Some (htime, hseq) ->
          htime <= t.clock && hseq < (Queue.peek t.lane).lseq
      | None -> false
    in
    if take_heap then Event_queue.pop t.queue
    else
      let { lseq = _; lev } = Queue.pop t.lane in
      Some (t.clock, lev)

let run_until t horizon =
  let saved_ok = t.inline_ok and saved_h = t.horizon in
  t.inline_ok <- true;
  t.horizon <- horizon;
  let continue = ref true in
  while !continue do
    if not (Queue.is_empty t.lane) then (
      match pop_next t with
      | Some (time, ev) -> fire t time ev
      | None -> continue := false)
    else
      match Event_queue.peek_time t.queue with
      | Some time when time <= horizon -> (
          match pop_next t with
          | Some (time, ev) -> fire t time ev
          | None -> continue := false)
      | _ -> continue := false
  done;
  t.inline_ok <- saved_ok;
  t.horizon <- saved_h;
  if horizon > t.clock then t.clock <- horizon

let run t =
  let saved_ok = t.inline_ok and saved_h = t.horizon in
  t.inline_ok <- true;
  t.horizon <- infinity;
  let continue = ref true in
  while !continue do
    match pop_next t with
    | Some (time, ev) -> fire t time ev
    | None -> continue := false
  done;
  t.inline_ok <- saved_ok;
  t.horizon <- saved_h

let step t =
  match pop_next t with
  | Some (time, ev) ->
      fire t time ev;
      true
  | None -> false

let try_inline t ~time thunk =
  if
    t.inline_ok && time >= t.clock && time <= t.horizon
    && Queue.is_empty t.lane
    && (match Event_queue.peek_time t.queue with
       | Some htime -> htime > time
       | None -> true)
  then begin
    (* No pending event precedes (time, fresh-seq), so running the
       thunk here with the clock advanced is observationally identical
       to scheduling it — same RNG stream, same order. Counted in
       [fired] so event totals match the non-inlined schedule. *)
    t.clock <- time;
    t.fired <- t.fired + 1;
    t.inlined <- t.inlined + 1;
    thunk ();
    true
  end
  else false

let pending t = Event_queue.length t.queue + Queue.length t.lane
