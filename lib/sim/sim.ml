type handle = { mutable cancelled : bool }

type event = { h : handle; thunk : unit -> unit }

type t = {
  queue : event Event_queue.t;
  mutable clock : float;
  mutable fired : int;
  root_rng : Rng.t;
}

let create ?(seed = 42) () =
  {
    queue = Event_queue.create ();
    clock = 0.0;
    fired = 0;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock
let rng t = t.root_rng
let events_fired t = t.fired

let schedule_at t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g < now %g" time t.clock);
  let h = { cancelled = false } in
  Event_queue.push t.queue ~time { h; thunk };
  h

let schedule_after t ~delay thunk =
  schedule_at t ~time:(t.clock +. Float.max 0.0 delay) thunk

let cancel h = h.cancelled <- true

let fire t time ev =
  t.clock <- time;
  if not ev.h.cancelled then begin
    t.fired <- t.fired + 1;
    ev.thunk ()
  end

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon -> (
        match Event_queue.pop t.queue with
        | Some (time, ev) -> fire t time ev
        | None -> continue := false)
    | _ -> continue := false
  done;
  if horizon > t.clock then t.clock <- horizon

let run t =
  let continue = ref true in
  while !continue do
    match Event_queue.pop t.queue with
    | Some (time, ev) -> fire t time ev
    | None -> continue := false
  done

let step t =
  match Event_queue.pop t.queue with
  | Some (time, ev) ->
      fire t time ev;
      true
  | None -> false

let pending t = Event_queue.length t.queue
