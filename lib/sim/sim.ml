(* Timer slots: every scheduled event owns a reusable slot in parallel
   arrays ([thunks]/[state]) instead of a per-event heap-allocated
   handle record. The heap and the zero-delay lane carry bare slot
   indices; a [handle] packs (generation, slot) into one immediate
   int, so scheduling and cancellation allocate nothing.

   [state.(slot)] packs [(gen lsl 2) lor (in_heap lsl 1) lor
   cancelled]. The generation is bumped whenever the slot is retired
   (its event fired, was skipped, or was compacted away), which makes
   every outstanding handle for the old occupant stale: [cancel]
   compares the handle's generation against the slot's and ignores
   mismatches, so late cancels of already-fired timers are safe no-ops
   — callers keep a plain [handle] (or {!nil}) instead of a
   [handle option].

   Cancelled heap entries are skipped when popped, as before; in
   addition [heap_dead] counts them and the heap is compacted in one
   O(n) pass whenever dead entries exceed half of it, so mass-
   cancelled retransmit timers no longer linger until their deadline
   passes. *)

let nop () = ()

type handle = int

let nil : handle = -1
let is_nil h = h < 0

(* slot index in the low bits, generation above — 16M concurrent
   timers, ~2^37 reuses per slot *)
let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1

type t = {
  queue : int Event_queue.t; (* heap payloads are slot indices *)
  (* timer slots *)
  mutable thunks : (unit -> unit) array;
  mutable state : int array;
  mutable free : int array; (* stack of retired slot indices *)
  mutable free_top : int;
  mutable n_slots : int;
  mutable heap_dead : int; (* cancelled entries still in the heap *)
  (* same-instant FIFO lane, a ring buffer over parallel arrays:
     every entry was scheduled at exactly the current clock
     ([schedule_immediate] / zero-delay [schedule_after]), so it fires
     before the clock can advance. Entries carry seqs from the heap's
     counter so the merged (time, seq) order is identical to pushing
     them on the heap. Capacity is a power of two. *)
  mutable lane_seqs : int array;
  mutable lane_slots : int array;
  mutable lane_head : int;
  mutable lane_len : int;
  mutable clock : float;
  mutable fired : int;
  mutable inlined : int;
  mutable horizon : float;
      (* upper bound on clock advancement for [try_inline]; only
         meaningful while [inline_ok]. *)
  mutable inline_ok : bool;
      (* true only inside [run]/[run_until]: [step]-driven harnesses
         expect one externally visible event per call, so inlining is
         disabled there. *)
  root_rng : Rng.t;
}

let create ?(seed = 42) () =
  {
    queue = Event_queue.create ~dummy:(-1) ();
    thunks = [||];
    state = [||];
    free = [||];
    free_top = 0;
    n_slots = 0;
    heap_dead = 0;
    lane_seqs = [||];
    lane_slots = [||];
    lane_head = 0;
    lane_len = 0;
    clock = 0.0;
    fired = 0;
    inlined = 0;
    horizon = neg_infinity;
    inline_ok = false;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock
let rng t = t.root_rng
let events_fired t = t.fired
let events_inlined t = t.inlined

(* ---- timer slots ---------------------------------------------------- *)

let grow_slots t =
  let cap = Array.length t.state in
  let ncap = if cap = 0 then 64 else cap * 2 in
  if ncap > slot_mask + 1 then failwith "Sim: timer slot space exhausted";
  let nt = Array.make ncap nop in
  let ns = Array.make ncap 0 in
  let nf = Array.make ncap 0 in
  Array.blit t.thunks 0 nt 0 t.n_slots;
  Array.blit t.state 0 ns 0 t.n_slots;
  Array.blit t.free 0 nf 0 t.free_top;
  t.thunks <- nt;
  t.state <- ns;
  t.free <- nf

let alloc_slot t thunk =
  let s =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.n_slots >= Array.length t.state then grow_slots t;
      let s = t.n_slots in
      t.n_slots <- t.n_slots + 1;
      s
    end
  in
  t.thunks.(s) <- thunk;
  s

(* Bump the generation (staling every outstanding handle) and return
   the slot to the free stack. *)
let retire t s =
  t.thunks.(s) <- nop;
  t.state.(s) <- ((t.state.(s) lsr 2) + 1) lsl 2;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let handle_of t s = ((t.state.(s) lsr 2) lsl slot_bits) lor s

(* ---- lane ring ------------------------------------------------------ *)

let grow_lane t =
  let cap = Array.length t.lane_seqs in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let ns = Array.make ncap 0 in
  let nsl = Array.make ncap 0 in
  for i = 0 to t.lane_len - 1 do
    let j = (t.lane_head + i) land (cap - 1) in
    ns.(i) <- t.lane_seqs.(j);
    nsl.(i) <- t.lane_slots.(j)
  done;
  t.lane_seqs <- ns;
  t.lane_slots <- nsl;
  t.lane_head <- 0

let lane_push t ~seq ~slot =
  if t.lane_len >= Array.length t.lane_seqs then grow_lane t;
  let cap = Array.length t.lane_seqs in
  let i = (t.lane_head + t.lane_len) land (cap - 1) in
  t.lane_seqs.(i) <- seq;
  t.lane_slots.(i) <- slot;
  t.lane_len <- t.lane_len + 1

(* ---- scheduling ----------------------------------------------------- *)

let schedule_at t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g < now %g" time t.clock);
  let s = alloc_slot t thunk in
  if time = t.clock then
    lane_push t ~seq:(Event_queue.alloc_seq t.queue) ~slot:s
  else begin
    Event_queue.push t.queue ~time s;
    t.state.(s) <- t.state.(s) lor 2
  end;
  handle_of t s

let schedule_after t ~delay thunk =
  schedule_at t ~time:(t.clock +. Float.max 0.0 delay) thunk

let schedule_immediate t thunk =
  let s = alloc_slot t thunk in
  lane_push t ~seq:(Event_queue.alloc_seq t.queue) ~slot:s;
  handle_of t s

(* ---- cancellation and compaction ------------------------------------ *)

(* Compact when dead entries dominate the heap; the floor keeps tiny
   heaps (where a linear sweep per cancel burst would cost more than
   it saves) on the lazy-deletion path. *)
let compact_floor = 64

let maybe_compact t =
  if
    t.heap_dead >= compact_floor
    && 2 * t.heap_dead > Event_queue.length t.queue
  then begin
    let removed =
      Event_queue.compact t.queue ~dead:(fun s ->
          if t.state.(s) land 1 = 1 then begin
            retire t s;
            true
          end
          else false)
    in
    t.heap_dead <- t.heap_dead - removed
  end

let live t h =
  h >= 0
  &&
  let s = h land slot_mask in
  s < t.n_slots
  &&
  let st = t.state.(s) in
  st lsr 2 = h lsr slot_bits && st land 1 = 0

let cancel t h =
  if h >= 0 then begin
    let s = h land slot_mask in
    if s < t.n_slots then begin
      let st = t.state.(s) in
      if st lsr 2 = h lsr slot_bits && st land 1 = 0 then begin
        t.state.(s) <- st lor 1;
        if st land 2 <> 0 then begin
          t.heap_dead <- t.heap_dead + 1;
          maybe_compact t
        end
      end
    end
  end

(* ---- execution ------------------------------------------------------ *)

let exec t time slot =
  t.clock <- time;
  let st = t.state.(slot) in
  let thunk = t.thunks.(slot) in
  retire t slot;
  if st land 1 = 0 then begin
    t.fired <- t.fired + 1;
    thunk ()
  end
  else if st land 2 <> 0 then
    (* a cancelled heap entry drained naturally before any compaction *)
    t.heap_dead <- t.heap_dead - 1

let exec_lane_head t =
  let i = t.lane_head in
  let slot = t.lane_slots.(i) in
  t.lane_head <- (i + 1) land (Array.length t.lane_seqs - 1);
  t.lane_len <- t.lane_len - 1;
  exec t t.clock slot

let exec_heap_top t =
  let time = Event_queue.top_time t.queue in
  let slot = Event_queue.top_payload t.queue in
  Event_queue.drop_top t.queue;
  exec t time slot

(* Earliest event across the heap and the lane. Lane entries all sit
   at [t.clock]; a heap entry at the same time fires first iff its seq
   is smaller (it was scheduled earlier). *)
let heap_precedes_lane t =
  (not (Event_queue.is_empty t.queue))
  && Event_queue.top_time t.queue <= t.clock
  && Event_queue.top_seq t.queue < t.lane_seqs.(t.lane_head)

let run_until t horizon =
  let saved_ok = t.inline_ok and saved_h = t.horizon in
  t.inline_ok <- true;
  t.horizon <- horizon;
  let continue = ref true in
  while !continue do
    if t.lane_len > 0 then
      if heap_precedes_lane t then exec_heap_top t else exec_lane_head t
    else if
      (not (Event_queue.is_empty t.queue))
      && Event_queue.top_time t.queue <= horizon
    then exec_heap_top t
    else continue := false
  done;
  t.inline_ok <- saved_ok;
  t.horizon <- saved_h;
  if horizon > t.clock then t.clock <- horizon

let run t =
  let saved_ok = t.inline_ok and saved_h = t.horizon in
  t.inline_ok <- true;
  t.horizon <- infinity;
  let continue = ref true in
  while !continue do
    if t.lane_len > 0 then
      if heap_precedes_lane t then exec_heap_top t else exec_lane_head t
    else if not (Event_queue.is_empty t.queue) then exec_heap_top t
    else continue := false
  done;
  t.inline_ok <- saved_ok;
  t.horizon <- saved_h

let step t =
  if t.lane_len > 0 then begin
    if heap_precedes_lane t then exec_heap_top t else exec_lane_head t;
    true
  end
  else if not (Event_queue.is_empty t.queue) then begin
    exec_heap_top t;
    true
  end
  else false

let try_inline t ~time thunk =
  if
    t.inline_ok && time >= t.clock && time <= t.horizon && t.lane_len = 0
    && (Event_queue.is_empty t.queue || Event_queue.top_time t.queue > time)
  then begin
    (* No pending event precedes (time, fresh-seq), so running the
       thunk here with the clock advanced is observationally identical
       to scheduling it — same RNG stream, same order. Counted in
       [fired] so event totals match the non-inlined schedule. *)
    t.clock <- time;
    t.fired <- t.fired + 1;
    t.inlined <- t.inlined + 1;
    thunk ();
    true
  end
  else false

let pending t = Event_queue.length t.queue + t.lane_len
