(* Stable storage as a second service queue.

   The paper's dissection framework treats every latency source as a
   service station on the critical path; *The Performance of Paxos in
   the Cloud* (PAPERS.md) shows the fsync is the dominant one in real
   deployments. This module models one replica's write-ahead log +
   disk: protocols append records ([write]) and then [sync] — the ack
   they owe the leader (P1b/P2b/VoteReply/AppendReply) may only be
   sent from the sync continuation, which fires after the simulated
   fsync completes. The device is FIFO with one in-flight fsync
   ([busy_until]), so back-to-back syncs queue exactly like a second
   Procq.

   Three durability disciplines ([sync_mode]):
   - [Sync_none]   — the continuation runs synchronously; no events,
                     no RNG draws, no latency. Byte-identical to the
                     pre-storage simulator on fault-free runs (CI-gated).
   - [Sync_every]  — every sync is its own fsync of [fsync_ms] (+
                     uniform jitter).
   - [Sync_batched]— group commit: syncs arriving within
                     [batch_window_ms] share one fsync.

   Crash semantics: records reach the durable image only when their
   fsync *completes*. [crash] discards the unsynced tail (pending +
   in-flight), counts it in [lost_writes], and bumps an epoch so any
   stray completion event is inert (the cluster also mass-cancels the
   owner's timers — the epoch is defense in depth). Recovery reads
   back only [regs] (small named integers: ballots, terms, votes), the
   retained log entries, and the latest snapshot.

   The record vocabulary is deliberately protocol-agnostic — integer
   registers, (index, a, b, cmd) log entries, snapshot images of
   applied commands — so this library sits below [paxi] and every
   protocol maps its own persistent state onto it. *)

type sync_mode = Sync_none | Sync_batched | Sync_every

let mode_to_string = function
  | Sync_none -> "none"
  | Sync_batched -> "batched"
  | Sync_every -> "every"

let mode_of_string = function
  | "none" -> Ok Sync_none
  | "batched" -> Ok Sync_batched
  | "every" -> Ok Sync_every
  | s -> Error (Printf.sprintf "unknown sync_mode %S (none|batched|every)" s)

type config = {
  sync_mode : sync_mode;
  fsync_ms : float;  (** mean service time of one fsync *)
  fsync_jitter_ms : float;  (** uniform [0, jitter) added per fsync *)
  batch_window_ms : float;  (** group-commit window for [Sync_batched] *)
  snapshot_threshold : int;
      (** snapshot + truncate once the retained log exceeds this many
          entries; 0 disables snapshots *)
  replay_ms_per_cmd : float;
      (** simulated cost of replaying one log entry at recovery *)
}

let default_config =
  {
    sync_mode = Sync_every;
    (* cloud-SSD ballpark: an order of magnitude above the LAN RTT's
       0.0427ms one-way, per the Paxos-in-the-cloud measurements *)
    fsync_ms = 0.5;
    fsync_jitter_ms = 0.0;
    batch_window_ms = 0.2;
    snapshot_threshold = 0;
    replay_ms_per_cmd = 0.01;
  }

let validate_config c =
  if c.fsync_ms < 0.0 then Error "storage.fsync_ms must be >= 0"
  else if c.fsync_jitter_ms < 0.0 then
    Error "storage.fsync_jitter_ms must be >= 0"
  else if c.batch_window_ms <= 0.0 && c.sync_mode = Sync_batched then
    Error "storage.batch_window_ms must be > 0 in batched mode"
  else if c.snapshot_threshold < 0 then
    Error "storage.snapshot_threshold must be >= 0"
  else if c.replay_ms_per_cmd < 0.0 then
    Error "storage.replay_ms_per_cmd must be >= 0"
  else Ok c

let config_to_json c =
  Json.Obj
    [
      ("mode", Json.String (mode_to_string c.sync_mode));
      ("fsync_ms", Json.Number c.fsync_ms);
      ("fsync_jitter_ms", Json.Number c.fsync_jitter_ms);
      ("batch_window_ms", Json.Number c.batch_window_ms);
      ("snapshot_threshold", Json.Number (float_of_int c.snapshot_threshold));
      ("replay_ms_per_cmd", Json.Number c.replay_ms_per_cmd);
    ]

let config_of_json j =
  let ( let* ) = Result.bind in
  let floatf name default =
    match Json.member name j with
    | None -> Ok default
    | Some v -> (
        match Json.to_float v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "storage.%s must be a number" name))
  in
  let* sync_mode =
    match Json.member "mode" j with
    | None -> Ok default_config.sync_mode
    | Some v -> (
        match Json.get_string v with
        | Some s -> mode_of_string s
        | None -> Error "storage.mode must be a string")
  in
  let* fsync_ms = floatf "fsync_ms" default_config.fsync_ms in
  let* fsync_jitter_ms =
    floatf "fsync_jitter_ms" default_config.fsync_jitter_ms
  in
  let* batch_window_ms =
    floatf "batch_window_ms" default_config.batch_window_ms
  in
  let* snapshot_threshold =
    match Json.member "snapshot_threshold" j with
    | None -> Ok default_config.snapshot_threshold
    | Some v -> (
        match Json.to_int v with
        | Some i -> Ok i
        | None -> Error "storage.snapshot_threshold must be an integer")
  in
  let* replay_ms_per_cmd =
    floatf "replay_ms_per_cmd" default_config.replay_ms_per_cmd
  in
  validate_config
    {
      sync_mode;
      fsync_ms;
      fsync_jitter_ms;
      batch_window_ms;
      snapshot_threshold;
      replay_ms_per_cmd;
    }

(* ---- records --------------------------------------------------------- *)

type entry = { a : int; b : int; cmd : Command.t }

type op =
  | Reg of int * int  (** register [idx] := value *)
  | Entry of int * entry  (** log slot [index] := entry *)
  | Truncate of int  (** discard log slots below [upto] *)
  | Snapshot of int * int * Command.t array
      (** state-machine image through slot [last_index] (inclusive),
          with [a] the protocol tag of that slot (raft: its term); the
          image is the applied-command prefix, replayable in order *)

type t = {
  config : config;
  sim : Sim.t;
  schedule : float -> (unit -> unit) -> unit;
      (* crash-domain-tracked scheduler: every completion event it
         creates dies with the owner at the crash edge *)
  rng : Rng.t option; (* allocated only when a jitter draw can happen *)
  (* durable image *)
  mutable regs : int array;
  log : (int, entry) Hashtbl.t;
  mutable log_base : int;
  mutable log_top : int; (* one past the highest durable slot *)
  mutable snap : (int * int * Command.t array) option;
  (* unsynced tail and device state (volatile) *)
  mutable pending : op list; (* newest first *)
  mutable n_pending : int;
  mutable waiters : (unit -> unit) list; (* batched-mode, newest first *)
  mutable flush_scheduled : bool;
  mutable busy_until : float;
  mutable epoch : int;
  (* metrics *)
  mutable writes : int;
  mutable fsyncs : int;
  mutable busy_ms : float;
  mutable lost_writes : int;
  mutable in_flight : int;
}

let create ~config ~sim ~schedule ~rng_parent =
  let rng =
    (* mode=none never draws; jitter=0 never draws. Only split the
       parent stream when a draw can actually happen, so storage-off
       and jitter-free configurations leave every other RNG stream
       untouched (byte-identity discipline, DESIGN.md §10). *)
    if config.sync_mode <> Sync_none && config.fsync_jitter_ms > 0.0 then
      Some (Rng.split rng_parent)
    else None
  in
  {
    config;
    sim;
    schedule;
    rng;
    regs = Array.make 4 0;
    log = Hashtbl.create 64;
    log_base = 0;
    log_top = 0;
    snap = None;
    pending = [];
    n_pending = 0;
    waiters = [];
    flush_scheduled = false;
    busy_until = 0.0;
    epoch = 0;
    writes = 0;
    fsyncs = 0;
    busy_ms = 0.0;
    lost_writes = 0;
    in_flight = 0;
  }

let mode t = t.config.sync_mode
let snapshot_threshold t = t.config.snapshot_threshold

(* ---- durable image mutation (runs at fsync completion) --------------- *)

let durable_apply t op =
  match op with
  | Reg (idx, v) ->
      if idx >= Array.length t.regs then begin
        let grown = Array.make (2 * (idx + 1)) 0 in
        Array.blit t.regs 0 grown 0 (Array.length t.regs);
        t.regs <- grown
      end;
      t.regs.(idx) <- v
  | Entry (index, e) ->
      if index >= t.log_base then begin
        Hashtbl.replace t.log index e;
        if index >= t.log_top then t.log_top <- index + 1
      end
  | Truncate upto ->
      if upto > t.log_base then begin
        for i = t.log_base to upto - 1 do
          Hashtbl.remove t.log i
        done;
        t.log_base <- upto;
        if t.log_top < upto then t.log_top <- upto
      end
  | Snapshot (last_index, a, image) -> t.snap <- Some (last_index, a, image)

(* ---- write path ------------------------------------------------------ *)

let write t op =
  t.writes <- t.writes + 1;
  t.pending <- op :: t.pending;
  t.n_pending <- t.n_pending + 1

let jitter_draw t =
  match t.rng with None -> 0.0 | Some rng -> Rng.float rng t.config.fsync_jitter_ms

(* One fsync covering [ops]; run the continuations [ks] (oldest first)
   once it completes. FIFO device: starts when the previous fsync
   finishes. *)
let begin_fsync t ops ks =
  let now = Sim.now t.sim in
  let dur = t.config.fsync_ms +. jitter_draw t in
  let start = Float.max now t.busy_until in
  let done_at = start +. dur in
  t.busy_until <- done_at;
  t.fsyncs <- t.fsyncs + 1;
  t.busy_ms <- t.busy_ms +. dur;
  let n = List.length ops in
  t.in_flight <- t.in_flight + n;
  let epoch = t.epoch in
  t.schedule (done_at -. now) (fun () ->
      if t.epoch = epoch then begin
        t.in_flight <- t.in_flight - n;
        List.iter (durable_apply t) ops;
        List.iter (fun k -> k ()) ks
      end)

let take_pending t =
  let ops = List.rev t.pending in
  t.pending <- [];
  t.n_pending <- 0;
  ops

let sync t k =
  match t.config.sync_mode with
  | Sync_none ->
      (* free durability: apply synchronously, no event, no draw *)
      List.iter (durable_apply t) (take_pending t);
      k ()
  | Sync_every -> begin_fsync t (take_pending t) [ k ]
  | Sync_batched ->
      t.waiters <- k :: t.waiters;
      if not t.flush_scheduled then begin
        t.flush_scheduled <- true;
        let epoch = t.epoch in
        t.schedule t.config.batch_window_ms (fun () ->
            if t.epoch = epoch then begin
              t.flush_scheduled <- false;
              let ks = List.rev t.waiters in
              t.waiters <- [];
              begin_fsync t (take_pending t) ks
            end)
      end

let persist t ops k =
  List.iter (write t) ops;
  sync t k

(* ---- crash ----------------------------------------------------------- *)

let crash t =
  t.epoch <- t.epoch + 1;
  t.lost_writes <- t.lost_writes + t.n_pending + t.in_flight;
  t.pending <- [];
  t.n_pending <- 0;
  t.in_flight <- 0;
  t.waiters <- [];
  t.flush_scheduled <- false;
  t.busy_until <- Sim.now t.sim

(* ---- recovery reads -------------------------------------------------- *)

let reg t idx = if idx < Array.length t.regs then t.regs.(idx) else 0
let log_base t = t.log_base
let log_top t = t.log_top
let snapshot t = t.snap
let durable_entries t = Hashtbl.length t.log

let iter_entries t ~f =
  for i = t.log_base to t.log_top - 1 do
    match Hashtbl.find_opt t.log i with Some e -> f i e | None -> ()
  done

let replay_cost_ms t =
  t.config.replay_ms_per_cmd *. float_of_int (Hashtbl.length t.log)

(* ---- metrics --------------------------------------------------------- *)

let writes t = t.writes
let fsyncs t = t.fsyncs
let busy_ms t = t.busy_ms
let lost_writes t = t.lost_writes
let pending_writes t = t.n_pending + t.in_flight
