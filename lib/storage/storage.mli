(** Stable storage modeled as a second service queue.

    One instance per replica: protocols {!write} persistent records
    (ballot/term registers, accepted log entries, snapshots) and call
    {!sync} with the continuation that sends the ack they owe — the
    continuation runs only after the simulated fsync completes, which
    puts the disk on the critical path exactly as the paper's
    dissection framework demands. Records become durable at fsync
    {e completion}; {!crash} loses the unsynced tail, and recovery
    reads back only the durable image. The vocabulary is
    protocol-agnostic (integer registers; [(index, a, b, cmd)] log
    entries; applied-command snapshot images) so this library sits
    below the protocol layer. *)

type sync_mode =
  | Sync_none  (** durability is free: synchronous, no events, no draws *)
  | Sync_batched  (** group commit: one fsync per [batch_window_ms] *)
  | Sync_every  (** one fsync per {!sync} *)

val mode_to_string : sync_mode -> string
val mode_of_string : string -> (sync_mode, string) result

type config = {
  sync_mode : sync_mode;
  fsync_ms : float;
  fsync_jitter_ms : float;
  batch_window_ms : float;
  snapshot_threshold : int;
  replay_ms_per_cmd : float;
}

val default_config : config
val validate_config : config -> (config, string) result
val config_to_json : config -> Json.t
val config_of_json : Json.t -> (config, string) result

type entry = { a : int; b : int; cmd : Command.t }
(** One durable log slot: [a]/[b] are protocol tags (paxos: accepted
    ballot round/owner; raft: entry term), [cmd] the command. *)

type op =
  | Reg of int * int
  | Entry of int * entry
  | Truncate of int
  | Snapshot of int * int * Command.t array

type t

val create :
  config:config ->
  sim:Sim.t ->
  schedule:(float -> (unit -> unit) -> unit) ->
  rng_parent:Rng.t ->
  t
(** [schedule delay k] must route through the owner's crash-domain
    timer registry so fsync completions die with the replica. The
    jitter stream is split from [rng_parent] only when a draw can
    happen (mode ≠ none and jitter > 0), preserving byte-identity of
    every other stream otherwise. *)

val mode : t -> sync_mode
val snapshot_threshold : t -> int

val write : t -> op -> unit
(** Append a record to the unsynced tail (volatile until a sync
    covering it completes). *)

val sync : t -> (unit -> unit) -> unit
(** Make the tail durable, then run the continuation. [Sync_none] is
    synchronous; [Sync_every] schedules one fsync on the FIFO device;
    [Sync_batched] joins the open group-commit window. *)

val persist : t -> op list -> (unit -> unit) -> unit
(** [write] each op, then [sync]. *)

val crash : t -> unit
(** Lose the unsynced tail (counted in {!lost_writes}), invalidate any
    in-flight fsync completions, and reset the device clock. The
    durable image survives. *)

(** {2 Recovery reads} *)

val reg : t -> int -> int
(** Durable register value; 0 if never written. *)

val log_base : t -> int
val log_top : t -> int
val snapshot : t -> (int * int * Command.t array) option
val durable_entries : t -> int
val iter_entries : t -> f:(int -> entry -> unit) -> unit
(** Durable log slots in index order, [log_base .. log_top). *)

val replay_cost_ms : t -> float
(** Simulated time to replay the retained log at recovery
    ([replay_ms_per_cmd] × retained entries); loading the snapshot
    image itself is modeled as free. *)

(** {2 Metrics} *)

val writes : t -> int
val fsyncs : t -> int
val busy_ms : t -> float
(** Total simulated time the device spent servicing fsyncs;
    [busy_ms /. fsyncs] is the measured mean fsync latency the dissect
    gate compares against the model term. *)

val lost_writes : t -> int
(** Records discarded by crashes before their fsync completed. *)

val pending_writes : t -> int
