open Paxi_benchmark

type profile = {
  kinds : Schedule.kinds;
  n : int;
  zoned : bool;
  global_consensus : bool;
}

(* What each family is expected to survive, matched to the recovery
   machinery its implementation actually has (each row validated
   empirically against randomized campaigns; see DESIGN.md):

   - paxos/fpaxos: heartbeat-driven failover plus reliable-delivery
     retransmission of phase-1/phase-2 posts — full matrix.
   - raft: elections, next_index-driven AppendEntries catch-up, and
     reliably-posted appends — full matrix.
   - epaxos: [watch_instance] retransmits PreAccept/Accept, so lost
     messages heal, but a crashed command leader leaves its in-flight
     instances as permanent dependency holes — everything but crash.
   - abd: leaderless; every operation is a fresh client-driven quorum
     round and the client retries against rotating replicas — full
     matrix.
   - mencius: per-message loss heals (client retries re-drive the
     rotation and skips regenerate), but a crash or partition wedges
     the crashed replica's slot range — no crash, no partition.
   - wpaxos: steal P1a/P2as are reliably posted, so drops, flakiness
     and link blackouts all heal once the network does; only a crash
     is fatal (a dead zone leader takes its mandatory zone-majority
     vote with it — there is no reconfiguration).
   - chain/wankeeper/vpaxos: chain hops, token moves and ownership
     handoffs ride the explicitly-acked reliable channel, so any
     transient loss heals; their fixed role assignments (chain order,
     master zone, static group leaders) still make a crash fatal. *)
let profile_of name =
  let open Schedule in
  (* Clock skew only means anything to lease-based read paths; the
     default campaigns (and their fixed-seed pins) keep it off, and
     read-path campaigns opt in via [generate ~skew:true]. *)
  let full = { all_kinds with skew = false } in
  let no_crash = { full with crash = false } in
  match name with
  | "paxos" | "fpaxos" | "raft" ->
      { kinds = full; n = 5; zoned = false; global_consensus = true }
  | "epaxos" ->
      { kinds = no_crash; n = 5; zoned = false; global_consensus = true }
  | "abd" -> { kinds = full; n = 5; zoned = false; global_consensus = false }
  | "chain" -> { kinds = no_crash; n = 5; zoned = false; global_consensus = true }
  | "mencius" ->
      {
        kinds = { full with crash = false; partition = false };
        n = 5;
        zoned = false;
        global_consensus = true;
      }
  | "wpaxos" ->
      { kinds = no_crash; n = 9; zoned = true; global_consensus = true }
  | "wankeeper" ->
      { kinds = no_crash; n = 9; zoned = true; global_consensus = false }
  | "vpaxos" ->
      { kinds = no_crash; n = 9; zoned = true; global_consensus = false }
  | other ->
      invalid_arg
        (Printf.sprintf "Trial.profile_of: unknown protocol %S (known: %s)"
           other
           (String.concat ", " Paxi_protocols.Registry.names))

type verdict = {
  ok : bool;
  reasons : string list;
  completed : int;
  gave_up : int;
  anomalies : int;
  divergences : int;
  recoveries : int;
  replay_ms_total : float;
  timers_cancelled : int;
}

let horizon_ms = 3_000.0

(* Virtual time the cluster gets after the last fault lifts: long
   enough for the slowest failover timeout (base 1000ms scaled by up
   to 3.5x for the highest replica id) plus a full client retry. *)
let recovery_ms = 4_500.0

let zones = [ "az-a"; "az-b"; "az-c" ]

let topology_for profile =
  if profile.zoned then
    Topology.custom
      ~replica_regions:
        (List.concat_map
           (fun z -> List.init (profile.n / 3) (fun _ -> Region.make z))
           zones)
      ~rtt_ms:(fun _ _ -> 0.4271)
      ~jitter:0.02 ()
  else Topology.lan ~n_replicas:profile.n ()

let client_specs_for ?(arrival = Runner.Closed) profile workload =
  if profile.zoned then
    List.map
      (fun z ->
        Runner.clients ~region:(Region.make z) ~target:Runner.Round_robin
          ~arrival ~count:1 workload)
      zones
  else [ Runner.clients ~target:Runner.Round_robin ~arrival ~count:3 workload ]

(* [?n] overrides the profile's cluster size (zoned profiles spread
   [n / 3] replicas per zone) — regression trials pin behavior at
   sizes the default campaign does not visit, e.g. the two-replica
   zones of the wpaxos n=6 wedge. *)
let resolve_profile ?n protocol =
  let profile = profile_of protocol in
  match n with Some n -> { profile with n } | None -> profile

let generate ?n ?(skew = false) ~protocol ~seed ~max_faults () =
  let profile = resolve_profile ?n protocol in
  let kinds =
    if skew then { profile.kinds with Schedule.skew = true } else profile.kinds
  in
  let rng = Rng.create ~seed in
  Schedule.generate ~rng ~n:profile.n ~kinds ~max_faults ~horizon_ms

let run ?n ?read_ratio ?read_path ?(relay_groups = 0) ?(shards = 1) ?arrival
    ?durable ~protocol ~seed schedule =
  let profile = resolve_profile ?n protocol in
  let (module P) = Paxi_protocols.Registry.find_exn protocol in
  let config =
    {
      (Config.default ~n_replicas:profile.n) with
      Config.seed;
      Config.read_ratio;
      Config.read_path;
      Config.relay_groups;
      (* [?durable] arms the stable-storage model: crashes become real
         (volatile state lost, durable log replayed on recovery)
         instead of transport-level pauses. *)
      Config.storage = durable;
      (* every trial runs with the reliable-delivery substrate armed:
         faults are the whole point here, and several families (chain,
         wankeeper, vpaxos, and paxos/raft since their ad-hoc retry
         paths moved into lib/net/reliable) depend on it to heal. The
         budget — 40ms doubling to a 320ms cap, 25 tries ≈ 7.9s —
         comfortably outlives the generator's longest fault window
         (1.8s) plus delivery jitter. *)
      Config.retransmit =
        Some { Config.base_ms = 40.0; max_ms = 320.0; max_tries = 25 };
    }
  in
  let warmup_ms = 200.0 in
  let fault_end = Schedule.end_ms schedule in
  let duration_ms =
    Float.max 1_500.0 (fault_end +. recovery_ms -. warmup_ms)
  in
  let workload = { Workload.default with Workload.keys = 15 } in
  (* sharded trials run K co-located groups behind a hash partitioner
     over the shared fault plane: every injected fault hits replica i
     of all K groups at once, and the oracle judges the union — the
     per-key histories still serialize because a key never changes
     owner. [shards = 1] keeps the legacy single-group path (and its
     fixed-seed pins) untouched. *)
  let sharding =
    if shards > 1 then Some { Runner.shards; partition = `Hash } else None
  in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms ~cooldown_ms:2_000.0
      ~collect_history:true ~check_consensus:profile.global_consensus
      ~faults:(Schedule.install schedule ~n:profile.n)
      ?sharding ~config
      ~topology:(topology_for profile)
      ~client_specs:(client_specs_for ?arrival profile workload)
      ()
  in
  let result = Runner.run (module P) spec in
  let anomalies = Linearizability.check result.Runner.history in
  let divergences = result.Runner.consensus_violations in
  let reasons = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  (match anomalies with
  | [] -> ()
  | a :: _ ->
      fail "%d linearizability anomalies (first: %s)" (List.length anomalies)
        a.Linearizability.reason);
  (match divergences with
  | [] -> ()
  | v :: _ ->
      fail "%d consensus divergences (first: %s)" (List.length divergences)
        (Fmt.str "%a" Consensus_check.pp_violation v));
  if result.Runner.completed = 0 then fail "no operation ever completed"
  else if
    (* liveness: commits resume after the last fault lifts (history
       records completed ops only, so one late invocation completing
       is exactly the evidence we need) *)
    schedule <> []
    && not
         (List.exists
            (fun (op : Linearizability.op) ->
              op.Linearizability.invoked_ms >= fault_end)
            result.Runner.history)
  then
    fail "no operation invoked after the last fault lifted (%.0fms) completed"
      fault_end;
  {
    ok = !reasons = [];
    reasons = List.rev !reasons;
    completed = result.Runner.completed;
    gave_up = result.Runner.gave_up;
    anomalies = List.length anomalies;
    divergences = List.length divergences;
    recoveries = result.Runner.recoveries;
    replay_ms_total = result.Runner.replay_ms_total;
    timers_cancelled = result.Runner.timers_cancelled;
  }
