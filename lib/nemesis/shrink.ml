(* Greedy delta-debugging over fault schedules. The predicate
   [still_fails] re-runs the trial, so every probe costs a full
   simulation; the budget caps that. Two passes, each to a fixpoint:

   1. drop whole faults — remove each fault in turn and keep the
      removal whenever the remainder still fails;
   2. halve windows — scale each fault's duration by 0.5 while the
      schedule still fails, down to a floor where further halving
      stops changing verdicts.

   Dropping before halving matters: a schedule of k faults usually
   fails because of one or two of them, and each successful drop
   removes all future probes of that fault. *)

let duration_floor_ms = 50.0

let remove_nth xs n = List.filteri (fun i _ -> i <> n) xs

let replace_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs

let shrink ?(budget = 150) ~still_fails schedule =
  let probes = ref 0 in
  let try_probe candidate =
    if !probes >= budget then false
    else begin
      incr probes;
      still_fails candidate
    end
  in
  (* pass 1: drop whole faults, restarting after every success so the
     indices stay aligned with the shrunk list *)
  let rec drop_pass schedule =
    let len = List.length schedule in
    let rec try_at i =
      if i >= len then schedule
      else
        let candidate = remove_nth schedule i in
        if candidate <> [] && try_probe candidate then drop_pass candidate
        else try_at (i + 1)
    in
    if len <= 1 then schedule else try_at 0
  in
  let schedule = drop_pass schedule in
  (* pass 2: halve each fault's window while the schedule still fails *)
  let rec halve_at schedule i =
    if i >= List.length schedule then schedule
    else
      let fault = List.nth schedule i in
      if Schedule.duration_of fault /. 2.0 < duration_floor_ms then
        halve_at schedule (i + 1)
      else
        let candidate = replace_nth schedule i (Schedule.scale_duration fault 0.5) in
        if try_probe candidate then halve_at candidate i
        else halve_at schedule (i + 1)
  in
  (halve_at schedule 0, !probes)
