(** Nemesis fault schedules: a protocol-independent description of a
    randomized adversity plan — who crashes, which links drop, slow
    down, or flake, and how the cluster partitions, each over a
    bounded window of virtual time.

    Schedules are plain data (replica indices and windows), so they
    can be generated from a seed, serialized into a one-line repro,
    shrunk fault-by-fault, and only turned into a live {!Faults.t}
    when a trial runs. *)

type fault =
  | Crash of { node : int; from_ms : float; duration_ms : float }
  | Drop of { src : int; dst : int; from_ms : float; duration_ms : float }
  | Slow of {
      src : int;
      dst : int;
      from_ms : float;
      duration_ms : float;
      extra_ms : float;
    }
  | Flaky of {
      src : int;
      dst : int;
      from_ms : float;
      duration_ms : float;
      p_drop : float;
    }
  | Partition of { minority : int list; from_ms : float; duration_ms : float }
      (** The cluster splits into [minority] and its complement; the
          majority side retains a quorum. *)
  | Skew of {
      node : int;
      from_ms : float;
      duration_ms : float;
      offset_ms : float;
    }
      (** The node's protocol-visible clock reads [now + offset_ms]
          while the window is open (signed; delivery and scheduling
          are unaffected). Attacks lease expiry: a leader running
          behind over-trusts its lease, a follower running ahead
          expires its grant early. *)

type t = fault list

type kinds = {
  crash : bool;
  partition : bool;
  drop : bool;
  flaky : bool;
  slow : bool;
  skew : bool;
}
(** Which fault kinds a generator may draw — protocols that do not
    implement a recovery path (see the per-protocol notes in
    lib/protocols/*.mli) are stressed only with the kinds they are
    expected to survive. *)

val all_kinds : kinds
val no_kinds : kinds

val window_of : fault -> float * float
(** [(from_ms, until_ms)] of the fault's window. *)

val duration_of : fault -> float
val scale_duration : fault -> float -> fault

val end_ms : t -> float
(** When the last fault lifts ([0.0] for an empty schedule) — the
    instant after which the liveness oracle expects commits to
    resume. *)

val generate :
  rng:Rng.t -> n:int -> kinds:kinds -> max_faults:int -> horizon_ms:float -> t
(** Draw 1..[max_faults] faults with windows inside
    [\[0, horizon_ms + max window\]]. At every instant the crashed
    set is a minority of distinct nodes — the constraint is
    per-overlap, not per-schedule, so nodes whose windows have
    expired drain back into the candidate pool and long schedules
    keep crashing (and recovering) machines. Crashes are biased
    toward replica 0 (the initial stable leader of the single-leader
    protocols); partitions split a random minority — sometimes
    containing the leader — from the rest. Deterministic in [rng]. *)

val install : t -> n:int -> Faults.t -> unit
(** Materialize the schedule into a live fault injector for an
    [n]-replica cluster. *)

val to_string : t -> string
(** Compact one-line rendering for repro lines. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result
(** Parse a schedule from its JSON text (as printed in repro lines). *)
