type fault =
  | Crash of { node : int; from_ms : float; duration_ms : float }
  | Drop of { src : int; dst : int; from_ms : float; duration_ms : float }
  | Slow of {
      src : int;
      dst : int;
      from_ms : float;
      duration_ms : float;
      extra_ms : float;
    }
  | Flaky of {
      src : int;
      dst : int;
      from_ms : float;
      duration_ms : float;
      p_drop : float;
    }
  | Partition of { minority : int list; from_ms : float; duration_ms : float }
  | Skew of {
      node : int;
      from_ms : float;
      duration_ms : float;
      offset_ms : float; (* signed: the node's clock reads now + offset *)
    }

type t = fault list

type kinds = {
  crash : bool;
  partition : bool;
  drop : bool;
  flaky : bool;
  slow : bool;
  skew : bool;
}

let all_kinds =
  {
    crash = true;
    partition = true;
    drop = true;
    flaky = true;
    slow = true;
    skew = true;
  }

let no_kinds =
  {
    crash = false;
    partition = false;
    drop = false;
    flaky = false;
    slow = false;
    skew = false;
  }

let window_of = function
  | Crash { from_ms; duration_ms; _ }
  | Drop { from_ms; duration_ms; _ }
  | Slow { from_ms; duration_ms; _ }
  | Flaky { from_ms; duration_ms; _ }
  | Partition { from_ms; duration_ms; _ }
  | Skew { from_ms; duration_ms; _ } ->
      (from_ms, from_ms +. duration_ms)

let end_ms t =
  List.fold_left (fun acc f -> Float.max acc (snd (window_of f))) 0.0 t

let scale_duration fault factor =
  match fault with
  | Crash r -> Crash { r with duration_ms = r.duration_ms *. factor }
  | Drop r -> Drop { r with duration_ms = r.duration_ms *. factor }
  | Slow r -> Slow { r with duration_ms = r.duration_ms *. factor }
  | Flaky r -> Flaky { r with duration_ms = r.duration_ms *. factor }
  | Partition r -> Partition { r with duration_ms = r.duration_ms *. factor }
  | Skew r -> Skew { r with duration_ms = r.duration_ms *. factor }

let duration_of fault =
  let from_ms, until_ms = window_of fault in
  until_ms -. from_ms

let install t ~n faults =
  let r = Address.replica in
  List.iter
    (function
      | Crash { node; from_ms; duration_ms } ->
          Faults.crash faults ~node:(r node) ~from_ms ~duration_ms
      | Drop { src; dst; from_ms; duration_ms } ->
          Faults.drop faults ~src:(r src) ~dst:(r dst) ~from_ms ~duration_ms
      | Slow { src; dst; from_ms; duration_ms; extra_ms } ->
          Faults.slow faults ~src:(r src) ~dst:(r dst) ~from_ms ~duration_ms
            ~extra_ms
      | Flaky { src; dst; from_ms; duration_ms; p_drop } ->
          Faults.flaky faults ~src:(r src) ~dst:(r dst) ~from_ms ~duration_ms
            ~p_drop
      | Partition { minority; from_ms; duration_ms } ->
          let rest =
            List.filter_map
              (fun i -> if List.mem i minority then None else Some (r i))
              (List.init n Fun.id)
          in
          Faults.partition faults
            ~groups:[ List.map r minority; rest ]
            ~from_ms ~duration_ms
      | Skew { node; from_ms; duration_ms; offset_ms } ->
          Faults.skew faults ~node:(r node) ~from_ms ~duration_ms ~offset_ms)
    t

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

(* One random fault. The initial stable leader of the single-leader
   protocols is replica 0, so crashes and link faults are biased
   toward it — leader-targeted faults are the highest-yield schedules
   (a follower crash is almost a no-op). Partitions split the cluster
   into a random minority and the complementary majority, sometimes
   exiling the leader into the minority. *)
let gen_fault rng ~n ~kinds ~horizon_ms ~crashed =
  let minority_cap = (n - 1) / 2 in
  let leader_biased () = if Rng.bernoulli rng ~p:0.4 then 0 else Rng.int rng n in
  let other_than a = (a + 1 + Rng.int rng (n - 1)) mod n in
  let from_ms = Rng.float rng (Float.max 1.0 (horizon_ms *. 0.75)) in
  let duration_ms = Rng.uniform rng ~lo:300.0 ~hi:1_800.0 in
  let until_ms = from_ms +. duration_ms in
  (* Crash windows that overlap the candidate window — only those
     constrain it. Entries whose windows have no overlap drain out of
     consideration, so a long schedule can keep crashing (distinct or
     even repeated) nodes as earlier crashes recover, while no instant
     ever sees more than a minority down. (Counting every window that
     touches ours overestimates true concurrency — windows overlapping
     ours need not overlap each other — which only errs safe.) *)
  let live =
    List.filter (fun (_, f, u) -> f < until_ms && from_ms < u) !crashed
  in
  let pick_link () =
    let a = leader_biased () in
    let b = other_than a in
    if Rng.bool rng then (a, b) else (b, a)
  in
  let available =
    [
      (kinds.crash && List.length live < minority_cap, `Crash);
      (kinds.partition, `Partition);
      (kinds.drop, `Drop);
      (kinds.flaky, `Flaky);
      (kinds.slow, `Slow);
      (kinds.skew, `Skew);
    ]
    |> List.filter_map (fun (ok, k) -> if ok then Some k else None)
  in
  match available with
  | [] -> None
  | ks -> (
      match Rng.pick rng (Array.of_list ks) with
      | `Crash ->
          (* targets distinct from every concurrently-down node, with
             concurrency capped at a minority of the cluster, so a
             quorum survives every instant of the schedule *)
          let down = List.map (fun (node, _, _) -> node) live in
          let candidates =
            List.filter (fun i -> not (List.mem i down)) (List.init n Fun.id)
          in
          let node =
            if List.mem 0 candidates && Rng.bernoulli rng ~p:0.4 then 0
            else Rng.pick rng (Array.of_list candidates)
          in
          crashed := (node, from_ms, until_ms) :: !crashed;
          Some (Crash { node; from_ms; duration_ms })
      | `Partition ->
          let k = 1 + Rng.int rng minority_cap in
          let ids = Array.init n Fun.id in
          Rng.shuffle rng ids;
          let minority = Array.to_list (Array.sub ids 0 k) in
          let minority =
            (* sometimes drag the leader into the minority side *)
            if (not (List.mem 0 minority)) && Rng.bernoulli rng ~p:0.3 then
              0 :: List.tl minority
            else minority
          in
          Some (Partition { minority = List.sort_uniq compare minority; from_ms; duration_ms })
      | `Drop ->
          let src, dst = pick_link () in
          Some (Drop { src; dst; from_ms; duration_ms })
      | `Flaky ->
          let src, dst = pick_link () in
          let p_drop = Rng.uniform rng ~lo:0.05 ~hi:0.4 in
          Some (Flaky { src; dst; from_ms; duration_ms; p_drop })
      | `Slow ->
          let src, dst = pick_link () in
          let extra_ms = Rng.uniform rng ~lo:1.0 ~hi:10.0 in
          Some (Slow { src; dst; from_ms; duration_ms; extra_ms })
      | `Skew ->
          (* Clock skew attacks lease expiry: the leader reading its
             clock behind real time over-trusts its lease, a follower
             reading ahead grants (and expires grants) early. Only
             protocol-visible time skews, so magnitudes up to the
             nemesis cap of 120 ms stay under any sane lease margin's
             2x bound — the oracle must find no violation. *)
          let node = leader_biased () in
          let magnitude = Rng.uniform rng ~lo:20.0 ~hi:120.0 in
          let offset_ms = if Rng.bool rng then magnitude else -.magnitude in
          Some (Skew { node; from_ms; duration_ms; offset_ms }))

let generate ~rng ~n ~kinds ~max_faults ~horizon_ms =
  if n < 2 then invalid_arg "Schedule.generate: need at least 2 replicas";
  let count = 1 + Rng.int rng (Stdlib.max 1 max_faults) in
  let crashed = ref [] in
  let rec go k acc =
    if k = 0 then List.rev acc
    else
      match gen_fault rng ~n ~kinds ~horizon_ms ~crashed with
      | Some f -> go (k - 1) (f :: acc)
      | None -> List.rev acc
  in
  go count []

(* ------------------------------------------------------------------ *)
(* Rendering and serialization                                         *)
(* ------------------------------------------------------------------ *)

let fault_to_string = function
  | Crash { node; from_ms; duration_ms } ->
      Printf.sprintf "crash(n%d,@%.0f+%.0f)" node from_ms duration_ms
  | Drop { src; dst; from_ms; duration_ms } ->
      Printf.sprintf "drop(n%d->n%d,@%.0f+%.0f)" src dst from_ms duration_ms
  | Slow { src; dst; from_ms; duration_ms; extra_ms } ->
      Printf.sprintf "slow(n%d->n%d,+%.1fms,@%.0f+%.0f)" src dst extra_ms
        from_ms duration_ms
  | Flaky { src; dst; from_ms; duration_ms; p_drop } ->
      Printf.sprintf "flaky(n%d->n%d,p=%.2f,@%.0f+%.0f)" src dst p_drop from_ms
        duration_ms
  | Partition { minority; from_ms; duration_ms } ->
      Printf.sprintf "partition({%s}|rest,@%.0f+%.0f)"
        (String.concat "," (List.map (Printf.sprintf "n%d") minority))
        from_ms duration_ms
  | Skew { node; from_ms; duration_ms; offset_ms } ->
      Printf.sprintf "skew(n%d,%+.1fms,@%.0f+%.0f)" node offset_ms from_ms
        duration_ms

let to_string t =
  if t = [] then "(no faults)"
  else String.concat "; " (List.map fault_to_string t)

let num f = Json.Number f
let inum i = Json.Number (float_of_int i)

let fault_to_json f =
  let base kind from_ms duration_ms rest =
    Json.Obj
      (("kind", Json.String kind)
      :: rest
      @ [ ("from_ms", num from_ms); ("duration_ms", num duration_ms) ])
  in
  match f with
  | Crash { node; from_ms; duration_ms } ->
      base "crash" from_ms duration_ms [ ("node", inum node) ]
  | Drop { src; dst; from_ms; duration_ms } ->
      base "drop" from_ms duration_ms [ ("src", inum src); ("dst", inum dst) ]
  | Slow { src; dst; from_ms; duration_ms; extra_ms } ->
      base "slow" from_ms duration_ms
        [ ("src", inum src); ("dst", inum dst); ("extra_ms", num extra_ms) ]
  | Flaky { src; dst; from_ms; duration_ms; p_drop } ->
      base "flaky" from_ms duration_ms
        [ ("src", inum src); ("dst", inum dst); ("p_drop", num p_drop) ]
  | Partition { minority; from_ms; duration_ms } ->
      base "partition" from_ms duration_ms
        [ ("minority", Json.List (List.map inum minority)) ]
  | Skew { node; from_ms; duration_ms; offset_ms } ->
      base "skew" from_ms duration_ms
        [ ("node", inum node); ("offset_ms", num offset_ms) ]

let to_json t = Json.List (List.map fault_to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let get_num field j =
  match Json.member field j with
  | Some (Json.Number f) -> Ok f
  | _ -> Error (Printf.sprintf "missing number %S" field)

let get_int field j =
  let* f = get_num field j in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "%S is not an integer" field)

let fault_of_json j =
  match Json.member "kind" j with
  | Some (Json.String kind) -> (
      let* from_ms = get_num "from_ms" j in
      let* duration_ms = get_num "duration_ms" j in
      match kind with
      | "crash" ->
          let* node = get_int "node" j in
          Ok (Crash { node; from_ms; duration_ms })
      | "drop" ->
          let* src = get_int "src" j in
          let* dst = get_int "dst" j in
          Ok (Drop { src; dst; from_ms; duration_ms })
      | "slow" ->
          let* src = get_int "src" j in
          let* dst = get_int "dst" j in
          let* extra_ms = get_num "extra_ms" j in
          Ok (Slow { src; dst; from_ms; duration_ms; extra_ms })
      | "flaky" ->
          let* src = get_int "src" j in
          let* dst = get_int "dst" j in
          let* p_drop = get_num "p_drop" j in
          Ok (Flaky { src; dst; from_ms; duration_ms; p_drop })
      | "partition" -> (
          match Json.member "minority" j with
          | Some (Json.List ms) ->
              let* minority =
                List.fold_left
                  (fun acc m ->
                    let* acc = acc in
                    match Json.to_int m with
                    | Some i -> Ok (i :: acc)
                    | None -> Error "partition minority: expected integers")
                  (Ok []) ms
              in
              Ok (Partition { minority = List.rev minority; from_ms; duration_ms })
          | _ -> Error "partition: missing minority")
      | "skew" ->
          let* node = get_int "node" j in
          let* offset_ms = get_num "offset_ms" j in
          Ok (Skew { node; from_ms; duration_ms; offset_ms })
      | k -> Error (Printf.sprintf "unknown fault kind %S" k))
  | _ -> Error "fault: missing kind"

let of_json = function
  | Json.List faults ->
      let* rev =
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            let* f = fault_of_json j in
            Ok (f :: acc))
          (Ok []) faults
      in
      Ok (List.rev rev)
  | _ -> Error "schedule: expected a list"

let of_string s =
  match Json.parse s with Ok j -> of_json j | Error e -> Error e
