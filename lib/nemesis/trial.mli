(** One nemesis trial: run a protocol cluster under a fault schedule
    and judge the outcome with the offline oracles.

    The oracle combines three judgments:
    - {e safety}: the client-observed history is linearizable
      ({!Paxi_benchmark.Linearizability.check}) and, for protocols
      that maintain one global replicated state machine, the
      per-replica state machines share common-prefix per-key histories
      ({!Paxi_benchmark.Consensus_check.check});
    - {e liveness}: some client operation invoked after the last fault
      window lifts still completes — commits resume once the network
      heals;
    - {e progress}: the run completed at least one operation at all.

    Each protocol is stressed only with the fault kinds its
    implementation has a recovery path for (see {!profile_of}); the
    profile table doubles as documentation of each family's fault
    tolerance. *)

type profile = {
  kinds : Schedule.kinds;  (** fault kinds this protocol must survive *)
  n : int;  (** cluster size the trial uses *)
  zoned : bool;  (** three-zone topology (multi-leader families) *)
  global_consensus : bool;
      (** whether the cross-replica consensus check applies — zone- or
          coordinator-scoped protocols keep deliberately divergent
          per-node state *)
}

val profile_of : string -> profile
(** Raises [Invalid_argument] on an unknown protocol name. *)

val horizon_ms : float
(** Fault windows start inside [\[0, 0.75 * horizon_ms)]. *)

type verdict = {
  ok : bool;
  reasons : string list;  (** why the trial failed; [] when [ok] *)
  completed : int;
  gave_up : int;
  anomalies : int;  (** linearizability anomalies *)
  divergences : int;  (** consensus-check violations *)
  recoveries : int;
      (** crash-recovery edges completed (0 on memory-only trials) *)
  replay_ms_total : float;  (** simulated log-replay time at recovery *)
  timers_cancelled : int;  (** timer events mass-cancelled at crashes *)
}

val generate :
  ?n:int ->
  ?skew:bool ->
  protocol:string ->
  seed:int ->
  max_faults:int ->
  unit ->
  Schedule.t
(** The schedule a trial with this identity runs: deterministic in
    [(protocol, seed, max_faults)] and gated by the protocol's
    profile. [?n] overrides the profile's cluster size; [?skew]
    (default false) additionally allows clock-skew faults — the
    read-path campaigns enable it to attack lease expiry, while the
    default matrix stays byte-identical to its fixed-seed pins. *)

val run :
  ?n:int ->
  ?read_ratio:float ->
  ?read_path:Config.read_path ->
  ?relay_groups:int ->
  ?shards:int ->
  ?arrival:Paxi_benchmark.Runner.arrival ->
  ?durable:Storage.config ->
  protocol:string ->
  seed:int ->
  Schedule.t ->
  verdict
(** Run one simulated cluster of [protocol] under the schedule, with
    closed-loop clients, and judge it. Deterministic in the
    arguments. [?n] overrides the profile's cluster size (zoned
    profiles place [n / 3] replicas per zone); [?read_ratio] and
    [?read_path] thread the PR 7 read-path knobs into the cluster
    config; [?relay_groups] (default 0 = direct) the PR 8 relay-tree
    knob — the relay-crash campaigns run paxos/raft behind relays and
    demand commits survive relay failures. [?shards] (default 1) runs
    K hash-partitioned groups over the shared fault plane (faults are
    machine-scoped: replica [i] of every group fails together) and
    [?arrival] (default closed-loop) swaps the client pacing model, so
    the oracle also covers sharded and open-loop configurations.
    [?durable] (default off) arms the stable-storage model: crashes
    destroy volatile state and recovery boots a fresh replica from
    the durable log (pause-not-crash becomes crash-and-recover), with
    the verdict reporting recovery counts and replay time. All
    default off, preserving the write-path baseline and its
    fixed-seed pins. *)
