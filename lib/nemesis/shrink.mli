(** Greedy schedule shrinker: given a failing fault schedule and a
    predicate that re-runs the trial, find a smaller schedule that
    still fails — first by dropping whole faults, then by halving the
    surviving windows. *)

val duration_floor_ms : float
(** Windows are not halved below twice this duration. *)

val shrink :
  ?budget:int ->
  still_fails:(Schedule.t -> bool) ->
  Schedule.t ->
  Schedule.t * int
(** [shrink ~still_fails s] returns a minimized schedule that still
    satisfies [still_fails], plus the number of predicate probes
    spent. [s] itself must already fail; the result is [s] unchanged
    when no probe succeeds. At most [budget] probes (default 150) are
    attempted. *)
