open Paxi_benchmark

type outcome = {
  trial : int;
  seed : int;
  schedule : Schedule.t;
  verdict : Trial.verdict;
  shrunk : (Schedule.t * int) option;  (** (minimal schedule, probes) *)
}

type report = {
  protocol : string;
  root_seed : int;
  trials : int;
  max_faults : int;
  passed : int;
  failures : outcome list;
}

(* Each trial's seed hashes its own identity (protocol, root seed,
   index), never its rank in some work queue, so fanning the campaign
   across a pool of any size — or running it twice — yields the same
   schedules, the same verdicts, and the same shrunk repros. *)
let trial_seed ~protocol ~root index =
  Runner.derive_seed ~root (Hashtbl.hash (protocol, index))

let run_trial ?n ?read_ratio ?read_path ?relay_groups ?shards ?arrival ~skew
    ~protocol ~root ~max_faults ~shrink_budget index =
  let seed = trial_seed ~protocol ~root index in
  let schedule = Trial.generate ?n ~skew ~protocol ~seed ~max_faults () in
  let verdict =
    Trial.run ?n ?read_ratio ?read_path ?relay_groups ?shards ?arrival
      ~protocol ~seed schedule
  in
  let shrunk =
    if verdict.Trial.ok then None
    else
      Some
        (Shrink.shrink ~budget:shrink_budget
           ~still_fails:(fun candidate ->
             not
               (Trial.run ?n ?read_ratio ?read_path ?relay_groups ?shards
                  ?arrival ~protocol ~seed candidate)
                 .Trial.ok)
           schedule)
  in
  { trial = index; seed; schedule; verdict; shrunk }

let run ?pool ?(shrink_budget = 120) ?(max_faults = 4) ?n ?read_ratio
    ?read_path ?relay_groups ?shards ?arrival ?(skew = false) ~protocol
    ~trials ~seed () =
  (* shrinking happens inside the trial task, so a pool schedules whole
     trials and determinism needs nothing beyond per-trial seeds *)
  let outcomes =
    Paxi_exec.Parmap.map ?pool
      (run_trial ?n ?read_ratio ?read_path ?relay_groups ?shards ?arrival
         ~skew ~protocol ~root:seed ~max_faults ~shrink_budget)
      (List.init trials Fun.id)
  in
  let failures = List.filter (fun o -> not o.verdict.Trial.ok) outcomes in
  {
    protocol;
    root_seed = seed;
    trials;
    max_faults;
    passed = trials - List.length failures;
    failures;
  }

let repro_line ~protocol ~seed schedule =
  Printf.sprintf "bench/main.exe -- nemesis --protocol %s --seed %d --replay '%s'"
    protocol seed
    (Json.to_string (Schedule.to_json schedule))

let outcome_to_json o =
  let base =
    [
      ("trial", Json.Number (float_of_int o.trial));
      ("seed", Json.Number (float_of_int o.seed));
      ("schedule", Schedule.to_json o.schedule);
      ("ok", Json.Bool o.verdict.Trial.ok);
      ( "reasons",
        Json.List (List.map (fun r -> Json.String r) o.verdict.Trial.reasons) );
      ("completed", Json.Number (float_of_int o.verdict.Trial.completed));
      ("gave_up", Json.Number (float_of_int o.verdict.Trial.gave_up));
    ]
  in
  let shrunk =
    match o.shrunk with
    | None -> []
    | Some (s, probes) ->
        [
          ("shrunk", Schedule.to_json s);
          ("shrink_probes", Json.Number (float_of_int probes));
        ]
  in
  Json.Obj (base @ shrunk)

let to_json r =
  Json.Obj
    [
      ("protocol", Json.String r.protocol);
      ("root_seed", Json.Number (float_of_int r.root_seed));
      ("trials", Json.Number (float_of_int r.trials));
      ("max_faults", Json.Number (float_of_int r.max_faults));
      ("passed", Json.Number (float_of_int r.passed));
      ("failures", Json.List (List.map outcome_to_json r.failures));
    ]

let pp ppf r =
  Format.fprintf ppf "nemesis %s: %d/%d trials passed (root seed %d)@."
    r.protocol r.passed r.trials r.root_seed;
  List.iter
    (fun o ->
      let shrunk, probes =
        match o.shrunk with Some (s, p) -> (s, p) | None -> (o.schedule, 0)
      in
      Format.fprintf ppf
        "  FAIL trial %d (seed %d)@.    %s@.    shrunk (%d probes, %d fault%s): %s@.    repro: %s@."
        o.trial o.seed
        (String.concat "; " o.verdict.Trial.reasons)
        probes (List.length shrunk)
        (if List.length shrunk = 1 then "" else "s")
        (Schedule.to_string shrunk)
        (repro_line ~protocol:r.protocol ~seed:o.seed shrunk))
    r.failures
