(** Nemesis campaign: a batch of independent fault-schedule trials for
    one protocol, fanned across the shared domain pool, with failing
    schedules shrunk to one-line repros.

    Every trial's seed is derived from its identity (protocol, root
    seed, trial index) — never from scheduling order — so reports are
    byte-identical at any [PAXI_JOBS]. *)

type outcome = {
  trial : int;
  seed : int;  (** the derived per-trial seed; replays the trial *)
  schedule : Schedule.t;  (** as generated *)
  verdict : Trial.verdict;
  shrunk : (Schedule.t * int) option;
      (** failing trials only: minimized schedule and probe count *)
}

type report = {
  protocol : string;
  root_seed : int;
  trials : int;
  max_faults : int;
  passed : int;
  failures : outcome list;
}

val trial_seed : protocol:string -> root:int -> int -> int

val run :
  ?pool:Paxi_exec.Pool.t ->
  ?shrink_budget:int ->
  ?max_faults:int ->
  ?n:int ->
  ?read_ratio:float ->
  ?read_path:Config.read_path ->
  ?relay_groups:int ->
  ?shards:int ->
  ?arrival:Paxi_benchmark.Runner.arrival ->
  ?skew:bool ->
  protocol:string ->
  trials:int ->
  seed:int ->
  unit ->
  report
(** Run [trials] independent trials ([max_faults] defaults to 4).
    Shrinking runs inside each trial's task, so pooling schedules
    whole trials. [?n] overrides the profile's cluster size;
    [?read_ratio]/[?read_path] thread the read-path knobs into every
    trial's config; [?relay_groups] routes paxos/raft rounds through
    relay trees — the relay-crash campaign; [?skew] (default false)
    lets the generator draw clock-skew faults — with the read knobs,
    the adversarial read campaign. *)

val repro_line : protocol:string -> seed:int -> Schedule.t -> string
(** The exact CLI invocation that replays a (shrunk) failing trial. *)

val to_json : report -> Json.t
(** Deterministic report encoding; CI diffs this across [PAXI_JOBS]
    settings. *)

val pp : Format.formatter -> report -> unit
