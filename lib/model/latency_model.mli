(** End-to-end analytic latency/throughput curves (§3.3–3.4): the
    average round latency perceived by a client is

    {v Latency = Wq + ts + DL + DQ v}

    where Wq is the queue wait at the busiest node (M/D/1 by default,
    as selected in Fig. 4), ts the round service time, DL the
    client-to-leader RTT and DQ the quorum RTT ((Q-1)-th order
    statistic of follower RTTs — Monte-Carlo in LAN, the (Q-1)-th
    smallest fixed RTT in WAN). These curves regenerate Fig. 4, 8, 10
    and 12. *)

type protocol =
  | Paxos
  | Paxos_relay of { groups : int }
      (** Paxos behind relay/aggregation trees (DESIGN.md §12): leader
          service demand ∝ groups, quorum wait a nested two-hop order
          statistic ({!Order_stats.relay_quorum_rtt_lan}) *)
  | Fpaxos of { q2 : int }
  | Epaxos of { conflict : float }
  | Epaxos_adaptive of { conflict_lo : float; conflict_hi : float }
      (** conflict probability grows linearly with utilization, the
          paper's EPaxos (Conflict=[0.02, 0.70]) series in Fig. 10 *)
  | Wpaxos of { leaders : int; locality : float; fz : int }
  | Wankeeper of { leaders : int; locality : float }

val protocol_name : protocol -> string

type point = { throughput_rps : float; latency_ms : float }

(** {1 LAN} *)

type lan = { rtt_mu_ms : float; rtt_sigma_ms : float }

val default_lan : lan
(** The paper's measured intra-region RTT, N(0.4271, 0.0476) ms. *)

val relay_touch_ms : float
(** The relay's own per-round fan-out/aggregation service on the
    quorum path, calibrated against measured ["relay:aggregate"] spans
    at n = 25 (DESIGN.md §12). *)

val relay_hop_lan : lan:lan -> n:int -> groups:int -> rng:Rng.t -> float
(** Expected duration of one relay aggregation hop — first member
    delivery to combined-ack departure: the worst of the group's
    [s - 1] member RTTs plus {!relay_touch_ms}, where
    [s = ceil ((n - 1) / groups)]. [bench/main dissect --relay-groups]
    validates measured hop spans against this term. *)

val lan_max_throughput :
  protocol -> node:Service.node_params -> float
(** Saturation throughput (rounds/sec). *)

val sharded_max_throughput :
  protocol -> node:Service.node_params -> shards:int -> float
(** Aggregate saturation of K independent groups on disjoint machines:
    [K * lan_max_throughput] — the linear-scaling assumption the shard
    sweep measures against. Holds for balanced partitioning; a skewed
    key distribution saturates its hot shard first, so the measured
    aggregate falls below this line while per-shard imbalance rises. *)

type breakdown = {
  wq_ms : float;  (** queue wait at the busiest node *)
  service_ms : float;  (** leader round service time *)
  dl_ms : float;  (** client-to-leader network RTT *)
  dq_ms : float;  (** quorum RTT (order statistic) *)
  conflict_extra_ms : float;
      (** EPaxos second-phase penalty weighted by conflict rate *)
  durability_ms : float;
      (** fsync wait on the commit path when stable storage is armed
          ({!fsync_term_ms}); 0 on memory-only deployments *)
  total_ms : float;  (** sum of the components — [lan_point]'s latency *)
}
(** The Latency = Wq + ts + DL + DQ (+ Dfsync) decomposition of §3.3,
    kept as separate components so measured per-request traces can be
    compared term by term against the model ([bench/main dissect]). *)

val fsync_term_ms : Storage.config option -> float
(** Expected fsync wait one commit pays (DESIGN.md §14): acceptors
    fsync in parallel before acking, so the round absorbs the term
    once — [fsync_ms] under [Sync_every],
    [batch_window_ms / 2 + fsync_ms] under [Sync_batched] (a record
    lands uniformly inside the open group-commit window), and [0]
    under [Sync_none] or with storage off. [bench/main dissect
    --durable] gates the measured per-fsync device time against this
    term. *)

val lan_breakdown :
  ?queue:Queueing.kind ->
  ?durable:Storage.config ->
  protocol ->
  node:Service.node_params ->
  lan:lan ->
  rng:Rng.t ->
  lambda_rps:float ->
  breakdown option
(** [None] once the busiest node saturates. [?durable] adds the
    {!fsync_term_ms} durability term to the commit path. *)

(** {2 Read paths} (PR 7) *)

(** A fast-path read's analytic shape: [Local_read] (leader lease) and
    [Tail_read] (chain tail) are one client RTT plus the serving
    node's touch time with no quorum term; [Quorum_read] (ABD) adds
    two majority-RTT order-statistic rounds (query + write-back) and
    the coordinator's two broadcast serializations. *)
type read_kind = Local_read | Quorum_read | Tail_read

val read_kind_name : read_kind -> string

val read_breakdown :
  read_kind -> node:Service.node_params -> lan:lan -> rng:Rng.t -> breakdown
(** The terms of one fast-path read, in the same {!breakdown} shape as
    the write path so [bench/main dissect] can validate measured
    local-read/quorum-read latencies against the model per-term.
    [wq_ms] is 0 by construction (reads bypass the slot log and its
    queueing story); [rng] only feeds the quorum-RTT Monte Carlo, so
    local/tail breakdowns are deterministic. *)

val lan_point :
  ?queue:Queueing.kind ->
  protocol ->
  node:Service.node_params ->
  lan:lan ->
  rng:Rng.t ->
  lambda_rps:float ->
  point option
(** [None] once the busiest node saturates. *)

val lan_curve :
  ?queue:Queueing.kind ->
  protocol ->
  node:Service.node_params ->
  lan:lan ->
  rng:Rng.t ->
  lambdas:float list ->
  point list

(** {1 WAN} *)

type wan = {
  regions : Region.t list;  (** one replica (or zone leader) each *)
  client_mix : (Region.t * float) list;
      (** where requests originate, weights summing to 1 *)
  rtt_ms : Region.t -> Region.t -> float;
}

val default_wan : wan
(** The paper's five AWS regions with a uniform client mix and the
    calibrated RTT matrix. *)

val wan_point :
  ?queue:Queueing.kind ->
  protocol ->
  node:Service.node_params ->
  wan:wan ->
  leader_region:Region.t ->
  lambda_rps:float ->
  point option
(** Aggregate arrival rate [lambda_rps] across all regions;
    [leader_region] places the single leader (ignored by multi-leader
    protocols, which put one leader per region). *)

val wan_curve :
  ?queue:Queueing.kind ->
  protocol ->
  node:Service.node_params ->
  wan:wan ->
  leader_region:Region.t ->
  lambdas:float list ->
  point list
