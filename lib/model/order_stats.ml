let kth_of_n dist rng ~k ~n ~trials =
  assert (k >= 1 && k <= n && trials > 0);
  let sample = Array.make n 0.0 in
  let acc = ref 0.0 in
  for _ = 1 to trials do
    for i = 0 to n - 1 do
      sample.(i) <- Dist.sample dist rng
    done;
    Array.sort Float.compare sample;
    acc := !acc +. sample.(k - 1)
  done;
  !acc /. float_of_int trials

let kth_of_samples rtts ~k =
  let n = Array.length rtts in
  assert (k >= 1 && k <= n);
  let sorted = Array.copy rtts in
  Array.sort Float.compare sorted;
  sorted.(k - 1)

let quorum_rtt_lan ~mu ~sigma ~quorum ~n rng =
  if quorum <= 1 then 0.0
  else
    kth_of_n (Dist.normal_pos ~mu ~sigma) rng ~k:(quorum - 1) ~n:(n - 1)
      ~trials:2000

let quorum_rtt_wan ~rtts ~quorum =
  if quorum <= 1 then 0.0 else kth_of_samples rtts ~k:(quorum - 1)

(* Two-hop quorum wait under relay trees (DESIGN.md §12): group g's
   combined ack lands at [leader<->relay RTT + max of the (s_g - 1)
   member RTTs + touch] — nested order statistics, since the relay
   holds its bitmap until the slowest member answers. The leader's
   majority completes when the cumulative membership of the
   earliest-arriving groups reaches majority - 1 (its own vote is
   free), so we sort the per-group arrival times and accumulate group
   sizes. Partial flushes are a straggler-recovery path and priced out
   of the common case. *)
let relay_quorum_rtt_lan ~mu ~sigma ~n ~groups ~touch_ms rng =
  let majority = (n / 2) + 1 in
  let need = majority - 1 in
  if need <= 0 || groups <= 0 then 0.0
  else begin
    let sizes = Array.make groups ((n - 1) / groups) in
    for i = 0 to ((n - 1) mod groups) - 1 do
      sizes.(i) <- sizes.(i) + 1
    done;
    let dist = Dist.normal_pos ~mu ~sigma in
    let arrivals = Array.make groups 0.0 in
    let idx = Array.make groups 0 in
    let trials = 2000 in
    let acc = ref 0.0 in
    for _ = 1 to trials do
      for g = 0 to groups - 1 do
        let worst = ref 0.0 in
        for _ = 2 to sizes.(g) do
          let m = Dist.sample dist rng in
          if m > !worst then worst := m
        done;
        arrivals.(g) <- Dist.sample dist rng +. !worst +. touch_ms;
        idx.(g) <- g
      done;
      Array.sort
        (fun a b -> Float.compare arrivals.(a) arrivals.(b))
        idx;
      let got = ref 0 and gi = ref 0 and tq = ref 0.0 in
      while !got < need && !gi < groups do
        let g = idx.(!gi) in
        got := !got + sizes.(g);
        tq := arrivals.(g);
        incr gi
      done;
      acc := !acc +. !tq
    done;
    !acc /. float_of_int trials
  end
