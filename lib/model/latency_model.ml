type protocol =
  | Paxos
  | Paxos_relay of { groups : int }
  | Fpaxos of { q2 : int }
  | Epaxos of { conflict : float }
  | Epaxos_adaptive of { conflict_lo : float; conflict_hi : float }
  | Wpaxos of { leaders : int; locality : float; fz : int }
  | Wankeeper of { leaders : int; locality : float }

let protocol_name = function
  | Paxos -> "paxos"
  | Paxos_relay _ -> "paxos"
  | Fpaxos _ -> "fpaxos"
  | Epaxos _ | Epaxos_adaptive _ -> "epaxos"
  | Wpaxos _ -> "wpaxos"
  | Wankeeper _ -> "wankeeper"

(* The relay's own fan-out/aggregation service on the quorum path
   (deserialize the wrapped round, serialize the fan, fold the acks,
   serialize the combined ack) — calibrated against measured
   [relay:aggregate] spans at n = 25 (bench/main dissect). *)
let relay_touch_ms = 0.075

type point = { throughput_rps : float; latency_ms : float }

type lan = { rtt_mu_ms : float; rtt_sigma_ms : float }

let default_lan = { rtt_mu_ms = 0.4271; rtt_sigma_ms = 0.0476 }

(* One relay aggregation hop: the relay's own fan/fold service plus
   the worst of its (s - 1) member RTTs — the term [bench/main dissect
   --relay-groups] compares against measured [relay:aggregate]
   spans. *)
let relay_hop_lan ~lan ~n ~groups ~rng =
  let s = (n - 2 + groups) / groups in
  let spread =
    if s <= 1 then 0.0
    else
      Order_stats.kth_of_n
        (Dist.normal_pos ~mu:lan.rtt_mu_ms ~sigma:lan.rtt_sigma_ms)
        rng ~k:(s - 1) ~n:(s - 1) ~trials:2000
  in
  spread +. relay_touch_ms

let epaxos_penalty = 1.8

let round_cost ~node = function
  | Paxos -> Service.paxos node
  | Paxos_relay { groups } -> Service.paxos_relay node ~groups
  | Fpaxos { q2 } -> Service.fpaxos node ~q2
  | Epaxos { conflict } -> Service.epaxos node ~penalty:epaxos_penalty ~conflict
  | Epaxos_adaptive { conflict_lo; _ } ->
      Service.epaxos node ~penalty:epaxos_penalty ~conflict:conflict_lo
  | Wpaxos { leaders; _ } -> Service.wpaxos node ~leaders
  | Wankeeper { leaders; locality } -> Service.wankeeper node ~leaders ~locality

(* For adaptive-conflict EPaxos the conflict probability (and with it
   the service cost) grows with utilization, so saturation is the
   fixed point of lambda * mean_service(c(lambda)) = 1; a few
   iterations converge. *)
let effective_conflict proto ~node ~lambda_rps =
  match proto with
  | Epaxos { conflict } -> conflict
  | Epaxos_adaptive { conflict_lo; conflict_hi } ->
      let rec fix c iter =
        let rc = Service.epaxos node ~penalty:epaxos_penalty ~conflict:c in
        let cap = Service.max_throughput_rps rc in
        let util = Float.min 1.0 (lambda_rps /. cap) in
        let c' = conflict_lo +. ((conflict_hi -. conflict_lo) *. util) in
        if iter = 0 || Float.abs (c' -. c) < 1e-4 then c' else fix c' (iter - 1)
      in
      fix conflict_lo 20
  | _ -> 0.0

let resolved_cost proto ~node ~lambda_rps =
  match proto with
  | Epaxos_adaptive _ ->
      let c = effective_conflict proto ~node ~lambda_rps in
      Service.epaxos node ~penalty:epaxos_penalty ~conflict:c
  | _ -> round_cost ~node proto

let lan_max_throughput proto ~node =
  match proto with
  | Epaxos_adaptive _ ->
      (* capacity at the high-conflict end *)
      let rc =
        resolved_cost proto ~node ~lambda_rps:1e12
      in
      Service.max_throughput_rps rc
  | _ -> Service.max_throughput_rps (round_cost ~node proto)

(* Sharded deployments run K independent groups on disjoint machines,
   so the analytic aggregate capacity is exactly K times one group's:
   the independence assumption the shard sweep validates (and that a
   skewed key distribution breaks — a hot shard saturates first while
   the others idle, capping the useful aggregate below K x). *)
let sharded_max_throughput proto ~node ~shards =
  assert (shards >= 1);
  float_of_int shards *. lan_max_throughput proto ~node

(* Queue wait at the busiest node for aggregate arrival rate lambda,
   using the role-mixed service distribution. *)
let queue_wait_ms ?(queue = Queueing.Md1) rc ~lambda_rps =
  let mean_ms = Service.mean_service_ms rc in
  if mean_ms <= 0.0 then Some 0.0
  else begin
    (* node-level arrival rate: rounds it leads plus rounds it
       follows *)
    let node_lambda = lambda_rps *. (rc.Service.lead_share +. rc.Service.follow_share) in
    let mu = 1000.0 /. mean_ms in
    if node_lambda >= mu then None
    else begin
      let kind =
        match queue with
        | Queueing.Mg1 _ -> Queueing.Mg1 { service_cv2 = Service.service_cv2 rc }
        | k -> k
      in
      Some (Queueing.wait_time kind ~lambda:node_lambda ~mu *. 1000.0)
    end
  end

(* ------------------------------- LAN ------------------------------ *)

let lan_network_delays proto ~node ~lan ~rng =
  let n = node.Service.n in
  let mu = lan.rtt_mu_ms and sigma = lan.rtt_sigma_ms in
  let quorum_rtt q = Order_stats.quorum_rtt_lan ~mu ~sigma ~quorum:q ~n rng in
  let majority = (n / 2) + 1 in
  match proto with
  | Paxos -> (mu, quorum_rtt majority, 0.0)
  | Paxos_relay { groups } ->
      ( mu,
        Order_stats.relay_quorum_rtt_lan ~mu ~sigma ~n ~groups
          ~touch_ms:relay_touch_ms rng,
        0.0 )
  | Fpaxos { q2 } -> (mu, quorum_rtt q2, 0.0)
  | Epaxos _ | Epaxos_adaptive _ ->
      (* client talks to its local (nearest) replica *)
      let fast = Paxi_quorum.Quorum.fast_threshold n in
      (mu, quorum_rtt fast, quorum_rtt majority)
  | Wpaxos { leaders; _ } | Wankeeper { leaders; _ } ->
      let zone = Stdlib.max 1 (n / leaders) in
      let zq = (zone / 2) + 1 in
      (* in-zone quorum out of the zone's members *)
      let dq =
        if zq <= 1 then 0.0
        else
          Order_stats.kth_of_n
            (Dist.normal_pos ~mu ~sigma)
            rng ~k:(zq - 1)
            ~n:(Stdlib.max 1 (zone - 1))
            ~trials:2000
      in
      (mu, dq, 0.0)

type breakdown = {
  wq_ms : float;
  service_ms : float;
  dl_ms : float;
  dq_ms : float;
  conflict_extra_ms : float;
  durability_ms : float;
  total_ms : float;
}

(* Expected fsync wait a commit pays when stable storage is armed.
   Acceptors fsync in parallel before acking, so the term enters the
   round once, not per quorum member: one device service time under
   Sync_every, plus the expected wait for the open group-commit window
   to close under Sync_batched (a record lands uniformly inside the
   window, so waits [batch_window_ms / 2] on average before the single
   shared fsync starts). Sync_none keeps durability off the critical
   path entirely. *)
let fsync_term_ms = function
  | None -> 0.0
  | Some (c : Storage.config) -> (
      match c.Storage.sync_mode with
      | Storage.Sync_none -> 0.0
      | Storage.Sync_every -> c.Storage.fsync_ms
      | Storage.Sync_batched ->
          (c.Storage.batch_window_ms /. 2.0) +. c.Storage.fsync_ms)

let lan_breakdown ?queue ?durable proto ~node ~lan ~rng ~lambda_rps =
  let rc = resolved_cost proto ~node ~lambda_rps in
  match queue_wait_ms ?queue rc ~lambda_rps with
  | None -> None
  | Some wq ->
      let dl, dq, dq_extra = lan_network_delays proto ~node ~lan ~rng in
      let c = effective_conflict proto ~node ~lambda_rps in
      let conflict_extra_ms = c *. dq_extra in
      let durability_ms = fsync_term_ms durable in
      Some
        {
          wq_ms = wq;
          service_ms = rc.Service.lead_ms;
          dl_ms = dl;
          dq_ms = dq;
          conflict_extra_ms;
          durability_ms;
          total_ms =
            wq +. rc.Service.lead_ms +. dl +. dq +. conflict_extra_ms
            +. durability_ms;
        }

(* ----------------------------- Reads ------------------------------ *)

type read_kind = Local_read | Quorum_read | Tail_read

let read_kind_name = function
  | Local_read -> "local_read"
  | Quorum_read -> "quorum_read"
  | Tail_read -> "tail_read"

(* A fast-path read never enters the slot log, so its model drops the
   write path's quorum terms:

   - local (lease) and tail reads are one client RTT plus the serving
     node touching the request (deserialize, store peek, serialize),
     with no quorum wait at all;
   - an ABD quorum read pays two majority round-trips (query +
     write-back) on top of the client RTT, and the coordinator
     serializes two broadcasts and absorbs two reply waves.

   Wq is left 0: the read sweeps run far from saturation, and the
   measured counterpart lands in the same band without a queue term —
   queue effects on reads are a write-arrival story the write-path
   model already prices. *)
let read_breakdown kind ~node ~lan ~rng =
  let mu = lan.rtt_mu_ms and sigma = lan.rtt_sigma_ms in
  let nic = Service.nic_ms node in
  let touch = node.Service.t_in_ms +. node.Service.t_out_ms +. (2.0 *. nic) in
  match kind with
  | Local_read | Tail_read ->
      {
        wq_ms = 0.0;
        service_ms = touch;
        dl_ms = mu;
        dq_ms = 0.0;
        conflict_extra_ms = 0.0;
        durability_ms = 0.0;
        total_ms = touch +. mu;
      }
  | Quorum_read ->
      let n = node.Service.n in
      let majority = (n / 2) + 1 in
      let dq =
        2.0 *. Order_stats.quorum_rtt_lan ~mu ~sigma ~quorum:majority ~n rng
      in
      let round =
        node.Service.t_out_ms
        +. (float_of_int (n - 1) *. node.Service.t_in_ms)
        +. (float_of_int n *. nic)
      in
      let service = touch +. (2.0 *. round) in
      {
        wq_ms = 0.0;
        service_ms = service;
        dl_ms = mu;
        dq_ms = dq;
        conflict_extra_ms = 0.0;
        durability_ms = 0.0;
        total_ms = service +. mu +. dq;
      }

let lan_point ?queue proto ~node ~lan ~rng ~lambda_rps =
  match lan_breakdown ?queue proto ~node ~lan ~rng ~lambda_rps with
  | None -> None
  | Some b -> Some { throughput_rps = lambda_rps; latency_ms = b.total_ms }

let lan_curve ?queue proto ~node ~lan ~rng ~lambdas =
  List.filter_map
    (fun lambda_rps -> lan_point ?queue proto ~node ~lan ~rng ~lambda_rps)
    lambdas

(* ------------------------------- WAN ------------------------------ *)

type wan = {
  regions : Region.t list;
  client_mix : (Region.t * float) list;
  rtt_ms : Region.t -> Region.t -> float;
}

let default_wan =
  {
    regions = Region.aws_five;
    client_mix = List.map (fun r -> (r, 0.2)) Region.aws_five;
    rtt_ms = Topology.aws_rtt_ms;
  }

let avg_over_mix wan f =
  List.fold_left (fun acc (r, w) -> acc +. (w *. f r)) 0.0 wan.client_mix

(* RTTs from [region] to every other replica region. *)
let rtts_from wan region =
  wan.regions
  |> List.filter (fun r -> not (Region.equal r region))
  |> List.map (fun r -> wan.rtt_ms region r)
  |> Array.of_list

let wan_quorum_rtt wan region ~quorum =
  Order_stats.quorum_rtt_wan ~rtts:(rtts_from wan region) ~quorum

let wan_network_delays proto ~wan ~leader_region =
  let n = List.length wan.regions in
  let majority = (n / 2) + 1 in
  match proto with
  | Paxos | Paxos_relay _ ->
      (* relay trees are a LAN big-n story; over a handful of regions
         the direct quorum term is the right WAN approximation *)
      let dl = avg_over_mix wan (fun r -> wan.rtt_ms r leader_region) in
      (dl, wan_quorum_rtt wan leader_region ~quorum:majority, 0.0)
  | Fpaxos { q2 } ->
      let dl = avg_over_mix wan (fun r -> wan.rtt_ms r leader_region) in
      (dl, wan_quorum_rtt wan leader_region ~quorum:q2, 0.0)
  | Epaxos _ | Epaxos_adaptive _ ->
      let fast = Paxi_quorum.Quorum.fast_threshold n in
      let dq = avg_over_mix wan (fun r -> wan_quorum_rtt wan r ~quorum:fast) in
      let dq_extra =
        avg_over_mix wan (fun r -> wan_quorum_rtt wan r ~quorum:majority)
      in
      (* the client's local replica leads; DL is intra-region *)
      (Topology.aws_rtt_ms leader_region leader_region, dq, dq_extra)
  | Wpaxos { locality; fz; _ } ->
      (* fz = 0 commits in-region; fz >= 1 needs the nearest zone(s) *)
      let local = Topology.aws_rtt_ms leader_region leader_region in
      let dq =
        if fz = 0 then local
        else
          avg_over_mix wan (fun r ->
              Order_stats.quorum_rtt_wan ~rtts:(rtts_from wan r) ~quorum:(fz + 1))
      in
      let dl_remote =
        avg_over_mix wan (fun r ->
            (* average distance to the other regions' leaders *)
            let others = rtts_from wan r in
            if Array.length others = 0 then 0.0
            else
              Array.fold_left ( +. ) 0.0 others
              /. float_of_int (Array.length others))
      in
      (* Formula 7 folds locality into the DL term *)
      let dl = (1.0 -. locality) *. dl_remote in
      (dl +. ((1.0 -. locality) *. local), dq *. 1.0, 0.0)
  | Wankeeper { locality; _ } ->
      let local = Topology.aws_rtt_ms leader_region leader_region in
      let dl_master =
        avg_over_mix wan (fun r ->
            let others = rtts_from wan r in
            if Array.length others = 0 then 0.0
            else
              Array.fold_left ( +. ) 0.0 others
              /. float_of_int (Array.length others))
      in
      ((1.0 -. locality) *. dl_master, local, 0.0)

let wan_point ?queue proto ~node ~wan ~leader_region ~lambda_rps =
  let rc = resolved_cost proto ~node ~lambda_rps in
  match queue_wait_ms ?queue rc ~lambda_rps with
  | None -> None
  | Some wq ->
      let dl, dq, dq_extra = wan_network_delays proto ~wan ~leader_region in
      let c = effective_conflict proto ~node ~lambda_rps in
      let latency = wq +. rc.Service.lead_ms +. dl +. dq +. (c *. dq_extra) in
      Some { throughput_rps = lambda_rps; latency_ms = latency }

let wan_curve ?queue proto ~node ~wan ~leader_region ~lambdas =
  List.filter_map
    (fun lambda_rps ->
      wan_point ?queue proto ~node ~wan ~leader_region ~lambda_rps)
    lambdas
