type node_params = {
  n : int;
  t_in_ms : float;
  t_out_ms : float;
  msg_size_bytes : int;
  bandwidth_mbps : float;
}

let default_node ~n =
  {
    n;
    t_in_ms = 0.012;
    t_out_ms = 0.008;
    msg_size_bytes = 128;
    bandwidth_mbps = 10_000.0;
  }

let nic_ms p = float_of_int p.msg_size_bytes /. (p.bandwidth_mbps *. 125.0)

type round_cost = {
  lead_ms : float;
  follow_ms : float;
  lead_share : float;
  follow_share : float;
}

let fi = float_of_int

(* Leader of a classic Paxos round: client request in, one broadcast
   serialization, N-1 accepted replies in, client reply out; NIC moves
   2N messages (§3.3). *)
let paxos p =
  let lead_cpu = (2.0 *. p.t_out_ms) +. (fi p.n *. p.t_in_ms) in
  let lead_nic = 2.0 *. fi p.n *. nic_ms p in
  { lead_ms = lead_cpu +. lead_nic; follow_ms = 0.0; lead_share = 1.0; follow_share = 0.0 }

let fpaxos p ~q2:_ = paxos p

(* Relay-tree round (Config.relay_groups = r; DESIGN.md §12): the
   leader serializes one multicast to the r relays and absorbs r
   aggregated acks, so its demand is ∝ r, not N. Each relay fans the
   round to its group of s = ceil((N-1)/r) members (itself included)
   and absorbs s-1 member acks. The system saturates at whichever of
   the two hot roles is busier — at the r the scale sweeps pick they
   stay close, which is the point of the rotation. *)
let paxos_relay p ~groups =
  let r = fi groups in
  let lead =
    (2.0 *. p.t_out_ms) +. ((r +. 1.0) *. p.t_in_ms)
    +. (2.0 *. (r +. 1.0) *. nic_ms p)
  in
  let s = fi ((p.n - 2 + groups) / groups) in
  let relay =
    (2.0 *. p.t_out_ms) +. (s *. p.t_in_ms) +. (2.0 *. s *. nic_ms p)
  in
  {
    lead_ms = Float.max lead relay;
    follow_ms = relay;
    lead_share = 1.0;
    follow_share = 0.0;
  }

(* Batched leader round of b commands: b client requests in, ONE
   phase-2 broadcast serialization (the batch is one message), N-1
   batched acks in, b client replies out. Per command that is the
   s(b) = t_poll + b*t_op shape: the (N-1)*t_in + t_out round overhead
   amortizes across the batch while per-command work (client in/out,
   NIC bytes) stays linear. Reduces to [paxos] at b = 1. *)
let paxos_batched p ~batch =
  let b = fi (Stdlib.max 1 batch) in
  let n = fi p.n in
  let lead_cpu =
    (((b +. n -. 1.0) *. p.t_in_ms) +. ((b +. 1.0) *. p.t_out_ms)) /. b
  in
  let lead_nic = 2.0 *. n *. nic_ms p in
  {
    lead_ms = lead_cpu +. lead_nic;
    follow_ms = 0.0;
    lead_share = 1.0;
    follow_share = 0.0;
  }

let epaxos p ~penalty ~conflict =
  let ti = p.t_in_ms *. penalty and to_ = p.t_out_ms *. penalty in
  let n = fi p.n in
  let fastq = fi (Paxi_quorum.Quorum.fast_threshold p.n) in
  let maj = fi ((p.n / 2) + 1) in
  (* fast path: client in, pre-accept broadcast, fastq-1 replies,
     commit broadcast, client reply; conflicts add an accept broadcast
     and maj-1 replies *)
  let lead_cpu =
    (3.0 *. to_) +. ((1.0 +. (fastq -. 1.0)) *. ti)
    +. (conflict *. (to_ +. ((maj -. 1.0) *. ti)))
  in
  let lead_nic = (2.0 +. conflict) *. n *. nic_ms p in
  (* follower: pre-accept in, reply out, commit in; conflicts add
     accept in / reply out *)
  let follow_cpu = (2.0 *. ti) +. to_ +. (conflict *. (ti +. to_)) in
  let follow_nic = (3.0 +. (2.0 *. conflict)) *. nic_ms p in
  {
    lead_ms = lead_cpu +. lead_nic;
    follow_ms = follow_cpu +. follow_nic;
    lead_share = 1.0 /. n;
    follow_share = (n -. 1.0) /. n;
  }

let wpaxos p ~leaders =
  let l = fi leaders in
  let n = fi p.n in
  (* leader: client in, accept broadcast (full replication, §5), acks
     from every follower (only the in-zone ones count for the quorum,
     but all must clear the queue), commit broadcast, client reply —
     this residual message load is why WPaxos does not scale linearly
     with L (§5.2) *)
  (* the +1 incoming message is the forwarded request: clients reach
     the object's leader through their nearest replica *)
  let lead_cpu = (3.0 *. p.t_out_ms) +. ((n +. 1.0) *. p.t_in_ms) in
  let lead_nic = 3.0 *. n *. nic_ms p in
  (* another leader's round: accept in, ack out, commit in *)
  let follow_cpu = (2.0 *. p.t_in_ms) +. p.t_out_ms in
  let follow_nic = 3.0 *. nic_ms p in
  {
    lead_ms = lead_cpu +. lead_nic;
    follow_ms = follow_cpu +. follow_nic;
    lead_share = 1.0 /. l;
    follow_share = (l -. 1.0) /. l;
  }

let wankeeper p ~leaders ~locality =
  let l = fi leaders in
  let zone = fi (Stdlib.max 1 (p.n / leaders)) in
  (* Replication is confined to the zone group, so leaders do not see
     other zones' rounds at all — the hierarchy's whole point (§5.2).
     The busiest node is the master: it executes the share of requests
     whose tokens it retains (non-local accesses) on top of its own
     zone's local traffic. *)
  let local_cost =
    (3.0 *. p.t_out_ms) +. (zone *. p.t_in_ms) +. (3.0 *. zone *. nic_ms p)
  in
  let master_exec_cost = local_cost +. p.t_in_ms +. nic_ms p (* forwarded request *) in
  let master_per_request =
    ((1.0 -. locality) *. master_exec_cost) +. (locality /. l *. local_cost)
  in
  { lead_ms = master_per_request; follow_ms = 0.0; lead_share = 1.0; follow_share = 0.0 }

let mean_service_ms rc =
  (rc.lead_share *. rc.lead_ms) +. (rc.follow_share *. rc.follow_ms)

let service_cv2 rc =
  let mean = mean_service_ms rc in
  if mean <= 0.0 then 0.0
  else begin
    let second =
      (rc.lead_share *. rc.lead_ms *. rc.lead_ms)
      +. (rc.follow_share *. rc.follow_ms *. rc.follow_ms)
    in
    Float.max 0.0 ((second /. (mean *. mean)) -. 1.0)
  end

let max_throughput_rps rc =
  let mean = mean_service_ms rc in
  if mean <= 0.0 then infinity else 1000.0 /. mean
