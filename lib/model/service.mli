(** Per-round service-time accounting (§3.3).

    A round's service time at a node is CPU plus NIC work:
    [ts = t_cpu + t_nic] where for a Paxos leader
    [t_cpu = 2*t_out + N*t_in] (client request in, one broadcast
    serialization, N-1 follower replies in, one client reply out) and
    [t_nic = 2*N*s_m/b]. Maximum throughput is [1/ts] (§3.3).

    The multi-leader and leaderless variants split a node's work into
    the rounds it leads and the rounds it follows; both appear here so
    the latency model can mix them by arrival share. All times in
    milliseconds. *)

type node_params = {
  n : int;  (** cluster size *)
  t_in_ms : float;
  t_out_ms : float;
  msg_size_bytes : int;
  bandwidth_mbps : float;
}

val default_node : n:int -> node_params
(** Calibrated to the same m5.large-class defaults as {!Config}. *)

val nic_ms : node_params -> float
(** NIC transmission time of one message. *)

(** Work split of one protocol round at a node, by role. *)
type round_cost = {
  lead_ms : float;  (** service when this node leads the round *)
  follow_ms : float;  (** service when it only follows *)
  lead_share : float;  (** fraction of rounds this node leads *)
  follow_share : float;  (** fraction of rounds it follows *)
}

val paxos : node_params -> round_cost
(** Single stable leader; the busiest node leads every round
    (N+2 messages — the bottleneck of §5.2). *)

val fpaxos : node_params -> q2:int -> round_cost
(** Same as Paxos — quorum size changes latency, not leader message
    count (the leader still broadcasts to all). With [thrifty] the
    leader processes [q2+2] messages instead. *)

val paxos_relay : node_params -> groups:int -> round_cost
(** Relay trees with [groups] = r rotation groups (DESIGN.md §12):
    the leader touches r+2 messages per round instead of N+1, each
    relay ceil((N-1)/r)+1. [lead_ms] is the busiest of the two roles
    (that node gates saturation); [follow_ms] reports the relay's own
    cost. Reduces to roughly {!paxos} at r = N-1. *)

val paxos_batched : node_params -> batch:int -> round_cost
(** Leader batching at batch size [b]: one phase-2 broadcast and one
    ack per follower cover [b] commands, so per-command leader CPU is
    [((b + N - 1)*t_in + (b + 1)*t_out) / b] — the [s(b) = t_poll +
    b*t_op] amortization with the round's fixed overhead spread over
    the batch. NIC time per command is unchanged (the batched message
    carries [b] commands' bytes). Equals {!paxos} at [batch = 1]. *)

val epaxos : node_params -> penalty:float -> conflict:float -> round_cost
(** Every node leads 1/N of rounds; [penalty] multiplies CPU costs for
    dependency bookkeeping; conflicting rounds add an accept phase. *)

val wpaxos : node_params -> leaders:int -> round_cost
(** One leader per zone, phase-2 in-zone, full replication of accepts
    plus an explicit commit. *)

val wankeeper : node_params -> leaders:int -> locality:float -> round_cost
(** Hierarchical: zone groups replicate only within the zone, so
    leaders never process other zones' rounds; the master executes the
    non-local share [(1 - locality)] of requests itself. *)

val mean_service_ms : round_cost -> float
(** Average service time per round at the busiest node, weighting by
    role shares — the reciprocal of the protocol's capacity. *)

val service_cv2 : round_cost -> float
(** Squared coefficient of variation of the two-point service mix,
    for the M/G/1 wait-time formula. *)

val max_throughput_rps : round_cost -> float
(** Saturation throughput (rounds/second) of the whole system: the
    busiest node saturates when [lambda * mean_service = 1]. *)
