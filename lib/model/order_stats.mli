(** k-order statistics by Monte-Carlo approximation (§3.3): the
    expected RTT of the reply that completes a quorum is the
    (Q-1)-th order statistic of the follower RTT distribution. *)

val kth_of_n : Dist.t -> Rng.t -> k:int -> n:int -> trials:int -> float
(** Expected value of the [k]-th smallest of [n] iid samples
    (1-indexed; [k <= n]). *)

val kth_of_samples : float array -> k:int -> float
(** Deterministic variant for WAN: the [k]-th smallest of fixed
    per-follower RTTs (used when followers are at known distances). *)

val quorum_rtt_lan :
  mu:float -> sigma:float -> quorum:int -> n:int -> Rng.t -> float
(** Expected RTT for the [(quorum-1)]-th follower reply out of [n-1]
    followers whose RTTs are Normal([mu], [sigma]); a self-voting
    leader needs [quorum - 1] replies. Returns 0 for [quorum <= 1]. *)

val quorum_rtt_wan : rtts:float array -> quorum:int -> float
(** WAN version over the fixed RTTs from the leader to each other
    node: the [(quorum-1)]-th smallest (§3.3). *)

val relay_quorum_rtt_lan :
  mu:float ->
  sigma:float ->
  n:int ->
  groups:int ->
  touch_ms:float ->
  Rng.t ->
  float
(** Expected majority-completion wait with relay trees (DESIGN.md
    §12): nested order statistics where group g's aggregated ack
    arrives at [RTT(leader,relay) + max of (s_g - 1) member RTTs +
    touch_ms] and the leader's majority completes once the cumulative
    size of the earliest groups reaches majority - 1. [touch_ms] is
    the relay's own per-round fan-out/aggregation service. *)
