(** Per-run latency-dissection collector (paper §3, Fig. 5–8).

    A trace attributes each request's end-to-end latency to the
    telescoping phases of its round:

    {v
    submit ──A──▸ arrival ──Bw──▸ start ──Bs──▸ handled ──G1──▸ proposed
           ──C──▸ quorum ──G2──▸ reply sent ──E──▸ reply delivered
    v}

    - [net_in] (A): client→ingress one-way network delay;
    - [wait_in] (Bw): queueing wait of the request in the ingress
      replica's processing queue — the measured counterpart of the
      model's M/D/1 [Wq];
    - [service_in] (Bs): the request's own deserialize+handle
      occupancy at the ingress queue;
    - [propose_gap] (G1): handled→proposed (forwarding, batching
      delay; 0 when the ingress replica proposes immediately);
    - [quorum_wait] (C): proposed→quorum-satisfied — the measured
      counterpart of the order-statistic [DQ];
    - [exec_reply] (G2): quorum→reply-serialized (execution and the
      reply's outgoing occupancy);
    - [net_out] (E): reply network delay back to the client.

    The phases are exact: A+Bw+Bs+G1+C+G2+E = end-to-end by
    construction. When a protocol does not report propose/quorum
    events, G1+C+G2 collapse into the single [server_residency]
    component (handled→reply-sent).

    Every hook only reads virtual-time stamps the simulator already
    computed — a trace draws no randomness and schedules no events, so
    enabling it cannot perturb a run (pinned in [test_hotpath]). All
    hooks are O(1) no-ops when the trace is disabled.

    The tracing-on hot path is (near-)allocation-free: in-flight
    request records are recycled on a free list and spans are stored
    as parallel scalar arrays — span names (and their [Span.t]
    wrappers) are only materialized at {!to_chrome_json} export. *)

type t

val pooling : bool ref
(** Escape hatch for the request-record free list, defaulting to
    [true] unless [PAXI_NO_POOLING=1] is set. Statistics are identical
    either way (pinned in [test_hotpath]). *)

val create : ?window_ms:float -> ?max_spans:int -> enabled:bool -> unit -> t
(** [window_ms] (default 100) sizes the throughput/latency time-series
    buckets; [max_spans] (default 200_000) caps retained Chrome-trace
    spans ([dropped_spans] counts the overflow). *)

val enabled : t -> bool

val set_window : t -> from_ms:float -> until_ms:float -> unit
(** Measurement window: component statistics and per-node accumulators
    only admit requests submitted at or after [from_ms] and completed
    at or before [until_ms] — the benchmark runner sets this to its
    post-warmup window so warmup transients never pollute the
    dissection. Spans and the time series keep the whole run. *)

val window : t -> float * float

(** {2 Hooks} — called by the cluster engine and transport observer. *)

val on_submit :
  t -> client:int -> cmd_id:int -> is_read:bool -> now_ms:float -> unit
(** A client handed a command to the cluster. Re-submissions of the
    same (client, cmd_id) — client retries — keep the original
    timestamps, matching the runner's latency accounting. [is_read]
    routes the request's end-to-end sample into {!read_e2e} or
    {!write_e2e}. *)

val on_fast_read : t -> unit
(** A read was served off the fast path (lease / ABD quorum / chain
    tail) — it consumes no slot, so [on_propose] never fires for it;
    this counter is how a dissection knows reads bypassed the log. *)

val on_relay_hop : t -> start_ms:float -> end_ms:float -> unit
(** A relay (Config.relay_groups > 0) finished aggregating one round's
    group acks: [start_ms] is when the wrapped round reached the relay,
    [end_ms] when the combined bitmap ack left it. Feeds {!relay_hops}
    / {!relay_hop_ms} and records a ["relay:aggregate"] span. *)

val on_request_arrival :
  t ->
  client:int ->
  cmd_id:int ->
  arrival_ms:float ->
  wait_ms:float ->
  service_ms:float ->
  ready_ms:float ->
  unit
(** The request reached a replica's processing queue. Only the first
    arrival counts as ingress; a forwarded copy lands in [propose_gap]. *)

val on_propose : t -> slot:int -> client:int -> cmd_id:int -> now_ms:float -> unit
(** A leader assigned the command a slot and started its quorum round. *)

val on_quorum : t -> slot:int -> now_ms:float -> unit
(** The round for [slot] reached its quorum. *)

val on_reply : t -> client:int -> cmd_id:int -> sent_ms:float -> ready_ms:float -> unit
(** The reply was delivered: closes the request, records every phase
    (window permitting), appends its spans and feeds the time series. *)

val on_hop : t -> node:int -> now_ms:float -> wait_ms:float -> service_ms:float -> unit
(** Any message occupied replica [node]'s queue (incoming or outgoing):
    accumulate its queueing wait and occupancy into the per-node
    window totals. *)

val count_msg : t -> string -> unit
(** Bump the per-message-type counter for [label]. *)

(** {2 Results} *)

val e2e : t -> Stats.t
val net_in : t -> Stats.t
val wait_in : t -> Stats.t
val service_in : t -> Stats.t
val propose_gap : t -> Stats.t
val quorum_wait : t -> Stats.t
val exec_reply : t -> Stats.t
val net_out : t -> Stats.t

val server_residency : t -> Stats.t
(** handled→reply-sent, recorded for every request (= G1+C+G2). *)

val read_e2e : t -> Stats.t
(** End-to-end latency of in-window [Get] requests only. *)

val write_e2e : t -> Stats.t
(** End-to-end latency of in-window write requests only. *)

val fast_reads : t -> int
(** Reads served off the fast path (see {!on_fast_read}). *)

val relay_hops : t -> int
(** Relay aggregation rounds completed (see {!on_relay_hop}). *)

val relay_hop_ms : t -> Stats.t
(** In-window relay aggregation durations. NOT part of {!components}:
    the hop overlaps [quorum_wait], so it reports the relay tree's
    internal latency without disturbing the telescoping split. *)

val components : t -> (string * Stats.t) list
(** The telescoping decomposition, in phase order: the 7-way split
    when propose/quorum events were reported, else the 5-way split
    with [server_residency] in the middle. Component means sum to the
    [e2e] mean exactly (modulo float rounding). *)

val node_ids : t -> int list
(** Replicas that processed at least one in-window message, sorted. *)

val node_wait_ms : t -> int -> float
(** Total in-window queueing wait accumulated at a replica. *)

val node_busy_ms : t -> int -> float
(** Total in-window processing occupancy of a replica. *)

val node_msgs : t -> int -> int

val message_counts : t -> (string * int) list
(** Per-message-type send counts, sorted by label. *)

val merged_message_counts : t list -> (string * int) list
(** Label-wise sum of {!message_counts} across traces — the aggregate
    wire profile of a sharded deployment, where each group carries its
    own trace. *)

val series : t -> (float * int * float) list
(** [(bucket_start_ms, completions, mean_latency_ms)] per non-empty
    bucket over the whole run (warmup included), sorted — the
    warmup-aware throughput/latency time series. *)

val span_count : t -> int
val dropped_spans : t -> int

val to_chrome_json : t -> Json.t
(** The retained spans as a Chrome-trace (chrome://tracing /
    Perfetto) document: [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)
