(* One in-flight request's timestamps. Fields start at [nan] and are
   filled as the round progresses; [close] turns them into component
   samples. *)
type open_req = {
  client : int;
  cmd_id : int;
  submitted_ms : float;
  mutable arrival_ms : float;
  mutable wait_ms : float;
  mutable service_ms : float;
  mutable handled_ms : float;
  mutable proposed_ms : float;
  mutable quorum_ms : float;
}

type node_acc = {
  mutable nwait : float;
  mutable nbusy : float;
  mutable nmsgs : int;
}

type bucket = { mutable bcount : int; mutable bsum : float }

type t = {
  on : bool;
  window_ms : float;
  max_spans : int;
  mutable from_ms : float;
  mutable until_ms : float;
  reqs : (int * int, open_req) Hashtbl.t;
  by_slot : (int, int * int) Hashtbl.t;
  (* component statistics, window-filtered *)
  c_e2e : Stats.t;
  c_net_in : Stats.t;
  c_wait_in : Stats.t;
  c_service_in : Stats.t;
  c_propose_gap : Stats.t;
  c_quorum : Stats.t;
  c_exec_reply : Stats.t;
  c_net_out : Stats.t;
  c_server : Stats.t;
  nodes : (int, node_acc) Hashtbl.t;
  msgs : (string, int ref) Hashtbl.t;
  buckets : (int, bucket) Hashtbl.t;
  mutable spans : Span.t list;
  mutable n_spans : int;
  mutable dropped : int;
}

let create ?(window_ms = 100.0) ?(max_spans = 200_000) ~enabled () =
  {
    on = enabled;
    window_ms;
    max_spans;
    from_ms = 0.0;
    until_ms = infinity;
    reqs = Hashtbl.create (if enabled then 256 else 1);
    by_slot = Hashtbl.create (if enabled then 256 else 1);
    c_e2e = Stats.create ();
    c_net_in = Stats.create ();
    c_wait_in = Stats.create ();
    c_service_in = Stats.create ();
    c_propose_gap = Stats.create ();
    c_quorum = Stats.create ();
    c_exec_reply = Stats.create ();
    c_net_out = Stats.create ();
    c_server = Stats.create ();
    nodes = Hashtbl.create (if enabled then 16 else 1);
    msgs = Hashtbl.create (if enabled then 32 else 1);
    buckets = Hashtbl.create (if enabled then 64 else 1);
    spans = [];
    n_spans = 0;
    dropped = 0;
  }

let enabled t = t.on

let set_window t ~from_ms ~until_ms =
  t.from_ms <- from_ms;
  t.until_ms <- until_ms

let window t = (t.from_ms, t.until_ms)

let on_submit t ~client ~cmd_id ~now_ms =
  if t.on && not (Hashtbl.mem t.reqs (client, cmd_id)) then
    Hashtbl.add t.reqs (client, cmd_id)
      {
        client;
        cmd_id;
        submitted_ms = now_ms;
        arrival_ms = nan;
        wait_ms = nan;
        service_ms = nan;
        handled_ms = nan;
        proposed_ms = nan;
        quorum_ms = nan;
      }

let on_request_arrival t ~client ~cmd_id ~arrival_ms ~wait_ms ~service_ms
    ~ready_ms =
  if t.on then
    match Hashtbl.find_opt t.reqs (client, cmd_id) with
    | Some r when Float.is_nan r.arrival_ms ->
        r.arrival_ms <- arrival_ms;
        r.wait_ms <- wait_ms;
        r.service_ms <- service_ms;
        r.handled_ms <- ready_ms
    | _ -> ()

let on_propose t ~slot ~client ~cmd_id ~now_ms =
  if t.on then
    match Hashtbl.find_opt t.reqs (client, cmd_id) with
    | Some r when Float.is_nan r.proposed_ms ->
        r.proposed_ms <- now_ms;
        Hashtbl.replace t.by_slot slot (client, cmd_id)
    | _ -> ()

let on_quorum t ~slot ~now_ms =
  if t.on then
    match Hashtbl.find_opt t.by_slot slot with
    | Some key -> (
        Hashtbl.remove t.by_slot slot;
        match Hashtbl.find_opt t.reqs key with
        | Some r when Float.is_nan r.quorum_ms -> r.quorum_ms <- now_ms
        | _ -> ())
    | None -> ()

let push_span t span =
  if t.n_spans >= t.max_spans then t.dropped <- t.dropped + 1
  else begin
    t.spans <- span :: t.spans;
    t.n_spans <- t.n_spans + 1
  end

let record_bucket t ~done_ms ~latency =
  let b = int_of_float (done_ms /. t.window_ms) in
  match Hashtbl.find_opt t.buckets b with
  | Some bk ->
      bk.bcount <- bk.bcount + 1;
      bk.bsum <- bk.bsum +. latency
  | None -> Hashtbl.add t.buckets b { bcount = 1; bsum = latency }

let on_reply t ~client ~cmd_id ~sent_ms ~ready_ms =
  if t.on then
    match Hashtbl.find_opt t.reqs (client, cmd_id) with
    | None -> () (* duplicate reply after the first already closed it *)
    | Some r ->
        Hashtbl.remove t.reqs (client, cmd_id);
        let e2e = ready_ms -. r.submitted_ms in
        record_bucket t ~done_ms:ready_ms ~latency:e2e;
        let dissected = not (Float.is_nan r.arrival_ms) in
        let staged =
          dissected
          && (not (Float.is_nan r.proposed_ms))
          && not (Float.is_nan r.quorum_ms)
        in
        if r.submitted_ms >= t.from_ms && ready_ms <= t.until_ms then begin
          Stats.add t.c_e2e e2e;
          if dissected then begin
            Stats.add t.c_net_in (r.arrival_ms -. r.submitted_ms);
            Stats.add t.c_wait_in r.wait_ms;
            Stats.add t.c_service_in r.service_ms;
            Stats.add t.c_server (sent_ms -. r.handled_ms);
            Stats.add t.c_net_out (ready_ms -. sent_ms);
            if staged then begin
              Stats.add t.c_propose_gap (r.proposed_ms -. r.handled_ms);
              Stats.add t.c_quorum (r.quorum_ms -. r.proposed_ms);
              Stats.add t.c_exec_reply (sent_ms -. r.quorum_ms)
            end
          end
        end;
        let sp name a b =
          push_span t (Span.make ~name ~track:client ~start_ms:a ~end_ms:b)
        in
        let id = Printf.sprintf "c%d#%d" client cmd_id in
        sp ("request " ^ id) r.submitted_ms ready_ms;
        if dissected then begin
          sp "net:client->replica" r.submitted_ms r.arrival_ms;
          sp "queue-wait" r.arrival_ms (r.arrival_ms +. r.wait_ms);
          sp "service" (r.arrival_ms +. r.wait_ms) r.handled_ms;
          if staged then begin
            sp "propose-gap" r.handled_ms r.proposed_ms;
            sp "quorum-wait" r.proposed_ms r.quorum_ms;
            sp "exec+reply" r.quorum_ms sent_ms
          end
          else sp "server" r.handled_ms sent_ms;
          sp "net:replica->client" sent_ms ready_ms
        end

let node_acc t node =
  match Hashtbl.find_opt t.nodes node with
  | Some a -> a
  | None ->
      let a = { nwait = 0.0; nbusy = 0.0; nmsgs = 0 } in
      Hashtbl.add t.nodes node a;
      a

let on_hop t ~node ~now_ms ~wait_ms ~service_ms =
  if t.on && now_ms >= t.from_ms && now_ms <= t.until_ms then begin
    let a = node_acc t node in
    a.nwait <- a.nwait +. wait_ms;
    a.nbusy <- a.nbusy +. service_ms;
    a.nmsgs <- a.nmsgs + 1
  end

let count_msg t label =
  if t.on then
    match Hashtbl.find_opt t.msgs label with
    | Some r -> incr r
    | None -> Hashtbl.add t.msgs label (ref 1)

let e2e t = t.c_e2e
let net_in t = t.c_net_in
let wait_in t = t.c_wait_in
let service_in t = t.c_service_in
let propose_gap t = t.c_propose_gap
let quorum_wait t = t.c_quorum
let exec_reply t = t.c_exec_reply
let net_out t = t.c_net_out
let server_residency t = t.c_server

let components t =
  if Stats.count t.c_quorum > 0 then
    [
      ("net client->replica", t.c_net_in);
      ("queue wait", t.c_wait_in);
      ("service", t.c_service_in);
      ("propose gap", t.c_propose_gap);
      ("quorum wait", t.c_quorum);
      ("exec+reply", t.c_exec_reply);
      ("net replica->client", t.c_net_out);
    ]
  else
    [
      ("net client->replica", t.c_net_in);
      ("queue wait", t.c_wait_in);
      ("service", t.c_service_in);
      ("server residency", t.c_server);
      ("net replica->client", t.c_net_out);
    ]

let node_ids t =
  Hashtbl.fold (fun i _ acc -> i :: acc) t.nodes [] |> List.sort Int.compare

let node_wait_ms t i =
  match Hashtbl.find_opt t.nodes i with Some a -> a.nwait | None -> 0.0

let node_busy_ms t i =
  match Hashtbl.find_opt t.nodes i with Some a -> a.nbusy | None -> 0.0

let node_msgs t i =
  match Hashtbl.find_opt t.nodes i with Some a -> a.nmsgs | None -> 0

let message_counts t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.msgs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let series t =
  Hashtbl.fold
    (fun b bk acc ->
      ( float_of_int b *. t.window_ms,
        bk.bcount,
        bk.bsum /. float_of_int bk.bcount )
      :: acc)
    t.buckets []
  |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b)

let span_count t = t.n_spans
let dropped_spans t = t.dropped

let to_chrome_json t =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Number 0.0);
        ( "args",
          Json.Obj [ ("name", Json.String "paxi clients (track = client id)") ]
        );
      ]
  in
  let events =
    List.rev_map Span.to_chrome_json t.spans |> fun evs -> meta :: evs
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]
