(* One in-flight request's timestamps. Fields start at [nan] and are
   filled as the round progresses; [on_reply] turns them into
   component samples. Records are recycled on an intrusive free list
   ([rnext]; the shared [req_nil] sentinel marks the end) so a
   closed-loop client's steady stream of requests reuses a handful of
   records instead of allocating one per request. *)
type open_req = {
  mutable client : int;
  mutable cmd_id : int;
  mutable is_read : bool;
  mutable submitted_ms : float;
  mutable arrival_ms : float;
  mutable wait_ms : float;
  mutable service_ms : float;
  mutable handled_ms : float;
  mutable proposed_ms : float;
  mutable quorum_ms : float;
  mutable rnext : open_req;
}

let rec req_nil =
  {
    client = -1;
    cmd_id = -1;
    is_read = false;
    submitted_ms = nan;
    arrival_ms = nan;
    wait_ms = nan;
    service_ms = nan;
    handled_ms = nan;
    proposed_ms = nan;
    quorum_ms = nan;
    rnext = req_nil;
  }

(* Escape hatch mirroring [Reliable.pooling]: with PAXI_NO_POOLING=1
   (or by flipping the ref in a test) request records are freshly
   allocated per request. Fixed-seed statistics are identical either
   way — the hooks never draw randomness or schedule events. *)
let pooling = ref (Sys.getenv_opt "PAXI_NO_POOLING" <> Some "1")

(* Requests are keyed by (client, cmd_id) packed into one int: client
   ids are small and dense, per-client command ids are per-run
   counters far below 2^40. *)
let pack_req ~client ~cmd_id = (client lsl 40) lor cmd_id

type node_acc = {
  mutable nwait : float;
  mutable nbusy : float;
  mutable nmsgs : int;
}

type bucket = { mutable bcount : int; mutable bsum : float }

(* Spans live in growable parallel arrays (structure-of-arrays), not a
   [Span.t list]: recording a span writes four scalars, allocating
   nothing beyond amortized array growth. Names are resolved at export
   time from the span's kind (constant strings for components; the
   request parent span rebuilds "request c<id>#<n>" from its packed
   key in [sp_aux]). *)
let kind_request = 0

let kind_names =
  [|
    "request";
    "net:client->replica";
    "queue-wait";
    "service";
    "propose-gap";
    "quorum-wait";
    "exec+reply";
    "server";
    "net:replica->client";
    "relay:aggregate";
  |]

let kind_relay = 9

type t = {
  on : bool;
  window_ms : float;
  max_spans : int;
  mutable from_ms : float;
  mutable until_ms : float;
  reqs : (int, open_req) Hashtbl.t; (* packed (client, cmd_id) keys *)
  mutable req_pool : open_req; (* free list; [req_nil] = empty *)
  by_slot : (int, int) Hashtbl.t; (* slot -> packed request key *)
  (* component statistics, window-filtered *)
  c_e2e : Stats.t;
  c_net_in : Stats.t;
  c_wait_in : Stats.t;
  c_service_in : Stats.t;
  c_propose_gap : Stats.t;
  c_quorum : Stats.t;
  c_exec_reply : Stats.t;
  c_net_out : Stats.t;
  c_server : Stats.t;
  c_read_e2e : Stats.t;
  c_write_e2e : Stats.t;
  mutable fast_reads : int;
      (* reads served off the fast path (lease / quorum / tail) — they
         never reach [on_propose], so this is the only trace of them *)
  c_relay : Stats.t;
      (* relay aggregation hops (round received at relay -> combined
         ack sent); kept OUT of [components] — the hop overlaps the
         quorum wait, so adding it would break the telescoping check *)
  mutable relay_hops : int;
  nodes : (int, node_acc) Hashtbl.t;
  msgs : (string, int ref) Hashtbl.t;
  buckets : (int, bucket) Hashtbl.t;
  (* span storage (SoA) *)
  mutable sp_kind : int array;
  mutable sp_track : int array;
  mutable sp_start : float array;
  mutable sp_end : float array;
  mutable sp_aux : int array;
  mutable n_spans : int;
  mutable dropped : int;
}

let create ?(window_ms = 100.0) ?(max_spans = 200_000) ~enabled () =
  {
    on = enabled;
    window_ms;
    max_spans;
    from_ms = 0.0;
    until_ms = infinity;
    reqs = Hashtbl.create (if enabled then 256 else 1);
    req_pool = req_nil;
    by_slot = Hashtbl.create (if enabled then 256 else 1);
    c_e2e = Stats.create ();
    c_net_in = Stats.create ();
    c_wait_in = Stats.create ();
    c_service_in = Stats.create ();
    c_propose_gap = Stats.create ();
    c_quorum = Stats.create ();
    c_exec_reply = Stats.create ();
    c_net_out = Stats.create ();
    c_server = Stats.create ();
    c_read_e2e = Stats.create ();
    c_write_e2e = Stats.create ();
    fast_reads = 0;
    c_relay = Stats.create ();
    relay_hops = 0;
    nodes = Hashtbl.create (if enabled then 16 else 1);
    msgs = Hashtbl.create (if enabled then 32 else 1);
    buckets = Hashtbl.create (if enabled then 64 else 1);
    sp_kind = [||];
    sp_track = [||];
    sp_start = [||];
    sp_end = [||];
    sp_aux = [||];
    n_spans = 0;
    dropped = 0;
  }

let enabled t = t.on

let set_window t ~from_ms ~until_ms =
  t.from_ms <- from_ms;
  t.until_ms <- until_ms

let window t = (t.from_ms, t.until_ms)

let alloc_req t ~client ~cmd_id ~now_ms =
  let r =
    if !pooling && t.req_pool != req_nil then begin
      let r = t.req_pool in
      t.req_pool <- r.rnext;
      r.rnext <- r;
      r
    end
    else
      let rec r =
        {
          client = 0;
          cmd_id = 0;
          is_read = false;
          submitted_ms = nan;
          arrival_ms = nan;
          wait_ms = nan;
          service_ms = nan;
          handled_ms = nan;
          proposed_ms = nan;
          quorum_ms = nan;
          rnext = r;
        }
      in
      r
  in
  r.client <- client;
  r.cmd_id <- cmd_id;
  r.is_read <- false;
  r.submitted_ms <- now_ms;
  r.arrival_ms <- nan;
  r.wait_ms <- nan;
  r.service_ms <- nan;
  r.handled_ms <- nan;
  r.proposed_ms <- nan;
  r.quorum_ms <- nan;
  r

let release_req t r =
  if !pooling then begin
    r.rnext <- t.req_pool;
    t.req_pool <- r
  end

let on_submit t ~client ~cmd_id ~is_read ~now_ms =
  if t.on then begin
    let key = pack_req ~client ~cmd_id in
    if not (Hashtbl.mem t.reqs key) then begin
      let r = alloc_req t ~client ~cmd_id ~now_ms in
      r.is_read <- is_read;
      Hashtbl.add t.reqs key r
    end
  end

let on_fast_read t = if t.on then t.fast_reads <- t.fast_reads + 1

let on_request_arrival t ~client ~cmd_id ~arrival_ms ~wait_ms ~service_ms
    ~ready_ms =
  if t.on then
    match Hashtbl.find_opt t.reqs (pack_req ~client ~cmd_id) with
    | Some r when Float.is_nan r.arrival_ms ->
        r.arrival_ms <- arrival_ms;
        r.wait_ms <- wait_ms;
        r.service_ms <- service_ms;
        r.handled_ms <- ready_ms
    | _ -> ()

let on_propose t ~slot ~client ~cmd_id ~now_ms =
  if t.on then
    let key = pack_req ~client ~cmd_id in
    match Hashtbl.find_opt t.reqs key with
    | Some r when Float.is_nan r.proposed_ms ->
        r.proposed_ms <- now_ms;
        Hashtbl.replace t.by_slot slot key
    | _ -> ()

let on_quorum t ~slot ~now_ms =
  if t.on then
    match Hashtbl.find_opt t.by_slot slot with
    | Some key -> (
        Hashtbl.remove t.by_slot slot;
        match Hashtbl.find_opt t.reqs key with
        | Some r when Float.is_nan r.quorum_ms -> r.quorum_ms <- now_ms
        | _ -> ())
    | None -> ()

let grow_spans t =
  let cap = Array.length t.sp_kind in
  let ncap = if cap = 0 then 1024 else cap * 2 in
  let gi a = Array.append a (Array.make (ncap - cap) 0) in
  let gf a = Array.append a (Array.make (ncap - cap) 0.0) in
  t.sp_kind <- gi t.sp_kind;
  t.sp_track <- gi t.sp_track;
  t.sp_aux <- gi t.sp_aux;
  t.sp_start <- gf t.sp_start;
  t.sp_end <- gf t.sp_end

let push_span t ~kind ~track ~aux ~start_ms ~end_ms =
  if t.n_spans >= t.max_spans then t.dropped <- t.dropped + 1
  else begin
    if t.n_spans >= Array.length t.sp_kind then grow_spans t;
    let i = t.n_spans in
    t.sp_kind.(i) <- kind;
    t.sp_track.(i) <- track;
    t.sp_aux.(i) <- aux;
    t.sp_start.(i) <- start_ms;
    t.sp_end.(i) <- end_ms;
    t.n_spans <- i + 1
  end

let on_relay_hop t ~start_ms ~end_ms =
  if t.on then begin
    t.relay_hops <- t.relay_hops + 1;
    if start_ms >= t.from_ms && end_ms <= t.until_ms then begin
      Stats.add t.c_relay (end_ms -. start_ms);
      push_span t ~kind:kind_relay ~track:0 ~aux:0 ~start_ms ~end_ms
    end
  end

let record_bucket t ~done_ms ~latency =
  let b = int_of_float (done_ms /. t.window_ms) in
  match Hashtbl.find_opt t.buckets b with
  | Some bk ->
      bk.bcount <- bk.bcount + 1;
      bk.bsum <- bk.bsum +. latency
  | None -> Hashtbl.add t.buckets b { bcount = 1; bsum = latency }

let on_reply t ~client ~cmd_id ~sent_ms ~ready_ms =
  if t.on then
    let key = pack_req ~client ~cmd_id in
    match Hashtbl.find_opt t.reqs key with
    | None -> () (* duplicate reply after the first already closed it *)
    | Some r ->
        Hashtbl.remove t.reqs key;
        let e2e = ready_ms -. r.submitted_ms in
        record_bucket t ~done_ms:ready_ms ~latency:e2e;
        let dissected = not (Float.is_nan r.arrival_ms) in
        let staged =
          dissected
          && (not (Float.is_nan r.proposed_ms))
          && not (Float.is_nan r.quorum_ms)
        in
        if r.submitted_ms >= t.from_ms && ready_ms <= t.until_ms then begin
          Stats.add t.c_e2e e2e;
          Stats.add (if r.is_read then t.c_read_e2e else t.c_write_e2e) e2e;
          if dissected then begin
            Stats.add t.c_net_in (r.arrival_ms -. r.submitted_ms);
            Stats.add t.c_wait_in r.wait_ms;
            Stats.add t.c_service_in r.service_ms;
            Stats.add t.c_server (sent_ms -. r.handled_ms);
            Stats.add t.c_net_out (ready_ms -. sent_ms);
            if staged then begin
              Stats.add t.c_propose_gap (r.proposed_ms -. r.handled_ms);
              Stats.add t.c_quorum (r.quorum_ms -. r.proposed_ms);
              Stats.add t.c_exec_reply (sent_ms -. r.quorum_ms)
            end
          end
        end;
        let sp kind a b =
          push_span t ~kind ~track:client ~aux:0 ~start_ms:a ~end_ms:b
        in
        push_span t ~kind:kind_request ~track:client ~aux:key
          ~start_ms:r.submitted_ms ~end_ms:ready_ms;
        if dissected then begin
          sp 1 r.submitted_ms r.arrival_ms;
          sp 2 r.arrival_ms (r.arrival_ms +. r.wait_ms);
          sp 3 (r.arrival_ms +. r.wait_ms) r.handled_ms;
          if staged then begin
            sp 4 r.handled_ms r.proposed_ms;
            sp 5 r.proposed_ms r.quorum_ms;
            sp 6 r.quorum_ms sent_ms
          end
          else sp 7 r.handled_ms sent_ms;
          sp 8 sent_ms ready_ms
        end;
        release_req t r

let node_acc t node =
  match Hashtbl.find_opt t.nodes node with
  | Some a -> a
  | None ->
      let a = { nwait = 0.0; nbusy = 0.0; nmsgs = 0 } in
      Hashtbl.add t.nodes node a;
      a

let on_hop t ~node ~now_ms ~wait_ms ~service_ms =
  if t.on && now_ms >= t.from_ms && now_ms <= t.until_ms then begin
    let a = node_acc t node in
    a.nwait <- a.nwait +. wait_ms;
    a.nbusy <- a.nbusy +. service_ms;
    a.nmsgs <- a.nmsgs + 1
  end

let count_msg t label =
  if t.on then
    match Hashtbl.find_opt t.msgs label with
    | Some r -> incr r
    | None -> Hashtbl.add t.msgs label (ref 1)

let e2e t = t.c_e2e
let net_in t = t.c_net_in
let wait_in t = t.c_wait_in
let service_in t = t.c_service_in
let propose_gap t = t.c_propose_gap
let quorum_wait t = t.c_quorum
let exec_reply t = t.c_exec_reply
let net_out t = t.c_net_out
let server_residency t = t.c_server
let read_e2e t = t.c_read_e2e
let write_e2e t = t.c_write_e2e
let fast_reads t = t.fast_reads
let relay_hops t = t.relay_hops
let relay_hop_ms t = t.c_relay

let components t =
  if Stats.count t.c_quorum > 0 then
    [
      ("net client->replica", t.c_net_in);
      ("queue wait", t.c_wait_in);
      ("service", t.c_service_in);
      ("propose gap", t.c_propose_gap);
      ("quorum wait", t.c_quorum);
      ("exec+reply", t.c_exec_reply);
      ("net replica->client", t.c_net_out);
    ]
  else
    [
      ("net client->replica", t.c_net_in);
      ("queue wait", t.c_wait_in);
      ("service", t.c_service_in);
      ("server residency", t.c_server);
      ("net replica->client", t.c_net_out);
    ]

let node_ids t =
  Hashtbl.fold (fun i _ acc -> i :: acc) t.nodes [] |> List.sort Int.compare

let node_wait_ms t i =
  match Hashtbl.find_opt t.nodes i with Some a -> a.nwait | None -> 0.0

let node_busy_ms t i =
  match Hashtbl.find_opt t.nodes i with Some a -> a.nbusy | None -> 0.0

let node_msgs t i =
  match Hashtbl.find_opt t.nodes i with Some a -> a.nmsgs | None -> 0

let message_counts t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.msgs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merged_message_counts traces =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun t ->
      List.iter
        (fun (label, n) ->
          Hashtbl.replace acc label
            (n + Option.value ~default:0 (Hashtbl.find_opt acc label)))
        (message_counts t))
    traces;
  Hashtbl.fold (fun k n l -> (k, n) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let series t =
  Hashtbl.fold
    (fun b bk acc ->
      ( float_of_int b *. t.window_ms,
        bk.bcount,
        bk.bsum /. float_of_int bk.bcount )
      :: acc)
    t.buckets []
  |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b)

let span_count t = t.n_spans
let dropped_spans t = t.dropped

let span_name t i =
  let kind = t.sp_kind.(i) in
  if kind = kind_request then
    let aux = t.sp_aux.(i) in
    Printf.sprintf "request c%d#%d" (aux lsr 40) (aux land ((1 lsl 40) - 1))
  else kind_names.(kind)

let to_chrome_json t =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Number 0.0);
        ( "args",
          Json.Obj [ ("name", Json.String "paxi clients (track = client id)") ]
        );
      ]
  in
  let events = ref [] in
  for i = t.n_spans - 1 downto 0 do
    let span =
      Span.make ~name:(span_name t i) ~track:t.sp_track.(i)
        ~start_ms:t.sp_start.(i) ~end_ms:t.sp_end.(i)
    in
    events := Span.to_chrome_json span :: !events
  done;
  Json.Obj
    [
      ("traceEvents", Json.List (meta :: !events));
      ("displayTimeUnit", Json.String "ms");
    ]
