(** A completed span: one named interval of virtual time on a track.
    Spans are what the Chrome-trace exporter writes — each request
    contributes one parent span (the whole round trip) plus one child
    span per latency component, all on the client's track. *)

type t = {
  name : string;
  track : int;  (** chrome [tid]; we use the client id *)
  start_ms : float;
  dur_ms : float;
}

val make : name:string -> track:int -> start_ms:float -> end_ms:float -> t
(** Clamps a negative duration (possible when a reply is served by a
    replica other than the proposer) to zero. *)

val to_chrome_json : t -> Json.t
(** One Chrome-trace "X" (complete) event; [ts]/[dur] are microseconds
    as the format requires. *)
