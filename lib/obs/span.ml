type t = {
  name : string;
  track : int;
  start_ms : float;
  dur_ms : float;
}

let make ~name ~track ~start_ms ~end_ms =
  { name; track; start_ms; dur_ms = Float.max 0.0 (end_ms -. start_ms) }

let to_chrome_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("ph", Json.String "X");
      ("ts", Json.Number (s.start_ms *. 1000.0));
      ("dur", Json.Number (s.dur_ms *. 1000.0));
      ("pid", Json.Number 0.0);
      ("tid", Json.Number (float_of_int s.track));
    ]
