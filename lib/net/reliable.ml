type policy = { base_ms : float; max_ms : float; max_tries : int }

let inert = { base_ms = 0.; max_ms = 0.; max_tries = 0 }

type ack_mode = Piggyback | Explicit

type 'p packet =
  | Payload of { key : int; ack : ack_mode; msg : 'p }
  | Ack of { key : int }

(* An ack is a key and some framing; charge it like a minimal wire
   message rather than the transport's default command size. *)
let ack_size_bytes = 32

type ('p, 'm) post = {
  packet : 'm;  (* the injected [Payload], reusable verbatim on resend *)
  size_bytes : int option;
  mutable remaining : Address.t list;
  mutable tries : int;
  mutable timer : Sim.handle option;
}

type ('p, 'm) t = {
  transport : 'm Transport.t;
  self : Address.t;
  policy : policy;
  inject : 'p packet -> 'm;
  posts : (int, ('p, 'm) post) Hashtbl.t;
  seen : (Address.t * int, unit) Hashtbl.t;
  mutable next_key : int;
  mutable retransmits : int;
  mutable dup_drops : int;
}

let create ~transport ~self ~policy ~inject =
  {
    transport;
    self;
    policy;
    inject;
    posts = Hashtbl.create 64;
    seen = Hashtbl.create 256;
    next_key = 0;
    retransmits = 0;
    dup_drops = 0;
  }

let enabled t = t.policy.max_tries > 0

let fresh t =
  t.next_key <- t.next_key + 1;
  t.next_key

let send_packet t ~dsts ~size_bytes packet =
  Transport.multicast t.transport ~src:t.self ~dsts ?size_bytes packet

let backoff t ~tries =
  Float.min t.policy.max_ms (t.policy.base_ms *. Float.pow 2. (float_of_int tries))

let cancel_timer post =
  match post.timer with
  | Some h ->
      Sim.cancel h;
      post.timer <- None
  | None -> ()

let rec arm t key post =
  let delay = backoff t ~tries:post.tries in
  post.timer <-
    Some
      (Sim.schedule_after (Transport.sim t.transport) ~delay (fun () ->
           post.timer <- None;
           post.tries <- post.tries + 1;
           if post.tries > t.policy.max_tries || post.remaining = [] then
             Hashtbl.remove t.posts key
           else begin
             t.retransmits <- t.retransmits + List.length post.remaining;
             send_packet t ~dsts:post.remaining ~size_bytes:post.size_bytes
               post.packet;
             arm t key post
           end))

let post_multi t ?key ?size_bytes ~ack ~dsts msg =
  let key = match key with Some k -> k | None -> fresh t in
  let packet = t.inject (Payload { key; ack; msg }) in
  send_packet t ~dsts ~size_bytes packet;
  if enabled t && dsts <> [] then begin
    match Hashtbl.find_opt t.posts key with
    | Some post ->
        (* key reuse: fold the new destinations into the open post *)
        post.remaining <-
          post.remaining
          @ List.filter
              (fun d -> not (List.exists (Address.equal d) post.remaining))
              dsts
    | None ->
        let post =
          { packet; size_bytes; remaining = dsts; tries = 0; timer = None }
        in
        Hashtbl.add t.posts key post;
        arm t key post
  end;
  key

let post t ?key ?size_bytes ~ack ~dst msg =
  post_multi t ?key ?size_bytes ~ack ~dsts:[ dst ] msg

let settle t ~dst ~key =
  match Hashtbl.find_opt t.posts key with
  | None -> ()
  | Some post ->
      post.remaining <-
        List.filter (fun d -> not (Address.equal d dst)) post.remaining;
      if post.remaining = [] then begin
        cancel_timer post;
        Hashtbl.remove t.posts key
      end

let settle_all t ~key =
  match Hashtbl.find_opt t.posts key with
  | None -> ()
  | Some post ->
      cancel_timer post;
      Hashtbl.remove t.posts key

let unpost_all t =
  Hashtbl.iter (fun _ post -> cancel_timer post) t.posts;
  Hashtbl.reset t.posts

let on_packet t ~src ~deliver = function
  | Payload { msg; _ } when not (enabled t) ->
      (* inert: no acks, no dedup — indistinguishable from a plain send *)
      deliver ~src msg
  | Payload { ack = Piggyback; msg; _ } ->
      (* duplicates re-run the (idempotent) handler: that is what
         regenerates the lost natural reply *)
      deliver ~src msg
  | Payload { key; ack = Explicit; msg } ->
      (* re-ack every receipt — the previous ack may be the loss *)
      Transport.send t.transport ~src:t.self ~dst:src
        ~size_bytes:ack_size_bytes
        (t.inject (Ack { key }));
      if Hashtbl.mem t.seen (src, key) then t.dup_drops <- t.dup_drops + 1
      else begin
        Hashtbl.add t.seen (src, key) ();
        deliver ~src msg
      end
  | Ack { key } -> settle t ~dst:src ~key

let outstanding t = Hashtbl.length t.posts
let retransmits t = t.retransmits
let dup_drops t = t.dup_drops
