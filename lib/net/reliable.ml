type policy = { base_ms : float; max_ms : float; max_tries : int }

let inert = { base_ms = 0.; max_ms = 0.; max_tries = 0 }

type ack_mode = Piggyback | Explicit

type 'p packet =
  | Payload of { key : int; frontier : int; ack : ack_mode; msg : 'p }
  | Ack of { key : int }

(* An ack is a key and some framing; charge it like a minimal wire
   message rather than the transport's default command size. *)
let ack_size_bytes = 32

(* Runtime escape hatch for the hot-path pooling: with
   PAXI_NO_POOLING=1 (or by flipping the ref in a test) post records
   are freshly allocated per post and never reused. Results must be
   identical either way — the determinism suite pins that. *)
let pooling = ref (Sys.getenv_opt "PAXI_NO_POOLING" <> Some "1")

(* Open posts are pooled on an intrusive free list ([next_free];
   pointing at itself marks a detached record) so the loss-free fast
   path — post, arm, ack, settle — recycles one record and one
   pre-built timer thunk ([retransmit], allocated once per record
   and reused across every re-arm and every reuse of the record)
   instead of allocating a record, a closure and a handle per post. *)
type ('p, 'm) post = {
  mutable packet : 'm; (* the injected [Payload], reusable verbatim on resend *)
  mutable size_bytes : int; (* -1 = transport default *)
  mutable remaining : Address.t list;
  mutable tries : int;
  mutable timer : Sim.handle;
  mutable pkey : int;
  mutable retransmit : unit -> unit;
  mutable next_free : ('p, 'm) post;
}

type ('p, 'm) t = {
  transport : 'm Transport.t;
  sim : Sim.t;
  self : Address.t;
  policy : policy;
  inject : 'p packet -> 'm;
  dummy_packet : 'm; (* resets recycled [packet] fields *)
  posts : (int, ('p, 'm) post) Hashtbl.t;
  (* receiver-side dedup for explicit-ack posts, keyed by packed
     (sender, key) ints — [Address.hash] is injective, so
     [(hash src lsl 32) lor key] collides never (keys are per-run
     counters, far below 2^32). *)
  seen : (int, unit) Hashtbl.t;
  (* per-sender floors learned from the [frontier] field of incoming
     payloads: every key below the floor is fully settled at the
     sender and can never be retransmitted again, so its [seen] entry
     is pruned and late stray copies are dropped as duplicates. Dense
     int array indexed by [Address.hash src]. *)
  mutable floors : int array;
  mutable pool : ('p, 'm) post; (* free-list head; [sentinel] = empty *)
  sentinel : ('p, 'm) post;
  (* every key below [frontier] is closed (settled, withdrawn or
     given up) — advertised on outgoing payloads, advanced whenever
     the smallest open key closes. Amortized O(1): each key is swept
     exactly once over the endpoint's lifetime. *)
  mutable frontier : int;
  mutable next_key : int;
  mutable retransmits : int;
  mutable dup_drops : int;
}

let create ~transport ~self ~policy ~inject =
  let dummy_packet = inject (Ack { key = 0 }) in
  let rec sentinel =
    {
      packet = dummy_packet;
      size_bytes = -1;
      remaining = [];
      tries = 0;
      timer = Sim.nil;
      pkey = 0;
      retransmit = ignore;
      next_free = sentinel;
    }
  in
  {
    transport;
    sim = Transport.sim transport;
    self;
    policy;
    inject;
    dummy_packet;
    posts = Hashtbl.create 64;
    seen = Hashtbl.create 256;
    floors = [||];
    pool = sentinel;
    sentinel;
    frontier = 1;
    next_key = 0;
    retransmits = 0;
    dup_drops = 0;
  }

let enabled t = t.policy.max_tries > 0

let fresh t =
  t.next_key <- t.next_key + 1;
  t.next_key

let send_packet t ~dsts ~size_bytes packet =
  Transport.multicast t.transport ~src:t.self ~dsts ?size_bytes packet

let resend t post =
  if post.size_bytes < 0 then
    Transport.multicast t.transport ~src:t.self ~dsts:post.remaining
      post.packet
  else
    Transport.multicast t.transport ~src:t.self ~dsts:post.remaining
      ~size_bytes:post.size_bytes post.packet

let backoff t ~tries =
  Float.min t.policy.max_ms
    (t.policy.base_ms *. Float.pow 2. (float_of_int tries))

let advance_frontier t =
  while t.frontier <= t.next_key && not (Hashtbl.mem t.posts t.frontier) do
    t.frontier <- t.frontier + 1
  done

(* Close a post: drop it from the table, advance the settled frontier
   past it, and recycle the record. *)
let free_post t post =
  Hashtbl.remove t.posts post.pkey;
  advance_frontier t;
  if !pooling then begin
    post.packet <- t.dummy_packet;
    post.remaining <- [];
    post.timer <- Sim.nil;
    post.next_free <- t.pool;
    t.pool <- post
  end

let rec on_timer t post =
  post.timer <- Sim.nil;
  post.tries <- post.tries + 1;
  if post.tries > t.policy.max_tries || post.remaining = [] then
    free_post t post
  else begin
    t.retransmits <- t.retransmits + List.length post.remaining;
    resend t post;
    arm t post
  end

and arm t post =
  let delay = backoff t ~tries:post.tries in
  post.timer <- Sim.schedule_after t.sim ~delay post.retransmit

let alloc_post t =
  if !pooling && t.pool != t.sentinel then begin
    let p = t.pool in
    t.pool <- p.next_free;
    p.next_free <- p;
    p
  end
  else begin
    let rec p =
      {
        packet = t.dummy_packet;
        size_bytes = -1;
        remaining = [];
        tries = 0;
        timer = Sim.nil;
        pkey = 0;
        retransmit = ignore;
        next_free = p;
      }
    in
    p.retransmit <- (fun () -> on_timer t p);
    p
  end

let post_multi t ?key ?size_bytes ~ack ~dsts msg =
  let key = match key with Some k -> k | None -> fresh t in
  if enabled t && ack = Explicit && key < t.frontier then
    invalid_arg
      "Reliable.post_multi: explicit post reuses a key below the settled \
       frontier (receivers would drop it as a duplicate)";
  let packet = t.inject (Payload { key; frontier = t.frontier; ack; msg }) in
  send_packet t ~dsts ~size_bytes packet;
  if enabled t && dsts <> [] then begin
    match Hashtbl.find_opt t.posts key with
    | Some post ->
        (* key reuse: fold the new destinations into the open post *)
        post.remaining <-
          post.remaining
          @ List.filter
              (fun d -> not (List.exists (Address.equal d) post.remaining))
              dsts
    | None ->
        let post = alloc_post t in
        post.packet <- packet;
        post.size_bytes <- (match size_bytes with Some s -> s | None -> -1);
        post.remaining <- dsts;
        post.tries <- 0;
        post.pkey <- key;
        Hashtbl.add t.posts key post;
        arm t post
  end;
  key

let post t ?key ?size_bytes ~ack ~dst msg =
  post_multi t ?key ?size_bytes ~ack ~dsts:[ dst ] msg

let settle t ~dst ~key =
  match Hashtbl.find_opt t.posts key with
  | None -> ()
  | Some post ->
      (match post.remaining with
      | [ d ] when Address.equal d dst -> post.remaining <- []
      | rem ->
          post.remaining <-
            List.filter (fun d -> not (Address.equal d dst)) rem);
      if post.remaining = [] then begin
        Sim.cancel t.sim post.timer;
        free_post t post
      end

let settle_all t ~key =
  match Hashtbl.find_opt t.posts key with
  | None -> ()
  | Some post ->
      Sim.cancel t.sim post.timer;
      free_post t post

let unpost_all t =
  let open_posts = Hashtbl.fold (fun _ p acc -> p :: acc) t.posts [] in
  List.iter
    (fun p ->
      Sim.cancel t.sim p.timer;
      free_post t p)
    open_posts

(* A crash wipes the endpoint's volatile state: open posts (and their
   timers) die with the sender, and the receiver-side dedup memory is
   gone — duplicates arriving after recovery re-run their (idempotent)
   handlers, exactly as a process restart would behave. What must NOT
   reset is [next_key] and [frontier]: receivers remember floors
   learned from our pre-crash frontier advertisements, so restarting
   keys from 0 would make every post-recovery explicit post look like
   a settled duplicate and wedge the channel. The counters model a
   monotonic session epoch, not durable storage. *)
let crash_reset t =
  unpost_all t;
  Hashtbl.reset t.seen;
  t.floors <- [||]

(* ---- receiver side -------------------------------------------------- *)

let floor_of t code = if code < Array.length t.floors then t.floors.(code) else 1

(* A payload advertised the sender's settled frontier: raise our floor
   for that sender and prune the dedup entries below it. The sweep
   visits each key at most once over the run, so [seen] stays bounded
   by the sender's open posts instead of growing monotonically. *)
let note_frontier t ~code frontier =
  let old = floor_of t code in
  if frontier > old then begin
    if code >= Array.length t.floors then begin
      let n = Array.make (code + 8) 1 in
      Array.blit t.floors 0 n 0 (Array.length t.floors);
      t.floors <- n
    end;
    let base = code lsl 32 in
    for k = old to frontier - 1 do
      Hashtbl.remove t.seen (base lor k)
    done;
    t.floors.(code) <- frontier
  end

let on_packet t ~src ~deliver = function
  | Payload { msg; _ } when not (enabled t) ->
      (* inert: no acks, no dedup — indistinguishable from a plain send *)
      deliver ~src msg
  | Payload { ack = Piggyback; frontier; msg; _ } ->
      (* duplicates re-run the (idempotent) handler: that is what
         regenerates the lost natural reply *)
      note_frontier t ~code:(Address.hash src) frontier;
      deliver ~src msg
  | Payload { key; frontier; ack = Explicit; msg } ->
      (* re-ack every receipt — the previous ack may be the loss *)
      Transport.send t.transport ~src:t.self ~dst:src
        ~size_bytes:ack_size_bytes
        (t.inject (Ack { key }));
      let code = Address.hash src in
      note_frontier t ~code frontier;
      if key < floor_of t code then t.dup_drops <- t.dup_drops + 1
      else begin
        let packed = (code lsl 32) lor key in
        if Hashtbl.mem t.seen packed then t.dup_drops <- t.dup_drops + 1
        else begin
          Hashtbl.add t.seen packed ();
          deliver ~src msg
        end
      end
  | Ack { key } -> settle t ~dst:src ~key

let outstanding t = Hashtbl.length t.posts
let retransmits t = t.retransmits
let dup_drops t = t.dup_drops
let dedup_entries t = Hashtbl.length t.seen
let frontier t = t.frontier
