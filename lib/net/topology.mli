(** Cluster topology: which region each node lives in, and the
    round-trip latency distribution between every pair of regions.

    LAN topologies draw every pair from one Normal distribution, which
    is what the paper measures inside an AWS region (Fig. 3,
    N(0.4271 ms, 0.0476 ms)). WAN topologies use a per-pair matrix
    calibrated to the five AWS regions of the paper's evaluation. *)

type t

val lan : n_replicas:int -> ?mu:float -> ?sigma:float -> unit -> t
(** Single-region topology; defaults to the paper's measured
    N(0.4271, 0.0476) RTT in milliseconds. *)

val wan :
  regions:Region.t list -> replicas_per_region:int -> ?jitter:float -> unit -> t
(** Replica [i] lives in region [i mod |regions|]... more precisely,
    replicas are laid out round-robin so that region [r] hosts replicas
    [r, r+|regions|, ...]. Pairwise RTTs come from {!aws_rtt_ms} with
    multiplicative Gaussian jitter (default 5%). Unknown regions fall
    back to a 100 ms RTT. *)

val custom :
  replica_regions:Region.t list ->
  rtt_ms:(Region.t -> Region.t -> float) ->
  ?jitter:float ->
  unit ->
  t

val n_replicas : t -> int
val regions : t -> Region.t list
(** Distinct regions, in first-appearance order. *)

val region_of_replica : t -> int -> Region.t
val replicas_in : t -> Region.t -> int list

val assign_client : t -> id:int -> region:Region.t -> unit
(** Declare where a client lives; clients default to the first
    region. *)

val region_of : t -> Address.t -> Region.t

val sample_rtt : t -> Rng.t -> Address.t -> Address.t -> float
(** Draw a round-trip latency (ms) between two addresses. *)

val sample_delay : t -> Rng.t -> Address.t -> Address.t -> float
(** One-way delay: half of a sampled RTT. Same-node delivery is a
    small constant loopback cost. *)

val sample_delay_into : t -> Rng.t -> Address.t -> Address.t -> float array -> unit
(** [sample_delay_into t rng a b dst] stores the same value
    {!sample_delay} would return in [dst.(0)], drawing identically
    from [rng]. The out-parameter form keeps the per-message delay
    draw allocation-free (a boxed float return allocates on every call
    without flambda). *)

val rtt_mean : t -> Region.t -> Region.t -> float
(** Mean RTT between two regions (no jitter), for analytic use. *)

val aws_rtt_ms : Region.t -> Region.t -> float
(** Calibrated mean inter-region RTTs for the paper's five AWS
    regions (ms). Intra-region is the LAN mean of Fig. 3. *)
