(** Node addressing. Replicas participate in the protocol; clients
    only exchange request/reply traffic with replicas. *)

type t = Replica of int | Client of int

val replica : int -> t
val client : int -> t
val is_replica : t -> bool
val is_client : t -> bool

val replica_id : t -> int
(** Raises [Invalid_argument] on a client address. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}: ["n3"] is [Replica 3], ["c7"] is
    [Client 7]. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
