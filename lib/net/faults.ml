type window = { from_ms : float; until_ms : float }

let in_window w now = now >= w.from_ms && now < w.until_ms

type rule =
  | Crash of { node : Address.t; w : window }
  | Drop of { src : Address.t; dst : Address.t; w : window }
  | Slow of { src : Address.t; dst : Address.t; w : window; extra_ms : float }
  | Flaky of { src : Address.t; dst : Address.t; w : window; p_drop : float }
  | Partition of { groups : Address.Set.t list; w : window }
  | Skew of { node : Address.t; w : window; offset_ms : float }

let window_of = function
  | Crash { w; _ } | Drop { w; _ } | Slow { w; _ } | Flaky { w; _ }
  | Partition { w; _ } | Skew { w; _ } ->
      w

let until_of r = (window_of r).until_ms

(* [rules] is authoritative (newest first). [live] is the hot-path
   cache: the subsequence of [rules] whose windows had not yet expired
   the last time the cache was refreshed, at virtual time
   [live_from]. Expired rules can never match again (windows are
   half-open and time only has to move forward for the cache to be
   used), so dropping them keeps per-message fault checks proportional
   to the number of *active* faults, not the whole schedule.
   [next_expiry] is the earliest expiry among [live] rules so the
   filter only runs when something actually expired. Queries at
   [now < live_from] (tests probing a schedule out of order) bypass
   the cache and consult [rules] directly — verdicts never depend on
   query order. *)
type t = {
  mutable rules : rule list;
  mutable live : rule list;
  mutable live_from : float;
  mutable next_expiry : float;
}

let create () =
  { rules = []; live = []; live_from = neg_infinity; next_expiry = infinity }

let add t r =
  t.rules <- r :: t.rules;
  t.live <- r :: t.live;
  t.next_expiry <- Float.min t.next_expiry (until_of r)

(* Must drop the cache as well as the rules: a stale [live] list (or a
   stale [next_expiry] watermark) would let rules added after the
   clear inherit pruning state from windows that no longer exist —
   the "resurrected expired window" failure mode the regression test
   in test_net.ml pins down. *)
let clear t =
  t.rules <- [];
  t.live <- [];
  t.live_from <- neg_infinity;
  t.next_expiry <- infinity

let consult t ~now_ms =
  if now_ms < t.live_from then t.rules
  else begin
    if now_ms >= t.next_expiry then begin
      t.live <- List.filter (fun r -> until_of r > now_ms) t.live;
      t.next_expiry <-
        List.fold_left (fun acc r -> Float.min acc (until_of r)) infinity t.live;
      t.live_from <- now_ms
    end;
    t.live
  end

let window ~from_ms ~duration_ms =
  { from_ms; until_ms = from_ms +. duration_ms }

let crash t ~node ~from_ms ~duration_ms =
  add t (Crash { node; w = window ~from_ms ~duration_ms })

let drop t ~src ~dst ~from_ms ~duration_ms =
  add t (Drop { src; dst; w = window ~from_ms ~duration_ms })

let slow t ~src ~dst ~from_ms ~duration_ms ~extra_ms =
  add t (Slow { src; dst; w = window ~from_ms ~duration_ms; extra_ms })

let flaky t ~src ~dst ~from_ms ~duration_ms ~p_drop =
  add t (Flaky { src; dst; w = window ~from_ms ~duration_ms; p_drop })

let partition t ~groups ~from_ms ~duration_ms =
  let groups = List.map Address.Set.of_list groups in
  add t (Partition { groups; w = window ~from_ms ~duration_ms })

let skew t ~node ~from_ms ~duration_ms ~offset_ms =
  add t (Skew { node; w = window ~from_ms ~duration_ms; offset_ms })

let is_crashed t ~now_ms node =
  List.exists
    (function
      | Crash { node = n; w } -> Address.equal n node && in_window w now_ms
      | _ -> false)
    (consult t ~now_ms)

(* Oldest-first, straight off the authoritative list (not the pruning
   cache): the cluster's crash/recovery scheduler reads the whole
   timeline up front, including windows that will long have expired by
   the time it looks. *)
let crash_windows t node =
  List.rev t.rules
  |> List.filter_map (function
       | Crash { node = n; w } when Address.equal n node ->
           Some (w.from_ms, w.until_ms)
       | _ -> None)

let link_matches ~src ~dst rule_src rule_dst =
  Address.equal src rule_src && Address.equal dst rule_dst

let partition_severed groups src dst =
  (* Severed when the two endpoints appear in different groups; nodes
     absent from every group communicate freely. *)
  let find a = List.find_opt (fun g -> Address.Set.mem a g) groups in
  match (find src, find dst) with
  | Some ga, Some gb -> not (ga == gb)
  | _ -> false

(* Deterministic (no RNG draws): a node's clock error at a given
   instant is the sum of the active skew offsets, so fault-free runs
   and runs whose skew windows never overlap a query are bit-identical
   to a skew-free schedule. *)
let clock_offset t ~now_ms node =
  List.fold_left
    (fun acc rule ->
      match rule with
      | Skew { node = n; w; offset_ms }
        when Address.equal n node && in_window w now_ms ->
          acc +. offset_ms
      | _ -> acc)
    0.0
    (consult t ~now_ms)

let should_drop t rng ~now_ms ~src ~dst =
  is_crashed t ~now_ms src || is_crashed t ~now_ms dst
  || List.exists
       (function
         | Drop { src = s; dst = d; w } ->
             in_window w now_ms && link_matches ~src ~dst s d
         | Flaky { src = s; dst = d; w; p_drop } ->
             in_window w now_ms && link_matches ~src ~dst s d
             && Rng.bernoulli rng ~p:p_drop
         | Partition { groups; w } ->
             in_window w now_ms && partition_severed groups src dst
         | Crash _ | Slow _ | Skew _ -> false)
       (consult t ~now_ms)

let extra_delay t rng ~now_ms ~src ~dst =
  List.fold_left
    (fun acc rule ->
      match rule with
      | Slow { src = s; dst = d; w; extra_ms }
        when in_window w now_ms && link_matches ~src ~dst s d ->
          acc +. Rng.float rng extra_ms
      | _ -> acc)
    0.0
    (consult t ~now_ms)

let rule_count t = List.length t.rules

(* ------------------------------------------------------------------ *)
(* Serialization: schedules as JSON, for nemesis repro lines.          *)
(* ------------------------------------------------------------------ *)

let addr_json a = Json.String (Address.to_string a)

let window_fields w =
  [
    ("from_ms", Json.Number w.from_ms);
    ("duration_ms", Json.Number (w.until_ms -. w.from_ms));
  ]

let link_fields src dst w =
  (("src", addr_json src) :: ("dst", addr_json dst) :: window_fields w)

let rule_to_json = function
  | Crash { node; w } ->
      Json.Obj
        (("kind", Json.String "crash")
        :: ("node", addr_json node)
        :: window_fields w)
  | Drop { src; dst; w } ->
      Json.Obj (("kind", Json.String "drop") :: link_fields src dst w)
  | Slow { src; dst; w; extra_ms } ->
      Json.Obj
        ((("kind", Json.String "slow") :: link_fields src dst w)
        @ [ ("extra_ms", Json.Number extra_ms) ])
  | Flaky { src; dst; w; p_drop } ->
      Json.Obj
        ((("kind", Json.String "flaky") :: link_fields src dst w)
        @ [ ("p_drop", Json.Number p_drop) ])
  | Partition { groups; w } ->
      Json.Obj
        (("kind", Json.String "partition")
        :: ( "groups",
             Json.List
               (List.map
                  (fun g ->
                    Json.List
                      (List.map addr_json (Address.Set.elements g)))
                  groups) )
        :: window_fields w)
  | Skew { node; w; offset_ms } ->
      Json.Obj
        ((("kind", Json.String "skew")
         :: ("node", addr_json node)
         :: window_fields w)
        @ [ ("offset_ms", Json.Number offset_ms) ])

(* Rules are stored newest-first; serialize in the order they were
   added so [of_json] re-adds them in the same order and rebuilds an
   identical internal list (flaky rules draw from the RNG in list
   order, so order is part of behaviour). *)
let to_json t = Json.List (List.rev_map rule_to_json t.rules)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_addr ctx = function
  | Some (Json.String s) -> (
      match Address.of_string s with
      | Some a -> Ok a
      | None -> Error (Printf.sprintf "%s: bad address %S" ctx s))
  | _ -> Error (Printf.sprintf "%s: expected an address string" ctx)

let parse_float ctx = function
  | Some (Json.Number f) -> Ok f
  | _ -> Error (Printf.sprintf "%s: expected a number" ctx)

let rule_of_json j =
  match Json.member "kind" j with
  | Some (Json.String kind) -> (
      let* from_ms = parse_float "from_ms" (Json.member "from_ms" j) in
      let* duration_ms =
        parse_float "duration_ms" (Json.member "duration_ms" j)
      in
      let w = window ~from_ms ~duration_ms in
      let link () =
        let* src = parse_addr "src" (Json.member "src" j) in
        let* dst = parse_addr "dst" (Json.member "dst" j) in
        Ok (src, dst)
      in
      match kind with
      | "crash" ->
          let* node = parse_addr "node" (Json.member "node" j) in
          Ok (Crash { node; w })
      | "drop" ->
          let* src, dst = link () in
          Ok (Drop { src; dst; w })
      | "slow" ->
          let* src, dst = link () in
          let* extra_ms = parse_float "extra_ms" (Json.member "extra_ms" j) in
          Ok (Slow { src; dst; w; extra_ms })
      | "flaky" ->
          let* src, dst = link () in
          let* p_drop = parse_float "p_drop" (Json.member "p_drop" j) in
          Ok (Flaky { src; dst; w; p_drop })
      | "skew" ->
          let* node = parse_addr "node" (Json.member "node" j) in
          let* offset_ms = parse_float "offset_ms" (Json.member "offset_ms" j) in
          Ok (Skew { node; w; offset_ms })
      | "partition" -> (
          match Json.member "groups" j with
          | Some (Json.List groups) ->
              let* groups =
                List.fold_left
                  (fun acc g ->
                    let* acc = acc in
                    match g with
                    | Json.List members ->
                        let* members =
                          List.fold_left
                            (fun acc m ->
                              let* acc = acc in
                              let* a = parse_addr "group member" (Some m) in
                              Ok (a :: acc))
                            (Ok []) members
                        in
                        Ok (Address.Set.of_list members :: acc)
                    | _ -> Error "partition: group must be a list")
                  (Ok []) groups
              in
              Ok (Partition { groups = List.rev groups; w })
          | _ -> Error "partition: missing groups")
      | k -> Error (Printf.sprintf "unknown fault kind %S" k))
  | _ -> Error "fault rule: missing kind"

let of_json = function
  | Json.List rules ->
      let t = create () in
      let* () =
        List.fold_left
          (fun acc j ->
            let* () = acc in
            let* r = rule_of_json j in
            add t r;
            Ok ())
          (Ok ()) rules
      in
      Ok t
  | _ -> Error "fault schedule: expected a list"
