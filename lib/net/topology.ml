type t = {
  replica_regions : Region.t array;
  rtt_ms : Region.t -> Region.t -> float;
  jitter : float; (* relative stddev of RTT samples *)
  clients : (int, Region.t) Hashtbl.t;
  default_client_region : Region.t;
  lan_sigma : float option; (* absolute sigma for single-region LAN *)
}

let lan_mu_default = 0.4271
let lan_sigma_default = 0.0476

(* Mean RTTs between the paper's five AWS regions, in ms, calibrated to
   public inter-region measurements circa 2019. *)
let aws_pairs =
  [
    (Region.virginia, Region.ohio, 11.0);
    (Region.virginia, Region.california, 61.0);
    (Region.virginia, Region.ireland, 75.0);
    (Region.virginia, Region.japan, 162.0);
    (Region.ohio, Region.california, 50.0);
    (Region.ohio, Region.ireland, 86.0);
    (Region.ohio, Region.japan, 145.0);
    (Region.california, Region.ireland, 138.0);
    (Region.california, Region.japan, 107.0);
    (Region.ireland, Region.japan, 220.0);
  ]

let aws_rtt_ms a b =
  if Region.equal a b then lan_mu_default
  else
    let found =
      List.find_opt
        (fun (x, y, _) ->
          (Region.equal a x && Region.equal b y)
          || (Region.equal a y && Region.equal b x))
        aws_pairs
    in
    match found with Some (_, _, rtt) -> rtt | None -> 100.0

let make ~replica_regions ~rtt_ms ~jitter ~lan_sigma =
  let default_client_region =
    if Array.length replica_regions > 0 then replica_regions.(0)
    else Region.local
  in
  {
    replica_regions;
    rtt_ms;
    jitter;
    clients = Hashtbl.create 16;
    default_client_region;
    lan_sigma;
  }

let lan ~n_replicas ?(mu = lan_mu_default) ?(sigma = lan_sigma_default) () =
  assert (n_replicas > 0);
  make
    ~replica_regions:(Array.make n_replicas Region.local)
    ~rtt_ms:(fun _ _ -> mu)
    ~jitter:0.0 ~lan_sigma:(Some sigma)

let wan ~regions ~replicas_per_region ?(jitter = 0.05) () =
  assert (regions <> [] && replicas_per_region > 0);
  let regions_arr = Array.of_list regions in
  let nr = Array.length regions_arr in
  let n = nr * replicas_per_region in
  let replica_regions = Array.init n (fun i -> regions_arr.(i mod nr)) in
  make ~replica_regions ~rtt_ms:aws_rtt_ms ~jitter ~lan_sigma:None

let custom ~replica_regions ~rtt_ms ?(jitter = 0.05) () =
  assert (replica_regions <> []);
  make ~replica_regions:(Array.of_list replica_regions) ~rtt_ms ~jitter
    ~lan_sigma:None

let n_replicas t = Array.length t.replica_regions

let regions t =
  Array.fold_left
    (fun acc r -> if List.exists (Region.equal r) acc then acc else r :: acc)
    [] t.replica_regions
  |> List.rev

let region_of_replica t i =
  if i < 0 || i >= Array.length t.replica_regions then
    invalid_arg (Printf.sprintf "Topology.region_of_replica: %d" i);
  t.replica_regions.(i)

let replicas_in t region =
  let acc = ref [] in
  for i = Array.length t.replica_regions - 1 downto 0 do
    if Region.equal t.replica_regions.(i) region then acc := i :: !acc
  done;
  !acc

let assign_client t ~id ~region = Hashtbl.replace t.clients id region

let region_of t = function
  | Address.Replica i -> region_of_replica t i
  | Address.Client i -> (
      match Hashtbl.find_opt t.clients i with
      | Some r -> r
      | None -> t.default_client_region)

let rtt_mean t a b = t.rtt_ms a b

let[@inline] sample_rtt t rng a b =
  let ra = region_of t a and rb = region_of t b in
  let mu = t.rtt_ms ra rb in
  match t.lan_sigma with
  | Some sigma when Region.equal ra rb ->
      Float.max 0.01 (Rng.normal rng ~mu ~sigma)
  | _ ->
      if t.jitter <= 0.0 then mu
      else Float.max 0.01 (Rng.normal rng ~mu ~sigma:(mu *. t.jitter))

let[@inline] sample_delay t rng a b =
  if Address.equal a b then 0.005 (* loopback *)
  else sample_rtt t rng a b /. 2.0

(* Out-parameter form of [sample_delay] for the transport hot path:
   same RNG draws and IEEE operation order, but the result is written
   to [dst.(0)] and the [Float.max 0.01] clamp is expressed as a plain
   comparison (identical for the non-nan values a Gaussian over a
   finite mean produces), so no intermediate float is boxed. *)
let sample_delay_into t rng a b dst =
  if Address.equal a b then dst.(0) <- 0.005 (* loopback *)
  else begin
    let ra = region_of t a and rb = region_of t b in
    let mu = t.rtt_ms ra rb in
    let sampled =
      match t.lan_sigma with
      | Some sigma when Region.equal ra rb ->
          Rng.normal_into rng ~mu ~sigma dst;
          true
      | _ ->
          if t.jitter <= 0.0 then false
          else begin
            Rng.normal_into rng ~mu ~sigma:(mu *. t.jitter) dst;
            true
          end
    in
    if sampled then begin
      let x = dst.(0) in
      let rtt = if x > 0.01 then x else 0.01 in
      dst.(0) <- rtt /. 2.0
    end
    else dst.(0) <- mu /. 2.0
  end
