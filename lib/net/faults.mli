(** Fault injection, mirroring the four special commands of the Paxi
    client library (§4.2 Availability): [Crash(t)], [Drop(i,j,t)],
    [Slow(i,j,t)] and [Flaky(i,j,t)], plus network partitions.

    Faults are declared as schedules over virtual time and consulted by
    the transport on every delivery. *)

type t

val create : unit -> t

val crash : t -> node:Address.t -> from_ms:float -> duration_ms:float -> unit
(** Freeze [node]: while crashed it neither processes nor emits
    messages; in-flight messages addressed to it are dropped. *)

val drop : t -> src:Address.t -> dst:Address.t -> from_ms:float -> duration_ms:float -> unit
(** Drop every message from [src] to [dst] during the window. *)

val slow :
  t ->
  src:Address.t ->
  dst:Address.t ->
  from_ms:float ->
  duration_ms:float ->
  extra_ms:float ->
  unit
(** Delay messages on the link by a random amount in [\[0, extra_ms\]]. *)

val flaky :
  t ->
  src:Address.t ->
  dst:Address.t ->
  from_ms:float ->
  duration_ms:float ->
  p_drop:float ->
  unit
(** Drop each message on the link independently with probability
    [p_drop]. *)

val partition :
  t -> groups:Address.t list list -> from_ms:float -> duration_ms:float -> unit
(** Nodes can only talk within their own group during the window. *)

val skew :
  t ->
  node:Address.t ->
  from_ms:float ->
  duration_ms:float ->
  offset_ms:float ->
  unit
(** Shift [node]'s local clock by [offset_ms] (either sign) during the
    window. Only protocol-visible time is skewed — event scheduling
    and message delivery are untouched — so the fault attacks exactly
    the clock reads that lease expiry depends on. *)

val is_crashed : t -> now_ms:float -> Address.t -> bool

val crash_windows : t -> Address.t -> (float * float) list
(** All crash windows scheduled for [node], oldest-first, as
    [(from_ms, until_ms)] pairs — including windows already expired at
    query time. Lets the cluster engine pre-schedule crash and
    recovery edges for the whole run. *)

val clock_offset : t -> now_ms:float -> Address.t -> float
(** Sum of the active skew offsets for a node at [now_ms]; 0 when no
    skew window covers the instant. Deterministic — consults no RNG —
    so a schedule without skew rules leaves runs byte-identical. *)

val should_drop : t -> Rng.t -> now_ms:float -> src:Address.t -> dst:Address.t -> bool
(** Combined verdict of crash/drop/flaky/partition rules. *)

val extra_delay : t -> Rng.t -> now_ms:float -> src:Address.t -> dst:Address.t -> float
(** Additional latency from active [slow] rules (ms). *)

val clear : t -> unit
(** Remove every rule — including any internal expiry-pruning state,
    so rules added afterwards behave exactly as on a fresh schedule
    (a cleared schedule never resurrects expired windows). *)

val rule_count : t -> int

val to_json : t -> Json.t
(** Serialize the schedule, preserving the order rules were added in
    (flaky rules consume RNG draws in rule order, so order is part of
    behaviour). *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json s)] yields a schedule
    with verdict-identical [should_drop] / [extra_delay] /
    [is_crashed] behaviour, RNG draw for RNG draw. *)
