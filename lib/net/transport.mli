(** Virtual-time message transport with the Send / Broadcast /
    Multicast interface of the Paxi networking module (§4.1).

    A transport is polymorphic in the protocol's message type: each
    cluster instantiates one transport for its own message variant, so
    no serialization is needed inside the simulation; serialization
    {e cost} is still charged through the {!Procq} node model.

    Delivery of [send src dst m] at time [t]:
    + the sender's queue serializes the message ([t_out] + NIC time),
    + the link adds a sampled one-way delay (plus fault-injected slow
      delay), unless a drop/crash/partition rule discards the message,
    + the receiver's queue deserializes ([t_in] + NIC time), and the
      registered handler runs when that completes. *)

type 'm t

(** Tracing taps for the observability layer. [on_delivery] fires when
    a message enters the destination's processing queue (before its
    handler runs), carrying the send time, arrival time, and the
    message's own queueing-wait / service split; [on_transmit] fires
    when a sender's queue serializes an outgoing message or batch.
    Callbacks receive only values the transport already computed —
    they draw no randomness and schedule no events, so installing an
    observer never changes simulation results. *)
type 'm observer = {
  on_delivery :
    src:Address.t ->
    dst:Address.t ->
    size_bytes:int ->
    sent_ms:float ->
    arrival_ms:float ->
    wait_ms:float ->
    service_ms:float ->
    ready_ms:float ->
    'm ->
    unit;
  on_transmit :
    src:Address.t ->
    now_ms:float ->
    wait_ms:float ->
    service_ms:float ->
    copies:int ->
    size_bytes:int ->
    unit;
}

val set_observer : 'm t -> 'm observer option -> unit
(** Install (or clear) the tracing observer. With [None] — the default
    — the instrumented code paths are skipped entirely. *)

val inline_delivery : bool ref
(** When true (the default unless [PAXI_NO_INLINE_DELIVERY=1] is set in
    the environment), a delivery whose queue-ready completion is
    provably next in the global event order runs inline inside the
    arrival event instead of scheduling a second event. Firing order,
    RNG stream and all statistics are identical either way; flip this
    to [false] to force the two-event schedule (used by the
    determinism tests). *)

val pooling : bool ref
(** Escape hatch for the in-flight delivery-record free list,
    defaulting to [true] unless [PAXI_NO_POOLING=1] is set. With
    pooling off every delivery allocates fresh records and thunks;
    fixed-seed statistics must be byte-identical either way (pinned in
    [test_hotpath]). *)

val create :
  sim:Sim.t ->
  topology:Topology.t ->
  ?faults:Faults.t ->
  ?default_size_bytes:int ->
  ?processing:(int -> Procq.t) ->
  unit ->
  'm t
(** [processing i] supplies replica [i]'s node queue (defaults to
    {!Procq.create} defaults); clients always get a free queue.
    [default_size_bytes] defaults to 128, a small command. *)

val sim : 'm t -> Sim.t
val topology : 'm t -> Topology.t
val faults : 'm t -> Faults.t
val procq : 'm t -> Address.t -> Procq.t

val register : 'm t -> Address.t -> (src:Address.t -> 'm -> unit) -> unit
(** Install the message handler for an address (replaces any previous
    one). *)

val send : 'm t -> src:Address.t -> dst:Address.t -> ?size_bytes:int -> 'm -> unit

val broadcast : 'm t -> src:Address.t -> ?size_bytes:int -> 'm -> unit
(** Send to every replica except [src]; the CPU serializes once and the
    NIC transmits per copy (§5.2, footnote 2). *)

val multicast :
  'm t -> src:Address.t -> dsts:Address.t list -> ?size_bytes:int -> 'm -> unit

val sent_count : 'm t -> int
val delivered_count : 'm t -> int
val dropped_count : 'm t -> int
