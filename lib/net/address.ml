type t = Replica of int | Client of int

let replica i = Replica i
let client i = Client i
let is_replica = function Replica _ -> true | Client _ -> false
let is_client = function Client _ -> true | Replica _ -> false

let replica_id = function
  | Replica i -> i
  | Client i -> invalid_arg (Printf.sprintf "Address.replica_id: client %d" i)

let compare a b =
  match (a, b) with
  | Replica i, Replica j -> Int.compare i j
  | Client i, Client j -> Int.compare i j
  | Replica _, Client _ -> -1
  | Client _, Replica _ -> 1

let equal a b = compare a b = 0
let hash = function Replica i -> (2 * i) + 1 | Client i -> 2 * i

let pp ppf = function
  | Replica i -> Format.fprintf ppf "n%d" i
  | Client i -> Format.fprintf ppf "c%d" i

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  if String.length s < 2 then None
  else
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i when i >= 0 -> (
        match s.[0] with
        | 'n' -> Some (Replica i)
        | 'c' -> Some (Client i)
        | _ -> None)
    | _ -> None

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Table = Hashtbl.Make (Hashed)
