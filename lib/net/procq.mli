(** Single-queue node processing model (paper §3.2).

    The paper treats each node as one queue combining CPU and NIC: an
    incoming message waits for prior work to clear, is deserialized and
    handled by the CPU, then responses are serialized once and pushed
    through the NIC per copy. The service-time accounting matches §3.3:

    - incoming message: [t_in + size/bandwidth]
    - outgoing batch of [copies] messages: [t_out + copies*size/bandwidth]
      (CPU serializes a broadcast once; the NIC transmits each copy).

    Utilization statistics feed the busiest-node load analysis of §6. *)

type t

val create :
  ?t_in_ms:float ->
  ?t_out_ms:float ->
  ?bandwidth_mbps:float ->
  unit ->
  t
(** Defaults are calibrated to an m5.large-class node: [t_in = 0.012 ms],
    [t_out = 0.008 ms], 10 Gbit/s NIC. *)

val zero : unit -> t
(** A free queue (used for clients, which the paper does not model). *)

val occupy_incoming : t -> now_ms:float -> size_bytes:int -> float
(** Enqueue one incoming message arriving at [now_ms]; returns the
    virtual time at which its handler may run. *)

val occupy_outgoing : t -> now_ms:float -> copies:int -> size_bytes:int -> float
(** Serialize-and-transmit a batch; returns the departure time of the
    copies. *)

val occupy_incoming_split :
  t -> now_ms:float -> size_bytes:int -> float * float * float
(** Like {!occupy_incoming}, also splitting the message's own
    [(ready, wait, service)]: [ready = now + wait + service], with the
    same arithmetic (and the same [ready]) as the unsplit form — the
    tracing layer's per-hop wait/occupancy attribution. *)

val occupy_outgoing_split :
  t -> now_ms:float -> copies:int -> size_bytes:int -> float * float * float
(** Like {!occupy_outgoing}, split as [(departure, wait, service)]. *)

val occupy_incoming_into : t -> now_ms:float -> size_bytes:int -> float array -> unit
(** Like {!occupy_incoming}, storing the ready time in [dst.(0)]
    instead of returning it. Same accounting and bit-identical ready
    time; the out-parameter form keeps the per-message queue update
    allocation-free (a boxed float return allocates without
    flambda). *)

val occupy_outgoing_into :
  t -> now_ms:float -> copies:int -> size_bytes:int -> float array -> unit
(** Like {!occupy_outgoing}, storing the departure time in
    [dst.(0)]. *)

val busy_until : t -> float
val busy_time : t -> float
(** Total occupied time, for utilization = busy_time / elapsed. *)

val waited_ms : t -> float
(** Total queueing wait accumulated by messages before their
    processing started — the measured counterpart of the model's
    queue-wait term, summed over all messages. *)

val messages_processed : t -> int
val reset : t -> unit
