(* Runtime escape hatch for the collapsed-delivery optimisation: with
   PAXI_NO_INLINE_DELIVERY=1 (or by flipping the ref in a test) every
   delivery schedules its queue-ready completion as a real sim event,
   as before the collapse. Results must be identical either way — the
   determinism suite pins that. *)
let inline_delivery =
  ref (Sys.getenv_opt "PAXI_NO_INLINE_DELIVERY" <> Some "1")

(* Runtime escape hatch for the in-flight delivery record pool (the
   same convention as [Reliable.pooling]): with PAXI_NO_POOLING=1
   every delivery allocates fresh records and thunks. Results must be
   identical either way — the determinism suite pins that. *)
let pooling = ref (Sys.getenv_opt "PAXI_NO_POOLING" <> Some "1")

type 'm handler = src:Address.t -> 'm -> unit

(* Tracing taps. Both callbacks fire after the procq mutation with the
   values the transport already computed — they must not draw RNG or
   schedule events, so installing an observer cannot perturb a run. *)
type 'm observer = {
  on_delivery :
    src:Address.t ->
    dst:Address.t ->
    size_bytes:int ->
    sent_ms:float ->
    arrival_ms:float ->
    wait_ms:float ->
    service_ms:float ->
    ready_ms:float ->
    'm ->
    unit;
  on_transmit :
    src:Address.t ->
    now_ms:float ->
    wait_ms:float ->
    service_ms:float ->
    copies:int ->
    size_bytes:int ->
    unit;
}

(* One message in flight, from its arrival event to its queue-ready
   completion. Records are recycled on an intrusive free list
   ([d_next]; pointing at itself marks a detached record), each with
   its two event thunks ([arrive], [complete]) built once and reused
   for every message the record ever carries — the per-message wire
   path allocates one [Some msg] cell instead of two closures. *)
type 'm delivery = {
  mutable d_src : Address.t;
  mutable d_dst : Address.t;
  mutable d_size : int;
  mutable d_sent : float;
  mutable d_msg : 'm option; (* [None] while pooled, releasing the payload *)
  mutable arrive : unit -> unit;
  mutable complete : unit -> unit;
  mutable d_next : 'm delivery;
}

type 'm t = {
  sim : Sim.t;
  topology : Topology.t;
  faults : Faults.t;
  default_size_bytes : int;
  rng : Rng.t;
  (* replica addresses are dense ints — O(1) array lookup on the
     delivery hot path; clients (sparse ids) stay in hashtables. *)
  mutable r_handlers : 'm handler option array;
  mutable r_queues : Procq.t option array;
  c_handlers : 'm handler Address.Table.t;
  c_queues : Procq.t Address.Table.t;
  make_procq : int -> Procq.t;
  (* per-source broadcast destination lists, rebuilt only when the
     topology's replica count changes. *)
  mutable peers : Address.t list array;
  mutable peers_n : int;
  mutable dpool : 'm delivery; (* free-list head; [dsentinel] = empty *)
  dsentinel : 'm delivery;
  (* single-slot out-parameter for the [_into] procq/topology calls on
     the hot path: float-array stores and loads are unboxed, where a
     boxed float return would allocate per message. Each value is read
     back out before the next [_into] call overwrites the slot. *)
  scratch : float array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable observer : 'm observer option;
}

let create ~sim ~topology ?(faults = Faults.create ())
    ?(default_size_bytes = 128) ?processing () =
  let make_procq =
    match processing with Some f -> f | None -> fun _ -> Procq.create ()
  in
  let n = Topology.n_replicas topology in
  let rec dsentinel =
    {
      d_src = Address.replica 0;
      d_dst = Address.replica 0;
      d_size = 0;
      d_sent = 0.0;
      d_msg = None;
      arrive = ignore;
      complete = ignore;
      d_next = dsentinel;
    }
  in
  {
    sim;
    topology;
    faults;
    default_size_bytes;
    rng = Rng.split (Sim.rng sim);
    r_handlers = Array.make n None;
    r_queues = Array.make n None;
    c_handlers = Address.Table.create 32;
    c_queues = Address.Table.create 32;
    make_procq;
    peers = [||];
    peers_n = -1;
    dpool = dsentinel;
    dsentinel;
    scratch = Array.make 1 0.0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    observer = None;
  }

let sim t = t.sim
let topology t = t.topology
let faults t = t.faults
let set_observer t obs = t.observer <- obs

let grow_replica_arrays t n =
  let grow1 arr =
    let na = Array.make n None in
    Array.blit arr 0 na 0 (Array.length arr);
    na
  in
  t.r_handlers <- grow1 t.r_handlers;
  t.r_queues <- grow1 t.r_queues

let procq t addr =
  match addr with
  | Address.Replica i ->
      if i >= Array.length t.r_queues then grow_replica_arrays t (i + 1);
      (match t.r_queues.(i) with
      | Some q -> q
      | None ->
          let q = t.make_procq i in
          t.r_queues.(i) <- Some q;
          q)
  | Address.Client _ -> (
      match Address.Table.find_opt t.c_queues addr with
      | Some q -> q
      | None ->
          let q = Procq.zero () in
          Address.Table.add t.c_queues addr q;
          q)

let register t addr handler =
  match addr with
  | Address.Replica i ->
      if i >= Array.length t.r_handlers then grow_replica_arrays t (i + 1);
      t.r_handlers.(i) <- Some handler
  | Address.Client _ -> Address.Table.replace t.c_handlers addr handler

let handler_for t addr =
  match addr with
  | Address.Replica i ->
      if i < Array.length t.r_handlers then t.r_handlers.(i) else None
  | Address.Client _ -> Address.Table.find_opt t.c_handlers addr

let release_delivery t d =
  d.d_msg <- None;
  if !pooling then begin
    d.d_next <- t.dpool;
    t.dpool <- d
  end

(* Queue-ready completion: the handler runs with the message. The
   record is released first (with everything it carried read out), so
   a handler that sends — almost all of them — immediately reuses it
   for its own outbound messages. *)
let complete_delivery t d =
  let now = Sim.now t.sim in
  if Faults.is_crashed t.faults ~now_ms:now d.d_dst then begin
    t.dropped <- t.dropped + 1;
    release_delivery t d
  end
  else begin
    let src = d.d_src in
    let handler = handler_for t d.d_dst in
    let msg = d.d_msg in
    release_delivery t d;
    match (handler, msg) with
    | Some handler, Some msg ->
        t.delivered <- t.delivered + 1;
        handler ~src msg
    | _ -> t.dropped <- t.dropped + 1
  end

let arrival_delivery t d =
  let now = Sim.now t.sim in
  if Faults.is_crashed t.faults ~now_ms:now d.d_dst then begin
    t.dropped <- t.dropped + 1;
    release_delivery t d
  end
  else begin
    let q = procq t d.d_dst in
    let ready =
      match t.observer with
      | None ->
          Procq.occupy_incoming_into q ~now_ms:now ~size_bytes:d.d_size
            t.scratch;
          t.scratch.(0)
      | Some obs ->
          let ready, wait, service =
            Procq.occupy_incoming_split q ~now_ms:now ~size_bytes:d.d_size
          in
          (match d.d_msg with
          | Some msg ->
              obs.on_delivery ~src:d.d_src ~dst:d.d_dst ~size_bytes:d.d_size
                ~sent_ms:d.d_sent ~arrival_ms:now ~wait_ms:wait
                ~service_ms:service ~ready_ms:ready msg
          | None -> ());
          ready
    in
    (* Collapsed delivery: when no pending event precedes [ready] the
       queue-ready completion runs inline inside this arrival event
       instead of being scheduled. All RNG draws happened at send time
       and [complete] draws none, so the stream and the firing order
       are bit-identical to the scheduled path. *)
    if not (!inline_delivery && Sim.try_inline t.sim ~time:ready d.complete)
    then ignore @@ Sim.schedule_at t.sim ~time:ready d.complete
  end

let alloc_delivery t =
  let d = t.dpool in
  if !pooling && d != t.dsentinel then begin
    t.dpool <- d.d_next;
    d.d_next <- d;
    d
  end
  else begin
    let rec d =
      {
        d_src = Address.replica 0;
        d_dst = Address.replica 0;
        d_size = 0;
        d_sent = 0.0;
        d_msg = None;
        arrive = ignore;
        complete = ignore;
        d_next = d;
      }
    in
    d.arrive <- (fun () -> arrival_delivery t d);
    d.complete <- (fun () -> complete_delivery t d);
    d
  end

let deliver t ~src ~dst ~size_bytes ~sent msg ~arrival =
  let d = alloc_delivery t in
  d.d_src <- src;
  d.d_dst <- dst;
  d.d_size <- size_bytes;
  d.d_sent <- sent;
  d.d_msg <- Some msg;
  ignore @@ Sim.schedule_at t.sim ~time:arrival d.arrive

(* Single-destination fast path. Most traffic — client requests,
   replies, forwards, acks — has exactly one destination, so skip the
   list length/iter machinery of the general [dispatch]. Accounting
   and RNG draw order are identical to [dispatch ~dsts:[dst]]: crash
   check, outgoing occupancy for one copy, drop draw, delay draw,
   extra-delay draw. *)
let send_one t ~src ~dst ~size_bytes msg =
  let now = Sim.now t.sim in
  if Faults.is_crashed t.faults ~now_ms:now src then begin
    (* a crashed sender still "attempts" the send: count it in [sent]
       exactly like the live path so sent = delivered + dropped +
       in-flight holds on both paths. *)
    t.sent <- t.sent + 1;
    t.dropped <- t.dropped + 1
  end
  else begin
    let q = procq t src in
    let departure =
      match t.observer with
      | None ->
          Procq.occupy_outgoing_into q ~now_ms:now ~copies:1 ~size_bytes
            t.scratch;
          t.scratch.(0)
      | Some obs ->
          let departure, wait, service =
            Procq.occupy_outgoing_split q ~now_ms:now ~copies:1 ~size_bytes
          in
          obs.on_transmit ~src ~now_ms:now ~wait_ms:wait ~service_ms:service
            ~copies:1 ~size_bytes;
          departure
    in
    t.sent <- t.sent + 1;
    if Faults.should_drop t.faults t.rng ~now_ms:now ~src ~dst then
      t.dropped <- t.dropped + 1
    else begin
      Topology.sample_delay_into t.topology t.rng src dst t.scratch;
      let delay = t.scratch.(0) in
      let extra = Faults.extra_delay t.faults t.rng ~now_ms:now ~src ~dst in
      deliver t ~src ~dst ~size_bytes ~sent:now msg
        ~arrival:(departure +. delay +. extra)
    end
  end

let dispatch t ~src ~dsts ~size_bytes msg =
  match dsts with
  | [] -> ()
  | [ dst ] -> send_one t ~src ~dst ~size_bytes msg
  | dsts ->
      let now = Sim.now t.sim in
      if Faults.is_crashed t.faults ~now_ms:now src then begin
        let copies = List.length dsts in
        t.sent <- t.sent + copies;
        t.dropped <- t.dropped + copies
      end
      else begin
        let copies = List.length dsts in
        let q = procq t src in
        let departure =
          match t.observer with
          | None ->
              Procq.occupy_outgoing_into q ~now_ms:now ~copies ~size_bytes
                t.scratch;
              t.scratch.(0)
          | Some obs ->
              let departure, wait, service =
                Procq.occupy_outgoing_split q ~now_ms:now ~copies ~size_bytes
              in
              obs.on_transmit ~src ~now_ms:now ~wait_ms:wait
                ~service_ms:service ~copies ~size_bytes;
              departure
        in
        List.iter
          (fun dst ->
            t.sent <- t.sent + 1;
            if Faults.should_drop t.faults t.rng ~now_ms:now ~src ~dst then
              t.dropped <- t.dropped + 1
            else begin
              Topology.sample_delay_into t.topology t.rng src dst t.scratch;
              let delay = t.scratch.(0) in
              let extra =
                Faults.extra_delay t.faults t.rng ~now_ms:now ~src ~dst
              in
              deliver t ~src ~dst ~size_bytes ~sent:now msg
                ~arrival:(departure +. delay +. extra)
            end)
          dsts
      end

let send t ~src ~dst ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  send_one t ~src ~dst ~size_bytes msg

let peers_of t src =
  let n = Topology.n_replicas t.topology in
  if n <> t.peers_n then begin
    t.peers <-
      Array.init n (fun s ->
          let dsts = ref [] in
          for i = n - 1 downto 0 do
            if i <> s then dsts := Address.replica i :: !dsts
          done;
          !dsts);
    t.peers_n <- n
  end;
  match src with
  | Address.Replica i when i < n -> t.peers.(i)
  | _ ->
      (* non-replica broadcaster: no cached list; build once *)
      let dsts = ref [] in
      for i = n - 1 downto 0 do
        let a = Address.replica i in
        if not (Address.equal a src) then dsts := a :: !dsts
      done;
      !dsts

let broadcast t ~src ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  dispatch t ~src ~dsts:(peers_of t src) ~size_bytes msg

let multicast t ~src ~dsts ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  dispatch t ~src ~dsts ~size_bytes msg

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
