type 'm t = {
  sim : Sim.t;
  topology : Topology.t;
  faults : Faults.t;
  default_size_bytes : int;
  rng : Rng.t;
  handlers : (src:Address.t -> 'm -> unit) Address.Table.t;
  queues : Procq.t Address.Table.t;
  make_procq : int -> Procq.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create ~sim ~topology ?(faults = Faults.create ())
    ?(default_size_bytes = 128) ?processing () =
  let make_procq =
    match processing with Some f -> f | None -> fun _ -> Procq.create ()
  in
  {
    sim;
    topology;
    faults;
    default_size_bytes;
    rng = Rng.split (Sim.rng sim);
    handlers = Address.Table.create 32;
    queues = Address.Table.create 32;
    make_procq;
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let sim t = t.sim
let topology t = t.topology
let faults t = t.faults

let procq t addr =
  match Address.Table.find_opt t.queues addr with
  | Some q -> q
  | None ->
      let q =
        match addr with
        | Address.Replica i -> t.make_procq i
        | Address.Client _ -> Procq.zero ()
      in
      Address.Table.add t.queues addr q;
      q

let register t addr handler = Address.Table.replace t.handlers addr handler

let deliver t ~src ~dst ~size_bytes msg ~arrival =
  Sim.schedule_at t.sim ~time:arrival (fun () ->
      let now = Sim.now t.sim in
      if Faults.is_crashed t.faults ~now_ms:now dst then
        t.dropped <- t.dropped + 1
      else begin
        let q = procq t dst in
        let ready = Procq.occupy_incoming q ~now_ms:now ~size_bytes in
        ignore
        @@ Sim.schedule_at t.sim ~time:ready (fun () ->
            let now = Sim.now t.sim in
            if Faults.is_crashed t.faults ~now_ms:now dst then
              t.dropped <- t.dropped + 1
            else
              match Address.Table.find_opt t.handlers dst with
              | Some handler ->
                  t.delivered <- t.delivered + 1;
                  handler ~src msg
              | None -> t.dropped <- t.dropped + 1)
      end)
  |> ignore

(* Single-destination fast path. Most traffic — client requests,
   replies, forwards, acks — has exactly one destination, so skip the
   list length/iter machinery of the general [dispatch]. Accounting
   and RNG draw order are identical to [dispatch ~dsts:[dst]]: crash
   check, outgoing occupancy for one copy, drop draw, delay draw,
   extra-delay draw. *)
let send_one t ~src ~dst ~size_bytes msg =
  let now = Sim.now t.sim in
  if Faults.is_crashed t.faults ~now_ms:now src then
    t.dropped <- t.dropped + 1
  else begin
    let q = procq t src in
    let departure = Procq.occupy_outgoing q ~now_ms:now ~copies:1 ~size_bytes in
    t.sent <- t.sent + 1;
    if Faults.should_drop t.faults t.rng ~now_ms:now ~src ~dst then
      t.dropped <- t.dropped + 1
    else begin
      let delay = Topology.sample_delay t.topology t.rng src dst in
      let extra = Faults.extra_delay t.faults t.rng ~now_ms:now ~src ~dst in
      deliver t ~src ~dst ~size_bytes msg ~arrival:(departure +. delay +. extra)
    end
  end

let dispatch t ~src ~dsts ~size_bytes msg =
  match dsts with
  | [] -> ()
  | [ dst ] -> send_one t ~src ~dst ~size_bytes msg
  | dsts ->
      let now = Sim.now t.sim in
      if Faults.is_crashed t.faults ~now_ms:now src then
        t.dropped <- t.dropped + List.length dsts
      else begin
        let copies = List.length dsts in
        let q = procq t src in
        let departure =
          Procq.occupy_outgoing q ~now_ms:now ~copies ~size_bytes
        in
        List.iter
          (fun dst ->
            t.sent <- t.sent + 1;
            if Faults.should_drop t.faults t.rng ~now_ms:now ~src ~dst then
              t.dropped <- t.dropped + 1
            else begin
              let delay = Topology.sample_delay t.topology t.rng src dst in
              let extra =
                Faults.extra_delay t.faults t.rng ~now_ms:now ~src ~dst
              in
              deliver t ~src ~dst ~size_bytes msg
                ~arrival:(departure +. delay +. extra)
            end)
          dsts
      end

let send t ~src ~dst ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  send_one t ~src ~dst ~size_bytes msg

let broadcast t ~src ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  let n = Topology.n_replicas t.topology in
  let dsts = ref [] in
  for i = n - 1 downto 0 do
    let a = Address.replica i in
    if not (Address.equal a src) then dsts := a :: !dsts
  done;
  dispatch t ~src ~dsts:!dsts ~size_bytes msg

let multicast t ~src ~dsts ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  dispatch t ~src ~dsts ~size_bytes msg

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
