(* Runtime escape hatch for the collapsed-delivery optimisation: with
   PAXI_NO_INLINE_DELIVERY=1 (or by flipping the ref in a test) every
   delivery schedules its queue-ready completion as a real sim event,
   as before the collapse. Results must be identical either way — the
   determinism suite pins that. *)
let inline_delivery =
  ref (Sys.getenv_opt "PAXI_NO_INLINE_DELIVERY" <> Some "1")

type 'm handler = src:Address.t -> 'm -> unit

(* Tracing taps. Both callbacks fire after the procq mutation with the
   values the transport already computed — they must not draw RNG or
   schedule events, so installing an observer cannot perturb a run. *)
type 'm observer = {
  on_delivery :
    src:Address.t ->
    dst:Address.t ->
    size_bytes:int ->
    sent_ms:float ->
    arrival_ms:float ->
    wait_ms:float ->
    service_ms:float ->
    ready_ms:float ->
    'm ->
    unit;
  on_transmit :
    src:Address.t ->
    now_ms:float ->
    wait_ms:float ->
    service_ms:float ->
    copies:int ->
    size_bytes:int ->
    unit;
}

type 'm t = {
  sim : Sim.t;
  topology : Topology.t;
  faults : Faults.t;
  default_size_bytes : int;
  rng : Rng.t;
  (* replica addresses are dense ints — O(1) array lookup on the
     delivery hot path; clients (sparse ids) stay in hashtables. *)
  mutable r_handlers : 'm handler option array;
  mutable r_queues : Procq.t option array;
  c_handlers : 'm handler Address.Table.t;
  c_queues : Procq.t Address.Table.t;
  make_procq : int -> Procq.t;
  (* per-source broadcast destination lists, rebuilt only when the
     topology's replica count changes. *)
  mutable peers : Address.t list array;
  mutable peers_n : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable observer : 'm observer option;
}

let create ~sim ~topology ?(faults = Faults.create ())
    ?(default_size_bytes = 128) ?processing () =
  let make_procq =
    match processing with Some f -> f | None -> fun _ -> Procq.create ()
  in
  let n = Topology.n_replicas topology in
  {
    sim;
    topology;
    faults;
    default_size_bytes;
    rng = Rng.split (Sim.rng sim);
    r_handlers = Array.make n None;
    r_queues = Array.make n None;
    c_handlers = Address.Table.create 32;
    c_queues = Address.Table.create 32;
    make_procq;
    peers = [||];
    peers_n = -1;
    sent = 0;
    delivered = 0;
    dropped = 0;
    observer = None;
  }

let sim t = t.sim
let topology t = t.topology
let faults t = t.faults
let set_observer t obs = t.observer <- obs

let grow_replica_arrays t n =
  let grow1 arr =
    let na = Array.make n None in
    Array.blit arr 0 na 0 (Array.length arr);
    na
  in
  t.r_handlers <- grow1 t.r_handlers;
  t.r_queues <- grow1 t.r_queues

let procq t addr =
  match addr with
  | Address.Replica i ->
      if i >= Array.length t.r_queues then grow_replica_arrays t (i + 1);
      (match t.r_queues.(i) with
      | Some q -> q
      | None ->
          let q = t.make_procq i in
          t.r_queues.(i) <- Some q;
          q)
  | Address.Client _ -> (
      match Address.Table.find_opt t.c_queues addr with
      | Some q -> q
      | None ->
          let q = Procq.zero () in
          Address.Table.add t.c_queues addr q;
          q)

let register t addr handler =
  match addr with
  | Address.Replica i ->
      if i >= Array.length t.r_handlers then grow_replica_arrays t (i + 1);
      t.r_handlers.(i) <- Some handler
  | Address.Client _ -> Address.Table.replace t.c_handlers addr handler

let handler_for t addr =
  match addr with
  | Address.Replica i ->
      if i < Array.length t.r_handlers then t.r_handlers.(i) else None
  | Address.Client _ -> Address.Table.find_opt t.c_handlers addr

let deliver t ~src ~dst ~size_bytes ~sent msg ~arrival =
  Sim.schedule_at t.sim ~time:arrival (fun () ->
      let now = Sim.now t.sim in
      if Faults.is_crashed t.faults ~now_ms:now dst then
        t.dropped <- t.dropped + 1
      else begin
        let q = procq t dst in
        let ready =
          match t.observer with
          | None -> Procq.occupy_incoming q ~now_ms:now ~size_bytes
          | Some obs ->
              let ready, wait, service =
                Procq.occupy_incoming_split q ~now_ms:now ~size_bytes
              in
              obs.on_delivery ~src ~dst ~size_bytes ~sent_ms:sent
                ~arrival_ms:now ~wait_ms:wait ~service_ms:service
                ~ready_ms:ready msg;
              ready
        in
        let complete () =
          let now = Sim.now t.sim in
          if Faults.is_crashed t.faults ~now_ms:now dst then
            t.dropped <- t.dropped + 1
          else
            match handler_for t dst with
            | Some handler ->
                t.delivered <- t.delivered + 1;
                handler ~src msg
            | None -> t.dropped <- t.dropped + 1
        in
        (* Collapsed delivery: when no pending event precedes [ready]
           the queue-ready completion runs inline inside this arrival
           event instead of being scheduled. All RNG draws happened at
           send time and [complete] draws none, so the stream and the
           firing order are bit-identical to the scheduled path. *)
        if not (!inline_delivery && Sim.try_inline t.sim ~time:ready complete)
        then ignore @@ Sim.schedule_at t.sim ~time:ready complete
      end)
  |> ignore

(* Single-destination fast path. Most traffic — client requests,
   replies, forwards, acks — has exactly one destination, so skip the
   list length/iter machinery of the general [dispatch]. Accounting
   and RNG draw order are identical to [dispatch ~dsts:[dst]]: crash
   check, outgoing occupancy for one copy, drop draw, delay draw,
   extra-delay draw. *)
let send_one t ~src ~dst ~size_bytes msg =
  let now = Sim.now t.sim in
  if Faults.is_crashed t.faults ~now_ms:now src then begin
    (* a crashed sender still "attempts" the send: count it in [sent]
       exactly like the live path so sent = delivered + dropped +
       in-flight holds on both paths. *)
    t.sent <- t.sent + 1;
    t.dropped <- t.dropped + 1
  end
  else begin
    let q = procq t src in
    let departure =
      match t.observer with
      | None -> Procq.occupy_outgoing q ~now_ms:now ~copies:1 ~size_bytes
      | Some obs ->
          let departure, wait, service =
            Procq.occupy_outgoing_split q ~now_ms:now ~copies:1 ~size_bytes
          in
          obs.on_transmit ~src ~now_ms:now ~wait_ms:wait ~service_ms:service
            ~copies:1 ~size_bytes;
          departure
    in
    t.sent <- t.sent + 1;
    if Faults.should_drop t.faults t.rng ~now_ms:now ~src ~dst then
      t.dropped <- t.dropped + 1
    else begin
      let delay = Topology.sample_delay t.topology t.rng src dst in
      let extra = Faults.extra_delay t.faults t.rng ~now_ms:now ~src ~dst in
      deliver t ~src ~dst ~size_bytes ~sent:now msg
        ~arrival:(departure +. delay +. extra)
    end
  end

let dispatch t ~src ~dsts ~size_bytes msg =
  match dsts with
  | [] -> ()
  | [ dst ] -> send_one t ~src ~dst ~size_bytes msg
  | dsts ->
      let now = Sim.now t.sim in
      if Faults.is_crashed t.faults ~now_ms:now src then begin
        let copies = List.length dsts in
        t.sent <- t.sent + copies;
        t.dropped <- t.dropped + copies
      end
      else begin
        let copies = List.length dsts in
        let q = procq t src in
        let departure =
          match t.observer with
          | None -> Procq.occupy_outgoing q ~now_ms:now ~copies ~size_bytes
          | Some obs ->
              let departure, wait, service =
                Procq.occupy_outgoing_split q ~now_ms:now ~copies ~size_bytes
              in
              obs.on_transmit ~src ~now_ms:now ~wait_ms:wait
                ~service_ms:service ~copies ~size_bytes;
              departure
        in
        List.iter
          (fun dst ->
            t.sent <- t.sent + 1;
            if Faults.should_drop t.faults t.rng ~now_ms:now ~src ~dst then
              t.dropped <- t.dropped + 1
            else begin
              let delay = Topology.sample_delay t.topology t.rng src dst in
              let extra =
                Faults.extra_delay t.faults t.rng ~now_ms:now ~src ~dst
              in
              deliver t ~src ~dst ~size_bytes ~sent:now msg
                ~arrival:(departure +. delay +. extra)
            end)
          dsts
      end

let send t ~src ~dst ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  send_one t ~src ~dst ~size_bytes msg

let peers_of t src =
  let n = Topology.n_replicas t.topology in
  if n <> t.peers_n then begin
    t.peers <-
      Array.init n (fun s ->
          let dsts = ref [] in
          for i = n - 1 downto 0 do
            if i <> s then dsts := Address.replica i :: !dsts
          done;
          !dsts);
    t.peers_n <- n
  end;
  match src with
  | Address.Replica i when i < n -> t.peers.(i)
  | _ ->
      (* non-replica broadcaster: no cached list; build once *)
      let dsts = ref [] in
      for i = n - 1 downto 0 do
        let a = Address.replica i in
        if not (Address.equal a src) then dsts := a :: !dsts
      done;
      !dsts

let broadcast t ~src ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  dispatch t ~src ~dsts:(peers_of t src) ~size_bytes msg

let multicast t ~src ~dsts ?size_bytes msg =
  let size_bytes = Option.value size_bytes ~default:t.default_size_bytes in
  dispatch t ~src ~dsts ~size_bytes msg

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
