(* The three running floats live in a 3-slot float array rather than
   mutable record fields: the record also holds ints, so it is not a
   flat float record, and without flambda every store to a mutable
   boxed-float field would allocate a fresh box. Float-array loads and
   stores are always unboxed.  Slots: 0 = busy_until, 1 = busy_time,
   2 = waited. *)
type t = {
  t_in_ms : float;
  t_out_ms : float;
  bytes_per_ms : float; (* NIC throughput *)
  s : float array;
  mutable processed : int;
  free : bool;
}

let create ?(t_in_ms = 0.012) ?(t_out_ms = 0.008) ?(bandwidth_mbps = 10_000.0)
    () =
  {
    t_in_ms;
    t_out_ms;
    (* mbps are megabits/s: bytes per ms = mbps * 1e6 / 8 / 1e3 *)
    bytes_per_ms = bandwidth_mbps *. 125.0;
    s = Array.make 3 0.0;
    processed = 0;
    free = false;
  }

let zero () =
  {
    t_in_ms = 0.0;
    t_out_ms = 0.0;
    bytes_per_ms = infinity;
    s = Array.make 3 0.0;
    processed = 0;
    free = true;
  }

(* [Float.max now_ms busy_until] spelled as a comparison: identical
   for the non-nan, non-negative timestamps the queue ever sees, and a
   cross-module [Float.max] call boxes both operands and the result. *)
let[@inline] occupy t ~now_ms ~cost =
  if t.free then now_ms
  else begin
    let b = t.s.(0) in
    let start = if now_ms > b then now_ms else b in
    let finish = start +. cost in
    t.s.(0) <- finish;
    t.s.(1) <- t.s.(1) +. cost;
    t.s.(2) <- t.s.(2) +. (start -. now_ms);
    finish
  end

(* Same arithmetic as [occupy] but also reports the message's own
   queueing wait and service split — the tracing layer's per-hop
   attribution. The [ready] value is bit-identical to [occupy]'s. *)
let[@inline] occupy_split t ~now_ms ~cost =
  if t.free then (now_ms, 0.0, 0.0)
  else begin
    let b = t.s.(0) in
    let start = if now_ms > b then now_ms else b in
    let finish = start +. cost in
    t.s.(0) <- finish;
    t.s.(1) <- t.s.(1) +. cost;
    t.s.(2) <- t.s.(2) +. (start -. now_ms);
    (finish, start -. now_ms, cost)
  end

let[@inline] nic_cost t ~size_bytes =
  if t.free then 0.0 else float_of_int size_bytes /. t.bytes_per_ms

let[@inline] occupy_incoming t ~now_ms ~size_bytes =
  t.processed <- t.processed + 1;
  occupy t ~now_ms ~cost:(t.t_in_ms +. nic_cost t ~size_bytes)

let[@inline] occupy_outgoing t ~now_ms ~copies ~size_bytes =
  t.processed <- t.processed + 1;
  occupy t ~now_ms
    ~cost:(t.t_out_ms +. (float_of_int copies *. nic_cost t ~size_bytes))

let[@inline] occupy_incoming_split t ~now_ms ~size_bytes =
  t.processed <- t.processed + 1;
  occupy_split t ~now_ms ~cost:(t.t_in_ms +. nic_cost t ~size_bytes)

let[@inline] occupy_outgoing_split t ~now_ms ~copies ~size_bytes =
  t.processed <- t.processed + 1;
  occupy_split t ~now_ms
    ~cost:(t.t_out_ms +. (float_of_int copies *. nic_cost t ~size_bytes))

(* Out-parameter forms for the transport hot path: same accounting and
   IEEE operation order as [occupy_incoming]/[occupy_outgoing], but
   the ready time lands in [dst.(0)] instead of a boxed return. *)
let occupy_incoming_into t ~now_ms ~size_bytes dst =
  t.processed <- t.processed + 1;
  if t.free then dst.(0) <- now_ms
  else begin
    let cost = t.t_in_ms +. (float_of_int size_bytes /. t.bytes_per_ms) in
    let b = t.s.(0) in
    let start = if now_ms > b then now_ms else b in
    let finish = start +. cost in
    t.s.(0) <- finish;
    t.s.(1) <- t.s.(1) +. cost;
    t.s.(2) <- t.s.(2) +. (start -. now_ms);
    dst.(0) <- finish
  end

let occupy_outgoing_into t ~now_ms ~copies ~size_bytes dst =
  t.processed <- t.processed + 1;
  if t.free then dst.(0) <- now_ms
  else begin
    let cost =
      t.t_out_ms
      +. (float_of_int copies *. (float_of_int size_bytes /. t.bytes_per_ms))
    in
    let b = t.s.(0) in
    let start = if now_ms > b then now_ms else b in
    let finish = start +. cost in
    t.s.(0) <- finish;
    t.s.(1) <- t.s.(1) +. cost;
    t.s.(2) <- t.s.(2) +. (start -. now_ms);
    dst.(0) <- finish
  end

let busy_until t = t.s.(0)
let busy_time t = t.s.(1)
let waited_ms t = t.s.(2)
let messages_processed t = t.processed

let reset t =
  t.s.(0) <- 0.0;
  t.s.(1) <- 0.0;
  t.s.(2) <- 0.0;
  t.processed <- 0
