type t = {
  t_in_ms : float;
  t_out_ms : float;
  bytes_per_ms : float; (* NIC throughput *)
  mutable busy_until : float;
  mutable busy_time : float;
  mutable waited : float;
  mutable processed : int;
  free : bool;
}

let create ?(t_in_ms = 0.012) ?(t_out_ms = 0.008) ?(bandwidth_mbps = 10_000.0)
    () =
  {
    t_in_ms;
    t_out_ms;
    (* mbps are megabits/s: bytes per ms = mbps * 1e6 / 8 / 1e3 *)
    bytes_per_ms = bandwidth_mbps *. 125.0;
    busy_until = 0.0;
    busy_time = 0.0;
    waited = 0.0;
    processed = 0;
    free = false;
  }

let zero () =
  {
    t_in_ms = 0.0;
    t_out_ms = 0.0;
    bytes_per_ms = infinity;
    busy_until = 0.0;
    busy_time = 0.0;
    waited = 0.0;
    processed = 0;
    free = true;
  }

let occupy t ~now_ms ~cost =
  if t.free then now_ms
  else begin
    let start = Float.max now_ms t.busy_until in
    let finish = start +. cost in
    t.busy_until <- finish;
    t.busy_time <- t.busy_time +. cost;
    t.waited <- t.waited +. (start -. now_ms);
    finish
  end

(* Same arithmetic as [occupy] but also reports the message's own
   queueing wait and service split — the tracing layer's per-hop
   attribution. The [ready] value is bit-identical to [occupy]'s. *)
let occupy_split t ~now_ms ~cost =
  if t.free then (now_ms, 0.0, 0.0)
  else begin
    let start = Float.max now_ms t.busy_until in
    let finish = start +. cost in
    t.busy_until <- finish;
    t.busy_time <- t.busy_time +. cost;
    t.waited <- t.waited +. (start -. now_ms);
    (finish, start -. now_ms, cost)
  end

let nic_cost t ~size_bytes =
  if t.free then 0.0 else float_of_int size_bytes /. t.bytes_per_ms

let occupy_incoming t ~now_ms ~size_bytes =
  t.processed <- t.processed + 1;
  occupy t ~now_ms ~cost:(t.t_in_ms +. nic_cost t ~size_bytes)

let occupy_outgoing t ~now_ms ~copies ~size_bytes =
  t.processed <- t.processed + 1;
  occupy t ~now_ms
    ~cost:(t.t_out_ms +. (float_of_int copies *. nic_cost t ~size_bytes))

let occupy_incoming_split t ~now_ms ~size_bytes =
  t.processed <- t.processed + 1;
  occupy_split t ~now_ms ~cost:(t.t_in_ms +. nic_cost t ~size_bytes)

let occupy_outgoing_split t ~now_ms ~copies ~size_bytes =
  t.processed <- t.processed + 1;
  occupy_split t ~now_ms
    ~cost:(t.t_out_ms +. (float_of_int copies *. nic_cost t ~size_bytes))

let busy_until t = t.busy_until
let busy_time t = t.busy_time
let waited_ms t = t.waited
let messages_processed t = t.processed

let reset t =
  t.busy_until <- 0.0;
  t.busy_time <- 0.0;
  t.waited <- 0.0;
  t.processed <- 0
