(** Reliable-delivery channel layered on {!Transport}: at-least-once
    outbound delivery with exponential-backoff retransmission,
    receiver-side deduplication, and cancel-on-ack.

    Every replica owns one endpoint. An outbound message registered
    under an ack key ({!post} / {!post_multi}) is retransmitted to
    its still-unacked destinations on a backoff timer until every
    destination settles, the post is withdrawn, or the policy's try
    budget runs out. Settling happens two ways, chosen per post:

    - {e Piggyback}: the protocol already answers the message with a
      reply of its own (P2b to a P2a, AppendReply to AppendEntries).
      The layer adds no traffic and never suppresses duplicates —
      handlers are idempotent and re-answering a duplicate is exactly
      what regenerates a lost reply. The protocol calls {!settle}
      when the natural reply arrives.
    - {e Explicit}: the message has no natural reply (a chain hop, a
      token grant). The receiving endpoint acknowledges every receipt
      with an [Ack] packet, suppresses re-delivery of duplicates
      (counted in {!dup_drops}), and the sending endpoint settles
      itself when the ack arrives.

    The whole layer is {e inert} when [policy.max_tries = 0] (the
    default configuration): posts degrade to plain transport sends
    with identical queue occupancy and RNG draws, no state is kept,
    no timers are scheduled, and no acks are emitted — fixed-seed
    fault-free statistics are byte-identical to a build without the
    layer. With retransmission enabled but no loss, every timer is
    cancelled before it fires; cancelled events are skipped by {!Sim}
    without counting or drawing randomness, so piggyback-mode traffic
    is still byte-identical to the inert path.

    The per-post hot path is (near-)allocation-free: post records are
    recycled on a free list with a pre-built retransmit thunk each
    ({!pooling} is the escape hatch), receiver dedup uses packed
    [(sender, key)] int keys over an int-keyed table, and every
    payload advertises the sender's settled {e frontier} — the key
    below which every post has closed — so receivers prune dedup
    entries (and drop late stray copies) instead of remembering every
    key forever. *)

val pooling : bool ref
(** Escape hatch for the post-record free list, defaulting to [true]
    unless [PAXI_NO_POOLING=1] is set. With pooling off every post
    allocates fresh records and thunks; fixed-seed statistics must be
    byte-identical either way (pinned in [test_hotpath]). *)

type policy = { base_ms : float; max_ms : float; max_tries : int }
(** Retransmit after [base_ms], then doubling up to [max_ms], at most
    [max_tries] times per post. [max_tries = 0] disables the layer. *)

val inert : policy
(** [{ base_ms = 0.; max_ms = 0.; max_tries = 0 }]. *)

type ack_mode = Piggyback | Explicit

type 'p packet =
  | Payload of { key : int; frontier : int; ack : ack_mode; msg : 'p }
      (** [frontier] is the sender's settled frontier at send time:
          every key below it is closed, so the receiver may forget
          (and refuse) those keys. *)
  | Ack of { key : int }
      (** Ack keys are scoped by the (sender, receiver) pair: the
          receiving endpoint settles post [key] for the ack's source. *)

type ('p, 'm) t
(** An endpoint shipping ['p] protocol messages over an ['m]-typed
    transport (['m] is the cluster's envelope type). *)

val create :
  transport:'m Transport.t ->
  self:Address.t ->
  policy:policy ->
  inject:('p packet -> 'm) ->
  ('p, 'm) t
(** [inject] wraps a packet into the transport's message type; the
    cluster unwraps on receipt and hands the packet to {!on_packet}. *)

val fresh : _ t -> int
(** A key never handed out by this endpoint before. Keys only need to
    be unique per sender — the wire scopes them by source. *)

val post :
  ('p, 'm) t ->
  ?key:int ->
  ?size_bytes:int ->
  ack:ack_mode ->
  dst:Address.t ->
  'p ->
  int
(** Send [msg] to [dst] and keep retransmitting until settled.
    Returns the key (a {!fresh} one unless [?key] pins it — reusing a
    live key adds [dst] to that post's outstanding set). Pinning a
    key below the settled frontier raises [Invalid_argument] for
    explicit-ack posts: receivers have already been told to forget
    it. *)

val post_multi :
  ('p, 'm) t ->
  ?key:int ->
  ?size_bytes:int ->
  ack:ack_mode ->
  dsts:Address.t list ->
  'p ->
  int
(** Like {!post} for a destination set: the initial transmission is a
    single multicast (one serialization, one queue occupation for all
    copies — identical accounting to {!Transport.multicast}), and
    each destination is then settled independently. *)

val settle : _ t -> dst:Address.t -> key:int -> unit
(** Mark [dst] as having received post [key]; the timer dies when the
    last destination settles. Unknown keys are ignored (late acks,
    inert mode). *)

val settle_all : _ t -> key:int -> unit
(** Withdraw the post entirely, e.g. when a quorum made the remaining
    destinations irrelevant or leadership moved on. *)

val unpost_all : _ t -> unit
(** Withdraw every open post (step-down, ownership loss). *)

val crash_reset : _ t -> unit
(** Crash edge: withdraw every open post and forget all receiver-side
    dedup state (duplicates arriving after recovery re-run their
    idempotent handlers, as a real process restart would). The key
    counter and settled frontier survive — they model a monotonic
    session epoch, and resetting them would collide with floors other
    endpoints already learned and wedge the channel. *)

val on_packet :
  ('p, 'm) t ->
  src:Address.t ->
  deliver:(src:Address.t -> 'p -> unit) ->
  'p packet ->
  unit
(** Receiver path. [Payload] packets run the ack-mode policy above
    and hand [msg] to [deliver] (unless suppressed as a duplicate);
    [Ack] packets settle the matching post. *)

val outstanding : _ t -> int
(** Open posts (each may cover several unsettled destinations). *)

val retransmits : _ t -> int
(** Message copies re-sent by backoff timers at this endpoint. *)

val dup_drops : _ t -> int
(** Duplicate explicit-ack payloads suppressed at this endpoint. *)

val dedup_entries : _ t -> int
(** Receiver-side dedup keys currently remembered. Bounded by the
    senders' open posts (frontier advertisements prune settled keys),
    not by run length. *)

val frontier : _ t -> int
(** This endpoint's settled frontier: every key below it is closed. *)
