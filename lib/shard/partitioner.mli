(** Key-space partitioners: which consensus group owns a key. Routing
    is pure arithmetic (no RNG, no state), so adding a partitioner in
    front of a cluster cannot perturb the simulator's event or draw
    sequence — the foundation of the K=1 byte-identity guarantee. *)

type kind = [ `Hash | `Range ]

type t

val hash : shards:int -> t
(** Murmur-mix the key and take it mod [shards]: balances any key
    distribution (hot keys scatter) at the price of range locality. *)

val range : shards:int -> min_key:int -> keys:int -> t
(** Split [\[min_key, min_key + keys)] into [shards] contiguous slices
    of ~[keys/shards] keys each; keys outside the declared space clamp
    to the edge shards. Preserves range locality — and therefore
    concentrates hotspots: a skewed prefix lands on one shard.
    Requires [keys >= shards]. *)

val make : kind -> shards:int -> min_key:int -> keys:int -> t

val shards : t -> int
val kind : t -> kind

val route : t -> int -> int
(** Owning shard of a key, in [0 .. shards-1]. Deterministic: equal
    keys always route to the same shard. *)

val describe : t -> string
