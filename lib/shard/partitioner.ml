type kind = [ `Hash | `Range ]

type t = {
  kind : kind;
  shards : int;
  min_key : int;  (* range only: first key of the partitioned space *)
  keys : int;  (* range only: size of the partitioned space *)
}

let hash ~shards =
  if shards < 1 then invalid_arg "Partitioner.hash: shards must be >= 1";
  { kind = `Hash; shards; min_key = 0; keys = 0 }

let range ~shards ~min_key ~keys =
  if shards < 1 then invalid_arg "Partitioner.range: shards must be >= 1";
  if keys < shards then
    invalid_arg "Partitioner.range: need at least one key per shard";
  { kind = `Range; shards; min_key; keys }

let make kind ~shards ~min_key ~keys =
  match kind with
  | `Hash -> hash ~shards
  | `Range -> range ~shards ~min_key ~keys

let shards t = t.shards
let kind t = t.kind

(* Murmur3-style finalizer (the same mix as [Runner.derive_seed]):
   consecutive keys scatter uniformly across shards, so hash
   partitioning balances any key distribution — including hotspots —
   at the price of destroying range locality. Pure arithmetic, no RNG:
   routing never perturbs the simulator's draw sequence. *)
let mix h =
  let h = h lxor (h lsr 16) in
  let h = h * 0x85EBCA6B land max_int in
  let h = h lxor (h lsr 13) in
  let h = h * 0xC2B2AE35 land max_int in
  h lxor (h lsr 16)

let route t key =
  if t.shards = 1 then 0
  else
    match t.kind with
    | `Hash -> mix (key land max_int) mod t.shards
    | `Range ->
        (* contiguous slices of ~keys/shards; out-of-range keys clamp
           to the edge shards so every key routes somewhere, and a key
           always routes to the same shard (boundary consistency is
           just floor-division determinism) *)
        let off = key - t.min_key in
        if off < 0 then 0
        else if off >= t.keys then t.shards - 1
        else off * t.shards / t.keys

let describe t =
  match t.kind with
  | `Hash -> Printf.sprintf "hash(%d)" t.shards
  | `Range ->
      Printf.sprintf "range(%d over [%d,%d))" t.shards t.min_key
        (t.min_key + t.keys)
