module Make (P : Proto.RUNNABLE) = struct
  module C = Cluster.Make (P)

  type t = {
    partitioner : Partitioner.t;
    groups : C.t array;
    shared : C.shared;
  }

  let create ?sim ?faults ~config ~topology ~partitioner () =
    let shared = C.create_shared ?sim ?faults ~config ~topology () in
    (* group 0 is created first, so a 1-shard deployment performs
       exactly the same creation sequence (and RNG splits) as the
       classic [C.create] *)
    let groups =
      Array.init (Partitioner.shards partitioner) (fun gid ->
          C.create_group ~gid shared)
    in
    { partitioner; groups; shared }

  let sim t = C.sim t.groups.(0)
  let faults t = C.faults t.groups.(0)
  let config t = C.config t.groups.(0)
  let topology t = C.topology t.groups.(0)
  let partitioner t = t.partitioner
  let shards t = Array.length t.groups
  let group t gid = t.groups.(gid)
  let route t ~key = Partitioner.route t.partitioner key

  let register_client t ~id ?region () =
    (* the region assignment is per-topology (shared), so make it once;
       every group's transport gets a reply handler for this client *)
    Array.iteri
      (fun g c ->
        if g = 0 then C.register_client c ~id ?region ()
        else C.register_client c ~id ())
      t.groups

  let nearest_replica t ~shard ~client =
    C.nearest_replica t.groups.(shard) ~client

  let submit t ~shard ~client ~target ~command ~on_reply =
    C.submit t.groups.(shard) ~client ~target ~command ~on_reply

  let pending t ~shard ~client ~command =
    C.pending t.groups.(shard) ~client ~command

  let give_up t ~shard ~client ~command =
    C.give_up t.groups.(shard) ~client ~command

  let replica t ~shard i = C.replica t.groups.(shard) i

  let leader_of_key t ~replica:r key =
    let shard = route t ~key in
    (shard, C.leader_of_key t.groups.(shard) ~replica:r key)

  let trace t ~shard = C.trace t.groups.(shard)

  let set_window t ~from_ms ~until_ms =
    Array.iter
      (fun c -> Paxi_obs.Trace.set_window (C.trace c) ~from_ms ~until_ms)
      t.groups

  let replica_busy_ms t ~shard i = C.replica_busy_ms t.groups.(shard) i

  let busiest_in_shard t ~shard =
    let c = t.groups.(shard) in
    let n = (C.config c).Config.n_replicas in
    let best = ref (0, 0.0) in
    for i = 0 to n - 1 do
      let b = C.replica_busy_ms c i in
      if b > snd !best then best := (i, b)
    done;
    !best

  let message_counts t =
    Array.fold_left
      (fun (s, d, dr) c ->
        let s', d', dr' = C.message_counts c in
        (s + s', d + d', dr + dr'))
      (0, 0, 0) t.groups

  let retransmit_counts t =
    Array.fold_left
      (fun (r, d) c ->
        let r', d' = C.retransmit_counts c in
        (r + r', d + d'))
      (0, 0) t.groups
end
