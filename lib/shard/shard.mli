(** Sharded multi-group deployments: K independent consensus groups of
    the same protocol behind a key-space {!Partitioner}, all running
    over one shared simulator, latency matrix and fault plane
    ([Cluster.Make(P).shared]).

    Each group is a full [Cluster.Make(P).t] — its own leader, its own
    failover clocks, its own transport/processing queues and reliable
    endpoints — so aggregate capacity grows ~linearly in K until the
    key distribution concentrates load on few shards. Groups are
    co-located by replica index on the shared fault plane: injected
    faults address [Address.replica i] and therefore hit replica [i]
    of every group (machine/rack-scoped failures). A 1-shard
    deployment is byte-identical to the classic single-cluster path:
    creation performs the same steps in the same order, and routing
    draws no randomness. *)

module Make (P : Proto.RUNNABLE) : sig
  type t

  val create :
    ?sim:Sim.t ->
    ?faults:Faults.t ->
    config:Config.t ->
    topology:Topology.t ->
    partitioner:Partitioner.t ->
    unit ->
    t
  (** Build [Partitioner.shards] groups over one shared context. Every
      group uses the same config (n_replicas per group) and topology;
      group [g] gets [gid = g]. *)

  val sim : t -> Sim.t
  val faults : t -> Faults.t
  val config : t -> Config.t
  val topology : t -> Topology.t
  val partitioner : t -> Partitioner.t
  val shards : t -> int

  val route : t -> key:int -> int
  (** Owning shard for a key (pure, no RNG). *)

  val group : t -> int -> Cluster.Make(P).t

  val register_client : t -> id:int -> ?region:Region.t -> unit -> unit
  (** Register the client with every group (one region assignment,
      K reply handlers): a client talks to whichever shard owns the
      key of each command. *)

  val nearest_replica : t -> shard:int -> client:int -> int

  val submit :
    t ->
    shard:int ->
    client:int ->
    target:int ->
    command:Command.t ->
    on_reply:(Proto.reply -> unit) ->
    unit

  val pending : t -> shard:int -> client:int -> command:Command.t -> bool
  val give_up : t -> shard:int -> client:int -> command:Command.t -> unit
  val replica : t -> shard:int -> int -> P.replica

  val leader_of_key : t -> replica:int -> Command.key -> int * int option
  (** [(shard, leader)] — the owning shard and, per the protocol's own
      notion, the current leader of the key within that group. *)

  val trace : t -> shard:int -> Paxi_obs.Trace.t
  val set_window : t -> from_ms:float -> until_ms:float -> unit
  val replica_busy_ms : t -> shard:int -> int -> float

  val busiest_in_shard : t -> shard:int -> int * float
  (** The group's most-occupied replica (index, busy ms) — the
      per-shard leader-load figure of the shard sweeps. *)

  val message_counts : t -> int * int * int
  (** (sent, delivered, dropped), summed across groups. *)

  val retransmit_counts : t -> int * int
end
