type tag = Read_quorum.tag
(** (timestamp, writer id), ordered lexicographically. [(0, -1)] is
    the initial tag of an unwritten register. *)

type message =
  | Query of { rid : int; key : Command.key }
  | QueryR of { rid : int; tag : tag; value : Command.value option }
  | Store of { rid : int; key : Command.key; tag : tag; value : Command.value option }
  | StoreR of { rid : int }

let name = "abd"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | Query _ -> "Query"
  | QueryR _ -> "QueryR"
  | Store _ -> "Store"
  | StoreR _ -> "StoreR"

type register = Command.value option Read_quorum.register

(* One client operation in flight at the coordinating replica: an ABD
   round (query a majority, write the winner back to a majority) run
   by the shared {!Read_quorum} engine, plus what to reply with. *)
type op = {
  client : Address.t;
  command : Command.t;
  round : Command.value option Read_quorum.t;
  mutable result : Command.value option;
}

type replica = {
  env : message Proto.env;
  registers : (Command.key, register) Hashtbl.t;
  ops : (int, op) Hashtbl.t;
  mutable next_rid : int;
  exec : Executor.t; (* records completed ops for the checkers *)
}

let create env =
  {
    env;
    registers = Hashtbl.create 256;
    ops = Hashtbl.create 64;
    next_rid = 0;
    exec = Executor.create ();
  }

let executor t = t.exec
let leader_of_key _ _ = None

let register t key = Read_quorum.lookup t.registers ~empty:None key

let stored_tag t key =
  match Hashtbl.find_opt t.registers key with
  | Some r when r.Read_quorum.tag <> Read_quorum.zero_tag ->
      Some r.Read_quorum.tag
  | _ -> None

let majority_spec (t : replica) =
  Quorum.Majority (List.init t.env.n (fun i -> i))

let on_request t ~client (request : Proto.request) =
  let command = request.Proto.command in
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let key = Command.key command in
  (* the coordinator is also a quorum member: seed with local state *)
  let r = register t key in
  let round =
    Read_quorum.create (majority_spec t) ~self:t.env.id
      ~local_tag:r.Read_quorum.tag ~local_value:r.Read_quorum.value
  in
  Hashtbl.replace t.ops rid { client; command; round; result = None };
  t.env.broadcast (Query { rid; key })

let finish t rid (op : op) =
  Hashtbl.remove t.ops rid;
  (* record in the state machine so consensus-style checkers can read
     per-key histories; execution here is just bookkeeping *)
  ignore (Executor.execute t.exec op.command);
  t.env.reply op.client
    {
      Proto.command = op.command;
      read = (if Command.is_read op.command then op.result else None);
      replier = t.env.id;
      leader_hint = None;
    }

let start_store t rid (op : op) ~tag ~value ~result =
  let key = Command.key op.command in
  Read_quorum.adopt (register t key) ~tag ~value;
  Read_quorum.begin_store op.round ~self:t.env.id ~tag ~value;
  op.result <- result;
  t.env.broadcast (Store { rid; key; tag; value })

let on_query t ~src ~rid ~key =
  let r = register t key in
  t.env.send src
    (QueryR { rid; tag = r.Read_quorum.tag; value = r.Read_quorum.value })

let on_query_reply t ~src ~rid ~tag ~value =
  match Hashtbl.find_opt t.ops rid with
  | Some op when Read_quorum.query_ack op.round ~src ~tag ~value ->
      let best_tag, best_value = Read_quorum.best op.round in
      (match op.command.Command.op with
      | Command.Put (_, v) ->
          (* store under a strictly larger tag owned by us *)
          start_store t rid op
            ~tag:(Read_quorum.next_tag best_tag ~self:t.env.id)
            ~value:(Some v) ~result:None
      | Command.Delete _ ->
          start_store t rid op
            ~tag:(Read_quorum.next_tag best_tag ~self:t.env.id)
            ~value:None ~result:None
      | Command.Get _ ->
          (* write-back phase makes the read linearizable *)
          start_store t rid op ~tag:best_tag ~value:best_value
            ~result:best_value)
  | _ -> ()

let on_store t ~src ~rid ~key ~tag ~value =
  Read_quorum.adopt (register t key) ~tag ~value;
  t.env.send src (StoreR { rid })

let on_store_reply t ~src ~rid =
  match Hashtbl.find_opt t.ops rid with
  | Some op when Read_quorum.store_ack op.round ~src -> finish t rid op
  | _ -> ()

let on_message t ~src = function
  | Query { rid; key } -> on_query t ~src ~rid ~key
  | QueryR { rid; tag; value } -> on_query_reply t ~src ~rid ~tag ~value
  | Store { rid; key; tag; value } -> on_store t ~src ~rid ~key ~tag ~value
  | StoreR { rid } -> on_store_reply t ~src ~rid

let on_start (_ : replica) = ()

(* In-memory protocol: a crash-recovery edge reboots it from scratch
   (no durable state to reload) — the cluster engine only pairs
   [Config.storage] with protocols that persist, so this is a
   rejoin-from-zero fallback. *)
let on_recover = on_start
