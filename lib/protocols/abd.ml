type tag = int * int
(** (timestamp, writer id), ordered lexicographically. [(0, -1)] is
    the initial tag of an unwritten register. *)

type message =
  | Query of { rid : int; key : Command.key }
  | QueryR of { rid : int; tag : tag; value : Command.value option }
  | Store of { rid : int; key : Command.key; tag : tag; value : Command.value option }
  | StoreR of { rid : int }

let name = "abd"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | Query _ -> "Query"
  | QueryR _ -> "QueryR"
  | Store _ -> "Store"
  | StoreR _ -> "StoreR"

let zero_tag = (0, -1)

type register = { mutable tag : tag; mutable value : Command.value option }

(* One client operation in flight at the coordinating replica. *)
type op_phase =
  | Querying of { mutable best : tag * Command.value option; quorum : Quorum.t }
  | Storing of { quorum : Quorum.t; result : Command.value option }

type op = {
  client : Address.t;
  command : Command.t;
  mutable phase : op_phase;
}

type replica = {
  env : message Proto.env;
  registers : (Command.key, register) Hashtbl.t;
  ops : (int, op) Hashtbl.t;
  mutable next_rid : int;
  exec : Executor.t; (* records completed ops for the checkers *)
}

let create env =
  {
    env;
    registers = Hashtbl.create 256;
    ops = Hashtbl.create 64;
    next_rid = 0;
    exec = Executor.create ();
  }

let executor t = t.exec
let leader_of_key _ _ = None

let register t key =
  match Hashtbl.find_opt t.registers key with
  | Some r -> r
  | None ->
      let r = { tag = zero_tag; value = None } in
      Hashtbl.add t.registers key r;
      r

let stored_tag t key =
  match Hashtbl.find_opt t.registers key with
  | Some r when r.tag <> zero_tag -> Some r.tag
  | _ -> None

let all_ids (t : replica) = List.init t.env.n (fun i -> i)
let majority t = Quorum.create (Quorum.Majority (all_ids t))

(* Adopt (tag, value) if newer; ABD's monotone store rule. *)
let adopt (r : register) ~tag ~value =
  if tag > r.tag then begin
    r.tag <- tag;
    r.value <- value
  end

let on_request t ~client (request : Proto.request) =
  let command = request.Proto.command in
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let quorum = majority t in
  let key = Command.key command in
  (* the coordinator is also a quorum member: seed with local state *)
  let r = register t key in
  Quorum.ack quorum t.env.id;
  let op =
    { client; command; phase = Querying { best = (r.tag, r.value); quorum } }
  in
  Hashtbl.replace t.ops rid op;
  t.env.broadcast (Query { rid; key })

let finish t rid (op : op) ~result =
  Hashtbl.remove t.ops rid;
  (* record in the state machine so consensus-style checkers can read
     per-key histories; execution here is just bookkeeping *)
  ignore (Executor.execute t.exec op.command);
  t.env.reply op.client
    {
      Proto.command = op.command;
      read = (if Command.is_read op.command then result else None);
      replier = t.env.id;
      leader_hint = None;
    }

let start_store t rid (op : op) ~tag ~value ~result =
  let quorum = majority t in
  let key = Command.key op.command in
  adopt (register t key) ~tag ~value;
  Quorum.ack quorum t.env.id;
  op.phase <- Storing { quorum; result };
  t.env.broadcast (Store { rid; key; tag; value })

let on_query t ~src ~rid ~key =
  let r = register t key in
  t.env.send src (QueryR { rid; tag = r.tag; value = r.value })

let on_query_reply t ~src ~rid ~tag ~value =
  match Hashtbl.find_opt t.ops rid with
  | Some ({ phase = Querying q; _ } as op) ->
      if tag > fst q.best then q.best <- (tag, value);
      Quorum.ack q.quorum src;
      if Quorum.satisfied q.quorum then begin
        let (ts, _), best_value = q.best in
        match op.command.Command.op with
        | Command.Put (_, v) ->
            (* store under a strictly larger tag owned by us *)
            start_store t rid op ~tag:(ts + 1, t.env.id) ~value:(Some v)
              ~result:None
        | Command.Delete _ ->
            start_store t rid op ~tag:(ts + 1, t.env.id) ~value:None ~result:None
        | Command.Get _ ->
            (* write-back phase makes the read linearizable *)
            start_store t rid op ~tag:(fst q.best) ~value:best_value
              ~result:best_value
      end
  | _ -> ()

let on_store t ~src ~rid ~key ~tag ~value =
  adopt (register t key) ~tag ~value;
  t.env.send src (StoreR { rid })

let on_store_reply t ~src ~rid =
  match Hashtbl.find_opt t.ops rid with
  | Some ({ phase = Storing s; _ } as op) ->
      Quorum.ack s.quorum src;
      if Quorum.satisfied s.quorum then finish t rid op ~result:s.result
  | _ -> ()

let on_message t ~src = function
  | Query { rid; key } -> on_query t ~src ~rid ~key
  | QueryR { rid; tag; value } -> on_query_reply t ~src ~rid ~tag ~value
  | Store { rid; key; tag; value } -> on_store t ~src ~rid ~key ~tag ~value
  | StoreR { rid } -> on_store_reply t ~src ~rid

let on_start (_ : replica) = ()
