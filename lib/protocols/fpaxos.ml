type message = Paxos.message
type replica = Paxos.replica

let name = "fpaxos"
let cpu_factor = Paxos.cpu_factor
let message_label = Paxos.message_label
let default_q2 ~n = (n + 2) / 3

let create (env : message Proto.env) =
  let config = env.Proto.config in
  let config =
    match config.Config.q2_size with
    | Some _ -> config
    | None ->
        { config with Config.q2_size = Some (default_q2 ~n:config.Config.n_replicas) }
  in
  Paxos.create { env with Proto.config }

let on_request = Paxos.on_request
let on_message = Paxos.on_message
let on_start = Paxos.on_start
let on_recover = Paxos.on_recover
let leader_of_key = Paxos.leader_of_key
let is_leader = Paxos.is_leader
let executor = Paxos.executor
let lease_valid = Paxos.lease_valid
let local_reads_served = Paxos.local_reads_served
let quorum_reads_served = Paxos.quorum_reads_served
