type entry = { term : int; cmd : Command.t; client : Address.t option }

type message =
  | RequestVote of { term : int; last_index : int; last_term : int }
  | VoteReply of { term : int; granted : bool }
  | AppendEntries of {
      term : int;
      prev_index : int;
      prev_term : int;
      entries : entry list;
      leader_commit : int;
    }
  | AppendReply of { term : int; success : bool; match_index : int }
  | RelayAppend of { gen : int; inner : message }
      (** leader → relay (Config.relay_groups > 0): apply the inner
          AppendEntries locally, fan it to the rotation group, and
          aggregate the group's replies into one [RelayAppendAck] *)
  | FanAppend of { origin : int; inner : message }
      (** relay → group member: process [inner] as if it came from
          leader [origin] (leader identity, lease grant), but reply to
          the relay so it can aggregate *)
  | RelayAppendAck of { term : int; gen : int; expected : int; bits : int }
      (** aggregated success replies for the round that establishes
          match index [expected]; bit i = plan-group member i accepted *)
  | InstallSnapshot of {
      term : int;
      last_index : int;
      last_term : int;
      image : Command.t array;
    }
      (** leader → lagging follower whose next_index fell below the
          leader's compacted log base: the applied-command image
          through [last_index] (exclusive), replayed to rebuild the
          follower's state machine; answered with an ordinary
          [AppendReply] at [last_index] *)

let name = "raft"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | RequestVote _ -> "RequestVote"
  | VoteReply _ -> "VoteReply"
  | AppendEntries _ -> "AppendEntries"
  | AppendReply _ -> "AppendReply"
  | RelayAppend _ -> "RelayAppend"
  | FanAppend _ -> "FanAppend"
  | RelayAppendAck _ -> "RelayAppendAck"
  | InstallSnapshot _ -> "InstallSnapshot"

type role = Follower | Candidate | Leader

type replica = {
  env : message Proto.env;
  mutable term : int;
  mutable voted_for : int option;
  mutable state : role;
  mutable leader_id : int option;
  log : entry Slot_log.t;
  mutable commit_index : int; (* one past last committed slot *)
  exec : Executor.t;
  mutable next_index : int array;
  mutable match_index : int array; (* one past last known replicated *)
  mutable votes : Quorum.t option;
  mutable last_heard : float;
  mutable election_deadline : float;
  pending : (Address.t * Proto.request) Queue.t;
  (* leader command batching (Config.batching): entries appended since
     the last replication round, and the pending deferred-flush timer *)
  mutable unflushed : int;
  mutable flush_timer : Sim.handle; (* Sim.nil when no flush is pending *)
  (* reliable-delivery bookkeeping: the key of the open append post
     covering each follower (0 = none) and the match_index that post
     expects back — a success reply at or past it is the ack *)
  mutable append_key : int array;
  mutable inflight_match : int array;
  (* Leader-lease read path (config.read_path = Lease; PR 7). The
     lease rides on the append traffic: every outgoing AppendEntries
     is a probe, and any reply of the current term proves the follower
     reset its election timer (and granted) after the probe left.
     [probe_sent_at.(i)] is the send time of the oldest unanswered
     probe to i (0 = none outstanding); [acked_at.(i)] the latest such
     proven-contact time. The lease extends to the majority-th largest
     acked_at plus the minimum election delay. *)
  mutable probe_sent_at : float array;
  mutable acked_at : float array;
  mutable lease_until : float;
  mutable lease_holder : int;
  mutable lease_granted_until : float;
  mutable read_barrier : int;
  pending_reads : (Address.t * Proto.request) Queue.t;
  mutable local_reads : int;
  (* ---- relay trees (Config.relay_groups > 0; DESIGN.md §12) ---- *)
  relay_plans : Relay.plans;
  relay_aggs : (int, Relay.agg) Hashtbl.t;
      (* relay side: in-flight rounds keyed by the match index they
         establish (strictly increasing, so keys never collide) *)
  relay_pool : Relay.pool;
  mutable relay_seq : int;
  mutable relay_bump : int;
  mutable relay_bypass_until : float;
  mutable relay_dsts : int list; (* leader: cached relay ids *)
  mutable relay_dsts_gen : int;
  mutable relay_fan : int list; (* relay: cached own group minus self *)
  mutable relay_fan_gen : int;
  mutable relay_akey : int; (* leader: open relay-round post (0 = none) *)
  mutable relay_expected : int; (* match index that round establishes *)
  mutable relay_fb : Sim.handle; (* leader: relay fallback timer *)
  (* ---- stable storage + log compaction (Config.storage; §14) ---- *)
  mutable snap : (int * int * Command.t array) option;
      (* latest snapshot taken or installed here: (one past last
         included index, last included term, applied-command image) *)
  mutable snap_term : int; (* term of the entry at [log base - 1] *)
  mutable snapshots : int; (* snapshots taken locally *)
}

let all_ids (t : replica) = List.init t.env.n (fun i -> i)

let create env =
  {
    env;
    term = 0;
    voted_for = None;
    state = Follower;
    leader_id = None;
    log = Slot_log.create ();
    commit_index = 0;
    exec = Executor.create ();
    next_index = Array.make env.Proto.n 0;
    match_index = Array.make env.Proto.n 0;
    votes = None;
    last_heard = 0.0;
    election_deadline = 0.0;
    pending = Queue.create ();
    unflushed = 0;
    flush_timer = Sim.nil;
    append_key = Array.make env.Proto.n 0;
    inflight_match = Array.make env.Proto.n 0;
    probe_sent_at = Array.make env.Proto.n 0.0;
    acked_at = Array.make env.Proto.n neg_infinity;
    lease_until = neg_infinity;
    lease_holder = -1;
    lease_granted_until = neg_infinity;
    read_barrier = 0;
    pending_reads = Queue.create ();
    local_reads = 0;
    relay_plans = Relay.plans ();
    relay_aggs = Hashtbl.create 16;
    relay_pool = Relay.pool ();
    relay_seq = 0;
    relay_bump = 0;
    relay_bypass_until = neg_infinity;
    relay_dsts = [];
    relay_dsts_gen = min_int;
    relay_fan = [];
    relay_fan_gen = min_int;
    relay_akey = 0;
    relay_expected = 0;
    relay_fb = Sim.nil;
    snap = None;
    snap_term = 0;
    snapshots = 0;
  }

let role t = t.state
let current_term t = t.term
let commit_index t = t.commit_index
let executor t = t.exec
let log_length t = Slot_log.next_slot t.log
let local_reads_served t = t.local_reads
let log_base t = Slot_log.base t.log
let snapshots_taken t = t.snapshots

let lease_mode t =
  match t.env.Proto.config.Config.read_path with
  | Some (Config.Lease _) -> true
  | _ -> false

let lease_margin t =
  match t.env.Proto.config.Config.read_path with
  | Some (Config.Lease { margin_ms }) -> margin_ms
  | _ -> 0.0

(* A follower that heard from the leader waits at least
   [base + U(0, base)] before standing for election, so [base] is the
   window a proven contact buys — the same length the follower grants
   and refuses foreign votes for. *)
let lease_window t = t.env.Proto.config.Config.failover_timeout_ms

let lease_valid t =
  t.state = Leader
  && t.commit_index > t.read_barrier
  && t.env.Proto.now () < t.lease_until -. lease_margin t

let log_term_at t i =
  Option.map (fun (e : entry) -> e.term) (Slot_log.get t.log i)

let leader_of_key t (_ : Command.key) = t.leader_id

let last_index t = Slot_log.next_slot t.log - 1

let term_at t i =
  if i < 0 then 0
  else if i = Slot_log.base t.log - 1 then
    (* the slot right below the compacted base: its term survives in
       the snapshot record so consistency checks still line up *)
    t.snap_term
  else match Slot_log.get t.log i with Some e -> e.term | None -> 0

(* ---- stable storage (Config.storage; DESIGN.md §14) ----------------
   Register 0 holds the durable term, register 1 the durable vote
   ([voted_for + 1]; 0 = none). The durable log holds every appended
   (slot, term, command); snapshots compact it below the applied
   frontier. Votes and append acks leave only once the fsync covering
   their records completes; with [Config.storage] unset every branch
   falls through to the original path, keeping memory-only runs
   byte-identical. *)

let durable_term_ops t =
  [
    Storage.Reg (0, t.term);
    Storage.Reg (1, (match t.voted_for with Some v -> v + 1 | None -> 0));
  ]

let entry_op ~slot (e : entry) =
  Storage.Entry (slot, { Storage.a = e.term; b = 0; cmd = e.cmd })

let reset_election_timer t =
  let base = t.env.config.Config.failover_timeout_ms in
  t.election_deadline <-
    t.env.now () +. base +. Rng.float t.env.rng base

(* Threshold log compaction (Raft §7): once the applied prefix since
   the last compaction reaches [snapshot_threshold], capture the
   state-machine image, persist it with a [Truncate], and drop the
   in-memory slots below the frontier. The in-memory log truncates
   immediately (it is volatile either way); durability of the
   snapshot rides the next fsync, and a crash before it completes
   simply recovers from the previous image plus the longer log. *)
let maybe_snapshot t =
  match t.env.Proto.storage with
  | None -> ()
  | Some st ->
      let thr = Storage.snapshot_threshold st in
      let applied = Slot_log.exec_frontier t.log in
      if thr > 0 && applied - Slot_log.base t.log >= thr then begin
        let image = Executor.image t.exec in
        t.snap_term <- term_at t (applied - 1);
        t.snap <- Some (applied, t.snap_term, image);
        Storage.write st (Storage.Snapshot (applied, t.snap_term, image));
        Storage.write st (Storage.Truncate applied);
        Storage.sync st ignore;
        Slot_log.truncate t.log ~upto:applied;
        t.snapshots <- t.snapshots + 1
      end

(* Apply committed entries in order; leaders answer recorded clients. *)
let apply_committed t =
  Slot_log.advance_frontier t.log
    ~executable:(fun (e : entry) ->
      ignore e;
      Slot_log.exec_frontier t.log < t.commit_index)
    ~f:(fun _i (e : entry) ->
      let read = Executor.execute t.exec e.cmd in
      match e.client with
      | Some client ->
          t.env.reply client
            {
              Proto.command = e.cmd;
              read;
              replier = t.env.id;
              leader_hint = t.leader_id;
            }
      | None -> ());
  maybe_snapshot t

(* Serve a read from the local state machine without consuming a
   slot: legal exactly while {!lease_valid} holds. *)
let serve_local_read t ~client (request : Proto.request) =
  let read = Executor.read t.exec request.Proto.command in
  t.local_reads <- t.local_reads + 1;
  t.env.obs.Proto.on_read ();
  t.env.reply client
    {
      Proto.command = request.Proto.command;
      read;
      replier = t.env.id;
      leader_hint = Some t.env.id;
    }

let maybe_serve_reads t =
  while lease_valid t && not (Queue.is_empty t.pending_reads) do
    let client, request = Queue.pop t.pending_reads in
    serve_local_read t ~client request
  done

(* Every append (probe) may extend the lease once answered; remember
   the oldest outstanding send time per follower — conservative, since
   the follower's grant starts no earlier than the probe that reached
   it. *)
let note_probe t dsts =
  if lease_mode t then
    let now = t.env.now () in
    List.iter
      (fun f -> if t.probe_sent_at.(f) = 0.0 then t.probe_sent_at.(f) <- now)
      dsts

(* The lease holds as long as a majority (self included) was in
   contact within the last window: sort contact times ascending and
   take the majority-th largest — that instant plus the window is the
   earliest any majority member could start helping a rival. *)
let recompute_lease t =
  if lease_mode t && t.state = Leader then begin
    let contact = Array.copy t.acked_at in
    contact.(t.env.id) <- t.env.now ();
    Array.sort Float.compare contact;
    let pivot = contact.(t.env.n - Config.majority t.env.config) in
    let until = pivot +. lease_window t in
    if until > t.lease_until then begin
      t.lease_until <- until;
      maybe_serve_reads t
    end
  end

(* With batching on, an AppendEntries carrying k entries costs k
   message sizes on the wire (but still one t_in/t_out) — without it,
   sends keep the flat per-message default so unbatched runs are
   bit-identical to the pre-batching simulator. *)
let append_size t entries =
  match t.env.config.Config.batching with
  | Some _ ->
      Stdlib.max 1 (List.length entries) * t.env.config.Config.msg_size_bytes
  | None -> t.env.config.Config.msg_size_bytes

(* ---- relay trees (Config.relay_groups = r > 0; DESIGN.md §12) ----

   Mirrors the Paxos integration: a uniform replication round is
   wrapped in [RelayAppend] and posted to one relay per rotation
   group; relays apply it locally, fan [FanAppend] to their group, and
   aggregate the members' AppendReplies into one [RelayAppendAck]
   bitmap. Everything below is guarded so a [relay_groups = 0] run
   never reaches any of it — no messages, no timers, no RNG draws —
   keeping the direct path byte-identical. *)

let relay_on t = t.env.config.Config.relay_groups > 0
let relay_route t = relay_on t && t.env.now () >= t.relay_bypass_until
let relay_gen t = Relay.gen_of_seq ~seq:t.relay_seq ~bump:t.relay_bump

let relay_plan t ~leader ~gen =
  Relay.find t.relay_plans ~n:t.env.n ~leader
    ~r:t.env.config.Config.relay_groups ~gen

let relay_targets t ~gen (plan : Relay.plan) =
  if t.relay_dsts_gen <> gen then begin
    t.relay_dsts <-
      Array.to_list (Array.map (fun g -> g.(0)) plan.Relay.groups);
    t.relay_dsts_gen <- gen
  end;
  t.relay_dsts

let relay_fan_list t ~leader ~gen (plan : Relay.plan) gi =
  let key = (gen lsl 10) lor leader in
  if t.relay_fan_gen <> key then begin
    let g = plan.Relay.groups.(gi) in
    let rec tail i acc = if i < 1 then acc else tail (i - 1) (g.(i) :: acc) in
    t.relay_fan <- tail (Array.length g - 1) [];
    t.relay_fan_gen <- key
  end;
  t.relay_fan

let relay_fallback_ms t = t.env.config.Config.failover_timeout_ms /. 8.0

let relay_flush_ms t =
  match t.env.config.Config.retransmit with
  | Some r when r.Config.max_tries > 0 -> r.Config.base_ms
  | _ -> relay_fallback_ms t

(* A relay round stalled (dead or slow relay): rotate the plan and
   send direct until the window closes, re-partitioning the silent
   relay out of its post. *)
let relay_stall t =
  t.relay_bump <- t.relay_bump + 1;
  t.relay_bypass_until <-
    t.env.now () +. t.env.config.Config.failover_timeout_ms

let relay_send_ack t expected (a : Relay.agg) =
  t.env.send a.Relay.a_leader
    (RelayAppendAck
       {
         term = a.Relay.a_tag;
         gen = a.Relay.a_gen;
         expected;
         bits = a.Relay.a_bits;
       })

let relay_drop t expected (a : Relay.agg) =
  if not (Sim.is_nil a.Relay.a_flush) then t.env.Proto.cancel a.Relay.a_flush;
  a.Relay.a_flush <- Sim.nil;
  Hashtbl.remove t.relay_aggs expected;
  Relay.release t.relay_pool a

(* Drop every relay-side aggregation record (our term moved on, or we
   are becoming a candidate/leader ourselves). *)
let relay_reset t =
  if Hashtbl.length t.relay_aggs > 0 then
    Hashtbl.fold (fun k a acc -> (k, a) :: acc) t.relay_aggs []
    |> List.iter (fun (k, a) -> relay_drop t k a)

let relay_finalize t expected (a : Relay.agg) =
  a.Relay.a_complete <- true;
  if not (Sim.is_nil a.Relay.a_flush) then begin
    t.env.Proto.cancel a.Relay.a_flush;
    a.Relay.a_flush <- Sim.nil
  end;
  if t.env.obs.Proto.active then
    t.env.obs.Proto.on_relay ~start_ms:a.Relay.a_t0 ~end_ms:(t.env.now ());
  relay_send_ack t expected a

(* Partial-ack flush: a group member is slow or dead — report the bits
   we do have so the leader's majority can complete through the other
   groups, then keep waiting. Records superseded by a newer term are
   dropped instead of re-armed. *)
let rec relay_flush t expected =
  match Hashtbl.find_opt t.relay_aggs expected with
  | Some a when not a.Relay.a_complete ->
      a.Relay.a_flush <- Sim.nil;
      if a.Relay.a_tag = t.term && t.state <> Leader then begin
        relay_send_ack t expected a;
        a.Relay.a_flush <-
          t.env.schedule (relay_flush_ms t) (fun () -> relay_flush t expected)
      end
      else relay_drop t expected a
  | _ -> ()

(* Completed records linger so a duplicate [RelayAppend] (the leader's
   retransmission racing our ack) gets a full-ack resend; prune them
   once their match index commits, amortized behind a size
   threshold. *)
let relay_prune t =
  if Hashtbl.length t.relay_aggs > 128 then
    Hashtbl.fold
      (fun expected (a : Relay.agg) acc ->
        if expected <= t.commit_index then (expected, a) :: acc else acc)
      t.relay_aggs []
    |> List.iter (fun (expected, a) -> relay_drop t expected a)

(* A member's success reply arriving at its relay: fold it into the
   aggregation bitmap. Returns [false] when the reply is not ours to
   absorb — the caller runs the normal leader-side path. Failure
   replies are never absorbed; a diverged member heals through the
   leader's direct keepalive path. *)
let relay_absorb_reply t ~src ~term ~success ~match_index =
  if t.state = Leader || (not (relay_on t)) || not success then false
  else
    match Hashtbl.find_opt t.relay_aggs match_index with
    | Some a when a.Relay.a_tag = term ->
        let i = Relay.position a src in
        if i >= 0 then begin
          Relay.set_bit a i;
          if (not a.Relay.a_complete) && Relay.complete a then
            relay_finalize t match_index a
        end;
        true
    | _ -> false

(* Ship the tail from [next] to [dsts] (who all share that
   next_index). A non-empty tail goes through the reliable layer: any
   post still covering a destination is superseded first (settled and
   re-posted with the current tail), so at most one append post is
   open per follower and it always carries the freshest state. An
   empty tail is a plain probe — nothing to recover. *)
(* A follower's next_index fell below our compacted base: the slots it
   needs are gone, so ship the state-machine image instead. Answered
   with an ordinary AppendReply at the image's frontier; a lost copy
   re-triggers through the usual nack/backoff path. *)
let send_install_snapshot t ~dsts =
  match t.snap with
  | None -> ()
  | Some (last, last_term, image) ->
      let size_bytes =
        Stdlib.max 1 (Array.length image) * t.env.config.Config.msg_size_bytes
      in
      note_probe t dsts;
      t.env.multicast_sized dsts ~size_bytes
        (InstallSnapshot { term = t.term; last_index = last; last_term; image })

let post_append_tail t ~dsts ~next =
  let prev_index = next - 1 in
  let entries = ref [] in
  for i = last_index t downto next do
    match Slot_log.get t.log i with
    | Some e -> entries := e :: !entries
    | None -> ()
  done;
  let msg =
    AppendEntries
      {
        term = t.term;
        prev_index;
        prev_term = term_at t prev_index;
        entries = !entries;
        leader_commit = t.commit_index;
      }
  in
  let size_bytes = append_size t !entries in
  note_probe t dsts;
  List.iter
    (fun f ->
      if t.append_key.(f) <> 0 then begin
        t.env.rel.settle ~dst:f ~key:t.append_key.(f);
        t.append_key.(f) <- 0;
        t.inflight_match.(f) <- 0
      end)
    dsts;
  if !entries = [] then t.env.multicast_sized dsts ~size_bytes msg
  else begin
    let key = t.env.rel.post_multi ~size_bytes ~ack:Reliable.Piggyback dsts msg in
    let expected = prev_index + 1 + List.length !entries in
    List.iter
      (fun f ->
        t.append_key.(f) <- key;
        t.inflight_match.(f) <- expected)
      dsts
  end

let post_append t ~dsts ~next =
  if next < Slot_log.base t.log then send_install_snapshot t ~dsts
  else post_append_tail t ~dsts ~next

let send_append t follower =
  post_append t ~dsts:[ follower ] ~next:t.next_index.(follower)

(* Group followers that share the same next_index so the CPU
   serializes the batch once (etcd replicates a shared log the same
   way); stragglers with a lagging next_index get tailored sends. *)
let rec broadcast_append t =
  (* every replication round ships the full unreplicated tail, so any
     deferred batch flush is satisfied by it *)
  t.unflushed <- 0;
  t.env.Proto.cancel t.flush_timer;
  t.flush_timer <- Sim.nil;
  if not (relay_broadcast_append t) then begin
    let groups = Hashtbl.create 4 in
    List.iter
      (fun i ->
        if i <> t.env.id then begin
          let next = t.next_index.(i) in
          let members =
            Option.value (Hashtbl.find_opt groups next) ~default:[]
          in
          Hashtbl.replace groups next (i :: members)
        end)
      (all_ids t);
    Hashtbl.iter (fun next members -> post_append t ~dsts:members ~next) groups
  end

(* Route one replication round through the relays. Applies only when
   every follower shares the same next_index — so one wrapped
   AppendEntries serves every group — and the tail is non-empty;
   stragglers and keepalives always go direct. Returns whether the
   round was routed. *)
and relay_broadcast_append t =
  relay_route t
  &&
  let next = t.next_index.((t.env.id + 1) mod t.env.n) in
  let uniform = ref (last_index t >= next) in
  for i = 0 to t.env.n - 1 do
    if i <> t.env.id && t.next_index.(i) <> next then uniform := false
  done;
  !uniform
  && begin
       (* supersede the previous relay round and any direct posts *)
       if t.relay_akey <> 0 then begin
         t.env.rel.settle_all ~key:t.relay_akey;
         t.relay_akey <- 0
       end;
       if not (Sim.is_nil t.relay_fb) then begin
         t.env.Proto.cancel t.relay_fb;
         t.relay_fb <- Sim.nil
       end;
       for f = 0 to t.env.n - 1 do
         if f <> t.env.id && t.append_key.(f) <> 0 then begin
           t.env.rel.settle ~dst:f ~key:t.append_key.(f);
           t.append_key.(f) <- 0;
           t.inflight_match.(f) <- 0
         end
       done;
       let prev_index = next - 1 in
       let entries = ref [] in
       for i = last_index t downto next do
         match Slot_log.get t.log i with
         | Some e -> entries := e :: !entries
         | None -> ()
       done;
       let inner =
         AppendEntries
           {
             term = t.term;
             prev_index;
             prev_term = term_at t prev_index;
             entries = !entries;
             leader_commit = t.commit_index;
           }
       in
       (* every follower is probed through its relay this round *)
       if lease_mode t then
         note_probe t (List.filter (fun i -> i <> t.env.id) (all_ids t));
       let gen = relay_gen t in
       t.relay_seq <- t.relay_seq + 1;
       let plan = relay_plan t ~leader:t.env.id ~gen in
       t.relay_akey <-
         t.env.rel.post_multi ~size_bytes:(append_size t !entries)
           ~ack:Reliable.Piggyback
           (relay_targets t ~gen plan)
           (RelayAppend { gen; inner });
       t.relay_expected <- prev_index + 1 + List.length !entries;
       t.relay_fb <-
         t.env.schedule (relay_fallback_ms t) (fun () -> relay_fallback t);
       true
     end

(* The leader gave a relay round [relay_fallback_ms] and the round's
   match index still has not committed: withdraw the post, rotate the
   plan, and re-ship the tail direct for a bypass window. *)
and relay_fallback t =
  t.relay_fb <- Sim.nil;
  if t.state = Leader && t.relay_akey <> 0 then begin
    t.env.rel.settle_all ~key:t.relay_akey;
    t.relay_akey <- 0;
    if t.commit_index < t.relay_expected then begin
      relay_stall t;
      broadcast_append t
    end
  end

(* The beat when there is nothing to flush: empty appends grouped by
   next_index. They keep election timers quiet and carry the commit
   frontier; lost-append recovery is the reliable layer's job, so the
   beat no longer re-ships the unreplicated tail. *)
let broadcast_keepalive t =
  let groups = Hashtbl.create 4 in
  List.iter
    (fun i ->
      if i <> t.env.id then begin
        let next = t.next_index.(i) in
        let members = Option.value (Hashtbl.find_opt groups next) ~default:[] in
        Hashtbl.replace groups next (i :: members)
      end)
    (all_ids t);
  Hashtbl.iter
    (fun next members ->
      let prev_index = next - 1 in
      note_probe t members;
      t.env.multicast_sized members ~size_bytes:(append_size t [])
        (AppendEntries
           {
             term = t.term;
             prev_index;
             prev_term = term_at t prev_index;
             entries = [];
             leader_commit = t.commit_index;
           }))
    groups

let relay_clear_leader t =
  if relay_on t then begin
    t.relay_akey <- 0;
    if not (Sim.is_nil t.relay_fb) then begin
      t.env.Proto.cancel t.relay_fb;
      t.relay_fb <- Sim.nil
    end;
    relay_reset t
  end

let advance_commit t =
  (* Largest index replicated on a majority with an entry of the
     current term (Raft's commit rule). *)
  let sorted = Array.copy t.match_index in
  Array.sort Int.compare sorted;
  (* the majority-th smallest match: at least majority replicas have
     match_index >= this value *)
  let majority_match = sorted.(t.env.n - Config.majority t.env.config) in
  if majority_match > t.commit_index && term_at t (majority_match - 1) = t.term
  then begin
    let old = t.commit_index in
    t.commit_index <- majority_match;
    for slot = old to majority_match - 1 do
      t.env.obs.Proto.on_quorum ~slot
    done;
    apply_committed t;
    (* the barrier committing may unblock queued lease reads *)
    if lease_mode t then maybe_serve_reads t
  end

let become_leader t =
  t.state <- Leader;
  t.leader_id <- Some t.env.id;
  t.votes <- None;
  relay_clear_leader t;
  let len = Slot_log.next_slot t.log in
  t.next_index <- Array.make t.env.n len;
  t.match_index <- Array.make t.env.n 0;
  t.append_key <- Array.make t.env.n 0;
  t.inflight_match <- Array.make t.env.n 0;
  t.probe_sent_at <- Array.make t.env.n 0.0;
  t.acked_at <- Array.make t.env.n neg_infinity;
  t.lease_until <- neg_infinity;
  (* No-op barrier: an entry of the new term lets the leader commit
     any uncommitted tail from previous terms (Raft §5.4.2). Lease
     reads additionally wait for it to commit ([read_barrier]), so a
     fresh leader never serves a read before applying every write its
     predecessors could have acknowledged. *)
  let barrier = Slot_log.reserve t.log in
  let be = { term = t.term; cmd = Command.noop; client = None } in
  Slot_log.set t.log barrier be;
  t.read_barrier <- barrier;
  (match t.env.Proto.storage with
  | None -> t.match_index.(t.env.id) <- barrier + 1
  | Some st -> Storage.write st (entry_op ~slot:barrier be));
  broadcast_append t;
  while not (Queue.is_empty t.pending) do
    let client, request = Queue.pop t.pending in
    let slot = Slot_log.reserve t.log in
    let e = { term = t.term; cmd = request.Proto.command; client = Some client } in
    Slot_log.set t.log slot e;
    match t.env.Proto.storage with
    | None -> t.match_index.(t.env.id) <- slot + 1
    | Some st -> Storage.write st (entry_op ~slot e)
  done;
  (match t.env.Proto.storage with
  | None -> ()
  | Some st ->
      (* the leader's own match counts only once its entries are on
         disk; one fsync covers the barrier and the drained backlog *)
      let top = Slot_log.next_slot t.log in
      let term = t.term in
      Storage.sync st (fun () ->
          if t.state = Leader && t.term = term then begin
            if top > t.match_index.(t.env.id) then
              t.match_index.(t.env.id) <- top;
            advance_commit t
          end));
  if Slot_log.next_slot t.log > len then broadcast_append t

let become_follower t ~term =
  if term > t.term then begin
    t.term <- term;
    t.voted_for <- None
  end;
  t.state <- Follower;
  t.votes <- None;
  t.unflushed <- 0;
  t.env.Proto.cancel t.flush_timer;
  t.flush_timer <- Sim.nil;
  t.lease_until <- neg_infinity;
  (* queued lease reads go back to [pending] and get forwarded *)
  Queue.transfer t.pending_reads t.pending;
  (* open append posts belong to a leadership this replica just lost *)
  t.env.rel.unpost_all ();
  relay_clear_leader t;
  reset_election_timer t

let start_election t =
  t.term <- t.term + 1;
  t.state <- Candidate;
  t.voted_for <- Some t.env.id;
  t.leader_id <- None;
  t.env.rel.unpost_all ();
  relay_clear_leader t;
  let tracker = Quorum.create (Quorum.Majority (all_ids t)) in
  Quorum.ack tracker t.env.id;
  t.votes <- Some tracker;
  reset_election_timer t;
  let send () =
    t.env.broadcast
      (RequestVote
         {
           term = t.term;
           last_index = last_index t;
           last_term = term_at t (last_index t);
         })
  in
  match t.env.Proto.storage with
  | None -> send ()
  | Some st ->
      (* the candidacy's term and self-vote bind across crashes: the
         solicitation leaves only once they are on disk *)
      let term = t.term in
      Storage.persist st (durable_term_ops t) (fun () ->
          if t.state = Candidate && t.term = term then send ())

let on_request t ~client (request : Proto.request) =
  match t.state with
  | Leader when lease_mode t && Command.is_read request.Proto.command ->
      if lease_valid t then serve_local_read t ~client request
      else Queue.push (client, request) t.pending_reads
  | Leader -> (
      let slot = Slot_log.reserve t.log in
      let e =
        { term = t.term; cmd = request.Proto.command; client = Some client }
      in
      Slot_log.set t.log slot e;
      t.env.obs.Proto.on_propose ~slot ~cmd:request.Proto.command;
      (match t.env.Proto.storage with
      | None -> t.match_index.(t.env.id) <- slot + 1
      | Some st ->
          (* the leader's own match counts only once the entry's fsync
             completes — by then leadership may have moved on *)
          Storage.write st (entry_op ~slot e);
          let term = t.term in
          Storage.sync st (fun () ->
              if t.state = Leader && t.term = term then begin
                if slot + 1 > t.match_index.(t.env.id) then
                  t.match_index.(t.env.id) <- slot + 1;
                advance_commit t
              end));
      match t.env.config.Config.batching with
      | None -> broadcast_append t
      | Some b ->
          (* defer replication until the batch fills or the wait timer
             fires; the next AppendEntries then carries the whole tail
             in one message per follower *)
          t.unflushed <- t.unflushed + 1;
          if t.unflushed >= b.Config.max_batch then broadcast_append t
          else if Sim.is_nil t.flush_timer then
            t.flush_timer <-
              t.env.schedule b.Config.max_wait_ms (fun () ->
                  t.flush_timer <- Sim.nil;
                  if t.state = Leader && t.unflushed > 0 then
                    broadcast_append t))
  | Follower | Candidate -> (
      match t.leader_id with
      | Some l when l <> t.env.id -> t.env.forward l ~client request
      | _ -> Queue.push (client, request) t.pending)

let drain_pending_to_leader t =
  match t.leader_id with
  | Some l when l <> t.env.id && t.state <> Leader ->
      while not (Queue.is_empty t.pending) do
        let client, request = Queue.pop t.pending in
        t.env.forward l ~client request
      done
  | _ -> ()

let on_request_vote t ~src ~term ~last_index:cand_last ~last_term =
  if term > t.term then become_follower t ~term;
  let up_to_date =
    last_term > term_at t (last_index t)
    || (last_term = term_at t (last_index t) && cand_last >= last_index t)
  in
  (* Lease safety: having accepted an AppendEntries grants its sender
     a window during which this replica helps no other candidate win —
     the counterpart of the leader's {!recompute_lease} bound. *)
  let lease_blocks =
    lease_mode t
    && src <> t.lease_holder
    && t.env.now () < t.lease_granted_until
  in
  let granted =
    (not lease_blocks)
    && term = t.term
    && up_to_date
    && match t.voted_for with None -> true | Some v -> v = src
  in
  if granted then begin
    t.voted_for <- Some src;
    reset_election_timer t
  end;
  let reply_term = t.term in
  match t.env.Proto.storage with
  | Some st when granted ->
      (* the vote binds across crashes: it leaves only after term and
         voted_for are on disk *)
      Storage.persist st (durable_term_ops t) (fun () ->
          t.env.send src (VoteReply { term = reply_term; granted = true }))
  | _ -> t.env.send src (VoteReply { term = reply_term; granted })

let on_vote_reply t ~src ~term ~granted =
  if term > t.term then become_follower t ~term
  else if t.state = Candidate && term = t.term && granted then
    match t.votes with
    | Some tracker ->
        Quorum.ack tracker src;
        if Quorum.satisfied tracker then become_leader t
    | None -> ()

(* Follower-side append processing shared by the direct path, a
   relay's local accept, and a fanned-out member (where the entries
   come from [leader] but the reply goes back to the forwarding
   relay). Returns the reply's (success, match_index); the caller
   sends it — with [t.term] read after this returns, since a higher
   [term] is adopted here. *)
let append_entries_core t ~leader ~term ~prev_index ~prev_term ~entries
    ~leader_commit =
  if term < t.term then (false, 0)
  else begin
    if term > t.term || t.state <> Follower then become_follower t ~term;
    t.leader_id <- Some leader;
    t.last_heard <- t.env.now ();
    reset_election_timer t;
    (* the accepted append doubles as the lease grant; the reply (of
       either polarity) is the leader's proof of it *)
    if lease_mode t then begin
      t.lease_holder <- leader;
      let until = t.env.now () +. lease_window t in
      if until > t.lease_granted_until then t.lease_granted_until <- until
    end;
    drain_pending_to_leader t;
    let consistent = prev_index < 0 || term_at t prev_index = prev_term in
    if not consistent then
      (false, Stdlib.min prev_index (Slot_log.next_slot t.log))
    else begin
      (* Append, overwriting conflicting suffixes. *)
      List.iteri
        (fun off (e : entry) ->
          let i = prev_index + 1 + off in
          match Slot_log.get t.log i with
          | Some existing when existing.term = e.term -> ()
          | _ ->
              Slot_log.set t.log i { e with client = None };
              (match t.env.Proto.storage with
              | None -> ()
              | Some st -> Storage.write st (entry_op ~slot:i e)))
        entries;
      let match_index = prev_index + 1 + List.length entries in
      if leader_commit > t.commit_index then begin
        t.commit_index <- Stdlib.min leader_commit match_index;
        apply_committed t
      end;
      (true, match_index)
    end
  end

let on_append_entries t ~src ~term ~prev_index ~prev_term ~entries
    ~leader_commit =
  let success, match_index =
    append_entries_core t ~leader:src ~term ~prev_index ~prev_term ~entries
      ~leader_commit
  in
  let reply_term = t.term in
  match t.env.Proto.storage with
  | Some st when success && entries <> [] ->
      (* the accept vote leaves only after its records are durable *)
      Storage.sync st (fun () ->
          t.env.send src
            (AppendReply { term = reply_term; success; match_index }))
  | _ -> t.env.send src (AppendReply { term = reply_term; success; match_index })

(* Snapshot install (Raft §7): replace the state machine with the
   shipped image, drop the log below its frontier, and answer with an
   ordinary AppendReply so the leader's match/next bookkeeping needs
   no special case. A stale image (we already applied past it) only
   refreshes leader identity and the election timer. *)
let on_install_snapshot t ~src ~term ~last_index ~last_term ~image =
  if term < t.term then
    t.env.send src
      (AppendReply
         {
           term = t.term;
           success = false;
           match_index = Slot_log.next_slot t.log;
         })
  else begin
    if term > t.term || t.state <> Follower then become_follower t ~term;
    t.leader_id <- Some src;
    t.last_heard <- t.env.now ();
    reset_election_timer t;
    if lease_mode t then begin
      t.lease_holder <- src;
      let until = t.env.now () +. lease_window t in
      if until > t.lease_granted_until then t.lease_granted_until <- until
    end;
    drain_pending_to_leader t;
    let reply_term = t.term in
    if last_index > Slot_log.exec_frontier t.log then begin
      Executor.install t.exec image;
      Slot_log.truncate t.log ~upto:last_index;
      t.snap_term <- last_term;
      t.snap <- Some (last_index, last_term, image);
      if last_index > t.commit_index then t.commit_index <- last_index;
      let reply () =
        t.env.send src
          (AppendReply
             { term = reply_term; success = true; match_index = last_index })
      in
      match t.env.Proto.storage with
      | None -> reply ()
      | Some st ->
          Storage.write st (Storage.Snapshot (last_index, last_term, image));
          Storage.write st (Storage.Truncate last_index);
          Storage.sync st reply
    end
    else
      t.env.send src
        (AppendReply
           {
             term = reply_term;
             success = true;
             match_index = Stdlib.max last_index (Slot_log.exec_frontier t.log);
           })
  end

(* A relay fanned a round out to us: process it as the leader's own
   append (leader identity, lease grant, election-timer reset), but
   reply to the relay so it can aggregate. *)
let on_fan_append t ~src ~origin ~inner =
  match inner with
  | AppendEntries { term; prev_index; prev_term; entries; leader_commit } ->
      let success, match_index =
        append_entries_core t ~leader:origin ~term ~prev_index ~prev_term
          ~entries ~leader_commit
      in
      t.env.send src (AppendReply { term = t.term; success; match_index })
  | _ -> ()

(* The leader routed a round through us: accept it locally, then fan
   it to our rotation group and start aggregating. A round we cannot
   accept (stale term or log inconsistency) is nacked straight back to
   the leader, which handles it exactly like a direct nack. *)
let on_relay_append t ~src ~gen ~inner =
  match inner with
  | AppendEntries { term; prev_index; prev_term; entries; leader_commit } -> (
      let expected = prev_index + 1 + List.length entries in
      match Hashtbl.find_opt t.relay_aggs expected with
      | Some a when a.Relay.a_tag = term && a.Relay.a_leader = src ->
          (* the leader's retransmission: resend the full ack, or
             re-fan to the members still missing from the bitmap *)
          if a.Relay.a_complete then relay_send_ack t expected a
          else begin
            let g = a.Relay.a_group in
            let size_bytes = append_size t entries in
            for i = 1 to Array.length g - 1 do
              if a.Relay.a_bits land (1 lsl i) = 0 then
                t.env.send_sized g.(i) ~size_bytes
                  (FanAppend { origin = src; inner })
            done
          end
      | stale ->
          let success, match_index =
            append_entries_core t ~leader:src ~term ~prev_index ~prev_term
              ~entries ~leader_commit
          in
          if not (success && match_index = expected) then
            t.env.send src
              (AppendReply { term = t.term; success; match_index })
          else begin
            (match stale with
            | Some old -> relay_drop t expected old
            | None -> ());
            let plan = relay_plan t ~leader:src ~gen in
            let gi = plan.Relay.group_of.(t.env.id) in
            if gi < 0 || plan.Relay.groups.(gi).(0) <> t.env.id then
              (* plans disagree (a gen raced a bump): answer direct *)
              t.env.send src
                (AppendReply { term = t.term; success = true; match_index })
            else begin
              let group = plan.Relay.groups.(gi) in
              let a =
                Relay.alloc t.relay_pool ~leader:src ~gen ~group ~tag:term
                  ~aux:expected ~batch:false
              in
              a.Relay.a_t0 <- t.env.now ();
              Relay.set_bit a 0;
              Hashtbl.replace t.relay_aggs expected a;
              let size_bytes = append_size t entries in
              List.iter
                (fun m ->
                  t.env.send_sized m ~size_bytes
                    (FanAppend { origin = src; inner }))
                (relay_fan_list t ~leader:src ~gen plan gi);
              if Relay.complete a then relay_finalize t expected a
              else
                a.Relay.a_flush <-
                  t.env.schedule (relay_flush_ms t) (fun () ->
                      relay_flush t expected);
              relay_prune t
            end
          end)
  | _ -> ()

(* One aggregated bitmap covers a whole rotation group: credit every
   bit's member with the round's match index, settle the relay's post
   once its group is complete, and advance the commit frontier. *)
let on_relay_append_ack t ~src ~term ~gen ~expected ~bits =
  if term > t.term then become_follower t ~term
  else if t.state = Leader && term = t.term && relay_on t then begin
    let plan = relay_plan t ~leader:t.env.id ~gen in
    let gi = plan.Relay.group_of.(src) in
    if gi >= 0 && plan.Relay.groups.(gi).(0) = src then begin
      let group = plan.Relay.groups.(gi) in
      let mask = Relay.full_mask (Array.length group) in
      if
        t.relay_akey <> 0 && expected = t.relay_expected
        && bits land mask = mask
      then t.env.rel.settle ~dst:src ~key:t.relay_akey;
      let lease = lease_mode t in
      for i = 0 to Array.length group - 1 do
        if bits land (1 lsl i) <> 0 then begin
          let m = group.(i) in
          (* the member accepted the append — its relayed reply proves
             the probe contact just like a direct reply would *)
          if lease && t.probe_sent_at.(m) > 0.0 then begin
            if t.probe_sent_at.(m) > t.acked_at.(m) then
              t.acked_at.(m) <- t.probe_sent_at.(m);
            t.probe_sent_at.(m) <- 0.0
          end;
          t.match_index.(m) <- Stdlib.max t.match_index.(m) expected;
          t.next_index.(m) <- Stdlib.max t.next_index.(m) expected
        end
      done;
      if lease then recompute_lease t;
      advance_commit t;
      if t.commit_index >= t.relay_expected && not (Sim.is_nil t.relay_fb)
      then begin
        t.env.Proto.cancel t.relay_fb;
        t.relay_fb <- Sim.nil
      end
    end
  end

let on_append_reply t ~src ~term ~success ~match_index =
  if relay_absorb_reply t ~src ~term ~success ~match_index then ()
  else if term > t.term then become_follower t ~term
  else if t.state = Leader && term = t.term then begin
    (* Either polarity of a current-term reply proves the follower
       accepted an append of ours sent no earlier than the recorded
       probe time — it reset its election timer and granted then — so
       the probe round-trip extends the lease. *)
    if lease_mode t && t.probe_sent_at.(src) > 0.0 then begin
      if t.probe_sent_at.(src) > t.acked_at.(src) then
        t.acked_at.(src) <- t.probe_sent_at.(src);
      t.probe_sent_at.(src) <- 0.0;
      recompute_lease t
    end;
    if success then begin
      (* the open post's ack: a success at or past the match it was
         shipped to establish (an older reply leaves it posted) *)
      if t.append_key.(src) <> 0 && match_index >= t.inflight_match.(src)
      then begin
        t.env.rel.settle ~dst:src ~key:t.append_key.(src);
        t.append_key.(src) <- 0;
        t.inflight_match.(src) <- 0
      end;
      t.match_index.(src) <- Stdlib.max t.match_index.(src) match_index;
      t.next_index.(src) <- Stdlib.max t.next_index.(src) match_index;
      advance_commit t
    end
    else begin
      (* Fast backoff to the follower's hinted match point. *)
      t.next_index.(src) <- Stdlib.max 0 (Stdlib.min match_index (t.next_index.(src) - 1));
      send_append t src
    end
  end

let on_message t ~src = function
  | RequestVote { term; last_index; last_term } ->
      on_request_vote t ~src ~term ~last_index ~last_term
  | VoteReply { term; granted } -> on_vote_reply t ~src ~term ~granted
  | AppendEntries { term; prev_index; prev_term; entries; leader_commit } ->
      on_append_entries t ~src ~term ~prev_index ~prev_term ~entries
        ~leader_commit
  | AppendReply { term; success; match_index } ->
      on_append_reply t ~src ~term ~success ~match_index
  | RelayAppend { gen; inner } -> on_relay_append t ~src ~gen ~inner
  | FanAppend { origin; inner } -> on_fan_append t ~src ~origin ~inner
  | RelayAppendAck { term; gen; expected; bits } ->
      on_relay_append_ack t ~src ~term ~gen ~expected ~bits
  | InstallSnapshot { term; last_index; last_term; image } ->
      on_install_snapshot t ~src ~term ~last_index ~last_term ~image

let rec heartbeat_loop t =
  let period = t.env.config.Config.failover_timeout_ms /. 4.0 in
  ignore
  @@ t.env.schedule period (fun () ->
         (if t.state = Leader then
            if t.unflushed > 0 then broadcast_append t
            else broadcast_keepalive t);
         heartbeat_loop t)

let rec election_loop t =
  let period = t.env.config.Config.failover_timeout_ms /. 4.0 in
  ignore
  @@ t.env.schedule period (fun () ->
         (if t.state <> Leader && t.env.now () > t.election_deadline then
            start_election t);
         election_loop t)

let on_start t =
  t.last_heard <- t.env.now ();
  (* Deterministic fast start: replica 0 stands for election right
     away so the common case elects it immediately, as with etcd's
     initial election. *)
  let base = t.env.config.Config.failover_timeout_ms in
  if t.env.id = 0 then
    ignore
      (t.env.schedule 1.0 (fun () ->
           if t.state = Follower && t.leader_id = None then start_election t))
  else t.election_deadline <- t.env.now () +. base +. Rng.float t.env.rng base;
  heartbeat_loop t;
  election_loop t

(* Boot a FRESH replica instance from durable state after a crash (the
   cluster engine swaps instances at the recovery edge). Volatile
   state — role, leader identity, commit index beyond the snapshot,
   match/next bookkeeping, leases — is gone by construction; the
   durable term, vote, snapshot and log survive. The replica restarts
   as a follower with a full election timeout: even a pre-crash leader
   must win a fresh election (or hear from the incumbent) before it
   touches the log again. *)
let on_recover t =
  (match t.env.Proto.storage with
  | None -> ()
  | Some st ->
      t.term <- Storage.reg st 0;
      let v = Storage.reg st 1 in
      t.voted_for <- (if v > 0 then Some (v - 1) else None);
      (match Storage.snapshot st with
      | Some (last, last_term, image) ->
          Executor.install t.exec image;
          Slot_log.truncate t.log ~upto:last;
          t.snap_term <- last_term;
          t.snap <- Some (last, last_term, image);
          t.commit_index <- last
      | None -> ());
      Storage.iter_entries st ~f:(fun slot (de : Storage.entry) ->
          if slot >= Slot_log.base t.log then
            Slot_log.set t.log slot
              { term = de.Storage.a; cmd = de.Storage.cmd; client = None }));
  t.last_heard <- t.env.now ();
  reset_election_timer t;
  heartbeat_loop t;
  election_loop t
