type message =
  | MAccept of { slot : int; cmd : Command.t; commit_up_to : int }
  | MAcceptOk of { slot : int }
  | MSkip of { from_slot : int; upto : int }
      (** the sender commits no-ops in its owned slots in
          [\[from_slot, upto)] — all unused at the sender, so they can
          never carry a proposal *)
  | MCommit of { slot : int; cmd : Command.t }

let name = "mencius"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | MAccept _ -> "MAccept"
  | MAcceptOk _ -> "MAcceptOk"
  | MSkip _ -> "MSkip"
  | MCommit _ -> "MCommit"

type entry = {
  mutable cmd : Command.t;
  mutable client : Address.t option;
  mutable quorum : Quorum.t option;
  mutable committed : bool;
}

type replica = {
  env : message Proto.env;
  log : entry Slot_log.t;
  exec : Executor.t;
  mutable next_own : int; (* smallest unused owned slot *)
  mutable skips : int;
  mutable committed_n : int;
}

let create (env : _ Proto.env) =
  {
    env;
    log = Slot_log.create ();
    exec = Executor.create ();
    next_own = env.Proto.id;
    skips = 0;
    committed_n = 0;
  }

let executor t = t.exec
let next_owned_slot t = t.next_own
let skips_issued t = t.skips
let committed_count t = t.committed_n
let leader_of_key (t : replica) (_ : Command.key) = Some t.env.id

let all_ids (t : replica) = List.init t.env.n (fun i -> i)

let advance t =
  Slot_log.advance_frontier t.log
    ~executable:(fun (e : entry) -> e.committed)
    ~f:(fun _slot (e : entry) ->
      t.committed_n <- t.committed_n + 1;
      let read = Executor.execute t.exec e.cmd in
      match e.client with
      | Some client ->
          e.client <- None;
          t.env.reply client
            { Proto.command = e.cmd; read; replier = t.env.id; leader_hint = None }
      | None -> ())

let commit_up_to t bound =
  let changed = ref false in
  (* slots below the frontier are committed by construction (the
     frontier only advances over committed entries) — skip them. *)
  for slot = Slot_log.exec_frontier t.log to bound - 1 do
    match Slot_log.get t.log slot with
    | Some (e : entry) when not e.committed ->
        e.committed <- true;
        changed := true
    | _ -> ()
  done;
  if !changed then advance t

(* Commit no-ops in [owner_id]'s slots within [from_slot, upto).
   [from_slot] is the owner's first unused slot at announce time, so
   no proposal can ever occupy the skipped range. *)
let apply_skip t ~owner_id ~from_slot ~upto =
  let n = t.env.n in
  (* first owned slot of owner_id at or above from_slot *)
  let slot = ref (owner_id + (((Stdlib.max 0 (from_slot - owner_id)) + n - 1) / n * n)) in
  while !slot < upto do
    (match Slot_log.get t.log !slot with
    | Some (e : entry) when e.committed -> ()
    | Some e ->
        e.cmd <- Command.noop;
        e.client <- None;
        e.committed <- true
    | None ->
        Slot_log.set t.log !slot
          { cmd = Command.noop; client = None; quorum = None; committed = true });
    slot := !slot + n
  done;
  advance t

let skip_own_below t upto =
  if upto > t.next_own then begin
    t.skips <- t.skips + 1;
    let from_slot = t.next_own in
    apply_skip t ~owner_id:t.env.id ~from_slot ~upto;
    (* our next own slot jumps past everything we skipped *)
    let n = t.env.n in
    let k = (upto - t.env.id + n - 1) / n in
    t.next_own <- t.env.id + (k * n);
    t.env.broadcast (MSkip { from_slot; upto })
  end

let on_request t ~client (request : Proto.request) =
  let slot = t.next_own in
  t.next_own <- slot + t.env.n;
  let tracker = Quorum.create (Quorum.Majority (all_ids t)) in
  Quorum.ack tracker t.env.id;
  Slot_log.set t.log slot
    {
      cmd = request.Proto.command;
      client = Some client;
      quorum = Some tracker;
      committed = false;
    };
  t.env.broadcast
    (MAccept
       { slot; cmd = request.Proto.command; commit_up_to = Slot_log.exec_frontier t.log })

let on_accept t ~src ~slot ~cmd ~commit_up_to:bound =
  (match Slot_log.get t.log slot with
  | Some (e : entry) when e.committed -> ()
  | Some e ->
      if not (Command.equal e.cmd cmd) then e.client <- None;
      e.cmd <- cmd
  | None ->
      Slot_log.set t.log slot { cmd; client = None; quorum = None; committed = false });
  commit_up_to t bound;
  (* another owner is at [slot]; skip our own stale slots below it so
     the frontier can advance without us *)
  skip_own_below t slot;
  t.env.send src (MAcceptOk { slot })

let on_accept_ok t ~src ~slot =
  match Slot_log.get t.log slot with
  | Some ({ quorum = Some tracker; committed = false; _ } as e : entry) ->
      Quorum.ack tracker src;
      if Quorum.satisfied tracker then begin
        e.committed <- true;
        advance t;
        t.env.broadcast (MCommit { slot; cmd = e.cmd })
      end
  | _ -> ()

let on_commit t ~slot ~cmd =
  (match Slot_log.get t.log slot with
  | Some (e : entry) ->
      if not (Command.equal e.cmd cmd) then e.client <- None;
      e.cmd <- cmd;
      e.committed <- true
  | None ->
      Slot_log.set t.log slot { cmd; client = None; quorum = None; committed = true });
  advance t;
  skip_own_below t slot

let on_skip t ~src ~from_slot ~upto =
  apply_skip t ~owner_id:src ~from_slot ~upto

let on_message t ~src = function
  | MAccept { slot; cmd; commit_up_to } -> on_accept t ~src ~slot ~cmd ~commit_up_to
  | MAcceptOk { slot } -> on_accept_ok t ~src ~slot
  | MSkip { from_slot; upto } -> on_skip t ~src ~from_slot ~upto
  | MCommit { slot; cmd } -> on_commit t ~slot ~cmd

let on_start (_ : replica) = ()

(* In-memory protocol: a crash-recovery edge reboots it from scratch
   (no durable state to reload) — the cluster engine only pairs
   [Config.storage] with protocols that persist, so this is a
   rejoin-from-zero fallback. *)
let on_recover = on_start
