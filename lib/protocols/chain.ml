type message =
  | Propagate of { seq : int; cmd : Command.t; client : Address.t }

let name = "chain"
let cpu_factor (_ : Config.t) = 1.0
let message_label = function Propagate _ -> "Propagate"

type replica = {
  env : message Proto.env;
  exec : Executor.t;
  mutable next_seq : int; (* head: write sequence numbers *)
  mutable applied_seq : int; (* last sequence applied here *)
  pending : (int, Command.t * Address.t) Hashtbl.t; (* out-of-order buffer *)
  mutable forwarded : int;
  mutable tail_reads : int; (* fast-path reads served (read_path = Tail) *)
}

let create env =
  {
    env;
    exec = Executor.create ();
    next_seq = 0;
    applied_seq = -1;
    pending = Hashtbl.create 32;
    forwarded = 0;
    tail_reads = 0;
  }

let executor t = t.exec
let head (_ : replica) = 0
let tail t = t.env.n - 1
let is_head t = t.env.id = head t
let is_tail t = t.env.id = tail t
let writes_forwarded t = t.forwarded
let tail_reads_served t = t.tail_reads
let leader_of_key t (_ : Command.key) = Some (tail t)

let reply t ~client ~cmd ~read =
  t.env.reply client
    { Proto.command = cmd; read; replier = t.env.id; leader_hint = None }

(* Apply writes in sequence order, forwarding down the chain; the tail
   answers the client. *)
let rec apply_ready t =
  match Hashtbl.find_opt t.pending (t.applied_seq + 1) with
  | None -> ()
  | Some (cmd, client) ->
      Hashtbl.remove t.pending (t.applied_seq + 1);
      t.applied_seq <- t.applied_seq + 1;
      ignore (Executor.execute t.exec cmd);
      if is_tail t then reply t ~client ~cmd ~read:None
      else begin
        t.forwarded <- t.forwarded + 1;
        (* Explicitly-acked: a dropped hop would otherwise leave a
           permanent hole in the successor's sequence and wedge the
           whole suffix of the chain; duplicates are suppressed at the
           receiver by the substrate's dedup. *)
        ignore
          (t.env.rel.post ~ack:Reliable.Explicit (t.env.id + 1)
             (Propagate { seq = t.applied_seq; cmd; client }))
      end;
      apply_ready t

let handle_write t ~client cmd =
  if is_head t then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.pending seq (cmd, client);
    apply_ready t
  end
  else t.env.forward (head t) ~client { Proto.command = cmd; sent_at_ms = 0.0 }

let handle_read t ~client cmd =
  if is_tail t then
    match t.env.config.Config.read_path with
    | Some Config.Tail ->
        (* Fast path: peek the store without consuming executor
           history — the tail-read counterpart of a lease read. The
           legacy path below stays the default so existing chain
           baselines are untouched. *)
        let read = Executor.read t.exec cmd in
        t.tail_reads <- t.tail_reads + 1;
        t.env.obs.Proto.on_read ();
        reply t ~client ~cmd ~read
    | _ ->
        let read = Executor.execute t.exec cmd in
        reply t ~client ~cmd ~read
  else t.env.forward (tail t) ~client { Proto.command = cmd; sent_at_ms = 0.0 }

let on_request t ~client (request : Proto.request) =
  let cmd = request.Proto.command in
  if Command.is_write cmd then handle_write t ~client cmd
  else handle_read t ~client cmd

let on_message t ~src:_ = function
  | Propagate { seq; cmd; client } ->
      Hashtbl.replace t.pending seq (cmd, client);
      apply_ready t

let on_start (_ : replica) = ()

(* In-memory protocol: a crash-recovery edge reboots it from scratch
   (no durable state to reload) — the cluster engine only pairs
   [Config.storage] with protocols that persist, so this is a
   rejoin-from-zero fallback. *)
let on_recover = on_start
