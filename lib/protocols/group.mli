(** Intra-zone replication group with a fixed leader: the level-1
    building block of the hierarchical protocols (WanKeeper's
    per-region Paxos groups, VPaxos's Paxos groups).

    The group runs phase-2-only multi-Paxos among its members — the
    leader is configuration-fixed, so phase-1 is implicit, matching
    the paper's deployment where each region's group leader is
    pre-designated. Commands commit on a majority of members and
    execute in log order on every member. *)

type message =
  | Accept of { slot : int; cmd : Command.t; commit_up_to : int }
  | AcceptOk of { slot : int }
  | Commit of { slot : int; cmd : Command.t }

val message_label : message -> string
(** Constructor tag (["Accept"], ...) for the enclosing protocol's
    per-message-type tracing counters. *)

type t

val create :
  env:'outer Proto.env ->
  wrap:(message -> 'outer) ->
  members:int list ->
  leader:int ->
  exec:Executor.t ->
  on_executed:(Command.t -> Address.t option -> Command.value option -> unit) ->
  t
(** [wrap] embeds group messages into the enclosing protocol's message
    type; [on_executed cmd client read] fires on every member as
    commands execute (the protocol replies to [client] from the
    leader). *)

val is_leader : t -> bool
val leader : t -> int
val members : t -> int list

val propose : t -> client:Address.t option -> Command.t -> unit
(** Leader-only; raises [Invalid_argument] elsewhere. *)

val on_message : t -> src:int -> message -> unit
val committed_count : t -> int

val last_proposed_slot : t -> int
(** Highest slot this leader has proposed; -1 before the first
    proposal. *)

val frontier : t -> int
(** First unexecuted slot. Together with {!last_proposed_slot} this
    lets a protocol detect that its in-flight proposals have
    drained. *)
