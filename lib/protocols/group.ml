type message =
  | Accept of { slot : int; cmd : Command.t; commit_up_to : int }
  | AcceptOk of { slot : int }
  | Commit of { slot : int; cmd : Command.t }

type entry = {
  mutable cmd : Command.t;
  mutable client : Address.t option;
  mutable quorum : Quorum.t option;
  mutable committed : bool;
  mutable rkey : int;
      (* reliable-delivery key of the in-flight Accept (0 when none) *)
}

let message_label = function
  | Accept _ -> "Accept"
  | AcceptOk _ -> "AcceptOk"
  | Commit _ -> "Commit"

type t = {
  id : int;
  members : int list;
  leader : int;
  send : int -> message -> unit;
  post_peers : message -> int;
      (* reliable multicast of a wrapped message to the other members;
         AcceptOks are the piggybacked acks *)
  settle : dst:int -> key:int -> unit;
  settle_all : key:int -> unit;
  log : entry Slot_log.t;
  exec : Executor.t;
  on_executed : Command.t -> Address.t option -> Command.value option -> unit;
  mutable committed_n : int;
}

let create ~env ~wrap ~members ~leader ~exec ~on_executed =
  if not (List.mem leader members) then
    invalid_arg "Group.create: leader not in members";
  let peers = List.filter (fun m -> m <> env.Proto.id) members in
  {
    id = env.Proto.id;
    members;
    leader;
    send = (fun dst m -> env.Proto.send dst (wrap m));
    post_peers =
      (fun m ->
        if peers = [] then 0
        else
          env.Proto.rel.Proto.post_multi ~ack:Reliable.Piggyback peers (wrap m));
    settle = (fun ~dst ~key -> env.Proto.rel.Proto.settle ~dst ~key);
    settle_all = (fun ~key -> env.Proto.rel.Proto.settle_all ~key);
    log = Slot_log.create ();
    exec;
    on_executed;
    committed_n = 0;
  }

let is_leader t = t.id = t.leader
let leader t = t.leader
let members t = t.members

let peers t = List.filter (fun m -> m <> t.id) t.members

let advance t =
  Slot_log.advance_frontier t.log
    ~executable:(fun (e : entry) -> e.committed)
    ~f:(fun _slot (e : entry) ->
      t.committed_n <- t.committed_n + 1;
      let read = Executor.execute t.exec e.cmd in
      let client = e.client in
      e.client <- None;
      t.on_executed e.cmd client read)

let commit_up_to t bound =
  let changed = ref false in
  (* slots below the frontier are committed by construction (the
     frontier only advances over committed entries) — skip them. *)
  for slot = Slot_log.exec_frontier t.log to bound - 1 do
    match Slot_log.get t.log slot with
    | Some (e : entry) when not e.committed ->
        e.committed <- true;
        changed := true
    | _ -> ()
  done;
  if !changed then advance t

let propose t ~client cmd =
  if not (is_leader t) then invalid_arg "Group.propose: not the group leader";
  let slot = Slot_log.reserve t.log in
  let tracker = Quorum.create (Quorum.Majority t.members) in
  Quorum.ack tracker t.id;
  let e = { cmd; client; quorum = Some tracker; committed = false; rkey = 0 } in
  Slot_log.set t.log slot e;
  e.rkey <-
    t.post_peers (Accept { slot; cmd; commit_up_to = Slot_log.exec_frontier t.log });
  (* single-member groups commit instantly *)
  (match Slot_log.get t.log slot with
  | Some (e : entry) when not e.committed && Quorum.satisfied tracker ->
      e.committed <- true;
      advance t
  | _ -> ())

let on_accept t ~src ~slot ~cmd ~commit_up_to:bound =
  (match Slot_log.get t.log slot with
  | Some (e : entry) when e.committed -> ()
  | Some e ->
      if not (Command.equal e.cmd cmd) then e.client <- None;
      e.cmd <- cmd
  | None ->
      Slot_log.set t.log slot
        { cmd; client = None; quorum = None; committed = false; rkey = 0 });
  commit_up_to t bound;
  t.send src (AcceptOk { slot })

let on_accept_ok t ~src ~slot =
  if is_leader t then
    match Slot_log.get t.log slot with
    | Some ({ quorum = Some tracker; committed = false; _ } as e : entry) ->
        t.settle ~dst:src ~key:e.rkey;
        Quorum.ack tracker src;
        if Quorum.satisfied tracker then begin
          e.committed <- true;
          t.settle_all ~key:e.rkey;
          advance t;
          List.iter (fun m -> t.send m (Commit { slot; cmd = e.cmd })) (peers t)
        end
    | Some ({ committed = true; rkey; _ } : entry) when rkey <> 0 ->
        (* late ack for an already-committed slot: stop the timer *)
        t.settle ~dst:src ~key:rkey
    | _ -> ()

let on_commit t ~slot ~cmd =
  (match Slot_log.get t.log slot with
  | Some (e : entry) ->
      if not (Command.equal e.cmd cmd) then e.client <- None;
      e.cmd <- cmd;
      e.committed <- true
  | None ->
      Slot_log.set t.log slot
        { cmd; client = None; quorum = None; committed = true; rkey = 0 });
  advance t

let on_message t ~src = function
  | Accept { slot; cmd; commit_up_to } -> on_accept t ~src ~slot ~cmd ~commit_up_to
  | AcceptOk { slot } -> on_accept_ok t ~src ~slot
  | Commit { slot; cmd } -> on_commit t ~slot ~cmd

let committed_count t = t.committed_n
let last_proposed_slot t = Slot_log.next_slot t.log - 1
let frontier t = Slot_log.exec_frontier t.log
