type message =
  | P1a of { key : Command.key; ballot : Ballot.t; frontier : int }
  | P1b of {
      key : Command.key;
      ballot : Ballot.t;
      ok : bool;
      accepted : (int * Ballot.t * Command.t * bool) list;
          (** slot, ballot, command, committed? — committed entries let
              the new owner catch up on state it missed *)
    }
  | P2a of {
      key : Command.key;
      ballot : Ballot.t;
      slot : int;
      cmd : Command.t;
      commit_up_to : int;
    }
  | P2b of { key : Command.key; ballot : Ballot.t; slot : int; ok : bool }
  | CommitK of { key : Command.key; slot : int; cmd : Command.t }
  | StealHint of { key : Command.key }
      (** the owner observed enough consecutive accesses from the
          recipient's zone; the recipient should steal the object *)

let name = "wpaxos"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | P1a _ -> "P1a"
  | P1b _ -> "P1b"
  | P2a _ -> "P2a"
  | P2b _ -> "P2b"
  | CommitK _ -> "CommitK"
  | StealHint _ -> "StealHint"

type entry = {
  mutable ballot : Ballot.t;
  mutable cmd : Command.t;
  mutable client : Address.t option;
  mutable quorum : Quorum.t option;
  mutable committed : bool;
  mutable rkey : int;
      (** reliable-delivery key of the in-flight P2a (0 when none) *)
}

type phase1_state = {
  tracker : Quorum.t;
  mutable recovered : (int * Ballot.t * Command.t * bool) list;
  rkey : int;  (** reliable-delivery key of the steal's P1a broadcast *)
}

type key_state = {
  mutable ballot : Ballot.t;
  mutable owner_active : bool; (* this replica completed phase-1 *)
  log : entry Slot_log.t;
  mutable p1 : phase1_state option;
  pending : (Address.t * Proto.request) Queue.t;
  (* owner-side locality tracking: consecutive requests from one
     remote zone (the three-consecutive-access policy, §5.3). The
     owner sees the globally interleaved request stream, so contended
     objects never trigger adaptation — they stay put, as in the
     paper's conflict experiments. *)
  mutable streak_zone : int;
  mutable streak : int;
  mutable last_migration_ms : float;
}

type replica = {
  env : message Proto.env;
  zones : int list array; (* replica ids per zone *)
  my_zone : int;
  keys : (Command.key, key_state) Hashtbl.t;
  exec : Executor.t;
  mutable steals : int;
  mutable committed : int;
}

let zone_layout (env : _ Proto.env) =
  let regions = Topology.regions env.Proto.topology in
  let zones =
    List.map (fun r -> Topology.replicas_in env.Proto.topology r) regions
  in
  Array.of_list zones

let find_zone zones id =
  let z = ref 0 in
  Array.iteri (fun i members -> if List.mem id members then z := i) zones;
  !z

(* The paper's evaluation restricts leaders to the first
   [leaders_per_region] replicas of each zone. *)
let zone_leaders (t : replica) zone =
  List.filteri
    (fun rank _ -> rank < t.env.config.Config.leaders_per_region)
    t.zones.(zone)

let is_leader_node t = List.mem t.env.id (zone_leaders t t.my_zone)

let create env =
  let zones = zone_layout env in
  {
    env;
    zones;
    my_zone = find_zone zones env.Proto.id;
    keys = Hashtbl.create 256;
    exec = Executor.create ();
    steals = 0;
    committed = 0;
  }

let key_state t key =
  match Hashtbl.find_opt t.keys key with
  | Some ks -> ks
  | None ->
      let ballot, owner_active =
        match t.env.config.Config.initial_object_owner with
        | Some owner -> (Ballot.initial ~owner, owner = t.env.id)
        | None -> (Ballot.zero, false)
      in
      let ks =
        {
          ballot;
          owner_active;
          log = Slot_log.create ();
          p1 = None;
          pending = Queue.create ();
          streak_zone = -1;
          streak = 0;
          last_migration_ms = neg_infinity;
        }
      in
      Hashtbl.add t.keys key ks;
      ks

let executor t = t.exec
let owns t key = (key_state t key).owner_active

let owner_of t key =
  let ks = key_state t key in
  if ks.ballot.Ballot.round > 0 then Some ks.ballot.Ballot.owner else None

let leader_of_key = owner_of
let steals_started t = t.steals
let commands_committed t = t.committed

let n_zones t = Array.length t.zones

(* Phase-1 quorum: majority in each of Z - fz zones. *)
let q1_spec t =
  let need = Stdlib.max 1 (n_zones t - t.env.config.Config.fz) in
  Quorum.Zones
    {
      zones = Array.to_list t.zones;
      need_zones = need;
      per_zone = Quorum.Per_zone_majority;
    }

(* Phase-2 zones: own zone plus the fz nearest others. *)
let q2_zones t =
  let fz = t.env.config.Config.fz in
  let my_region = Topology.region_of_replica t.env.topology t.env.id in
  let others =
    List.init (n_zones t) (fun z -> z)
    |> List.filter (fun z -> z <> t.my_zone)
    |> List.sort (fun a b ->
           let d z =
             match t.zones.(z) with
             | r :: _ ->
                 Topology.rtt_mean t.env.topology my_region
                   (Topology.region_of_replica t.env.topology r)
             | [] -> infinity
           in
           Float.compare (d a) (d b))
  in
  let chosen = List.filteri (fun rank _ -> rank < fz) others in
  t.my_zone :: chosen

let q2_spec t =
  let zs = q2_zones t in
  Quorum.Zones
    {
      zones = List.map (fun z -> t.zones.(z)) zs;
      need_zones = List.length zs;
      per_zone = Quorum.Per_zone_majority;
    }

(* Execute committed per-key slots in order; the owner answers
   clients. *)
let advance t (ks : key_state) =
  Slot_log.advance_frontier ks.log
    ~executable:(fun (e : entry) -> e.committed)
    ~f:(fun _slot (e : entry) ->
      let read = Executor.execute t.exec e.cmd in
      t.committed <- t.committed + 1;
      match e.client with
      | Some client ->
          e.client <- None;
          t.env.reply client
            {
              Proto.command = e.cmd;
              read;
              replier = t.env.id;
              leader_hint = None;
            }
      | None -> ())

let commit_up_to t ks bound =
  let changed = ref false in
  (* slots below the frontier are committed by construction (the
     frontier only advances over committed entries) — skip them. *)
  for slot = Slot_log.exec_frontier ks.log to bound - 1 do
    match Slot_log.get ks.log slot with
    | Some (e : entry) when not e.committed ->
        e.committed <- true;
        changed := true
    | _ -> ()
  done;
  if !changed then advance t ks

(* Stop retransmitting everything this replica had in flight for one
   object: its steal's P1a and any owner-side P2as. Called wherever
   the replica is preempted for the key — the winner re-proposes. *)
let withdraw_posts t (ks : key_state) =
  (match ks.p1 with
  | Some st when st.rkey <> 0 -> t.env.rel.settle_all ~key:st.rkey
  | _ -> ());
  Slot_log.iter_from ks.log ~start:(Slot_log.exec_frontier ks.log)
    ~f:(fun _slot (e : entry) ->
      if e.rkey <> 0 then begin
        t.env.rel.settle_all ~key:e.rkey;
        e.rkey <- 0
      end)

let propose t key ks ~client (request : Proto.request) =
  let slot = Slot_log.reserve ks.log in
  let tracker = Quorum.create (q2_spec t) in
  Quorum.ack tracker t.env.id;
  let entry =
    {
      ballot = ks.ballot;
      cmd = request.Proto.command;
      client = Some client;
      quorum = Some tracker;
      committed = false;
      rkey = 0;
    }
  in
  Slot_log.set ks.log slot entry;
  let msg =
    P2a
      {
        key;
        ballot = ks.ballot;
        slot;
        cmd = request.Proto.command;
        commit_up_to = Slot_log.exec_frontier ks.log;
      }
  in
  entry.rkey <-
    (if t.env.config.Config.thrifty then begin
       (* contact only the phase-2 zones *)
       let dsts =
         List.concat_map (fun z -> t.zones.(z)) (q2_zones t)
         |> List.filter (fun i -> i <> t.env.id)
       in
       t.env.rel.post_multi ~ack:Reliable.Piggyback dsts msg
     end
     else t.env.rel.post_all ~ack:Reliable.Piggyback msg
       (* full replication, as in §5 *))

let drain_pending t key ks =
  if ks.owner_active then
    while not (Queue.is_empty ks.pending) do
      let client, request = Queue.pop ks.pending in
      propose t key ks ~client request
    done
  else if
    ks.ballot.Ballot.round > 0
    && ks.ballot.Ballot.owner <> t.env.id
    && ks.p1 = None
  then
    while not (Queue.is_empty ks.pending) do
      let client, request = Queue.pop ks.pending in
      t.env.forward ks.ballot.Ballot.owner ~client request
    done

let zone_of_address t addr =
  let region = Topology.region_of t.env.topology addr in
  let z = ref t.my_zone in
  Array.iteri
    (fun i members ->
      match members with
      | m :: _ ->
          if Region.equal (Topology.region_of_replica t.env.topology m) region
          then z := i
      | [] -> ())
    t.zones;
  !z

let start_steal t key ks =
  t.steals <- t.steals + 1;
  ks.ballot <- Ballot.next ks.ballot ~owner:t.env.id;
  ks.owner_active <- false;
  ks.streak <- 0;
  ks.streak_zone <- -1;
  (* our older in-flight posts (a lost steal, preempted P2as) are
     superseded by this candidacy *)
  withdraw_posts t ks;
  let tracker = Quorum.create (q1_spec t) in
  let state = { tracker; recovered = []; rkey = t.env.rel.fresh () } in
  ks.p1 <- Some state;
  Quorum.ack tracker t.env.id;
  let frontier = Slot_log.exec_frontier ks.log in
  Slot_log.iter_from ks.log ~start:frontier ~f:(fun slot (e : entry) ->
      state.recovered <- (slot, e.ballot, e.cmd, e.committed) :: state.recovered);
  ignore
    (t.env.rel.post_all ~key:state.rkey ~ack:Reliable.Piggyback
       (P1a { key; ballot = ks.ballot; frontier }))

let become_owner t key ks (state : phase1_state) =
  ks.p1 <- None;
  ks.owner_active <- true;
  (* stop re-soliciting promises; stragglers learn from P2a/CommitK *)
  t.env.rel.settle_all ~key:state.rkey;
  (* Committed entries reported by the quorum are adopted as-is (they
     carry state the stealer may have missed — q1 intersects every
     phase-2 quorum, so every committed slot is reported by someone);
     uncommitted slots adopt the highest-ballot command and are
     re-proposed; unreported gaps become no-ops. *)
  let best = Hashtbl.create 8 in
  List.iter
    (fun (slot, b, cmd, committed) ->
      match Hashtbl.find_opt best slot with
      | Some (_, _, true) -> ()
      | Some (b', _, false) when committed || Ballot.(b > b') ->
          Hashtbl.replace best slot (b, cmd, committed)
      | Some _ -> ()
      | None -> Hashtbl.replace best slot (b, cmd, committed))
    state.recovered;
  let max_slot = Hashtbl.fold (fun s _ acc -> Stdlib.max s acc) best (-1) in
  for slot = Slot_log.exec_frontier ks.log to max_slot do
    let cmd, already_committed =
      match Hashtbl.find_opt best slot with
      | Some (_, cmd, committed) -> (cmd, committed)
      | None -> (Command.noop, false)
    in
    (match Slot_log.get ks.log slot with
    | Some (e : entry) when e.committed -> ()
    | Some e ->
        if not (Command.equal e.cmd cmd) then e.client <- None;
        e.ballot <- ks.ballot;
        e.cmd <- cmd;
        if already_committed then e.committed <- true
        else begin
          let tracker = Quorum.create (q2_spec t) in
          Quorum.ack tracker t.env.id;
          e.quorum <- Some tracker
        end
    | None ->
        let tracker = Quorum.create (q2_spec t) in
        Quorum.ack tracker t.env.id;
        Slot_log.set ks.log slot
          {
            ballot = ks.ballot;
            cmd;
            client = None;
            quorum = Some tracker;
            committed = already_committed;
            rkey = 0;
          });
    match Slot_log.get ks.log slot with
    | Some (e : entry) when not e.committed ->
        e.rkey <-
          t.env.rel.post_all ~ack:Reliable.Piggyback
            (P2a
               {
                 key;
                 ballot = ks.ballot;
                 slot;
                 cmd = e.cmd;
                 commit_up_to = Slot_log.exec_frontier ks.log;
               })
    | _ -> ()
  done;
  advance t ks;
  drain_pending t key ks

(* Owner-side adaptation: count consecutive requests from a single
   remote zone; at the threshold, tell that zone's leader to steal. *)
let note_owner_access t key ks ~client =
  let origin = zone_of_address t client in
  if origin = t.my_zone then begin
    ks.streak_zone <- -1;
    ks.streak <- 0
  end
  else begin
    if ks.streak_zone = origin then ks.streak <- ks.streak + 1
    else begin
      ks.streak_zone <- origin;
      ks.streak <- 1
    end;
    if
      ks.streak >= t.env.config.Config.migration_threshold
      && t.env.now () -. ks.last_migration_ms
         >= t.env.config.Config.migration_cooldown_ms
    then begin
      ks.streak <- 0;
      ks.streak_zone <- -1;
      ks.last_migration_ms <- t.env.now ();
      match zone_leaders t origin with
      | l :: _ -> t.env.send l (StealHint { key })
      | [] -> ()
    end
  end

let on_request t ~client (request : Proto.request) =
  let key = Command.key request.Proto.command in
  (* Non-leader replicas hand requests to a leader in their zone. *)
  if not (is_leader_node t) then
    match zone_leaders t t.my_zone with
    | l :: _ when l <> t.env.id -> t.env.forward l ~client request
    | _ -> () (* no leader configured; drop *)
  else begin
    let ks = key_state t key in
    if ks.owner_active then begin
      note_owner_access t key ks ~client;
      propose t key ks ~client request
    end
    else if ks.p1 <> None then Queue.push (client, request) ks.pending
    else if ks.ballot.Ballot.round = 0 then begin
      (* unowned: claim it *)
      Queue.push (client, request) ks.pending;
      start_steal t key ks
    end
    else t.env.forward ks.ballot.Ballot.owner ~client request
  end

let on_steal_hint t key =
  if is_leader_node t then begin
    let ks = key_state t key in
    if (not ks.owner_active) && ks.p1 = None then start_steal t key ks
  end

let on_p1a t ~src ~key ~ballot ~frontier =
  let ks = key_state t key in
  (* Acking is correct not only for strictly higher ballots but also
     when we already sit at this exact ballot with [src] as its owner:
     the promise is idempotent, and we may have adopted the ballot
     through a nok [P2b] (preemption) or a duplicate [P1a]
     (retransmission) before the steal's own [P1a] reached us.
     Without the re-ack a 2-replica zone can wedge a steal forever:
     the preempted owner's vote is mandatory there, and it would
     refuse the very ballot it already deferred to. *)
  if
    Ballot.(ballot > ks.ballot)
    || (Ballot.equal ballot ks.ballot && ballot.Ballot.owner = src)
  then begin
    withdraw_posts t ks;
    ks.ballot <- ballot;
    ks.owner_active <- false;
    ks.p1 <- None;
    let accepted = ref [] in
    Slot_log.iter_from ks.log ~start:frontier ~f:(fun slot (e : entry) ->
        accepted := (slot, e.ballot, e.cmd, e.committed) :: !accepted);
    t.env.send src (P1b { key; ballot; ok = true; accepted = !accepted });
    drain_pending t key ks
  end
  else
    t.env.send src (P1b { key; ballot = ks.ballot; ok = false; accepted = [] })

let on_p1b t ~src ~key ~ballot ~ok ~accepted =
  let ks = key_state t key in
  match ks.p1 with
  | Some state when Ballot.equal ballot ks.ballot && ok ->
      t.env.rel.settle ~dst:src ~key:state.rkey;
      state.recovered <- accepted @ state.recovered;
      Quorum.ack state.tracker src;
      if Quorum.satisfied state.tracker then become_owner t key ks state
  | Some _ when Ballot.(ballot > ks.ballot) ->
      (* lost the steal race; defer to the higher ballot *)
      withdraw_posts t ks;
      ks.ballot <- ballot;
      ks.p1 <- None;
      ks.owner_active <- false;
      drain_pending t key ks
  | _ -> ()

let on_p2a t ~src ~key ~ballot ~slot ~cmd ~commit_up_to:bound =
  let ks = key_state t key in
  if Ballot.(ballot >= ks.ballot) then begin
    ks.ballot <- ballot;
    if ballot.Ballot.owner <> t.env.id then begin
      withdraw_posts t ks;
      ks.owner_active <- false;
      ks.p1 <- None
    end;
    (match Slot_log.get ks.log slot with
    | Some (e : entry) when e.committed -> ()
    | Some e ->
        if not (Command.equal e.cmd cmd) then e.client <- None;
        e.ballot <- ballot;
        e.cmd <- cmd
    | None ->
        Slot_log.set ks.log slot
          { ballot; cmd; client = None; quorum = None; committed = false; rkey = 0 });
    commit_up_to t ks bound;
    t.env.send src (P2b { key; ballot; slot; ok = true });
    drain_pending t key ks
  end
  else t.env.send src (P2b { key; ballot = ks.ballot; slot; ok = false })

let on_p2b t ~src ~key ~ballot ~slot ~ok =
  let ks = key_state t key in
  if ok && ks.owner_active && Ballot.equal ballot ks.ballot then begin
    match Slot_log.get ks.log slot with
    | Some ({ quorum = Some tracker; committed = false; _ } as e : entry) ->
        t.env.rel.settle ~dst:src ~key:e.rkey;
        Quorum.ack tracker src;
        if Quorum.satisfied tracker then begin
          e.committed <- true;
          t.env.rel.settle_all ~key:e.rkey;
          advance t ks;
          t.env.broadcast (CommitK { key; slot; cmd = e.cmd })
        end
    | Some ({ committed = true; rkey; _ } : entry) when rkey <> 0 ->
        (* late ack for an already-committed slot: stop the timer *)
        t.env.rel.settle ~dst:src ~key:rkey
    | _ -> ()
  end
  else if (not ok) && Ballot.(ballot > ks.ballot) then begin
    withdraw_posts t ks;
    ks.ballot <- ballot;
    ks.owner_active <- false;
    ks.p1 <- None;
    drain_pending t key ks
  end

let on_commit t ~key ~slot ~cmd =
  let ks = key_state t key in
  (match Slot_log.get ks.log slot with
  | Some (e : entry) ->
      if not (Command.equal e.cmd cmd) then e.client <- None;
      e.cmd <- cmd;
      e.committed <- true
  | None ->
      Slot_log.set ks.log slot
        {
          ballot = ks.ballot;
          cmd;
          client = None;
          quorum = None;
          committed = true;
          rkey = 0;
        });
  advance t ks

let on_message t ~src = function
  | P1a { key; ballot; frontier } -> on_p1a t ~src ~key ~ballot ~frontier
  | P1b { key; ballot; ok; accepted } -> on_p1b t ~src ~key ~ballot ~ok ~accepted
  | P2a { key; ballot; slot; cmd; commit_up_to } ->
      on_p2a t ~src ~key ~ballot ~slot ~cmd ~commit_up_to
  | P2b { key; ballot; slot; ok } -> on_p2b t ~src ~key ~ballot ~slot ~ok
  | CommitK { key; slot; cmd } -> on_commit t ~key ~slot ~cmd
  | StealHint { key } -> on_steal_hint t key

let on_start (_ : replica) = ()

(* In-memory protocol: a crash-recovery edge reboots it from scratch
   (no durable state to reload) — the cluster engine only pairs
   [Config.storage] with protocols that persist, so this is a
   rejoin-from-zero fallback. *)
let on_recover = on_start
