(* Shared relay/aggregation machinery for PigPaxos-style phase-2 trees
   (DESIGN.md §12). Everything here is deterministic and allocation
   conscious: plans are pure functions of (n, leader, r, gen) memoized
   per replica, and aggregation state lives in pooled records whose
   ack bitmap is a single immediate int. *)

type plan = { groups : int array array; group_of : int array }

(* Followers in ascending id order, rotated by [gen], cut into [r]
   contiguous chunks with sizes differing by at most one (the first
   [(n-1) mod r] groups take the extra member). The rotation moves
   both relay duty (position 0 of each chunk) and group membership, so
   a persistently slow node neither stays a relay nor pins the same
   groupmates forever. Every replica — leader, relay, member — computes
   the identical plan from the same inputs, which is what lets a relay
   find its own group in a message that only carries [gen]. *)
let compute ~n ~leader ~r ~gen =
  if r < 1 || r > n - 1 then
    invalid_arg
      (Printf.sprintf "Relay.compute: r=%d out of range 1..%d" r (n - 1));
  let m = n - 1 in
  let followers = Array.make m 0 in
  let j = ref 0 in
  for id = 0 to n - 1 do
    if id <> leader then begin
      followers.(!j) <- id;
      incr j
    end
  done;
  let rot = ((gen mod m) + m) mod m in
  let base = m / r and extra = m mod r in
  let group_of = Array.make n (-1) in
  let start = ref 0 in
  let groups =
    Array.init r (fun g ->
        let size = if g < extra then base + 1 else base in
        let arr =
          Array.init size (fun i -> followers.((!start + i + rot) mod m))
        in
        start := !start + size;
        Array.iter (fun id -> group_of.(id) <- g) arr;
        arr)
  in
  { groups; group_of }

(* Plan cache keyed by (leader, gen) packed into one int; n and r are
   fixed for a run. Leaders fit in 10 bits (n <= 1024 everywhere near
   this code); generations advance once per [gen_window] rounds plus
   once per fallback, so the table stays tiny. *)
type plans = (int, plan) Hashtbl.t

let plans () : plans = Hashtbl.create 8

let find (t : plans) ~n ~leader ~r ~gen =
  let key = (gen lsl 10) lor leader in
  match Hashtbl.find_opt t key with
  | Some p -> p
  | None ->
      let p = compute ~n ~leader ~r ~gen in
      Hashtbl.add t key p;
      p

let gen_window = 1024
let gen_of_seq ~seq ~bump = (seq / gen_window) + bump
let full_mask k = (1 lsl k) - 1

type agg = {
  mutable a_leader : int;
  mutable a_gen : int;
  mutable a_group : int array;
  mutable a_mask : int;
  mutable a_bits : int;
  mutable a_tag : int;
  mutable a_aux : int;
  mutable a_batch : bool;
  mutable a_complete : bool;
  mutable a_t0 : float;
  mutable a_flush : Paxi_sim.Sim.handle;
  mutable a_next : agg;
}

let rec agg_nil =
  {
    a_leader = -1;
    a_gen = 0;
    a_group = [||];
    a_mask = 0;
    a_bits = 0;
    a_tag = 0;
    a_aux = 0;
    a_batch = false;
    a_complete = false;
    a_t0 = 0.0;
    a_flush = Paxi_sim.Sim.nil;
    a_next = agg_nil;
  }

type pool = { mutable free : agg }

let pool () = { free = agg_nil }

let alloc p ~leader ~gen ~group ~tag ~aux ~batch =
  let a =
    if p.free != agg_nil then begin
      let a = p.free in
      p.free <- a.a_next;
      a.a_next <- a;
      a
    end
    else
      let rec a =
        {
          a_leader = 0;
          a_gen = 0;
          a_group = [||];
          a_mask = 0;
          a_bits = 0;
          a_tag = 0;
          a_aux = 0;
          a_batch = false;
          a_complete = false;
          a_t0 = 0.0;
          a_flush = Paxi_sim.Sim.nil;
          a_next = a;
        }
      in
      a
  in
  a.a_leader <- leader;
  a.a_gen <- gen;
  a.a_group <- group;
  a.a_mask <- full_mask (Array.length group);
  a.a_bits <- 0;
  a.a_tag <- tag;
  a.a_aux <- aux;
  a.a_batch <- batch;
  a.a_complete <- false;
  a.a_t0 <- 0.0;
  a.a_flush <- Paxi_sim.Sim.nil;
  a

let release p a =
  a.a_group <- [||];
  a.a_next <- p.free;
  p.free <- a

let set_bit a i = a.a_bits <- a.a_bits lor (1 lsl i)
let complete a = a.a_bits land a.a_mask = a.a_mask

let position a id =
  let g = a.a_group in
  let n = Array.length g in
  let rec go i = if i >= n then -1 else if g.(i) = id then i else go (i + 1) in
  go 0
