type message =
  | P1a of { ballot : Ballot.t; frontier : int }
  | P1b of {
      ballot : Ballot.t;
      ok : bool;
      accepted : (int * Ballot.t * Command.t) list;
    }
  | P2a of { ballot : Ballot.t; slot : int; cmd : Command.t; commit_up_to : int }
  | P2b of { ballot : Ballot.t; slot : int; ok : bool }
  | P2aBatch of {
      ballot : Ballot.t;
      first_slot : int;
      cmds : Command.t array;
      commit_up_to : int;
    }
      (** one phase-2 round for [Array.length cmds] contiguous slots
          starting at [first_slot]; wire size is the sum of the
          commands' sizes, so the receiver pays one [t_in] for the
          whole batch *)
  | P2bBatch of { ballot : Ballot.t; first_slot : int; count : int; ok : bool }
  | Commit of { slot : int; cmd : Command.t }
  | Heartbeat of { ballot : Ballot.t; commit_up_to : int }

let name = "paxos"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | P1a _ -> "P1a"
  | P1b _ -> "P1b"
  | P2a _ -> "P2a"
  | P2b _ -> "P2b"
  | P2aBatch _ -> "P2aBatch"
  | P2bBatch _ -> "P2bBatch"
  | Commit _ -> "Commit"
  | Heartbeat _ -> "Heartbeat"

type entry = {
  mutable ballot : Ballot.t;
  mutable cmd : Command.t;
  mutable client : Address.t option;
  mutable quorum : Quorum.t option;
  mutable committed : bool;
  mutable rkey : int;
      (** reliable-delivery key of the in-flight P2a for this slot
          (0 when none) — settled per-acceptor as P2bs arrive *)
}

type phase1_state = {
  tracker : Quorum.t;
  mutable recovered : (int * Ballot.t * Command.t) list;
  rkey : int;  (** reliable-delivery key of the P1a broadcast *)
}

(* One in-flight batched phase-2 round: a single quorum covers the
   slot range [first_slot, first_slot + count). *)
type batch_state = {
  bballot : Ballot.t;
  count : int;
  tracker : Quorum.t;
  rkey : int;
}

type replica = {
  env : message Proto.env;
  mutable ballot : Ballot.t;
  mutable active : bool; (* self is the established leader *)
  log : entry Slot_log.t;
  exec : Executor.t;
  mutable p1 : phase1_state option;
  pending : (Address.t * Proto.request) Queue.t;
  mutable last_heard : float;
  (* leader command batching (Config.batching) *)
  batch_buf : (Address.t * Proto.request) Queue.t;
  mutable flush_timer : Sim.handle; (* Sim.nil when no flush is pending *)
  batches : (int, batch_state) Hashtbl.t; (* keyed by first_slot *)
}

let all_ids (t : replica) = List.init t.env.n (fun i -> i)

let q2_size (t : replica) = Config.phase2_quorum_size t.env.config

let q1_size (t : replica) =
  match t.env.config.Config.q2_size with
  | Some q2 -> t.env.n - q2 + 1
  | None -> Config.majority t.env.config

(* Followers the leader contacts in phase-2: everyone, or with the
   thrifty optimization only the Q2-1 closest peers. *)
let phase2_peers (t : replica) =
  let others = List.filter (fun i -> i <> t.env.id) (all_ids t) in
  if not t.env.config.Config.thrifty then others
  else begin
    let my_region = Topology.region_of_replica t.env.topology t.env.id in
    let dist i =
      Topology.rtt_mean t.env.topology my_region
        (Topology.region_of_replica t.env.topology i)
    in
    let sorted =
      List.sort (fun a b -> Float.compare (dist a) (dist b)) others
    in
    List.filteri (fun rank _ -> rank < q2_size t - 1) sorted
  end

let create env =
  {
    env;
    ballot = Ballot.zero;
    active = false;
    log = Slot_log.create ();
    exec = Executor.create ();
    p1 = None;
    pending = Queue.create ();
    last_heard = 0.0;
    batch_buf = Queue.create ();
    flush_timer = Sim.nil;
    batches = Hashtbl.create 16;
  }

let is_leader t = t.active
let current_ballot t = t.ballot
let commit_frontier t = Slot_log.exec_frontier t.log
let executor t = t.exec

let log_entry t slot =
  Option.map
    (fun (e : entry) -> (e.ballot, e.cmd, e.committed))
    (Slot_log.get t.log slot)

let leader_of_key t (_ : Command.key) =
  if t.ballot.Ballot.round > 0 then Some t.ballot.Ballot.owner else None

(* Execute committed slots in order; the proposer replies to its
   recorded clients as their commands execute. *)
let advance t =
  Slot_log.advance_frontier t.log
    ~executable:(fun e -> e.committed)
    ~f:(fun _slot e ->
      let read = Executor.execute t.exec e.cmd in
      match e.client with
      | Some client ->
          e.client <- None;
          t.env.reply client
            {
              Proto.command = e.cmd;
              read;
              replier = t.env.id;
              leader_hint = (if t.active then Some t.env.id else None);
            }
      | None -> ())

let commit_up_to t bound =
  let changed = ref false in
  (* slots below the frontier are committed by construction (the
     frontier only advances over committed entries) — skip them. *)
  for slot = Slot_log.exec_frontier t.log to bound - 1 do
    match Slot_log.get t.log slot with
    | Some e when not e.committed ->
        e.committed <- true;
        changed := true
    | _ -> ()
  done;
  if !changed then advance t

let propose t ~client (request : Proto.request) =
  let slot = Slot_log.reserve t.log in
  let tracker =
    Quorum.create (Quorum.Count { members = all_ids t; threshold = q2_size t })
  in
  Quorum.ack tracker t.env.id;
  let entry =
    {
      ballot = t.ballot;
      cmd = request.Proto.command;
      client = Some client;
      quorum = Some tracker;
      committed = false;
      rkey = 0;
    }
  in
  Slot_log.set t.log slot entry;
  t.env.obs.Proto.on_propose ~slot ~cmd:request.Proto.command;
  let msg =
    P2a
      {
        ballot = t.ballot;
        slot;
        cmd = request.Proto.command;
        commit_up_to = Slot_log.exec_frontier t.log;
      }
  in
  entry.rkey <-
    (if t.env.config.Config.thrifty then
       t.env.rel.post_multi ~ack:Reliable.Piggyback (phase2_peers t) msg
     else t.env.rel.post_all ~ack:Reliable.Piggyback msg)

let commit_batch t first_slot (bs : batch_state) =
  Hashtbl.remove t.batches first_slot;
  t.env.rel.settle_all ~key:bs.rkey;
  for slot = first_slot to first_slot + bs.count - 1 do
    match Slot_log.get t.log slot with
    | Some e when not e.committed ->
        e.committed <- true;
        t.env.obs.Proto.on_quorum ~slot
    | _ -> ()
  done;
  advance t;
  if not t.env.config.Config.piggyback_commit then
    for slot = first_slot to first_slot + bs.count - 1 do
      match Slot_log.get t.log slot with
      | Some e -> t.env.broadcast (Commit { slot; cmd = e.cmd })
      | None -> ()
    done

(* One phase-2 round for the whole batch: contiguous slots, a single
   shared quorum tracker, one serialized message per peer whose wire
   size is the sum of the commands' sizes (one [occupy_outgoing], one
   [t_in] at each acceptor). Per-command client replies still happen
   individually as the slots execute in [advance]. *)
let propose_batch t items =
  let k = List.length items in
  let first_slot = Slot_log.next_slot t.log in
  let cmds = Array.make k Command.noop in
  List.iteri
    (fun i (client, (request : Proto.request)) ->
      let slot = Slot_log.reserve t.log in
      cmds.(i) <- request.Proto.command;
      Slot_log.set t.log slot
        {
          ballot = t.ballot;
          cmd = request.Proto.command;
          client = Some client;
          (* quorum = None: the shared tracker lives in [t.batches],
             keeping the per-slot retransmission path away from
             batched slots *)
          quorum = None;
          committed = false;
          rkey = 0;
        };
      t.env.obs.Proto.on_propose ~slot ~cmd:request.Proto.command)
    items;
  let tracker =
    Quorum.create (Quorum.Count { members = all_ids t; threshold = q2_size t })
  in
  Quorum.ack tracker t.env.id;
  let msg =
    P2aBatch
      {
        ballot = t.ballot;
        first_slot;
        cmds;
        commit_up_to = Slot_log.exec_frontier t.log;
      }
  in
  let size_bytes = k * t.env.config.Config.msg_size_bytes in
  let rkey =
    if t.env.config.Config.thrifty then
      t.env.rel.post_multi ~size_bytes ~ack:Reliable.Piggyback (phase2_peers t)
        msg
    else t.env.rel.post_all ~size_bytes ~ack:Reliable.Piggyback msg
  in
  let bs = { bballot = t.ballot; count = k; tracker; rkey } in
  Hashtbl.replace t.batches first_slot bs;
  if Quorum.satisfied tracker then commit_batch t first_slot bs

let flush_batch t =
  t.env.Proto.cancel t.flush_timer;
  t.flush_timer <- Sim.nil;
  if t.active && not (Queue.is_empty t.batch_buf) then begin
    let items = List.of_seq (Queue.to_seq t.batch_buf) in
    Queue.clear t.batch_buf;
    propose_batch t items
  end

(* Active-leader ingress: propose immediately, or coalesce into the
   current batch when Config.batching is on. *)
let enqueue t ~client request =
  match t.env.config.Config.batching with
  | None -> propose t ~client request
  | Some b ->
      Queue.push (client, request) t.batch_buf;
      if Queue.length t.batch_buf >= b.Config.max_batch then flush_batch t
      else if Sim.is_nil t.flush_timer then
        t.flush_timer <-
          t.env.schedule b.Config.max_wait_ms (fun () ->
              t.flush_timer <- Sim.nil;
              flush_batch t)

let drain_pending t =
  if t.active then
    while not (Queue.is_empty t.pending) do
      let client, request = Queue.pop t.pending in
      enqueue t ~client request
    done
  else if
    t.ballot.Ballot.round > 0
    && t.ballot.Ballot.owner <> t.env.id
    && t.p1 = None
  then
    while not (Queue.is_empty t.pending) do
      let client, request = Queue.pop t.pending in
      t.env.forward t.ballot.Ballot.owner ~client request
    done

let start_phase1 t =
  t.ballot <- Ballot.next t.ballot ~owner:t.env.id;
  t.active <- false;
  (* a fresh candidacy obsoletes whatever this replica was still
     retransmitting (an older P1a, stale P2as from lost leadership) *)
  t.env.rel.unpost_all ();
  let tracker =
    Quorum.create (Quorum.Count { members = all_ids t; threshold = q1_size t })
  in
  let state = { tracker; recovered = []; rkey = t.env.rel.fresh () } in
  t.p1 <- Some state;
  Quorum.ack tracker t.env.id;
  let frontier = Slot_log.exec_frontier t.log in
  (* self-report own accepted entries *)
  Slot_log.iter_from t.log ~start:frontier ~f:(fun slot e ->
      state.recovered <- (slot, e.ballot, e.cmd) :: state.recovered);
  ignore
    (t.env.rel.post_all ~key:state.rkey ~ack:Reliable.Piggyback
       (P1a { ballot = t.ballot; frontier }))

let become_leader t (state : phase1_state) =
  t.p1 <- None;
  t.active <- true;
  t.last_heard <- t.env.now ();
  (* stop re-soliciting promises from stragglers: they will learn the
     ballot from the P2as and heartbeats that follow *)
  t.env.rel.settle_all ~key:state.rkey;
  Hashtbl.reset t.batches (* stale rounds from a previous leadership *);
  (* Adopt the highest-ballot command reported for every slot at or
     above our commit frontier, fill gaps with no-ops, re-propose. *)
  let best = Hashtbl.create 16 in
  List.iter
    (fun (slot, b, cmd) ->
      match Hashtbl.find_opt best slot with
      | Some (b', _) when Ballot.(b' >= b) -> ()
      | _ -> Hashtbl.replace best slot (b, cmd))
    state.recovered;
  let max_slot = Hashtbl.fold (fun s _ acc -> Stdlib.max s acc) best (-1) in
  let frontier = Slot_log.exec_frontier t.log in
  for slot = frontier to max_slot do
    let cmd =
      match Hashtbl.find_opt best slot with
      | Some (_, cmd) -> cmd
      | None -> Command.noop
    in
    let tracker =
      Quorum.create
        (Quorum.Count { members = all_ids t; threshold = q2_size t })
    in
    Quorum.ack tracker t.env.id;
    (match Slot_log.get t.log slot with
    | Some e when e.committed -> () (* keep committed state *)
    | Some e ->
        if not (Command.equal e.cmd cmd) then e.client <- None;
        e.ballot <- t.ballot;
        e.cmd <- cmd;
        e.quorum <- Some tracker
    | None ->
        Slot_log.set t.log slot
          {
            ballot = t.ballot;
            cmd;
            client = None;
            quorum = Some tracker;
            committed = false;
            rkey = 0;
          });
    match Slot_log.get t.log slot with
    | Some e when not e.committed ->
        e.rkey <-
          t.env.rel.post_all ~ack:Reliable.Piggyback
            (P2a
               {
                 ballot = t.ballot;
                 slot;
                 cmd = e.cmd;
                 commit_up_to = Slot_log.exec_frontier t.log;
               })
    | _ -> ()
  done;
  drain_pending t

let step_down t ~ballot =
  if Ballot.(ballot > t.ballot) then t.ballot <- ballot;
  t.active <- false;
  t.p1 <- None;
  t.last_heard <- t.env.now ();
  (* everything this replica was retransmitting carried the lost
     ballot; the new leader re-proposes whatever survives phase-1 *)
  t.env.rel.unpost_all ();
  (* abandon in-flight batch rounds; buffered-but-unproposed commands
     go back to [pending] so they are forwarded to the new leader *)
  Hashtbl.reset t.batches;
  t.env.Proto.cancel t.flush_timer;
  t.flush_timer <- Sim.nil;
  Queue.transfer t.batch_buf t.pending;
  drain_pending t

let on_request t ~client request =
  if t.active then enqueue t ~client request
  else if
    t.ballot.Ballot.round > 0
    && t.ballot.Ballot.owner <> t.env.id
    && t.p1 = None
  then t.env.forward t.ballot.Ballot.owner ~client request
  else Queue.push (client, request) t.pending

let on_p1a t ~src ~ballot ~frontier =
  (* Promise not only strictly higher ballots but also the exact
     ballot we already hold when [src] owns it: we may have adopted it
     from a nok P2b or a duplicate (retransmitted) P1a before this
     copy arrived, and the promise is idempotent. Refusing would make
     a retransmitted P1a elicit nok forever after its P1b was lost. *)
  if
    Ballot.(ballot > t.ballot)
    || (Ballot.equal ballot t.ballot && ballot.Ballot.owner = src)
  then begin
    t.ballot <- ballot;
    t.active <- false;
    t.p1 <- None;
    t.last_heard <- t.env.now ();
    let accepted = ref [] in
    Slot_log.iter_from t.log ~start:frontier ~f:(fun slot e ->
        accepted := (slot, e.ballot, e.cmd) :: !accepted);
    t.env.send src (P1b { ballot; ok = true; accepted = !accepted });
    drain_pending t
  end
  else t.env.send src (P1b { ballot = t.ballot; ok = false; accepted = [] })

let on_p1b t ~src ~ballot ~ok ~accepted =
  match t.p1 with
  | Some state when Ballot.equal ballot t.ballot && ok ->
      t.env.rel.settle ~dst:src ~key:state.rkey;
      state.recovered <- accepted @ state.recovered;
      Quorum.ack state.tracker src;
      if Quorum.satisfied state.tracker then become_leader t state
  | Some _ when Ballot.(ballot > t.ballot) -> step_down t ~ballot
  | _ -> ()

let on_p2a t ~src ~ballot ~slot ~cmd ~commit_up_to:bound =
  if Ballot.(ballot >= t.ballot) then begin
    t.ballot <- ballot;
    if ballot.Ballot.owner <> t.env.id then begin
      t.active <- false;
      t.p1 <- None
    end;
    t.last_heard <- t.env.now ();
    (match Slot_log.get t.log slot with
    | Some e when e.committed -> () (* never overwrite a commit *)
    | Some e ->
        (* a different command displaced this slot: the old proposer's
           client must not be answered with the new command's result *)
        if not (Command.equal e.cmd cmd) then e.client <- None;
        e.ballot <- ballot;
        e.cmd <- cmd
    | None ->
        Slot_log.set t.log slot
          { ballot; cmd; client = None; quorum = None; committed = false; rkey = 0 });
    commit_up_to t bound;
    t.env.send src (P2b { ballot; slot; ok = true });
    drain_pending t
  end
  else t.env.send src (P2b { ballot = t.ballot; slot; ok = false })

(* Acceptor side of a batched round: store every slot, then send ONE
   ack covering the whole range — the per-slot adoption logic is
   identical to [on_p2a]. *)
let on_p2a_batch t ~src ~ballot ~first_slot ~cmds ~commit_up_to:bound =
  let count = Array.length cmds in
  if Ballot.(ballot >= t.ballot) then begin
    t.ballot <- ballot;
    if ballot.Ballot.owner <> t.env.id then begin
      t.active <- false;
      t.p1 <- None
    end;
    t.last_heard <- t.env.now ();
    Array.iteri
      (fun i cmd ->
        let slot = first_slot + i in
        match Slot_log.get t.log slot with
        | Some e when e.committed -> () (* never overwrite a commit *)
        | Some e ->
            if not (Command.equal e.cmd cmd) then e.client <- None;
            e.ballot <- ballot;
            e.cmd <- cmd
        | None ->
            Slot_log.set t.log slot
              { ballot; cmd; client = None; quorum = None; committed = false; rkey = 0 })
      cmds;
    commit_up_to t bound;
    t.env.send src (P2bBatch { ballot; first_slot; count; ok = true });
    drain_pending t
  end
  else t.env.send src (P2bBatch { ballot = t.ballot; first_slot; count; ok = false })

let on_p2b_batch t ~src ~ballot ~first_slot ~count ~ok =
  if ok && t.active && Ballot.equal ballot t.ballot then begin
    match Hashtbl.find_opt t.batches first_slot with
    | Some bs when bs.count = count && Ballot.equal bs.bballot ballot ->
        t.env.rel.settle ~dst:src ~key:bs.rkey;
        Quorum.ack bs.tracker src;
        if Quorum.satisfied bs.tracker then commit_batch t first_slot bs
    | _ -> ()
  end
  else if (not ok) && Ballot.(ballot > t.ballot) then step_down t ~ballot

let on_p2b t ~src ~ballot ~slot ~ok =
  if ok && t.active && Ballot.equal ballot t.ballot then begin
    match Slot_log.get t.log slot with
    | Some ({ quorum = Some tracker; committed = false; _ } as e) ->
        t.env.rel.settle ~dst:src ~key:e.rkey;
        Quorum.ack tracker src;
        if Quorum.satisfied tracker then begin
          e.committed <- true;
          t.env.obs.Proto.on_quorum ~slot;
          t.env.rel.settle_all ~key:e.rkey;
          advance t;
          if not t.env.config.Config.piggyback_commit then
            t.env.broadcast (Commit { slot; cmd = e.cmd })
        end
    | Some { committed = true; rkey; _ } when rkey <> 0 ->
        (* late ack for an already-committed slot: just stop the timer *)
        t.env.rel.settle ~dst:src ~key:rkey
    | _ -> ()
  end
  else if (not ok) && Ballot.(ballot > t.ballot) then step_down t ~ballot

let on_commit t ~slot ~cmd =
  (match Slot_log.get t.log slot with
  | Some e ->
      e.cmd <- cmd;
      e.committed <- true
  | None ->
      Slot_log.set t.log slot
        {
          ballot = t.ballot;
          cmd;
          client = None;
          quorum = None;
          committed = true;
          rkey = 0;
        });
  advance t

let on_heartbeat t ~ballot ~commit_up_to:bound =
  if Ballot.(ballot >= t.ballot) then begin
    t.ballot <- ballot;
    if ballot.Ballot.owner <> t.env.id then t.active <- false;
    t.last_heard <- t.env.now ();
    commit_up_to t bound;
    drain_pending t
  end

let on_message t ~src msg =
  match msg with
  | P1a { ballot; frontier } -> on_p1a t ~src ~ballot ~frontier
  | P1b { ballot; ok; accepted } -> on_p1b t ~src ~ballot ~ok ~accepted
  | P2a { ballot; slot; cmd; commit_up_to } ->
      on_p2a t ~src ~ballot ~slot ~cmd ~commit_up_to
  | P2b { ballot; slot; ok } -> on_p2b t ~src ~ballot ~slot ~ok
  | P2aBatch { ballot; first_slot; cmds; commit_up_to } ->
      on_p2a_batch t ~src ~ballot ~first_slot ~cmds ~commit_up_to
  | P2bBatch { ballot; first_slot; count; ok } ->
      on_p2b_batch t ~src ~ballot ~first_slot ~count ~ok
  | Commit { slot; cmd } -> on_commit t ~slot ~cmd
  | Heartbeat { ballot; commit_up_to } -> on_heartbeat t ~ballot ~commit_up_to

let rec heartbeat_loop t =
  let period = t.env.config.Config.failover_timeout_ms /. 4.0 in
  ignore
  @@ t.env.schedule period (fun () ->
         if t.active then begin
           (* Lost P2a/P2b recovery now lives in the reliable-delivery
              layer (each phase-2 post retransmits on its own backoff
              timer until acked) — the beat is a pure keep-alive plus
              commit-frontier carrier. *)
           t.env.broadcast
             (Heartbeat
                { ballot = t.ballot; commit_up_to = Slot_log.exec_frontier t.log });
           t.last_heard <- t.env.now ()
         end;
         heartbeat_loop t)

let rec failover_loop t =
  (* Stagger timeouts by id so the lowest live replica usually wins. *)
  let base = t.env.config.Config.failover_timeout_ms in
  let timeout = base *. (1.5 +. (0.5 *. float_of_int t.env.id)) in
  ignore
  @@ t.env.schedule (base /. 2.0) (fun () ->
         if
           (not t.active) && t.p1 = None
           && t.env.now () -. t.last_heard > timeout
         then start_phase1 t;
         failover_loop t)

let on_start t =
  t.last_heard <- t.env.now ();
  if t.env.id = 0 then start_phase1 t;
  heartbeat_loop t;
  failover_loop t
