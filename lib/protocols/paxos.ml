type message =
  | P1a of { ballot : Ballot.t; frontier : int }
  | P1b of {
      ballot : Ballot.t;
      ok : bool;
      accepted : (int * Ballot.t * Command.t) list;
    }
  | P2a of { ballot : Ballot.t; slot : int; cmd : Command.t; commit_up_to : int }
  | P2b of { ballot : Ballot.t; slot : int; ok : bool }
  | P2aBatch of {
      ballot : Ballot.t;
      first_slot : int;
      cmds : Command.t array;
      commit_up_to : int;
    }
      (** one phase-2 round for [Array.length cmds] contiguous slots
          starting at [first_slot]; wire size is the sum of the
          commands' sizes, so the receiver pays one [t_in] for the
          whole batch *)
  | P2bBatch of { ballot : Ballot.t; first_slot : int; count : int; ok : bool }
  | Commit of { slot : int; cmd : Command.t }
  | Heartbeat of { ballot : Ballot.t; commit_up_to : int; epoch : int }
      (** [epoch] numbers lease-renewal rounds (0 and unacked when the
          lease read path is off) *)
  | HeartbeatAck of { ballot : Ballot.t; epoch : int }
      (** lease grant: the follower promises not to promise a foreign
          phase-1 for the serve window; only sent in lease mode *)
  | CommitAck of { slot : int }
      (** quorum-read mode: a follower applied this slot — the leader
          defers the client's write ack until a majority did *)
  | ReadQ of { rid : int; key : Command.key }
  | ReadQR of { rid : int; tag : Read_quorum.tag; value : Command.value option }
  | ReadWB of {
      rid : int;
      key : Command.key;
      tag : Read_quorum.tag;
      value : Command.value option;
    }
  | ReadWBAck of { rid : int }
  | RelayRound of { gen : int; inner : message }
      (** leader → relay (Config.relay_groups > 0): apply [inner] (a
          P2a/P2aBatch) locally, fan it out to the relay's rotation
          group, and aggregate the group's acks into one [RelayAck];
          [gen] names the rotation plan every replica derives
          identically (DESIGN.md §12) *)
  | RelayAck of {
      ballot : Ballot.t;
      gen : int;
      first_slot : int;
      count : int;
      batch : bool;
      bits : int;
          (** positional ack bitmap over the plan's group array — bit i
              set = group member i accepted, so quorum accounting stays
              exact: each bit maps back to a replica id *)
    }

let name = "paxos"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | P1a _ -> "P1a"
  | P1b _ -> "P1b"
  | P2a _ -> "P2a"
  | P2b _ -> "P2b"
  | P2aBatch _ -> "P2aBatch"
  | P2bBatch _ -> "P2bBatch"
  | Commit _ -> "Commit"
  | Heartbeat _ -> "Heartbeat"
  | HeartbeatAck _ -> "HeartbeatAck"
  | CommitAck _ -> "CommitAck"
  | ReadQ _ -> "ReadQ"
  | ReadQR _ -> "ReadQR"
  | ReadWB _ -> "ReadWB"
  | ReadWBAck _ -> "ReadWBAck"
  | RelayRound _ -> "RelayRound"
  | RelayAck _ -> "RelayAck"

type entry = {
  mutable ballot : Ballot.t;
  mutable cmd : Command.t;
  mutable client : Address.t option;
  mutable quorum : Quorum.t option;
  mutable committed : bool;
  mutable rkey : int;
      (** reliable-delivery key of the in-flight P2a for this slot
          (0 when none) — settled per-acceptor as P2bs arrive *)
  mutable fb : Sim.handle;
      (** relay-mode fallback timer: if the slot is still uncommitted
          when it fires, the leader re-sends direct and rotates the
          relay plan ([Sim.nil] outside relay rounds) *)
}

type phase1_state = {
  tracker : Quorum.t;
  mutable recovered : (int * Ballot.t * Command.t) list;
  rkey : int;  (** reliable-delivery key of the P1a broadcast *)
}

(* One in-flight batched phase-2 round: a single quorum covers the
   slot range [first_slot, first_slot + count). *)
type batch_state = {
  bballot : Ballot.t;
  count : int;
  tracker : Quorum.t;
  rkey : int;
  mutable bfb : Sim.handle;  (** relay-mode fallback timer (see entry.fb) *)
}

(* One quorum read in flight at its coordinating replica: an ABD round
   over the shadow registers. *)
type qread = {
  rclient : Address.t;
  rcmd : Command.t;
  round : Command.value option Read_quorum.t;
}

type replica = {
  env : message Proto.env;
  mutable ballot : Ballot.t;
  mutable active : bool; (* self is the established leader *)
  log : entry Slot_log.t;
  exec : Executor.t;
  mutable p1 : phase1_state option;
  pending : (Address.t * Proto.request) Queue.t;
  mutable last_heard : float;
  (* leader command batching (Config.batching) *)
  batch_buf : (Address.t * Proto.request) Queue.t;
  mutable flush_timer : Sim.handle; (* Sim.nil when no flush is pending *)
  batches : (int, batch_state) Hashtbl.t; (* keyed by first_slot *)
  (* ---- read path: leader leases (Config.read_path = Lease) ---- *)
  mutable lease_epoch : int; (* leader: renewal round counter *)
  mutable lease_sent_at : float; (* leader: local clock at renewal send *)
  mutable lease_acks : Quorum.t option; (* leader: grants for lease_epoch *)
  mutable lease_until : float; (* leader: serve until (local clock) *)
  mutable lease_holder : int; (* follower: who holds our grant *)
  mutable lease_granted_until : float;
      (* follower: refuse foreign phase-1 until (local clock) *)
  mutable read_barrier : int;
      (* leader: serve reads only once exec_frontier reached this —
         the first slot of our own term, so every predecessor's
         acknowledged write is applied locally *)
  pending_reads : (Address.t * Proto.request) Queue.t;
  mutable local_reads : int; (* lease reads served from local state *)
  (* ---- read path: quorum reads (Config.read_path = Quorum) ---- *)
  shadow : (Command.key, Command.value option Read_quorum.register) Hashtbl.t;
      (* per-key (tag = (slot, 0), value) of the freshest locally
         applied write; fed only in quorum mode, never touches the KV *)
  qreads : (int, qread) Hashtbl.t; (* in-flight ABD rounds by rid *)
  mutable next_rid : int;
  held : (int, Address.t * Command.t * Command.value option) Hashtbl.t;
      (* leader: write replies deferred until a majority applied *)
  commit_acks : (int, Quorum.t) Hashtbl.t; (* slot -> applied-at votes *)
  mutable quorum_reads : int; (* ABD reads completed here *)
  (* ---- relay trees (Config.relay_groups > 0; DESIGN.md §12) ---- *)
  relay_plans : Relay.plans; (* memoized rotation plans by (leader, gen) *)
  relay_aggs : (int, Relay.agg) Hashtbl.t;
      (* relay side: in-flight aggregation records keyed by first_slot *)
  relay_pool : Relay.pool;
  mutable relay_seq : int; (* leader: relay rounds posted (drives rotation) *)
  mutable relay_bump : int; (* leader: forced rotations after fallbacks *)
  mutable relay_bypass_until : float;
      (* leader: send direct until this instant after a relay stalled *)
  mutable relay_dsts : int list; (* leader: cached relay ids for dsts_gen *)
  mutable relay_dsts_gen : int;
  mutable relay_fan : int list; (* relay: cached own group minus self *)
  mutable relay_fan_gen : int;
}

let all_ids (t : replica) = List.init t.env.n (fun i -> i)

let q2_size (t : replica) = Config.phase2_quorum_size t.env.config

let q1_size (t : replica) =
  match t.env.config.Config.q2_size with
  | Some q2 -> t.env.n - q2 + 1
  | None -> Config.majority t.env.config

(* Followers the leader contacts in phase-2: everyone, or with the
   thrifty optimization only the Q2-1 closest peers. *)
let phase2_peers (t : replica) =
  let others = List.filter (fun i -> i <> t.env.id) (all_ids t) in
  if not t.env.config.Config.thrifty then others
  else begin
    let my_region = Topology.region_of_replica t.env.topology t.env.id in
    let dist i =
      Topology.rtt_mean t.env.topology my_region
        (Topology.region_of_replica t.env.topology i)
    in
    let sorted =
      List.sort (fun a b -> Float.compare (dist a) (dist b)) others
    in
    List.filteri (fun rank _ -> rank < q2_size t - 1) sorted
  end

let create env =
  {
    env;
    ballot = Ballot.zero;
    active = false;
    log = Slot_log.create ();
    exec = Executor.create ();
    p1 = None;
    pending = Queue.create ();
    last_heard = 0.0;
    batch_buf = Queue.create ();
    flush_timer = Sim.nil;
    batches = Hashtbl.create 16;
    lease_epoch = 0;
    lease_sent_at = neg_infinity;
    lease_acks = None;
    lease_until = neg_infinity;
    lease_holder = -1;
    lease_granted_until = neg_infinity;
    read_barrier = 0;
    pending_reads = Queue.create ();
    local_reads = 0;
    shadow = Hashtbl.create 64;
    qreads = Hashtbl.create 16;
    next_rid = 0;
    held = Hashtbl.create 32;
    commit_acks = Hashtbl.create 32;
    quorum_reads = 0;
    relay_plans = Relay.plans ();
    relay_aggs = Hashtbl.create 16;
    relay_pool = Relay.pool ();
    relay_seq = 0;
    relay_bump = 0;
    relay_bypass_until = neg_infinity;
    relay_dsts = [];
    relay_dsts_gen = min_int;
    relay_fan = [];
    relay_fan_gen = min_int;
  }

let is_leader t = t.active
let current_ballot t = t.ballot
let commit_frontier t = Slot_log.exec_frontier t.log
let executor t = t.exec
let local_reads_served t = t.local_reads
let quorum_reads_served t = t.quorum_reads

let lease_mode t =
  match t.env.config.Config.read_path with
  | Some (Config.Lease _) -> true
  | _ -> false

let quorum_mode t =
  match t.env.config.Config.read_path with
  | Some Config.Quorum -> true
  | _ -> false

let lease_margin t =
  match t.env.config.Config.read_path with
  | Some (Config.Lease { margin_ms }) -> margin_ms
  | _ -> 0.0

(* A follower that granted a lease holds its own phase-1 for at least
   the minimum staggered failover timeout (base × 1.5, replica id 0),
   measured on its local clock from heartbeat receipt. The leader's
   serve window runs from the earlier *send* instant on its own clock,
   so with clocks within [margin/2] the serve window ends strictly
   inside every grantor's hold window (DESIGN.md §11). *)
let serve_window t = t.env.config.Config.failover_timeout_ms *. 1.5

let lease_valid t =
  t.active
  && Slot_log.exec_frontier t.log >= t.read_barrier
  && t.env.now () < t.lease_until -. lease_margin t

let log_entry t slot =
  Option.map
    (fun (e : entry) -> (e.ballot, e.cmd, e.committed))
    (Slot_log.get t.log slot)

let leader_of_key t (_ : Command.key) =
  if t.ballot.Ballot.round > 0 then Some t.ballot.Ballot.owner else None

let serve_local_read t ~client (request : Proto.request) =
  let cmd = request.Proto.command in
  let read = Executor.read t.exec cmd in
  t.local_reads <- t.local_reads + 1;
  t.env.obs.Proto.on_read ();
  t.env.reply client
    { Proto.command = cmd; read; replier = t.env.id; leader_hint = Some t.env.id }

let maybe_serve_reads t =
  if not (Queue.is_empty t.pending_reads) then
    while lease_valid t && not (Queue.is_empty t.pending_reads) do
      let client, request = Queue.pop t.pending_reads in
      serve_local_read t ~client request
    done

let commit_tracker t slot =
  match Hashtbl.find_opt t.commit_acks slot with
  | Some q -> q
  | None ->
      let q = Quorum.create (Quorum.Majority (all_ids t)) in
      Hashtbl.add t.commit_acks slot q;
      q

(* Release a deferred write ack once a majority applied the slot. The
   tracker is a plain majority — NOT q2: the quorum a read queries is
   a majority, and only majorities are guaranteed to intersect it. *)
let maybe_release_held t slot =
  match Hashtbl.find_opt t.commit_acks slot with
  | Some q when Quorum.satisfied q -> (
      Hashtbl.remove t.commit_acks slot;
      match Hashtbl.find_opt t.held slot with
      | Some (client, cmd, read) ->
          Hashtbl.remove t.held slot;
          t.env.reply client
            {
              Proto.command = cmd;
              read;
              replier = t.env.id;
              leader_hint = (if t.active then Some t.env.id else None);
            }
      | None -> ())
  | _ -> ()

(* Execute committed slots in order; the proposer replies to its
   recorded clients as their commands execute. In quorum-read mode the
   reply is deferred (held until a majority acks application) and
   every apply feeds the per-key shadow register / CommitAck stream. *)
let advance t =
  let qmode = quorum_mode t in
  Slot_log.advance_frontier t.log
    ~executable:(fun e -> e.committed)
    ~f:(fun slot e ->
      let read = Executor.execute t.exec e.cmd in
      if qmode then begin
        (if Command.is_write e.cmd then
           let value =
             match e.cmd.Command.op with
             | Command.Put (_, v) -> Some v
             | _ -> None
           in
           Read_quorum.adopt
             (Read_quorum.lookup t.shadow ~empty:None (Command.key e.cmd))
             ~tag:(slot, 0) ~value);
        if t.active then begin
          (match e.client with
          | Some client ->
              e.client <- None;
              Hashtbl.replace t.held slot (client, e.cmd, read)
          | None -> ());
          Quorum.ack (commit_tracker t slot) t.env.id;
          maybe_release_held t slot
        end
        else begin
          (* A deposed proposer must not ack its recorded client here:
             the write may not be majority-applied yet, and a quorum
             read could miss it. The client's retry reaches the new
             leader, which re-proposes and defers the ack properly. *)
          e.client <- None;
          if t.ballot.Ballot.round > 0 && t.ballot.Ballot.owner <> t.env.id then
            t.env.send t.ballot.Ballot.owner (CommitAck { slot })
        end
      end
      else
        match e.client with
        | Some client ->
            e.client <- None;
            t.env.reply client
              {
                Proto.command = e.cmd;
                read;
                replier = t.env.id;
                leader_hint = (if t.active then Some t.env.id else None);
              }
        | None -> ());
  if lease_mode t then maybe_serve_reads t

let commit_up_to t bound =
  let changed = ref false in
  (* slots below the frontier are committed by construction (the
     frontier only advances over committed entries) — skip them. *)
  for slot = Slot_log.exec_frontier t.log to bound - 1 do
    match Slot_log.get t.log slot with
    | Some e when not e.committed ->
        e.committed <- true;
        changed := true
    | _ -> ()
  done;
  if !changed then advance t

(* ---- relay trees (Config.relay_groups > 0; DESIGN.md §12) ----
   The leader wraps each phase-2 round in [RelayRound] and multicasts
   it to one relay per rotation group; relays accept locally, fan the
   plain inner round out to their group, and aggregate the group's
   P2bs into one [RelayAck] bitmap. Every function below is guarded so
   a [relay_groups = 0] run never reaches any of it — no messages, no
   timers, no RNG draws — keeping the direct path byte-identical. *)

let relay_on t = t.env.config.Config.relay_groups > 0

(* Route this round through relays? Off outside relay mode, and off
   during the bypass window a stalled relay opens. *)
let relay_route t = relay_on t && t.env.now () >= t.relay_bypass_until
let relay_gen t = Relay.gen_of_seq ~seq:t.relay_seq ~bump:t.relay_bump

let relay_plan t ~leader ~gen =
  Relay.find t.relay_plans ~n:t.env.n ~leader
    ~r:t.env.config.Config.relay_groups ~gen

(* The relay ids for [gen], cached so steady state reuses one list. *)
let relay_targets t ~gen (plan : Relay.plan) =
  if t.relay_dsts_gen <> gen then begin
    t.relay_dsts <-
      Array.to_list (Array.map (fun g -> g.(0)) plan.Relay.groups);
    t.relay_dsts_gen <- gen
  end;
  t.relay_dsts

(* Group members this relay fans a round out to (own group minus
   self), cached per (leader, gen) like the plans themselves. *)
let relay_fan_list t ~leader ~gen (plan : Relay.plan) gi =
  let key = (gen lsl 10) lor leader in
  if t.relay_fan_gen <> key then begin
    let g = plan.Relay.groups.(gi) in
    let rec tail i acc = if i < 1 then acc else tail (i - 1) (g.(i) :: acc) in
    t.relay_fan <- tail (Array.length g - 1) [];
    t.relay_fan_gen <- key
  end;
  t.relay_fan

(* How long the leader gives a relay round before falling back to
   direct fan-out: well under the failover timeout, so a dead relay
   costs one blip rather than a leadership change. *)
let relay_fallback_ms t = t.env.config.Config.failover_timeout_ms /. 8.0

(* Partial-flush cadence at a relay: match the retransmission base so
   a flush lands between the leader's retries, else the fallback
   division of the failover timeout. *)
let relay_flush_ms t =
  match t.env.config.Config.retransmit with
  | Some r when r.Config.max_tries > 0 -> r.Config.base_ms
  | _ -> relay_fallback_ms t

(* A relay round stalled (dead or slow relay): rotate the plan and
   send direct until the window closes, re-partitioning the silent
   relay out of its post. *)
let relay_stall t =
  t.relay_bump <- t.relay_bump + 1;
  t.relay_bypass_until <-
    t.env.now () +. t.env.config.Config.failover_timeout_ms

let relay_fallback_slot t slot =
  match Slot_log.get t.log slot with
  | Some e
    when t.active && (not e.committed) && Ballot.equal e.ballot t.ballot ->
      e.fb <- Sim.nil;
      relay_stall t;
      if e.rkey <> 0 then t.env.rel.settle_all ~key:e.rkey;
      e.rkey <-
        t.env.rel.post_all ~ack:Reliable.Piggyback
          (P2a
             {
               ballot = t.ballot;
               slot;
               cmd = e.cmd;
               commit_up_to = Slot_log.exec_frontier t.log;
             })
  | _ -> ()

let relay_fallback_batch t first_slot =
  match Hashtbl.find_opt t.batches first_slot with
  | Some bs when t.active && Ballot.equal bs.bballot t.ballot ->
      bs.bfb <- Sim.nil;
      relay_stall t;
      t.env.rel.settle_all ~key:bs.rkey;
      let cmds =
        Array.init bs.count (fun i ->
            match Slot_log.get t.log (first_slot + i) with
            | Some e -> e.cmd
            | None -> Command.noop)
      in
      let size_bytes = bs.count * t.env.config.Config.msg_size_bytes in
      let rkey =
        t.env.rel.post_all ~size_bytes ~ack:Reliable.Piggyback
          (P2aBatch
             {
               ballot = t.ballot;
               first_slot;
               cmds;
               commit_up_to = Slot_log.exec_frontier t.log;
             })
      in
      Hashtbl.replace t.batches first_slot { bs with rkey }
  | _ -> ()

let relay_send_ack t first_slot (a : Relay.agg) =
  t.env.send a.Relay.a_leader
    (RelayAck
       {
         ballot = { Ballot.round = a.Relay.a_tag; owner = a.Relay.a_leader };
         gen = a.Relay.a_gen;
         first_slot;
         count = a.Relay.a_aux;
         batch = a.Relay.a_batch;
         bits = a.Relay.a_bits;
       })

let relay_drop t first_slot (a : Relay.agg) =
  if not (Sim.is_nil a.Relay.a_flush) then t.env.Proto.cancel a.Relay.a_flush;
  a.Relay.a_flush <- Sim.nil;
  Hashtbl.remove t.relay_aggs first_slot;
  Relay.release t.relay_pool a

(* Drop every relay-side aggregation record (our ballot moved on, or
   we are becoming a candidate/leader ourselves). *)
let relay_reset t =
  if Hashtbl.length t.relay_aggs > 0 then
    Hashtbl.fold (fun k a acc -> (k, a) :: acc) t.relay_aggs []
    |> List.iter (fun (k, a) -> relay_drop t k a)

let relay_finalize t first_slot (a : Relay.agg) =
  a.Relay.a_complete <- true;
  if not (Sim.is_nil a.Relay.a_flush) then begin
    t.env.Proto.cancel a.Relay.a_flush;
    a.Relay.a_flush <- Sim.nil
  end;
  if t.env.obs.Proto.active then
    t.env.obs.Proto.on_relay ~start_ms:a.Relay.a_t0 ~end_ms:(t.env.now ());
  relay_send_ack t first_slot a

(* Partial-ack flush: a group member is slow or dead — report the bits
   we do have so the leader's quorum can complete through the other
   groups, then keep waiting. Records superseded by a newer ballot are
   dropped instead of re-armed. *)
let rec relay_flush t first_slot =
  match Hashtbl.find_opt t.relay_aggs first_slot with
  | Some a when not a.Relay.a_complete ->
      a.Relay.a_flush <- Sim.nil;
      if
        a.Relay.a_tag = t.ballot.Ballot.round
        && a.Relay.a_leader = t.ballot.Ballot.owner
      then begin
        relay_send_ack t first_slot a;
        a.Relay.a_flush <-
          t.env.schedule (relay_flush_ms t) (fun () ->
              relay_flush t first_slot)
      end
      else relay_drop t first_slot a
  | _ -> ()

(* Completed records linger so a duplicate [RelayRound] (the leader's
   retransmission racing our ack) gets a full-ack resend; prune them
   once their slots fall below the commit frontier, amortized behind a
   size threshold. *)
let relay_prune t =
  if Hashtbl.length t.relay_aggs > 128 then begin
    let frontier = Slot_log.exec_frontier t.log in
    Hashtbl.fold
      (fun slot (a : Relay.agg) acc ->
        if slot + a.Relay.a_aux <= frontier then (slot, a) :: acc else acc)
      t.relay_aggs []
    |> List.iter (fun (slot, a) -> relay_drop t slot a)
  end

(* A member's ack arriving at its relay: fold it into the aggregation
   bitmap instead of the (absent) leader-side tracker. Returns [false]
   when the ack is not ours to absorb — the caller runs the normal
   path. *)
let relay_absorb_p2b t ~src ~ballot ~first_slot ~count ~batch ~ok =
  if t.active || not (relay_on t) then false
  else
    match Hashtbl.find_opt t.relay_aggs first_slot with
    | Some a when a.Relay.a_batch = batch && a.Relay.a_aux = count ->
        if
          ok
          && a.Relay.a_tag = ballot.Ballot.round
          && a.Relay.a_leader = ballot.Ballot.owner
        then begin
          let i = Relay.position a src in
          if i >= 0 then begin
            Relay.set_bit a i;
            if (not a.Relay.a_complete) && Relay.complete a then
              relay_finalize t first_slot a
          end;
          true
        end
        else if not ok then begin
          (* the member knows a higher ballot: relay the nok to the
             round's leader (it must step down), then take the normal
             nok path ourselves *)
          t.env.send a.Relay.a_leader
            (if batch then P2bBatch { ballot; first_slot; count; ok = false }
             else P2b { ballot; slot = first_slot; ok = false });
          relay_drop t first_slot a;
          false
        end
        else false
    | _ -> false

(* Commit a single-slot round once its tracker is satisfied; shared by
   the direct P2b path and the aggregated RelayAck path. *)
let maybe_commit_slot t slot (e : entry) tracker =
  if Quorum.satisfied tracker then begin
    e.committed <- true;
    t.env.obs.Proto.on_quorum ~slot;
    t.env.rel.settle_all ~key:e.rkey;
    if not (Sim.is_nil e.fb) then begin
      t.env.Proto.cancel e.fb;
      e.fb <- Sim.nil
    end;
    advance t;
    if (not t.env.config.Config.piggyback_commit) || quorum_mode t then
      t.env.broadcast (Commit { slot; cmd = e.cmd })
  end

(* ---- stable storage (Config.storage; DESIGN.md §14) ----------------
   Registers 0/1 hold the durable promised ballot (round, owner); the
   durable log holds every accepted (slot, ballot, command). Acks that
   Paxos safety rests on — the P1b promise, the P2b/P2bBatch accept,
   and the leader's own phase-2 vote — are deferred until the fsync
   covering their records completes. With [Config.storage] unset every
   branch below falls through to the original code path, so
   memory-only runs stay byte-identical. *)

let durable_ballot_ops (b : Ballot.t) =
  [ Storage.Reg (0, b.Ballot.round); Storage.Reg (1, b.Ballot.owner) ]

let entry_op ~slot ~(ballot : Ballot.t) ~cmd =
  Storage.Entry
    (slot, { Storage.a = ballot.Ballot.round; b = ballot.Ballot.owner; cmd })

let propose t ~client (request : Proto.request) =
  let slot = Slot_log.reserve t.log in
  let tracker =
    Quorum.create (Quorum.Count { members = all_ids t; threshold = q2_size t })
  in
  (match t.env.Proto.storage with
  | None -> Quorum.ack tracker t.env.id
  | Some _ -> () (* self-vote deferred until the entry is durable *));
  let entry =
    {
      ballot = t.ballot;
      cmd = request.Proto.command;
      client = Some client;
      quorum = Some tracker;
      committed = false;
      rkey = 0;
      fb = Sim.nil;
    }
  in
  Slot_log.set t.log slot entry;
  t.env.obs.Proto.on_propose ~slot ~cmd:request.Proto.command;
  let msg =
    P2a
      {
        ballot = t.ballot;
        slot;
        cmd = request.Proto.command;
        commit_up_to = Slot_log.exec_frontier t.log;
      }
  in
  if relay_route t then begin
    let gen = relay_gen t in
    t.relay_seq <- t.relay_seq + 1;
    let plan = relay_plan t ~leader:t.env.id ~gen in
    entry.rkey <-
      t.env.rel.post_multi ~ack:Reliable.Piggyback
        (relay_targets t ~gen plan)
        (RelayRound { gen; inner = msg });
    entry.fb <-
      t.env.schedule (relay_fallback_ms t) (fun () ->
          relay_fallback_slot t slot)
  end
  else
    entry.rkey <-
      (if t.env.config.Config.thrifty then
         t.env.rel.post_multi ~ack:Reliable.Piggyback (phase2_peers t) msg
       else t.env.rel.post_all ~ack:Reliable.Piggyback msg);
  match t.env.Proto.storage with
  | None -> ()
  | Some st ->
      (* the leader's own vote counts only once its accept record is
         on disk — by then leadership or the slot may have moved on *)
      Storage.write st (entry_op ~slot ~ballot:entry.ballot ~cmd:entry.cmd);
      let b = t.ballot in
      Storage.sync st (fun () ->
          if t.active && Ballot.equal t.ballot b && not entry.committed then begin
            Quorum.ack tracker t.env.id;
            maybe_commit_slot t slot entry tracker
          end)

let commit_batch t first_slot (bs : batch_state) =
  Hashtbl.remove t.batches first_slot;
  t.env.rel.settle_all ~key:bs.rkey;
  if not (Sim.is_nil bs.bfb) then begin
    t.env.Proto.cancel bs.bfb;
    bs.bfb <- Sim.nil
  end;
  for slot = first_slot to first_slot + bs.count - 1 do
    match Slot_log.get t.log slot with
    | Some e when not e.committed ->
        e.committed <- true;
        t.env.obs.Proto.on_quorum ~slot
    | _ -> ()
  done;
  advance t;
  (* quorum-read mode forces the explicit commit broadcast even under
     piggybacking: followers must learn commits promptly, because the
     client's ack is waiting on their CommitAcks *)
  if (not t.env.config.Config.piggyback_commit) || quorum_mode t then
    for slot = first_slot to first_slot + bs.count - 1 do
      match Slot_log.get t.log slot with
      | Some e -> t.env.broadcast (Commit { slot; cmd = e.cmd })
      | None -> ()
    done

(* One phase-2 round for the whole batch: contiguous slots, a single
   shared quorum tracker, one serialized message per peer whose wire
   size is the sum of the commands' sizes (one [occupy_outgoing], one
   [t_in] at each acceptor). Per-command client replies still happen
   individually as the slots execute in [advance]. *)
let propose_batch t items =
  let k = List.length items in
  let first_slot = Slot_log.next_slot t.log in
  let cmds = Array.make k Command.noop in
  List.iteri
    (fun i (client, (request : Proto.request)) ->
      let slot = Slot_log.reserve t.log in
      cmds.(i) <- request.Proto.command;
      Slot_log.set t.log slot
        {
          ballot = t.ballot;
          cmd = request.Proto.command;
          client = Some client;
          (* quorum = None: the shared tracker lives in [t.batches],
             keeping the per-slot retransmission path away from
             batched slots *)
          quorum = None;
          committed = false;
          rkey = 0;
          fb = Sim.nil;
        };
      t.env.obs.Proto.on_propose ~slot ~cmd:request.Proto.command)
    items;
  let tracker =
    Quorum.create (Quorum.Count { members = all_ids t; threshold = q2_size t })
  in
  (match t.env.Proto.storage with
  | None -> Quorum.ack tracker t.env.id
  | Some _ -> () (* self-vote deferred until the batch is durable *));
  let msg =
    P2aBatch
      {
        ballot = t.ballot;
        first_slot;
        cmds;
        commit_up_to = Slot_log.exec_frontier t.log;
      }
  in
  let size_bytes = k * t.env.config.Config.msg_size_bytes in
  let bs =
    if relay_route t then begin
      let gen = relay_gen t in
      t.relay_seq <- t.relay_seq + 1;
      let plan = relay_plan t ~leader:t.env.id ~gen in
      let rkey =
        t.env.rel.post_multi ~size_bytes ~ack:Reliable.Piggyback
          (relay_targets t ~gen plan)
          (RelayRound { gen; inner = msg })
      in
      let bfb =
        t.env.schedule (relay_fallback_ms t) (fun () ->
            relay_fallback_batch t first_slot)
      in
      { bballot = t.ballot; count = k; tracker; rkey; bfb }
    end
    else
      let rkey =
        if t.env.config.Config.thrifty then
          t.env.rel.post_multi ~size_bytes ~ack:Reliable.Piggyback
            (phase2_peers t) msg
        else t.env.rel.post_all ~size_bytes ~ack:Reliable.Piggyback msg
      in
      { bballot = t.ballot; count = k; tracker; rkey; bfb = Sim.nil }
  in
  Hashtbl.replace t.batches first_slot bs;
  match t.env.Proto.storage with
  | None -> if Quorum.satisfied tracker then commit_batch t first_slot bs
  | Some st ->
      Array.iteri
        (fun i cmd ->
          Storage.write st
            (entry_op ~slot:(first_slot + i) ~ballot:bs.bballot ~cmd))
        cmds;
      Storage.sync st (fun () ->
          match Hashtbl.find_opt t.batches first_slot with
          | Some bs' when bs' == bs ->
              Quorum.ack tracker t.env.id;
              if Quorum.satisfied tracker then commit_batch t first_slot bs
          | _ -> () (* round abandoned (step-down) before the fsync *))

let flush_batch t =
  t.env.Proto.cancel t.flush_timer;
  t.flush_timer <- Sim.nil;
  if t.active && not (Queue.is_empty t.batch_buf) then begin
    let items = List.of_seq (Queue.to_seq t.batch_buf) in
    Queue.clear t.batch_buf;
    propose_batch t items
  end

(* Active-leader ingress: propose immediately, or coalesce into the
   current batch when Config.batching is on. *)
let enqueue t ~client request =
  match t.env.config.Config.batching with
  | None -> propose t ~client request
  | Some b ->
      Queue.push (client, request) t.batch_buf;
      if Queue.length t.batch_buf >= b.Config.max_batch then flush_batch t
      else if Sim.is_nil t.flush_timer then
        t.flush_timer <-
          t.env.schedule b.Config.max_wait_ms (fun () ->
              t.flush_timer <- Sim.nil;
              flush_batch t)

let drain_pending t =
  if t.active then
    while not (Queue.is_empty t.pending) do
      let client, request = Queue.pop t.pending in
      enqueue t ~client request
    done
  else if
    t.ballot.Ballot.round > 0
    && t.ballot.Ballot.owner <> t.env.id
    && t.p1 = None
  then
    while not (Queue.is_empty t.pending) do
      let client, request = Queue.pop t.pending in
      t.env.forward t.ballot.Ballot.owner ~client request
    done

(* Leaving leadership (or candidacy for it): stop serving lease reads,
   abandon lease-renewal and deferred-ack state, and push queued reads
   back onto [pending] so they are forwarded to the new leader. Held
   write acks are simply dropped — their clients retry, and the new
   leader re-proposes and defers the ack correctly. Every queue and
   table is empty when no read path is configured, so this is a no-op
   for plain runs. *)
let resign_read_path t =
  t.lease_acks <- None;
  t.lease_until <- neg_infinity;
  Queue.transfer t.pending_reads t.pending;
  if Hashtbl.length t.held > 0 then Hashtbl.reset t.held;
  if Hashtbl.length t.commit_acks > 0 then Hashtbl.reset t.commit_acks

(* Start (or renew) the lease alongside the keep-alive heartbeat: each
   beat opens a new epoch whose grants are tracked against a fresh
   quorum. The tracker needs only [q2_size] grants — a set of q2
   refusers blocks every phase-1 quorum of n − q2 + 1 — which makes
   FPaxos lease renewal as cheap as its phase-2. *)
let send_heartbeat t =
  if lease_mode t then begin
    t.lease_epoch <- t.lease_epoch + 1;
    t.lease_sent_at <- t.env.now ();
    let tracker =
      Quorum.create (Quorum.Count { members = all_ids t; threshold = q2_size t })
    in
    Quorum.ack tracker t.env.id;
    t.lease_acks <- Some tracker
  end;
  t.env.broadcast
    (Heartbeat
       {
         ballot = t.ballot;
         commit_up_to = Slot_log.exec_frontier t.log;
         epoch = t.lease_epoch;
       });
  t.last_heard <- t.env.now ()

let on_heartbeat_ack t ~src ~ballot ~epoch =
  if t.active && Ballot.equal ballot t.ballot && epoch = t.lease_epoch then
    match t.lease_acks with
    | Some tracker ->
        Quorum.ack tracker src;
        if Quorum.satisfied tracker then begin
          let until = t.lease_sent_at +. serve_window t in
          if until > t.lease_until then t.lease_until <- until;
          maybe_serve_reads t
        end
    | None -> ()

let on_commit_ack t ~src ~slot =
  if t.active && quorum_mode t then begin
    Quorum.ack (commit_tracker t slot) src;
    maybe_release_held t slot
  end

let start_phase1 t =
  t.ballot <- Ballot.next t.ballot ~owner:t.env.id;
  t.active <- false;
  resign_read_path t;
  (* a fresh candidacy obsoletes whatever this replica was still
     retransmitting (an older P1a, stale P2as from lost leadership) *)
  t.env.rel.unpost_all ();
  relay_reset t;
  let tracker =
    Quorum.create (Quorum.Count { members = all_ids t; threshold = q1_size t })
  in
  let state = { tracker; recovered = []; rkey = t.env.rel.fresh () } in
  t.p1 <- Some state;
  Quorum.ack tracker t.env.id;
  let frontier = Slot_log.exec_frontier t.log in
  (* self-report own accepted entries *)
  Slot_log.iter_from t.log ~start:frontier ~f:(fun slot e ->
      state.recovered <- (slot, e.ballot, e.cmd) :: state.recovered);
  let send () =
    ignore
      (t.env.rel.post_all ~key:state.rkey ~ack:Reliable.Piggyback
         (P1a { ballot = t.ballot; frontier }))
  in
  match t.env.Proto.storage with
  | None -> send ()
  | Some st ->
      (* the candidacy's own implicit promise must be durable before
         anyone else can count on it *)
      let b = t.ballot in
      Storage.persist st (durable_ballot_ops b) (fun () ->
          match t.p1 with
          | Some s when s == state && Ballot.equal t.ballot b -> send ()
          | _ -> () (* candidacy superseded before the fsync *))

let become_leader t (state : phase1_state) =
  t.p1 <- None;
  t.active <- true;
  t.last_heard <- t.env.now ();
  (* stop re-soliciting promises from stragglers: they will learn the
     ballot from the P2as and heartbeats that follow *)
  t.env.rel.settle_all ~key:state.rkey;
  Hashtbl.reset t.batches (* stale rounds from a previous leadership *);
  (* Adopt the highest-ballot command reported for every slot at or
     above our commit frontier, fill gaps with no-ops, re-propose. *)
  let best = Hashtbl.create 16 in
  List.iter
    (fun (slot, b, cmd) ->
      match Hashtbl.find_opt best slot with
      | Some (b', _) when Ballot.(b' >= b) -> ()
      | _ -> Hashtbl.replace best slot (b, cmd))
    state.recovered;
  let max_slot = Hashtbl.fold (fun s _ acc -> Stdlib.max s acc) best (-1) in
  let frontier = Slot_log.exec_frontier t.log in
  let resync = ref [] in
  for slot = frontier to max_slot do
    let cmd =
      match Hashtbl.find_opt best slot with
      | Some (_, cmd) -> cmd
      | None -> Command.noop
    in
    let tracker =
      Quorum.create
        (Quorum.Count { members = all_ids t; threshold = q2_size t })
    in
    (match t.env.Proto.storage with
    | None -> Quorum.ack tracker t.env.id
    | Some _ -> () (* self-vote deferred until the re-proposal is durable *));
    (match Slot_log.get t.log slot with
    | Some e when e.committed -> () (* keep committed state *)
    | Some e ->
        if not (Command.equal e.cmd cmd) then e.client <- None;
        e.ballot <- t.ballot;
        e.cmd <- cmd;
        e.quorum <- Some tracker
    | None ->
        Slot_log.set t.log slot
          {
            ballot = t.ballot;
            cmd;
            client = None;
            quorum = Some tracker;
            committed = false;
            rkey = 0;
            fb = Sim.nil;
          });
    match Slot_log.get t.log slot with
    | Some e when not e.committed ->
        if not (Sim.is_nil e.fb) then begin
          t.env.Proto.cancel e.fb;
          e.fb <- Sim.nil
        end;
        e.rkey <-
          t.env.rel.post_all ~ack:Reliable.Piggyback
            (P2a
               {
                 ballot = t.ballot;
                 slot;
                 cmd = e.cmd;
                 commit_up_to = Slot_log.exec_frontier t.log;
               });
        (match t.env.Proto.storage with
        | None -> ()
        | Some st ->
            Storage.write st (entry_op ~slot ~ballot:e.ballot ~cmd:e.cmd);
            resync := (slot, e) :: !resync)
    | _ -> ()
  done;
  (match t.env.Proto.storage with
  | None -> ()
  | Some st ->
      (* one fsync covers the new term's ballot and every re-proposed
         accept; the self-votes land when it completes *)
      let b = t.ballot in
      let slots = !resync in
      List.iter (Storage.write st) (durable_ballot_ops b);
      Storage.sync st (fun () ->
          if t.active && Ballot.equal t.ballot b then
            List.iter
              (fun (slot, (e : entry)) ->
                match e.quorum with
                | Some tracker when not e.committed ->
                    Quorum.ack tracker t.env.id;
                    maybe_commit_slot t slot e tracker
                | _ -> ())
              slots));
  (* Read barrier: reads wait until everything up to and including the
     recovered tail is applied locally, so no predecessor's
     acknowledged write can be missing from a lease read. *)
  t.read_barrier <- Slot_log.next_slot t.log;
  t.lease_until <- neg_infinity;
  if lease_mode t then send_heartbeat t;
  drain_pending t

let step_down t ~ballot =
  if Ballot.(ballot > t.ballot) then t.ballot <- ballot;
  t.active <- false;
  t.p1 <- None;
  resign_read_path t;
  t.last_heard <- t.env.now ();
  (* everything this replica was retransmitting carried the lost
     ballot; the new leader re-proposes whatever survives phase-1 *)
  t.env.rel.unpost_all ();
  relay_reset t;
  (* abandon in-flight batch rounds; buffered-but-unproposed commands
     go back to [pending] so they are forwarded to the new leader *)
  Hashtbl.reset t.batches;
  t.env.Proto.cancel t.flush_timer;
  t.flush_timer <- Sim.nil;
  Queue.transfer t.batch_buf t.pending;
  drain_pending t

(* Quorum-read coordination: any replica runs an ABD round over the
   shadow registers — query a majority for the freshest applied
   (tag, value) of the key, write the winner back to a majority, then
   answer. Safe because write acks are deferred until a majority
   applied (see [advance]/[maybe_release_held]): every acknowledged
   write is visible to every majority the read can draw. *)
let start_quorum_read t ~client (request : Proto.request) =
  let cmd = request.Proto.command in
  let key = Command.key cmd in
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let r = Read_quorum.lookup t.shadow ~empty:None key in
  let round =
    Read_quorum.create
      (Quorum.Majority (all_ids t))
      ~self:t.env.id ~local_tag:r.Read_quorum.tag
      ~local_value:r.Read_quorum.value
  in
  Hashtbl.replace t.qreads rid { rclient = client; rcmd = cmd; round };
  t.env.broadcast (ReadQ { rid; key })

let on_readq t ~src ~rid ~key =
  let r = Read_quorum.lookup t.shadow ~empty:None key in
  t.env.send src
    (ReadQR { rid; tag = r.Read_quorum.tag; value = r.Read_quorum.value })

let on_readqr t ~src ~rid ~tag ~value =
  match Hashtbl.find_opt t.qreads rid with
  | Some qr when Read_quorum.query_ack qr.round ~src ~tag ~value ->
      let tag, value = Read_quorum.best qr.round in
      Read_quorum.begin_store qr.round ~self:t.env.id ~tag ~value;
      Read_quorum.adopt
        (Read_quorum.lookup t.shadow ~empty:None (Command.key qr.rcmd))
        ~tag ~value;
      t.env.broadcast (ReadWB { rid; key = Command.key qr.rcmd; tag; value })
  | _ -> ()

let on_readwb t ~src ~rid ~key ~tag ~value =
  Read_quorum.adopt (Read_quorum.lookup t.shadow ~empty:None key) ~tag ~value;
  t.env.send src (ReadWBAck { rid })

let on_readwback t ~src ~rid =
  match Hashtbl.find_opt t.qreads rid with
  | Some qr when Read_quorum.store_ack qr.round ~src ->
      Hashtbl.remove t.qreads rid;
      let _, value = Read_quorum.best qr.round in
      t.quorum_reads <- t.quorum_reads + 1;
      t.env.obs.Proto.on_read ();
      t.env.reply qr.rclient
        {
          Proto.command = qr.rcmd;
          read = value;
          replier = t.env.id;
          leader_hint = None;
        }
  | _ -> ()

let on_request t ~client (request : Proto.request) =
  if quorum_mode t && Command.is_read request.Proto.command then
    start_quorum_read t ~client request
  else if t.active then
    if lease_mode t && Command.is_read request.Proto.command then begin
      if lease_valid t then serve_local_read t ~client request
      else Queue.push (client, request) t.pending_reads
    end
    else enqueue t ~client request
  else if
    t.ballot.Ballot.round > 0
    && t.ballot.Ballot.owner <> t.env.id
    && t.p1 = None
  then t.env.forward t.ballot.Ballot.owner ~client request
  else Queue.push (client, request) t.pending

let on_p1a t ~src ~ballot ~frontier =
  (* Lease safety: while our grant to the current leader is live we
     refuse to promise any other candidate — this is what blocks a new
     leader from forming inside the grantee's serve window. The nok
     is harmless to liveness: the candidate's reliable-delivery layer
     retransmits the P1a and the promise succeeds after expiry. *)
  let lease_blocks =
    lease_mode t
    && ballot.Ballot.owner <> t.lease_holder
    && t.env.now () < t.lease_granted_until
  in
  (* Promise not only strictly higher ballots but also the exact
     ballot we already hold when [src] owns it: we may have adopted it
     from a nok P2b or a duplicate (retransmitted) P1a before this
     copy arrived, and the promise is idempotent. Refusing would make
     a retransmitted P1a elicit nok forever after its P1b was lost. *)
  if
    (not lease_blocks)
    && (Ballot.(ballot > t.ballot)
       || (Ballot.equal ballot t.ballot && ballot.Ballot.owner = src))
  then begin
    t.ballot <- ballot;
    t.active <- false;
    t.p1 <- None;
    resign_read_path t;
    t.last_heard <- t.env.now ();
    let accepted = ref [] in
    Slot_log.iter_from t.log ~start:frontier ~f:(fun slot e ->
        accepted := (slot, e.ballot, e.cmd) :: !accepted);
    (* the promise binds across crashes: it leaves only after the
       promised ballot is on disk *)
    (match t.env.Proto.storage with
    | None -> t.env.send src (P1b { ballot; ok = true; accepted = !accepted })
    | Some st ->
        Storage.persist st (durable_ballot_ops ballot) (fun () ->
            t.env.send src (P1b { ballot; ok = true; accepted = !accepted })));
    drain_pending t
  end
  else t.env.send src (P1b { ballot = t.ballot; ok = false; accepted = [] })

let on_p1b t ~src ~ballot ~ok ~accepted =
  match t.p1 with
  | Some state when Ballot.equal ballot t.ballot && ok ->
      t.env.rel.settle ~dst:src ~key:state.rkey;
      state.recovered <- accepted @ state.recovered;
      Quorum.ack state.tracker src;
      if Quorum.satisfied state.tracker then become_leader t state
  | Some _ when Ballot.(ballot > t.ballot) -> step_down t ~ballot
  | _ -> ()

(* Acceptor-side adoption of a single-slot phase-2 round, shared by
   the direct path (reply with a P2b) and the relay path (the relay
   accepts silently and folds its own vote into the aggregated
   bitmap). Returns [true] when the round was accepted at [ballot]. *)
let accept_p2a t ~ballot ~slot ~cmd ~commit_up_to:bound =
  if Ballot.(ballot >= t.ballot) then begin
    t.ballot <- ballot;
    if ballot.Ballot.owner <> t.env.id then begin
      if t.active then resign_read_path t;
      t.active <- false;
      t.p1 <- None
    end;
    t.last_heard <- t.env.now ();
    (match Slot_log.get t.log slot with
    | Some e when e.committed -> () (* never overwrite a commit *)
    | Some e ->
        (* a different command displaced this slot: the old proposer's
           client must not be answered with the new command's result *)
        if not (Command.equal e.cmd cmd) then e.client <- None;
        e.ballot <- ballot;
        e.cmd <- cmd
    | None ->
        Slot_log.set t.log slot
          {
            ballot;
            cmd;
            client = None;
            quorum = None;
            committed = false;
            rkey = 0;
            fb = Sim.nil;
          });
    (match t.env.Proto.storage with
    | None -> ()
    | Some st ->
        List.iter (Storage.write st) (durable_ballot_ops ballot);
        Storage.write st (entry_op ~slot ~ballot ~cmd));
    commit_up_to t bound;
    true
  end
  else false

let on_p2a t ~src ~ballot ~slot ~cmd ~commit_up_to =
  if accept_p2a t ~ballot ~slot ~cmd ~commit_up_to then begin
    (* the accept vote leaves only after its record is durable *)
    (match t.env.Proto.storage with
    | None -> t.env.send src (P2b { ballot; slot; ok = true })
    | Some st ->
        Storage.sync st (fun () ->
            t.env.send src (P2b { ballot; slot; ok = true })));
    drain_pending t
  end
  else t.env.send src (P2b { ballot = t.ballot; slot; ok = false })

(* Acceptor side of a batched round: store every slot, then send ONE
   ack covering the whole range — the per-slot adoption logic is
   identical to [accept_p2a]. *)
let accept_p2a_batch t ~ballot ~first_slot ~cmds ~commit_up_to:bound =
  if Ballot.(ballot >= t.ballot) then begin
    t.ballot <- ballot;
    if ballot.Ballot.owner <> t.env.id then begin
      if t.active then resign_read_path t;
      t.active <- false;
      t.p1 <- None
    end;
    t.last_heard <- t.env.now ();
    Array.iteri
      (fun i cmd ->
        let slot = first_slot + i in
        match Slot_log.get t.log slot with
        | Some e when e.committed -> () (* never overwrite a commit *)
        | Some e ->
            if not (Command.equal e.cmd cmd) then e.client <- None;
            e.ballot <- ballot;
            e.cmd <- cmd
        | None ->
            Slot_log.set t.log slot
              {
                ballot;
                cmd;
                client = None;
                quorum = None;
                committed = false;
                rkey = 0;
                fb = Sim.nil;
              })
      cmds;
    (match t.env.Proto.storage with
    | None -> ()
    | Some st ->
        List.iter (Storage.write st) (durable_ballot_ops ballot);
        Array.iteri
          (fun i cmd ->
            Storage.write st (entry_op ~slot:(first_slot + i) ~ballot ~cmd))
          cmds);
    commit_up_to t bound;
    true
  end
  else false

let on_p2a_batch t ~src ~ballot ~first_slot ~cmds ~commit_up_to =
  let count = Array.length cmds in
  if accept_p2a_batch t ~ballot ~first_slot ~cmds ~commit_up_to then begin
    (match t.env.Proto.storage with
    | None -> t.env.send src (P2bBatch { ballot; first_slot; count; ok = true })
    | Some st ->
        Storage.sync st (fun () ->
            t.env.send src
              (P2bBatch { ballot; first_slot; count; ok = true })));
    drain_pending t
  end
  else
    t.env.send src
      (P2bBatch { ballot = t.ballot; first_slot; count; ok = false })

(* Relay ingress: accept the inner round locally, fan the plain round
   out to the group (members reply to us, not the leader), and start
   the aggregation record. A duplicate wrapper — the leader is
   retransmitting because our ack or some member's copy got lost —
   re-sends the completed ack, or re-fans to the members whose bits
   are still clear. *)
let on_relay_round t ~src ~gen ~inner =
  let info =
    match inner with
    | P2a { ballot; slot; _ } -> Some (ballot, slot, 1, false, 0)
    | P2aBatch { ballot; first_slot; cmds; _ } ->
        Some
          ( ballot,
            first_slot,
            Array.length cmds,
            true,
            Array.length cmds * t.env.config.Config.msg_size_bytes )
    | _ -> None
  in
  match info with
  | None -> ()
  | Some (ballot, first_slot, count, batch, fan_size) -> (
      let fan dst =
        if batch then t.env.send_sized dst ~size_bytes:fan_size inner
        else t.env.send dst inner
      in
      match Hashtbl.find_opt t.relay_aggs first_slot with
      | Some a
        when a.Relay.a_tag = ballot.Ballot.round
             && a.Relay.a_leader = ballot.Ballot.owner
             && a.Relay.a_batch = batch
             && a.Relay.a_aux = count ->
          if a.Relay.a_complete then relay_send_ack t first_slot a
          else begin
            let g = a.Relay.a_group in
            for i = 1 to Array.length g - 1 do
              if a.Relay.a_bits land (1 lsl i) = 0 then fan g.(i)
            done
          end
      | stale ->
          let accepted =
            match inner with
            | P2a { ballot; slot; cmd; commit_up_to } ->
                accept_p2a t ~ballot ~slot ~cmd ~commit_up_to
            | P2aBatch { ballot; first_slot; cmds; commit_up_to } ->
                accept_p2a_batch t ~ballot ~first_slot ~cmds ~commit_up_to
            | _ -> false
          in
          if not accepted then
            (* we know a higher ballot: nok straight back to the
               leader, exactly as the direct path would *)
            if batch then
              t.env.send src
                (P2bBatch { ballot = t.ballot; first_slot; count; ok = false })
            else
              t.env.send src
                (P2b { ballot = t.ballot; slot = first_slot; ok = false })
          else begin
            (match stale with
            | Some old -> relay_drop t first_slot old
            | None -> ());
            let leader = ballot.Ballot.owner in
            let plan = relay_plan t ~leader ~gen in
            let gi = plan.Relay.group_of.(t.env.id) in
            if gi < 0 || plan.Relay.groups.(gi).(0) <> t.env.id then begin
              (* not a relay under this plan (the round raced a plan
                 rotation): behave like a plain acceptor *)
              if batch then
                t.env.send src (P2bBatch { ballot; first_slot; count; ok = true })
              else t.env.send src (P2b { ballot; slot = first_slot; ok = true })
            end
            else begin
              let group = plan.Relay.groups.(gi) in
              let a =
                Relay.alloc t.relay_pool ~leader ~gen ~group
                  ~tag:ballot.Ballot.round ~aux:count ~batch
              in
              a.Relay.a_t0 <- t.env.now ();
              Relay.set_bit a 0 (* position 0 = self: our own accept *);
              Hashtbl.replace t.relay_aggs first_slot a;
              List.iter fan (relay_fan_list t ~leader ~gen plan gi);
              if Relay.complete a then relay_finalize t first_slot a
              else
                a.Relay.a_flush <-
                  t.env.schedule (relay_flush_ms t) (fun () ->
                      relay_flush t first_slot);
              relay_prune t
            end;
            drain_pending t
          end)

let on_p2b_batch t ~src ~ballot ~first_slot ~count ~ok =
  if relay_absorb_p2b t ~src ~ballot ~first_slot ~count ~batch:true ~ok then ()
  else if ok && t.active && Ballot.equal ballot t.ballot then begin
    match Hashtbl.find_opt t.batches first_slot with
    | Some bs when bs.count = count && Ballot.equal bs.bballot ballot ->
        t.env.rel.settle ~dst:src ~key:bs.rkey;
        Quorum.ack bs.tracker src;
        if Quorum.satisfied bs.tracker then commit_batch t first_slot bs
    | _ -> ()
  end
  else if (not ok) && Ballot.(ballot > t.ballot) then step_down t ~ballot

let on_p2b t ~src ~ballot ~slot ~ok =
  if relay_absorb_p2b t ~src ~ballot ~first_slot:slot ~count:1 ~batch:false ~ok
  then ()
  else if ok && t.active && Ballot.equal ballot t.ballot then begin
    match Slot_log.get t.log slot with
    | Some ({ quorum = Some tracker; committed = false; _ } as e) ->
        t.env.rel.settle ~dst:src ~key:e.rkey;
        Quorum.ack tracker src;
        maybe_commit_slot t slot e tracker
    | Some { committed = true; rkey; _ } when rkey <> 0 ->
        (* late ack for an already-committed slot: just stop the timer *)
        t.env.rel.settle ~dst:src ~key:rkey
    | _ -> ()
  end
  else if (not ok) && Ballot.(ballot > t.ballot) then step_down t ~ballot

(* Leader ingress of an aggregated ack: translate bitmap positions
   back to replica ids through the shared plan and feed the ordinary
   quorum trackers — quorum accounting is exactly as if each member
   had replied directly. The relay's reliable post settles only on a
   FULL group bitmap: a partial flush keeps the wrapper
   retransmitting, which is what re-prods the relay to re-fan to its
   silent members. *)
let on_relay_ack t ~src ~ballot ~gen ~first_slot ~count ~batch ~bits =
  if t.active && relay_on t && Ballot.equal ballot t.ballot then begin
    let plan = relay_plan t ~leader:t.env.id ~gen in
    let gi = plan.Relay.group_of.(src) in
    if gi >= 0 && plan.Relay.groups.(gi).(0) = src then begin
      let group = plan.Relay.groups.(gi) in
      let mask = Relay.full_mask (Array.length group) in
      let full = bits land mask = mask in
      if batch then begin
        match Hashtbl.find_opt t.batches first_slot with
        | Some bs when bs.count = count && Ballot.equal bs.bballot ballot ->
            if full then t.env.rel.settle ~dst:src ~key:bs.rkey;
            for i = 0 to Array.length group - 1 do
              if bits land (1 lsl i) <> 0 then Quorum.ack bs.tracker group.(i)
            done;
            if Quorum.satisfied bs.tracker then commit_batch t first_slot bs
        | _ -> ()
      end
      else begin
        match Slot_log.get t.log first_slot with
        | Some ({ quorum = Some tracker; committed = false; _ } as e) ->
            if full then t.env.rel.settle ~dst:src ~key:e.rkey;
            for i = 0 to Array.length group - 1 do
              if bits land (1 lsl i) <> 0 then Quorum.ack tracker group.(i)
            done;
            maybe_commit_slot t first_slot e tracker
        | Some { committed = true; rkey; _ } when full && rkey <> 0 ->
            t.env.rel.settle ~dst:src ~key:rkey
        | _ -> ()
      end
    end
  end

let on_commit t ~slot ~cmd =
  (match Slot_log.get t.log slot with
  | Some e ->
      e.cmd <- cmd;
      e.committed <- true
  | None ->
      Slot_log.set t.log slot
        {
          ballot = t.ballot;
          cmd;
          client = None;
          quorum = None;
          committed = true;
          rkey = 0;
          fb = Sim.nil;
        });
  advance t

let on_heartbeat t ~src ~ballot ~commit_up_to:bound ~epoch =
  if Ballot.(ballot >= t.ballot) then begin
    t.ballot <- ballot;
    if ballot.Ballot.owner <> t.env.id then begin
      if t.active then resign_read_path t;
      t.active <- false
    end;
    t.last_heard <- t.env.now ();
    (* Accepting the beat is the lease grant: promise not to help any
       other candidate for a serve window, and tell the leader so. The
       grant is renewed wholesale — [lease_granted_until] only moves
       forward here since beats arrive every window/6. *)
    if lease_mode t && ballot.Ballot.owner <> t.env.id then begin
      t.lease_holder <- ballot.Ballot.owner;
      let until = t.env.now () +. serve_window t in
      if until > t.lease_granted_until then t.lease_granted_until <- until;
      t.env.send src (HeartbeatAck { ballot; epoch })
    end;
    commit_up_to t bound;
    drain_pending t
  end

let on_message t ~src msg =
  match msg with
  | P1a { ballot; frontier } -> on_p1a t ~src ~ballot ~frontier
  | P1b { ballot; ok; accepted } -> on_p1b t ~src ~ballot ~ok ~accepted
  | P2a { ballot; slot; cmd; commit_up_to } ->
      on_p2a t ~src ~ballot ~slot ~cmd ~commit_up_to
  | P2b { ballot; slot; ok } -> on_p2b t ~src ~ballot ~slot ~ok
  | P2aBatch { ballot; first_slot; cmds; commit_up_to } ->
      on_p2a_batch t ~src ~ballot ~first_slot ~cmds ~commit_up_to
  | P2bBatch { ballot; first_slot; count; ok } ->
      on_p2b_batch t ~src ~ballot ~first_slot ~count ~ok
  | Commit { slot; cmd } -> on_commit t ~slot ~cmd
  | Heartbeat { ballot; commit_up_to; epoch } ->
      on_heartbeat t ~src ~ballot ~commit_up_to ~epoch
  | HeartbeatAck { ballot; epoch } -> on_heartbeat_ack t ~src ~ballot ~epoch
  | CommitAck { slot } -> on_commit_ack t ~src ~slot
  | ReadQ { rid; key } -> on_readq t ~src ~rid ~key
  | ReadQR { rid; tag; value } -> on_readqr t ~src ~rid ~tag ~value
  | ReadWB { rid; key; tag; value } -> on_readwb t ~src ~rid ~key ~tag ~value
  | ReadWBAck { rid } -> on_readwback t ~src ~rid
  | RelayRound { gen; inner } -> on_relay_round t ~src ~gen ~inner
  | RelayAck { ballot; gen; first_slot; count; batch; bits } ->
      on_relay_ack t ~src ~ballot ~gen ~first_slot ~count ~batch ~bits

let rec heartbeat_loop t =
  let period = t.env.config.Config.failover_timeout_ms /. 4.0 in
  ignore
  @@ t.env.schedule period (fun () ->
         (* Lost P2a/P2b recovery now lives in the reliable-delivery
            layer (each phase-2 post retransmits on its own backoff
            timer until acked) — the beat is a pure keep-alive plus
            commit-frontier carrier, and in lease mode also the lease
            renewal round. *)
         if t.active then send_heartbeat t;
         heartbeat_loop t)

let rec failover_loop t =
  (* Stagger timeouts by id so the lowest live replica usually wins. *)
  let base = t.env.config.Config.failover_timeout_ms in
  let timeout = base *. (1.5 +. (0.5 *. float_of_int t.env.id)) in
  ignore
  @@ t.env.schedule (base /. 2.0) (fun () ->
         if
           (not t.active) && t.p1 = None
           && t.env.now () -. t.last_heard > timeout
         then start_phase1 t;
         failover_loop t)

let on_start t =
  t.last_heard <- t.env.now ();
  if t.env.id = 0 then start_phase1 t;
  heartbeat_loop t;
  failover_loop t

(* Boot a FRESH replica instance from durable state after a crash
   (the cluster engine swaps instances at the recovery edge). By
   construction everything volatile is gone — leadership, phase-1
   progress, leases, batches, client continuations. Only the promised
   ballot (registers 0/1) and the accepted log survive; commits and
   the KV image are re-derived as the replica re-learns the commit
   frontier from the incumbent leader (or re-runs phase 1 itself on
   failover timeout — a recovered leader never resumes its old term). *)
let on_recover t =
  (match t.env.Proto.storage with
  | None -> ()
  | Some st ->
      let round = Storage.reg st 0 and owner = Storage.reg st 1 in
      if round > 0 then t.ballot <- { Ballot.round; owner };
      Storage.iter_entries st ~f:(fun slot (de : Storage.entry) ->
          Slot_log.set t.log slot
            {
              ballot = { Ballot.round = de.Storage.a; owner = de.Storage.b };
              cmd = de.Storage.cmd;
              client = None;
              quorum = None;
              committed = false;
              rkey = 0;
              fb = Sim.nil;
            }));
  t.last_heard <- t.env.now ();
  heartbeat_loop t;
  failover_loop t
