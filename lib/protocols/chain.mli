(** Chain Replication (van Renesse & Schneider, OSDI 2004) — the other
    non-consensus recommendation of the Figure-14 flowchart.

    Replicas form a chain in id order: writes enter at the head
    (replica 0), apply at each node, and propagate to the tail
    (replica N-1), which acknowledges the client; reads are served by
    the tail alone, so they only ever observe fully-replicated writes.
    Linearizability follows from the single serialization point at
    the tail. Throughput benefits from the pipelined chain (each node
    processes two messages per write), at the cost of write latency
    proportional to chain length and no tolerance of silent node
    failure without an external reconfiguration master (not
    implemented — the paper treats chain replication as an alternative
    when consensus-grade fault handling is delegated elsewhere). *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float
val executor : replica -> Executor.t
val is_head : replica -> bool
val is_tail : replica -> bool
val writes_forwarded : replica -> int

val tail_reads_served : replica -> int
(** Reads the tail answered off the fast path ([read_path = Tail]):
    a store peek that consumes no executor history. 0 in the default
    configuration, which keeps the legacy execute-at-tail path. *)
