(** Raft consensus (Ongaro & Ousterhout 2014), implemented
    independently from {!Paxos} as the paper's Fig. 7 does with etcd:
    randomized election timeouts, terms, per-follower [next_index]
    replication with consistency checks, and majority commit. It is
    deliberately a separate code path so the Paxos/Raft comparison
    exercises two implementations of the single-leader approach. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float

type role = Follower | Candidate | Leader

val role : replica -> role
val current_term : replica -> int
val commit_index : replica -> int
val executor : replica -> Executor.t
val log_length : replica -> int
val log_term_at : replica -> int -> int option

val log_base : replica -> int
(** First retained in-memory slot — rises above 0 once threshold
    snapshotting ([Config.storage.snapshot_threshold]) compacts the
    applied prefix. *)

val snapshots_taken : replica -> int
(** Threshold snapshots captured locally (excludes installs received
    from the leader). *)

(** {2 Read path} (PR 7) — inert unless [config.read_path = Lease].
    The Raft lease needs no extra messages: every AppendEntries is a
    probe, accepting one is the grant (it resets the follower's
    election timer and blocks its vote for anyone else for a window),
    and any current-term reply is the leader's proof of contact. *)

val lease_valid : replica -> bool
(** The leader may serve a read locally right now: the no-op barrier
    of its term is committed and a majority was in proven contact
    within the lease window minus the safety margin. *)

val local_reads_served : replica -> int
