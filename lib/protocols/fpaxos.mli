(** Flexible Paxos (FPaxos, §2): multi-decree Paxos with independently
    sized phase-1/phase-2 quorums. The protocol logic is {!Paxos};
    this module fixes the name and defaults the phase-2 quorum to the
    paper's |q2| = 3 for 9 nodes when the config does not specify
    one. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float
val is_leader : replica -> bool
val executor : replica -> Executor.t

val default_q2 : n:int -> int
(** The small phase-2 quorum the paper evaluates: [⌈(n+1)/3⌉] — 3 for
    a 9-node cluster. *)

val lease_valid : replica -> bool
val local_reads_served : replica -> int
val quorum_reads_served : replica -> int
(** Read-path accessors, shared with {!Paxos} (same replica type). *)
