type iid = int * int
(** (command-leader replica, instance number) *)

type message =
  | PreAccept of { iid : iid; cmd : Command.t; seq : int; deps : iid list }
  | PreAcceptOk of { iid : iid; seq : int; deps : iid list }
  | Accept of { iid : iid; cmd : Command.t; seq : int; deps : iid list }
  | AcceptOk of { iid : iid }
  | Commit of { iid : iid; cmd : Command.t; seq : int; deps : iid list }

let name = "epaxos"
let cpu_factor (c : Config.t) = c.Config.epaxos_penalty

let message_label = function
  | PreAccept _ -> "PreAccept"
  | PreAcceptOk _ -> "PreAcceptOk"
  | Accept _ -> "Accept"
  | AcceptOk _ -> "AcceptOk"
  | Commit _ -> "Commit"

type status = Pre_accepted | Accepted_st | Committed_st | Executed_st

type inst = {
  iid : iid;
  mutable cmd : Command.t;
  mutable seq : int;
  mutable deps : iid list;
  mutable status : status;
  mutable client : Address.t option;
  mutable fast_q : Quorum.t option;
  mutable accept_q : Quorum.t option;
  mutable identical : bool;
}

type replica = {
  env : message Proto.env;
  instances : (iid, inst) Hashtbl.t;
  mutable next_no : int;
  (* newest write and newest read per (key, command-leader). They are
     tracked separately: if a read could displace the last write, a
     later read would lose its dependency on that write (reads do not
     interfere with reads, so the chain would break). *)
  last_write_on_key : (Command.key, iid array) Hashtbl.t;
  last_read_on_key : (Command.key, iid array) Hashtbl.t;
  exec : Executor.t;
  mutable blocked : iid list; (* committed, awaiting deps *)
  mutable committed : int;
  mutable executed : int;
  mutable fast_commits : int;
  mutable slow_commits : int;
}

let create env =
  {
    env;
    instances = Hashtbl.create 1024;
    next_no = 0;
    last_write_on_key = Hashtbl.create 256;
    last_read_on_key = Hashtbl.create 256;
    exec = Executor.create ();
    blocked = [];
    committed = 0;
    executed = 0;
    fast_commits = 0;
    slow_commits = 0;
  }

let executor t = t.exec
let committed_count t = t.committed
let executed_count t = t.executed
let fast_path_count t = t.fast_commits
let slow_path_count t = t.slow_commits
let leader_of_key _ _ = None

let none_iid = (-1, -1)

let key_slots tbl n key =
  match Hashtbl.find_opt tbl key with
  | Some a -> a
  | None ->
      let a = Array.make n none_iid in
      Hashtbl.add tbl key a;
      a

let note_instance t (inst : inst) =
  if not (Command.is_noop inst.cmd) then begin
    let tbl =
      if Command.is_write inst.cmd then t.last_write_on_key
      else t.last_read_on_key
    in
    let slots = key_slots tbl t.env.n (Command.key inst.cmd) in
    let owner, no = inst.iid in
    let _, cur = slots.(owner) in
    if no > cur then slots.(owner) <- inst.iid
  end

let find t iid = Hashtbl.find_opt t.instances iid

(* Local interference: latest instance per replica whose command
   conflicts with [cmd]. *)
let local_attrs t cmd =
  if Command.is_noop cmd then (1, [])
  else begin
    let key = Command.key cmd in
    let deps = ref [] and max_seq = ref 0 in
    let scan tbl =
      Array.iter
        (fun iid ->
          if iid <> none_iid then
            match find t iid with
            | Some i when Command.conflicts i.cmd cmd ->
                deps := iid :: !deps;
                if i.seq > !max_seq then max_seq := i.seq
            | _ -> ())
        (key_slots tbl t.env.n key)
    in
    scan t.last_write_on_key;
    (* reads never interfere with reads, so scanning them only
       matters for writes; Command.conflicts filters anyway *)
    if Command.is_write cmd then scan t.last_read_on_key;
    (!max_seq + 1, List.sort_uniq compare !deps)
  end

let union_deps a b =
  List.sort_uniq compare (List.rev_append a b)

let phase_rank = function
  | Pre_accepted -> 0
  | Accepted_st -> 1
  | Committed_st -> 2
  | Executed_st -> 3

let record t iid cmd seq deps status client =
  match find t iid with
  | Some i ->
      (* A lower-phase message that was reordered behind a higher-phase
         one must not overwrite the authoritative attributes: a stale
         PreAccept arriving after Commit would replace the committed
         dependency set and break execution ordering. *)
      if phase_rank status >= phase_rank i.status then begin
        i.cmd <- cmd;
        i.seq <- seq;
        i.deps <- deps;
        i.status <- status
      end;
      if client <> None then i.client <- client;
      note_instance t i;
      i
  | None ->
      let i =
        {
          iid;
          cmd;
          seq;
          deps;
          status;
          client;
          fast_q = None;
          accept_q = None;
          identical = true;
        }
      in
      Hashtbl.add t.instances iid i;
      note_instance t i;
      i

(* -- Execution: Tarjan SCC over committed dependency graph -------- *)

exception Blocked

(* Gather all instances transitively reachable from [root] through
   dependencies, stopping at executed ones; raise if any is not yet
   committed locally. *)
let reachable t root =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go iid =
    if not (Hashtbl.mem seen iid) then begin
      Hashtbl.add seen iid ();
      match find t iid with
      | None -> raise Blocked
      | Some i -> (
          match i.status with
          | Executed_st -> ()
          | Pre_accepted | Accepted_st -> raise Blocked
          | Committed_st ->
              acc := i :: !acc;
              List.iter go i.deps)
    end
  in
  go root;
  !acc

let tarjan (nodes : inst list) =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let node_set = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace node_set i.iid i) nodes;
  let rec strongconnect (v : inst) =
    Hashtbl.replace index v.iid !counter;
    Hashtbl.replace lowlink v.iid !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v.iid ();
    List.iter
      (fun w_iid ->
        match Hashtbl.find_opt node_set w_iid with
        | None -> () (* executed already; not part of the graph *)
        | Some w ->
            if not (Hashtbl.mem index w.iid) then begin
              strongconnect w;
              Hashtbl.replace lowlink v.iid
                (Stdlib.min
                   (Hashtbl.find lowlink v.iid)
                   (Hashtbl.find lowlink w.iid))
            end
            else if Hashtbl.mem on_stack w.iid then
              Hashtbl.replace lowlink v.iid
                (Stdlib.min
                   (Hashtbl.find lowlink v.iid)
                   (Hashtbl.find index w.iid)))
      v.deps;
    if Hashtbl.find lowlink v.iid = Hashtbl.find index v.iid then begin
      let component = ref [] in
      let continue = ref true in
      while !continue do
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w.iid;
            component := w :: !component;
            if w.iid = v.iid then continue := false
        | [] -> continue := false
      done;
      components := !component :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v.iid) then strongconnect v) nodes;
  (* Tarjan emits each SCC after all SCCs it depends on; execution
     order is emission order. *)
  List.rev !components

let execute_instance t (i : inst) =
  i.status <- Executed_st;
  t.executed <- t.executed + 1;
  let read = Executor.execute t.exec i.cmd in
  match i.client with
  | Some client ->
      i.client <- None;
      t.env.reply client
        { Proto.command = i.cmd; read; replier = t.env.id; leader_hint = None }
  | None -> ()

let try_execute t root_iid =
  match reachable t root_iid with
  | exception Blocked ->
      if not (List.mem root_iid t.blocked) then
        t.blocked <- root_iid :: t.blocked
  | [] -> ()
  | nodes ->
      let components = tarjan nodes in
      List.iter
        (fun comp ->
          let ordered =
            List.sort
              (fun a b ->
                match Int.compare a.seq b.seq with
                | 0 -> compare a.iid b.iid
                | c -> c)
              comp
          in
          List.iter (fun i -> if i.status = Committed_st then execute_instance t i) ordered)
        components

let retry_blocked t =
  let pending = t.blocked in
  t.blocked <- [];
  List.iter
    (fun iid ->
      match find t iid with
      | Some i when i.status = Committed_st -> try_execute t iid
      | _ -> ())
    pending

let commit_instance t (i : inst) =
  if i.status <> Committed_st && i.status <> Executed_st then begin
    i.status <- Committed_st;
    t.committed <- t.committed + 1
  end;
  try_execute t i.iid;
  retry_blocked t

(* -- Protocol ------------------------------------------------------ *)

let all_ids (t : replica) = List.init t.env.n (fun i -> i)

(* Retransmit this leader's in-flight phase until the instance
   commits, masking lost messages (EPaxos' explicit-prepare recovery,
   which handles leader failure, is out of scope — see the interface
   documentation). *)
let rec watch_instance t iid =
  ignore
    (t.env.schedule (t.env.config.Config.client_timeout_ms /. 2.0) (fun () ->
         match find t iid with
         | Some ({ status = Pre_accepted; fast_q = Some _; _ } as i) ->
             t.env.broadcast
               (PreAccept { iid; cmd = i.cmd; seq = i.seq; deps = i.deps });
             watch_instance t iid
         | Some ({ status = Accepted_st; accept_q = Some _; _ } as i) ->
             t.env.broadcast
               (Accept { iid; cmd = i.cmd; seq = i.seq; deps = i.deps });
             watch_instance t iid
         | _ -> ()))

let on_request t ~client (request : Proto.request) =
  let cmd = request.Proto.command in
  let no = t.next_no in
  t.next_no <- t.next_no + 1;
  let iid = (t.env.id, no) in
  let seq, deps = local_attrs t cmd in
  let i = record t iid cmd seq deps Pre_accepted (Some client) in
  let fq = Quorum.create (Quorum.Fast (all_ids t)) in
  Quorum.ack fq t.env.id;
  i.fast_q <- Some fq;
  i.identical <- true;
  t.env.broadcast (PreAccept { iid; cmd; seq; deps });
  watch_instance t iid

let start_accept_phase t (i : inst) =
  i.status <- Accepted_st;
  let aq = Quorum.create (Quorum.Majority (all_ids t)) in
  Quorum.ack aq t.env.id;
  i.accept_q <- Some aq;
  t.env.broadcast (Accept { iid = i.iid; cmd = i.cmd; seq = i.seq; deps = i.deps })

let finalize_commit t (i : inst) ~fast =
  if fast then t.fast_commits <- t.fast_commits + 1
  else t.slow_commits <- t.slow_commits + 1;
  t.env.broadcast (Commit { iid = i.iid; cmd = i.cmd; seq = i.seq; deps = i.deps });
  commit_instance t i

let on_pre_accept t ~src ~iid ~cmd ~seq ~deps =
  (* Merge the leader's attributes with local interference. *)
  let local_seq, local_deps = local_attrs t cmd in
  let deps' = union_deps deps (List.filter (fun d -> d <> iid) local_deps) in
  let seq' = Stdlib.max seq local_seq in
  ignore (record t iid cmd seq' deps' Pre_accepted None);
  t.env.send src (PreAcceptOk { iid; seq = seq'; deps = deps' })

let on_pre_accept_ok t ~src ~iid ~seq ~deps =
  match find t iid with
  | Some ({ status = Pre_accepted; fast_q = Some fq; _ } as i) ->
      if seq <> i.seq || List.sort_uniq compare deps <> List.sort_uniq compare i.deps
      then begin
        i.identical <- false;
        i.seq <- Stdlib.max i.seq seq;
        i.deps <- union_deps i.deps deps
      end;
      Quorum.ack fq src;
      if Quorum.satisfied fq then
        if i.identical then finalize_commit t i ~fast:true
        else start_accept_phase t i
  | _ -> () (* already moved past pre-accept *)

let on_accept t ~src ~iid ~cmd ~seq ~deps =
  ignore (record t iid cmd seq deps Accepted_st None);
  t.env.send src (AcceptOk { iid })

let on_accept_ok t ~src ~iid =
  match find t iid with
  | Some ({ status = Accepted_st; accept_q = Some aq; _ } as i) ->
      Quorum.ack aq src;
      if Quorum.satisfied aq then finalize_commit t i ~fast:false
  | _ -> ()

let on_commit t ~iid ~cmd ~seq ~deps =
  (* Record at Accepted so commit_instance performs (and counts) the
     transition; record never downgrades an already-committed
     instance. *)
  let i = record t iid cmd seq deps Accepted_st None in
  commit_instance t i

let on_message t ~src = function
  | PreAccept { iid; cmd; seq; deps } -> on_pre_accept t ~src ~iid ~cmd ~seq ~deps
  | PreAcceptOk { iid; seq; deps } -> on_pre_accept_ok t ~src ~iid ~seq ~deps
  | Accept { iid; cmd; seq; deps } -> on_accept t ~src ~iid ~cmd ~seq ~deps
  | AcceptOk { iid } -> on_accept_ok t ~src ~iid
  | Commit { iid; cmd; seq; deps } -> on_commit t ~iid ~cmd ~seq ~deps

let on_start (_ : replica) = ()

(* In-memory protocol: a crash-recovery edge reboots it from scratch
   (no durable state to reload) — the cluster engine only pairs
   [Config.storage] with protocols that persist, so this is a
   rejoin-from-zero fallback. *)
let on_recover = on_start
