(** Multi-decree Paxos (multi-Paxos, §2) with the optimizations the
    paper assumes: a stable leader that skips phase-1 for subsequent
    commands, and the commit phase piggybacked on the next phase-2
    broadcast.

    The same implementation provides Flexible Paxos: when
    [config.q2_size] is set, phase-2 uses quorums of that size and
    phase-1 uses quorums of [N - q2 + 1], preserving the FPaxos
    intersection requirement. Followers forward client requests to the
    leader; on leader silence a follower starts its own phase-1 after
    a timeout staggered by replica id, recovering any uncommitted
    entries reported by its phase-1 quorum. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float

val is_leader : replica -> bool
val current_ballot : replica -> Ballot.t
val commit_frontier : replica -> int
val executor : replica -> Executor.t
val log_entry : replica -> int -> (Ballot.t * Command.t * bool) option
(** [(ballot, command, committed)] for a slot, for tests. *)

(** {2 Read path} (PR 7) — all inert unless [config.read_path] is set. *)

val lease_valid : replica -> bool
(** The leader may serve a read locally right now: it is active, has
    executed past its leadership barrier, and holds an unexpired lease
    with the safety margin subtracted. Always [false] off-leader and
    outside [Lease] mode. *)

val local_reads_served : replica -> int
(** Reads answered from the leader's local store under a lease. *)

val quorum_reads_served : replica -> int
(** Reads answered via an ABD round over the shadow registers. *)
