type message =
  | G of Group.message
  | WkRequest of {
      key : Command.key;
      zone : int;
      client : Address.t;
      request : Proto.request;
    }
  | TokenGrant of {
      key : Command.key;
      gen : int;  (** token generation: serializes grant/retract pairs *)
      value : Command.value option;
      pending : (Address.t * Proto.request) list;
    }
  | TokenRetract of { key : Command.key; gen : int }
  | RetractAck of { key : Command.key; gen : int; value : Command.value option }

let name = "wankeeper"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | G g -> Group.message_label g
  | WkRequest _ -> "WkRequest"
  | TokenGrant _ -> "TokenGrant"
  | TokenRetract _ -> "TokenRetract"
  | RetractAck _ -> "RetractAck"

(* Master-side per-key token bookkeeping. *)
type token = {
  mutable holder : int option; (* zone currently holding the token *)
  mutable gen : int; (* bumped on every grant *)
  mutable streak_zone : int;
  mutable streak : int;
  mutable retracting : bool;
  mutable queued : (Address.t * Proto.request) list; (* newest first *)
}

type replica = {
  env : message Proto.env;
  zones : int list array;
  my_zone : int;
  master_zone : int;
  mutable group : Group.t option;
  exec : Executor.t;
  have_token : (Command.key, int) Hashtbl.t; (* key -> grant generation *)
  tokens : (Command.key, token) Hashtbl.t; (* at the master *)
  (* zone leader: retract acks deferred until in-flight group
     proposals drain, so the shipped value reflects every command the
     zone committed while it held the token *)
  pending_retracts : (Command.key, int * int) Hashtbl.t; (* gen, slot bound *)
  (* zone leader: retractions that overtook their own grant in flight *)
  early_retracts : (Command.key, int) Hashtbl.t; (* gen *)
  (* master: grants deferred the same way *)
  pending_grants : (Command.key, int * int * int * (Address.t * Proto.request) list) Hashtbl.t;
      (* dest zone, gen, slot bound, requests to hand over *)
  mutable sync_counter : int;
  mutable grants : int;
  mutable retractions : int;
}

let zone_layout (env : _ Proto.env) =
  Topology.regions env.Proto.topology
  |> List.map (fun r -> Topology.replicas_in env.Proto.topology r)
  |> Array.of_list

let find_zone zones id =
  let z = ref 0 in
  Array.iteri (fun i members -> if List.mem id members then z := i) zones;
  !z

let zone_leader (t : replica) zone =
  match t.zones.(zone) with l :: _ -> l | [] -> invalid_arg "empty zone"

let create env =
  let zones = zone_layout env in
  let master_zone =
    Stdlib.min env.Proto.config.Config.master_region_index (Array.length zones - 1)
  in
  let t =
    {
      env;
      zones;
      my_zone = find_zone zones env.Proto.id;
      master_zone;
      group = None;
      exec = Executor.create ();
      have_token = Hashtbl.create 256;
      tokens = Hashtbl.create 256;
      pending_retracts = Hashtbl.create 16;
      early_retracts = Hashtbl.create 16;
      pending_grants = Hashtbl.create 16;
      sync_counter = 0;
      grants = 0;
      retractions = 0;
    }
  in
  let on_executed cmd client read =
    match client with
    | Some c ->
        env.Proto.reply c
          { Proto.command = cmd; read; replier = env.Proto.id; leader_hint = None }
    | None -> ()
  in
  t.group <-
    Some
      (Group.create ~env
         ~wrap:(fun m -> G m)
         ~members:t.zones.(t.my_zone) ~leader:(zone_leader t t.my_zone)
         ~exec:t.exec ~on_executed);
  t

let group t = Option.get t.group
let executor t = t.exec
let is_zone_leader t = Group.is_leader (group t)
let is_master t = t.my_zone = t.master_zone && is_zone_leader t
let tokens_held t = Hashtbl.length t.have_token
let grants t = t.grants
let retractions t = t.retractions

let leader_of_key t key =
  if Hashtbl.mem t.have_token key then Some t.env.id
  else if is_master t then
    match Hashtbl.find_opt t.tokens key with
    | Some { holder = Some z; _ } -> Some (zone_leader t z)
    | _ -> Some t.env.id
  else None

let master_replica t = zone_leader t t.master_zone

let local_value t key =
  Kv.get (State_machine.store (Executor.state_machine t.exec)) key

(* Re-commit a moved object's latest value in the local group so
   member state machines observe it before subsequent commands. The
   writer id is unique per (replica, counter) to survive exactly-once
   dedup. *)
let sync_value t key = function
  | Some v ->
      let id = t.sync_counter in
      t.sync_counter <- t.sync_counter + 1;
      let cmd =
        Command.make ~id ~client:(-2 - t.env.id) (Command.Put (key, v))
      in
      Group.propose (group t) ~client:None cmd
  | None -> ()

let propose_request t ~client (request : Proto.request) =
  Group.propose (group t) ~client:(Some client) request.Proto.command

(* Send deferred retract-acks/grants whose in-flight proposals have
   executed locally, so the value they carry is complete. *)
let flush_token_moves t =
  let g = group t in
  let ready_retracts =
    Hashtbl.fold
      (fun key (gen, bound) acc ->
        if Group.frontier g > bound then (key, gen) :: acc else acc)
      t.pending_retracts []
  in
  List.iter
    (fun (key, gen) ->
      Hashtbl.remove t.pending_retracts key;
      (* token moves are one-shot state transfers with no natural
         retry: post them explicitly-acked so a lost hop cannot strand
         the token (dedup suppresses the duplicate deliveries) *)
      ignore
        (t.env.rel.post ~ack:Reliable.Explicit (master_replica t)
           (RetractAck { key; gen; value = local_value t key })))
    ready_retracts;
  let ready_grants =
    Hashtbl.fold
      (fun key (zone, gen, bound, pending) acc ->
        if Group.frontier g > bound then (key, zone, gen, pending) :: acc else acc)
      t.pending_grants []
  in
  List.iter
    (fun (key, zone, gen, pending) ->
      Hashtbl.remove t.pending_grants key;
      ignore
        (t.env.rel.post ~ack:Reliable.Explicit (zone_leader t zone)
           (TokenGrant { key; gen; value = local_value t key; pending })))
    ready_grants

let schedule_flush t =
  ignore (t.env.schedule 0.5 (fun () -> flush_token_moves t))

(* ---- master logic ------------------------------------------------ *)

let token t key =
  match Hashtbl.find_opt t.tokens key with
  | Some tok -> tok
  | None ->
      let tok =
        {
          holder = None;
          gen = 0;
          streak_zone = -1;
          streak = 0;
          retracting = false;
          queued = [];
        }
      in
      Hashtbl.add t.tokens key tok;
      tok

let master_execute t ~client request = propose_request t ~client request

let begin_retract t key tok =
  if not tok.retracting then begin
    tok.retracting <- true;
    t.retractions <- t.retractions + 1;
    match tok.holder with
    | Some z ->
        ignore
          (t.env.rel.post ~ack:Reliable.Explicit (zone_leader t z)
             (TokenRetract { key; gen = tok.gen }))
    | None -> tok.retracting <- false
  end

let master_on_request t key ~zone ~client (request : Proto.request) =
  let tok = token t key in
  if tok.streak_zone = zone then tok.streak <- tok.streak + 1
  else begin
    tok.streak_zone <- zone;
    tok.streak <- 1
  end;
  match tok.holder with
  | Some z when z = zone -> (
      (* requester's zone holds (or is about to receive) the token *)
      match Hashtbl.find_opt t.pending_grants key with
      | Some (dest, gen, bound, pending) when dest = zone ->
          Hashtbl.replace t.pending_grants key
            (dest, gen, bound, pending @ [ (client, request) ])
      | _ -> t.env.forward (zone_leader t z) ~client request)
  | Some _ ->
      tok.queued <- (client, request) :: tok.queued;
      begin_retract t key tok
  | None ->
      if
        zone <> t.master_zone
        && tok.streak >= t.env.config.Config.migration_threshold
        && not (Hashtbl.mem t.pending_grants key)
      then begin
        tok.holder <- Some zone;
        tok.gen <- tok.gen + 1;
        t.grants <- t.grants + 1;
        Hashtbl.replace t.pending_grants key
          (zone, tok.gen, Group.last_proposed_slot (group t), [ (client, request) ]);
        flush_token_moves t;
        if Hashtbl.mem t.pending_grants key then schedule_flush t
      end
      else master_execute t ~client request

let master_on_retract_ack t key ~gen ~value =
  let tok = token t key in
  if not (tok.retracting && gen = tok.gen) then ()
  else begin
  tok.retracting <- false;
  tok.holder <- None;
  sync_value t key value;
  let queued = List.rev tok.queued in
  tok.queued <- [];
  List.iter
    (fun (client, request) ->
      master_on_request t key ~zone:t.master_zone ~client request)
    queued
  end

(* ---- zone-leader logic ------------------------------------------- *)

let leader_on_request t key ~client (request : Proto.request) =
  if is_master t then master_on_request t key ~zone:t.my_zone ~client request
  else if Hashtbl.mem t.have_token key then propose_request t ~client request
  else
    t.env.send (master_replica t)
      (WkRequest { key; zone = t.my_zone; client; request })

let on_token_grant t key ~gen ~value ~pending =
  sync_value t key value;
  List.iter (fun (client, request) -> propose_request t ~client request) pending;
  match Hashtbl.find_opt t.early_retracts key with
  | Some gen' when gen' = gen ->
      (* the retraction overtook this grant: serve the handed-over
         requests, then immediately give the token back *)
      Hashtbl.remove t.early_retracts key;
      Hashtbl.replace t.pending_retracts key (gen, Group.last_proposed_slot (group t));
      flush_token_moves t;
      if Hashtbl.mem t.pending_retracts key then schedule_flush t
  | _ -> Hashtbl.replace t.have_token key gen

let on_token_retract t key ~gen =
  match Hashtbl.find_opt t.have_token key with
  | Some g when g = gen ->
      Hashtbl.remove t.have_token key;
      Hashtbl.replace t.pending_retracts key (gen, Group.last_proposed_slot (group t));
      flush_token_moves t;
      if Hashtbl.mem t.pending_retracts key then schedule_flush t
  | Some _ -> () (* stale retraction for a generation we no longer hold *)
  | None ->
      (* the matching grant has not arrived yet; remember the
         retraction and bounce the token on arrival *)
      Hashtbl.replace t.early_retracts key gen

(* ---- dispatch ----------------------------------------------------- *)

let on_request t ~client (request : Proto.request) =
  let key = Command.key request.Proto.command in
  if is_zone_leader t then leader_on_request t key ~client request
  else t.env.forward (zone_leader t t.my_zone) ~client request

let on_message t ~src = function
  | G m ->
      Group.on_message (group t) ~src m;
      flush_token_moves t
  | WkRequest { key; zone; client; request } ->
      if is_master t then master_on_request t key ~zone ~client request
      else if is_zone_leader t && Hashtbl.mem t.have_token key then
        (* token raced ahead of the request; commit locally *)
        propose_request t ~client request
      else t.env.forward (zone_leader t t.my_zone) ~client request
  | TokenGrant { key; gen; value; pending } ->
      on_token_grant t key ~gen ~value ~pending
  | TokenRetract { key; gen } -> on_token_retract t key ~gen
  | RetractAck { key; gen; value } ->
      if is_master t then master_on_retract_ack t key ~gen ~value

let on_start (_ : replica) = ()

(* In-memory protocol: a crash-recovery edge reboots it from scratch
   (no durable state to reload) — the cluster engine only pairs
   [Config.storage] with protocols that persist, so this is a
   rejoin-from-zero fallback. *)
let on_recover = on_start
