type message =
  | G of Group.message
  | VLookup of {
      key : Command.key;
      zone : int;
      client : Address.t;
      request : Proto.request;
    }
  | VAssign of { key : Command.key; zone : int }
  | VMigrateReq of { key : Command.key; to_zone : int }
  | VState of { key : Command.key; value : Command.value option }

let name = "vpaxos"
let cpu_factor (_ : Config.t) = 1.0

let message_label = function
  | G g -> Group.message_label g
  | VLookup _ -> "VLookup"
  | VAssign _ -> "VAssign"
  | VMigrateReq _ -> "VMigrateReq"
  | VState _ -> "VState"

type replica = {
  env : message Proto.env;
  zones : int list array;
  my_zone : int;
  master_zone : int;
  mutable group : Group.t option;
  exec : Executor.t;
  (* every leader's view of the assignment; authoritative at master *)
  assign : (Command.key, int) Hashtbl.t;
  (* master: keys with a reassignment currently in flight *)
  reassigning : (Command.key, unit) Hashtbl.t;
  (* master: side effects to run when a config command executes *)
  config_effects : (int, unit -> unit) Hashtbl.t;
  (* owner: consecutive remote accesses per key: (origin zone, count) *)
  streaks : (Command.key, int * int) Hashtbl.t;
  (* new owner: requests queued until the object's state arrives *)
  awaiting_state : (Command.key, (Address.t * Proto.request) list) Hashtbl.t;
  (* old owner: handoffs deferred until in-flight proposals drain *)
  handoff : (Command.key, int * int) Hashtbl.t; (* dest zone, slot bound *)
  (* new owner: state that arrived before its VAssign announcement *)
  got_state : (Command.key, unit) Hashtbl.t;
  mutable config_counter : int;
  mutable sync_counter : int;
  mutable migrations : int;
}

let zone_layout (env : _ Proto.env) =
  Topology.regions env.Proto.topology
  |> List.map (fun r -> Topology.replicas_in env.Proto.topology r)
  |> Array.of_list

let find_zone zones id =
  let z = ref 0 in
  Array.iteri (fun i members -> if List.mem id members then z := i) zones;
  !z

let zone_leader (t : replica) zone =
  match t.zones.(zone) with l :: _ -> l | [] -> invalid_arg "empty zone"

let zone_of_address t addr =
  let region = Topology.region_of t.env.topology addr in
  let z = ref t.master_zone in
  Array.iteri
    (fun i members ->
      match members with
      | m :: _ ->
          if Region.equal (Topology.region_of_replica t.env.topology m) region
          then z := i
      | [] -> ())
    t.zones;
  !z

(* Config commands live on negative keys so they never collide with
   client data. *)
let config_key key = -key - 1
let config_client = -1000

let group t = Option.get t.group
let executor t = t.exec
let is_zone_leader t = Group.is_leader (group t)
let is_master t = t.my_zone = t.master_zone && is_zone_leader t

let assigned_zone t key =
  match Hashtbl.find_opt t.assign key with
  | Some z -> Some z
  | None -> (
      match t.env.config.Config.initial_object_owner with
      | Some owner -> Some (find_zone t.zones owner)
      | None -> None)

let leader_of_key t key =
  Option.map (fun z -> zone_leader t z) (assigned_zone t key)

let migrations t = t.migrations

let local_value t key =
  Kv.get (State_machine.store (Executor.state_machine t.exec)) key

let sync_value t key = function
  | Some v ->
      let id = t.sync_counter in
      t.sync_counter <- t.sync_counter + 1;
      let cmd = Command.make ~id ~client:(-2 - t.env.id) (Command.Put (key, v)) in
      Group.propose (group t) ~client:None cmd
  | None -> ()

let propose_request t ~client (request : Proto.request) =
  Group.propose (group t) ~client:(Some client) request.Proto.command

(* Ship the object's state once every slot proposed before the
   handoff has executed locally. *)
let flush_handoffs t =
  let ready =
    Hashtbl.fold
      (fun key (dest, bound) acc ->
        if Group.frontier (group t) > bound then (key, dest) :: acc else acc)
      t.handoff []
  in
  List.iter
    (fun (key, dest) ->
      Hashtbl.remove t.handoff key;
      (* one-shot state transfer: a lost VState would leave the new
         owner queueing requests forever, so post it explicitly-acked
         (the substrate dedups the duplicate deliveries) *)
      ignore
        (t.env.rel.post ~ack:Reliable.Explicit (zone_leader t dest)
           (VState { key; value = local_value t key })))
    ready

(* Apply an assignment decision locally: the new owner waits for the
   object's state (when someone held it before), the old owner hands
   its state off once in-flight proposals drain. Runs at every zone
   leader on VAssign, and at the master itself when the config command
   commits. *)
let on_assign t key zone =
  let previous = Hashtbl.find_opt t.assign key in
  let initial_mine, had_owner =
    match t.env.config.Config.initial_object_owner with
    | Some owner -> (find_zone t.zones owner = t.my_zone, true)
    | None -> (false, false)
  in
  let was_mine =
    match previous with Some z -> z = t.my_zone | None -> initial_mine
  in
  let had_owner = previous <> None || had_owner in
  Hashtbl.replace t.assign key zone;
  if zone = t.my_zone && not was_mine then begin
    (* new owner: wait for state before serving, unless the key never
       had an owner or its state already raced ahead *)
    if Hashtbl.mem t.got_state key then Hashtbl.remove t.got_state key
    else if had_owner && not (Hashtbl.mem t.awaiting_state key) then
      Hashtbl.replace t.awaiting_state key []
  end
  else if zone <> t.my_zone && was_mine && is_zone_leader t then begin
    Hashtbl.replace t.handoff key (zone, Group.last_proposed_slot (group t));
    flush_handoffs t;
    if Hashtbl.mem t.handoff key then
      (* in-flight proposals still draining; check again shortly
         after they execute *)
      ignore @@ t.env.schedule 0.5 (fun () -> flush_handoffs t)
  end

(* ---- master config plane ------------------------------------------ *)

let master_commit_assignment t key zone ~on_committed =
  let id = t.config_counter in
  t.config_counter <- t.config_counter + 1;
  Hashtbl.replace t.config_effects id (fun () ->
      on_assign t key zone;
      Hashtbl.remove t.reassigning key;
      on_committed ());
  let cmd = Command.make ~id ~client:config_client (Command.Put (config_key key, zone)) in
  Group.propose (group t) ~client:None cmd

let notify_leaders t key zone =
  let leaders =
    Array.to_list t.zones
    |> List.filter_map (function l :: _ -> Some l | [] -> None)
    |> List.filter (fun l -> l <> t.env.id)
  in
  ignore (t.env.rel.post_multi ~ack:Reliable.Explicit leaders (VAssign { key; zone }))

let master_on_lookup t key ~zone ~client (request : Proto.request) =
  match assigned_zone t key with
  | Some z ->
      ignore
        (t.env.rel.post ~ack:Reliable.Explicit (zone_leader t zone)
           (VAssign { key; zone = z }));
      t.env.forward (zone_leader t z) ~client request
  | None ->
      if Hashtbl.mem t.reassigning key then
        (* assignment decision in flight; retry via the forward path
           once it commits *)
        let _ = Hashtbl.replace t.reassigning key () in
        ignore
        @@ t.env.schedule 1.0 (fun () ->
               t.env.forward t.env.id ~client request)
      else begin
        Hashtbl.replace t.reassigning key ();
        master_commit_assignment t key zone ~on_committed:(fun () ->
            notify_leaders t key zone;
            t.env.forward (zone_leader t zone) ~client request)
      end

let master_on_migrate t key ~to_zone =
  match assigned_zone t key with
  | Some z when z <> to_zone && not (Hashtbl.mem t.reassigning key) ->
      Hashtbl.replace t.reassigning key ();
      t.migrations <- t.migrations + 1;
      master_commit_assignment t key to_zone ~on_committed:(fun () ->
          notify_leaders t key to_zone)
  | _ -> ()

(* ---- data plane ---------------------------------------------------- *)

let note_access t key ~origin ~client (request : Proto.request) =
  if origin = t.my_zone then begin
    Hashtbl.remove t.streaks key;
    propose_request t ~client request
  end
  else begin
    let zone, count =
      match Hashtbl.find_opt t.streaks key with
      | Some (z, c) when z = origin -> (z, c + 1)
      | _ -> (origin, 1)
    in
    Hashtbl.replace t.streaks key (zone, count);
    propose_request t ~client request;
    if count >= t.env.config.Config.migration_threshold then begin
      Hashtbl.remove t.streaks key;
      if is_master t then master_on_migrate t key ~to_zone:zone
      else
        ignore
          (t.env.rel.post ~ack:Reliable.Explicit (zone_leader t t.master_zone)
             (VMigrateReq { key; to_zone = zone }))
    end
  end

let on_request t ~client (request : Proto.request) =
  let key = Command.key request.Proto.command in
  if not (is_zone_leader t) then
    t.env.forward (zone_leader t t.my_zone) ~client request
  else if Hashtbl.mem t.awaiting_state key then
    Hashtbl.replace t.awaiting_state key
      ((client, request)
      :: Option.value (Hashtbl.find_opt t.awaiting_state key) ~default:[])
  else
    match assigned_zone t key with
    | Some z when z = t.my_zone -> (
        match Hashtbl.find_opt t.handoff key with
        | Some (dest, _) ->
            (* we just gave the key away; route to its new owner *)
            t.env.forward (zone_leader t dest) ~client request
        | None ->
            note_access t key ~origin:(zone_of_address t client) ~client request)
    | Some z -> t.env.forward (zone_leader t z) ~client request
    | None ->
        if is_master t then
          master_on_lookup t key ~zone:t.my_zone ~client request
        else
          ignore
            (t.env.rel.post ~ack:Reliable.Explicit (zone_leader t t.master_zone)
               (VLookup { key; zone = t.my_zone; client; request }))

let on_state t key ~value =
  sync_value t key value;
  if not (Hashtbl.mem t.awaiting_state key) then
    (* state beat the VAssign announcement; remember it *)
    Hashtbl.replace t.got_state key ();
  let queued =
    Option.value (Hashtbl.find_opt t.awaiting_state key) ~default:[]
    |> List.rev
  in
  Hashtbl.remove t.awaiting_state key;
  List.iter
    (fun (client, request) ->
      note_access t key ~origin:(zone_of_address t client) ~client request)
    queued

let on_message t ~src = function
  | G m ->
      Group.on_message (group t) ~src m;
      if is_zone_leader t then flush_handoffs t
  | VLookup { key; zone; client; request } ->
      if is_master t then master_on_lookup t key ~zone ~client request
  | VAssign { key; zone } -> on_assign t key zone
  | VMigrateReq { key; to_zone } ->
      if is_master t then master_on_migrate t key ~to_zone
  | VState { key; value } -> on_state t key ~value

let create env =
  let zones = zone_layout env in
  let master_zone =
    Stdlib.min env.Proto.config.Config.master_region_index (Array.length zones - 1)
  in
  let t =
    {
      env;
      zones;
      my_zone = find_zone zones env.Proto.id;
      master_zone;
      group = None;
      exec = Executor.create ();
      assign = Hashtbl.create 256;
      reassigning = Hashtbl.create 16;
      config_effects = Hashtbl.create 16;
      streaks = Hashtbl.create 64;
      awaiting_state = Hashtbl.create 16;
      handoff = Hashtbl.create 16;
      got_state = Hashtbl.create 16;
      config_counter = 0;
      sync_counter = 0;
      migrations = 0;
    }
  in
  let on_executed (cmd : Command.t) client read =
    (* run master side effects for committed config commands *)
    if cmd.Command.client = config_client then begin
      match Hashtbl.find_opt t.config_effects cmd.Command.id with
      | Some effect ->
          Hashtbl.remove t.config_effects cmd.Command.id;
          effect ()
      | None -> ()
    end
    else
      match client with
      | Some c ->
          env.Proto.reply c
            { Proto.command = cmd; read; replier = env.Proto.id; leader_hint = None }
      | None -> ()
  in
  t.group <-
    Some
      (Group.create ~env
         ~wrap:(fun m -> G m)
         ~members:t.zones.(t.my_zone) ~leader:(zone_leader t t.my_zone)
         ~exec:t.exec ~on_executed);
  t

let on_start (_ : replica) = ()

(* In-memory protocol: a crash-recovery edge reboots it from scratch
   (no durable state to reload) — the cluster engine only pairs
   [Config.storage] with protocols that persist, so this is a
   rejoin-from-zero fallback. *)
let on_recover = on_start
