(** PigPaxos-style relay/aggregation trees (DESIGN.md §12).

    A leader running with [Config.relay_groups = r > 0] partitions its
    [n-1] followers into [r] groups and sends each phase-2 round to one
    {e relay} per group instead of to every follower. The relay applies
    the round locally, fans it out to its group members, aggregates
    their acks into a positional bitmap over the group, and returns one
    combined reply — the leader touches [2r] messages per slot instead
    of [2(n-1)] while quorum accounting stays exact (every bit maps
    back to a concrete replica id through the shared plan).

    This module holds the protocol-agnostic machinery both Paxos and
    Raft build on: the deterministic rotation {e plan} (pure function
    of cluster size, leader and generation — every replica derives the
    identical partition with no extra coordination or RNG draws), a
    per-replica plan cache, bitmap helpers, and a pool of reusable
    aggregation records so a relay's ack wave allocates no
    per-follower cells (ROADMAP "last of the per-event allocation").

    Rotation policy: the follower list is rotated by [gen] before
    being cut into contiguous groups, so relay duty and group
    membership both shift as the generation advances. Generations
    advance on a fixed round cadence (see {!gen_of_seq}) and whenever
    the leader bypasses a silent relay, which re-partitions the slow
    or dead relay out of its post. *)

type plan = {
  groups : int array array;
      (** [groups.(g)] lists group [g]'s member ids; the relay is
          [groups.(g).(0)]. Group sizes differ by at most one. *)
  group_of : int array;
      (** [group_of.(id)] = index of the group containing replica
          [id], or [-1] for the leader (indexed [0 .. n-1]). *)
}

val compute : n:int -> leader:int -> r:int -> gen:int -> plan
(** The partition of [leader]'s [n-1] followers into [r] groups at
    generation [gen]. Deterministic; total in [1 <= r <= n-1]. *)

type plans
(** A per-replica memo of {!compute} keyed by (leader, gen): hot-path
    lookups (one per relay round) reuse the cached arrays. *)

val plans : unit -> plans

val find : plans -> n:int -> leader:int -> r:int -> gen:int -> plan

val gen_window : int
(** Rounds per rotation generation: [gen_of_seq] advances the plan
    every [gen_window] relay rounds, cheap enough to cache yet fast
    enough that no relay stays a hotspot. *)

val gen_of_seq : seq:int -> bump:int -> int
(** The generation for the [seq]-th relay round given [bump] extra
    forced rotations (one per relay fallback). *)

val full_mask : int -> int
(** [full_mask k] has the low [k] bits set — the "every group member
    acked" bitmap for a group of size [k]. Groups are capped well
    below word size by validation ([r >= 1] gives groups of at most
    [n-1] members; sweeps stop at n = 81). *)

(** {1 Pooled aggregation records}

    One [agg] tracks one in-flight round at a relay: which bits of the
    group have acked, plus two protocol-owned integer tags (Paxos
    stores the ballot round and slot count; Raft the term and expected
    match index) and a flush timer for partial acks. Records recycle
    on an intrusive free list; steady-state aggregation allocates
    nothing per follower or per round. *)

type agg = {
  mutable a_leader : int;
  mutable a_gen : int;
  mutable a_group : int array;  (** shared with the plan, never copied *)
  mutable a_mask : int;
  mutable a_bits : int;
  mutable a_tag : int;  (** protocol tag 1 (ballot round / term) *)
  mutable a_aux : int;  (** protocol tag 2 (batch count / match index) *)
  mutable a_batch : bool;
  mutable a_complete : bool;
  mutable a_t0 : float;  (** when the round reached the relay (obs) *)
  mutable a_flush : Paxi_sim.Sim.handle;
  mutable a_next : agg;  (** free-list link; physically [self] when live *)
}

type pool

val pool : unit -> pool

val alloc :
  pool -> leader:int -> gen:int -> group:int array -> tag:int -> aux:int ->
  batch:bool -> agg
(** A fresh or recycled record with [a_bits = 0], [a_mask] covering
    [group], no flush timer, [a_complete = false]. *)

val release : pool -> agg -> unit
(** Return a record to the free list. The caller must have cancelled
    its flush timer. *)

val set_bit : agg -> int -> unit
(** Record group position [i]'s ack (idempotent). *)

val complete : agg -> bool
(** Every group member has acked. *)

val position : agg -> int -> int
(** Index of replica [id] in [a_group], or [-1]. Linear in the group
    size (at most a few dozen members). *)
