type tag = int * int

let zero_tag = (0, -1)
let next_tag (ts, _) ~self = (ts + 1, self)

type 'v register = { mutable tag : tag; mutable value : 'v }

let fresh_register ~empty = { tag = zero_tag; value = empty }

let lookup table ~empty key =
  match Hashtbl.find_opt table key with
  | Some r -> r
  | None ->
      let r = fresh_register ~empty in
      Hashtbl.add table key r;
      r

let adopt r ~tag ~value =
  if tag > r.tag then begin
    r.tag <- tag;
    r.value <- value
  end

type phase = Query | Store

type 'v t = {
  spec : Quorum.spec;
  mutable phase : phase;
  mutable best_tag : tag;
  mutable best_value : 'v;
  mutable quorum : Quorum.t;
}

let create spec ~self ~local_tag ~local_value =
  let quorum = Quorum.create spec in
  Quorum.ack quorum self;
  { spec; phase = Query; best_tag = local_tag; best_value = local_value; quorum }

let phase t = t.phase
let best t = (t.best_tag, t.best_value)

let query_ack t ~src ~tag ~value =
  match t.phase with
  | Store -> false
  | Query ->
      if tag > t.best_tag then begin
        t.best_tag <- tag;
        t.best_value <- value
      end;
      Quorum.ack t.quorum src;
      Quorum.satisfied t.quorum

let begin_store t ~self ~tag ~value =
  t.phase <- Store;
  t.best_tag <- tag;
  t.best_value <- value;
  let quorum = Quorum.create t.spec in
  Quorum.ack quorum self;
  t.quorum <- quorum

let store_ack t ~src =
  match t.phase with
  | Query -> false
  | Store ->
      Quorum.ack t.quorum src;
      Quorum.satisfied t.quorum
