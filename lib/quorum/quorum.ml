type per_zone = Per_zone_majority | Per_zone_all

type spec =
  | Majority of int list
  | Count of { members : int list; threshold : int }
  | Fast of int list
  | Zones of { zones : int list list; need_zones : int; per_zone : per_zone }

let majority_threshold n = (n / 2) + 1
let fast_threshold n = (3 * n + 3) / 4

let dedup l = List.sort_uniq Int.compare l

let members = function
  | Majority ms | Fast ms -> dedup ms
  | Count { members; _ } -> dedup members
  | Zones { zones; _ } -> dedup (List.concat zones)

let zone_need per_zone zone =
  match per_zone with
  | Per_zone_majority -> majority_threshold (List.length zone)
  | Per_zone_all -> List.length zone

let min_size = function
  | Majority ms -> majority_threshold (List.length (dedup ms))
  | Fast ms -> fast_threshold (List.length (dedup ms))
  | Count { threshold; _ } -> threshold
  | Zones { zones; need_zones; per_zone } ->
      let needs =
        List.map (zone_need per_zone) zones |> List.sort Int.compare
      in
      let rec take k acc = function
        | _ when k = 0 -> acc
        | [] -> acc
        | x :: rest -> take (k - 1) (acc + x) rest
      in
      take need_zones 0 needs

(* Trackers sit on the per-ack hot path (one [ack] + [satisfied] per
   vote message), so everything derivable from the immutable [spec] is
   computed once at [create]: the deduped member list, the vote
   threshold for the flat specs, and a per-replica flag byte indexed
   by id (ids are small ints, see the mli) holding membership and
   acked/nacked bits. A vote is then one bounds check and one byte
   read/write — no list scan — which is what keeps [ack] O(1) at
   n = 81 where the old [List.mem] walks cost O(n) per vote. *)
type t = {
  spec : spec;
  memb : int list;  (** [members spec], deduped once at creation *)
  threshold : int;  (** acks needed among [memb]; unused for [Zones] *)
  flags : Bytes.t;  (** per-id bits: 1 = member, 2 = acked, 4 = nacked *)
  mutable acked : int list;
  mutable n_acked : int;
  mutable nacked : int list;
}

let flag_member = 1
let flag_acked = 2
let flag_nacked = 4

let create spec =
  let memb = members spec in
  let threshold =
    match spec with
    | Majority _ -> majority_threshold (List.length memb)
    | Fast _ -> fast_threshold (List.length memb)
    | Count { threshold; _ } -> threshold
    | Zones _ -> max_int (* zone counting, not a flat threshold *)
  in
  let top = List.fold_left (fun acc m -> if m > acc then m else acc) (-1) memb in
  let flags = Bytes.make (top + 1) '\000' in
  List.iter
    (fun m -> if m >= 0 then Bytes.unsafe_set flags m (Char.unsafe_chr flag_member))
    memb;
  { spec; memb; threshold; flags; acked = []; n_acked = 0; nacked = [] }

let ack t id =
  if id >= 0 && id < Bytes.length t.flags then begin
    let f = Char.code (Bytes.unsafe_get t.flags id) in
    if f land (flag_member lor flag_acked) = flag_member then begin
      Bytes.unsafe_set t.flags id (Char.unsafe_chr (f lor flag_acked));
      t.acked <- id :: t.acked;
      t.n_acked <- t.n_acked + 1
    end
  end

let nack t id =
  if id >= 0 && id < Bytes.length t.flags then begin
    let f = Char.code (Bytes.unsafe_get t.flags id) in
    if f land (flag_member lor flag_nacked) = flag_member then begin
      Bytes.unsafe_set t.flags id (Char.unsafe_chr (f lor flag_nacked));
      t.nacked <- id :: t.nacked
    end
  end

let count_in acked group =
  List.fold_left (fun acc m -> if List.mem m acked then acc + 1 else acc) 0 group

let satisfied_with spec acked =
  match spec with
  | Majority ms ->
      let ms = dedup ms in
      count_in acked ms >= majority_threshold (List.length ms)
  | Fast ms ->
      let ms = dedup ms in
      count_in acked ms >= fast_threshold (List.length ms)
  | Count { members; threshold } -> count_in acked (dedup members) >= threshold
  | Zones { zones; need_zones; per_zone } ->
      let ok_zones =
        List.filter
          (fun z -> count_in acked z >= zone_need per_zone z)
          zones
      in
      List.length ok_zones >= need_zones

let satisfied t =
  match t.spec with
  | Majority _ | Fast _ | Count _ ->
      (* [ack] admits each member at most once, so [n_acked] is exactly
         [count_in t.acked memb] without walking either list. *)
      t.n_acked >= t.threshold
  | Zones { zones; need_zones; per_zone } ->
      let ok =
        List.fold_left
          (fun acc z ->
            if count_in t.acked z >= zone_need per_zone z then acc + 1 else acc)
          0 zones
      in
      ok >= need_zones

let rejected t =
  (* Satisfaction impossible even if every silent member eventually
     acks: treat all non-nacked members as acked and re-check. *)
  let optimistic =
    List.filter (fun m -> not (List.mem m t.nacked)) t.memb
  in
  not (satisfied_with t.spec optimistic)

let acks t = List.rev t.acked
let nacks t = List.rev t.nacked

let clear_flag t flag id =
  let f = Char.code (Bytes.unsafe_get t.flags id) in
  Bytes.unsafe_set t.flags id (Char.unsafe_chr (f land lnot flag))

let reset t =
  List.iter (clear_flag t flag_acked) t.acked;
  List.iter (clear_flag t flag_nacked) t.nacked;
  t.acked <- [];
  t.n_acked <- 0;
  t.nacked <- []

let spec t = t.spec
let is_quorum spec acked = satisfied_with spec (dedup acked)

(* Enumerate subsets of [l] of size [k]. *)
let rec choose k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (choose (k - 1) rest) @ choose k rest

let minimal_quorums spec =
  match spec with
  | Majority ms ->
      let ms = dedup ms in
      choose (majority_threshold (List.length ms)) ms
  | Fast ms ->
      let ms = dedup ms in
      choose (fast_threshold (List.length ms)) ms
  | Count { members; threshold } -> choose threshold (dedup members)
  | Zones { zones; need_zones; per_zone } ->
      let zone_minimals =
        List.map (fun z -> choose (zone_need per_zone z) z) zones
      in
      (* pick need_zones zones, then one minimal per chosen zone *)
      let rec zone_choices k zs =
        if k = 0 then [ [] ]
        else
          match zs with
          | [] -> []
          | z :: rest ->
              let with_z =
                List.concat_map
                  (fun minimal ->
                    List.map (fun s -> minimal @ s) (zone_choices (k - 1) rest))
                  z
              in
              with_z @ zone_choices k rest
      in
      List.map dedup (zone_choices need_zones zone_minimals)

let intersects a b =
  let qa = minimal_quorums a and qb = minimal_quorums b in
  qa <> [] && qb <> []
  && List.for_all
       (fun sa ->
         List.for_all (fun sb -> List.exists (fun x -> List.mem x sb) sa) qb)
       qa
