(** The ABD read/write round engine (Attiya–Bar-Noy–Dolev), factored
    out of the ABD protocol so any majority protocol can run
    linearizable quorum reads over per-key registers.

    A register holds a [(timestamp, writer)] tag ordered
    lexicographically; stores are monotone ({!adopt}). A round is the
    two-phase coordinator state: {e query} a quorum for its registers,
    track the freshest tag seen, then {e store} (write back) the
    winning value to a quorum — the write-back is what makes a read
    linearizable. The engine is polymorphic in the register value so
    it does not depend on the store layer: ABD instantiates ['v] with
    [Command.value option], Paxos's quorum-read mode with the shadow
    value of an applied slot.

    The engine only tracks votes and the running maximum; messaging
    and register tables stay with the caller. No randomness, no
    timers. *)

type tag = int * int
(** [(timestamp, writer id)], ordered lexicographically. *)

val zero_tag : tag
(** [(0, -1)] — the tag of a never-written register; smaller than any
    tag a writer can produce. *)

val next_tag : tag -> self:int -> tag
(** [(ts + 1, self)]: a tag strictly larger than any tag with
    timestamp [ts], owned by this coordinator. *)

type 'v register = { mutable tag : tag; mutable value : 'v }

val fresh_register : empty:'v -> 'v register

val lookup : ('k, 'v register) Hashtbl.t -> empty:'v -> 'k -> 'v register
(** Find or create the register for a key. *)

val adopt : 'v register -> tag:tag -> value:'v -> unit
(** Install [(tag, value)] iff [tag] is strictly newer — the monotone
    ABD store rule; stale and duplicate stores are no-ops. *)

(** {1 Rounds} *)

type phase = Query | Store

type 'v t

val create : Quorum.spec -> self:int -> local_tag:tag -> local_value:'v -> 'v t
(** Open a round in the [Query] phase. The coordinator is a quorum
    member: its own register state seeds the running maximum and its
    vote is pre-acked. *)

val phase : _ t -> phase

val best : 'v t -> tag * 'v
(** The freshest (tag, value) observed so far in the current phase. *)

val query_ack : 'v t -> src:int -> tag:tag -> value:'v -> bool
(** A query reply: fold the remote register into the running maximum
    and record the vote. Returns [true] once the query quorum is
    satisfied — the caller should then pick the winner via {!best} and
    {!begin_store} the write-back. Ignored (returns [false]) after the
    round has moved to [Store]. *)

val begin_store : 'v t -> self:int -> tag:tag -> value:'v -> unit
(** Move to the write-back phase with a fresh vote tracker (the
    coordinator pre-acked again); [tag]/[value] is what is being
    stored — the query winner for a read, a {!next_tag}-stamped new
    value for a write. *)

val store_ack : 'v t -> src:int -> bool
(** A store ack; [true] once the store quorum is satisfied and the
    round is complete. Ignored while still in [Query]. *)
