(* Read-path subsystem: leader leases serve linearizable local reads
   without consuming slot-log space, deposed leaders are blocked by
   lease expiry, quorum reads and chain tail reads answer correctly,
   and the read-ratio knob is byte-identity-safe (r=0 equals a
   write-only run; pooled sweeps match sequential ones). *)

open Paxi_benchmark
module Paxos = Paxi_protocols.Paxos
module Raft = Paxi_protocols.Raft
module Chain = Paxi_protocols.Chain
module HP = Proto_harness.Make (Paxi_protocols.Paxos)
module HR = Proto_harness.Make (Paxi_protocols.Raft)
module HC = Proto_harness.Make (Paxi_protocols.Chain)

let lease = Config.Lease { margin_ms = 300.0 }

let lease_config ?(read_path = lease) n =
  { (Config.default ~n_replicas:n) with Config.read_path = Some read_path }

let put k v = Command.Put (k, v)
let get k = Command.Get k

let reads_of replies =
  List.filter_map (fun (r : Proto.reply) -> r.Proto.read) replies

(* ------------------------------------------------------------------ *)
(* Leases: local serving, slot-log hygiene, safety under deposition    *)
(* ------------------------------------------------------------------ *)

let test_paxos_lease_serves_locally () =
  let h = HP.lan ~config:(lease_config 5) ~n:5 () in
  HP.run_for h 1_000.0;
  Alcotest.(check bool) "lease valid after heartbeats" true
    (Paxos.lease_valid (HP.replica h 0));
  let writes = List.init 10 (fun i -> put i (100 + i)) in
  let rds = List.init 40 (fun i -> get (i mod 10)) in
  let replies = HP.submit_seq h (writes @ rds) in
  Alcotest.(check int) "all replied" 50 (List.length replies);
  List.iteri
    (fun i v ->
      Alcotest.(check int)
        (Printf.sprintf "read %d fresh" i)
        (100 + (i mod 10))
        v)
    (reads_of replies);
  Alcotest.(check bool)
    (Printf.sprintf "reads served off the lease (%d)"
       (Paxos.local_reads_served (HP.replica h 0)))
    true
    (Paxos.local_reads_served (HP.replica h 0) >= 35);
  (* reads consumed no slot-log space: only the 10 writes committed *)
  Alcotest.(check int) "slot log holds writes only" 10
    (Paxos.commit_frontier (HP.replica h 0));
  HP.assert_consistent h

let test_raft_lease_serves_locally () =
  let h = HR.lan ~config:(lease_config 5) ~n:5 () in
  HR.run_for h 1_500.0;
  Alcotest.(check bool) "lease valid after appends" true
    (Raft.lease_valid (HR.replica h 0));
  let replies = HR.submit_seq h [ put 1 10; get 1; put 1 11; get 1; get 1 ] in
  Alcotest.(check (list int)) "reads fresh" [ 10; 11; 11 ] (reads_of replies);
  Alcotest.(check bool) "served off the lease" true
    (Raft.local_reads_served (HR.replica h 0) >= 3);
  HR.assert_consistent h

let test_fpaxos_lease_serves_locally () =
  (* fpaxos shares the paxos replica: the lease must renew through its
     smaller phase-2 quorum too *)
  let module HF = Proto_harness.Make (Paxi_protocols.Fpaxos) in
  let h = HF.lan ~config:(lease_config 5) ~n:5 () in
  HF.run_for h 1_000.0;
  Alcotest.(check bool) "lease valid" true
    (Paxi_protocols.Fpaxos.lease_valid (HF.replica h 0));
  let replies = HF.submit_seq h [ put 3 30; get 3; get 3 ] in
  Alcotest.(check (list int)) "reads fresh" [ 30; 30 ] (reads_of replies);
  Alcotest.(check bool) "served off the lease" true
    (Paxi_protocols.Fpaxos.local_reads_served (HF.replica h 0) >= 2)

(* The lease-safety scenario the whole design hangs on: isolate the
   leader, let every follower grant expire, elect a new leader, commit
   a write — the deposed leader must NOT answer reads anymore (its
   lease lapsed), and once healed the read drains to the new leader
   and returns the fresh value. *)
let test_deposed_leader_read_blocked () =
  let h = HP.lan ~config:(lease_config 5) ~n:5 () in
  HP.run_for h 500.0;
  let replies = HP.submit_seq h [ put 1 10; get 1 ] in
  Alcotest.(check (list int)) "pre-partition read" [ 10 ] (reads_of replies);
  (* cut the old leader off from every peer (clients still reach it) *)
  let now = Sim.now (HP.sim h) in
  let horizon = 60_000.0 in
  for i = 1 to 4 do
    Faults.drop (HP.faults h) ~src:(Address.replica 0)
      ~dst:(Address.replica i) ~from_ms:now ~duration_ms:horizon;
    Faults.drop (HP.faults h) ~src:(Address.replica i)
      ~dst:(Address.replica 0) ~from_ms:now ~duration_ms:horizon
  done;
  (* grants outlast the partition start; only after they lapse can a
     new leader rise. 6s >> serve window (1.5 x failover = 1.5s). *)
  HP.run_for h 6_000.0;
  Alcotest.(check bool) "old leader's lease lapsed" false
    (Paxos.lease_valid (HP.replica h 0));
  let replies = HP.submit_seq h ~target:1 [ put 1 99 ] in
  Alcotest.(check int) "new leader commits" 1 (List.length replies);
  (* a read at the deposed leader must hang, not serve stale state *)
  let client = HP.new_client h in
  let command = Command.make ~id:0 ~client (get 1) in
  let module C = HP.C in
  let answer = ref None in
  C.submit h.HP.cluster ~client ~target:0 ~command
    ~on_reply:(fun r -> answer := Some r);
  HP.run_for h 2_000.0;
  Alcotest.(check bool) "blocked while deposed" true (!answer = None);
  (* heal: the pending read drains to the new leader and sees 99 *)
  Faults.clear (HP.faults h);
  HP.run_for h 10_000.0;
  (match !answer with
  | None -> Alcotest.fail "read never served after heal"
  | Some r ->
      Alcotest.(check (option int)) "fresh value after heal" (Some 99)
        r.Proto.read);
  HP.assert_consistent h

(* Clock skew within the margin must not let a deposed leader serve:
   slow the old leader's clock (the dangerous direction — it
   overestimates its remaining lease) by less than the 300ms margin
   and replay the deposition. *)
let test_deposed_leader_blocked_under_skew () =
  let h = HP.lan ~config:(lease_config 5) ~n:5 () in
  HP.run_for h 500.0;
  ignore (HP.submit_seq h [ put 1 10; get 1 ]);
  let now = Sim.now (HP.sim h) in
  let horizon = 60_000.0 in
  Faults.skew (HP.faults h) ~node:(Address.replica 0) ~from_ms:now
    ~duration_ms:horizon ~offset_ms:(-250.0);
  for i = 1 to 4 do
    Faults.drop (HP.faults h) ~src:(Address.replica 0)
      ~dst:(Address.replica i) ~from_ms:now ~duration_ms:horizon;
    Faults.drop (HP.faults h) ~src:(Address.replica i)
      ~dst:(Address.replica 0) ~from_ms:now ~duration_ms:horizon
  done;
  HP.run_for h 6_000.0;
  Alcotest.(check bool) "lease lapsed despite slow clock" false
    (Paxos.lease_valid (HP.replica h 0));
  ignore (HP.submit_seq h ~target:1 [ put 1 99 ]);
  let client = HP.new_client h in
  let command = Command.make ~id:0 ~client (get 1) in
  let module C = HP.C in
  let answer = ref None in
  C.submit h.HP.cluster ~client ~target:0 ~command
    ~on_reply:(fun r -> answer := Some r);
  HP.run_for h 2_000.0;
  Alcotest.(check bool) "no stale serve under skew" true (!answer = None)

(* ------------------------------------------------------------------ *)
(* Quorum reads and tail reads                                         *)
(* ------------------------------------------------------------------ *)

let test_paxos_quorum_reads () =
  let h =
    HP.lan ~config:(lease_config ~read_path:Config.Quorum 5) ~n:5 ()
  in
  HP.run_for h 500.0;
  let replies =
    HP.submit_seq h [ put 1 10; get 1; put 2 20; get 2; put 1 11; get 1 ]
  in
  Alcotest.(check (list int)) "quorum reads fresh" [ 10; 20; 11 ]
    (reads_of replies);
  Alcotest.(check bool) "served by ABD rounds" true
    (Paxos.quorum_reads_served (HP.replica h 0) >= 3);
  Alcotest.(check int) "slot log holds writes only" 3
    (Paxos.commit_frontier (HP.replica h 0));
  HP.assert_consistent h

let test_chain_tail_reads () =
  let h =
    HC.lan ~config:(lease_config ~read_path:Config.Tail 5) ~n:5 ()
  in
  let replies = HC.submit_seq h [ put 1 10; get 1; put 1 11; get 1 ] in
  Alcotest.(check (list int)) "tail reads fresh" [ 10; 11 ] (reads_of replies);
  Alcotest.(check bool) "served at the tail" true
    (Chain.tail_reads_served (HC.replica h 4) >= 2);
  HC.assert_consistent h

(* ------------------------------------------------------------------ *)
(* End-to-end linearizability under read-heavy load                    *)
(* ------------------------------------------------------------------ *)

let linearizable_run ~protocol ~read_path ~seed =
  let n = 5 in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.seed;
      read_ratio = Some 0.95;
      read_path = Some read_path;
    }
  in
  let target =
    if protocol = "chain" then Runner.Fixed (n - 1) else Runner.Fixed 0
  in
  let spec =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:1_500.0 ~collect_history:true
      ~check_consensus:true ~config
      ~topology:(Topology.lan ~n_replicas:n ())
      ~client_specs:[ Runner.clients ~target ~count:8 Workload.default ]
      ()
  in
  let result = Runner.run (Paxi_protocols.Registry.find_exn protocol) spec in
  Alcotest.(check bool)
    (Printf.sprintf "%s made progress" protocol)
    true
    (result.Runner.completed > 500);
  Alcotest.(check int)
    (Printf.sprintf "%s consensus clean" protocol)
    0
    (List.length result.Runner.consensus_violations);
  let anomalies = Linearizability.check result.Runner.history in
  Alcotest.(check int)
    (Printf.sprintf "%s linearizable at read_ratio 0.95 (%s)" protocol
       (String.concat "; "
          (List.map (fun a -> a.Linearizability.reason) anomalies)))
    0 (List.length anomalies)

let test_read_paths_linearizable () =
  linearizable_run ~protocol:"paxos" ~read_path:lease ~seed:31;
  linearizable_run ~protocol:"fpaxos" ~read_path:lease ~seed:32;
  linearizable_run ~protocol:"raft" ~read_path:lease ~seed:33;
  linearizable_run ~protocol:"paxos" ~read_path:Config.Quorum ~seed:34;
  linearizable_run ~protocol:"chain" ~read_path:Config.Tail ~seed:35

(* ------------------------------------------------------------------ *)
(* Byte-identity: r=0 is the write path; pools don't perturb          *)
(* ------------------------------------------------------------------ *)

let write_only_spec ~read_knob =
  let config =
    {
      (Config.default ~n_replicas:5) with
      Config.seed = 77;
      read_ratio = (if read_knob then Some 0.0 else None);
    }
  in
  Runner.spec ~warmup_ms:200.0 ~duration_ms:1_000.0 ~config
    ~topology:(Topology.lan ~n_replicas:5 ())
    ~client_specs:
      [
        Runner.clients ~target:Runner.Round_robin ~count:8
          { Workload.default with Workload.write_ratio = 1.0 };
      ]
    ()

(* read_ratio = 0 maps to p_write = 1.0 through the same single
   Bernoulli draw as write_ratio = 1.0: the whole simulation must be
   byte-identical, which is what keeps every pre-PR7 baseline valid. *)
let test_read_ratio_zero_identity () =
  let p = Paxi_protocols.Registry.find_exn "paxos" in
  let a = Runner.run p (write_only_spec ~read_knob:false) in
  let b = Runner.run p (write_only_spec ~read_knob:true) in
  Alcotest.(check (float 0.0)) "same throughput" a.Runner.throughput_rps
    b.Runner.throughput_rps;
  Alcotest.(check int) "same events" a.Runner.sim_events b.Runner.sim_events;
  Alcotest.(check bool) "identical latency samples" true
    (Stats.samples a.Runner.latency = Stats.samples b.Runner.latency)

(* Read-path points fanned over pools of different sizes come back
   byte-identical: the lease/quorum machinery draws nothing from any
   shared state. *)
let test_read_sweep_pool_identity () =
  let p = Paxi_protocols.Registry.find_exn "paxos" in
  let point ~read_path ~seed =
    let config =
      {
        (Config.default ~n_replicas:5) with
        Config.seed;
        read_ratio = Some 0.95;
        read_path;
      }
    in
    Runner.spec ~warmup_ms:200.0 ~duration_ms:800.0 ~config
      ~topology:(Topology.lan ~n_replicas:5 ())
      ~client_specs:
        [ Runner.clients ~target:(Runner.Fixed 0) ~count:8 Workload.default ]
      ()
  in
  let points =
    [
      (p, point ~read_path:(Some lease) ~seed:91);
      (p, point ~read_path:(Some Config.Quorum) ~seed:92);
      (p, point ~read_path:None ~seed:93);
    ]
  in
  let with_jobs jobs =
    let pool = Paxi_exec.Pool.create ~jobs () in
    let rs = Runner.run_many ~pool points in
    Paxi_exec.Pool.shutdown pool;
    List.map
      (fun (r : Runner.result) ->
        (r.Runner.throughput_rps, Stats.samples r.Runner.read_latency,
         Stats.samples r.Runner.write_latency))
      rs
  in
  Alcotest.(check bool) "jobs=1 equals jobs=4" true
    (with_jobs 1 = with_jobs 4)

let suite =
  ( "read-path",
    [
      Alcotest.test_case "paxos lease serves locally" `Quick
        test_paxos_lease_serves_locally;
      Alcotest.test_case "raft lease serves locally" `Quick
        test_raft_lease_serves_locally;
      Alcotest.test_case "fpaxos lease serves locally" `Quick
        test_fpaxos_lease_serves_locally;
      Alcotest.test_case "deposed leader read blocked" `Quick
        test_deposed_leader_read_blocked;
      Alcotest.test_case "deposed leader blocked under skew" `Quick
        test_deposed_leader_blocked_under_skew;
      Alcotest.test_case "paxos quorum reads" `Quick test_paxos_quorum_reads;
      Alcotest.test_case "chain tail reads" `Quick test_chain_tail_reads;
      Alcotest.test_case "read paths linearizable" `Slow
        test_read_paths_linearizable;
      Alcotest.test_case "read_ratio=0 byte identity" `Slow
        test_read_ratio_zero_identity;
      Alcotest.test_case "read sweep pool identity" `Slow
        test_read_sweep_pool_identity;
    ] )
