open Paxi_benchmark

let op ?(client = 0) ~id ~key kind (inv, resp) =
  {
    Linearizability.client;
    op_id = id;
    key;
    kind;
    invoked_ms = inv;
    responded_ms = resp;
  }

let w ?client ~id ~key v span = op ?client ~id ~key (Linearizability.Write v) span
let r ?client ~id ~key v span = op ?client ~id ~key (Linearizability.Read v) span
let d ?client ~id ~key span = op ?client ~id ~key Linearizability.Del span

let check_ok name history =
  Alcotest.(check int) name 0 (List.length (Linearizability.check history))

let check_bad name n history =
  Alcotest.(check int) name n (List.length (Linearizability.check history))

let test_sequential_valid () =
  check_ok "write then read"
    [ w ~id:0 ~key:1 10 (0.0, 1.0); r ~id:1 ~key:1 (Some 10) (2.0, 3.0) ]

let test_stale_read_detected () =
  (* w(10) done by 1; w(20) done by 3; read at 4 returns 10: stale *)
  check_bad "stale" 1
    [
      w ~id:0 ~key:1 10 (0.0, 1.0);
      w ~id:1 ~key:1 20 (2.0, 3.0);
      r ~id:2 ~key:1 (Some 10) (4.0, 5.0);
    ]

let test_concurrent_write_either_value_ok () =
  (* read overlaps w(20): may see either 10 or 20 *)
  let base = [ w ~id:0 ~key:1 10 (0.0, 1.0); w ~id:1 ~key:1 20 (2.0, 10.0) ] in
  check_ok "old value ok" (base @ [ r ~id:2 ~key:1 (Some 10) (3.0, 4.0) ]);
  check_ok "new value ok" (base @ [ r ~id:3 ~key:1 (Some 20) (3.0, 4.0) ])

let test_future_read_detected () =
  check_bad "future" 1
    [ w ~id:0 ~key:1 10 (5.0, 6.0); r ~id:1 ~key:1 (Some 10) (0.0, 1.0) ]

let test_phantom_value_detected () =
  check_bad "never written" 1 [ r ~id:0 ~key:1 (Some 99) (0.0, 1.0) ]

let test_initial_none_ok () =
  check_ok "initial read" [ r ~id:0 ~key:1 None (0.0, 1.0) ]

let test_none_after_write_detected () =
  check_bad "lost write" 1
    [ w ~id:0 ~key:1 10 (0.0, 1.0); r ~id:1 ~key:1 None (2.0, 3.0) ]

let test_none_concurrent_with_write_ok () =
  check_ok "read during write"
    [ w ~id:0 ~key:1 10 (0.0, 5.0); r ~id:1 ~key:1 None (1.0, 2.0) ]

let test_none_after_delete_ok () =
  check_ok "deleted"
    [
      w ~id:0 ~key:1 10 (0.0, 1.0);
      d ~id:1 ~key:1 (2.0, 3.0);
      r ~id:2 ~key:1 None (4.0, 5.0);
    ]

let test_none_with_write_after_delete_detected () =
  check_bad "write after delete" 1
    [
      w ~id:0 ~key:1 10 (0.0, 1.0);
      d ~id:1 ~key:1 (2.0, 3.0);
      w ~id:2 ~key:1 20 (4.0, 5.0);
      r ~id:3 ~key:1 None (6.0, 7.0);
    ]

let test_keys_independent () =
  (* staleness on key 1 does not implicate key 2 reads *)
  check_bad "only one anomaly" 1
    [
      w ~id:0 ~key:1 10 (0.0, 1.0);
      w ~id:1 ~key:1 20 (2.0, 3.0);
      r ~id:2 ~key:1 (Some 10) (4.0, 5.0);
      w ~id:3 ~key:2 30 (0.0, 1.0);
      r ~id:4 ~key:2 (Some 30) (4.0, 5.0);
    ]

let test_check_key_rejects_mixed () =
  Alcotest.check_raises "mixed keys"
    (Invalid_argument "Linearizability.check_key: mixed keys") (fun () ->
      ignore
        (Linearizability.check_key
           [ w ~id:0 ~key:1 10 (0.0, 1.0); w ~id:1 ~key:2 20 (0.0, 1.0) ]))

let test_is_linearizable () =
  Alcotest.(check bool) "valid" true
    (Linearizability.is_linearizable
       [ w ~id:0 ~key:1 10 (0.0, 1.0); r ~id:1 ~key:1 (Some 10) (2.0, 3.0) ]);
  Alcotest.(check bool) "invalid" false
    (Linearizability.is_linearizable [ r ~id:0 ~key:1 (Some 5) (0.0, 1.0) ])

(* --- zero-duration operations and equal timestamps ---------------

   The simulator's virtual clock is a float of milliseconds and every
   network hop has positive latency, so real histories never produce
   exact ties; these tests pin how the checker breaks them anyway.
   The rule: boundary comparisons are non-strict, so two operations
   sharing a timestamp are treated as ordered (response at t is
   "before" an invocation at t). That makes the checker conservative
   at exact ties — it may flag a tie-only history that a checker
   exploring all tie-break orders would accept — and never lenient. *)

let test_zero_duration_write_then_read_ok () =
  (* an instantaneous read of an instantaneous write at the same
     moment: the dictating write did not begin after the read ended
     (strict comparison), so this is accepted *)
  check_ok "zero-duration pair at one instant"
    [ w ~id:0 ~key:1 10 (100.0, 100.0); r ~id:1 ~key:1 (Some 10) (100.0, 100.0) ]

let test_touching_windows_count_as_ordered () =
  (* w(20) invoked exactly when w(10) responded, read invoked exactly
     when w(20) responded: the non-strict boundaries make w(20) a
     definite overwrite, so reading 10 is stale *)
  check_bad "touching windows are ordered" 1
    [
      w ~id:0 ~key:1 10 (0.0, 1.0);
      w ~id:1 ~key:1 20 (1.0, 2.0);
      r ~id:2 ~key:1 (Some 10) (2.0, 3.0);
    ]

let test_all_ties_flagged_conservatively () =
  (* three zero-duration ops at one instant: the order w(20); w(10);
     read(10) would be linearizable, but the tie-broken overwrite
     check flags the read — pinned as the documented conservative
     behaviour *)
  check_bad "tie-only history flagged" 1
    [
      w ~id:0 ~key:1 10 (100.0, 100.0);
      w ~id:1 ~key:1 20 (100.0, 100.0);
      r ~id:2 ~key:1 (Some 10) (100.0, 100.0);
    ]

let test_none_read_at_write_boundary_detected () =
  (* a write responding exactly when the empty read is invoked counts
     as completed-before: the read can no longer see the initial
     state *)
  check_bad "boundary write beats empty read" 1
    [ w ~id:0 ~key:1 10 (0.0, 1.0); r ~id:1 ~key:1 None (1.0, 2.0) ]

(* Regression: a value written twice. The checker used to fix on the
   FIRST write of the value as the dictating write, so the rewrite in
   between looked like a stale-read witness and this legal history was
   flagged. Any matching write whose interval permits the read may
   dictate it. *)
let test_rewritten_value_read_ok () =
  check_ok "read dictated by the second write of the same value"
    [
      w ~id:0 ~key:1 5 (0.0, 1.0);
      w ~id:1 ~key:1 7 (2.0, 3.0);
      w ~id:2 ~key:1 5 (4.0, 5.0);
      r ~id:3 ~key:1 (Some 5) (6.0, 7.0);
    ]

let test_rewritten_value_still_catches_stale () =
  (* both writes of 5 are definitely overwritten before the read *)
  check_bad "stale even with duplicate writes" 1
    [
      w ~id:0 ~key:1 5 (0.0, 1.0);
      w ~id:1 ~key:1 5 (2.0, 3.0);
      w ~id:2 ~key:1 7 (4.0, 5.0);
      r ~id:3 ~key:1 (Some 5) (6.0, 7.0);
    ]

let test_empty_history_ok () =
  check_ok "empty history" [];
  Alcotest.(check int) "check_key of empty" 0
    (List.length (Linearizability.check_key []))

(* Sequential histories (no overlapping operations, reads return the
   latest completed write) are always accepted. *)
let prop_sequential_accepted =
  QCheck.Test.make ~name:"sequential histories linearizable" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (pair bool (int_range 0 3)))
    (fun steps ->
      let t = ref 0.0 in
      let latest = Hashtbl.create 4 in
      let history =
        List.mapi
          (fun i (is_write, key) ->
            let inv = !t in
            t := !t +. 1.0;
            let resp = !t in
            t := !t +. 1.0;
            if is_write then begin
              Hashtbl.replace latest key i;
              w ~id:i ~key i (inv, resp)
            end
            else
              r ~id:i ~key
                (Option.map Fun.id (Hashtbl.find_opt latest key))
                (inv, resp))
          steps
      in
      Linearizability.is_linearizable history)

let suite =
  ( "linearizability",
    [
      Alcotest.test_case "sequential valid" `Quick test_sequential_valid;
      Alcotest.test_case "stale read detected" `Quick test_stale_read_detected;
      Alcotest.test_case "concurrent write either value" `Quick test_concurrent_write_either_value_ok;
      Alcotest.test_case "future read detected" `Quick test_future_read_detected;
      Alcotest.test_case "phantom value detected" `Quick test_phantom_value_detected;
      Alcotest.test_case "initial none ok" `Quick test_initial_none_ok;
      Alcotest.test_case "none after write detected" `Quick test_none_after_write_detected;
      Alcotest.test_case "none during write ok" `Quick test_none_concurrent_with_write_ok;
      Alcotest.test_case "none after delete ok" `Quick test_none_after_delete_ok;
      Alcotest.test_case "write-after-delete none detected" `Quick test_none_with_write_after_delete_detected;
      Alcotest.test_case "keys independent" `Quick test_keys_independent;
      Alcotest.test_case "check_key rejects mixed" `Quick test_check_key_rejects_mixed;
      Alcotest.test_case "is_linearizable" `Quick test_is_linearizable;
      Alcotest.test_case "zero-duration pair ok" `Quick
        test_zero_duration_write_then_read_ok;
      Alcotest.test_case "touching windows ordered" `Quick
        test_touching_windows_count_as_ordered;
      Alcotest.test_case "ties flagged conservatively" `Quick
        test_all_ties_flagged_conservatively;
      Alcotest.test_case "none read at write boundary" `Quick
        test_none_read_at_write_boundary_detected;
      Alcotest.test_case "rewritten value read ok" `Quick
        test_rewritten_value_read_ok;
      Alcotest.test_case "rewritten value still stale" `Quick
        test_rewritten_value_still_catches_stale;
      Alcotest.test_case "empty history ok" `Quick test_empty_history_ok;
      QCheck_alcotest.to_alcotest prop_sequential_accepted;
    ] )
