open Paxi_benchmark

let gen ?(spec = Workload.default) () =
  Workload.generator spec ~rng:(Rng.create ~seed:5) ~client:0

let collect g n = List.init n (fun _ -> Workload.next_op g ~now_ms:0.0)

let test_keys_in_range () =
  let spec = { Workload.default with Workload.keys = 50; min_key = 100 } in
  let ops = collect (gen ~spec ()) 1000 in
  List.iter
    (fun op ->
      let k = match op with Command.Get k | Command.Put (k, _) | Command.Delete k -> k in
      Alcotest.(check bool) "in [100,150)" true (k >= 100 && k < 150))
    ops

let test_write_ratio () =
  let count ratio =
    let spec = { Workload.default with Workload.write_ratio = ratio } in
    let ops = collect (gen ~spec ()) 4000 in
    List.length (List.filter (function Command.Put _ -> true | _ -> false) ops)
  in
  Alcotest.(check bool) "~50%" true (abs (count 0.5 - 2000) < 150);
  Alcotest.(check int) "0% writes" 0 (count 0.0);
  Alcotest.(check int) "100% writes" 4000 (count 1.0)

let test_conflict_ratio_targets_hot_key () =
  let spec =
    { Workload.default with Workload.conflict_ratio = 0.3; hot_key = 7; keys = 10_000 }
  in
  let ops = collect (gen ~spec ()) 5000 in
  let hot =
    List.length
      (List.filter
         (fun op -> (match op with Command.Get k | Command.Put (k, _) | Command.Delete k -> k) = 7)
         ops)
  in
  let f = float_of_int hot /. 5000.0 in
  Alcotest.(check bool) (Printf.sprintf "~30%% hot (%.2f)" f) true (Float.abs (f -. 0.3) < 0.03)

let test_unique_write_values () =
  let spec = { Workload.default with Workload.write_ratio = 1.0 } in
  let ops = collect (gen ~spec ()) 1000 in
  let values =
    List.filter_map (function Command.Put (_, v) -> Some v | _ -> None) ops
  in
  Alcotest.(check int) "all distinct" 1000
    (List.length (List.sort_uniq Int.compare values))

let test_locality_separates_regions () =
  let mean_key region_index =
    let spec =
      Workload.with_locality
        { Workload.default with Workload.keys = 900 }
        ~region_index ~regions:3
    in
    let ops = collect (Workload.generator spec ~rng:(Rng.create ~seed:9) ~client:0) 2000 in
    let sum =
      List.fold_left
        (fun acc op ->
          acc + match op with Command.Get k | Command.Put (k, _) | Command.Delete k -> k)
        0 ops
    in
    float_of_int sum /. 2000.0
  in
  let m0 = mean_key 0 and m1 = mean_key 1 and m2 = mean_key 2 in
  Alcotest.(check bool) "region 0 ~150" true (Float.abs (m0 -. 150.0) < 40.0);
  Alcotest.(check bool) "region 1 ~450" true (Float.abs (m1 -. 450.0) < 40.0);
  Alcotest.(check bool) "region 2 ~750" true (Float.abs (m2 -. 750.0) < 40.0)

let test_validation () =
  let bad spec =
    Alcotest.(check bool) "invalid" true (Workload.validate spec <> Ok ())
  in
  bad { Workload.default with Workload.keys = 0 };
  bad { Workload.default with Workload.write_ratio = 1.5 };
  bad { Workload.default with Workload.conflict_ratio = -0.1 };
  bad { Workload.default with Workload.dist = Workload.Zipfian { s = 0.0; v = 1.0 } };
  Alcotest.(check bool) "default valid" true (Workload.validate Workload.default = Ok ())

let test_ycsb_presets () =
  let frac_writes kind =
    let spec = Workload.ycsb kind ~keys:500 in
    (match Workload.validate spec with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    let g = Workload.generator spec ~rng:(Rng.create ~seed:3) ~client:0 in
    let ops = collect g 2000 in
    float_of_int
      (List.length (List.filter (function Command.Put _ -> true | _ -> false) ops))
    /. 2000.0
  in
  Alcotest.(check bool) "A ~50% writes" true (Float.abs (frac_writes `A -. 0.5) < 0.05);
  Alcotest.(check bool) "B ~5% writes" true (Float.abs (frac_writes `B -. 0.05) < 0.02);
  Alcotest.(check (float 0.0)) "C read-only" 0.0 (frac_writes `C);
  Alcotest.(check bool) "D ~5% writes" true (Float.abs (frac_writes `D -. 0.05) < 0.02);
  Alcotest.(check bool) "F ~50% writes" true (Float.abs (frac_writes `F -. 0.5) < 0.05)

let test_ycsb_zipf_skew () =
  let spec = Workload.ycsb `A ~keys:500 in
  let g = Workload.generator spec ~rng:(Rng.create ~seed:7) ~client:0 in
  let ops = collect g 3000 in
  let hot =
    List.length
      (List.filter
         (fun op ->
           (match op with Command.Get k | Command.Put (k, _) | Command.Delete k -> k) < 10)
         ops)
  in
  (* zipfian: the 10 hottest of 500 keys draw a large share *)
  Alcotest.(check bool) "head-heavy" true (hot > 600)

let test_op_count () =
  let g = gen () in
  ignore (collect g 17);
  Alcotest.(check int) "counted" 17 (Workload.op_count g)

(* Read-ratio knob (PR 7): the generated mix lands within tolerance of
   r for any seed and any of the swept ratios. *)
let test_read_ratio_mix () =
  List.iter
    (fun seed ->
      List.iter
        (fun r ->
          let spec = { Workload.default with Workload.read_ratio = Some r } in
          let g =
            Workload.generator spec ~rng:(Rng.create ~seed) ~client:0
          in
          let ops = collect g 4000 in
          let reads =
            List.length
              (List.filter (function Command.Get _ -> true | _ -> false) ops)
          in
          let f = float_of_int reads /. 4000.0 in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d r=%.2f measured %.3f" seed r f)
            true
            (Float.abs (f -. r) < 0.025))
        [ 0.5; 0.95; 0.99 ])
    [ 1; 7; 42; 1000; 20190630 ]

(* read_ratio = Some (1 - w) parameterizes the SAME single Bernoulli
   draw as write_ratio = w: the op streams are byte-identical, and
   None leaves the legacy stream untouched — the invariant that keeps
   every pre-read-path baseline valid. *)
let test_read_ratio_stream_identity () =
  let stream spec =
    collect (Workload.generator spec ~rng:(Rng.create ~seed:11) ~client:0) 2000
  in
  let a = stream { Workload.default with Workload.write_ratio = 0.3 } in
  let b =
    stream
      { Workload.default with Workload.write_ratio = 0.3; read_ratio = Some 0.7 }
  in
  Alcotest.(check bool) "read_ratio 0.7 = write_ratio 0.3 stream" true (a = b);
  let c = stream { Workload.default with Workload.read_ratio = Some 0.0 } in
  let d = stream { Workload.default with Workload.write_ratio = 1.0 } in
  Alcotest.(check bool) "read_ratio 0 = write-only stream" true (c = d)

let test_read_ratio_validation () =
  let bad spec =
    Alcotest.(check bool) "invalid" true (Workload.validate spec <> Ok ())
  in
  bad { Workload.default with Workload.read_ratio = Some 1.5 };
  bad { Workload.default with Workload.read_ratio = Some (-0.1) };
  Alcotest.(check bool) "r=0.95 valid" true
    (Workload.validate { Workload.default with Workload.read_ratio = Some 0.95 }
    = Ok ())

let suite =
  ( "workload",
    [
      Alcotest.test_case "keys in range" `Quick test_keys_in_range;
      Alcotest.test_case "write ratio" `Quick test_write_ratio;
      Alcotest.test_case "conflict ratio targets hot key" `Quick test_conflict_ratio_targets_hot_key;
      Alcotest.test_case "unique write values" `Quick test_unique_write_values;
      Alcotest.test_case "locality separates regions" `Quick test_locality_separates_regions;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "ycsb presets" `Quick test_ycsb_presets;
      Alcotest.test_case "ycsb zipf skew" `Quick test_ycsb_zipf_skew;
      Alcotest.test_case "op count" `Quick test_op_count;
      Alcotest.test_case "read ratio mix" `Quick test_read_ratio_mix;
      Alcotest.test_case "read ratio stream identity" `Quick
        test_read_ratio_stream_identity;
      Alcotest.test_case "read ratio validation" `Quick
        test_read_ratio_validation;
    ] )
