(* Domain pool: result ordering, work stealing under skew, exception
   propagation, and the determinism contract — a pooled sweep is
   byte-identical to the sequential path. *)

open Paxi_benchmark

let test_map_matches_sequential () =
  let pool = Paxi_exec.Pool.create ~jobs:4 () in
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  let got = Paxi_exec.Parmap.map ~pool (fun x -> x * x) xs in
  Paxi_exec.Pool.shutdown pool;
  Alcotest.(check (list int)) "ordered results" expect got

let test_sequential_pool () =
  let pool = Paxi_exec.Pool.create ~jobs:1 () in
  let order = ref [] in
  let got =
    Paxi_exec.Parmap.map ~pool
      (fun x ->
        order := x :: !order;
        x + 1)
      [ 1; 2; 3; 4 ]
  in
  Paxi_exec.Pool.shutdown pool;
  Alcotest.(check (list int)) "results" [ 2; 3; 4; 5 ] got;
  Alcotest.(check (list int)) "jobs=1 runs in submission order" [ 4; 3; 2; 1 ]
    !order

let test_skewed_tasks () =
  (* one long task first: stealing must keep the rest from queuing
     behind it, and ordering must survive any interleaving *)
  let pool = Paxi_exec.Pool.create ~jobs:3 () in
  let work x =
    let spins = if x = 0 then 2_000_000 else 10_000 in
    let acc = ref 0 in
    for i = 1 to spins do
      acc := !acc + (i mod 7)
    done;
    ignore !acc;
    x * 10
  in
  let xs = List.init 20 Fun.id in
  let got = Paxi_exec.Parmap.map ~pool work xs in
  Paxi_exec.Pool.shutdown pool;
  Alcotest.(check (list int)) "ordered" (List.map (fun x -> x * 10) xs) got

exception Boom

let test_exception_propagates () =
  let pool = Paxi_exec.Pool.create ~jobs:4 () in
  let raised =
    try
      ignore
        (Paxi_exec.Parmap.map ~pool
           (fun x -> if x = 7 then raise Boom else x)
           (List.init 16 Fun.id));
      false
    with Boom -> true
  in
  (* the pool survives a failed batch *)
  let got = Paxi_exec.Parmap.map ~pool (fun x -> x + 1) [ 1; 2 ] in
  Paxi_exec.Pool.shutdown pool;
  Alcotest.(check bool) "exception re-raised" true raised;
  Alcotest.(check (list int)) "pool usable afterwards" [ 2; 3 ] got

let test_run_many_reuses_batches () =
  let pool = Paxi_exec.Pool.create ~jobs:2 () in
  for round = 1 to 3 do
    let got = Paxi_exec.Parmap.map ~pool (fun x -> x * round) [ 1; 2; 3 ] in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d" round)
      [ round; 2 * round; 3 * round ]
      got
  done;
  Paxi_exec.Pool.shutdown pool

(* The acceptance contract of the parallel sweep engine: running the
   same (protocol, spec) points through a multi-domain pool yields
   exactly the sequential results — same throughput, same latency
   samples, bit for bit. *)
let bench_point name =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  let config =
    {
      (Config.default ~n_replicas:5) with
      Config.seed = Runner.derive_seed ~root:7 (Hashtbl.hash name);
    }
  in
  let spec =
    Runner.spec ~warmup_ms:100.0 ~duration_ms:400.0 ~cooldown_ms:100.0 ~config
      ~topology:(Topology.lan ~n_replicas:5 ())
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:4 Workload.default ]
      ()
  in
  ((module P : Proto.RUNNABLE), spec)

let test_run_many_deterministic () =
  let points = List.map bench_point [ "paxos"; "epaxos"; "raft" ] in
  let seq = List.map (fun (p, s) -> Runner.run p s) points in
  let pool = Paxi_exec.Pool.create ~jobs:4 () in
  let par = Runner.run_many ~pool points in
  Paxi_exec.Pool.shutdown pool;
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      Alcotest.(check (float 0.0))
        "throughput identical" a.Runner.throughput_rps b.Runner.throughput_rps;
      Alcotest.(check int) "completed identical" a.Runner.completed
        b.Runner.completed;
      Alcotest.(check int) "messages identical" a.Runner.messages_sent
        b.Runner.messages_sent;
      Alcotest.(check int) "sim events identical" a.Runner.sim_events
        b.Runner.sim_events;
      Alcotest.(check (array (float 0.0)))
        "latency samples identical"
        (Stats.samples a.Runner.latency)
        (Stats.samples b.Runner.latency))
    seq par

let test_saturation_sweep_deterministic () =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let make_spec ~concurrency =
    Runner.spec ~warmup_ms:100.0 ~duration_ms:300.0 ~cooldown_ms:100.0
      ~config:
        {
          (Config.default ~n_replicas:3) with
          Config.seed = Runner.derive_seed ~root:7 concurrency;
        }
      ~topology:(Topology.lan ~n_replicas:3 ())
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:concurrency
            Workload.default ]
      ()
  in
  let concurrencies = [ 1; 4; 8 ] in
  let seq_pool = Paxi_exec.Pool.create ~jobs:1 () in
  let seq =
    Runner.saturation_sweep ~pool:seq_pool (module P) ~make_spec ~concurrencies
  in
  Paxi_exec.Pool.shutdown seq_pool;
  let pool = Paxi_exec.Pool.create ~jobs:3 () in
  let par =
    Runner.saturation_sweep ~pool (module P) ~make_spec ~concurrencies
  in
  Paxi_exec.Pool.shutdown pool;
  List.iter2
    (fun (c, (a : Runner.result)) (c', (b : Runner.result)) ->
      Alcotest.(check int) "concurrency order" c c';
      Alcotest.(check (float 0.0))
        "throughput identical" a.Runner.throughput_rps b.Runner.throughput_rps;
      Alcotest.(check (array (float 0.0)))
        "latency samples identical"
        (Stats.samples a.Runner.latency)
        (Stats.samples b.Runner.latency))
    seq par

let test_derive_seed_stable () =
  Alcotest.(check int)
    "same identity, same seed"
    (Runner.derive_seed ~root:42 17)
    (Runner.derive_seed ~root:42 17);
  Alcotest.(check bool)
    "different identities diverge" true
    (Runner.derive_seed ~root:42 17 <> Runner.derive_seed ~root:42 18);
  Alcotest.(check bool)
    "different roots diverge" true
    (Runner.derive_seed ~root:42 17 <> Runner.derive_seed ~root:43 17);
  Alcotest.(check bool)
    "non-negative" true
    (Runner.derive_seed ~root:42 17 >= 0)

let suite =
  ( "exec",
    [
      Alcotest.test_case "parmap matches sequential map" `Quick
        test_map_matches_sequential;
      Alcotest.test_case "jobs=1 escape hatch" `Quick test_sequential_pool;
      Alcotest.test_case "work stealing under skew" `Quick test_skewed_tasks;
      Alcotest.test_case "exception propagates" `Quick
        test_exception_propagates;
      Alcotest.test_case "pool reusable across batches" `Quick
        test_run_many_reuses_batches;
      Alcotest.test_case "run_many deterministic across domains" `Slow
        test_run_many_deterministic;
      Alcotest.test_case "saturation_sweep deterministic" `Slow
        test_saturation_sweep_deterministic;
      Alcotest.test_case "derive_seed stable" `Quick test_derive_seed_stable;
    ] )
