(* Direct tests of the intra-zone replication group used by WanKeeper
   and VPaxos. We drive it through a tiny ad-hoc protocol whose
   message type is just the group's. *)

module Group_proto = struct
  type message = Paxi_protocols.Group.message

  type replica = {
    group : Paxi_protocols.Group.t;
    executed : (Command.t * Command.value option) list ref;
  }

  let name = "group-test"
  let cpu_factor _ = 1.0
  let message_label = Paxi_protocols.Group.message_label

  let members = [ 0; 1; 2 ]

  let create (env : message Proto.env) =
    let executed = ref [] in
    let exec = Executor.create () in
    let group =
      Paxi_protocols.Group.create ~env ~wrap:Fun.id ~members ~leader:0 ~exec
        ~on_executed:(fun cmd client read ->
          executed := (cmd, read) :: !executed;
          match client with
          | Some c ->
              env.Proto.reply c
                { Proto.command = cmd; read; replier = env.Proto.id; leader_hint = None }
          | None -> ())
    in
    { group; executed }

  let on_request t ~client (request : Proto.request) =
    if Paxi_protocols.Group.is_leader t.group then
      Paxi_protocols.Group.propose t.group ~client:(Some client)
        request.Proto.command

  let on_message t ~src m = Paxi_protocols.Group.on_message t.group ~src m
  let on_start _ = ()
  let on_recover _ = ()
  let leader_of_key _ _ = Some 0
  let executor _ = Executor.create () (* unused in these tests *)
end

module C = Cluster.Make (Group_proto)

let setup () =
  let config = Config.default ~n_replicas:3 in
  let topology = Topology.lan ~n_replicas:3 () in
  let cluster = C.create ~config ~topology () in
  C.register_client cluster ~id:0 ();
  cluster

let test_commits_on_majority () =
  let cluster = setup () in
  let sim = C.sim cluster in
  let got = ref None in
  C.submit cluster ~client:0 ~target:0
    ~command:(Command.make ~id:0 ~client:0 (Command.Put (1, 7)))
    ~on_reply:(fun r -> got := Some r.Proto.replier);
  Sim.run_until sim 100.0;
  Alcotest.(check (option int)) "leader replied" (Some 0) !got

let test_members_execute_in_order () =
  let cluster = setup () in
  let sim = C.sim cluster in
  for i = 0 to 4 do
    C.submit cluster ~client:0 ~target:0
      ~command:(Command.make ~id:i ~client:0 (Command.Put (1, i)))
      ~on_reply:(fun _ -> ())
  done;
  Sim.run_until sim 500.0;
  (* proposal order depends on message arrival, but all members must
     execute the same sequence *)
  let order m =
    let r = C.replica cluster m in
    List.rev_map fst !(r.Group_proto.executed)
    |> List.map (fun (c : Command.t) -> c.Command.id)
  in
  let reference = order 0 in
  Alcotest.(check int) "leader executed 5" 5 (List.length reference);
  Alcotest.(check (list int)) "all ids present" [ 0; 1; 2; 3; 4 ]
    (List.sort compare reference);
  for m = 1 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "member %d same order" m)
      reference (order m)
  done

let test_propose_rejected_at_follower () =
  let cluster = setup () in
  Sim.run_until (C.sim cluster) 10.0;
  let follower = C.replica cluster 1 in
  Alcotest.(check bool) "not leader" false
    (Paxi_protocols.Group.is_leader follower.Group_proto.group);
  Alcotest.check_raises "propose at follower"
    (Invalid_argument "Group.propose: not the group leader") (fun () ->
      Paxi_protocols.Group.propose follower.Group_proto.group ~client:None
        (Command.make ~id:9 ~client:0 (Command.Put (0, 0))))

let test_frontier_tracking () =
  let cluster = setup () in
  let sim = C.sim cluster in
  let leader = C.replica cluster 0 in
  Alcotest.(check int) "no proposals" (-1)
    (Paxi_protocols.Group.last_proposed_slot leader.Group_proto.group);
  C.submit cluster ~client:0 ~target:0
    ~command:(Command.make ~id:0 ~client:0 (Command.Put (1, 1)))
    ~on_reply:(fun _ -> ());
  Sim.run_until sim 100.0;
  Alcotest.(check int) "one proposal" 0
    (Paxi_protocols.Group.last_proposed_slot leader.Group_proto.group);
  Alcotest.(check int) "frontier past it" 1
    (Paxi_protocols.Group.frontier leader.Group_proto.group)

let test_single_member_group () =
  (* a zone with one node commits instantly *)
  let module Solo = struct
    include Group_proto

    let members = [ 0 ]

    let create (env : message Proto.env) =
      let executed = ref [] in
      let exec = Executor.create () in
      let group =
        Paxi_protocols.Group.create ~env ~wrap:Fun.id ~members:[ 0 ] ~leader:0
          ~exec
          ~on_executed:(fun cmd client read ->
            executed := (cmd, read) :: !executed;
            match client with
            | Some c ->
                env.Proto.reply c
                  { Proto.command = cmd; read; replier = env.Proto.id; leader_hint = None }
            | None -> ())
      in
      { group; executed }
  end in
  ignore Solo.members;
  let module C1 = Cluster.Make (Solo) in
  let config = Config.default ~n_replicas:1 in
  let cluster = C1.create ~config ~topology:(Topology.lan ~n_replicas:1 ()) () in
  C1.register_client cluster ~id:0 ();
  let got = ref false in
  C1.submit cluster ~client:0 ~target:0
    ~command:(Command.make ~id:0 ~client:0 (Command.Put (1, 1)))
    ~on_reply:(fun _ -> got := true);
  Sim.run_until (C1.sim cluster) 50.0;
  Alcotest.(check bool) "solo commit" true !got

let test_leader_must_be_member () =
  let env_stub () =
    (* only Group.create's validation runs before any env use *)
    let sim = Sim.create () in
    let topology = Topology.lan ~n_replicas:3 () in
    {
      Proto.id = 0;
      n = 3;
      config = Config.default ~n_replicas:3;
      topology;
      rng = Rng.create ~seed:0;
      now = (fun () -> Sim.now sim);
      schedule = (fun delay f -> Sim.schedule_after sim ~delay f);
      cancel = (fun h -> Sim.cancel sim h);
      send = (fun _ _ -> ());
      broadcast = (fun _ -> ());
      multicast = (fun _ _ -> ());
      send_sized = (fun _ ~size_bytes:_ _ -> ());
      broadcast_sized = (fun ~size_bytes:_ _ -> ());
      multicast_sized = (fun _ ~size_bytes:_ _ -> ());
      reply = (fun _ _ -> ());
      forward = (fun _ ~client:_ _ -> ());
      rel = Proto.null_rel ();
      obs = Proto.null_obs;
      storage = None;
    }
  in
  Alcotest.check_raises "leader outside members"
    (Invalid_argument "Group.create: leader not in members") (fun () ->
      ignore
        (Paxi_protocols.Group.create ~env:(env_stub ()) ~wrap:Fun.id
           ~members:[ 1; 2 ] ~leader:0 ~exec:(Executor.create ())
           ~on_executed:(fun _ _ _ -> ())))

let suite =
  ( "group",
    [
      Alcotest.test_case "commits on majority" `Quick test_commits_on_majority;
      Alcotest.test_case "members execute in order" `Quick test_members_execute_in_order;
      Alcotest.test_case "propose rejected at follower" `Quick test_propose_rejected_at_follower;
      Alcotest.test_case "frontier tracking" `Quick test_frontier_tracking;
      Alcotest.test_case "single-member group" `Quick test_single_member_group;
      Alcotest.test_case "leader must be member" `Quick test_leader_must_be_member;
    ] )
