let test_ordering () =
  let q = Event_queue.create ~dummy:"" () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let pop () = Option.get (Event_queue.pop q) in
  Alcotest.(check (pair (float 0.0) string)) "first" (1.0, "a") (pop ());
  Alcotest.(check (pair (float 0.0) string)) "second" (2.0, "b") (pop ());
  Alcotest.(check (pair (float 0.0) string)) "third" (3.0, "c") (pop ());
  Alcotest.(check bool) "empty" true (Event_queue.pop q = None)

let test_fifo_on_ties () =
  let q = Event_queue.create ~dummy:(-1) () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1.0 i
  done;
  for i = 0 to 9 do
    let _, v = Option.get (Event_queue.pop q) in
    Alcotest.(check int) "fifo" i v
  done

let test_interleaved_push_pop () =
  let q = Event_queue.create ~dummy:"" () in
  Event_queue.push q ~time:5.0 "late";
  Event_queue.push q ~time:1.0 "early";
  let _, v = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "early first" "early" v;
  Event_queue.push q ~time:2.0 "mid";
  let _, v = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "mid next" "mid" v

let test_length_and_clear () =
  let q = Event_queue.create ~dummy:(-1) () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  for i = 1 to 100 do
    Event_queue.push q ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "length" 100 (Event_queue.length q);
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let test_peek () =
  let q = Event_queue.create ~dummy:() () in
  Alcotest.(check (option (float 0.0))) "none" None (Event_queue.peek_time q);
  Event_queue.push q ~time:4.2 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 4.2) (Event_queue.peek_time q);
  Alcotest.(check int) "peek does not pop" 1 (Event_queue.length q)

(* Interleaved push/pop/clear against a sorted-list reference model:
   pops must match the reference (min time, FIFO among ties) at every
   step, across clears. Ops are decoded from a generated int list:
   0-6 push (time derived from the op), 7-8 pop, 9 clear. *)
let prop_matches_reference =
  QCheck.Test.make ~name:"push/pop/clear matches sorted reference" ~count:300
    QCheck.(list (int_bound 999))
    (fun ops ->
      let q = Event_queue.create ~dummy:(-1) () in
      let model = ref [] (* (time, payload), kept unsorted *) in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op mod 10 with
          | 9 ->
              Event_queue.clear q;
              model := []
          | 7 | 8 -> (
              let expect =
                match
                  List.stable_sort
                    (fun (t1, _) (t2, _) -> Float.compare t1 t2)
                    (List.rev !model)
                with
                | [] -> None
                | (t, v) :: _ ->
                    model := List.filter (fun (_, v') -> v' <> v) !model;
                    Some (t, v)
              in
              match (Event_queue.pop q, expect) with
              | None, None -> ()
              | Some (t, v), Some (t', v') ->
                  if not (t = t' && v = v') then ok := false
              | _ -> ok := false)
          | d ->
              let time = float_of_int (d * 100) in
              incr counter;
              Event_queue.push q ~time !counter;
              model := (time, !counter) :: !model)
        ops;
      (* drain: remaining events must come out in model order too *)
      let rest =
        List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
          (List.rev !model)
      in
      List.iter
        (fun (t, v) ->
          match Event_queue.pop q with
          | Some (t', v') -> if not (t = t' && v = v') then ok := false
          | None -> ok := false)
        rest;
      !ok && Event_queue.is_empty q)

(* [pop] and [clear] must release retired payloads to the GC: a
   popped event's closure used to stay pinned by the heap array until
   the queue itself died, retaining whole cluster states across a
   sweep. Observed with a finaliser on the payload. *)
let[@inline never] push_and_pop q flag =
  let payload = ref 42 in
  Gc.finalise (fun _ -> flag := true) payload;
  Event_queue.push q ~time:1.0 payload;
  Event_queue.push q ~time:2.0 (ref 0);
  ignore (Event_queue.pop q)

let test_pop_releases_payload () =
  let q = Event_queue.create ~dummy:(ref 0) () in
  let collected = ref false in
  push_and_pop q collected;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" true !collected;
  Alcotest.(check int) "second event still queued" 1 (Event_queue.length q)

let[@inline never] push_only q flag =
  let payload = ref 7 in
  Gc.finalise (fun _ -> flag := true) payload;
  Event_queue.push q ~time:1.0 payload

let test_clear_releases_payloads () =
  let q = Event_queue.create ~dummy:(ref 0) () in
  let collected = ref false in
  push_only q collected;
  Event_queue.clear q;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "cleared payload collected" true !collected

let prop_heap_sorted =
  QCheck.Test.make ~name:"pop yields non-decreasing times" ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun times ->
      let q = Event_queue.create ~dummy:() () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* [compact ~dead] filters the heap in place: survivors keep their
   relative order among equal times, dead slots are released to the
   GC, and the predicate runs exactly once per entry (it may carry
   side effects, e.g. slot retirement). *)
let test_compact_filters_and_keeps_order () =
  let q = Event_queue.create ~dummy:(-1) () in
  for i = 0 to 99 do
    (* two FIFO ties per time bucket *)
    Event_queue.push q ~time:(float_of_int (i / 2)) i
  done;
  let calls = ref 0 in
  let removed =
    Event_queue.compact q ~dead:(fun v ->
        incr calls;
        v mod 3 = 0)
  in
  Alcotest.(check int) "predicate once per entry" 100 !calls;
  Alcotest.(check int) "removed count" 34 removed;
  Alcotest.(check int) "length shrank" 66 (Event_queue.length q);
  let out = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  let expect = List.filter (fun v -> v mod 3 <> 0) (List.init 100 Fun.id) in
  Alcotest.(check (list int)) "survivors in original order" expect
    (List.rev !out)

let test_compact_releases_dead_payloads () =
  let q = Event_queue.create ~dummy:(ref 0) () in
  let collected = ref false in
  push_only q collected;
  Event_queue.push q ~time:2.0 (ref 1);
  let removed = Event_queue.compact q ~dead:(fun r -> !r = 7) in
  Alcotest.(check int) "one removed" 1 removed;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "dead payload collected" true !collected;
  Alcotest.(check int) "survivor kept" 1 (Event_queue.length q)

(* The n = 81 relay sweep churns retransmit/fallback timers at
   81-replica scale: most are cancelled (the ack wins the race) and
   linger as lazy-deleted entries until the scheduler compacts the
   heap. Ten rounds of 81 staggered timers with 90% killed per round:
   every compaction must remove exactly the dead entries, and the
   survivors must still drain in (time, FIFO) order. *)
let test_compaction_churn_n81 () =
  let q = Event_queue.create ~dummy:(-1) () in
  let live = ref [] in
  let id = ref 0 in
  for round = 0 to 9 do
    let dead = Hashtbl.create 128 in
    for r = 0 to 80 do
      incr id;
      let time = float_of_int (((round * 81) + (r * 13)) mod 97) in
      Event_queue.push q ~time !id;
      if (r + round) mod 10 <> 0 then Hashtbl.replace dead !id ()
      else live := (time, !id) :: !live
    done;
    let before = Event_queue.length q in
    let removed = Event_queue.compact q ~dead:(Hashtbl.mem dead) in
    Alcotest.(check int) "removes exactly this round's dead"
      (Hashtbl.length dead) removed;
    Alcotest.(check int) "length = survivors" (before - removed)
      (Event_queue.length q)
  done;
  let expected =
    List.stable_sort
      (fun (t1, _) (t2, _) -> Float.compare t1 t2)
      (List.rev !live)
  in
  Alcotest.(check int) "live count" (List.length expected)
    (Event_queue.length q);
  List.iter
    (fun (t, v) ->
      match Event_queue.pop q with
      | Some (t', v') ->
          Alcotest.(check (float 0.0)) "survivor time" t t';
          Alcotest.(check int) "survivor payload" v v'
      | None -> Alcotest.fail "queue drained early")
    expected;
  Alcotest.(check bool) "empty after drain" true (Event_queue.is_empty q)

let suite =
  ( "event_queue",
    [
      Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "fifo on equal times" `Quick test_fifo_on_ties;
      Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
      Alcotest.test_case "length and clear" `Quick test_length_and_clear;
      Alcotest.test_case "peek" `Quick test_peek;
      Alcotest.test_case "pop releases payload" `Quick
        test_pop_releases_payload;
      Alcotest.test_case "clear releases payloads" `Quick
        test_clear_releases_payloads;
      Alcotest.test_case "compact filters, keeps order" `Quick
        test_compact_filters_and_keeps_order;
      Alcotest.test_case "compact releases dead payloads" `Quick
        test_compact_releases_dead_payloads;
      Alcotest.test_case "compaction churn at n=81" `Quick
        test_compaction_churn_n81;
      QCheck_alcotest.to_alcotest prop_heap_sorted;
      QCheck_alcotest.to_alcotest prop_matches_reference;
    ] )
