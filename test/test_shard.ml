(* Sharded multi-group deployments (DESIGN.md §13): partitioner
   balance and boundary properties, hotspot key-mass, Poisson /
   bursty arrival-process statistics, the shards=1 byte-identity pin
   against the unsharded runner, and a K=4 end-to-end smoke. *)

open Paxi_benchmark
module Partitioner = Paxi_shard.Partitioner

(* ------------------------------------------------------------------ *)
(* Partitioner: hash balance, range boundaries                         *)
(* ------------------------------------------------------------------ *)

(* Hash-routing 1e5 sequential keys across 8 shards lands every shard
   within ±10% of the uniform share — the mixer kills the sequential
   structure. *)
let test_hash_balance () =
  let shards = 8 and keys = 100_000 in
  let p = Partitioner.hash ~shards in
  let counts = Array.make shards 0 in
  for k = 0 to keys - 1 do
    let s = Partitioner.route p k in
    counts.(s) <- counts.(s) + 1
  done;
  let share = float_of_int keys /. float_of_int shards in
  Array.iteri
    (fun s c ->
      let dev = Float.abs (float_of_int c -. share) /. share in
      Alcotest.(check bool)
        (Printf.sprintf "shard %d within 10%% of uniform (%d keys, %.1f%%)" s c
           (100.0 *. dev))
        true (dev <= 0.10))
    counts

(* Range routing is monotone, hits every shard, owns exact boundaries,
   and clamps strays outside [min_key, min_key + keys). *)
let test_range_boundaries () =
  let shards = 4 and min_key = 100 and keys = 1_000 in
  let p = Partitioner.range ~shards ~min_key ~keys in
  Alcotest.(check int) "first key on shard 0" 0
    (Partitioner.route p min_key);
  Alcotest.(check int) "last key on last shard" (shards - 1)
    (Partitioner.route p (min_key + keys - 1));
  Alcotest.(check int) "below-range clamps to 0" 0
    (Partitioner.route p (min_key - 50));
  Alcotest.(check int) "above-range clamps to last" (shards - 1)
    (Partitioner.route p (min_key + keys + 50));
  (* exact slice edges: key min+off owns shard off*shards/keys *)
  List.iter
    (fun (off, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "offset %d on shard %d" off expect)
        expect
        (Partitioner.route p (min_key + off)))
    [ (0, 0); (249, 0); (250, 1); (499, 1); (500, 2); (749, 2); (750, 3) ];
  let prev = ref 0 in
  let seen = Array.make shards false in
  for k = min_key to min_key + keys - 1 do
    let s = Partitioner.route p k in
    Alcotest.(check bool) "monotone in key" true (s >= !prev);
    prev := s;
    seen.(s) <- true
  done;
  Alcotest.(check bool) "every shard owns keys" true
    (Array.for_all Fun.id seen)

(* Routing is a pure function of the key: any key routes to the same
   shard every time, inside the shard count, for both kinds. *)
let prop_route_consistent =
  QCheck.Test.make ~count:500 ~name:"partitioner route pure and in range"
    QCheck.(triple (int_range 1 16) (int_range 0 1) (int_range (-500) 5_000))
    (fun (shards, kind, key) ->
      let p =
        if kind = 0 then Partitioner.hash ~shards
        else Partitioner.range ~shards ~min_key:0 ~keys:(Stdlib.max shards 1_000)
      in
      let s = Partitioner.route p key in
      s >= 0 && s < shards && s = Partitioner.route p key)

(* ------------------------------------------------------------------ *)
(* Hotspot key distribution: empirical 80/20                           *)
(* ------------------------------------------------------------------ *)

let test_hotspot_mass () =
  let keys = 1_000 and draws = 100_000 in
  let gen =
    Workload.generator (Workload.hotspot ~keys)
      ~rng:(Rng.create ~seed:7) ~client:0
  in
  let hot = ref 0 in
  for _ = 1 to draws do
    let key =
      match Workload.next_op gen ~now_ms:0.0 with
      | Command.Put (k, _) | Command.Delete k | Command.Get k -> k
    in
    Alcotest.(check bool) "key in range" true (key >= 0 && key < keys);
    if key < keys / 5 then incr hot
  done;
  let mass = float_of_int !hot /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "80%% of draws on first 20%% of keys (got %.3f)" mass)
    true
    (Float.abs (mass -. 0.8) < 0.01)

(* ------------------------------------------------------------------ *)
(* Arrival processes                                                   *)
(* ------------------------------------------------------------------ *)

(* Poisson inter-arrival gaps at 1000 rps: mean 1ms, and the
   exponential signature var = mean^2. *)
let test_poisson_gaps () =
  let rng = Rng.create ~seed:11 in
  let arrival = Arrival.Open { rate_per_sec = 1_000.0 } in
  let n = 100_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = Arrival.next_gap_ms arrival ~rng ~now_ms:0.0 in
    Alcotest.(check bool) "gap non-negative" true (g >= 0.0);
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap 1ms (got %.4f)" mean)
    true
    (Float.abs (mean -. 1.0) < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "exponential variance = mean^2 (got %.4f)" var)
    true
    (Float.abs (var -. (mean *. mean)) < 0.05)

(* K independent Poisson clocks of rate r merge into ~K*r arrivals per
   second — the additivity the sharded open-loop clients rely on. *)
let test_poisson_additivity () =
  let k = 4 and rate = 250.0 and horizon = 10_000.0 in
  let total = ref 0 in
  for i = 0 to k - 1 do
    let rng = Rng.create ~seed:(100 + i) in
    let arrival = Arrival.Open { rate_per_sec = rate } in
    let now = ref 0.0 in
    while !now < horizon do
      now := !now +. Arrival.next_gap_ms arrival ~rng ~now_ms:!now;
      if !now < horizon then incr total
    done
  done;
  let expected = float_of_int k *. rate *. (horizon /. 1_000.0) in
  let dev = Float.abs (float_of_int !total -. expected) /. expected in
  Alcotest.(check bool)
    (Printf.sprintf "merged rate additive (%d arrivals, %.1f%% off)" !total
       (100.0 *. dev))
    true (dev < 0.03)

(* Bursty arrivals stay inside the on-windows (phase anchored at t=0)
   and still deliver the configured average rate. *)
let test_bursty_windows () =
  let on_ms = 50.0 and off_ms = 150.0 and rate = 1_000.0 in
  let arrival = Arrival.Bursty { rate_per_sec = rate; on_ms; off_ms } in
  let cycle = on_ms +. off_ms in
  let rng = Rng.create ~seed:13 in
  let horizon = 20_000.0 in
  let now = ref 0.0 and count = ref 0 in
  while !now < horizon do
    now := !now +. Arrival.next_gap_ms arrival ~rng ~now_ms:!now;
    if !now < horizon then begin
      incr count;
      let pos = Float.rem !now cycle in
      Alcotest.(check bool)
        (Printf.sprintf "arrival at %.3f inside an on-window" !now)
        true
        (pos <= on_ms +. 1e-9)
    end
  done;
  let expected = rate *. (horizon /. 1_000.0) in
  let dev = Float.abs (float_of_int !count -. expected) /. expected in
  Alcotest.(check bool)
    (Printf.sprintf "on/off average rate preserved (%d arrivals, %.1f%% off)"
       !count (100.0 *. dev))
    true (dev < 0.05)

(* ------------------------------------------------------------------ *)
(* shards = 1 is byte-identical to the unsharded runner                *)
(* ------------------------------------------------------------------ *)

let identity_spec sharding =
  let config = { (Config.default ~n_replicas:5) with Config.seed = 88 } in
  let spec =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:1_000.0 ~config
      ~topology:(Topology.lan ~n_replicas:5 ())
      ?sharding
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:6 Workload.default ]
      ()
  in
  Runner.run (Paxi_protocols.Registry.find_exn "paxos") spec

(* A 1-shard hash deployment replays the classic single-cluster event
   stream draw-for-draw: same completions, same latency samples, same
   simulator event count — plus a fixed pin so cross-PR drift of the
   legacy stream itself is caught even if both paths drift together. *)
let test_k1_identity () =
  let legacy = identity_spec None in
  let sharded =
    identity_spec (Some { Runner.shards = 1; partition = `Hash })
  in
  Alcotest.(check int) "sim_events identical" legacy.Runner.sim_events
    sharded.Runner.sim_events;
  Alcotest.(check int) "completions identical" legacy.Runner.completed
    sharded.Runner.completed;
  Alcotest.(check bool) "latency samples identical" true
    (Stats.samples legacy.Runner.latency = Stats.samples sharded.Runner.latency);
  Alcotest.(check (float 0.0)) "throughput identical"
    legacy.Runner.throughput_rps sharded.Runner.throughput_rps;
  Alcotest.(check int) "legacy stream pinned" 143_824 legacy.Runner.sim_events;
  Alcotest.(check int) "single shard stat mirrors aggregate" 1
    (Array.length sharded.Runner.shard_stats);
  Alcotest.(check int) "shard 0 owns every in-window completion"
    (Stats.count sharded.Runner.latency)
    sharded.Runner.shard_stats.(0).Runner.shard_completed

(* ------------------------------------------------------------------ *)
(* K = 4 end-to-end smoke                                              *)
(* ------------------------------------------------------------------ *)

let sharded_spec ~partition ~workload ~arrival =
  let config = { (Config.default ~n_replicas:3) with Config.seed = 91 } in
  Runner.spec ~warmup_ms:200.0 ~duration_ms:1_000.0 ~config
    ~topology:(Topology.lan ~n_replicas:3 ())
    ~sharding:{ Runner.shards = 4; partition }
    ~check_consensus:true
    ~client_specs:[ Runner.clients ~target:(Runner.Fixed 0) ~arrival ~count:4 workload ]
    ()

let test_k4_smoke () =
  let result =
    Runner.run
      (Paxi_protocols.Registry.find_exn "paxos")
      (sharded_spec ~partition:`Hash ~workload:Workload.default
         ~arrival:(Runner.Open { rate_per_sec = 500.0 }))
  in
  Alcotest.(check int) "four shard series" 4
    (Array.length result.Runner.shard_stats);
  Alcotest.(check bool) "work completed" true (result.Runner.completed > 500);
  Alcotest.(check int) "consensus clean across groups" 0
    (List.length result.Runner.consensus_violations);
  let in_window = Stats.count result.Runner.latency in
  let summed =
    Array.fold_left
      (fun a s -> a + s.Runner.shard_completed)
      0 result.Runner.shard_stats
  in
  Alcotest.(check int) "shard series partition the window" in_window summed;
  Array.iteri
    (fun s st ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d served requests" s)
        true
        (st.Runner.shard_completed > 0))
    result.Runner.shard_stats

(* Hotspot keys under range partitioning pile onto shard 0 (keys
   0..249 of 1000 own the 80% mass): the imbalance the shard sweep
   charts, visible even in a short run. *)
let test_k4_range_hotspot_imbalance () =
  let result =
    Runner.run
      (Paxi_protocols.Registry.find_exn "paxos")
      (sharded_spec ~partition:`Range ~workload:(Workload.hotspot ~keys:1000)
         ~arrival:(Runner.Open { rate_per_sec = 500.0 }))
  in
  let c s = result.Runner.shard_stats.(s).Runner.shard_completed in
  for s = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "hot shard outweighs shard %d (%d vs %d)" s (c 0) (c s))
      true
      (c 0 > 2 * c s)
  done

let suite =
  ( "shard",
    [
      Alcotest.test_case "hash balance at 1e5 keys" `Quick test_hash_balance;
      Alcotest.test_case "range boundaries and clamping" `Quick
        test_range_boundaries;
      QCheck_alcotest.to_alcotest prop_route_consistent;
      Alcotest.test_case "hotspot 80/20 mass" `Quick test_hotspot_mass;
      Alcotest.test_case "poisson gap statistics" `Quick test_poisson_gaps;
      Alcotest.test_case "poisson K-stream additivity" `Quick
        test_poisson_additivity;
      Alcotest.test_case "bursty on-window containment" `Quick
        test_bursty_windows;
      Alcotest.test_case "shards=1 byte-identity pin" `Slow test_k1_identity;
      Alcotest.test_case "K=4 sharded smoke" `Slow test_k4_smoke;
      Alcotest.test_case "K=4 range hotspot imbalance" `Slow
        test_k4_range_hotspot_imbalance;
    ] )
