(* Pin the property-test seed unless the caller overrides it: fault
   plans and other generated cases are reproducible run-to-run. *)
let () =
  if Sys.getenv_opt "QCHECK_SEED" = None then Unix.putenv "QCHECK_SEED" "20190630"

let () =
  Alcotest.run "paxi"
    [
      Test_rng.suite;
      Test_event_queue.suite;
      Test_sim.suite;
      Test_stats.suite;
      Test_dist.suite;
      Test_net.suite;
      Test_transport.suite;
      Test_quorum.suite;
      Test_store.suite;
      Test_paxos.suite;
      Test_raft.suite;
      Test_epaxos.suite;
      Test_wpaxos.suite;
      Test_wankeeper.suite;
      Test_vpaxos.suite;
      Test_linearizability.suite;
      Test_consensus_check.suite;
      Test_workload.suite;
      Test_model.suite;
      Test_integration.suite;
      Test_misc.suite;
      Test_group.suite;
      Test_fault_properties.suite;
      Test_extra_protocols.suite;
      Test_json.suite;
      Test_cluster.suite;
      Test_exec.suite;
      Test_reliable.suite;
      Test_nemesis.suite;
      Test_hotpath.suite;
      Test_obs.suite;
      Test_read_oracle.suite;
      Test_read_path.suite;
      Test_relay.suite;
      Test_shard.suite;
      Test_storage.suite;
    ]
