let ids n = List.init n Fun.id

let test_thresholds () =
  Alcotest.(check int) "majority 9" 5 (Quorum.majority_threshold 9);
  Alcotest.(check int) "majority 5" 3 (Quorum.majority_threshold 5);
  Alcotest.(check int) "majority 4" 3 (Quorum.majority_threshold 4);
  Alcotest.(check int) "fast 5" 4 (Quorum.fast_threshold 5);
  Alcotest.(check int) "fast 9" 7 (Quorum.fast_threshold 9)

let test_majority_tracker () =
  let t = Quorum.create (Quorum.Majority (ids 5)) in
  Quorum.ack t 0;
  Quorum.ack t 1;
  Alcotest.(check bool) "2/5 not yet" false (Quorum.satisfied t);
  Quorum.ack t 2;
  Alcotest.(check bool) "3/5 satisfied" true (Quorum.satisfied t)

let test_duplicate_acks_ignored () =
  let t = Quorum.create (Quorum.Majority (ids 5)) in
  Quorum.ack t 0;
  Quorum.ack t 0;
  Quorum.ack t 0;
  Alcotest.(check bool) "still 1 ack" false (Quorum.satisfied t);
  Alcotest.(check int) "acks" 1 (List.length (Quorum.acks t))

let test_unknown_voter_ignored () =
  let t = Quorum.create (Quorum.Majority [ 0; 1; 2 ]) in
  Quorum.ack t 9;
  Alcotest.(check int) "ignored" 0 (List.length (Quorum.acks t))

let test_rejected () =
  let t = Quorum.create (Quorum.Majority (ids 3)) in
  Quorum.nack t 0;
  Alcotest.(check bool) "1 nack of 3 not fatal" false (Quorum.rejected t);
  Quorum.nack t 1;
  Alcotest.(check bool) "2 nacks fatal" true (Quorum.rejected t)

let test_count_quorum () =
  let t = Quorum.create (Quorum.Count { members = ids 9; threshold = 3 }) in
  Quorum.ack t 0;
  Quorum.ack t 5;
  Alcotest.(check bool) "2/3" false (Quorum.satisfied t);
  Quorum.ack t 8;
  Alcotest.(check bool) "3/3" true (Quorum.satisfied t)

let test_fast_quorum () =
  let t = Quorum.create (Quorum.Fast (ids 5)) in
  List.iter (Quorum.ack t) [ 0; 1; 2 ];
  Alcotest.(check bool) "3/4 needed" false (Quorum.satisfied t);
  Quorum.ack t 3;
  Alcotest.(check bool) "4 acks" true (Quorum.satisfied t)

let test_zones_majority () =
  (* 3 zones of 3; need majority in 2 zones *)
  let zones = [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7; 8 ] ] in
  let t =
    Quorum.create (Quorum.Zones { zones; need_zones = 2; per_zone = Quorum.Per_zone_majority })
  in
  List.iter (Quorum.ack t) [ 0; 1 ];
  Alcotest.(check bool) "one zone only" false (Quorum.satisfied t);
  Quorum.ack t 3;
  Alcotest.(check bool) "second zone partial" false (Quorum.satisfied t);
  Quorum.ack t 4;
  Alcotest.(check bool) "two zone majorities" true (Quorum.satisfied t)

let test_zones_all () =
  (* grid row: all of one zone *)
  let zones = [ [ 0; 1 ]; [ 2; 3 ] ] in
  let t =
    Quorum.create (Quorum.Zones { zones; need_zones = 1; per_zone = Quorum.Per_zone_all })
  in
  Quorum.ack t 0;
  Alcotest.(check bool) "half a row" false (Quorum.satisfied t);
  Quorum.ack t 1;
  Alcotest.(check bool) "full row" true (Quorum.satisfied t)

(* Relay aggregation leans on the tracker staying O(1) per vote at
   big n — one flag-byte read/write, no list scan. At n = 81 the
   tracker must count an exact majority (41 of 81), ignore duplicates
   and strays, and reset clean for slot reuse. *)
let test_majority_n81 () =
  Alcotest.(check int) "majority of 81" 41
    (Quorum.min_size (Quorum.Majority (ids 81)));
  let t = Quorum.create (Quorum.Majority (ids 81)) in
  for i = 0 to 39 do
    Quorum.ack t (2 * i);
    Quorum.ack t (2 * i) (* duplicate vote must not double-count *)
  done;
  Quorum.ack t 200 (* stray id outside the membership *);
  Alcotest.(check bool) "40/81 not yet" false (Quorum.satisfied t);
  Alcotest.(check int) "40 distinct acks" 40 (List.length (Quorum.acks t));
  Quorum.ack t 79;
  Alcotest.(check bool) "41/81 satisfied" true (Quorum.satisfied t);
  Quorum.reset t;
  Alcotest.(check bool) "reset clears" false (Quorum.satisfied t);
  for i = 0 to 80 do
    Quorum.ack t i
  done;
  Alcotest.(check bool) "all 81 after reset" true (Quorum.satisfied t);
  Alcotest.(check int) "81 acks" 81 (List.length (Quorum.acks t))

let test_reset () =
  let t = Quorum.create (Quorum.Majority (ids 3)) in
  List.iter (Quorum.ack t) [ 0; 1 ];
  Quorum.reset t;
  Alcotest.(check bool) "reset" false (Quorum.satisfied t)

let test_min_size () =
  Alcotest.(check int) "majority 9" 5 (Quorum.min_size (Quorum.Majority (ids 9)));
  Alcotest.(check int) "count" 3
    (Quorum.min_size (Quorum.Count { members = ids 9; threshold = 3 }));
  Alcotest.(check int) "zones" 4
    (Quorum.min_size
       (Quorum.Zones
          {
            zones = [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7; 8 ] ];
            need_zones = 2;
            per_zone = Quorum.Per_zone_majority;
          }))

let test_minimal_quorums_majority () =
  let qs = Quorum.minimal_quorums (Quorum.Majority (ids 3)) in
  Alcotest.(check int) "C(3,2)" 3 (List.length qs);
  List.iter (fun q -> Alcotest.(check int) "size 2" 2 (List.length q)) qs

let test_majority_intersects_itself () =
  let spec = Quorum.Majority (ids 5) in
  Alcotest.(check bool) "intersects" true (Quorum.intersects spec spec)

let test_fpaxos_intersection () =
  (* q1 of size n-q2+1 intersects q2 of size q2 *)
  let n = 9 in
  List.iter
    (fun q2 ->
      let q1 = Quorum.Count { members = ids n; threshold = n - q2 + 1 } in
      let q2s = Quorum.Count { members = ids n; threshold = q2 } in
      Alcotest.(check bool)
        (Printf.sprintf "q2=%d" q2)
        true (Quorum.intersects q1 q2s))
    [ 1; 2; 3; 4; 5 ]

let test_too_small_quorums_do_not_intersect () =
  let spec = Quorum.Count { members = ids 9; threshold = 3 } in
  Alcotest.(check bool) "3+3 of 9 can miss" false (Quorum.intersects spec spec)

let test_wpaxos_grid_intersection () =
  (* q1: majority in Z - fz zones; q2: majority in fz + 1 zones *)
  let zones = [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7; 8 ] ] in
  List.iter
    (fun fz ->
      let q1 =
        Quorum.Zones { zones; need_zones = 3 - fz; per_zone = Quorum.Per_zone_majority }
      in
      let q2 =
        Quorum.Zones { zones; need_zones = fz + 1; per_zone = Quorum.Per_zone_majority }
      in
      Alcotest.(check bool)
        (Printf.sprintf "fz=%d" fz)
        true (Quorum.intersects q1 q2))
    [ 0; 1; 2 ]

let test_grid_row_column_intersection () =
  let rows = [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] in
  let cols = [ [ 0; 3 ]; [ 1; 4 ]; [ 2; 5 ] ] in
  let row_q = Quorum.Zones { zones = rows; need_zones = 1; per_zone = Quorum.Per_zone_all } in
  let col_q = Quorum.Zones { zones = cols; need_zones = 1; per_zone = Quorum.Per_zone_all } in
  Alcotest.(check bool) "row x column" true (Quorum.intersects row_q col_q)

let prop_majority_pairs_intersect =
  QCheck.Test.make ~name:"any two majorities intersect" ~count:100
    QCheck.(int_range 1 11)
    (fun n ->
      let spec = Quorum.Majority (ids n) in
      Quorum.intersects spec spec)

let prop_is_quorum_matches_tracker =
  QCheck.Test.make ~name:"is_quorum agrees with tracker" ~count:200
    QCheck.(pair (int_range 1 9) (list_of_size (QCheck.Gen.int_range 0 9) (int_range 0 8)))
    (fun (n, acks) ->
      let spec = Quorum.Majority (ids n) in
      let t = Quorum.create spec in
      List.iter (Quorum.ack t) acks;
      Quorum.satisfied t = Quorum.is_quorum spec (Quorum.acks t))

let suite =
  ( "quorum",
    [
      Alcotest.test_case "thresholds" `Quick test_thresholds;
      Alcotest.test_case "majority tracker" `Quick test_majority_tracker;
      Alcotest.test_case "duplicate acks ignored" `Quick test_duplicate_acks_ignored;
      Alcotest.test_case "unknown voter ignored" `Quick test_unknown_voter_ignored;
      Alcotest.test_case "rejected" `Quick test_rejected;
      Alcotest.test_case "count quorum" `Quick test_count_quorum;
      Alcotest.test_case "fast quorum" `Quick test_fast_quorum;
      Alcotest.test_case "zones majority" `Quick test_zones_majority;
      Alcotest.test_case "zones all (grid row)" `Quick test_zones_all;
      Alcotest.test_case "majority tracker at n=81" `Quick test_majority_n81;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "min_size" `Quick test_min_size;
      Alcotest.test_case "minimal quorums of majority" `Quick test_minimal_quorums_majority;
      Alcotest.test_case "majority self-intersection" `Quick test_majority_intersects_itself;
      Alcotest.test_case "fpaxos q1/q2 intersection" `Quick test_fpaxos_intersection;
      Alcotest.test_case "small quorums don't intersect" `Quick test_too_small_quorums_do_not_intersect;
      Alcotest.test_case "wpaxos flexible grid intersection" `Quick test_wpaxos_grid_intersection;
      Alcotest.test_case "grid row/column intersection" `Quick test_grid_row_column_intersection;
      QCheck_alcotest.to_alcotest prop_majority_pairs_intersect;
      QCheck_alcotest.to_alcotest prop_is_quorum_matches_tracker;
    ] )
