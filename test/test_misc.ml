(* Mseries, Report, Registry, Group *)

open Paxi_benchmark

let test_mseries_counting () =
  let m = Mseries.create ~window_ms:100.0 in
  Mseries.record m ~now_ms:10.0;
  Mseries.record m ~now_ms:50.0;
  Mseries.record m ~now_ms:150.0;
  Mseries.record_n m ~now_ms:250.0 ~n:3;
  Alcotest.(check int) "total" 6 (Mseries.total m);
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets"
    [ (0.0, 2); (100.0, 1); (200.0, 3) ]
    (Mseries.buckets m)

let test_mseries_rate () =
  let m = Mseries.create ~window_ms:100.0 in
  for i = 0 to 9 do
    Mseries.record m ~now_ms:(float_of_int i *. 100.0)
  done;
  (* 10 events over 1 second *)
  Alcotest.(check (float 1e-9)) "rate" 10.0
    (Mseries.rate_per_sec m ~from_ms:0.0 ~until_ms:1000.0);
  Alcotest.(check (float 1e-9)) "partial window" 10.0
    (Mseries.rate_per_sec m ~from_ms:0.0 ~until_ms:500.0);
  Alcotest.(check (float 0.0)) "empty interval" 0.0
    (Mseries.rate_per_sec m ~from_ms:100.0 ~until_ms:100.0)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_report_table () =
  let out =
    Format.asprintf "%t" (fun ppf ->
        Report.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ] ppf)
  in
  Alcotest.(check bool) "has rule" true (String.contains out '-');
  Alcotest.(check bool) "contains cells" true
    (contains out "333" && contains out "bb")

let test_report_csv () =
  Alcotest.(check string) "csv" "a,b\n1,2\n"
    (Report.csv ~header:[ "a"; "b" ] ~rows:[ [ "1"; "2" ] ])

let test_report_csv_quoting () =
  (* RFC 4180: cells containing separators, quotes or newlines are
     quoted; embedded quotes double *)
  Alcotest.(check string) "quoted cells"
    "\"a,b\",plain\n\"say \"\"hi\"\"\",\"line\nbreak\"\n"
    (Report.csv
       ~header:[ "a,b"; "plain" ]
       ~rows:[ [ "say \"hi\""; "line\nbreak" ] ])

let test_report_csv_roundtrip () =
  let rows =
    [
      [ "plain"; "with,comma"; "with \"quote\"" ];
      [ "line\nbreak"; "trailing space "; "" ];
      [ "crlf\r\npair"; ","; "\"" ];
    ]
  in
  let header = [ "h1"; "h,2"; "h\"3" ] in
  Alcotest.(check (list (list string)))
    "round trip" (header :: rows)
    (Report.csv_parse (Report.csv ~header ~rows))

let prop_csv_roundtrip =
  let cell_gen =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; '\r'; ' ' ])
        (int_range 0 8))
  in
  QCheck.Test.make ~name:"csv round-trips arbitrary cells" ~count:300
    QCheck.(
      list_of_size
        (Gen.int_range 1 5)
        (list_of_size (Gen.int_range 1 5) (make cell_gen)))
    (fun rows ->
      match rows with
      | [] -> true
      | header :: body ->
          (* csv requires rows to match header width; pad/trim *)
          let w = List.length header in
          let body =
            List.map
              (fun r ->
                let r = List.filteri (fun i _ -> i < w) r in
                r @ List.init (w - List.length r) (fun _ -> ""))
              body
          in
          Report.csv_parse (Report.csv ~header ~rows:body) = header :: body)

let test_report_formats () =
  Alcotest.(check string) "ms" "1.235" (Report.fms 1.2351);
  Alcotest.(check string) "nan" "-" (Report.fms nan);
  Alcotest.(check string) "inf" "-" (Report.fms infinity);
  Alcotest.(check string) "rate" "1235" (Report.frate 1234.6)

let test_registry () =
  Alcotest.(check int) "ten protocols" 10 (List.length Paxi_protocols.Registry.all);
  Alcotest.(check bool) "finds paxos" true
    (Paxi_protocols.Registry.find "paxos" <> None);
  Alcotest.(check bool) "misses unknown" true
    (Paxi_protocols.Registry.find "zab" = None);
  List.iter
    (fun name ->
      let (module P) = Paxi_protocols.Registry.find_exn name in
      Alcotest.(check string) "name matches" name P.name)
    Paxi_protocols.Registry.names

let test_registry_find_exn_raises () =
  match Paxi_protocols.Registry.find_exn "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  ( "misc",
    [
      Alcotest.test_case "mseries counting" `Quick test_mseries_counting;
      Alcotest.test_case "mseries rate" `Quick test_mseries_rate;
      Alcotest.test_case "report table" `Quick test_report_table;
      Alcotest.test_case "report csv" `Quick test_report_csv;
      Alcotest.test_case "report csv quoting" `Quick test_report_csv_quoting;
      Alcotest.test_case "report csv roundtrip" `Quick test_report_csv_roundtrip;
      QCheck_alcotest.to_alcotest prop_csv_roundtrip;
      Alcotest.test_case "report formats" `Quick test_report_formats;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "registry find_exn" `Quick test_registry_find_exn_raises;
    ] )
