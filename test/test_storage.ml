(* Stable storage and crash recovery (PR 10): device semantics
   (durability at fsync completion, group commit, crash losing the
   unsynced tail), the timer ownership registry, slot-log truncation,
   executor snapshot images, raft threshold snapshots and
   InstallSnapshot catch-up, fixed-seed crash-recover pins for
   paxos/raft, and the sync=none byte-identity pin. *)

open Paxi_benchmark
module Schedule = Paxi_nemesis.Schedule
module Trial = Paxi_nemesis.Trial
module Paxos = Paxi_protocols.Paxos
module Raft = Paxi_protocols.Raft

let durable_every =
  { Storage.default_config with Storage.sync_mode = Storage.Sync_every }

let durable_with ?(threshold = 0) mode =
  {
    Storage.default_config with
    Storage.sync_mode = mode;
    snapshot_threshold = threshold;
  }

(* ------------------------------------------------------------------ *)
(* Storage device                                                      *)
(* ------------------------------------------------------------------ *)

let make_storage ?(mode = Storage.Sync_every) () =
  let sim = Sim.create ~seed:1 () in
  let st =
    Storage.create
      ~config:(durable_with mode)
      ~sim
      ~schedule:(fun delay k -> ignore (Sim.schedule_after sim ~delay k))
      ~rng_parent:(Rng.create ~seed:2)
  in
  (sim, st)

let cmd id = Command.make ~id ~client:0 (Command.Put (id, id))
let entry id = { Storage.a = 1; b = 0; cmd = cmd id }

let test_durable_only_at_fsync_completion () =
  let sim, st = make_storage () in
  let acked = ref false in
  Storage.write st (Storage.Reg (0, 7));
  Storage.write st (Storage.Entry (0, entry 0));
  Storage.sync st (fun () -> acked := true);
  (* nothing is durable, and no ack has fired, before the device
     finishes the fsync *)
  Alcotest.(check bool) "ack waits for the device" false !acked;
  Alcotest.(check int) "register not durable yet" 0 (Storage.reg st 0);
  Alcotest.(check int) "entry not durable yet" 0 (Storage.durable_entries st);
  Sim.run_until sim 10.0;
  Alcotest.(check bool) "ack after fsync completion" true !acked;
  Alcotest.(check int) "register durable" 7 (Storage.reg st 0);
  Alcotest.(check int) "entry durable" 1 (Storage.durable_entries st);
  Alcotest.(check int) "one fsync" 1 (Storage.fsyncs st)

let test_crash_loses_unsynced_tail () =
  let sim, st = make_storage () in
  let acked = ref false in
  Storage.write st (Storage.Reg (0, 3));
  Storage.sync st (fun () -> acked := true);
  Sim.run_until sim 10.0;
  Alcotest.(check int) "first write durable" 3 (Storage.reg st 0);
  (* a second write crashes before its fsync completes: the durable
     image keeps the old value, the continuation never runs, and the
     loss is counted *)
  let late = ref false in
  Storage.write st (Storage.Reg (0, 9));
  Storage.write st (Storage.Entry (0, entry 0));
  Storage.sync st (fun () -> late := true);
  Storage.crash st;
  Sim.run_until sim 20.0;
  Alcotest.(check bool) "stale completion suppressed" false !late;
  Alcotest.(check int) "register kept the durable value" 3 (Storage.reg st 0);
  Alcotest.(check int) "entry lost with the tail" 0 (Storage.durable_entries st);
  Alcotest.(check bool) "losses counted" true (Storage.lost_writes st >= 2);
  Alcotest.(check bool) "ack survived from before" true !acked

let test_batched_group_commit () =
  let sim, st = make_storage ~mode:Storage.Sync_batched () in
  let acks = ref 0 in
  for i = 0 to 2 do
    Storage.write st (Storage.Entry (i, entry i));
    Storage.sync st (fun () -> incr acks)
  done;
  Sim.run_until sim 10.0;
  (* three syncs inside one open window share a single fsync *)
  Alcotest.(check int) "one group-commit fsync" 1 (Storage.fsyncs st);
  Alcotest.(check int) "all three acks fired" 3 !acks;
  Alcotest.(check int) "all three durable" 3 (Storage.durable_entries st)

let test_sync_none_is_synchronous () =
  let sim, st = make_storage ~mode:Storage.Sync_none () in
  let acked = ref false in
  Storage.persist st [ Storage.Reg (0, 5) ] (fun () -> acked := true);
  (* no events, no clock movement, durable immediately *)
  Alcotest.(check bool) "ack ran inline" true !acked;
  Alcotest.(check int) "durable immediately" 5 (Storage.reg st 0);
  Alcotest.(check int) "no fsyncs" 0 (Storage.fsyncs st);
  Alcotest.(check (float 0.0)) "clock untouched" 0.0 (Sim.now sim)

let test_snapshot_truncate_and_replay_cost () =
  let sim, st = make_storage () in
  for i = 0 to 9 do
    Storage.write st (Storage.Entry (i, entry i))
  done;
  Storage.sync st ignore;
  Sim.run_until sim 10.0;
  let full_replay = Storage.replay_cost_ms st in
  Alcotest.(check bool) "replay scales with the log" true (full_replay > 0.0);
  Storage.write st (Storage.Snapshot (6, 1, [| cmd 0 |]));
  Storage.write st (Storage.Truncate 6);
  Storage.sync st ignore;
  Sim.run_until sim 20.0;
  Alcotest.(check int) "base rose to the snapshot" 6 (Storage.log_base st);
  Alcotest.(check int) "retained suffix" 4 (Storage.durable_entries st);
  (match Storage.snapshot st with
  | Some (last, term, image) ->
      Alcotest.(check int) "snapshot frontier" 6 last;
      Alcotest.(check int) "snapshot term" 1 term;
      Alcotest.(check int) "image length" 1 (Array.length image)
  | None -> Alcotest.fail "snapshot not durable");
  let seen = ref [] in
  Storage.iter_entries st ~f:(fun slot _ -> seen := slot :: !seen);
  Alcotest.(check (list int)) "iterates the retained suffix in order"
    [ 6; 7; 8; 9 ] (List.rev !seen);
  Alcotest.(check bool) "truncation cut the replay bill" true
    (Storage.replay_cost_ms st < full_replay)

(* ------------------------------------------------------------------ *)
(* Timer ownership registry                                            *)
(* ------------------------------------------------------------------ *)

let test_timers_cancel_all () =
  let sim = Sim.create ~seed:1 () in
  let tm = Timers.create sim in
  let fired = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Timers.track tm (Sim.schedule_after sim ~delay:10.0 (fun () -> incr fired)))
  done;
  Alcotest.(check int) "five live" 5 (Timers.live_count tm);
  Timers.cancel_all tm;
  Sim.run_until sim 100.0;
  Alcotest.(check int) "none fired" 0 !fired;
  Alcotest.(check int) "five cancelled" 5 (Timers.cancelled_total tm);
  Alcotest.(check int) "registry empty" 0 (Timers.live_count tm)

let test_timers_generation_guard () =
  (* Regression: a tracked handle whose event already fired must go
     stale — if the heap slot is reused by a fresh (untracked) event,
     a later crash-edge [cancel_all] must not shoot it down. The
     simulator's (generation, slot) handles carry the guard; this
     pins it through the registry. *)
  let sim = Sim.create ~seed:1 () in
  let tm = Timers.create sim in
  ignore (Timers.track tm (Sim.schedule_after sim ~delay:1.0 ignore));
  Sim.run_until sim 5.0;
  (* the tracked event fired; new untracked events may reuse its slot *)
  let fresh_fired = ref 0 in
  for _ = 1 to 8 do
    ignore (Sim.schedule_after sim ~delay:10.0 (fun () -> incr fresh_fired))
  done;
  Timers.cancel_all tm;
  Alcotest.(check int) "stale handle not cancelled" 0
    (Timers.cancelled_total tm);
  Sim.run_until sim 100.0;
  Alcotest.(check int) "untracked events untouched" 8 !fresh_fired

(* ------------------------------------------------------------------ *)
(* Slot-log truncation                                                 *)
(* ------------------------------------------------------------------ *)

let test_slot_log_truncate () =
  let log = Slot_log.create () in
  for i = 0 to 9 do
    Slot_log.set log i i
  done;
  Slot_log.truncate log ~upto:5;
  Alcotest.(check int) "base rose" 5 (Slot_log.base log);
  Alcotest.(check int) "next_slot unchanged" 10 (Slot_log.next_slot log);
  Alcotest.(check (option int)) "discarded slot reads None" None
    (Slot_log.get log 3);
  Alcotest.(check (option int)) "retained slot survives" (Some 7)
    (Slot_log.get log 7);
  Alcotest.(check bool) "frontier at least the base" true
    (Slot_log.exec_frontier log >= 5);
  (* writes below the base are ignored, and truncation never regresses *)
  Slot_log.set log 2 99;
  Alcotest.(check (option int)) "set below base ignored" None
    (Slot_log.get log 2);
  Slot_log.truncate log ~upto:3;
  Alcotest.(check int) "truncate below base is a no-op" 5 (Slot_log.base log);
  let seen = ref [] in
  Slot_log.iter_filled log ~f:(fun i _ -> seen := i :: !seen);
  Alcotest.(check (list int)) "iter covers the retained suffix"
    [ 5; 6; 7; 8; 9 ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Executor snapshot images                                            *)
(* ------------------------------------------------------------------ *)

let test_executor_image_install () =
  let e = Executor.create () in
  let c0 = Command.make ~id:0 ~client:0 (Command.Put (1, 10)) in
  let c1 = Command.make ~id:1 ~client:0 (Command.Put (2, 20)) in
  let c2 = Command.make ~id:2 ~client:1 (Command.Delete 1) in
  List.iter (fun c -> ignore (Executor.execute e c)) [ c0; c1; c2 ];
  ignore (Executor.execute e Command.noop);
  let img = Executor.image e in
  (* no-ops never enter the image *)
  Alcotest.(check int) "image holds the applied prefix" 3 (Array.length img);
  let e' = Executor.create () in
  Executor.install e' img;
  Alcotest.(check int) "replayed count" (Executor.executed_count e)
    (Executor.executed_count e');
  Alcotest.(check bool) "memo table rebuilt" true
    (Executor.already_executed e' c1);
  let read k =
    Executor.read e' (Command.make ~id:99 ~client:9 (Command.Get k))
  in
  Alcotest.(check (option int)) "store value replayed" (Some 20) (read 2);
  Alcotest.(check (option int)) "delete replayed" None (read 1)

(* ------------------------------------------------------------------ *)
(* Fixed-seed crash-recover pins (direct cluster)                      *)
(* ------------------------------------------------------------------ *)

module CP = Cluster.Make (Paxos)
module CR = Cluster.Make (Raft)

(* One closed-loop client with a rotating-target retry loop — enough
   to keep commits flowing across a crash window without the full
   benchmark Runner. *)
let drive ~sim ~submit ~pending ~horizon_ms =
  let completed = ref 0 in
  let next_id = ref 0 in
  let rec issue () =
    if Sim.now sim < horizon_ms -. 200.0 then begin
      let id = !next_id in
      incr next_id;
      let command = Command.make ~id ~client:0 (Command.Put (id mod 7, id)) in
      let rec attempt target =
        submit ~target ~command ~on_reply:(fun _ ->
            incr completed;
            issue ());
        ignore
          (Sim.schedule_after sim ~delay:150.0 (fun () ->
               if pending ~command then attempt ((target + 1) mod 5)))
      in
      attempt 0
    end
  in
  issue ();
  Sim.run_until sim horizon_ms;
  !completed

let crash_leader_schedule =
  [ Schedule.Crash { node = 0; from_ms = 300.0; duration_ms = 600.0 } ]

let consensus_clean name sms =
  let violations =
    Consensus_check.check ~state_machines:sms ~keys:(List.init 7 Fun.id)
  in
  List.iter
    (fun v ->
      Format.printf "%s divergence: %a@." name Consensus_check.pp_violation v)
    violations;
  Alcotest.(check int) (name ^ " consensus clean") 0 (List.length violations)

let test_paxos_crash_recovery_pin () =
  let faults = Faults.create () in
  Schedule.install crash_leader_schedule ~n:5 faults;
  let config =
    {
      (Config.default ~n_replicas:5) with
      Config.seed = 42;
      storage = Some durable_every;
    }
  in
  let cluster =
    CP.create ~faults ~config ~topology:(Topology.lan ~n_replicas:5 ()) ()
  in
  let sim = CP.sim cluster in
  CP.register_client cluster ~id:0 ();
  let completed =
    drive ~sim
      ~submit:(fun ~target ~command ~on_reply ->
        CP.submit cluster ~client:0 ~target ~command ~on_reply)
      ~pending:(fun ~command -> CP.pending cluster ~client:0 ~command)
      ~horizon_ms:3_000.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "progress across the crash (%d)" completed)
    true (completed > 100);
  Alcotest.(check int) "exactly one recovery edge" 1 (CP.recoveries cluster);
  Alcotest.(check bool) "replay time charged" true
    (CP.replay_ms_total cluster > 0.0);
  Alcotest.(check bool) "crash cancelled pending timers" true
    (CP.timers_cancelled cluster > 0);
  let writes, fsyncs, busy, _ = CP.storage_totals cluster in
  Alcotest.(check bool) "storage exercised" true (writes > 0 && fsyncs > 0);
  Alcotest.(check bool) "device time accrued" true (busy > 0.0);
  (* The recovered node 0 lost the leadership it booted with; whoever
     leads at the end re-won it through phase 1 under a strictly
     higher ballot — pause-not-crash would have resumed round 1. *)
  let leaders =
    List.filter
      (fun i -> Paxos.is_leader (CP.replica cluster i))
      (List.init 5 Fun.id)
  in
  Alcotest.(check int) "one stable leader at the end" 1 (List.length leaders);
  let b = Paxos.current_ballot (CP.replica cluster (List.hd leaders)) in
  Alcotest.(check bool)
    (Printf.sprintf "leadership re-won via phase 1 (round %d)" b.Ballot.round)
    true (b.Ballot.round >= 2);
  consensus_clean "paxos crash-recover"
    (List.init 5 (fun i ->
         (i, Executor.state_machine (Paxos.executor (CP.replica cluster i)))))

let test_raft_crash_recovery_pin () =
  let faults = Faults.create () in
  Schedule.install crash_leader_schedule ~n:5 faults;
  let config =
    {
      (Config.default ~n_replicas:5) with
      Config.seed = 42;
      storage = Some durable_every;
    }
  in
  let cluster =
    CR.create ~faults ~config ~topology:(Topology.lan ~n_replicas:5 ()) ()
  in
  let sim = CR.sim cluster in
  CR.register_client cluster ~id:0 ();
  let completed =
    drive ~sim
      ~submit:(fun ~target ~command ~on_reply ->
        CR.submit cluster ~client:0 ~target ~command ~on_reply)
      ~pending:(fun ~command -> CR.pending cluster ~client:0 ~command)
      ~horizon_ms:3_000.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "progress across the crash (%d)" completed)
    true (completed > 100);
  Alcotest.(check int) "exactly one recovery edge" 1 (CR.recoveries cluster);
  Alcotest.(check bool) "replay time charged" true
    (CR.replay_ms_total cluster > 0.0);
  Alcotest.(check bool) "crash cancelled pending timers" true
    (CR.timers_cancelled cluster > 0);
  consensus_clean "raft crash-recover"
    (List.init 5 (fun i ->
         (i, Executor.state_machine (Raft.executor (CR.replica cluster i)))))

(* A follower crashes while the leader compacts its log past the
   follower's durable suffix: catch-up can only happen through
   InstallSnapshot, so converged state machines prove the install and
   truncation paths end to end. *)
let test_raft_snapshot_install () =
  let faults = Faults.create () in
  Schedule.install
    [ Schedule.Crash { node = 4; from_ms = 200.0; duration_ms = 1_500.0 } ]
    ~n:5 faults;
  let config =
    {
      (Config.default ~n_replicas:5) with
      Config.seed = 42;
      storage = Some (durable_with ~threshold:10 Storage.Sync_every);
    }
  in
  let cluster =
    CR.create ~faults ~config ~topology:(Topology.lan ~n_replicas:5 ()) ()
  in
  let sim = CR.sim cluster in
  CR.register_client cluster ~id:0 ();
  let completed =
    drive ~sim
      ~submit:(fun ~target ~command ~on_reply ->
        CR.submit cluster ~client:0 ~target ~command ~on_reply)
      ~pending:(fun ~command -> CR.pending cluster ~client:0 ~command)
      ~horizon_ms:4_000.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "progress (%d)" completed)
    true (completed > 200);
  let leader =
    match
      List.find_opt
        (fun i -> Raft.role (CR.replica cluster i) = Raft.Leader)
        (List.init 5 Fun.id)
    with
    | Some i -> i
    | None -> Alcotest.fail "no raft leader at the end"
  in
  let lr = CR.replica cluster leader in
  Alcotest.(check bool) "leader snapshotted" true (Raft.snapshots_taken lr >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "leader log compacted (base %d)" (Raft.log_base lr))
    true
    (Raft.log_base lr > 0);
  (* the crashed follower's log starts above 0 too: it accepted an
     installed image, not a slot-by-slot replay of the dead prefix *)
  Alcotest.(check bool)
    (Printf.sprintf "follower 4 rebuilt from a snapshot (base %d)"
       (Raft.log_base (CR.replica cluster 4)))
    true
    (Raft.log_base (CR.replica cluster 4) > 0);
  consensus_clean "raft snapshot install"
    (List.init 5 (fun i ->
         (i, Executor.state_machine (Raft.executor (CR.replica cluster i)))))

(* ------------------------------------------------------------------ *)
(* Nemesis oracle pins with durable storage                            *)
(* ------------------------------------------------------------------ *)

let test_trial_durable_crash protocol () =
  let v =
    Trial.run ~durable:durable_every ~protocol ~seed:42 crash_leader_schedule
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s durable crash pin: %s" protocol
       (String.concat "; " v.Trial.reasons))
    true v.Trial.ok;
  Alcotest.(check int) (protocol ^ " one recovery") 1 v.Trial.recoveries;
  Alcotest.(check bool) (protocol ^ " replay charged") true
    (v.Trial.replay_ms_total > 0.0);
  Alcotest.(check bool) (protocol ^ " timers cancelled") true
    (v.Trial.timers_cancelled > 0)

(* ------------------------------------------------------------------ *)
(* sync=none byte-identity pin                                         *)
(* ------------------------------------------------------------------ *)

let identity_result protocol storage =
  let (module P) = Paxi_protocols.Registry.find_exn protocol in
  let config =
    { (Config.default ~n_replicas:5) with Config.seed = 7; storage }
  in
  Runner.run
    (module P)
    (Runner.spec ~warmup_ms:100.0 ~duration_ms:600.0 ~config
       ~topology:(Topology.lan ~n_replicas:5 ())
       ~client_specs:
         [ Runner.clients ~target:Runner.Round_robin ~count:4 Workload.default ]
       ())

let test_sync_none_identity protocol () =
  (* arming the storage layer with sync=none must not perturb the
     fault-free simulation by a single event or draw *)
  let off = identity_result protocol None in
  let none =
    identity_result protocol (Some (durable_with Storage.Sync_none))
  in
  Alcotest.(check bool)
    (protocol ^ " sync=none byte-identical to storage off")
    true
    (off.Runner.throughput_rps = none.Runner.throughput_rps
    && Stats.samples off.Runner.latency = Stats.samples none.Runner.latency
    && off.Runner.sim_events = none.Runner.sim_events
    && off.Runner.messages_sent = none.Runner.messages_sent);
  Alcotest.(check int)
    (protocol ^ " sync=none never fsyncs")
    0 none.Runner.storage_fsyncs

let suite =
  ( "storage",
    [
      Alcotest.test_case "durable at fsync completion" `Quick
        test_durable_only_at_fsync_completion;
      Alcotest.test_case "crash loses unsynced tail" `Quick
        test_crash_loses_unsynced_tail;
      Alcotest.test_case "batched group commit" `Quick test_batched_group_commit;
      Alcotest.test_case "sync=none synchronous" `Quick
        test_sync_none_is_synchronous;
      Alcotest.test_case "snapshot+truncate+replay cost" `Quick
        test_snapshot_truncate_and_replay_cost;
      Alcotest.test_case "timers cancel_all" `Quick test_timers_cancel_all;
      Alcotest.test_case "timers generation guard" `Quick
        test_timers_generation_guard;
      Alcotest.test_case "slot log truncation" `Quick test_slot_log_truncate;
      Alcotest.test_case "executor image/install" `Quick
        test_executor_image_install;
      Alcotest.test_case "paxos crash-recover pin" `Slow
        test_paxos_crash_recovery_pin;
      Alcotest.test_case "raft crash-recover pin" `Slow
        test_raft_crash_recovery_pin;
      Alcotest.test_case "raft snapshot install" `Slow
        test_raft_snapshot_install;
      Alcotest.test_case "trial durable crash paxos" `Slow
        (test_trial_durable_crash "paxos");
      Alcotest.test_case "trial durable crash raft" `Slow
        (test_trial_durable_crash "raft");
      Alcotest.test_case "sync=none identity paxos" `Slow
        (test_sync_none_identity "paxos");
      Alcotest.test_case "sync=none identity raft" `Slow
        (test_sync_none_identity "raft");
    ] )
