(* Adversarial read oracle: seed synthetic histories with the read
   anomalies a broken read path would produce — stale lease reads,
   reordered read/write overlaps, reads served after lease expiry off
   a deposed leader's stale state — and check the linearizability
   checker rejects every one. The protocols' read paths are only as
   trustworthy as this oracle, so the oracle gets its own adversary. *)

open Paxi_benchmark
module L = Linearizability

let op ?(client = 0) ~id ~key kind ~from ~until =
  {
    L.client;
    op_id = id;
    key;
    kind;
    invoked_ms = from;
    responded_ms = until;
  }

let write ?client ~id ~key v ~from ~until =
  op ?client ~id ~key (L.Write v) ~from ~until

let read ?client ~id ~key v ~from ~until =
  op ?client ~id ~key (L.Read v) ~from ~until

let anomalies history = List.length (L.check history)

let check_rejected name history =
  Alcotest.(check bool)
    (name ^ " rejected") true
    (anomalies history > 0)

let check_accepted name history =
  let r = L.check history in
  Alcotest.(check int)
    (Printf.sprintf "%s accepted (%s)" name
       (String.concat "; " (List.map (fun a -> a.L.reason) r)))
    0 (List.length r)

(* A lease held too long: w1 and w2 both complete, then a read returns
   w1's value. This is exactly what a deposed leader serves when it
   keeps answering reads after a new leader committed w2 elsewhere. *)
let test_stale_read_rejected () =
  check_rejected "stale read"
    [
      write ~id:0 ~key:1 10 ~from:0.0 ~until:1.0;
      write ~client:1 ~id:0 ~key:1 20 ~from:2.0 ~until:3.0;
      read ~client:2 ~id:0 ~key:1 (Some 10) ~from:4.0 ~until:5.0;
    ]

(* Expired-lease shape with real-looking timing: the old leader's
   lease expires at t=5, a partitioned-away quorum commits 30 at t=6,
   and the old leader still answers 10 at t=8. The checker cannot see
   leases — it sees an overwritten value returned after the overwrite
   finished, which is the same stale-read rule. *)
let test_expired_lease_read_rejected () =
  check_rejected "expired-lease read"
    [
      write ~id:0 ~key:7 10 ~from:0.0 ~until:1.0;
      write ~client:1 ~id:0 ~key:7 30 ~from:5.5 ~until:6.0;
      read ~client:2 ~id:0 ~key:7 (Some 10) ~from:7.0 ~until:8.0;
    ]

(* A read that returns a value whose write had not even started —
   a quorum read that adopted a tag from the future (or a buggy
   write-back that invented one). *)
let test_future_read_rejected () =
  check_rejected "future read"
    [
      read ~id:0 ~key:3 (Some 40) ~from:0.0 ~until:1.0;
      write ~client:1 ~id:0 ~key:3 40 ~from:2.0 ~until:3.0;
    ]

(* A value nobody ever wrote: a corrupted shadow register or a
   misrouted reply. *)
let test_unwritten_value_rejected () =
  check_rejected "never-written value"
    [
      write ~id:0 ~key:2 11 ~from:0.0 ~until:1.0;
      read ~client:1 ~id:0 ~key:2 (Some 99) ~from:2.0 ~until:3.0;
    ]

(* Reading the initial empty state after a write completed — a tail
   read served by a chain node that never saw the write propagate. *)
let test_empty_read_after_write_rejected () =
  check_rejected "empty read after completed write"
    [
      write ~id:0 ~key:4 5 ~from:0.0 ~until:1.0;
      read ~client:1 ~id:0 ~key:4 None ~from:2.0 ~until:3.0;
    ]

(* Reordered read/write overlap gone wrong: r1 and r2 do not overlap
   each other (r2 starts after r1 finished), yet r2 travels back in
   time — it returns the old value after r1 already returned the new
   one AND the new write completed before r2 began. *)
let test_reordered_overlap_rejected () =
  check_rejected "non-monotonic reads across a completed write"
    [
      write ~id:0 ~key:9 1 ~from:0.0 ~until:1.0;
      write ~client:1 ~id:0 ~key:9 2 ~from:2.0 ~until:3.0;
      read ~client:2 ~id:0 ~key:9 (Some 2) ~from:3.5 ~until:4.0;
      read ~client:2 ~id:1 ~key:9 (Some 1) ~from:4.5 ~until:5.0;
    ]

(* Overlap freedom the oracle must NOT flag: a read concurrent with a
   write may return either the old or the new value, and two
   concurrent reads may disagree. *)
let test_concurrent_overlap_accepted () =
  check_accepted "read overlapping a write (old value)"
    [
      write ~id:0 ~key:1 10 ~from:0.0 ~until:1.0;
      write ~client:1 ~id:0 ~key:1 20 ~from:2.0 ~until:4.0;
      read ~client:2 ~id:0 ~key:1 (Some 10) ~from:2.5 ~until:3.0;
    ];
  check_accepted "read overlapping a write (new value)"
    [
      write ~id:0 ~key:1 10 ~from:0.0 ~until:1.0;
      write ~client:1 ~id:0 ~key:1 20 ~from:2.0 ~until:4.0;
      read ~client:2 ~id:0 ~key:1 (Some 20) ~from:2.5 ~until:3.0;
    ];
  check_accepted "concurrent reads disagreeing under an open write"
    [
      write ~id:0 ~key:1 10 ~from:0.0 ~until:1.0;
      write ~client:1 ~id:0 ~key:1 20 ~from:2.0 ~until:6.0;
      read ~client:2 ~id:0 ~key:1 (Some 20) ~from:3.0 ~until:4.0;
      read ~client:3 ~id:0 ~key:1 (Some 10) ~from:3.0 ~until:4.0;
    ]

(* A correct lease-read interleaving: reads between writes always see
   the latest completed write, across keys. *)
let test_valid_history_accepted () =
  check_accepted "valid multi-key history"
    [
      write ~id:0 ~key:1 10 ~from:0.0 ~until:1.0;
      read ~client:1 ~id:0 ~key:1 (Some 10) ~from:1.5 ~until:2.0;
      write ~id:1 ~key:2 7 ~from:2.0 ~until:3.0;
      read ~client:1 ~id:1 ~key:2 (Some 7) ~from:3.5 ~until:4.0;
      write ~client:2 ~id:0 ~key:1 11 ~from:4.0 ~until:5.0;
      read ~client:1 ~id:2 ~key:1 (Some 11) ~from:5.5 ~until:6.0;
    ]

(* Inject a stale read into an otherwise-clean generated history: the
   oracle must find exactly the seeded anomaly, for any seed. The
   generator emulates a single-leader history (sequential writes,
   interleaved fresh reads), then one read is re-aimed at an
   overwritten value. *)
let test_seeded_injection_found () =
  for seed = 1 to 20 do
    let rng = Rng.create ~seed in
    let key = 1 in
    let history = ref [] in
    let now = ref 0.0 in
    let last_value = ref None in
    let values = ref [] in
    for i = 0 to 39 do
      let dur = 0.5 +. Rng.float rng 1.0 in
      let from = !now in
      let until = !now +. dur in
      now := until +. (0.1 +. Rng.float rng 0.5);
      if i mod 2 = 0 then begin
        let v = 100 + i in
        values := v :: !values;
        last_value := Some v;
        history := write ~id:i ~key v ~from ~until :: !history
      end
      else
        history :=
          read ~client:1 ~id:i ~key !last_value ~from ~until :: !history
    done;
    let clean = List.rev !history in
    check_accepted (Printf.sprintf "clean generated history (seed %d)" seed)
      clean;
    (* overwrite the final read with a stale value: any value other
       than the last written one is overwritten by construction *)
    let stale =
      match !values with _ :: _ :: rest -> List.nth rest 0 | _ -> assert false
    in
    let injected =
      List.map
        (fun o ->
          match o.L.kind with
          | L.Read _ when o.L.op_id = 39 -> { o with L.kind = L.Read (Some stale) }
          | _ -> o)
        clean
    in
    Alcotest.(check int)
      (Printf.sprintf "exactly the seeded anomaly found (seed %d)" seed)
      1 (anomalies injected)
  done

let suite =
  ( "read-oracle",
    [
      Alcotest.test_case "stale read rejected" `Quick test_stale_read_rejected;
      Alcotest.test_case "expired-lease read rejected" `Quick
        test_expired_lease_read_rejected;
      Alcotest.test_case "future read rejected" `Quick
        test_future_read_rejected;
      Alcotest.test_case "unwritten value rejected" `Quick
        test_unwritten_value_rejected;
      Alcotest.test_case "empty read after write rejected" `Quick
        test_empty_read_after_write_rejected;
      Alcotest.test_case "reordered overlap rejected" `Quick
        test_reordered_overlap_rejected;
      Alcotest.test_case "concurrent overlap accepted" `Quick
        test_concurrent_overlap_accepted;
      Alcotest.test_case "valid history accepted" `Quick
        test_valid_history_accepted;
      Alcotest.test_case "seeded injections found" `Quick
        test_seeded_injection_found;
    ] )
