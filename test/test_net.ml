(* Address, Region, Topology, Faults, Procq *)

let test_address_roundtrip () =
  Alcotest.(check int) "replica id" 3 (Address.replica_id (Address.replica 3));
  Alcotest.(check bool) "is_replica" true (Address.is_replica (Address.replica 0));
  Alcotest.(check bool) "is_client" true (Address.is_client (Address.client 0));
  Alcotest.(check string) "pp replica" "n2" (Address.to_string (Address.replica 2));
  Alcotest.(check string) "pp client" "c7" (Address.to_string (Address.client 7))

let test_address_ordering () =
  Alcotest.(check bool) "replica < client" true
    (Address.compare (Address.replica 5) (Address.client 0) < 0);
  Alcotest.(check bool) "same equal" true
    (Address.equal (Address.client 1) (Address.client 1))

let test_address_replica_id_on_client () =
  Alcotest.check_raises "client" (Invalid_argument "Address.replica_id: client 1")
    (fun () -> ignore (Address.replica_id (Address.client 1)))

let test_lan_topology () =
  let t = Topology.lan ~n_replicas:5 () in
  Alcotest.(check int) "n" 5 (Topology.n_replicas t);
  Alcotest.(check int) "one region" 1 (List.length (Topology.regions t));
  Alcotest.(check bool) "all local" true
    (Region.equal (Topology.region_of_replica t 3) Region.local)

let test_wan_topology_layout () =
  let t = Topology.wan ~regions:Region.aws_five ~replicas_per_region:2 () in
  Alcotest.(check int) "n" 10 (Topology.n_replicas t);
  Alcotest.(check int) "regions" 5 (List.length (Topology.regions t));
  (* round-robin layout: replica r is in region r mod 5 *)
  Alcotest.(check bool) "replica 0 in VA" true
    (Region.equal (Topology.region_of_replica t 0) Region.virginia);
  Alcotest.(check bool) "replica 6 in OH" true
    (Region.equal (Topology.region_of_replica t 6) Region.ohio);
  Alcotest.(check (list int)) "replicas in VA" [ 0; 5 ]
    (Topology.replicas_in t Region.virginia)

let test_rtt_sampling () =
  let t = Topology.wan ~regions:Region.aws_five ~replicas_per_region:1 () in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    let rtt = Topology.sample_rtt t rng (Address.replica 0) (Address.replica 4) in
    (* VA <-> JP is ~162 ms with 5% jitter *)
    Alcotest.(check bool) "plausible VA-JP rtt" true (rtt > 130.0 && rtt < 200.0)
  done

let test_one_way_half_rtt () =
  let t = Topology.wan ~regions:Region.aws_five ~replicas_per_region:1 ~jitter:0.0 () in
  let rng = Rng.create ~seed:1 in
  let d = Topology.sample_delay t rng (Address.replica 0) (Address.replica 1) in
  Alcotest.(check (float 1e-6)) "half of 11ms" 5.5 d

let test_client_region_assignment () =
  let t = Topology.wan ~regions:Region.aws_five ~replicas_per_region:1 () in
  Topology.assign_client t ~id:3 ~region:Region.japan;
  Alcotest.(check bool) "assigned" true
    (Region.equal (Topology.region_of t (Address.client 3)) Region.japan);
  (* unassigned clients default to the first region *)
  Alcotest.(check bool) "default" true
    (Region.equal (Topology.region_of t (Address.client 99)) Region.virginia)

let test_aws_matrix_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check (float 1e-9))
            "symmetric"
            (Topology.aws_rtt_ms a b) (Topology.aws_rtt_ms b a))
        Region.aws_five)
    Region.aws_five

let test_faults_crash_window () =
  let f = Faults.create () in
  Faults.crash f ~node:(Address.replica 1) ~from_ms:100.0 ~duration_ms:50.0;
  Alcotest.(check bool) "before" false (Faults.is_crashed f ~now_ms:99.0 (Address.replica 1));
  Alcotest.(check bool) "during" true (Faults.is_crashed f ~now_ms:120.0 (Address.replica 1));
  Alcotest.(check bool) "after" false (Faults.is_crashed f ~now_ms:151.0 (Address.replica 1));
  Alcotest.(check bool) "other node" false (Faults.is_crashed f ~now_ms:120.0 (Address.replica 2))

let test_faults_drop_directional () =
  let f = Faults.create () in
  let rng = Rng.create ~seed:1 in
  let a = Address.replica 0 and b = Address.replica 1 in
  Faults.drop f ~src:a ~dst:b ~from_ms:0.0 ~duration_ms:100.0;
  Alcotest.(check bool) "a->b dropped" true (Faults.should_drop f rng ~now_ms:50.0 ~src:a ~dst:b);
  Alcotest.(check bool) "b->a fine" false (Faults.should_drop f rng ~now_ms:50.0 ~src:b ~dst:a)

let test_faults_flaky_probability () =
  let f = Faults.create () in
  let rng = Rng.create ~seed:5 in
  let a = Address.replica 0 and b = Address.replica 1 in
  Faults.flaky f ~src:a ~dst:b ~from_ms:0.0 ~duration_ms:1000.0 ~p_drop:0.5;
  let drops = ref 0 in
  for _ = 1 to 2000 do
    if Faults.should_drop f rng ~now_ms:10.0 ~src:a ~dst:b then incr drops
  done;
  let p = float_of_int !drops /. 2000.0 in
  Alcotest.(check bool) "p ~0.5" true (Float.abs (p -. 0.5) < 0.05)

let test_faults_slow () =
  let f = Faults.create () in
  let rng = Rng.create ~seed:5 in
  let a = Address.replica 0 and b = Address.replica 1 in
  Faults.slow f ~src:a ~dst:b ~from_ms:0.0 ~duration_ms:100.0 ~extra_ms:10.0;
  let d = Faults.extra_delay f rng ~now_ms:50.0 ~src:a ~dst:b in
  Alcotest.(check bool) "bounded delay" true (d >= 0.0 && d <= 10.0);
  Alcotest.(check (float 0.0)) "outside window" 0.0
    (Faults.extra_delay f rng ~now_ms:150.0 ~src:a ~dst:b)

let test_faults_partition () =
  let f = Faults.create () in
  let rng = Rng.create ~seed:5 in
  let r = Address.replica in
  Faults.partition f
    ~groups:[ [ r 0; r 1 ]; [ r 2; r 3; r 4 ] ]
    ~from_ms:0.0 ~duration_ms:100.0;
  Alcotest.(check bool) "cross-group severed" true
    (Faults.should_drop f rng ~now_ms:50.0 ~src:(r 0) ~dst:(r 2));
  Alcotest.(check bool) "within group fine" false
    (Faults.should_drop f rng ~now_ms:50.0 ~src:(r 2) ~dst:(r 4));
  Alcotest.(check bool) "healed after" false
    (Faults.should_drop f rng ~now_ms:150.0 ~src:(r 0) ~dst:(r 2))

let test_faults_clear () =
  let f = Faults.create () in
  Faults.crash f ~node:(Address.replica 0) ~from_ms:0.0 ~duration_ms:100.0;
  Faults.clear f;
  Alcotest.(check bool) "cleared" false (Faults.is_crashed f ~now_ms:50.0 (Address.replica 0))

(* Regression: overlapping crash + partition windows on the same node,
   probed past expiry (which triggers internal pruning), then cleared
   and re-added. The re-added schedule must behave exactly like a
   fresh one — clear must not leak pruning state that would resurrect
   or suppress expired windows. *)
let test_faults_clear_no_resurrection () =
  let r = Address.replica in
  let rng () = Rng.create ~seed:9 in
  let install f =
    Faults.crash f ~node:(r 1) ~from_ms:100.0 ~duration_ms:200.0;
    Faults.partition f
      ~groups:[ [ r 0; r 1 ]; [ r 2; r 3; r 4 ] ]
      ~from_ms:150.0 ~duration_ms:100.0;
    Faults.drop f ~src:(r 0) ~dst:(r 2) ~from_ms:400.0 ~duration_ms:50.0
  in
  let f = Faults.create () in
  install f;
  (* advance past every window so pruning discards all three rules *)
  Alcotest.(check bool) "all expired" false
    (Faults.should_drop f (rng ()) ~now_ms:1_000.0 ~src:(r 0) ~dst:(r 2));
  Faults.clear f;
  Alcotest.(check int) "cleared" 0 (Faults.rule_count f);
  install f;
  let fresh = Faults.create () in
  install fresh;
  (* the re-added schedule matches a fresh one at every probe time,
     including inside the windows that had already been pruned *)
  List.iter
    (fun now_ms ->
      Alcotest.(check bool)
        (Printf.sprintf "crash verdict at %.0f" now_ms)
        (Faults.is_crashed fresh ~now_ms (r 1))
        (Faults.is_crashed f ~now_ms (r 1));
      List.iter
        (fun (src, dst) ->
          Alcotest.(check bool)
            (Printf.sprintf "drop verdict %s->%s at %.0f"
               (Address.to_string src) (Address.to_string dst) now_ms)
            (Faults.should_drop fresh (rng ()) ~now_ms ~src ~dst)
            (Faults.should_drop f (rng ()) ~now_ms ~src ~dst))
        [ (r 0, r 2); (r 1, r 3); (r 2, r 4); (r 0, r 1) ])
    [ 50.0; 120.0; 160.0; 260.0; 320.0; 420.0; 500.0 ]

(* Forward-time pruning must not change verdicts: drive one schedule
   strictly forward (letting it prune) and compare against a fresh
   copy probed only at that instant. *)
let test_faults_pruning_preserves_verdicts () =
  let r = Address.replica in
  let install f =
    Faults.crash f ~node:(r 0) ~from_ms:10.0 ~duration_ms:20.0;
    Faults.crash f ~node:(r 0) ~from_ms:50.0 ~duration_ms:20.0;
    Faults.drop f ~src:(r 1) ~dst:(r 0) ~from_ms:25.0 ~duration_ms:100.0
  in
  let pruned = Faults.create () in
  install pruned;
  List.iter
    (fun now_ms ->
      let fresh = Faults.create () in
      install fresh;
      Alcotest.(check bool)
        (Printf.sprintf "crash at %.0f" now_ms)
        (Faults.is_crashed fresh ~now_ms (r 0))
        (Faults.is_crashed pruned ~now_ms (r 0));
      Alcotest.(check bool)
        (Printf.sprintf "drop at %.0f" now_ms)
        (Faults.should_drop fresh (Rng.create ~seed:1) ~now_ms ~src:(r 1)
           ~dst:(r 0))
        (Faults.should_drop pruned (Rng.create ~seed:1) ~now_ms ~src:(r 1)
           ~dst:(r 0)))
    [ 0.0; 15.0; 31.0; 45.0; 60.0; 71.0; 124.0; 126.0; 500.0 ]

(* JSON round-trip: [of_json (to_json s)] must be verdict-identical to
   [s] — same [should_drop] answers, same [extra_delay], drawn from
   identically-seeded RNGs (rule order, and hence RNG draw order, is
   part of the contract). *)
let fault_schedule_gen =
  QCheck.Gen.(
    let addr = map Address.replica (int_range 0 4) in
    let win = pair (float_range 0.0 500.0) (float_range 1.0 300.0) in
    let rule =
      frequency
        [
          ( 2,
            let* node = addr and* f, d = win in
            return (`Crash (node, f, d)) );
          ( 2,
            let* s = addr and* t = addr and* f, d = win in
            return (`Drop (s, t, f, d)) );
          ( 2,
            let* s = addr and* t = addr and* f, d = win
            and* e = float_range 0.1 10.0 in
            return (`Slow (s, t, f, d, e)) );
          ( 2,
            let* s = addr and* t = addr and* f, d = win
            and* p = float_range 0.0 1.0 in
            return (`Flaky (s, t, f, d, p)) );
          ( 1,
            let* k = int_range 1 4 and* f, d = win in
            return (`Partition (k, f, d)) );
        ]
    in
    list_size (int_range 0 8) rule)

let install_gen_rules f rules =
  List.iter
    (function
      | `Crash (node, from_ms, duration_ms) ->
          Faults.crash f ~node ~from_ms ~duration_ms
      | `Drop (src, dst, from_ms, duration_ms) ->
          Faults.drop f ~src ~dst ~from_ms ~duration_ms
      | `Slow (src, dst, from_ms, duration_ms, extra_ms) ->
          Faults.slow f ~src ~dst ~from_ms ~duration_ms ~extra_ms
      | `Flaky (src, dst, from_ms, duration_ms, p_drop) ->
          Faults.flaky f ~src ~dst ~from_ms ~duration_ms ~p_drop
      | `Partition (k, from_ms, duration_ms) ->
          let minority = List.init k Address.replica in
          let rest =
            List.filter_map
              (fun i -> if i >= k then Some (Address.replica i) else None)
              (List.init 5 Fun.id)
          in
          Faults.partition f ~groups:[ minority; rest ] ~from_ms ~duration_ms)
    rules

let prop_faults_json_roundtrip =
  QCheck.Test.make ~name:"faults json round-trip verdict-identical" ~count:100
    (QCheck.make fault_schedule_gen) (fun rules ->
      let f = Faults.create () in
      install_gen_rules f rules;
      let f' =
        match Faults.of_json (Faults.to_json f) with
        | Ok f' -> f'
        | Error msg -> QCheck.Test.fail_reportf "of_json: %s" msg
      in
      (* text-level fixpoint too: serialize-parse-serialize is stable *)
      if
        Json.to_string (Faults.to_json f) <> Json.to_string (Faults.to_json f')
      then QCheck.Test.fail_reportf "to_json not a fixpoint";
      let rng_a = Rng.create ~seed:7 and rng_b = Rng.create ~seed:7 in
      List.for_all
        (fun now_ms ->
          List.for_all
            (fun src ->
              List.for_all
                (fun dst ->
                  Faults.should_drop f rng_a ~now_ms ~src ~dst
                  = Faults.should_drop f' rng_b ~now_ms ~src ~dst
                  && Faults.extra_delay f rng_a ~now_ms ~src ~dst
                     = Faults.extra_delay f' rng_b ~now_ms ~src ~dst)
                (List.init 5 Address.replica))
            (List.init 5 Address.replica))
        [ 0.0; 100.0; 250.0; 400.0; 799.0 ])

let test_procq_queueing () =
  let q = Procq.create ~t_in_ms:1.0 ~t_out_ms:0.5 ~bandwidth_mbps:1e9 () in
  (* two messages arriving together queue behind each other *)
  let f1 = Procq.occupy_incoming q ~now_ms:0.0 ~size_bytes:0 in
  let f2 = Procq.occupy_incoming q ~now_ms:0.0 ~size_bytes:0 in
  Alcotest.(check (float 1e-6)) "first" 1.0 f1;
  Alcotest.(check (float 1e-6)) "second queued" 2.0 f2;
  (* idle gap resets the queue *)
  let f3 = Procq.occupy_incoming q ~now_ms:10.0 ~size_bytes:0 in
  Alcotest.(check (float 1e-6)) "after idle" 11.0 f3

let test_procq_broadcast_serializes_once () =
  let q = Procq.create ~t_in_ms:1.0 ~t_out_ms:0.5 ~bandwidth_mbps:1.0 () in
  (* bandwidth 1 Mbit/s = 125 bytes/ms; 125-byte message = 1 ms NIC *)
  let f = Procq.occupy_outgoing q ~now_ms:0.0 ~copies:4 ~size_bytes:125 in
  Alcotest.(check (float 1e-6)) "0.5 CPU + 4 NIC" 4.5 f

let test_procq_zero_is_free () =
  let q = Procq.zero () in
  Alcotest.(check (float 0.0)) "no cost" 5.0
    (Procq.occupy_incoming q ~now_ms:5.0 ~size_bytes:1_000_000);
  Alcotest.(check (float 0.0)) "no busy" 0.0 (Procq.busy_time q)

let test_procq_busy_accounting () =
  let q = Procq.create ~t_in_ms:1.0 ~t_out_ms:1.0 ~bandwidth_mbps:1e9 () in
  ignore (Procq.occupy_incoming q ~now_ms:0.0 ~size_bytes:0);
  ignore (Procq.occupy_outgoing q ~now_ms:0.0 ~copies:1 ~size_bytes:0);
  Alcotest.(check bool) "busy ~2ms" true (Float.abs (Procq.busy_time q -. 2.0) < 1e-6);
  Alcotest.(check int) "2 messages" 2 (Procq.messages_processed q);
  Procq.reset q;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Procq.busy_time q)

let suite =
  ( "net",
    [
      Alcotest.test_case "address roundtrip" `Quick test_address_roundtrip;
      Alcotest.test_case "address ordering" `Quick test_address_ordering;
      Alcotest.test_case "replica_id rejects client" `Quick test_address_replica_id_on_client;
      Alcotest.test_case "lan topology" `Quick test_lan_topology;
      Alcotest.test_case "wan topology layout" `Quick test_wan_topology_layout;
      Alcotest.test_case "rtt sampling plausible" `Quick test_rtt_sampling;
      Alcotest.test_case "one-way is half rtt" `Quick test_one_way_half_rtt;
      Alcotest.test_case "client region assignment" `Quick test_client_region_assignment;
      Alcotest.test_case "aws matrix symmetric" `Quick test_aws_matrix_symmetric;
      Alcotest.test_case "crash window" `Quick test_faults_crash_window;
      Alcotest.test_case "drop is directional" `Quick test_faults_drop_directional;
      Alcotest.test_case "flaky probability" `Quick test_faults_flaky_probability;
      Alcotest.test_case "slow adds bounded delay" `Quick test_faults_slow;
      Alcotest.test_case "partition" `Quick test_faults_partition;
      Alcotest.test_case "faults clear" `Quick test_faults_clear;
      Alcotest.test_case "clear does not resurrect expired windows" `Quick
        test_faults_clear_no_resurrection;
      Alcotest.test_case "pruning preserves verdicts" `Quick
        test_faults_pruning_preserves_verdicts;
      QCheck_alcotest.to_alcotest prop_faults_json_roundtrip;
      Alcotest.test_case "procq queueing" `Quick test_procq_queueing;
      Alcotest.test_case "broadcast serializes once" `Quick test_procq_broadcast_serializes_once;
      Alcotest.test_case "zero queue is free" `Quick test_procq_zero_is_free;
      Alcotest.test_case "procq busy accounting" `Quick test_procq_busy_accounting;
    ] )
