(* Nemesis harness: fixed-seed campaigns over every protocol family,
   shrinker behaviour on synthetic predicates, schedule serialization,
   and campaign determinism across pool sizes. *)

module Schedule = Paxi_nemesis.Schedule
module Trial = Paxi_nemesis.Trial
module Shrink = Paxi_nemesis.Shrink
module Campaign = Paxi_nemesis.Campaign

(* The PR-pinning campaign: every protocol in the registry survives a
   fixed-seed batch of randomized fault schedules drawn from its own
   tolerance profile. A failure prints the shrunk one-line repro. *)
let test_campaign protocol () =
  let report = Campaign.run ~protocol ~trials:3 ~seed:42 () in
  List.iter
    (fun (o : Campaign.outcome) ->
      let shrunk =
        match o.Campaign.shrunk with Some (s, _) -> s | None -> o.Campaign.schedule
      in
      Printf.printf "%s trial %d failed: %s\n  repro: %s\n" protocol
        o.Campaign.trial
        (String.concat "; " o.Campaign.verdict.Trial.reasons)
        (Campaign.repro_line ~protocol ~seed:o.Campaign.seed shrunk))
    report.Campaign.failures;
  Alcotest.(check int)
    (protocol ^ " campaign failures")
    0
    (List.length report.Campaign.failures)

(* Trials are seeded by identity, so the same campaign on pools of
   different sizes produces byte-identical JSON reports. *)
let test_campaign_pool_deterministic () =
  let report_with jobs =
    let pool = Paxi_exec.Pool.create ~jobs () in
    let r = Campaign.run ~pool ~protocol:"paxos" ~trials:3 ~seed:7 () in
    Paxi_exec.Pool.shutdown pool;
    Json.to_string (Campaign.to_json r)
  in
  Alcotest.(check string)
    "campaign json identical at jobs=1 and jobs=4" (report_with 1)
    (report_with 4)

(* ------------------------------------------------------------------ *)
(* Schedule generation and serialization                               *)
(* ------------------------------------------------------------------ *)

let schedule_testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Schedule.to_string s))
    ( = )

let test_generate_deterministic () =
  let gen () = Trial.generate ~protocol:"raft" ~seed:123 ~max_faults:6 () in
  Alcotest.check schedule_testable "same seed, same schedule" (gen ()) (gen ());
  let other = Trial.generate ~protocol:"raft" ~seed:124 ~max_faults:6 () in
  Alcotest.(check bool) "different seed differs" false (gen () = other)

let test_generate_respects_kinds () =
  (* chain's profile spans every kind except crash (its fixed
     head-to-tail order has no reconfiguration): no generated fault
     may be a crash, across many seeds *)
  for seed = 1 to 50 do
    let s = Trial.generate ~protocol:"chain" ~seed ~max_faults:6 () in
    List.iter
      (fun f ->
        match f with
        | Schedule.Crash _ ->
            Alcotest.failf "chain schedule contains %s"
              (Schedule.to_string [ f ])
        | _ -> ())
      s
  done

let test_generate_crashes_bounded () =
  (* The crash constraint is per-overlap, not per-schedule: at every
     instant the crashed set must be a minority of distinct nodes so a
     quorum survives, but nodes whose windows expired may crash again
     later. Checked at every window boundary, where the covering set
     changes. *)
  for seed = 1 to 50 do
    let s = Trial.generate ~protocol:"paxos" ~seed ~max_faults:8 () in
    let windows =
      List.filter_map
        (function
          | Schedule.Crash { node; from_ms; duration_ms } ->
              Some (node, from_ms, from_ms +. duration_ms)
          | _ -> None)
        s
    in
    List.iter
      (fun (_, t, _) ->
        let covering =
          List.filter_map
            (fun (node, f, u) -> if f <= t && t < u then Some node else None)
            windows
        in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: concurrent crashes a distinct minority"
             seed)
          true
          (List.length covering <= 2
          && List.length (List.sort_uniq compare covering)
             = List.length covering))
      windows
  done

let test_generate_crashed_windows_drain () =
  (* Regression (PR 10): the generator once accumulated crashed nodes
     for the whole schedule, so after minority_cap crashes it could
     never crash anyone again — long campaigns silently stopped
     exercising crash recovery. With windows draining, some seed must
     produce more total crashes than any instant allows. *)
  let kinds = { Schedule.no_kinds with Schedule.crash = true } in
  let exceeded = ref false in
  let repeated = ref false in
  for seed = 1 to 80 do
    let rng = Rng.create ~seed in
    let s =
      Schedule.generate ~rng ~n:5 ~kinds ~max_faults:12 ~horizon_ms:3_000.0
    in
    let nodes =
      List.filter_map
        (function Schedule.Crash { node; _ } -> Some node | _ -> None)
        s
    in
    if List.length nodes > 2 then exceeded := true;
    if List.length (List.sort_uniq compare nodes) < List.length nodes then
      repeated := true
  done;
  Alcotest.(check bool)
    "some schedule crashes more nodes than one instant may" true !exceeded;
  Alcotest.(check bool)
    "some schedule re-crashes a recovered node" true !repeated

let test_schedule_json_roundtrip () =
  for seed = 1 to 50 do
    let s = Trial.generate ~protocol:"paxos" ~seed ~max_faults:6 () in
    match Schedule.of_json (Schedule.to_json s) with
    | Ok s' -> Alcotest.check schedule_testable "roundtrip" s s'
    | Error e -> Alcotest.failf "roundtrip failed: %s" e
  done

let test_schedule_text_roundtrip_replays () =
  (* the repro line goes through text, where float precision is
     truncated; the parsed schedule must still be a valid schedule
     with the same shape (kind sequence and near-identical windows) *)
  let s = Trial.generate ~protocol:"paxos" ~seed:5 ~max_faults:6 () in
  match Schedule.of_string (Json.to_string (Schedule.to_json s)) with
  | Error e -> Alcotest.failf "text roundtrip failed: %s" e
  | Ok s' ->
      Alcotest.(check int) "same length" (List.length s) (List.length s');
      List.iter2
        (fun a b ->
          let fa, ua = Schedule.window_of a and fb, ub = Schedule.window_of b in
          Alcotest.(check bool)
            "windows within float-printing tolerance" true
            (Float.abs (fa -. fb) < 0.01 && Float.abs (ua -. ub) < 0.01))
        s s'

(* ------------------------------------------------------------------ *)
(* Shrinker on synthetic predicates (no simulation)                    *)
(* ------------------------------------------------------------------ *)

let crash n = Schedule.Crash { node = n; from_ms = 100.0; duration_ms = 800.0 }

let slow src =
  Schedule.Slow
    { src; dst = src + 1; from_ms = 0.0; duration_ms = 1_600.0; extra_ms = 5.0 }

let contains_crash s =
  List.exists (function Schedule.Crash _ -> true | _ -> false) s

let test_shrink_drops_irrelevant_faults () =
  let schedule = [ slow 0; crash 1; slow 2; slow 3 ] in
  let shrunk, _ = Shrink.shrink ~still_fails:contains_crash schedule in
  (* the drop pass isolates the crash, then the halving pass walks its
     window down to the floor (the predicate ignores duration) *)
  Alcotest.check schedule_testable "only the crash survives"
    [ Schedule.Crash { node = 1; from_ms = 100.0; duration_ms = 50.0 } ]
    shrunk

let test_shrink_halves_windows () =
  (* failure iff some fault lasts >= 100ms: halving must walk the
     1600ms window down to the smallest still-failing duration *)
  let still_fails s =
    List.exists (fun f -> Schedule.duration_of f >= 100.0) s
  in
  let shrunk, _ = Shrink.shrink ~still_fails [ slow 0 ] in
  Alcotest.(check int) "one fault" 1 (List.length shrunk);
  let d = Schedule.duration_of (List.hd shrunk) in
  Alcotest.(check bool)
    (Printf.sprintf "duration %.0f minimized into [100, 200)" d)
    true
    (d >= 100.0 && d < 200.0)

let test_shrink_result_still_fails () =
  let still_fails s = List.length s >= 2 in
  let schedule = [ slow 0; slow 1; slow 2; crash 0; crash 1 ] in
  let shrunk, _ = Shrink.shrink ~still_fails schedule in
  Alcotest.(check bool) "shrunk still fails" true (still_fails shrunk);
  Alcotest.(check int) "minimal size" 2 (List.length shrunk)

let test_shrink_budget_zero_is_identity () =
  let schedule = [ slow 0; crash 1 ] in
  let shrunk, probes =
    Shrink.shrink ~budget:0 ~still_fails:contains_crash schedule
  in
  Alcotest.check schedule_testable "unchanged" schedule shrunk;
  Alcotest.(check int) "no probes" 0 probes

(* ------------------------------------------------------------------ *)
(* End-to-end: a protocol with no recovery machinery must fail and     *)
(* shrink when stressed beyond its profile                             *)
(* ------------------------------------------------------------------ *)

(* Regression: with two replicas per zone (n = 6) every zone's
   phase-1 majority is 2-of-2, so a steal needs the preempted owner's
   own vote. That owner could learn the stealing ballot from a nok
   P2b before the steal's P1a reached it, and then refuse to re-ack
   the equal ballot — wedging the steal (and eventually every key)
   forever, fault-free. The fixed run must sustain progress across
   the whole horizon, not just until the first migration. *)
let test_wpaxos_n6_no_wedge () =
  let v = Trial.run ~protocol:"wpaxos" ~n:6 ~seed:42 [] in
  Alcotest.(check bool)
    ("verdict ok: " ^ String.concat "; " v.Trial.reasons)
    true v.Trial.ok;
  Alcotest.(check int) "nothing abandoned" 0 v.Trial.gave_up;
  Alcotest.(check bool)
    (Printf.sprintf "sustained progress (completed=%d)" v.Trial.completed)
    true
    (v.Trial.completed > 2_000)

(* ------------------------------------------------------------------ *)
(* Clock-skew faults and read-path pins (PR 7)                         *)
(* ------------------------------------------------------------------ *)

(* Skew is opt-in: default profiles must keep generating the exact
   schedules every pre-PR7 fixed-seed pin was recorded against. *)
let test_skew_opt_in () =
  let has_skew s =
    List.exists (function Schedule.Skew _ -> true | _ -> false) s
  in
  for seed = 1 to 40 do
    let s = Trial.generate ~protocol:"paxos" ~seed ~max_faults:6 () in
    Alcotest.(check bool)
      (Printf.sprintf "no skew by default (seed %d)" seed)
      false (has_skew s)
  done;
  let some_skew = ref false in
  for seed = 1 to 40 do
    let s =
      Trial.generate ~protocol:"paxos" ~seed ~max_faults:6 ~skew:true ()
    in
    if has_skew s then some_skew := true;
    (* offsets stay inside the band the lease margin defends against *)
    List.iter
      (function
        | Schedule.Skew { offset_ms; _ } ->
            Alcotest.(check bool)
              (Printf.sprintf "offset %.1f within [20,120]" offset_ms)
              true
              (Float.abs offset_ms >= 20.0 && Float.abs offset_ms <= 120.0)
        | _ -> ())
      s
  done;
  Alcotest.(check bool) "skew=true generates skew faults" true !some_skew

let test_skew_schedule_roundtrip () =
  for seed = 1 to 30 do
    let s = Trial.generate ~protocol:"raft" ~seed ~max_faults:6 ~skew:true () in
    match Schedule.of_json (Schedule.to_json s) with
    | Ok s' -> Alcotest.check schedule_testable "skew roundtrip" s s'
    | Error e -> Alcotest.failf "skew roundtrip failed: %s" e
  done

(* Fixed-seed pins: lease reads survive a leader partition compounded
   by clock skew on the deposed leader — the shrunk shape of the
   campaign failures a broken lease produces. The skew slows the old
   leader's clock (the unsafe direction) by less than the 300ms
   margin; the trial oracle checks linearizability of the collected
   history, so a single stale lease read fails the pin. *)
let lease_pin_schedule =
  [
    Schedule.Skew
      { node = 0; from_ms = 500.0; duration_ms = 4_000.0; offset_ms = -110.0 };
    Schedule.Partition
      { minority = [ 0 ]; from_ms = 1_000.0; duration_ms = 3_000.0 };
  ]

let test_lease_reads_survive_partition_and_skew () =
  List.iter
    (fun protocol ->
      let v =
        Trial.run ~protocol ~seed:42 ~read_ratio:0.95
          ~read_path:(Config.Lease { margin_ms = 300.0 })
          lease_pin_schedule
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s lease pin: %s" protocol
           (String.concat "; " v.Trial.reasons))
        true v.Trial.ok;
      Alcotest.(check bool)
        (Printf.sprintf "%s progressed (%d)" protocol v.Trial.completed)
        true
        (v.Trial.completed > 500))
    [ "paxos"; "fpaxos"; "raft" ]

(* Chain tail reads under a slow then flaky tail link: reads keep
   answering (the tail itself is healthy) and writes heal through the
   reliable-delivery layer. *)
let test_tail_reads_survive_tail_link_faults () =
  let schedule =
    [
      Schedule.Slow
        {
          src = 3;
          dst = 4;
          from_ms = 500.0;
          duration_ms = 2_000.0;
          extra_ms = 15.0;
        };
      Schedule.Flaky
        { src = 3; dst = 4; from_ms = 3_000.0; duration_ms = 1_500.0; p_drop = 0.4 };
    ]
  in
  let v =
    Trial.run ~protocol:"chain" ~seed:42 ~read_ratio:0.95
      ~read_path:Config.Tail schedule
  in
  Alcotest.(check bool)
    ("chain tail pin: " ^ String.concat "; " v.Trial.reasons)
    true v.Trial.ok;
  Alcotest.(check bool)
    (Printf.sprintf "chain progressed (%d)" v.Trial.completed)
    true
    (v.Trial.completed > 500)

(* Quorum reads pinned under the same leader partition: ABD rounds
   need no lease, so they must ride out skew AND partition. *)
let test_quorum_reads_survive_partition_and_skew () =
  let v =
    Trial.run ~protocol:"paxos" ~seed:42 ~read_ratio:0.5
      ~read_path:Config.Quorum lease_pin_schedule
  in
  Alcotest.(check bool)
    ("quorum pin: " ^ String.concat "; " v.Trial.reasons)
    true v.Trial.ok

(* Randomized lease campaign with the skew fault armed: the acceptance
   gate for the whole read path. *)
let test_lease_campaign_with_skew protocol () =
  let report =
    Campaign.run ~protocol ~trials:3 ~seed:42 ~read_ratio:0.95
      ~read_path:(Config.Lease { margin_ms = 300.0 })
      ~skew:true ()
  in
  List.iter
    (fun (o : Campaign.outcome) ->
      let shrunk =
        match o.Campaign.shrunk with
        | Some (s, _) -> s
        | None -> o.Campaign.schedule
      in
      Printf.printf "%s lease trial %d failed: %s\n  repro: %s\n" protocol
        o.Campaign.trial
        (String.concat "; " o.Campaign.verdict.Trial.reasons)
        (Campaign.repro_line ~protocol ~seed:o.Campaign.seed shrunk))
    report.Campaign.failures;
  Alcotest.(check int)
    (protocol ^ " lease campaign failures")
    0
    (List.length report.Campaign.failures)

let test_trial_detects_unsurvivable_fault () =
  (* mencius wedges when a replica is partitioned away mid-run (its
     slot range stops being skipped and no other path revokes it);
     the liveness oracle must say so. Chain no longer works here: its
     explicitly-acked hops now heal through any transient fault. *)
  let schedule =
    [
      Schedule.Partition
        { minority = [ 1 ]; from_ms = 400.0; duration_ms = 600.0 };
    ]
  in
  let v = Trial.run ~protocol:"mencius" ~seed:11 schedule in
  Alcotest.(check bool) "mencius fails under partition" false v.Trial.ok;
  Alcotest.(check bool) "made some progress first" true (v.Trial.completed > 0)

let suite =
  ( "nemesis",
    List.map
      (fun p -> Alcotest.test_case ("campaign " ^ p) `Slow (test_campaign p))
      Paxi_protocols.Registry.names
    @ [
        Alcotest.test_case "campaign pool-deterministic" `Slow
          test_campaign_pool_deterministic;
        Alcotest.test_case "generate deterministic" `Quick
          test_generate_deterministic;
        Alcotest.test_case "generate respects kinds" `Quick
          test_generate_respects_kinds;
        Alcotest.test_case "generate bounds crashes" `Quick
          test_generate_crashes_bounded;
        Alcotest.test_case "crashed windows drain" `Quick
          test_generate_crashed_windows_drain;
        Alcotest.test_case "schedule json roundtrip" `Quick
          test_schedule_json_roundtrip;
        Alcotest.test_case "schedule text roundtrip" `Quick
          test_schedule_text_roundtrip_replays;
        Alcotest.test_case "shrink drops irrelevant faults" `Quick
          test_shrink_drops_irrelevant_faults;
        Alcotest.test_case "shrink halves windows" `Quick
          test_shrink_halves_windows;
        Alcotest.test_case "shrink result still fails" `Quick
          test_shrink_result_still_fails;
        Alcotest.test_case "shrink budget zero" `Quick
          test_shrink_budget_zero_is_identity;
        Alcotest.test_case "wpaxos n=6 steal wedge fixed" `Slow
          test_wpaxos_n6_no_wedge;
        Alcotest.test_case "trial detects unsurvivable fault" `Slow
          test_trial_detects_unsurvivable_fault;
        Alcotest.test_case "skew opt-in" `Quick test_skew_opt_in;
        Alcotest.test_case "skew schedule roundtrip" `Quick
          test_skew_schedule_roundtrip;
        Alcotest.test_case "lease reads survive partition+skew" `Slow
          test_lease_reads_survive_partition_and_skew;
        Alcotest.test_case "tail reads survive tail link faults" `Slow
          test_tail_reads_survive_tail_link_faults;
        Alcotest.test_case "quorum reads survive partition+skew" `Slow
          test_quorum_reads_survive_partition_and_skew;
      ]
    @ List.map
        (fun p ->
          Alcotest.test_case
            ("lease campaign with skew " ^ p)
            `Slow
            (test_lease_campaign_with_skew p))
        [ "paxos"; "fpaxos"; "raft" ] )
