(* Unit tests for the reliable-delivery substrate (lib/net/reliable):
   backoff schedule, cancel-on-ack, give-up after the try budget,
   receiver-side dedup of explicitly-acked posts, partial settling of
   multicast posts, and the inert degenerate mode. The harness drives
   two or three bare endpoints over a real LAN transport so fault
   windows, queueing delay and ack traffic all behave as in a full
   protocol run. *)

(* The transport envelope IS the packet type: no protocol on top. *)
type msg = string Reliable.packet

type node = {
  ep : (string, msg) Reliable.t;
  mutable delivered : (Address.t * string) list; (* newest first *)
}

let deliveries node = List.length node.delivered

let policy = { Reliable.base_ms = 10.0; max_ms = 40.0; max_tries = 3 }

let setup ?(n = 2) ?(policy = policy) () =
  let sim = Sim.create ~seed:7 () in
  let faults = Faults.create () in
  let transport : msg Transport.t =
    Transport.create ~sim ~topology:(Topology.lan ~n_replicas:n ()) ~faults ()
  in
  let nodes =
    Array.init n (fun i ->
        let self = Address.replica i in
        let ep = Reliable.create ~transport ~self ~policy ~inject:Fun.id in
        let node = { ep; delivered = [] } in
        Transport.register transport self (fun ~src pkt ->
            Reliable.on_packet ep ~src
              ~deliver:(fun ~src m ->
                node.delivered <- (src, m) :: node.delivered)
              pkt);
        node)
  in
  (sim, faults, transport, nodes)

let r i = Address.replica i

(* Fault-free: the ack lands well inside the first backoff window, so
   the timer dies unfired — zero retransmits, zero duplicates. *)
let test_cancel_on_ack () =
  let sim, _, _, nodes = setup () in
  let _key = Reliable.post nodes.(0).ep ~ack:Reliable.Explicit ~dst:(r 1) "hello" in
  Sim.run sim;
  Alcotest.(check int) "delivered exactly once" 1 (deliveries nodes.(1));
  Alcotest.(check int) "no retransmits" 0 (Reliable.retransmits nodes.(0).ep);
  Alcotest.(check int) "no dup drops" 0 (Reliable.dup_drops nodes.(1).ep);
  Alcotest.(check int) "post settled" 0 (Reliable.outstanding nodes.(0).ep)

(* A black-holed link exposes the raw schedule: with base 10ms, cap
   40ms and 3 tries, retransmissions fire at t=10, 30 and 70, and the
   endpoint abandons the post at t=110. *)
let test_backoff_schedule_and_give_up () =
  let sim, faults, _, nodes = setup () in
  Faults.drop faults ~src:(r 0) ~dst:(r 1) ~from_ms:0.0 ~duration_ms:10_000.0;
  let _key = Reliable.post nodes.(0).ep ~ack:Reliable.Explicit ~dst:(r 1) "lost" in
  let at t expect =
    Sim.run_until sim t;
    Alcotest.(check int)
      (Printf.sprintf "retransmits by t=%.0f" t)
      expect
      (Reliable.retransmits nodes.(0).ep)
  in
  at 9.0 0;
  at 15.0 1;
  at 35.0 2;
  at 75.0 3;
  at 200.0 3;
  Alcotest.(check int) "gave up: no open post" 0
    (Reliable.outstanding nodes.(0).ep);
  Alcotest.(check int) "nothing got through" 0 (deliveries nodes.(1))

(* A transient blackout shorter than the try budget heals: the first
   retransmission after the window lifts delivers, the ack settles the
   post, and no further copies are sent. *)
let test_loss_healed_within_budget () =
  let sim, faults, _, nodes = setup () in
  Faults.drop faults ~src:(r 0) ~dst:(r 1) ~from_ms:0.0 ~duration_ms:25.0;
  let _key = Reliable.post nodes.(0).ep ~ack:Reliable.Explicit ~dst:(r 1) "heal" in
  Sim.run sim;
  Alcotest.(check int) "delivered exactly once" 1 (deliveries nodes.(1));
  Alcotest.(check int) "two copies lost to the window" 2
    (Reliable.retransmits nodes.(0).ep);
  Alcotest.(check int) "post settled" 0 (Reliable.outstanding nodes.(0).ep)

(* Losing the acks instead of the payloads exercises the receiver
   side: every duplicate is suppressed and re-acked until an ack
   finally survives. *)
let test_explicit_dedup () =
  let sim, faults, _, nodes = setup () in
  Faults.drop faults ~src:(r 1) ~dst:(r 0) ~from_ms:0.0 ~duration_ms:25.0;
  let _key = Reliable.post nodes.(0).ep ~ack:Reliable.Explicit ~dst:(r 1) "dup" in
  Sim.run sim;
  Alcotest.(check int) "handler ran exactly once" 1 (deliveries nodes.(1));
  Alcotest.(check int) "duplicates suppressed" 2
    (Reliable.dup_drops nodes.(1).ep);
  Alcotest.(check int) "payload resent while unacked" 2
    (Reliable.retransmits nodes.(0).ep);
  Alcotest.(check int) "eventually settled" 0
    (Reliable.outstanding nodes.(0).ep)

(* Piggyback mode never suppresses duplicates (handlers are idempotent
   and re-answering is what regenerates a lost reply) and never emits
   substrate acks: without a protocol-level settle the post runs its
   full budget and every copy is delivered. *)
let test_piggyback_redelivers () =
  let sim, _, _, nodes = setup () in
  let key =
    Reliable.post nodes.(0).ep ~ack:Reliable.Piggyback ~dst:(r 1) "again"
  in
  Sim.run sim;
  Alcotest.(check int) "initial + every retransmission delivered"
    (1 + policy.Reliable.max_tries)
    (deliveries nodes.(1));
  Alcotest.(check int) "piggyback never counts dups" 0
    (Reliable.dup_drops nodes.(1).ep);
  Alcotest.(check int) "budget exhausted, post abandoned" 0
    (Reliable.outstanding nodes.(0).ep);
  (* late settle of a dead key must be a no-op *)
  Reliable.settle nodes.(0).ep ~dst:(r 1) ~key;
  Alcotest.(check int) "late settle ignored" 0
    (Reliable.outstanding nodes.(0).ep)

(* Piggyback cancel-on-settle: a protocol-level settle before the
   first backoff deadline silences the timer for good. *)
let test_piggyback_settle_cancels () =
  let sim, _, _, nodes = setup () in
  let key =
    Reliable.post nodes.(0).ep ~ack:Reliable.Piggyback ~dst:(r 1) "once"
  in
  Sim.run_until sim 5.0;
  Reliable.settle nodes.(0).ep ~dst:(r 1) ~key;
  Sim.run sim;
  Alcotest.(check int) "delivered exactly once" 1 (deliveries nodes.(1));
  Alcotest.(check int) "no retransmits after settle" 0
    (Reliable.retransmits nodes.(0).ep);
  Alcotest.(check int) "post closed" 0 (Reliable.outstanding nodes.(0).ep)

(* Multicast posts settle per destination: once a destination acks,
   retransmissions go only to the stragglers. *)
let test_post_multi_partial_settle () =
  let sim, faults, _, nodes = setup ~n:3 () in
  Faults.drop faults ~src:(r 0) ~dst:(r 2) ~from_ms:0.0 ~duration_ms:25.0;
  let _key =
    Reliable.post_multi nodes.(0).ep ~ack:Reliable.Explicit
      ~dsts:[ r 1; r 2 ] "fanout"
  in
  Sim.run sim;
  Alcotest.(check int) "settled dst never re-hit" 1 (deliveries nodes.(1));
  Alcotest.(check int) "straggler reached after the window" 1
    (deliveries nodes.(2));
  Alcotest.(check int) "copies resent to the straggler only" 2
    (Reliable.retransmits nodes.(0).ep);
  Alcotest.(check int) "fully settled" 0 (Reliable.outstanding nodes.(0).ep)

(* Inert policy (max_tries = 0): a post is a plain transport send —
   no state, no timers, no acks — so a lost message stays lost. *)
let test_inert_is_plain_send () =
  let sim, faults, transport, nodes = setup ~policy:Reliable.inert () in
  Faults.drop faults ~src:(r 0) ~dst:(r 1) ~from_ms:0.0 ~duration_ms:10_000.0;
  let _k1 = Reliable.post nodes.(0).ep ~ack:Reliable.Explicit ~dst:(r 1) "void" in
  Sim.run sim;
  Alcotest.(check int) "no open posts in inert mode" 0
    (Reliable.outstanding nodes.(0).ep);
  Alcotest.(check int) "no retransmits in inert mode" 0
    (Reliable.retransmits nodes.(0).ep);
  Alcotest.(check int) "lost message stays lost" 0 (deliveries nodes.(1));
  (* and a delivered one arrives exactly once, without ack traffic *)
  Faults.clear faults;
  let _k2 = Reliable.post nodes.(0).ep ~ack:Reliable.Explicit ~dst:(r 1) "plain" in
  Sim.run sim;
  Alcotest.(check int) "delivered exactly once" 1 (deliveries nodes.(1));
  (* two posts, two wire messages: the receiver acked neither *)
  Alcotest.(check int) "no ack traffic" 2 (Transport.sent_count transport)

(* Dedup memory must be bounded by open posts, not run length: every
   payload advertises the sender's settled frontier, and the receiver
   prunes its seen-set below that floor. A long sequence of settled
   posts leaves at most the last key remembered. *)
let test_dedup_memory_bounded () =
  let sim, _, _, nodes = setup () in
  let rounds = 200 in
  for i = 1 to rounds do
    let _key =
      Reliable.post nodes.(0).ep ~ack:Reliable.Explicit ~dst:(r 1)
        (Printf.sprintf "m%d" i)
    in
    Sim.run sim
  done;
  Alcotest.(check int) "all delivered" rounds (deliveries nodes.(1));
  Alcotest.(check int) "sender frontier past every key" (rounds + 1)
    (Reliable.frontier nodes.(0).ep);
  Alcotest.(check bool)
    (Printf.sprintf "dedup entries pruned (%d remembered)"
       (Reliable.dedup_entries nodes.(1).ep))
    true
    (Reliable.dedup_entries nodes.(1).ep <= 1)

(* A stray late copy of a key below the advertised frontier is dropped
   as a duplicate even though its seen-entry was already pruned. *)
let test_floor_drops_stray_copy () =
  let _sim, _, _, nodes = setup () in
  let got = ref 0 in
  let deliver ~src:_ _ = incr got in
  let packet key frontier =
    Reliable.Payload { key; frontier; ack = Reliable.Explicit; msg = "x" }
  in
  Reliable.on_packet nodes.(1).ep ~src:(r 0) ~deliver (packet 5 5);
  Alcotest.(check int) "fresh key delivered" 1 !got;
  Reliable.on_packet nodes.(1).ep ~src:(r 0) ~deliver (packet 1 5);
  Alcotest.(check int) "stray copy below the floor suppressed" 1 !got;
  Alcotest.(check int) "counted as a dup" 1 (Reliable.dup_drops nodes.(1).ep)

(* Re-posting an explicit key the frontier has passed would be
   silently dropped by every receiver: the endpoint refuses it. *)
let test_pinned_key_below_frontier_rejected () =
  let sim, _, _, nodes = setup () in
  let key = Reliable.post nodes.(0).ep ~ack:Reliable.Explicit ~dst:(r 1) "a" in
  Sim.run sim;
  Alcotest.(check bool) "frontier passed the key" true
    (Reliable.frontier nodes.(0).ep > key);
  Alcotest.check_raises "reuse below frontier"
    (Invalid_argument
       "Reliable.post_multi: explicit post reuses a key below the settled \
        frontier (receivers would drop it as a duplicate)") (fun () ->
      ignore
        (Reliable.post nodes.(0).ep ~key ~ack:Reliable.Explicit ~dst:(r 1) "b"))

let suite =
  ( "reliable",
    [
      Alcotest.test_case "cancel on ack" `Quick test_cancel_on_ack;
      Alcotest.test_case "backoff schedule and give-up" `Quick
        test_backoff_schedule_and_give_up;
      Alcotest.test_case "loss healed within budget" `Quick
        test_loss_healed_within_budget;
      Alcotest.test_case "explicit dedup" `Quick test_explicit_dedup;
      Alcotest.test_case "piggyback redelivers" `Quick
        test_piggyback_redelivers;
      Alcotest.test_case "piggyback settle cancels" `Quick
        test_piggyback_settle_cancels;
      Alcotest.test_case "post_multi partial settle" `Quick
        test_post_multi_partial_settle;
      Alcotest.test_case "inert is plain send" `Quick
        test_inert_is_plain_send;
      Alcotest.test_case "dedup memory bounded" `Quick
        test_dedup_memory_bounded;
      Alcotest.test_case "floor drops stray copy" `Quick
        test_floor_drops_stray_copy;
      Alcotest.test_case "pinned key below frontier rejected" `Quick
        test_pinned_key_below_frontier_rejected;
    ] )
