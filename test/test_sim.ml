let test_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:2.0 (fun () -> log := "b" :: !log));
  ignore (Sim.schedule_at sim ~time:1.0 (fun () -> log := "a" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref [] in
  ignore (Sim.schedule_at sim ~time:5.0 (fun () -> seen := Sim.now sim :: !seen));
  ignore (Sim.schedule_at sim ~time:10.0 (fun () -> seen := Sim.now sim :: !seen));
  Sim.run sim;
  Alcotest.(check (list (float 0.0))) "clock at events" [ 5.0; 10.0 ] (List.rev !seen)

let test_schedule_after () =
  let sim = Sim.create () in
  let fired_at = ref 0.0 in
  ignore
    (Sim.schedule_at sim ~time:3.0 (fun () ->
         ignore (Sim.schedule_after sim ~delay:2.0 (fun () -> fired_at := Sim.now sim))));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "relative" 5.0 !fired_at

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim ~time:1.0 (fun () -> fired := true) in
  Sim.cancel sim h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled" false !fired;
  (* cancelling again — or cancelling [nil] — is a no-op, even after
     the slot was recycled *)
  Sim.cancel sim h;
  Sim.cancel sim Sim.nil;
  Alcotest.(check bool) "nil is nil" true (Sim.is_nil Sim.nil)

let test_stale_handle_ignored () =
  (* a handle kept across its event's firing must not cancel the
     slot's next tenant (generation counters make it stale) *)
  let sim = Sim.create () in
  let h1 = Sim.schedule_at sim ~time:1.0 (fun () -> ()) in
  Sim.run sim;
  let fired = ref false in
  ignore (Sim.schedule_at sim ~time:2.0 (fun () -> fired := true));
  Sim.cancel sim h1;
  Sim.run sim;
  Alcotest.(check bool) "second event still fired" true !fired

let test_run_until_horizon () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Sim.schedule_at sim ~time:t (fun () -> fired := t :: !fired)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Sim.run_until sim 2.5;
  Alcotest.(check (list (float 0.0))) "only before horizon" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock at horizon" 2.5 (Sim.now sim);
  Sim.run_until sim 10.0;
  Alcotest.(check int) "rest fired" 4 (List.length !fired)

let test_past_scheduling_rejected () =
  let sim = Sim.create () in
  Sim.run_until sim 5.0;
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time 1 < now 5")
    (fun () -> ignore (Sim.schedule_at sim ~time:1.0 (fun () -> ())))

let test_negative_delay_clamped () =
  let sim = Sim.create () in
  Sim.run_until sim 5.0;
  let fired = ref false in
  ignore (Sim.schedule_after sim ~delay:(-3.0) (fun () -> fired := true));
  Sim.run sim;
  Alcotest.(check bool) "fired now" true !fired

let test_cascading_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Sim.schedule_after sim ~delay:1.0 (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 100;
  Sim.run sim;
  Alcotest.(check int) "all fired" 100 !count;
  Alcotest.(check (float 0.0)) "time" 100.0 (Sim.now sim)

let test_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1.0 (fun () -> ()));
  Alcotest.(check bool) "one step" true (Sim.step sim);
  Alcotest.(check bool) "exhausted" false (Sim.step sim)

let test_pending () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1.0 (fun () -> ()));
  ignore (Sim.schedule_at sim ~time:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Sim.pending sim)

(* --- zero-delay lane ------------------------------------------------ *)

let test_immediate_runs_before_later_events () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:1.0 (fun () -> log := "later" :: !log));
  ignore (Sim.schedule_immediate sim (fun () -> log := "now" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "immediate first" [ "now"; "later" ]
    (List.rev !log);
  Alcotest.(check (float 0.0)) "clock stayed for immediate" 1.0 (Sim.now sim)

let test_immediate_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  List.iter
    (fun tag -> ignore (Sim.schedule_immediate sim (fun () -> log := tag :: !log)))
    [ "a"; "b"; "c" ];
  Sim.run sim;
  Alcotest.(check (list string)) "lane is FIFO" [ "a"; "b"; "c" ] (List.rev !log)

let test_immediate_interleaves_with_same_time_heap () =
  (* schedule_at at the current instant routes to the lane; either way
     the merged order must follow scheduling order at equal times *)
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule_at sim ~time:2.0 (fun () ->
         ignore (Sim.schedule_immediate sim (fun () -> log := "i1" :: !log));
         ignore (Sim.schedule_at sim ~time:2.0 (fun () -> log := "z1" :: !log));
         ignore (Sim.schedule_immediate sim (fun () -> log := "i2" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "scheduling order at one instant"
    [ "i1"; "z1"; "i2" ] (List.rev !log)

let test_immediate_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore
    (Sim.schedule_at sim ~time:1.0 (fun () ->
         let h = Sim.schedule_immediate sim (fun () -> fired := true) in
         Sim.cancel sim h));
  Sim.run sim;
  Alcotest.(check bool) "cancelled lane event" false !fired

let test_immediate_counts_as_pending_and_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule_immediate sim (fun () -> ()));
  ignore (Sim.schedule_at sim ~time:1.0 (fun () -> ()));
  Alcotest.(check int) "lane + heap pending" 2 (Sim.pending sim);
  Alcotest.(check bool) "step lane" true (Sim.step sim);
  Alcotest.(check bool) "step heap" true (Sim.step sim);
  Alcotest.(check bool) "exhausted" false (Sim.step sim)

(* --- cancelled-event retention -------------------------------------- *)

let test_mass_cancel_compacts_heap () =
  (* a leader re-arming 10k timers and cancelling them all must not
     leave 10k dead entries pinned in the heap: lazy deletion compacts
     once the dead fraction crosses a half *)
  let sim = Sim.create () in
  let n = 10_000 in
  let handles =
    Array.init n (fun i ->
        Sim.schedule_at sim ~time:(1.0 +. float_of_int i) (fun () ->
            Alcotest.fail "cancelled timer fired"))
  in
  Alcotest.(check int) "all pending" n (Sim.pending sim);
  Array.iter (fun h -> Sim.cancel sim h) handles;
  Alcotest.(check bool)
    (Printf.sprintf "heap compacted (pending %d)" (Sim.pending sim))
    true
    (Sim.pending sim < n / 4);
  Sim.run sim;
  Alcotest.(check int) "no events fired" 0 (Sim.events_fired sim)

let test_cancel_interleaved_survivors_fire_in_order () =
  (* cancelling every other timer — enough to trigger compaction —
     must not disturb the survivors' firing order or clock *)
  let sim = Sim.create () in
  let n = 2_000 in
  let log = ref [] in
  let handles =
    Array.init n (fun i ->
        Sim.schedule_at sim ~time:(1.0 +. float_of_int i) (fun () ->
            log := i :: !log))
  in
  for i = 0 to n - 1 do
    if i mod 2 = 0 then Sim.cancel sim handles.(i)
  done;
  Sim.run sim;
  let expect = List.init (n / 2) (fun k -> (2 * k) + 1) in
  Alcotest.(check (list int)) "odd timers in order" expect (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last survivor"
    (1.0 +. float_of_int (n - 1))
    (Sim.now sim)

let test_immediate_cascade_runs_same_instant () =
  let sim = Sim.create () in
  let depth = ref 0 in
  let rec go n =
    if n > 0 then
      ignore
        (Sim.schedule_immediate sim (fun () ->
             incr depth;
             go (n - 1)))
  in
  ignore (Sim.schedule_at sim ~time:3.0 (fun () -> go 50));
  Sim.run sim;
  Alcotest.(check int) "all ran" 50 !depth;
  Alcotest.(check (float 0.0)) "no time passed" 3.0 (Sim.now sim)

let suite =
  ( "sim",
    [
      Alcotest.test_case "schedule order" `Quick test_schedule_order;
      Alcotest.test_case "clock advances" `Quick test_clock_advances;
      Alcotest.test_case "schedule_after is relative" `Quick test_schedule_after;
      Alcotest.test_case "cancel" `Quick test_cancel;
      Alcotest.test_case "stale handle ignored" `Quick test_stale_handle_ignored;
      Alcotest.test_case "mass cancel compacts heap" `Quick
        test_mass_cancel_compacts_heap;
      Alcotest.test_case "cancel interleaved, survivors in order" `Quick
        test_cancel_interleaved_survivors_fire_in_order;
      Alcotest.test_case "run_until horizon" `Quick test_run_until_horizon;
      Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
      Alcotest.test_case "negative delay clamped" `Quick test_negative_delay_clamped;
      Alcotest.test_case "cascading events" `Quick test_cascading_events;
      Alcotest.test_case "step" `Quick test_step;
      Alcotest.test_case "pending" `Quick test_pending;
      Alcotest.test_case "immediate before later events" `Quick
        test_immediate_runs_before_later_events;
      Alcotest.test_case "immediate FIFO" `Quick test_immediate_fifo;
      Alcotest.test_case "immediate interleaves with same-time heap" `Quick
        test_immediate_interleaves_with_same_time_heap;
      Alcotest.test_case "immediate cancel" `Quick test_immediate_cancel;
      Alcotest.test_case "immediate pending/step" `Quick
        test_immediate_counts_as_pending_and_step;
      Alcotest.test_case "immediate cascade same instant" `Quick
        test_immediate_cascade_runs_same_instant;
    ] )
