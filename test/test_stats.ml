let mk xs =
  let s = Stats.create () in
  Stats.add_all s xs;
  s

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "percentile nan" true (Float.is_nan (Stats.percentile s 50.0))

let test_moments () =
  let s = mk [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s);
  (* unbiased sample variance of that classic set = 32/7 *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s)

let test_percentiles () =
  let s = mk (List.init 101 float_of_int) in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p25" 25.0 (Stats.percentile s 25.0)

let test_percentile_interpolation () =
  let s = mk [ 1.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "p50 interp" 1.5 (Stats.percentile s 50.0)

let test_median_single () =
  let s = mk [ 42.0 ] in
  Alcotest.(check (float 1e-9)) "median" 42.0 (Stats.median s)

let test_add_after_percentile () =
  (* percentile sorts in place; later adds must still work *)
  let s = mk [ 3.0; 1.0; 2.0 ] in
  ignore (Stats.median s);
  Stats.add s 0.0;
  Alcotest.(check (float 1e-9)) "new min" 0.0 (Stats.percentile s 0.0);
  Alcotest.(check int) "count" 4 (Stats.count s)

let test_cdf () =
  let s = mk [ 1.0; 2.0; 3.0; 4.0 ] in
  let cdf = Stats.cdf s ~points:4 in
  Alcotest.(check int) "points" 4 (List.length cdf);
  let values = List.map fst cdf in
  Alcotest.(check bool) "non-decreasing" true
    (List.sort Float.compare values = values);
  let _, last_q = List.nth cdf 3 in
  Alcotest.(check (float 1e-9)) "last quantile" 1.0 last_q

let test_histogram () =
  let s = mk [ 0.0; 0.5; 1.0; 1.5; 2.0 ] in
  let h = Stats.histogram s ~bins:2 in
  Alcotest.(check int) "bins" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples binned" 5 total

let test_variance_large_offset () =
  (* regression: the sumsq - n*mean^2 form cancels catastrophically
     when samples sit on a large offset, yielding 0 or even negative
     variance; Welford's centered accumulation must not. Samples are
     virtual-time-like stamps ~1e9 apart by [0,4] ms. *)
  let offset = 1.0e9 in
  let xs = List.map (fun v -> offset +. v) [ 0.0; 1.0; 2.0; 3.0; 4.0 ] in
  let s = mk xs in
  (* exact unbiased variance of {0..4} is 2.5, unaffected by shift *)
  Alcotest.(check (float 1e-6)) "shifted variance" 2.5 (Stats.variance s);
  Alcotest.(check bool) "stddev finite" true
    (Float.is_finite (Stats.stddev s) && Stats.stddev s > 0.0)

let prop_variance_shift_invariant =
  QCheck.Test.make ~name:"variance invariant under 1e9 offset" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range 0.0 100.0))
    (fun xs ->
      let base = mk xs in
      let shifted = mk (List.map (fun v -> v +. 1.0e9) xs) in
      let v0 = Stats.variance base and v1 = Stats.variance shifted in
      v1 >= 0.0 && Float.abs (v1 -. v0) <= 1e-4 *. Float.max 1.0 v0)

let prop_cdf_matches_percentile =
  (* the satellite fix: cdf quantiles are percentile values, always *)
  QCheck.Test.make ~name:"cdf agrees with percentile at every point" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 40) (float_range 0.0 100.0))
        (int_range 1 20))
    (fun (xs, points) ->
      let s = mk xs in
      List.for_all
        (fun (v, q) -> Float.abs (v -. Stats.percentile s (q *. 100.0)) <= 1e-9)
        (Stats.cdf s ~points))

let test_merge () =
  let a = mk [ 1.0; 2.0 ] and b = mk [ 3.0; 4.0 ] in
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 4 (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean m)

(* The amortized sort (sorted prefix + merged tail) must be
   indistinguishable from naively re-sorting everything on each query,
   under arbitrary interleavings of [add] and [percentile]. Chunk
   sizes are decoded from the generated list; a query runs between
   chunks and after the last one. *)
let naive_percentile xs p =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let p = Float.max 0.0 (Float.min 100.0 p) in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let prop_percentile_interleaved =
  QCheck.Test.make ~name:"percentile matches naive sort across interleaved adds"
    ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 8)
           (list_of_size (Gen.int_range 0 20) (float_range 0.0 100.0)))
        (float_range 0.0 100.0))
    (fun (chunks, p) ->
      let s = Stats.create () in
      let seen = ref [] in
      List.for_all
        (fun chunk ->
          List.iter (Stats.add s) chunk;
          seen := !seen @ chunk;
          match !seen with
          | [] -> Float.is_nan (Stats.percentile s p)
          | xs ->
              let got = Stats.percentile s p in
              let expect = naive_percentile xs p in
              Float.abs (got -. expect) <= 1e-9
              && (* the sorted view must agree too *)
              Stats.samples s
              = (let a = Array.of_list xs in
                 Array.sort Float.compare a;
                 a))
        chunks)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range 0.0 100.0))
    (fun xs ->
      let s = mk xs in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let vals = List.map (Stats.percentile s) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-50.0) 50.0))
    (fun xs ->
      let s = mk xs in
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

let suite =
  ( "stats",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "moments" `Quick test_moments;
      Alcotest.test_case "percentiles" `Quick test_percentiles;
      Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
      Alcotest.test_case "median of single" `Quick test_median_single;
      Alcotest.test_case "add after percentile" `Quick test_add_after_percentile;
      Alcotest.test_case "cdf" `Quick test_cdf;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "merge" `Quick test_merge;
      Alcotest.test_case "variance at large offset" `Quick
        test_variance_large_offset;
      QCheck_alcotest.to_alcotest prop_variance_shift_invariant;
      QCheck_alcotest.to_alcotest prop_cdf_matches_percentile;
      QCheck_alcotest.to_alcotest prop_percentile_monotone;
      QCheck_alcotest.to_alcotest prop_mean_bounded;
      QCheck_alcotest.to_alcotest prop_percentile_interleaved;
    ] )
