(* Hot-path soundness: the collapsed-delivery fast path must be
   invisible to every measured statistic, and leader command batching
   must both stay safe and actually raise saturation throughput. *)

open Paxi_benchmark

let paxos = Paxi_protocols.Registry.find_exn "paxos"
let raft = Paxi_protocols.Registry.find_exn "raft"

let lan_spec ?batching ?retransmit ?(tracing = false) ?(seed = 7)
    ?(concurrency = 12) ?(duration_ms = 1_500.0) ?(collect_history = false)
    ?(check_consensus = false) () =
  let n = 5 in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.seed;
      batching;
      retransmit;
      tracing;
    }
  in
  Runner.spec ~warmup_ms:300.0 ~duration_ms ~collect_history ~check_consensus
    ~config
    ~topology:(Topology.lan ~n_replicas:n ())
    ~client_specs:
      [
        Runner.clients ~target:(Runner.Fixed 0) ~count:concurrency
          { Workload.default with Workload.keys = 30 };
      ]
    ()

let with_inline_delivery v f =
  let saved = !Transport.inline_delivery in
  Transport.inline_delivery := v;
  Fun.protect ~finally:(fun () -> Transport.inline_delivery := saved) f

let with_pooling v f =
  let saved_rel = !Reliable.pooling
  and saved_tr = !Paxi_obs.Trace.pooling
  and saved_net = !Transport.pooling in
  Reliable.pooling := v;
  Paxi_obs.Trace.pooling := v;
  Transport.pooling := v;
  Fun.protect
    ~finally:(fun () ->
      Reliable.pooling := saved_rel;
      Paxi_obs.Trace.pooling := saved_tr;
      Transport.pooling := saved_net)
    f

(* The acceptance bar of this PR: a fixed-seed run with delivery
   collapse enabled is statistically byte-identical to the same run
   with every delivery going through the heap. *)
let test_inline_delivery_invisible () =
  let run inline =
    with_inline_delivery inline (fun () -> Runner.run paxos (lan_spec ()))
  in
  let off = run false and on = run true in
  Alcotest.(check int) "no inlining when disabled" 0
    off.Runner.sim_events_inlined;
  Alcotest.(check bool) "fast path actually taken" true
    (on.Runner.sim_events_inlined > 0);
  Alcotest.(check (float 0.0)) "throughput identical"
    off.Runner.throughput_rps on.Runner.throughput_rps;
  Alcotest.(check (float 0.0)) "mean latency identical"
    (Stats.mean off.Runner.latency)
    (Stats.mean on.Runner.latency);
  Alcotest.(check (float 0.0)) "max latency identical"
    (Stats.max off.Runner.latency)
    (Stats.max on.Runner.latency);
  Alcotest.(check int) "completed identical" off.Runner.completed
    on.Runner.completed;
  Alcotest.(check int) "messages identical" off.Runner.messages_sent
    on.Runner.messages_sent;
  Alcotest.(check int) "event totals identical" off.Runner.sim_events
    on.Runner.sim_events

(* The reliable-delivery substrate's acceptance bar: on a loss-free
   network every retransmission timer is cancelled by its ack before
   firing, so a fixed-seed run with the layer armed matches the
   disabled run on every statistic except the inline-delivery count
   (cancelled timer entries sitting in the heap can block
   [Sim.try_inline], which is exactly the one counter the collapse is
   allowed to vary). The recovery counters must also stay at zero. *)
let test_retransmit_inert_when_fault_free () =
  let retransmit =
    { Config.base_ms = 40.0; max_ms = 320.0; max_tries = 25 }
  in
  List.iter
    (fun (name, p) ->
      let off = Runner.run p (lan_spec ())
      and on = Runner.run p (lan_spec ~retransmit ()) in
      Alcotest.(check int) (name ^ ": zero retransmits") 0 on.Runner.retransmits;
      Alcotest.(check int) (name ^ ": zero dup drops") 0 on.Runner.dup_drops;
      Alcotest.(check (float 0.0))
        (name ^ ": throughput identical")
        off.Runner.throughput_rps on.Runner.throughput_rps;
      Alcotest.(check (float 0.0))
        (name ^ ": mean latency identical")
        (Stats.mean off.Runner.latency)
        (Stats.mean on.Runner.latency);
      Alcotest.(check (float 0.0))
        (name ^ ": max latency identical")
        (Stats.max off.Runner.latency)
        (Stats.max on.Runner.latency);
      Alcotest.(check int)
        (name ^ ": completed identical")
        off.Runner.completed on.Runner.completed;
      Alcotest.(check int)
        (name ^ ": messages identical")
        off.Runner.messages_sent on.Runner.messages_sent;
      Alcotest.(check int)
        (name ^ ": event totals identical")
        off.Runner.sim_events on.Runner.sim_events)
    [ ("paxos", paxos); ("raft", raft) ]

(* The tracing subsystem's acceptance bar: instrumentation only reads
   timestamps the simulator already computed — no extra randomness, no
   extra events — so a fixed-seed run with tracing on is statistically
   byte-identical to the same run with tracing off. *)
let test_tracing_invisible () =
  let off = Runner.run paxos (lan_spec ())
  and on = Runner.run paxos (lan_spec ~tracing:true ()) in
  Alcotest.(check (float 0.0)) "throughput identical"
    off.Runner.throughput_rps on.Runner.throughput_rps;
  Alcotest.(check (float 0.0)) "mean latency identical"
    (Stats.mean off.Runner.latency)
    (Stats.mean on.Runner.latency);
  Alcotest.(check (float 0.0)) "max latency identical"
    (Stats.max off.Runner.latency)
    (Stats.max on.Runner.latency);
  Alcotest.(check int) "completed identical" off.Runner.completed
    on.Runner.completed;
  Alcotest.(check int) "messages identical" off.Runner.messages_sent
    on.Runner.messages_sent;
  Alcotest.(check int) "event totals identical" off.Runner.sim_events
    on.Runner.sim_events;
  Alcotest.(check int) "inlined events identical"
    off.Runner.sim_events_inlined on.Runner.sim_events_inlined;
  (* and the traced run actually collected a dissection *)
  let tr = on.Runner.trace in
  Alcotest.(check bool) "trace disabled by default" false
    (Paxi_obs.Trace.enabled off.Runner.trace);
  Alcotest.(check bool) "spans collected" true
    (Paxi_obs.Trace.span_count tr > 0);
  Alcotest.(check bool) "components populated" true
    (List.for_all
       (fun (_, s) -> Stats.count s > 0)
       (Paxi_obs.Trace.components tr))

(* Unbatched runs must not notice that the batching machinery exists:
   same seed, batching = None, identical statistics run-to-run. *)
let test_fixed_seed_reproducible () =
  let r1 = Runner.run paxos (lan_spec ())
  and r2 = Runner.run paxos (lan_spec ()) in
  Alcotest.(check (float 0.0)) "throughput reproducible"
    r1.Runner.throughput_rps r2.Runner.throughput_rps;
  Alcotest.(check (float 0.0)) "latency reproducible"
    (Stats.mean r1.Runner.latency)
    (Stats.mean r2.Runner.latency);
  Alcotest.(check int) "events reproducible" r1.Runner.sim_events
    r2.Runner.sim_events

(* The pooling acceptance bar of this PR: recycling post records,
   retransmit thunks and trace request records must be invisible to
   every measured statistic. Run with retransmission armed and tracing
   on so both free lists are actually exercised. *)
let test_pooling_invisible () =
  let retransmit =
    { Config.base_ms = 40.0; max_ms = 320.0; max_tries = 25 }
  in
  let run pooled =
    with_pooling pooled (fun () ->
        Runner.run paxos (lan_spec ~retransmit ~tracing:true ()))
  in
  let on = run true and off = run false in
  Alcotest.(check (float 0.0)) "throughput identical"
    off.Runner.throughput_rps on.Runner.throughput_rps;
  Alcotest.(check (float 0.0)) "mean latency identical"
    (Stats.mean off.Runner.latency)
    (Stats.mean on.Runner.latency);
  Alcotest.(check (float 0.0)) "max latency identical"
    (Stats.max off.Runner.latency)
    (Stats.max on.Runner.latency);
  Alcotest.(check int) "completed identical" off.Runner.completed
    on.Runner.completed;
  Alcotest.(check int) "messages identical" off.Runner.messages_sent
    on.Runner.messages_sent;
  Alcotest.(check int) "event totals identical" off.Runner.sim_events
    on.Runner.sim_events;
  Alcotest.(check int) "inlined events identical"
    off.Runner.sim_events_inlined on.Runner.sim_events_inlined;
  Alcotest.(check int) "retransmits identical" off.Runner.retransmits
    on.Runner.retransmits;
  Alcotest.(check int) "span counts identical"
    (Paxi_obs.Trace.span_count off.Runner.trace)
    (Paxi_obs.Trace.span_count on.Runner.trace)

(* Allocation-regression pin. The zero-alloc overhaul halved the Paxos
   LAN event loop's allocation rate (~430 bytes/event on this scenario
   at the time of writing — what remains is dominated by the protocol
   message values themselves, which are real data, not hot-path
   machinery). The band is ~1.4x the measured figure: loose enough to
   absorb GC accounting noise and scenario drift, tight enough that
   reintroducing boxed-float returns or per-message closures on the
   delivery path (which cost 100+ bytes/event last time) trips it. *)
let bytes_per_event_cap = 600.0

let test_allocation_per_event_pinned () =
  let r = Runner.run paxos (lan_spec ()) in
  Alcotest.(check bool)
    (Printf.sprintf "bytes/event %.1f <= %.0f" r.Runner.bytes_per_event
       bytes_per_event_cap)
    true
    (r.Runner.bytes_per_event <= bytes_per_event_cap);
  (* retransmission armed on a loss-free run must not change the
     allocation class: every post recycles through the free list *)
  let retransmit =
    { Config.base_ms = 40.0; max_ms = 320.0; max_tries = 25 }
  in
  let rr = Runner.run paxos (lan_spec ~retransmit ()) in
  Alcotest.(check bool)
    (Printf.sprintf "armed bytes/event %.1f <= %.0f" rr.Runner.bytes_per_event
       (2.0 *. bytes_per_event_cap))
    true
    (rr.Runner.bytes_per_event <= 2.0 *. bytes_per_event_cap)

let check_safe name (r : Runner.result) =
  let anomalies = Linearizability.check r.Runner.history in
  List.iter
    (fun a -> Printf.printf "%s anomaly: %s\n" name a.Linearizability.reason)
    anomalies;
  Alcotest.(check int) (name ^ " linearizable") 0 (List.length anomalies);
  Alcotest.(check int)
    (name ^ " consensus clean")
    0
    (List.length r.Runner.consensus_violations);
  Alcotest.(check int) (name ^ " nothing abandoned") 0 r.Runner.gave_up

let batching = { Config.max_batch = 8; max_wait_ms = 0.2 }

let test_batched_paxos_safe () =
  let r =
    Runner.run paxos
      (lan_spec ~batching ~collect_history:true ~check_consensus:true ())
  in
  Alcotest.(check bool) "made progress" true (r.Runner.throughput_rps > 100.0);
  check_safe "batched paxos" r

let test_batched_raft_safe () =
  let r =
    Runner.run raft
      (lan_spec ~batching ~collect_history:true ~check_consensus:true ())
  in
  Alcotest.(check bool) "made progress" true (r.Runner.throughput_rps > 100.0);
  check_safe "batched raft" r

let test_batched_fpaxos_safe () =
  let fpaxos = Paxi_protocols.Registry.find_exn "fpaxos" in
  let r =
    Runner.run fpaxos
      (lan_spec ~batching ~collect_history:true ~check_consensus:true ())
  in
  Alcotest.(check bool) "made progress" true (r.Runner.throughput_rps > 100.0);
  check_safe "batched fpaxos" r

(* A lone slow client never fills a batch: the max_wait timer must
   flush for it, and every command still gets its own reply. *)
let test_max_wait_flushes_partial_batch () =
  let module P = (val paxos) in
  let module H = Proto_harness.Make (P) in
  let t =
    H.lan
      ~config:
        {
          (Config.default ~n_replicas:3) with
          Config.batching = Some { Config.max_batch = 64; max_wait_ms = 1.0 };
        }
      ~n:3 ()
  in
  let replies =
    H.submit_seq t
      (List.init 5 (fun i -> Command.Put (i, 100 + i)))
  in
  Alcotest.(check int) "every command replied" 5 (List.length replies);
  H.run_for t 50.0;
  H.assert_consistent t;
  Alcotest.(check int) "all five applied at the leader" 5
    (List.length (H.applied_commands t 0))

(* The point of batching (§6 capacity lever): amortizing t_in/t_out
   across a batch raises the leader's saturation throughput. At equal
   service-time parameters a max_batch=8 leader must clear >= 1.5x the
   unbatched saturation throughput. *)
let test_batching_raises_saturation () =
  let sat batching =
    (Runner.run paxos
       (lan_spec ?batching ~concurrency:32 ~duration_ms:2_000.0 ()))
      .Runner.throughput_rps
  in
  let plain = sat None in
  let batched = sat (Some { Config.max_batch = 8; max_wait_ms = 0.05 }) in
  Alcotest.(check bool)
    (Printf.sprintf "batched %.0f >= 1.5x unbatched %.0f rps" batched plain)
    true
    (batched >= 1.5 *. plain)

let suite =
  ( "hotpath",
    [
      Alcotest.test_case "inline delivery invisible" `Slow
        test_inline_delivery_invisible;
      Alcotest.test_case "retransmission inert when fault-free" `Slow
        test_retransmit_inert_when_fault_free;
      Alcotest.test_case "fixed seed reproducible" `Slow
        test_fixed_seed_reproducible;
      Alcotest.test_case "tracing invisible" `Slow test_tracing_invisible;
      Alcotest.test_case "pooling invisible" `Slow test_pooling_invisible;
      Alcotest.test_case "allocation per event pinned" `Slow
        test_allocation_per_event_pinned;
      Alcotest.test_case "batched paxos safe" `Slow test_batched_paxos_safe;
      Alcotest.test_case "batched raft safe" `Slow test_batched_raft_safe;
      Alcotest.test_case "batched fpaxos safe" `Slow test_batched_fpaxos_safe;
      Alcotest.test_case "max_wait flushes partial batch" `Quick
        test_max_wait_flushes_partial_batch;
      Alcotest.test_case "batching raises saturation" `Slow
        test_batching_raises_saturation;
    ] )
