open Paxi_benchmark

let cmd id = Command.make ~id ~client:0 (Command.Put (1, id))

let test_prefix_ok () =
  let a = [ cmd 1; cmd 2; cmd 3 ] and b = [ cmd 1; cmd 2 ] in
  Alcotest.(check bool) "prefix" true (Consensus_check.common_prefix a b = Ok ());
  Alcotest.(check bool) "symmetric" true (Consensus_check.common_prefix b a = Ok ());
  Alcotest.(check bool) "empty" true (Consensus_check.common_prefix [] a = Ok ())

let test_divergence_position () =
  let a = [ cmd 1; cmd 2; cmd 3 ] and b = [ cmd 1; cmd 9; cmd 3 ] in
  Alcotest.(check bool) "diverges at 1" true
    (Consensus_check.common_prefix a b = Error 1)

let test_check_key () =
  let histories = [ (0, [ cmd 1; cmd 2 ]); (1, [ cmd 1; cmd 2 ]); (2, [ cmd 1; cmd 3 ]) ] in
  let violations = Consensus_check.check_key ~key:1 ~histories in
  (* node 2 disagrees with nodes 0 and 1 *)
  Alcotest.(check int) "two violating pairs" 2 (List.length violations);
  List.iter
    (fun v ->
      Alcotest.(check int) "at position 1" 1 v.Consensus_check.position;
      Alcotest.(check int) "node b is 2" 2 v.Consensus_check.node_b)
    violations

let test_check_against_state_machines () =
  let sm_a = State_machine.create () and sm_b = State_machine.create () in
  ignore (State_machine.apply sm_a (cmd 1));
  ignore (State_machine.apply sm_a (cmd 2));
  ignore (State_machine.apply sm_b (cmd 1));
  let ok =
    Consensus_check.check ~state_machines:[ (0, sm_a); (1, sm_b) ] ~keys:[ 1 ]
  in
  Alcotest.(check int) "prefix agreement" 0 (List.length ok);
  ignore (State_machine.apply sm_b (cmd 9));
  let bad =
    Consensus_check.check ~state_machines:[ (0, sm_a); (1, sm_b) ] ~keys:[ 1 ]
  in
  Alcotest.(check int) "divergence found" 1 (List.length bad)

(* Empty histories: a node that executed nothing for a key is a prefix
   of every other node — straggling replicas are never "divergent",
   only conflicting ones. Pinned because the nemesis oracle leans on
   it: crashed or partitioned nodes end runs with short (or no)
   histories and must not trip the checker. *)
let test_empty_histories_agree () =
  Alcotest.(check bool) "two empties" true
    (Consensus_check.common_prefix [] [] = Ok ());
  Alcotest.(check int) "no histories at all" 0
    (List.length (Consensus_check.check_key ~key:1 ~histories:[]));
  Alcotest.(check int) "all nodes empty" 0
    (List.length
       (Consensus_check.check_key ~key:1 ~histories:[ (0, []); (1, []) ]));
  (* only the genuinely conflicting pair (1,2) violates; the empty
     node 0 pairs cleanly with both *)
  Alcotest.(check int) "empty against diverging pair" 1
    (List.length
       (Consensus_check.check_key ~key:1
          ~histories:[ (0, []); (1, [ cmd 1 ]); (2, [ cmd 2 ]) ]))

let test_empty_state_machines_agree () =
  let sm_a = State_machine.create () and sm_b = State_machine.create () in
  Alcotest.(check int) "no executions, no violations" 0
    (List.length
       (Consensus_check.check ~state_machines:[ (0, sm_a); (1, sm_b) ]
          ~keys:[ 1; 2; 3 ]))

let test_pp () =
  let v = { Consensus_check.key = 1; node_a = 0; node_b = 2; position = 3 } in
  Alcotest.(check string) "render"
    "key 1: nodes 0 and 2 diverge at version 3"
    (Format.asprintf "%a" Consensus_check.pp_violation v)

let suite =
  ( "consensus_check",
    [
      Alcotest.test_case "prefix ok" `Quick test_prefix_ok;
      Alcotest.test_case "divergence position" `Quick test_divergence_position;
      Alcotest.test_case "check_key pairs" `Quick test_check_key;
      Alcotest.test_case "against state machines" `Quick test_check_against_state_machines;
      Alcotest.test_case "empty histories agree" `Quick test_empty_histories_agree;
      Alcotest.test_case "empty state machines agree" `Quick test_empty_state_machines_agree;
      Alcotest.test_case "pp" `Quick test_pp;
    ] )
