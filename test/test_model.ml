open Paxi_model

let feq = Alcotest.(check (float 1e-9))

let test_mm1_closed_form () =
  (* Wq = rho^2 / (lambda (1 - rho)); rho=0.5, lambda=5, mu=10 -> 0.1,
     matching the textbook Wq = lambda / (mu (mu - lambda)) *)
  feq "mm1" 0.1 (Queueing.wait_time Queueing.Mm1 ~lambda:5.0 ~mu:10.0)

let test_md1_closed_form () =
  (* Wq = rho / (2 mu (1-rho)) = 0.5 / (2*10*0.5) = 0.05 *)
  feq "md1" 0.05 (Queueing.wait_time Queueing.Md1 ~lambda:5.0 ~mu:10.0)

let test_md1_half_of_mm1 () =
  (* with the same rho, deterministic service waits half as long *)
  let lambda = 7.0 and mu = 10.0 in
  feq "md1 = mm1/2"
    (Queueing.wait_time Queueing.Mm1 ~lambda ~mu /. 2.0)
    (Queueing.wait_time Queueing.Md1 ~lambda ~mu)

let test_mg1_reduces_to_md1_and_mm1 () =
  let lambda = 5.0 and mu = 8.0 in
  feq "cv2=0 is deterministic"
    (Queueing.wait_time Queueing.Md1 ~lambda ~mu)
    (Queueing.wait_time (Queueing.Mg1 { service_cv2 = 0.0 }) ~lambda ~mu);
  feq "cv2=1 is exponential"
    (Queueing.wait_time Queueing.Mm1 ~lambda ~mu)
    (Queueing.wait_time (Queueing.Mg1 { service_cv2 = 1.0 }) ~lambda ~mu)

let test_saturation () =
  Alcotest.(check bool) "at mu" true
    (Float.is_integer (Queueing.wait_time Queueing.Md1 ~lambda:10.0 ~mu:10.0)
     = Float.is_integer infinity
     && Queueing.wait_time Queueing.Md1 ~lambda:10.0 ~mu:10.0 = infinity);
  Alcotest.(check bool) "above mu" true
    (Queueing.wait_time Queueing.Mm1 ~lambda:20.0 ~mu:10.0 = infinity);
  feq "zero load" 0.0 (Queueing.wait_time Queueing.Mm1 ~lambda:0.0 ~mu:10.0)

let test_wait_monotone_in_lambda () =
  let kinds =
    [ Queueing.Mm1; Queueing.Md1; Queueing.Mg1 { service_cv2 = 0.5 };
      Queueing.Gg1 { arrival_cv2 = 1.0; service_cv2 = 0.5 } ]
  in
  List.iter
    (fun kind ->
      let w l = Queueing.wait_time kind ~lambda:l ~mu:10.0 in
      Alcotest.(check bool) "monotone" true (w 2.0 < w 5.0 && w 5.0 < w 9.0))
    kinds

let test_order_stats_min_max () =
  let rng = Rng.create ~seed:3 in
  let d = Dist.uniform ~lo:0.0 ~hi:1.0 in
  (* expected k-th of n uniforms is k/(n+1) *)
  let e1 = Order_stats.kth_of_n d rng ~k:1 ~n:4 ~trials:20_000 in
  let e4 = Order_stats.kth_of_n d rng ~k:4 ~n:4 ~trials:20_000 in
  Alcotest.(check bool) "min ~0.2" true (Float.abs (e1 -. 0.2) < 0.02);
  Alcotest.(check bool) "max ~0.8" true (Float.abs (e4 -. 0.8) < 0.02)

let test_kth_of_samples () =
  let rtts = [| 50.0; 11.0; 107.0; 61.0 |] in
  feq "1st" 11.0 (Order_stats.kth_of_samples rtts ~k:1);
  feq "2nd" 50.0 (Order_stats.kth_of_samples rtts ~k:2);
  feq "4th" 107.0 (Order_stats.kth_of_samples rtts ~k:4)

let test_quorum_rtt_monotone_in_quorum () =
  let rng = Rng.create ~seed:5 in
  let dq q = Order_stats.quorum_rtt_lan ~mu:1.0 ~sigma:0.1 ~quorum:q ~n:9 rng in
  Alcotest.(check bool) "bigger quorum waits longer" true (dq 3 < dq 5 && dq 5 < dq 8);
  feq "self-quorum free" 0.0 (dq 1)

let test_service_paxos () =
  (* ts = 2 t_out + N t_in + 2 N s/b *)
  let node =
    { Service.n = 9; t_in_ms = 0.012; t_out_ms = 0.008;
      msg_size_bytes = 125; bandwidth_mbps = 1000.0 }
  in
  let rc = Service.paxos node in
  (* nic: 125 bytes at 125 bytes/ms = 0.001 ms; 2*9*0.001 = 0.018 *)
  feq "lead" (0.016 +. 0.108 +. 0.018) rc.Service.lead_ms;
  feq "single leader" 1.0 rc.Service.lead_share;
  feq "no follow work" 0.0 rc.Service.follow_ms

let test_epaxos_conflict_increases_cost () =
  let node = Service.default_node ~n:9 in
  let c0 = Service.epaxos node ~penalty:2.0 ~conflict:0.0 in
  let c1 = Service.epaxos node ~penalty:2.0 ~conflict:1.0 in
  Alcotest.(check bool) "conflict costs more" true
    (Service.mean_service_ms c1 > Service.mean_service_ms c0);
  Alcotest.(check bool) "capacity drops" true
    (Service.max_throughput_rps c1 < Service.max_throughput_rps c0)

let test_epaxos_conflict_capacity_drop_band () =
  (* the paper reports roughly 40% capacity degradation from c=0 to
     c=1 (Fig. 12) *)
  let node = Service.default_node ~n:5 in
  let cap c = Service.max_throughput_rps (Service.epaxos node ~penalty:1.8 ~conflict:c) in
  let drop = 1.0 -. (cap 1.0 /. cap 0.0) in
  Alcotest.(check bool)
    (Printf.sprintf "drop %.2f in [0.25, 0.55]" drop)
    true
    (drop > 0.25 && drop < 0.55)

let test_protocol_capacity_ordering_lan () =
  (* paper Fig. 8a: single-leader lowest; multi-leader protocols higher *)
  let node = Service.default_node ~n:9 in
  let cap p = Latency_model.lan_max_throughput p ~node in
  let paxos = cap Latency_model.Paxos in
  let wpaxos = cap (Latency_model.Wpaxos { leaders = 3; locality = 1.0; fz = 0 }) in
  let epaxos = cap (Latency_model.Epaxos { conflict = 0.0 }) in
  Alcotest.(check bool) "wpaxos > paxos" true (wpaxos > paxos);
  Alcotest.(check bool) "epaxos(c=0) > paxos" true (epaxos > paxos);
  (* and the improvement is bounded, not linear in leaders (§5.2) *)
  Alcotest.(check bool) "wpaxos < 3x paxos" true (wpaxos < 3.0 *. paxos)

let test_lan_latency_curve_rises () =
  let node = Service.default_node ~n:9 in
  let rng = Rng.create ~seed:7 in
  let cap = Latency_model.lan_max_throughput Latency_model.Paxos ~node in
  let points =
    Latency_model.lan_curve Latency_model.Paxos ~node
      ~lan:Latency_model.default_lan ~rng
      ~lambdas:[ 0.2 *. cap; 0.6 *. cap; 0.95 *. cap ]
  in
  match points with
  | [ a; b; c ] ->
      Alcotest.(check bool) "latency rises with load" true
        (a.Latency_model.latency_ms < b.Latency_model.latency_ms
        && b.Latency_model.latency_ms < c.Latency_model.latency_ms)
  | _ -> Alcotest.fail "expected 3 points"

let test_lan_point_saturates () =
  let node = Service.default_node ~n:9 in
  let rng = Rng.create ~seed:7 in
  let cap = Latency_model.lan_max_throughput Latency_model.Paxos ~node in
  Alcotest.(check bool) "beyond capacity is None" true
    (Latency_model.lan_point Latency_model.Paxos ~node
       ~lan:Latency_model.default_lan ~rng ~lambda_rps:(1.1 *. cap)
    = None)

let test_wan_latency_ordering () =
  (* paper §5.3: >100 ms between slowest (Paxos) and fastest (WPaxos) *)
  let node = Service.default_node ~n:5 in
  let wan = Latency_model.default_wan in
  let lat p leader =
    match
      Latency_model.wan_point p ~node ~wan ~leader_region:leader ~lambda_rps:500.0
    with
    | Some pt -> pt.Latency_model.latency_ms
    | None -> infinity
  in
  let paxos = lat Latency_model.Paxos Region.california in
  let fpaxos = lat (Latency_model.Fpaxos { q2 = 2 }) Region.california in
  let wpaxos =
    lat (Latency_model.Wpaxos { leaders = 5; locality = 0.7; fz = 0 }) Region.virginia
  in
  Alcotest.(check bool) "fpaxos < paxos" true (fpaxos < paxos);
  Alcotest.(check bool) "wpaxos fastest" true (wpaxos < fpaxos);
  Alcotest.(check bool) ">100ms spread" true (paxos -. wpaxos > 100.0)

let test_formulas_eq_4_5_6 () =
  (* the worked instantiations of §6.1 at N = 9 *)
  feq "L(Paxos) = 4" 4.0 (Formulas.load_paxos ~n:9);
  feq "L(EPaxos) = 4/3 (1+c) at c=0" (4.0 /. 3.0) (Formulas.load_epaxos ~n:9 ~conflict:0.0);
  feq "L(EPaxos) doubles at c=1" (8.0 /. 3.0) (Formulas.load_epaxos ~n:9 ~conflict:1.0);
  feq "L(WPaxos) = 4/3" (4.0 /. 3.0) (Formulas.load_wpaxos ~n:9 ~leaders:3)

let test_formula_3_general () =
  (* L = (1+c)(Q + L - 2)/L *)
  feq "single leader majority" 4.0 (Formulas.load ~leaders:1 ~conflict:0.0 ~quorum:5);
  feq "capacity reciprocal" 0.25 (Formulas.capacity ~leaders:1 ~conflict:0.0 ~quorum:5);
  Alcotest.(check bool) "more leaders, less load" true
    (Formulas.load ~leaders:3 ~conflict:0.0 ~quorum:3
    < Formulas.load ~leaders:1 ~conflict:0.0 ~quorum:3)

let test_formula_7 () =
  (* Latency = (1+c)((1-l)(DL+DQ) + l DQ) *)
  feq "full locality" 5.0 (Formulas.latency ~conflict:0.0 ~locality:1.0 ~dl_ms:100.0 ~dq_ms:5.0);
  feq "no locality" 105.0 (Formulas.latency ~conflict:0.0 ~locality:0.0 ~dl_ms:100.0 ~dq_ms:5.0);
  feq "conflicts scale" 210.0 (Formulas.latency ~conflict:1.0 ~locality:0.0 ~dl_ms:100.0 ~dq_ms:5.0)

let test_epaxos_adaptive_monotone () =
  (* the adaptive-conflict series degrades with load (Fig. 10) *)
  let node = Service.default_node ~n:5 in
  let wan = Latency_model.default_wan in
  let lat lambda =
    match
      Latency_model.wan_point
        (Latency_model.Epaxos_adaptive { conflict_lo = 0.02; conflict_hi = 0.70 })
        ~node ~wan ~leader_region:Region.virginia ~lambda_rps:lambda
    with
    | Some p -> p.Latency_model.latency_ms
    | None -> infinity
  in
  Alcotest.(check bool) "latency grows with load" true
    (lat 1000.0 < lat 4000.0 && lat 4000.0 < lat 7000.0)

let test_wankeeper_locality_helps () =
  (* master executes the non-local share: capacity grows with l *)
  let node = Service.default_node ~n:9 in
  let cap l =
    Latency_model.lan_max_throughput
      (Latency_model.Wankeeper { leaders = 3; locality = l })
      ~node
  in
  Alcotest.(check bool) "more locality, more capacity" true
    (cap 0.2 < cap 0.6 && cap 0.6 < cap 1.0)

let test_wpaxos_fz_latency_cost () =
  (* fz=1 pays a cross-region quorum where fz=0 commits locally *)
  let node = Service.default_node ~n:5 in
  let wan = Latency_model.default_wan in
  let lat fz =
    match
      Latency_model.wan_point
        (Latency_model.Wpaxos { leaders = 5; locality = 0.9; fz })
        ~node ~wan ~leader_region:Region.virginia ~lambda_rps:1000.0
    with
    | Some p -> p.Latency_model.latency_ms
    | None -> infinity
  in
  Alcotest.(check bool) "fz=1 slower than fz=0" true (lat 0 < lat 1)

let test_advisor_paths () =
  let open Advisor in
  let base =
    {
      needs_consensus = true;
      wan = true;
      read_heavy = false;
      locality = No_locality;
      region_failure_concern = false;
    }
  in
  let proto_of d = (recommend d).protocols in
  Alcotest.(check bool) "no consensus" true
    (List.mem "chain-replication" (proto_of { base with needs_consensus = false }));
  Alcotest.(check bool) "lan single leader" true
    (List.mem "paxos" (proto_of { base with wan = false }));
  Alcotest.(check bool) "read heavy -> leaderless" true
    (List.mem "epaxos" (proto_of { base with read_heavy = true }));
  Alcotest.(check bool) "static locality -> sharding" true
    (List.mem "paxos-groups" (proto_of { base with locality = Static_locality }));
  Alcotest.(check bool) "dynamic + failures -> wpaxos" true
    (List.mem "wpaxos"
       (proto_of { base with locality = Dynamic_locality; region_failure_concern = true }));
  Alcotest.(check bool) "dynamic, no failure concern -> hierarchy" true
    (List.mem "wankeeper"
       (proto_of { base with locality = Dynamic_locality }));
  Alcotest.(check int) "seven distinct paths" 7 (List.length all_paths)

let prop_load_decreasing_in_leaders =
  QCheck.Test.make ~name:"load decreases with leaders at fixed quorum" ~count:100
    QCheck.(pair (int_range 2 20) (float_range 0.0 1.0))
    (fun (q, c) ->
      (* holds for quorums of at least two; a self-quorum (Q=1) has
         zero single-leader load by definition *)
      Formulas.load ~leaders:4 ~conflict:c ~quorum:q
      <= Formulas.load ~leaders:1 ~conflict:c ~quorum:q +. 1e-9)

(* Read-path terms (PR 7): a local (lease) or tail read is one client
   RTT plus the serving node's touch time — no queue, no quorum — and
   a quorum read adds two majority-RTT rounds plus two broadcast
   serializations. *)
let test_read_breakdown_local_and_tail () =
  let node = Service.default_node ~n:5 in
  let lan = Latency_model.default_lan in
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun kind ->
      let b = Latency_model.read_breakdown kind ~node ~lan ~rng in
      feq "wq is zero by construction" 0.0 b.Latency_model.wq_ms;
      feq "no quorum term" 0.0 b.Latency_model.dq_ms;
      feq "dl is the client rtt" lan.Latency_model.rtt_mu_ms
        b.Latency_model.dl_ms;
      feq "service is the touch time"
        (node.Service.t_in_ms +. node.Service.t_out_ms
        +. (2.0 *. Service.nic_ms node))
        b.Latency_model.service_ms;
      feq "terms telescope"
        (b.Latency_model.service_ms +. b.Latency_model.dl_ms)
        b.Latency_model.total_ms;
      (* no Monte-Carlo term: deterministic regardless of rng *)
      let b' =
        Latency_model.read_breakdown kind ~node ~lan
          ~rng:(Rng.create ~seed:999)
      in
      feq "deterministic" b.Latency_model.total_ms b'.Latency_model.total_ms)
    [ Latency_model.Local_read; Latency_model.Tail_read ]

let test_read_breakdown_quorum () =
  let node = Service.default_node ~n:5 in
  let lan = Latency_model.default_lan in
  let b =
    Latency_model.read_breakdown Latency_model.Quorum_read ~node ~lan
      ~rng:(Rng.create ~seed:2)
  in
  let local =
    Latency_model.read_breakdown Latency_model.Local_read ~node ~lan
      ~rng:(Rng.create ~seed:2)
  in
  Alcotest.(check bool) "quorum term present" true (b.Latency_model.dq_ms > 0.0);
  (* two majority-RTT order-statistic rounds: the (Q-1)-th of n-1
     draws sits a touch under mu for a LAN's tight sigma, so 2x the
     round count brackets it from both sides *)
  Alcotest.(check bool)
    (Printf.sprintf "dq %.4f ~ two quorum rounds" b.Latency_model.dq_ms)
    true
    (b.Latency_model.dq_ms >= 1.6 *. lan.Latency_model.rtt_mu_ms
    && b.Latency_model.dq_ms <= 2.6 *. lan.Latency_model.rtt_mu_ms);
  Alcotest.(check bool) "quorum read dearer than local" true
    (b.Latency_model.total_ms > local.Latency_model.total_ms);
  feq "terms telescope"
    (b.Latency_model.service_ms +. b.Latency_model.dl_ms
    +. b.Latency_model.dq_ms)
    b.Latency_model.total_ms;
  (* the model prices the write path above the local read at any load:
     a lease read must always look cheaper than a commit round *)
  let rng = Rng.create ~seed:3 in
  match
    Latency_model.lan_breakdown Latency_model.Paxos ~node ~lan ~rng
      ~lambda_rps:100.0
  with
  | None -> Alcotest.fail "write path saturated at trivial load"
  | Some w ->
      Alcotest.(check bool) "local read under the write path" true
        (local.Latency_model.total_ms < w.Latency_model.total_ms)

let prop_wait_nonnegative =
  QCheck.Test.make ~name:"queue wait is non-negative" ~count:200
    QCheck.(pair (float_range 0.1 9.9) (float_range 10.0 20.0))
    (fun (lambda, mu) ->
      List.for_all
        (fun kind -> Queueing.wait_time kind ~lambda ~mu >= 0.0)
        [ Queueing.Mm1; Queueing.Md1; Queueing.Mg1 { service_cv2 = 0.7 };
          Queueing.Gg1 { arrival_cv2 = 0.9; service_cv2 = 0.7 } ])

let suite =
  ( "model",
    [
      Alcotest.test_case "M/M/1 closed form" `Quick test_mm1_closed_form;
      Alcotest.test_case "M/D/1 closed form" `Quick test_md1_closed_form;
      Alcotest.test_case "M/D/1 half of M/M/1" `Quick test_md1_half_of_mm1;
      Alcotest.test_case "M/G/1 reduces to M/D/1 and M/M/1" `Quick test_mg1_reduces_to_md1_and_mm1;
      Alcotest.test_case "saturation" `Quick test_saturation;
      Alcotest.test_case "wait monotone in lambda" `Quick test_wait_monotone_in_lambda;
      Alcotest.test_case "order stats of uniforms" `Slow test_order_stats_min_max;
      Alcotest.test_case "kth of fixed samples" `Quick test_kth_of_samples;
      Alcotest.test_case "quorum rtt monotone" `Quick test_quorum_rtt_monotone_in_quorum;
      Alcotest.test_case "paxos service time formula" `Quick test_service_paxos;
      Alcotest.test_case "epaxos conflict cost" `Quick test_epaxos_conflict_increases_cost;
      Alcotest.test_case "epaxos capacity drop band" `Quick test_epaxos_conflict_capacity_drop_band;
      Alcotest.test_case "lan capacity ordering" `Quick test_protocol_capacity_ordering_lan;
      Alcotest.test_case "lan latency curve rises" `Quick test_lan_latency_curve_rises;
      Alcotest.test_case "lan point saturates" `Quick test_lan_point_saturates;
      Alcotest.test_case "wan latency ordering" `Quick test_wan_latency_ordering;
      Alcotest.test_case "formulas eq 4-6" `Quick test_formulas_eq_4_5_6;
      Alcotest.test_case "formula 3 general" `Quick test_formula_3_general;
      Alcotest.test_case "formula 7" `Quick test_formula_7;
      Alcotest.test_case "epaxos adaptive monotone" `Quick test_epaxos_adaptive_monotone;
      Alcotest.test_case "wankeeper locality helps" `Quick test_wankeeper_locality_helps;
      Alcotest.test_case "wpaxos fz latency cost" `Quick test_wpaxos_fz_latency_cost;
      Alcotest.test_case "advisor paths" `Quick test_advisor_paths;
      Alcotest.test_case "read breakdown local/tail" `Quick
        test_read_breakdown_local_and_tail;
      Alcotest.test_case "read breakdown quorum" `Quick
        test_read_breakdown_quorum;
      QCheck_alcotest.to_alcotest prop_load_decreasing_in_leaders;
      QCheck_alcotest.to_alcotest prop_wait_nonnegative;
    ] )
