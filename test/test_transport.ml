type msg = Ping of int

let setup ?(n = 3) ?faults () =
  let sim = Sim.create () in
  let topology = Topology.lan ~n_replicas:n () in
  let transport = Transport.create ~sim ~topology ?faults () in
  (sim, transport)

let test_send_delivers () =
  let sim, tr = setup () in
  let got = ref [] in
  Transport.register tr (Address.replica 1) (fun ~src m ->
      got := (src, m) :: !got);
  Transport.send tr ~src:(Address.replica 0) ~dst:(Address.replica 1) (Ping 7);
  Sim.run sim;
  match !got with
  | [ (src, Ping 7) ] ->
      Alcotest.(check bool) "from 0" true (Address.equal src (Address.replica 0))
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_delivery_has_latency () =
  let sim, tr = setup () in
  let at = ref 0.0 in
  Transport.register tr (Address.replica 1) (fun ~src:_ _ -> at := Sim.now sim);
  Transport.send tr ~src:(Address.replica 0) ~dst:(Address.replica 1) (Ping 0);
  Sim.run sim;
  Alcotest.(check bool) "positive delay" true (!at > 0.0);
  (* half an ~0.43ms LAN RTT plus processing *)
  Alcotest.(check bool) "sub-millisecond" true (!at < 1.0)

let test_broadcast_excludes_sender () =
  let sim, tr = setup ~n:4 () in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Transport.register tr (Address.replica i) (fun ~src:_ _ ->
        got.(i) <- got.(i) + 1)
  done;
  Transport.broadcast tr ~src:(Address.replica 2) (Ping 1);
  Sim.run sim;
  Alcotest.(check (array int)) "everyone but sender" [| 1; 1; 0; 1 |] got

let test_multicast_subset () =
  let sim, tr = setup ~n:4 () in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Transport.register tr (Address.replica i) (fun ~src:_ _ ->
        got.(i) <- got.(i) + 1)
  done;
  Transport.multicast tr ~src:(Address.replica 0)
    ~dsts:[ Address.replica 1; Address.replica 3 ]
    (Ping 1);
  Sim.run sim;
  Alcotest.(check (array int)) "subset" [| 0; 1; 0; 1 |] got

let test_drop_rule_blocks () =
  let faults = Faults.create () in
  Faults.drop faults ~src:(Address.replica 0) ~dst:(Address.replica 1)
    ~from_ms:0.0 ~duration_ms:1000.0;
  let sim, tr = setup ~faults () in
  let got = ref 0 in
  Transport.register tr (Address.replica 1) (fun ~src:_ _ -> incr got);
  Transport.send tr ~src:(Address.replica 0) ~dst:(Address.replica 1) (Ping 0);
  Sim.run sim;
  Alcotest.(check int) "dropped" 0 !got;
  Alcotest.(check int) "counted" 1 (Transport.dropped_count tr)

let test_crashed_receiver_drops () =
  let faults = Faults.create () in
  Faults.crash faults ~node:(Address.replica 1) ~from_ms:0.0 ~duration_ms:1000.0;
  let sim, tr = setup ~faults () in
  let got = ref 0 in
  Transport.register tr (Address.replica 1) (fun ~src:_ _ -> incr got);
  Transport.send tr ~src:(Address.replica 0) ~dst:(Address.replica 1) (Ping 0);
  Sim.run sim;
  Alcotest.(check int) "no delivery to crashed node" 0 !got

let test_crashed_sender_sends_nothing () =
  let faults = Faults.create () in
  Faults.crash faults ~node:(Address.replica 0) ~from_ms:0.0 ~duration_ms:1000.0;
  let sim, tr = setup ~faults () in
  let got = ref 0 in
  Transport.register tr (Address.replica 1) (fun ~src:_ _ -> incr got);
  Transport.send tr ~src:(Address.replica 0) ~dst:(Address.replica 1) (Ping 0);
  Sim.run sim;
  Alcotest.(check int) "nothing sent" 0 !got

let test_crashed_sender_accounting () =
  (* A crashed source still counts its attempts in [sent] (and in
     [dropped]) on both the unicast and the fan-out paths, so message
     totals are comparable across faulty and fault-free runs. *)
  let faults = Faults.create () in
  Faults.crash faults ~node:(Address.replica 0) ~from_ms:0.0 ~duration_ms:1000.0;
  let sim, tr = setup ~n:4 ~faults () in
  for i = 0 to 3 do
    Transport.register tr (Address.replica i) (fun ~src:_ _ -> ())
  done;
  Transport.send tr ~src:(Address.replica 0) ~dst:(Address.replica 1) (Ping 0);
  Alcotest.(check int) "unicast counted as sent" 1 (Transport.sent_count tr);
  Transport.broadcast tr ~src:(Address.replica 0) (Ping 1);
  Alcotest.(check int) "broadcast copies counted as sent" 4
    (Transport.sent_count tr);
  Transport.multicast tr ~src:(Address.replica 0)
    ~dsts:[ Address.replica 2; Address.replica 3 ]
    (Ping 2);
  Alcotest.(check int) "multicast copies counted as sent" 6
    (Transport.sent_count tr);
  Sim.run sim;
  Alcotest.(check int) "all dropped" 6 (Transport.dropped_count tr);
  Alcotest.(check int) "nothing delivered" 0 (Transport.delivered_count tr)

let test_broadcast_cache_stable_across_calls () =
  (* repeated broadcasts reuse the cached per-source peer list and
     keep delivering to everyone but the sender *)
  let sim, tr = setup ~n:4 () in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Transport.register tr (Address.replica i) (fun ~src:_ _ ->
        got.(i) <- got.(i) + 1)
  done;
  for _ = 1 to 3 do
    Transport.broadcast tr ~src:(Address.replica 2) (Ping 1)
  done;
  Sim.run sim;
  Alcotest.(check (array int)) "3x everyone but sender" [| 3; 3; 0; 3 |] got

let test_unregistered_destination_drops () =
  let sim, tr = setup () in
  Transport.send tr ~src:(Address.replica 0) ~dst:(Address.replica 2) (Ping 0);
  Sim.run sim;
  Alcotest.(check int) "dropped" 1 (Transport.dropped_count tr)

let test_counts () =
  let sim, tr = setup ~n:5 () in
  for i = 0 to 4 do
    Transport.register tr (Address.replica i) (fun ~src:_ _ -> ())
  done;
  Transport.broadcast tr ~src:(Address.replica 0) (Ping 0);
  Sim.run sim;
  Alcotest.(check int) "sent 4" 4 (Transport.sent_count tr);
  Alcotest.(check int) "delivered 4" 4 (Transport.delivered_count tr)

let test_queueing_backpressure () =
  (* With slow incoming processing, back-to-back messages are spaced
     by the service time at the receiver. *)
  let sim = Sim.create () in
  let topology = Topology.lan ~n_replicas:2 () in
  let transport =
    Transport.create ~sim ~topology
      ~processing:(fun _ -> Procq.create ~t_in_ms:1.0 ~t_out_ms:0.0 ~bandwidth_mbps:1e9 ())
      ()
  in
  let times = ref [] in
  Transport.register transport (Address.replica 1) (fun ~src:_ _ ->
      times := Sim.now sim :: !times);
  for _ = 1 to 3 do
    Transport.send transport ~src:(Address.replica 0) ~dst:(Address.replica 1) (Ping 0)
  done;
  Sim.run sim;
  match List.rev !times with
  | [ t1; t2; t3 ] ->
      Alcotest.(check bool) "spaced by >= service time" true
        (t2 -. t1 > 0.9 && t3 -. t2 > 0.9)
  | _ -> Alcotest.fail "expected 3 deliveries"

(* The conservation invariant behind every message-count report:
   every sent copy is eventually delivered or dropped, never both,
   never neither — across the unicast ([send_one]) and fan-out
   ([dispatch]) paths, with crashed senders/receivers, dead links and
   unregistered destinations in any combination. *)
let prop_accounting_invariant =
  let n = 4 in
  QCheck.Test.make
    ~name:"sent = delivered + dropped after every run drains" ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 25)
           (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 2)))
        (int_range 0 ((1 lsl n) - 1))
        (list_of_size (Gen.int_range 0 3)
           (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 1))))
    (fun (ops, regmask, fault_specs) ->
      let faults = Faults.create () in
      List.iter
        (fun (a, b, kind) ->
          if kind = 0 then
            Faults.crash faults ~node:(Address.replica a) ~from_ms:0.0
              ~duration_ms:5.0
          else
            Faults.drop faults ~src:(Address.replica a)
              ~dst:(Address.replica b) ~from_ms:0.0 ~duration_ms:5.0)
        fault_specs;
      let sim, tr = setup ~n ~faults () in
      (* leave some destinations unregistered (missing-handler drops) *)
      for i = 0 to n - 1 do
        if regmask land (1 lsl i) <> 0 then
          Transport.register tr (Address.replica i) (fun ~src:_ _ -> ())
      done;
      List.iter
        (fun (src, dst, kind) ->
          match kind with
          | 0 ->
              Transport.send tr ~src:(Address.replica src)
                ~dst:(Address.replica dst) (Ping 0)
          | 1 -> Transport.broadcast tr ~src:(Address.replica src) (Ping 1)
          | _ ->
              let dsts =
                [ dst; (dst + 1) mod n ]
                |> List.filter (fun d -> d <> src)
                |> List.map Address.replica
              in
              if dsts <> [] then
                Transport.multicast tr ~src:(Address.replica src) ~dsts (Ping 2))
        ops;
      Sim.run sim;
      Transport.sent_count tr
      = Transport.delivered_count tr + Transport.dropped_count tr)

let test_accounting_fault_free () =
  (* deterministic spot check of the same invariant without faults,
     with one unregistered destination *)
  let sim, tr = setup ~n:4 () in
  for i = 0 to 2 do
    Transport.register tr (Address.replica i) (fun ~src:_ _ -> ())
  done;
  Transport.send tr ~src:(Address.replica 0) ~dst:(Address.replica 3) (Ping 0);
  Transport.broadcast tr ~src:(Address.replica 1) (Ping 1);
  Transport.multicast tr ~src:(Address.replica 2)
    ~dsts:[ Address.replica 0; Address.replica 3 ]
    (Ping 2);
  Sim.run sim;
  Alcotest.(check int) "sent = delivered + dropped"
    (Transport.sent_count tr)
    (Transport.delivered_count tr + Transport.dropped_count tr);
  (* replica 3 is targeted by the send, the broadcast and the
     multicast: three missing-handler drops *)
  Alcotest.(check int) "dropped = missing handlers" 3
    (Transport.dropped_count tr)

let suite =
  ( "transport",
    [
      Alcotest.test_case "send delivers" `Quick test_send_delivers;
      Alcotest.test_case "delivery has latency" `Quick test_delivery_has_latency;
      Alcotest.test_case "broadcast excludes sender" `Quick test_broadcast_excludes_sender;
      Alcotest.test_case "multicast subset" `Quick test_multicast_subset;
      Alcotest.test_case "drop rule blocks" `Quick test_drop_rule_blocks;
      Alcotest.test_case "crashed receiver drops" `Quick test_crashed_receiver_drops;
      Alcotest.test_case "crashed sender sends nothing" `Quick test_crashed_sender_sends_nothing;
      Alcotest.test_case "crashed sender accounting" `Quick test_crashed_sender_accounting;
      Alcotest.test_case "broadcast cache stable" `Quick test_broadcast_cache_stable_across_calls;
      Alcotest.test_case "unregistered destination drops" `Quick test_unregistered_destination_drops;
      Alcotest.test_case "sent/delivered counts" `Quick test_counts;
      Alcotest.test_case "queueing backpressure" `Quick test_queueing_backpressure;
      Alcotest.test_case "accounting fault-free" `Quick test_accounting_fault_free;
      QCheck_alcotest.to_alcotest prop_accounting_invariant;
    ] )
