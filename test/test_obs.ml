(* lib/obs tracing: telescoping exactness, window filtering, Chrome
   export shape, and end-to-end collection through a traced run. *)

open Paxi_benchmark
module Trace = Paxi_obs.Trace
module Latency_model = Paxi_model.Latency_model

let feed_request tr ?(client = 0) ?(cmd_id = 1) ?(slot = 5) () =
  (* submit 0 ──1.0──▸ arrival ──0.2──▸ start ──0.1──▸ handled(1.3)
     ──0.2──▸ proposed(1.5) ──1.0──▸ quorum(2.5) ──0.2──▸ sent(2.7)
     ──0.3──▸ delivered(3.0) *)
  Trace.on_submit tr ~client ~cmd_id ~is_read:false ~now_ms:0.0;
  Trace.on_request_arrival tr ~client ~cmd_id ~arrival_ms:1.0 ~wait_ms:0.2
    ~service_ms:0.1 ~ready_ms:1.3;
  Trace.on_propose tr ~slot ~client ~cmd_id ~now_ms:1.5;
  Trace.on_quorum tr ~slot ~now_ms:2.5;
  Trace.on_reply tr ~client ~cmd_id ~sent_ms:2.7 ~ready_ms:3.0

let test_telescoping_exact () =
  let tr = Trace.create ~enabled:true () in
  Trace.set_window tr ~from_ms:0.0 ~until_ms:100.0;
  feed_request tr ();
  let m f = Stats.mean (f tr) in
  Alcotest.(check (float 1e-9)) "net in" 1.0 (m Trace.net_in);
  Alcotest.(check (float 1e-9)) "wait" 0.2 (m Trace.wait_in);
  Alcotest.(check (float 1e-9)) "service" 0.1 (m Trace.service_in);
  Alcotest.(check (float 1e-9)) "propose gap" 0.2 (m Trace.propose_gap);
  Alcotest.(check (float 1e-9)) "quorum wait" 1.0 (m Trace.quorum_wait);
  Alcotest.(check (float 1e-9)) "exec+reply" 0.2 (m Trace.exec_reply);
  Alcotest.(check (float 1e-9)) "net out" 0.3 (m Trace.net_out);
  Alcotest.(check (float 1e-9)) "e2e" 3.0 (m Trace.e2e);
  let sum =
    List.fold_left
      (fun acc (_, s) -> acc +. Stats.mean s)
      0.0 (Trace.components tr)
  in
  Alcotest.(check (float 1e-9)) "components telescope" 3.0 sum

let test_fallback_without_quorum_events () =
  (* no propose/quorum: the middle collapses to server residency,
     handled(1.3) ─▸ sent(2.7) = 1.4, and still telescopes *)
  let tr = Trace.create ~enabled:true () in
  Trace.set_window tr ~from_ms:0.0 ~until_ms:100.0;
  Trace.on_submit tr ~client:0 ~cmd_id:1 ~is_read:false ~now_ms:0.0;
  Trace.on_request_arrival tr ~client:0 ~cmd_id:1 ~arrival_ms:1.0 ~wait_ms:0.2
    ~service_ms:0.1 ~ready_ms:1.3;
  Trace.on_reply tr ~client:0 ~cmd_id:1 ~sent_ms:2.7 ~ready_ms:3.0;
  Alcotest.(check (float 1e-9)) "server residency" 1.4
    (Stats.mean (Trace.server_residency tr));
  Alcotest.(check int) "5-way split" 5 (List.length (Trace.components tr));
  let sum =
    List.fold_left
      (fun acc (_, s) -> acc +. Stats.mean s)
      0.0 (Trace.components tr)
  in
  Alcotest.(check (float 1e-9)) "still telescopes" 3.0 sum

let test_window_filtering () =
  let tr = Trace.create ~enabled:true () in
  Trace.set_window tr ~from_ms:100.0 ~until_ms:200.0;
  (* completes before the window opens: excluded from components *)
  feed_request tr ();
  Alcotest.(check int) "warmup excluded" 0 (Stats.count (Trace.e2e tr));
  (* spans and the time series still see it *)
  Alcotest.(check bool) "spans kept" true (Trace.span_count tr > 0);
  Alcotest.(check bool) "series kept" true (Trace.series tr <> [])

let test_retry_keeps_first_submit () =
  let tr = Trace.create ~enabled:true () in
  Trace.set_window tr ~from_ms:0.0 ~until_ms:100.0;
  Trace.on_submit tr ~client:0 ~cmd_id:1 ~is_read:false ~now_ms:0.0;
  (* client retry re-submits the same command later *)
  Trace.on_submit tr ~client:0 ~cmd_id:1 ~is_read:false ~now_ms:5.0;
  Trace.on_request_arrival tr ~client:0 ~cmd_id:1 ~arrival_ms:6.0 ~wait_ms:0.0
    ~service_ms:0.0 ~ready_ms:6.0;
  Trace.on_reply tr ~client:0 ~cmd_id:1 ~sent_ms:6.5 ~ready_ms:7.0;
  (* latency measured from the FIRST submit, like the runner *)
  Alcotest.(check (float 1e-9)) "e2e from first submit" 7.0
    (Stats.mean (Trace.e2e tr))

let test_disabled_is_inert () =
  let tr = Trace.create ~enabled:false () in
  feed_request tr ();
  Trace.on_hop tr ~node:0 ~now_ms:1.0 ~wait_ms:0.5 ~service_ms:0.5;
  Trace.count_msg tr "P2a";
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  Alcotest.(check int) "no spans" 0 (Trace.span_count tr);
  Alcotest.(check int) "no samples" 0 (Stats.count (Trace.e2e tr));
  Alcotest.(check (list (pair string int))) "no counters" []
    (Trace.message_counts tr);
  Alcotest.(check (list int)) "no nodes" [] (Trace.node_ids tr)

let test_hop_accounting () =
  let tr = Trace.create ~enabled:true () in
  Trace.set_window tr ~from_ms:0.0 ~until_ms:100.0;
  Trace.on_hop tr ~node:2 ~now_ms:1.0 ~wait_ms:0.25 ~service_ms:0.5;
  Trace.on_hop tr ~node:2 ~now_ms:2.0 ~wait_ms:0.75 ~service_ms:0.5;
  Trace.on_hop tr ~node:0 ~now_ms:3.0 ~wait_ms:0.0 ~service_ms:0.125;
  (* out-of-window hop ignored *)
  Trace.on_hop tr ~node:1 ~now_ms:500.0 ~wait_ms:9.0 ~service_ms:9.0;
  Alcotest.(check (list int)) "nodes" [ 0; 2 ] (Trace.node_ids tr);
  Alcotest.(check (float 1e-9)) "wait sum" 1.0 (Trace.node_wait_ms tr 2);
  Alcotest.(check (float 1e-9)) "busy sum" 1.0 (Trace.node_busy_ms tr 2);
  Alcotest.(check int) "msg count" 2 (Trace.node_msgs tr 2)

let test_chrome_export_shape () =
  let tr = Trace.create ~enabled:true () in
  Trace.set_window tr ~from_ms:0.0 ~until_ms:100.0;
  feed_request tr ();
  match Trace.to_chrome_json tr with
  | Json.Obj fields ->
      (match List.assoc_opt "displayTimeUnit" fields with
      | Some (Json.String "ms") -> ()
      | _ -> Alcotest.fail "displayTimeUnit");
      let events =
        match List.assoc_opt "traceEvents" fields with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "traceEvents must be a list"
      in
      (* one metadata event plus the request's spans *)
      Alcotest.(check int) "span count + metadata"
        (Trace.span_count tr + 1)
        (List.length events);
      List.iter
        (fun ev ->
          match ev with
          | Json.Obj f ->
              let require ks =
                List.iter
                  (fun k ->
                    if not (List.mem_assoc k f) then
                      Alcotest.fail (Printf.sprintf "event missing %S" k))
                  ks
              in
              require [ "name"; "ph"; "pid" ];
              (* complete ("X") spans also carry track and timing *)
              if List.assoc_opt "ph" f = Some (Json.String "X") then
                require [ "tid"; "ts"; "dur" ]
          | _ -> Alcotest.fail "event must be an object")
        events;
      (* round-trips through the serializer *)
      let text = Json.to_string (Trace.to_chrome_json tr) in
      (match Json.parse text with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("chrome json reparse: " ^ e))
  | _ -> Alcotest.fail "chrome doc must be an object"

let test_message_counters () =
  let tr = Trace.create ~enabled:true () in
  Trace.count_msg tr "P2a";
  Trace.count_msg tr "P2a";
  Trace.count_msg tr "P1a";
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("P1a", 1); ("P2a", 2) ]
    (Trace.message_counts tr)

(* End-to-end: a traced benchmark run's dissection telescopes to its
   measured mean within float noise, and carries protocol counters. *)
let test_traced_run_telescopes () =
  let n = 5 in
  let config =
    { (Config.default ~n_replicas:n) with Config.seed = 11; tracing = true }
  in
  let spec =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:800.0 ~config
      ~topology:(Topology.lan ~n_replicas:n ())
      ~client_specs:[ Runner.clients ~target:(Runner.Fixed 0) ~count:8 Workload.default ]
      ()
  in
  let result = Runner.run (Paxi_protocols.Registry.find_exn "paxos") spec in
  let tr = result.Runner.trace in
  let e2e = Trace.e2e tr in
  Alcotest.(check bool) "collected requests" true (Stats.count e2e > 100);
  let sum =
    List.fold_left
      (fun acc (_, s) -> acc +. Stats.mean s)
      0.0 (Trace.components tr)
  in
  let rel = Float.abs (sum -. Stats.mean e2e) /. Stats.mean e2e in
  Alcotest.(check bool)
    (Printf.sprintf "sum %.6f vs e2e %.6f within 1%%" sum (Stats.mean e2e))
    true (rel < 0.01);
  (* trace latency agrees with the runner's own measurement *)
  Alcotest.(check (float 1e-6)) "trace mean = runner mean"
    (Stats.mean result.Runner.latency)
    (Stats.mean e2e);
  Alcotest.(check int) "trace count = runner count"
    (Stats.count result.Runner.latency)
    (Stats.count e2e);
  (* paxos counters present *)
  let counts = Trace.message_counts tr in
  List.iter
    (fun label ->
      match List.assoc_opt label counts with
      | Some c when c > 0 -> ()
      | _ -> Alcotest.fail (Printf.sprintf "missing %s counter" label))
    [ "P2a"; "P2b"; "reply" ];
  (* per-node accounting saw the leader *)
  Alcotest.(check bool) "leader hops recorded" true
    (List.mem 0 (Trace.node_ids tr) && Trace.node_msgs tr 0 > 0)

(* Measured read-path latency agrees with the analytic read model
   (PR 7, the dissect guarantee): an open-loop traced lease run's
   read_e2e mean lands within the relative-error band of
   Latency_model.read_breakdown, and the read/write split telescopes
   to the overall e2e population. *)
let traced_read_run ~read_path ~rate_per_sec ~seed =
  let n = 5 in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.seed;
      tracing = true;
      read_ratio = Some 0.95;
      read_path = Some read_path;
    }
  in
  let spec =
    Runner.spec ~warmup_ms:300.0 ~duration_ms:1_500.0 ~config
      ~topology:(Topology.lan ~n_replicas:n ())
      ~client_specs:
        [
          Runner.clients ~target:(Runner.Fixed 0)
            ~arrival:(Runner.Open { rate_per_sec = rate_per_sec /. 4.0 })
            ~count:4 Workload.default;
        ]
      ()
  in
  Runner.run (Paxi_protocols.Registry.find_exn "paxos") spec

let check_read_band ~name ~kind ~rate_per_sec ~seed ~band =
  let result = traced_read_run ~read_path:kind ~rate_per_sec ~seed in
  let tr = result.Runner.trace in
  let reads = Trace.read_e2e tr in
  let writes = Trace.write_e2e tr in
  Alcotest.(check bool) (name ^ " collected reads") true
    (Stats.count reads > 200);
  Alcotest.(check int)
    (name ^ " split telescopes")
    (Stats.count (Trace.e2e tr))
    (Stats.count reads + Stats.count writes);
  Alcotest.(check bool) (name ^ " fast reads counted") true
    (Trace.fast_reads tr > 0);
  let model_kind =
    match kind with
    | Config.Lease _ -> Latency_model.Local_read
    | Config.Quorum -> Latency_model.Quorum_read
    | Config.Tail -> Latency_model.Tail_read
  in
  let b =
    Latency_model.read_breakdown model_kind
      ~node:(Paxi_model.Service.default_node ~n:5)
      ~lan:Latency_model.default_lan ~rng:(Rng.create ~seed:44)
  in
  let meas = Stats.mean reads in
  let rel =
    Float.abs (meas -. b.Latency_model.total_ms) /. b.Latency_model.total_ms
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s measured %.4f vs model %.4f within %.0f%%" name meas
       b.Latency_model.total_ms (100.0 *. band))
    true (rel < band);
  (* a fast read undercuts the measured write path *)
  if Stats.count writes > 50 then
    Alcotest.(check bool) (name ^ " reads cheaper than writes") true
      (meas < Stats.mean writes)

let test_lease_read_matches_model () =
  check_read_band ~name:"lease"
    ~kind:(Config.Lease { margin_ms = 300.0 })
    ~rate_per_sec:2_000.0 ~seed:21 ~band:0.15

let test_quorum_read_matches_model () =
  check_read_band ~name:"quorum" ~kind:Config.Quorum ~rate_per_sec:600.0
    ~seed:22 ~band:0.20

let suite =
  ( "obs",
    [
      Alcotest.test_case "telescoping exact" `Quick test_telescoping_exact;
      Alcotest.test_case "fallback without quorum events" `Quick
        test_fallback_without_quorum_events;
      Alcotest.test_case "window filtering" `Quick test_window_filtering;
      Alcotest.test_case "retry keeps first submit" `Quick
        test_retry_keeps_first_submit;
      Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
      Alcotest.test_case "hop accounting" `Quick test_hop_accounting;
      Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
      Alcotest.test_case "message counters" `Quick test_message_counters;
      Alcotest.test_case "traced run telescopes" `Slow
        test_traced_run_telescopes;
      Alcotest.test_case "lease read matches model" `Slow
        test_lease_read_matches_model;
      Alcotest.test_case "quorum read matches model" `Slow
        test_quorum_read_matches_model;
    ] )
