(* Relay/aggregation trees (DESIGN.md §12): deterministic rotation
   plans, exact bitmap aggregation, end-to-end commits through relays
   for both Paxos and Raft (with the relay messages actually on the
   wire), crash-transparent fallback, and the fixed-seed pins that
   keep the relay_groups = 0 path byte-identical to the direct one. *)

open Paxi_benchmark
module Relay = Paxi_protocols.Relay
module Trace = Paxi_obs.Trace
module HP = Proto_harness.Make (Paxi_protocols.Paxos)
module HR = Proto_harness.Make (Paxi_protocols.Raft)

let put k v = Command.Put (k, v)

let relay_config ?(tracing = false) ~r n =
  {
    (Config.default ~n_replicas:n) with
    Config.relay_groups = r;
    tracing;
  }

(* ------------------------------------------------------------------ *)
(* Rotation plans                                                      *)
(* ------------------------------------------------------------------ *)

(* Every follower appears in exactly one group, group sizes differ by
   at most one, the leader is in none, and recomputing is bit-stable. *)
let test_plan_partition_exact () =
  List.iter
    (fun (n, leader, r, gen) ->
      let plan = Relay.compute ~n ~leader ~r ~gen in
      Alcotest.(check int)
        (Printf.sprintf "n=%d r=%d: group count" n r)
        r
        (Array.length plan.Relay.groups);
      let seen = Array.make n 0 in
      Array.iteri
        (fun gi g ->
          Alcotest.(check bool)
            (Printf.sprintf "n=%d group %d size balanced" n gi)
            true
            (Array.length g >= (n - 1) / r
            && Array.length g <= ((n - 1) / r) + 1);
          Array.iter
            (fun id ->
              seen.(id) <- seen.(id) + 1;
              Alcotest.(check int)
                (Printf.sprintf "n=%d id %d group_of inverse" n id)
                gi plan.Relay.group_of.(id))
            g)
        plan.Relay.groups;
      Alcotest.(check int) "leader in no group" 0 seen.(leader);
      Alcotest.(check int) "leader group_of" (-1) plan.Relay.group_of.(leader);
      Array.iteri
        (fun id c -> if id <> leader then
            Alcotest.(check int)
              (Printf.sprintf "n=%d id %d appears once" n id)
              1 c)
        seen;
      let again = Relay.compute ~n ~leader ~r ~gen in
      Alcotest.(check bool) "recompute identical" true (plan = again))
    [
      (9, 0, 2, 0); (9, 4, 2, 3); (25, 0, 3, 0); (25, 7, 3, 11);
      (49, 0, 6, 0); (81, 0, 10, 0); (81, 80, 10, 999); (5, 2, 1, 0);
      (5, 0, 4, 5);
    ]

(* Advancing the generation rotates relay duty: over n-1 generations
   every follower serves as a relay at least once. *)
let test_plan_rotation_covers () =
  let n = 25 and leader = 0 and r = 3 in
  let relays = Hashtbl.create 32 in
  for gen = 0 to n - 2 do
    let plan = Relay.compute ~n ~leader ~r ~gen in
    Array.iter (fun g -> Hashtbl.replace relays g.(0) ()) plan.Relay.groups
  done;
  Alcotest.(check int) "every follower relays once per cycle" (n - 1)
    (Hashtbl.length relays);
  let p0 = Relay.compute ~n ~leader ~r ~gen:0 in
  let p1 = Relay.compute ~n ~leader ~r ~gen:1 in
  Alcotest.(check bool) "consecutive gens differ" false
    (p0.Relay.groups = p1.Relay.groups)

let test_plan_cache_reuses () =
  let plans = Relay.plans () in
  let a = Relay.find plans ~n:49 ~leader:3 ~r:6 ~gen:7 in
  let b = Relay.find plans ~n:49 ~leader:3 ~r:6 ~gen:7 in
  Alcotest.(check bool) "cache hit is physical" true (a == b)

(* ------------------------------------------------------------------ *)
(* Aggregation bitmaps                                                 *)
(* ------------------------------------------------------------------ *)

let test_bitmap_exact () =
  Alcotest.(check int) "full_mask 1" 1 (Relay.full_mask 1);
  Alcotest.(check int) "full_mask 5" 31 (Relay.full_mask 5);
  Alcotest.(check int) "full_mask 62" ((1 lsl 62) - 1) (Relay.full_mask 62);
  let pool = Relay.pool () in
  let group = [| 7; 3; 11; 5 |] in
  let a = Relay.alloc pool ~leader:0 ~gen:2 ~group ~tag:9 ~aux:4 ~batch:false in
  Alcotest.(check bool) "fresh not complete" false (Relay.complete a);
  Alcotest.(check int) "position finds member" 2 (Relay.position a 11);
  Alcotest.(check int) "position misses stranger" (-1) (Relay.position a 8);
  Relay.set_bit a 0;
  Relay.set_bit a 0;
  Alcotest.(check int) "set_bit idempotent" 1 a.Relay.a_bits;
  Relay.set_bit a 1;
  Relay.set_bit a 2;
  Alcotest.(check bool) "partial not complete" false (Relay.complete a);
  Relay.set_bit a 3;
  Alcotest.(check bool) "full bitmap complete" true (Relay.complete a);
  Relay.release pool a;
  let b = Relay.alloc pool ~leader:1 ~gen:0 ~group ~tag:1 ~aux:1 ~batch:true in
  Alcotest.(check bool) "pool recycles records" true (a == b);
  Alcotest.(check int) "recycled bits cleared" 0 b.Relay.a_bits

(* ------------------------------------------------------------------ *)
(* End-to-end: commits flow through the relay tree                     *)
(* ------------------------------------------------------------------ *)

let test_paxos_relay_commits () =
  let h = HP.lan ~config:(relay_config ~tracing:true ~r:2 9) ~n:9 () in
  HP.run_for h 200.0;
  let replies = HP.submit_seq h (List.init 30 (fun i -> put i i)) in
  Alcotest.(check int) "all committed" 30 (List.length replies);
  let trace = HP.C.trace h.HP.cluster in
  let count label =
    match List.assoc_opt label (Trace.message_counts trace) with
    | Some c -> c
    | None -> 0
  in
  Alcotest.(check bool) "RelayRound on the wire" true (count "RelayRound" > 0);
  Alcotest.(check bool) "RelayAck on the wire" true (count "RelayAck" > 0);
  Alcotest.(check bool) "aggregation hops traced" true
    (Trace.relay_hops trace > 0);
  HP.assert_consistent h

let test_raft_relay_commits () =
  let h = HR.lan ~config:(relay_config ~tracing:true ~r:2 9) ~n:9 () in
  HR.run_for h 1_000.0;
  let replies = HR.submit_seq h (List.init 30 (fun i -> put i i)) in
  Alcotest.(check int) "all committed" 30 (List.length replies);
  let trace = HR.C.trace h.HR.cluster in
  let count label =
    match List.assoc_opt label (Trace.message_counts trace) with
    | Some c -> c
    | None -> 0
  in
  Alcotest.(check bool) "RelayAppend on the wire" true
    (count "RelayAppend" > 0);
  Alcotest.(check bool) "RelayAppendAck on the wire" true
    (count "RelayAppendAck" > 0);
  HR.assert_consistent h

let test_paxos_relay_big_n () =
  let h = HP.lan ~config:(relay_config ~r:3 25) ~n:25 () in
  HP.run_for h 200.0;
  let replies = HP.submit_seq h (List.init 20 (fun i -> put i (i * 2))) in
  Alcotest.(check int) "n=25 commits through relays" 20 (List.length replies);
  HP.assert_consistent h

(* ------------------------------------------------------------------ *)
(* Crash transparency                                                  *)
(* ------------------------------------------------------------------ *)

(* Kill a serving relay mid-run: the leader's per-round fallback
   re-ships stalled rounds direct and rotates the dead relay out of
   its post, so every write still commits and no history diverges.
   The gen-0 victim is deterministic — the leader is 0 in both
   protocols and the plan is a pure function. *)
let relay_victim ~n ~r = (Relay.compute ~n ~leader:0 ~r ~gen:0).Relay.groups.(0).(0)

let test_paxos_relay_crash () =
  let n = 9 in
  let h = HP.lan ~config:(relay_config ~r:2 n) ~n () in
  HP.run_for h 200.0;
  ignore (HP.submit_seq h [ put 0 1; put 1 2 ]);
  let victim = relay_victim ~n ~r:2 in
  Faults.crash (HP.faults h) ~node:(Address.replica victim)
    ~from_ms:(Sim.now (HP.sim h)) ~duration_ms:8_000.0;
  let replies = HP.submit_seq h (List.init 12 (fun i -> put (10 + i) i)) in
  Alcotest.(check int) "commits despite dead relay" 12 (List.length replies);
  HP.run_for h 12_000.0;
  let replies = HP.submit_seq h [ put 99 99 ] in
  Alcotest.(check int) "commits after relay revives" 1 (List.length replies);
  HP.assert_consistent h

let test_raft_relay_crash () =
  let n = 9 in
  let h = HR.lan ~config:(relay_config ~r:2 n) ~n () in
  HR.run_for h 1_000.0;
  ignore (HR.submit_seq h [ put 0 1; put 1 2 ]);
  let victim = relay_victim ~n ~r:2 in
  Faults.crash (HR.faults h) ~node:(Address.replica victim)
    ~from_ms:(Sim.now (HR.sim h)) ~duration_ms:8_000.0;
  let replies = HR.submit_seq h (List.init 12 (fun i -> put (10 + i) i)) in
  Alcotest.(check int) "commits despite dead relay" 12 (List.length replies);
  HR.run_for h 12_000.0;
  let replies = HR.submit_seq h [ put 99 99 ] in
  Alcotest.(check int) "commits after relay revives" 1 (List.length replies);
  HR.assert_consistent h

(* ------------------------------------------------------------------ *)
(* relay_groups = 0 stays byte-identical to the direct path            *)
(* ------------------------------------------------------------------ *)

let pin_spec protocol ~r =
  let config =
    { (Config.default ~n_replicas:5) with Config.seed = 77; relay_groups = r }
  in
  let spec =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:1_000.0 ~config
      ~topology:(Topology.lan ~n_replicas:5 ())
      ~client_specs:
        [
          Runner.clients ~target:(Runner.Fixed 0) ~count:8
            { Workload.default with Workload.write_ratio = 1.0 };
        ]
      ()
  in
  Runner.run (Paxi_protocols.Registry.find_exn protocol) spec

(* Fixed-seed event-count pins for the direct path with the relay code
   compiled in but off. A drift here means relay_groups = 0 perturbed
   the legacy simulation — the cross-PR identity the CI perf-smoke
   baseline also gates. *)
let test_relay_zero_pins () =
  let paxos = pin_spec "paxos" ~r:0 in
  let raft = pin_spec "raft" ~r:0 in
  Alcotest.(check int) "paxos sim_events pinned" 209_733
    paxos.Runner.sim_events;
  Alcotest.(check int) "raft sim_events pinned" 210_437 raft.Runner.sim_events;
  (* and with relays on, the same workload still completes cleanly *)
  let relay = pin_spec "paxos" ~r:2 in
  Alcotest.(check bool) "relay run progresses" true
    (relay.Runner.completed > 500);
  Alcotest.(check int) "relay run consensus clean" 0
    (List.length relay.Runner.consensus_violations)

let suite =
  ( "relay",
    [
      Alcotest.test_case "plan partition exact" `Quick
        test_plan_partition_exact;
      Alcotest.test_case "plan rotation covers" `Quick
        test_plan_rotation_covers;
      Alcotest.test_case "plan cache reuses" `Quick test_plan_cache_reuses;
      Alcotest.test_case "bitmap exact" `Quick test_bitmap_exact;
      Alcotest.test_case "paxos relay commits" `Quick
        test_paxos_relay_commits;
      Alcotest.test_case "raft relay commits" `Quick test_raft_relay_commits;
      Alcotest.test_case "paxos relay at n=25" `Slow test_paxos_relay_big_n;
      Alcotest.test_case "paxos relay crash fallback" `Slow
        test_paxos_relay_crash;
      Alcotest.test_case "raft relay crash fallback" `Slow
        test_raft_relay_crash;
      Alcotest.test_case "relay_groups=0 pins" `Slow test_relay_zero_pins;
    ] )
