(* paxi_run — run one protocol under a configurable workload and
   deployment, printing latency/throughput and optional checker
   verdicts. The CLI mirrors the knobs of the paper's Table 3. *)

open Cmdliner
open Paxi_benchmark

let protocol_arg =
  let doc =
    Printf.sprintf "Protocol to run. One of: %s."
      (String.concat ", " Paxi_protocols.Registry.names)
  in
  Arg.(value & opt string "paxos" & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let nodes_arg =
  Arg.(value & opt int 9 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")

let wan_arg =
  Arg.(
    value & flag
    & info [ "wan" ]
        ~doc:
          "Deploy across the paper's five AWS regions (VA, OH, CA, IR, JP) \
           instead of one LAN; node count is rounded to a multiple of the \
           region count.")

let duration_arg =
  Arg.(
    value & opt float 10.0
    & info [ "t"; "seconds" ] ~docv:"T" ~doc:"Measured duration (virtual seconds).")

let concurrency_arg =
  Arg.(
    value & opt int 16
    & info [ "c"; "concurrency" ] ~docv:"C" ~doc:"Closed-loop clients.")

let keys_arg =
  Arg.(value & opt int 1000 & info [ "k"; "keys" ] ~docv:"K" ~doc:"Key-space size.")

let writes_arg =
  Arg.(
    value & opt float 0.5
    & info [ "w"; "writes" ] ~docv:"W" ~doc:"Write ratio in [0,1].")

let conflict_arg =
  Arg.(
    value & opt float 0.0
    & info [ "conflict" ] ~docv:"P"
        ~doc:"Fraction of requests aimed at one hot key (conflict workload).")

let locality_arg =
  Arg.(
    value & flag
    & info [ "locality" ]
        ~doc:
          "Give each region its own Normal key distribution (locality \
           workload, WAN only).")

let dist_arg =
  Arg.(
    value & opt string "uniform"
    & info [ "d"; "distribution" ] ~docv:"DIST"
        ~doc:"Key distribution: uniform, zipfian, normal or exponential.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Collect the full history and run the linearizability and \
           consensus checkers at the end.")

let config_arg =
  Arg.(
    value & opt (some file) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:"JSON configuration file (\u{00a7}4.1); its fields override the \
              defaults, and --nodes is ignored when it sets n_replicas.")

let crash_leader_arg =
  Arg.(
    value & opt (some float) None
    & info [ "crash-leader-at" ] ~docv:"MS"
        ~doc:"Crash replica 0 at this virtual time for 10 s (availability test).")

let dist_of_name name ~keys =
  match name with
  | "uniform" -> Ok Workload.Uniform
  | "zipfian" -> Ok (Workload.Zipfian { s = 2.0; v = 1.0 })
  | "normal" ->
      Ok
        (Workload.Normal
           {
             mu = float_of_int keys /. 2.0;
             sigma = float_of_int keys /. 6.0;
             speed_ms = 0.0;
             drift = 0.0;
           })
  | "exponential" -> Ok (Workload.Exponential { mean = float_of_int keys /. 5.0 })
  | other -> Error (Printf.sprintf "unknown distribution %S" other)

let run protocol nodes wan seconds concurrency keys writes conflict locality
    dist seed check config_file crash_at =
  match Paxi_protocols.Registry.find protocol with
  | None ->
      Printf.eprintf "unknown protocol %S (known: %s)\n" protocol
        (String.concat ", " Paxi_protocols.Registry.names);
      1
  | Some (module P) -> (
      match dist_of_name dist ~keys with
      | Error e ->
          Printf.eprintf "%s\n" e;
          1
      | Ok key_dist -> (
          let file_config =
            match config_file with
            | None -> Ok None
            | Some path -> Result.map Option.some (Config.load_file path)
          in
          match file_config with
          | Error e ->
              Printf.eprintf "config: %s\n" e;
              1
          | Ok file_config ->
          let nodes =
            match file_config with Some c -> c.Config.n_replicas | None -> nodes
          in
          let regions = Region.aws_five in
          let topology, nodes =
            if wan then begin
              let per = Stdlib.max 1 (nodes / List.length regions) in
              ( Topology.wan ~regions ~replicas_per_region:per (),
                per * List.length regions )
            end
            else (Topology.lan ~n_replicas:nodes (), nodes)
          in
          let config =
            match file_config with
            | Some c -> { c with Config.n_replicas = nodes }
            | None ->
                {
                  (Config.default ~n_replicas:nodes) with
                  Config.seed;
                  master_region_index = 0;
                }
          in
          let base_workload =
            {
              Workload.default with
              Workload.keys;
              write_ratio = writes;
              dist = key_dist;
              conflict_ratio = conflict;
            }
          in
          let client_specs =
            if wan then
              List.mapi
                (fun i region ->
                  let workload =
                    if locality then
                      Workload.with_locality base_workload ~region_index:i
                        ~regions:(List.length regions)
                    else base_workload
                  in
                  Runner.clients ~region
                    ~count:(Stdlib.max 1 (concurrency / List.length regions))
                    workload)
                regions
            else [ Runner.clients ~target:Runner.Round_robin ~count:concurrency base_workload ]
          in
          let faults =
            Option.map
              (fun at faults ->
                Faults.crash faults ~node:(Address.replica 0) ~from_ms:at
                  ~duration_ms:10_000.0)
              crash_at
          in
          let spec =
            Runner.spec ~duration_ms:(seconds *. 1000.0)
              ~collect_history:check ~check_consensus:check ?faults ~config
              ~topology ~client_specs ()
          in
          let result = Runner.run (module P) spec in
          Printf.printf "protocol   : %s\n" P.name;
          Printf.printf "deployment : %s, %d nodes\n"
            (if wan then "WAN (5 AWS regions)" else "LAN")
            nodes;
          Printf.printf "throughput : %.0f ops/s\n" result.Runner.throughput_rps;
          Format.printf "latency    : %a@." Stats.pp_summary result.Runner.latency;
          List.iter
            (fun (region, stats) ->
              Format.printf "  %-12s %a@." (Region.name region) Stats.pp_summary
                stats)
            result.Runner.per_region;
          Printf.printf "completed  : %d (gave up %d)\n" result.Runner.completed
            result.Runner.gave_up;
          Printf.printf "busiest    : replica %d (%.0f ms busy)\n"
            result.Runner.busiest_node result.Runner.busiest_node_busy_ms;
          if check then begin
            let anomalies = Linearizability.check result.Runner.history in
            Printf.printf "linearizable : %s\n"
              (if anomalies = [] then "yes"
               else Printf.sprintf "NO (%d anomalous reads)" (List.length anomalies));
            Printf.printf "consensus    : %s\n"
              (if result.Runner.consensus_violations = [] then "consistent"
               else
                 Printf.sprintf "VIOLATED (%d)"
                   (List.length result.Runner.consensus_violations))
          end;
          0))

let cmd =
  let doc = "run a replication protocol on the simulated Paxi cluster" in
  Cmd.v
    (Cmd.info "paxi_run" ~doc)
    Term.(
      const run $ protocol_arg $ nodes_arg $ wan_arg $ duration_arg
      $ concurrency_arg $ keys_arg $ writes_arg $ conflict_arg $ locality_arg
      $ dist_arg $ seed_arg $ check_arg $ config_arg $ crash_leader_arg)

let () = exit (Cmd.eval' cmd)
