bin/paxi_run.ml: Address Arg Cmd Cmdliner Config Faults Format Linearizability List Option Paxi_benchmark Paxi_protocols Printf Region Result Runner Stats Stdlib String Term Topology Workload
