bin/paxi_run.mli:
