bin/paxi_model_run.ml: Advisor Arg Cmd Cmdliner Format Formulas Latency_model List Paxi_model Printf Region Rng Service Term
