bin/paxi_model_run.mli:
