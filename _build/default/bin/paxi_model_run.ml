(* paxi_model_run — evaluate the analytic model: queueing formulas,
   per-protocol LAN/WAN latency-throughput curves, and the Section 6
   load/capacity formulas, printed as tables. *)

open Cmdliner
open Paxi_model

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("lan", `Lan); ("wan", `Wan); ("load", `Load); ("advise", `Advise) ]) `Lan
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"What to evaluate: lan curves, wan curves, load formulas, or \
              the protocol advisor decision table.")

let nodes_arg =
  Arg.(value & opt int 9 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")

let conflict_arg =
  Arg.(
    value & opt float 0.0
    & info [ "conflict" ] ~docv:"C" ~doc:"EPaxos conflict probability.")

let points_arg =
  Arg.(value & opt int 12 & info [ "points" ] ~docv:"P" ~doc:"Curve points.")

let curve_lambdas cap points =
  List.init points (fun i ->
      cap *. (float_of_int (i + 1) /. float_of_int (points + 1)))

let lan_table n conflict points =
  let node = Service.default_node ~n in
  let rng = Rng.create ~seed:7 in
  let protos =
    [
      Latency_model.Paxos;
      Latency_model.Fpaxos { q2 = 3 };
      Latency_model.Epaxos { conflict };
      Latency_model.Wpaxos { leaders = 3; locality = 1.0; fz = 0 };
      Latency_model.Wankeeper { leaders = 3; locality = 1.0 };
    ]
  in
  List.iter
    (fun proto ->
      let cap = Latency_model.lan_max_throughput proto ~node in
      Printf.printf "\n%s (max %.0f rounds/s)\n"
        (Latency_model.protocol_name proto)
        cap;
      let lambdas = curve_lambdas cap points in
      List.iter
        (fun { Latency_model.throughput_rps; latency_ms } ->
          Printf.printf "  %8.0f rps  %8.3f ms\n" throughput_rps latency_ms)
        (Latency_model.lan_curve proto ~node ~lan:Latency_model.default_lan ~rng
           ~lambdas))
    protos;
  0

let wan_table n conflict points =
  ignore conflict;
  let node = Service.default_node ~n in
  let wan = Latency_model.default_wan in
  let protos =
    [
      (Latency_model.Paxos, Region.california);
      (Latency_model.Fpaxos { q2 = 2 }, Region.california);
      (Latency_model.Epaxos { conflict = 0.3 }, Region.virginia);
      ( Latency_model.Epaxos_adaptive { conflict_lo = 0.02; conflict_hi = 0.70 },
        Region.virginia );
      (Latency_model.Wpaxos { leaders = 5; locality = 0.7; fz = 0 }, Region.virginia);
    ]
  in
  List.iter
    (fun (proto, leader_region) ->
      let cap = Latency_model.lan_max_throughput proto ~node in
      Printf.printf "\n%s (leader %s)\n"
        (Latency_model.protocol_name proto)
        (Region.name leader_region);
      let lambdas = curve_lambdas cap points in
      List.iter
        (fun { Latency_model.throughput_rps; latency_ms } ->
          Printf.printf "  %8.0f rps  %8.3f ms\n" throughput_rps latency_ms)
        (Latency_model.wan_curve proto ~node ~wan ~leader_region ~lambdas))
    protos;
  0

let load_table n conflict =
  Printf.printf "Section 6 load formulas at N=%d, c=%.2f\n" n conflict;
  Printf.printf "  L(Paxos)   = %.3f\n" (Formulas.load_paxos ~n);
  Printf.printf "  L(EPaxos)  = %.3f\n" (Formulas.load_epaxos ~n ~conflict);
  Printf.printf "  L(WPaxos)  = %.3f (3 leaders)\n" (Formulas.load_wpaxos ~n ~leaders:3);
  Printf.printf "  Cap ratios : wpaxos/paxos = %.2f, epaxos/paxos = %.2f\n"
    (Formulas.load_paxos ~n /. Formulas.load_wpaxos ~n ~leaders:3)
    (Formulas.load_paxos ~n /. Formulas.load_epaxos ~n ~conflict);
  0

let advise_table () =
  List.iter
    (fun ((_ : Advisor.deployment), r) -> Format.printf "%a@." Advisor.pp r)
    Advisor.all_paths;
  0

let run mode n conflict points =
  match mode with
  | `Lan -> lan_table n conflict points
  | `Wan -> wan_table n conflict points
  | `Load -> load_table n conflict
  | `Advise -> advise_table ()

let cmd =
  let doc = "evaluate the analytic performance model of the paper" in
  Cmd.v
    (Cmd.info "paxi_model_run" ~doc)
    Term.(const run $ mode_arg $ nodes_arg $ conflict_arg $ points_arg)

let () = exit (Cmd.eval' cmd)
