examples/conflict_tolerance.ml: Config List Paxi_benchmark Paxi_protocols Printf Region Report Runner Stats Topology Workload
