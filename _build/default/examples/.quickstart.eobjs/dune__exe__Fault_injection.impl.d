examples/fault_injection.ml: Address Config Faults Hashtbl Linearizability List Option Paxi_benchmark Paxi_protocols Printf Runner Topology Workload
