examples/protocol_advisor.ml: Advisor Formulas List Paxi_model Printf Region String Topology
