examples/wan_locality.mli:
