examples/conflict_tolerance.mli:
