examples/wan_locality.ml: Config List Paxi_benchmark Paxi_protocols Region Report Runner Stats Topology Workload
