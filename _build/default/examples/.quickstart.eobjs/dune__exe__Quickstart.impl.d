examples/quickstart.ml: Cluster Command Config Executor Paxi_protocols Printf Proto Sim Topology
