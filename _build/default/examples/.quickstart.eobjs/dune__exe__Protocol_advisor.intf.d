examples/protocol_advisor.mli:
