examples/quickstart.mli:
