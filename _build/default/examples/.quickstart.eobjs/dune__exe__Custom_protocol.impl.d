examples/custom_protocol.ml: Address Command Config Executor Faults Fun Hashtbl Linearizability List Paxi_benchmark Printf Proto Quorum Runner Stats Topology Workload
