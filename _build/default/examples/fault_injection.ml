(* Availability testing with the Paxi fault-injection commands (§4.2):
   crash the Paxos leader mid-run, watch throughput dip and recover
   after failover, then verify linearizability and replica agreement
   offline.

   dune exec examples/fault_injection.exe *)

open Paxi_benchmark

let () =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let n = 5 in
  let config = Config.default ~n_replicas:n in
  let topology = Topology.lan ~n_replicas:n () in
  let crash_at = 10_000.0 and crash_for = 15_000.0 in
  let spec =
    Runner.spec ~warmup_ms:1_000.0 ~duration_ms:40_000.0 ~collect_history:true
      ~check_consensus:true
      ~faults:(fun faults ->
        (* freeze the initial leader; also make one healthy link flaky *)
        Faults.crash faults ~node:(Address.replica 0) ~from_ms:crash_at
          ~duration_ms:crash_for;
        Faults.flaky faults ~src:(Address.replica 1) ~dst:(Address.replica 2)
          ~from_ms:0.0 ~duration_ms:60_000.0 ~p_drop:0.05)
      ~config ~topology
      ~client_specs:
        [
          Runner.clients ~target:Runner.Round_robin ~count:8
            { Workload.default with Workload.keys = 100 };
        ]
      ()
  in
  let result = Runner.run (module P) spec in

  (* throughput timeline from the reply history *)
  let buckets = Hashtbl.create 64 in
  List.iter
    (fun (op : Linearizability.op) ->
      let b = int_of_float (op.Linearizability.responded_ms /. 2_000.0) in
      Hashtbl.replace buckets b
        (1 + Option.value (Hashtbl.find_opt buckets b) ~default:0))
    result.Runner.history;
  Printf.printf "throughput timeline (2 s buckets):\n";
  for b = 0 to 20 do
    let count = Option.value (Hashtbl.find_opt buckets b) ~default:0 in
    let marker =
      if float_of_int b *. 2_000.0 >= crash_at
         && float_of_int b *. 2_000.0 < crash_at +. crash_for
      then " <- leader crashed"
      else ""
    in
    Printf.printf "  %5.0f s  %5d ops %s\n"
      (float_of_int b *. 2.0)
      count marker
  done;

  let anomalies = Linearizability.check result.Runner.history in
  Printf.printf "\ncompleted %d ops, gave up %d\n" result.Runner.completed
    result.Runner.gave_up;
  Printf.printf "linearizable: %s\n"
    (if anomalies = [] then "yes" else Printf.sprintf "NO (%d)" (List.length anomalies));
  Printf.printf "replica agreement: %s\n"
    (if result.Runner.consensus_violations = [] then "yes"
     else Printf.sprintf "NO (%d)" (List.length result.Runner.consensus_violations))
