(* The paper's headline WAN scenario (§5.3): clients in Virginia, Ohio
   and California with per-region access locality, all objects
   initially in Ohio. Compare how WPaxos, WanKeeper and VPaxos adapt
   object placement, against static single-leader Paxos.

   dune exec examples/wan_locality.exe *)

open Paxi_benchmark

let regions = [ Region.virginia; Region.ohio; Region.california ]

let run name =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  let topology = Topology.wan ~regions ~replicas_per_region:3 () in
  let config =
    {
      (Config.default ~n_replicas:9) with
      Config.master_region_index = 1 (* Ohio *);
      initial_object_owner =
        (if name = "paxos" then None else Some 1 (* all objects in Ohio *));
    }
  in
  let client_specs =
    List.mapi
      (fun i region ->
        Runner.clients ~region ~count:3
          (Workload.with_locality
             { Workload.default with Workload.keys = 900 }
             ~region_index:i ~regions:3))
      regions
  in
  let spec =
    Runner.spec ~warmup_ms:2_000.0 ~duration_ms:20_000.0 ~config ~topology
      ~client_specs ()
  in
  let result = Runner.run (module P) spec in
  (name, result)

let () =
  let results = List.map run [ "paxos"; "wpaxos"; "wankeeper"; "vpaxos" ] in
  Report.print_table
    ~header:
      ([ "protocol"; "throughput" ]
      @ List.map (fun r -> Region.name r ^ " p50 (ms)") regions
      @ [ "mean (ms)" ])
    ~rows:
      (List.map
         (fun (name, (r : Runner.result)) ->
           [ name; Report.frate r.Runner.throughput_rps ]
           @ List.map
               (fun region ->
                 match
                   List.find_opt
                     (fun (rg, _) -> Region.equal rg region)
                     r.Runner.per_region
                 with
                 | Some (_, s) -> Report.fms (Stats.median s)
                 | None -> "-")
               regions
           @ [ Report.fms (Stats.mean r.Runner.latency) ])
         results);
  print_newline ();
  print_endline
    "Multi-leader protocols migrate each region's objects to its local\n\
     leader (the three-consecutive-access policy), so their per-region\n\
     medians approach the region-local RTT, while Paxos pays WAN round\n\
     trips from every non-leader region."
