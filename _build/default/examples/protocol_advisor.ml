(* The Figure-14 flowchart as a tool: describe a deployment, get the
   paper's recommendation, and back it with the Section-6 formulas.

   dune exec examples/protocol_advisor.exe *)

open Paxi_model

let describe (d : Advisor.deployment) =
  Printf.sprintf "consensus=%b wan=%b read-heavy=%b locality=%s region-ft=%b"
    d.Advisor.needs_consensus d.Advisor.wan d.Advisor.read_heavy
    (match d.Advisor.locality with
    | Advisor.No_locality -> "none"
    | Advisor.Static_locality -> "static"
    | Advisor.Dynamic_locality -> "dynamic")
    d.Advisor.region_failure_concern

let () =
  print_endline "Figure 14 decision table:";
  List.iter
    (fun (d, r) ->
      Printf.printf "  %-62s -> %s\n" (describe d)
        (String.concat ", " r.Advisor.protocols))
    Advisor.all_paths;

  (* Back-of-the-envelope forecasting with the Section 6 formulas
     (the paper's worked example at N = 9). *)
  let n = 9 in
  Printf.printf "\nSection 6 back-of-the-envelope at N = %d:\n" n;
  Printf.printf "  load:    paxos %.2f   epaxos(c=0) %.2f   epaxos(c=0.5) %.2f   wpaxos(3 leaders) %.2f\n"
    (Formulas.load_paxos ~n)
    (Formulas.load_epaxos ~n ~conflict:0.0)
    (Formulas.load_epaxos ~n ~conflict:0.5)
    (Formulas.load_wpaxos ~n ~leaders:3);
  Printf.printf "  so WPaxos' capacity advantage over Paxos is about %.1fx,\n"
    (Formulas.load_paxos ~n /. Formulas.load_wpaxos ~n ~leaders:3);
  Printf.printf "  and conflicts erase EPaxos' edge beyond c = %.2f.\n"
    ((Formulas.load_paxos ~n /. Formulas.load_epaxos ~n ~conflict:0.0) -. 1.0);

  (* Latency forecast (Formula 7) for a VA-based client of an OH
     leader with region-local quorums. *)
  let dl = Topology.aws_rtt_ms Region.virginia Region.ohio in
  let dq = Topology.aws_rtt_ms Region.ohio Region.ohio in
  Printf.printf "\nFormula 7 latency forecast, VA client / OH leader (DL=%.0f ms, DQ=%.1f ms):\n" dl dq;
  List.iter
    (fun l ->
      Printf.printf "  locality %.1f -> %.1f ms\n" l
        (Formulas.latency ~conflict:0.0 ~locality:l ~dl_ms:dl ~dq_ms:dq))
    [ 0.0; 0.5; 0.9; 1.0 ]
