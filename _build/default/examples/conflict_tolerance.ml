(* Conflict experiment (paper §5.3, Fig. 11): a "hot" key is accessed
   from every region with an increasing share of requests; leaderless
   EPaxos suffers from interference while leader-per-object protocols
   serialize the hot key at one leader.

   dune exec examples/conflict_tolerance.exe *)

open Paxi_benchmark

let regions = [ Region.virginia; Region.ohio; Region.california ]

let run name conflict =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  let topology = Topology.wan ~regions ~replicas_per_region:3 () in
  let config =
    {
      (Config.default ~n_replicas:9) with
      Config.master_region_index = 1;
      initial_object_owner = (if name = "epaxos" then None else Some 1);
    }
  in
  let client_specs =
    List.map
      (fun region ->
        Runner.clients ~region ~count:2
          {
            Workload.default with
            Workload.keys = 1000;
            conflict_ratio = conflict;
            hot_key = 0;
          })
      regions
  in
  let spec =
    Runner.spec ~warmup_ms:2_000.0 ~duration_ms:15_000.0 ~config ~topology
      ~client_specs ()
  in
  Runner.run (module P) spec

let () =
  let conflicts = [ 0.0; 0.2; 0.5; 1.0 ] in
  let protocols = [ "epaxos"; "wpaxos"; "wankeeper" ] in
  Report.print_table
    ~header:
      ("conflict %"
      :: List.concat_map (fun p -> [ p ^ " mean"; p ^ " p99" ]) protocols)
    ~rows:
      (List.map
         (fun c ->
           Printf.sprintf "%.0f%%" (c *. 100.0)
           :: List.concat_map
                (fun p ->
                  let r = run p c in
                  [
                    Report.fms (Stats.mean r.Runner.latency);
                    Report.fms (Stats.percentile r.Runner.latency 99.0);
                  ])
                protocols)
         conflicts);
  print_newline ();
  print_endline
    "EPaxos latency degrades non-linearly with interference (extra\n\
     rounds to resolve dependency conflicts), while the hot key's\n\
     single leader keeps multi-leader protocols' latency flat at the\n\
     cost of WAN forwarding from the other regions."
