(* Quickstart: run multi-Paxos on a simulated 5-node LAN, issue a few
   commands from one client, and read the results back.

   dune exec examples/quickstart.exe *)

module Cluster = Cluster.Make (Paxi_protocols.Paxos)

let () =
  (* 1. Describe the deployment: 5 replicas in one LAN. *)
  let config = Config.default ~n_replicas:5 in
  let topology = Topology.lan ~n_replicas:5 () in
  let cluster = Cluster.create ~config ~topology () in
  let sim = Cluster.sim cluster in

  (* 2. Register a client. *)
  Cluster.register_client cluster ~id:0 ();

  (* 3. Submit commands: a write then a read, sequenced by replies.
     Replica 1 is a follower — it forwards to the leader for us. *)
  let submit command on_reply =
    Cluster.submit cluster ~client:0 ~target:1 ~command ~on_reply
  in
  let t0 = Sim.now sim in
  submit
    (Command.make ~id:0 ~client:0 (Command.Put (42, 1234)))
    (fun reply ->
      Printf.printf "put committed by replica %d after %.3f ms\n"
        reply.Proto.replier
        (Sim.now sim -. t0);
      submit
        (Command.make ~id:1 ~client:0 (Command.Get 42))
        (fun reply ->
          Printf.printf "get returned %s\n"
            (match reply.Proto.read with
            | Some v -> string_of_int v
            | None -> "nothing")));

  (* 4. Run the virtual clock. *)
  Sim.run_until sim 1_000.0;

  (* 5. Inspect replica state: all replicas applied both commands. *)
  for i = 0 to 4 do
    let exec = Paxi_protocols.Paxos.executor (Cluster.replica cluster i) in
    Printf.printf "replica %d applied %d commands\n" i
      (Executor.executed_count exec)
  done
