(** The distilled formulas of Section 6 — the paper's "simple unified
    theory of strongly-consistent replication".

    Load (Definition 6.1, Equations 2–3): the minimum number of
    operations the busiest node performs per request, where one
    operation is the work of a round trip with one peer:

    {v L(S) = (1 + c) (Q + L - 2) / L v}

    Capacity is its reciprocal (Equation 1). Latency (Equation 7):

    {v Latency = (1 + c) ((1 - l)(DL + DQ) + l DQ) v} *)

val load : leaders:int -> conflict:float -> quorum:int -> float
(** Equation 3. [leaders >= 1], [0 <= conflict <= 1], [quorum >= 1]. *)

val capacity : leaders:int -> conflict:float -> quorum:int -> float
(** Equation 1: [1 / load]. Relative units. *)

val load_paxos : n:int -> float
(** Equation 4: [⌊N/2⌋] — with [L = 1], [c = 0] and a majority
    quorum. *)

val load_epaxos : n:int -> conflict:float -> float
(** Equation 5: [(1+c)(⌊N/2⌋ + N - 1)/N]. *)

val load_wpaxos : n:int -> leaders:int -> float
(** Equation 6: [(N/L + L - 2)/L] — flexible grid with per-zone
    phase-2 quorums. *)

val latency :
  conflict:float -> locality:float -> dl_ms:float -> dq_ms:float -> float
(** Equation 7. *)

val table4 : (string * string list) list
(** The parameter-to-protocol map of Table 4: which protocols explore
    leaders, conflicts, quorums and locality. *)
