type kind =
  | Mm1
  | Md1
  | Mg1 of { service_cv2 : float }
  | Gg1 of { arrival_cv2 : float; service_cv2 : float }

let utilization ~lambda ~mu = lambda /. mu
let is_stable ~lambda ~mu = lambda > 0.0 && lambda < mu

let wait_time kind ~lambda ~mu =
  if lambda <= 0.0 then 0.0
  else if not (is_stable ~lambda ~mu) then infinity
  else
    let rho = lambda /. mu in
    match kind with
    | Mm1 -> rho *. rho /. (lambda *. (1.0 -. rho))
    | Md1 -> rho /. (2.0 *. mu *. (1.0 -. rho))
    | Mg1 { service_cv2 } ->
        (* Pollaczek–Khinchine with sigma^2 = cv2 / mu^2:
           Wq = (lambda^2 sigma^2 + rho^2) / (2 lambda (1 - rho)) *)
        let sigma2 = service_cv2 /. (mu *. mu) in
        ((lambda *. lambda *. sigma2) +. (rho *. rho))
        /. (2.0 *. lambda *. (1.0 -. rho))
    | Gg1 { arrival_cv2 = ca; service_cv2 = cs } ->
        rho *. rho
        *. (1.0 +. cs)
        *. (ca +. (rho *. rho *. cs))
        /. (2.0 *. lambda *. (1.0 -. rho) *. (1.0 +. (rho *. rho *. cs)))

let sojourn_time kind ~lambda ~mu = wait_time kind ~lambda ~mu +. (1.0 /. mu)

let pp_kind ppf = function
  | Mm1 -> Format.pp_print_string ppf "M/M/1"
  | Md1 -> Format.pp_print_string ppf "M/D/1"
  | Mg1 _ -> Format.pp_print_string ppf "M/G/1"
  | Gg1 _ -> Format.pp_print_string ppf "G/G/1"
