lib/model/latency_model.mli: Queueing Region Rng Service
