lib/model/advisor.mli: Format
