lib/model/formulas.mli:
