lib/model/queueing.ml: Format
