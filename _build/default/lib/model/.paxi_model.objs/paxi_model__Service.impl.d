lib/model/service.ml: Float Paxi_quorum Stdlib
