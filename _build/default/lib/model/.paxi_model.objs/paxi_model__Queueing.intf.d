lib/model/queueing.mli: Format
