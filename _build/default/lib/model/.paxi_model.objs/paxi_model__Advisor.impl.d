lib/model/advisor.ml: Format List String
