lib/model/formulas.ml:
