lib/model/order_stats.mli: Dist Rng
