lib/model/service.mli:
