lib/model/order_stats.ml: Array Dist Float
