lib/model/latency_model.ml: Array Dist Float List Order_stats Paxi_quorum Queueing Region Service Stdlib Topology
