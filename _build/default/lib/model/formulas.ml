let load ~leaders ~conflict ~quorum =
  assert (leaders >= 1 && quorum >= 1);
  assert (conflict >= 0.0 && conflict <= 1.0);
  let l = float_of_int leaders and q = float_of_int quorum in
  (1.0 +. conflict) *. (q +. l -. 2.0) /. l

let capacity ~leaders ~conflict ~quorum =
  1.0 /. load ~leaders ~conflict ~quorum

let load_paxos ~n = float_of_int (n / 2)

let load_epaxos ~n ~conflict =
  let nf = float_of_int n in
  (1.0 +. conflict) *. (float_of_int (n / 2) +. nf -. 1.0) /. nf

let load_wpaxos ~n ~leaders =
  let l = float_of_int leaders in
  ((float_of_int n /. l) +. l -. 2.0) /. l

let latency ~conflict ~locality ~dl_ms ~dq_ms =
  (1.0 +. conflict)
  *. (((1.0 -. locality) *. (dl_ms +. dq_ms)) +. (locality *. dq_ms))

let table4 =
  [
    ("L (leaders)", [ "epaxos"; "wpaxos" ]);
    ("c (conflicts)", [ "generalized-paxos"; "epaxos" ]);
    ("Q (quorum)", [ "fpaxos"; "wpaxos" ]);
    ("l (locality)", [ "vpaxos"; "wpaxos"; "wankeeper" ]);
  ]
