(** The protocol-selection flowchart of Figure 14, as a decision
    function: given the deployment's characteristics, which category
    of protocol fits, with the paper's rationale. *)

type locality = No_locality | Static_locality | Dynamic_locality

type deployment = {
  needs_consensus : bool;
      (** some coordination needs are served by weaker primitives *)
  wan : bool;
  read_heavy : bool;  (** more reads than writes *)
  locality : locality;
  region_failure_concern : bool;
}

type recommendation = {
  category : string;
  protocols : string list;
  rationale : string;
}

val recommend : deployment -> recommendation

val all_paths : (deployment * recommendation) list
(** Every distinct path through the flowchart, for tests and for
    printing the full decision table. *)

val pp : Format.formatter -> recommendation -> unit
