(** Single-queue waiting-time approximations — Table 1 of the paper.

    Each node is one queue combining CPU and NIC (§3.2). Given an
    arrival rate [lambda] (rounds/sec) and a service rate [mu]
    (rounds/sec), these return the expected queue waiting time Wq in
    {e seconds}; callers convert to ms. All models require utilization
    [rho = lambda / mu < 1]; saturated queues return [infinity]. *)

type kind =
  | Mm1  (** Poisson arrivals, exponential service *)
  | Md1  (** Poisson arrivals, constant service *)
  | Mg1 of { service_cv2 : float }
      (** Poisson arrivals, general service with squared coefficient
          of variation [service_cv2] = σ²µ² *)
  | Gg1 of { arrival_cv2 : float; service_cv2 : float }
      (** Allen–Cunneen style approximation for general arrivals and
          service *)

val wait_time : kind -> lambda:float -> mu:float -> float
(** Expected wait Wq (seconds). *)

val utilization : lambda:float -> mu:float -> float
val is_stable : lambda:float -> mu:float -> bool

val sojourn_time : kind -> lambda:float -> mu:float -> float
(** Wq + service time 1/µ. *)

val pp_kind : Format.formatter -> kind -> unit
