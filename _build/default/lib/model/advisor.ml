type locality = No_locality | Static_locality | Dynamic_locality

type deployment = {
  needs_consensus : bool;
  wan : bool;
  read_heavy : bool;
  locality : locality;
  region_failure_concern : bool;
}

type recommendation = {
  category : string;
  protocols : string list;
  rationale : string;
}

let no_consensus =
  {
    category = "no consensus needed";
    protocols = [ "atomic-storage"; "chain-replication"; "eventual-consistency" ];
    rationale =
      "Consensus implements SMR for critical coordination; read/write \
       linearizability alone does not require it.";
  }

let lan_single_leader =
  {
    category = "single-leader LAN";
    protocols = [ "paxos"; "raft"; "zab" ];
    rationale =
      "Small LAN deployments keep decent performance with a single \
       leader and benefit from implementation simplicity.";
  }

let leaderless =
  {
    category = "leaderless";
    protocols = [ "generalized-paxos"; "epaxos" ];
    rationale =
      "Read-heavy workloads have few interfering commands, so the \
       opportunistic-leader fast path usually applies.";
  }

let sharded_static =
  {
    category = "static sharding";
    protocols = [ "paxos-groups" ];
    rationale =
      "Static locality means a sharding technique already places data \
       optimally.";
  }

let hierarchical_regional =
  {
    category = "hierarchical / master-managed, single-region groups";
    protocols = [ "vpaxos"; "wankeeper" ];
    rationale =
      "Without region-failure concerns, replica groups can live inside \
       one region under a master or hierarchical architecture.";
  }

let adaptive_multileader =
  {
    category = "adaptive multi-leader";
    protocols = [ "wpaxos"; "vpaxos-cross-region" ];
    rationale =
      "Dynamic locality plus region fault tolerance calls for a \
       multi-leader protocol that adapts object ownership and uses \
       cross-region quorums.";
  }

let recommend d =
  if not d.needs_consensus then no_consensus
  else if not d.wan then lan_single_leader
  else
    match d.locality with
    | No_locality -> if d.read_heavy then leaderless else lan_single_leader
    | Static_locality -> sharded_static
    | Dynamic_locality ->
        if d.region_failure_concern then adaptive_multileader
        else hierarchical_regional

let all_paths =
  let base =
    {
      needs_consensus = true;
      wan = true;
      read_heavy = false;
      locality = No_locality;
      region_failure_concern = false;
    }
  in
  let cases =
    [
      { base with needs_consensus = false };
      { base with wan = false };
      { base with read_heavy = true };
      base;
      { base with locality = Static_locality };
      { base with locality = Dynamic_locality; region_failure_concern = false };
      { base with locality = Dynamic_locality; region_failure_concern = true };
    ]
  in
  List.map (fun d -> (d, recommend d)) cases

let pp ppf r =
  Format.fprintf ppf "%s: consider %s — %s" r.category
    (String.concat ", " r.protocols)
    r.rationale
