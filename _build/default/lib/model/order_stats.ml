let kth_of_n dist rng ~k ~n ~trials =
  assert (k >= 1 && k <= n && trials > 0);
  let sample = Array.make n 0.0 in
  let acc = ref 0.0 in
  for _ = 1 to trials do
    for i = 0 to n - 1 do
      sample.(i) <- Dist.sample dist rng
    done;
    Array.sort Float.compare sample;
    acc := !acc +. sample.(k - 1)
  done;
  !acc /. float_of_int trials

let kth_of_samples rtts ~k =
  let n = Array.length rtts in
  assert (k >= 1 && k <= n);
  let sorted = Array.copy rtts in
  Array.sort Float.compare sorted;
  sorted.(k - 1)

let quorum_rtt_lan ~mu ~sigma ~quorum ~n rng =
  if quorum <= 1 then 0.0
  else
    kth_of_n (Dist.normal_pos ~mu ~sigma) rng ~k:(quorum - 1) ~n:(n - 1)
      ~trials:2000

let quorum_rtt_wan ~rtts ~quorum =
  if quorum <= 1 then 0.0 else kth_of_samples rtts ~k:(quorum - 1)
