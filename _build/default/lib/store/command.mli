(** Client commands over the key-value state machine.

    A command records who issued it and a unique identifier, so that
    replicas can deduplicate and the offline checkers can match
    invocations to responses. The conflict relation ([same key, at
    least one write]) is the one EPaxos and the paper's workload
    generator use. *)

type key = int
type value = int

type op =
  | Get of key
  | Put of key * value
  | Delete of key

type t = { id : int; client : int; op : op }

val make : id:int -> client:int -> op -> t
val key : t -> key
val is_write : t -> bool
val is_read : t -> bool

val conflicts : t -> t -> bool
(** Two commands interfere when they touch the same key and at least
    one of them writes. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val noop : t
(** Distinguished no-op used to fill recovered log slots. *)

val is_noop : t -> bool
