type key = int
type value = int
type op = Get of key | Put of key * value | Delete of key
type t = { id : int; client : int; op : op }

let make ~id ~client op = { id; client; op }
let key t = match t.op with Get k | Put (k, _) | Delete k -> k
let is_write t = match t.op with Put _ | Delete _ -> true | Get _ -> false
let is_read t = not (is_write t)

let noop = { id = -1; client = -1; op = Get (-1) }
let is_noop t = t.id = -1

let conflicts a b =
  (not (is_noop a)) && (not (is_noop b))
  && key a = key b
  && (is_write a || is_write b)

let equal a b = a.id = b.id && a.client = b.client && a.op = b.op

let compare a b =
  match Int.compare a.client b.client with
  | 0 -> Int.compare a.id b.id
  | c -> c

let pp ppf t =
  if is_noop t then Format.fprintf ppf "noop"
  else
    match t.op with
    | Get k -> Format.fprintf ppf "c%d#%d:get(%d)" t.client t.id k
    | Put (k, v) -> Format.fprintf ppf "c%d#%d:put(%d,%d)" t.client t.id k v
    | Delete k -> Format.fprintf ppf "c%d#%d:del(%d)" t.client t.id k
