type version = {
  value : Command.value option;
  seq : int;
  writer : Command.t;
}

type t = { table : (Command.key, version list ref) Hashtbl.t }
(* Version chains are stored newest-first for O(1) writes. *)

let create () = { table = Hashtbl.create 64 }

let chain t k =
  match Hashtbl.find_opt t.table k with
  | Some c -> c
  | None ->
      let c = ref [] in
      Hashtbl.add t.table k c;
      c

let get t k =
  match Hashtbl.find_opt t.table k with
  | Some { contents = v :: _ } -> v.value
  | _ -> None

let append t writer k value =
  let c = chain t k in
  let seq = 1 + match !c with [] -> 0 | v :: _ -> v.seq in
  c := { value; seq; writer } :: !c

let put t writer k v = append t writer k (Some v)
let delete t writer k = append t writer k None

let versions t k =
  match Hashtbl.find_opt t.table k with
  | Some c -> List.rev !c
  | None -> []

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table []
let size t = Hashtbl.length t.table
