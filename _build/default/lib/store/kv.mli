(** In-memory multi-version key-value datastore (§4.1 Data store).

    Every write creates a new version; the full version chain of every
    key is retained so the consensus checker can compare per-node
    histories, as the paper does with its multi-version store. *)

type t

type version = {
  value : Command.value option;  (** [None] for a delete *)
  seq : int;  (** position in this key's version chain, from 1 *)
  writer : Command.t;  (** the command that created this version *)
}

val create : unit -> t
val get : t -> Command.key -> Command.value option
(** Latest live value; [None] if absent or deleted. *)

val put : t -> Command.t -> Command.key -> Command.value -> unit
val delete : t -> Command.t -> Command.key -> unit
val versions : t -> Command.key -> version list
(** Oldest first. *)

val keys : t -> Command.key list
val size : t -> int
(** Number of keys ever written. *)
