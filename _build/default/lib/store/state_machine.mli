(** Deterministic replicated state machine over the multi-version
    store. Each replica owns one instance; commands are applied in
    commit order, and the full applied sequence is retained for the
    consensus checker (common-prefix validation across replicas). *)

type t

type result = { command : Command.t; read : Command.value option }
(** What a command execution returned: reads carry the value observed,
    writes echo [None]. *)

val create : unit -> t
val apply : t -> Command.t -> result
(** Apply the next committed command. No-ops leave the store
    untouched. Duplicate application of the same command id is applied
    again (deduplication is the protocol's job); tests rely on this to
    catch protocols that double-commit. *)

val applied : t -> Command.t list
(** All applied commands, oldest first. *)

val applied_count : t -> int
val store : t -> Kv.t
val key_history : t -> Command.key -> Command.t list
(** Writers of each version of [key], oldest first — the per-record
    history H^r the consensus checker collects from every node. *)
