lib/store/state_machine.mli: Command Kv
