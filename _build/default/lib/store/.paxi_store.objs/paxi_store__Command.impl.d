lib/store/command.ml: Format Int
