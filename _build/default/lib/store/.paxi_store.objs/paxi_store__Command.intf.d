lib/store/command.mli: Format
