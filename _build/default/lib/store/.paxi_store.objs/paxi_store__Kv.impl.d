lib/store/kv.ml: Command Hashtbl List
