lib/store/kv.mli: Command
