lib/store/state_machine.ml: Command Kv List
