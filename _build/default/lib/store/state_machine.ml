type result = { command : Command.t; read : Command.value option }

type t = { kv : Kv.t; mutable applied_rev : Command.t list; mutable n : int }

let create () = { kv = Kv.create (); applied_rev = []; n = 0 }

let apply t cmd =
  let read =
    if Command.is_noop cmd then None
    else
      match cmd.Command.op with
      | Command.Get k -> Kv.get t.kv k
      | Command.Put (k, v) ->
          Kv.put t.kv cmd k v;
          None
      | Command.Delete k ->
          Kv.delete t.kv cmd k;
          None
  in
  t.applied_rev <- cmd :: t.applied_rev;
  t.n <- t.n + 1;
  { command = cmd; read }

let applied t = List.rev t.applied_rev
let applied_count t = t.n
let store t = t.kv

let key_history t k = List.map (fun v -> v.Kv.writer) (Kv.versions t.kv k)
