lib/core/executor.ml: Command Hashtbl State_machine
