lib/core/slot_log.ml: Array
