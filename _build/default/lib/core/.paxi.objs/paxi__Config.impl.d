lib/core/config.ml: In_channel Json List Printf Result
