lib/core/executor.mli: Command State_machine
