lib/core/json.mli:
