lib/core/proto.ml: Address Command Config Executor Rng Sim Topology
