lib/core/config.mli: Json
