lib/core/cluster.mli: Address Command Config Faults Proto Region Sim Topology
