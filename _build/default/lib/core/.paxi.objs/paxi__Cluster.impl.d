lib/core/cluster.ml: Address Array Command Config Faults Hashtbl List Printf Procq Proto Rng Sim Topology Transport
