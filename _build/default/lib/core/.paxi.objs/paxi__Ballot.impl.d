lib/core/ballot.ml: Format Int
