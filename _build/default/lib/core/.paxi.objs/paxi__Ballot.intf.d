lib/core/ballot.mli: Format
