lib/core/proto.mli: Address Command Config Executor Rng Sim Topology
