lib/core/slot_log.mli:
