(** Paxos ballot numbers: a round counter paired with the proposing
    replica's id, totally ordered with the counter as the high-order
    component so any two distinct proposers always have comparable,
    distinct ballots. *)

type t = { round : int; owner : int }

val zero : t
(** The null ballot; smaller than any ballot a replica produces. *)

val initial : owner:int -> t
val next : t -> owner:int -> t
(** Smallest ballot owned by [owner] strictly greater than [t]. *)

val succ : t -> t
(** Next round for the same owner. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
