type t = { round : int; owner : int }

let zero = { round = 0; owner = -1 }
let initial ~owner = { round = 1; owner }
let next t ~owner = { round = t.round + 1; owner }
let succ t = { round = t.round + 1; owner = t.owner }

let compare a b =
  match Int.compare a.round b.round with
  | 0 -> Int.compare a.owner b.owner
  | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let pp ppf t = Format.fprintf ppf "%d.%d" t.round t.owner
