(** Mencius (Mao et al., OSDI 2008) — the rotating-leader approach the
    paper cites among multi-leader WAN designs (§5.2 [29]).

    The slot space is partitioned round-robin: replica [i] owns slots
    [s] with [s mod N = i] and can propose in its own slots without
    phase-1. A replica that receives another owner's accept for a slot
    beyond its own next slot immediately {e skips} its intervening
    slots (committing no-ops) so the global execution frontier never
    waits on an idle owner — Mencius' key mechanism.

    Every replica serves client requests in its own slots, so load
    spreads like other multi-leader protocols, but every command still
    waits on a majority that includes the slot order. Leader-failure
    revocation (stealing a crashed owner's slots) is not implemented;
    availability experiments use the other protocols. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float
val executor : replica -> Executor.t
val next_owned_slot : replica -> int
val skips_issued : replica -> int
val committed_count : replica -> int
