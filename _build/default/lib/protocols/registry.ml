let all : (string * (module Proto.RUNNABLE)) list =
  [
    ("paxos", (module Paxos));
    ("fpaxos", (module Fpaxos));
    ("raft", (module Raft));
    ("epaxos", (module Epaxos));
    ("wpaxos", (module Wpaxos));
    ("wankeeper", (module Wankeeper));
    ("vpaxos", (module Vpaxos));
    ("mencius", (module Mencius));
    ("abd", (module Abd));
    ("chain", (module Chain));
  ]

let names = List.map fst all
let find name = List.assoc_opt name all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "unknown protocol %S (known: %s)" name
           (String.concat ", " names))
