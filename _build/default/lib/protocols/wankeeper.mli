(** WanKeeper (§2): hierarchical two-level consensus with a token
    broker.

    Each region runs a level-1 replication group ({!Group}) with a
    fixed leader; one region (the [config.master_region_index]-th)
    additionally hosts the level-2 master. Commands on an object
    execute in the region group that holds the object's token. Tokens
    start at the master; when several regions contend for the same
    object the master retracts the token and executes those commands
    itself in its own group, and once accesses settle on one region
    (the consecutive-access threshold) the master passes the token
    down so that region commits with local latency — the behaviour
    behind Ohio's flat latency curve in Fig. 11b and its win in
    Fig. 13a.

    Token movement carries the object's latest value, which the
    receiving leader re-commits in its group as a sync write, keeping
    reads linearizable across moves. Master failure recovery is not
    implemented (not exercised by the paper's experiments). *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float
val executor : replica -> Executor.t
val is_master : replica -> bool
val is_zone_leader : replica -> bool
val tokens_held : replica -> int
(** Number of keys whose token this replica's zone currently holds
    (meaningful at zone leaders). *)

val grants : replica -> int
(** Tokens granted (meaningful at the master). *)

val retractions : replica -> int
