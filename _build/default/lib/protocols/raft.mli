(** Raft consensus (Ongaro & Ousterhout 2014), implemented
    independently from {!Paxos} as the paper's Fig. 7 does with etcd:
    randomized election timeouts, terms, per-follower [next_index]
    replication with consistency checks, and majority commit. It is
    deliberately a separate code path so the Paxos/Raft comparison
    exercises two implementations of the single-leader approach. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float

type role = Follower | Candidate | Leader

val role : replica -> role
val current_term : replica -> int
val commit_index : replica -> int
val executor : replica -> Executor.t
val log_length : replica -> int
val log_term_at : replica -> int -> int option
