(** Egalitarian Paxos (EPaxos, §2): leaderless consensus where every
    replica opportunistically leads the commands it receives.

    A command leader pre-accepts a command with its dependency set (the
    latest interfering instances it knows) and sequence number. If a
    fast quorum of [⌈3N/4⌉] replicas reports identical attributes, the
    command commits in one round trip; otherwise the leader merges the
    reported attributes and runs a classic accept round on a majority
    (the conflict penalty the paper dissects in Fig. 11/12). Committed
    instances execute in dependency order: Tarjan's strongly-connected
    components over the dependency graph, components in reverse
    topological order, ties broken by sequence number.

    Failure recovery of orphaned instances (explicit-prepare) is not
    implemented; the paper's EPaxos experiments do not exercise
    replica failure. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float
(** EPaxos replicas pay [config.epaxos_penalty] on message processing
    for dependency bookkeeping, as in the paper's modeling (§5). *)

val executor : replica -> Executor.t
val committed_count : replica -> int
val executed_count : replica -> int
val fast_path_count : replica -> int
(** Commands this replica led that committed on the fast path. *)

val slow_path_count : replica -> int
