(** Vertical Paxos (§2), in the augmented form the paper evaluates
    (§5.3): per-region Paxos groups commit commands on the objects
    assigned to them, while a master group (in the
    [config.master_region_index] region) owns the object-to-group
    assignment and commits every reassignment through its own
    consensus before it takes effect — the control plane / data plane
    split of VPaxos.

    Object migration follows the same consecutive-remote-access
    policy as WPaxos/WanKeeper; on reassignment the old owner drains
    its in-flight proposals for the object, ships the object's latest
    value to the new owner, and the new owner re-commits it in its
    group before serving queued commands, so reads stay linearizable
    across migrations. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float
val executor : replica -> Executor.t
val is_master : replica -> bool
val is_zone_leader : replica -> bool
val assigned_zone : replica -> Command.key -> int option
(** This replica's view of which zone owns the key. *)

val migrations : replica -> int
(** Reassignments committed (meaningful at the master). *)
