(** ABD atomic storage (Attiya, Bar-Noy, Dolev) — the "Atomic Storage"
    recommendation of the paper's Figure-14 flowchart for deployments
    that need linearizable reads/writes but not state-machine
    replication ("consensus is not required to provide read/write
    linearizability").

    Multi-writer multi-reader registers over majority quorums, one
    register per key. A write first queries a majority for the
    highest tag, then stores the value under a strictly larger tag
    ((timestamp+1, writer)) at a majority. A read queries a majority,
    then writes the highest (tag, value) back to a majority before
    returning it, which makes reads linearizable. Every operation
    costs two majority round trips and no operation ever blocks behind
    a leader — there is none. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float
val executor : replica -> Executor.t
val stored_tag : replica -> Command.key -> (int * int) option
(** (timestamp, writer) currently stored at this replica. *)
