lib/protocols/raft.ml: Address Array Command Config Executor Hashtbl Int List Option Proto Queue Quorum Rng Slot_log Stdlib
