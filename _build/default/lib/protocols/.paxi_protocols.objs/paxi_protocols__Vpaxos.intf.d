lib/protocols/vpaxos.mli: Command Config Executor Proto
