lib/protocols/vpaxos.ml: Address Array Command Config Executor Group Hashtbl Kv List Option Proto Region State_machine Stdlib Topology
