lib/protocols/raft.mli: Config Executor Proto
