lib/protocols/epaxos.ml: Address Array Command Config Executor Hashtbl Int List Proto Quorum Stdlib
