lib/protocols/paxos.ml: Address Ballot Command Config Executor Float Hashtbl List Option Proto Queue Quorum Slot_log Stdlib Topology
