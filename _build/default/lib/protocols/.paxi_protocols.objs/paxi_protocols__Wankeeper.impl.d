lib/protocols/wankeeper.ml: Address Array Command Config Executor Group Hashtbl Kv List Option Proto State_machine Stdlib Topology
