lib/protocols/paxos.mli: Ballot Command Config Executor Proto
