lib/protocols/abd.mli: Command Config Executor Proto
