lib/protocols/fpaxos.ml: Config Paxos Proto
