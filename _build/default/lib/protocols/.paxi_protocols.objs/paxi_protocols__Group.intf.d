lib/protocols/group.mli: Address Command Executor Proto
