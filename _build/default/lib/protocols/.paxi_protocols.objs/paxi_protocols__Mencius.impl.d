lib/protocols/mencius.ml: Address Command Config Executor List Proto Quorum Slot_log Stdlib
