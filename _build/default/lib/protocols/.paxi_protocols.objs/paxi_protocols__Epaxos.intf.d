lib/protocols/epaxos.mli: Config Executor Proto
