lib/protocols/wankeeper.mli: Config Executor Proto
