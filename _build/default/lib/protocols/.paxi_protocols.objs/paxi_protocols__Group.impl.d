lib/protocols/group.ml: Address Command Executor List Proto Quorum Slot_log
