lib/protocols/abd.ml: Address Command Config Executor Hashtbl List Proto Quorum
