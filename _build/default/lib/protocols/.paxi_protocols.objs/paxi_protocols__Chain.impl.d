lib/protocols/chain.ml: Address Command Config Executor Hashtbl Proto
