lib/protocols/mencius.mli: Config Executor Proto
