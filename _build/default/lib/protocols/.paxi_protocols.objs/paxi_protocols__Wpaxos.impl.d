lib/protocols/wpaxos.ml: Address Array Ballot Command Config Executor Float Hashtbl List Proto Queue Quorum Region Slot_log Stdlib Topology
