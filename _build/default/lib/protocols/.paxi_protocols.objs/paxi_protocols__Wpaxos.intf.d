lib/protocols/wpaxos.mli: Command Config Executor Proto
