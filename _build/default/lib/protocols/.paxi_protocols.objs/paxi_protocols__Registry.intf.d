lib/protocols/registry.mli: Proto
