lib/protocols/fpaxos.mli: Config Executor Proto
