lib/protocols/chain.mli: Config Executor Proto
