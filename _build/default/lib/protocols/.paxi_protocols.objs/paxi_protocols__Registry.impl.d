lib/protocols/registry.ml: Abd Chain Epaxos Fpaxos List Mencius Paxos Printf Proto Raft String Vpaxos Wankeeper Wpaxos
