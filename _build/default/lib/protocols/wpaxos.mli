(** WPaxos (§2): a multi-leader Paxos variant for WANs built on
    flexible grid quorums.

    Every object (key) has its own ballot and its own log. A zone
    (region) leader acquires an object by running phase-1 over a
    quorum of majorities in [Z - fz] zones; it then commits commands
    on the object through phase-2 majorities in [fz + 1] zones —
    its own zone plus the [fz] nearest, so [fz = 0] commits with
    region-local latency and [fz = 1] tolerates a full region failure
    (the two configurations of Fig. 11/13). Object migration is just
    another phase-1 with a higher ballot: no external master is
    needed. Stealing follows the paper's three-consecutive-access
    adaptation policy, and [config.initial_object_owner] seeds
    ownership (the locality experiment starts all objects in Ohio).

    As in the paper's evaluation (§5), only [config.leaders_per_region]
    replicas per zone act as leaders; other replicas forward requests
    to a leader in their zone. *)

include Proto.PROTOCOL

val cpu_factor : Config.t -> float
val executor : replica -> Executor.t
val owns : replica -> Command.key -> bool
val owner_of : replica -> Command.key -> int option
val steals_started : replica -> int
val commands_committed : replica -> int
