(** Name-indexed registry of every protocol in the framework, for CLI
    tools and benchmark sweeps that select protocols at runtime. *)

val all : (string * (module Proto.RUNNABLE)) list
(** The six consensus families of §2 in the order the paper introduces
    them ([paxos; fpaxos; raft; epaxos; wpaxos; wankeeper; vpaxos]),
    plus the additional Figure-14 categories: [mencius]
    (rotating-leader), and the no-consensus alternatives [abd] (atomic
    storage) and [chain] (chain replication). *)

val names : string list
val find : string -> (module Proto.RUNNABLE) option
val find_exn : string -> (module Proto.RUNNABLE)
(** Raises [Invalid_argument] with the known names on a miss. *)
