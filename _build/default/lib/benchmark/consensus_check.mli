(** Consensus checker (§4.2): validates that replicated state machines
    agree, beyond what client-observed linearizability can show. For
    every data record it collects the per-key version history H^r from
    each node's multi-version store and verifies that all histories
    share a common prefix — diverging prefixes mean two nodes
    committed different commands for the same position. *)

type violation = {
  key : Command.key;
  node_a : int;
  node_b : int;
  position : int;  (** index where the histories diverge *)
}

val common_prefix : Command.t list -> Command.t list -> (unit, int) result
(** [Ok ()] when one history is a prefix of the other; [Error i] gives
    the first diverging index. *)

val check_key :
  key:Command.key -> histories:(int * Command.t list) list -> violation list
(** Pairwise common-prefix validation of one key's histories
    ([node_id, writers oldest-first]). *)

val check :
  state_machines:(int * State_machine.t) list ->
  keys:Command.key list ->
  violation list
(** Collect histories from each node's state machine and check every
    key. *)

val pp_violation : Format.formatter -> violation -> unit
