type violation = {
  key : Command.key;
  node_a : int;
  node_b : int;
  position : int;
}

let common_prefix a b =
  let rec go i a b =
    match (a, b) with
    | [], _ | _, [] -> Ok ()
    | x :: xs, y :: ys -> if Command.equal x y then go (i + 1) xs ys else Error i
  in
  go 0 a b

let check_key ~key ~histories =
  let rec pairs = function
    | [] -> []
    | (na, ha) :: rest ->
        List.filter_map
          (fun (nb, hb) ->
            match common_prefix ha hb with
            | Ok () -> None
            | Error position -> Some { key; node_a = na; node_b = nb; position })
          rest
        @ pairs rest
  in
  pairs histories

let check ~state_machines ~keys =
  List.concat_map
    (fun key ->
      let histories =
        List.map
          (fun (node, sm) -> (node, State_machine.key_history sm key))
          state_machines
      in
      check_key ~key ~histories)
    keys

let pp_violation ppf v =
  Format.fprintf ppf
    "key %d: nodes %d and %d diverge at version %d" v.key v.node_a v.node_b
    v.position
