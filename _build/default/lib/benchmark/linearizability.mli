(** Offline read/write linearizability checker (§4.2 Consistency),
    after the Facebook TAO checker the paper adopts: input is the list
    of operations per record sorted by invocation time; output is the
    list of anomalous reads — reads that returned a value they could
    not return in any linearizable execution.

    Writes carry unique values (the workload generator guarantees
    this), which makes every read's dictating write unambiguous and
    the check polynomial. Two anomaly rules:

    - {e stale read}: some other write finished after the dictating
      write finished and before the read began — the read returned an
      overwritten value;
    - {e future read}: the dictating write began only after the read
      completed.

    Reads of [None] are validated against the initial state: they are
    anomalous once any write has completed before the read began
    (delete-aware validation treats each delete as a candidate
    dictating write). *)

type op = {
  client : int;
  op_id : int;
  key : Command.key;
  kind : kind;
  invoked_ms : float;
  responded_ms : float;
}

and kind =
  | Write of Command.value
  | Del
  | Read of Command.value option

type anomaly = { read : op; reason : string }

val check_key : op list -> anomaly list
(** All operations must target the same key. *)

val check : op list -> anomaly list
(** Partitions by key and checks each. *)

val is_linearizable : op list -> bool
