let widths header rows =
  let all = header :: rows in
  let cols = List.length header in
  List.init cols (fun c ->
      List.fold_left
        (fun acc row ->
          match List.nth_opt row c with
          | Some cell -> Stdlib.max acc (String.length cell)
          | None -> acc)
        0 all)

let pad width s = s ^ String.make (Stdlib.max 0 (width - String.length s)) ' '

let table ~header ~rows ppf =
  let ws = widths header rows in
  let render row =
    List.mapi (fun c cell -> pad (List.nth ws c) cell) row
    |> String.concat "  "
  in
  Format.fprintf ppf "%s@." (render header);
  Format.fprintf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') ws));
  List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) rows

let print_table ~header ~rows =
  table ~header ~rows Format.std_formatter;
  Format.print_flush ()

let csv ~header ~rows =
  let line cells = String.concat "," cells in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let fms x =
  if Float.is_nan x || not (Float.is_finite x) then "-"
  else Printf.sprintf "%.3f" x

let frate x =
  if Float.is_nan x || not (Float.is_finite x) then "-"
  else Printf.sprintf "%.0f" x

let section title =
  let rule = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title rule
