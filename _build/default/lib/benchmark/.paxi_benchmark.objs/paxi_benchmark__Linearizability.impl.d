lib/benchmark/linearizability.ml: Command Float Hashtbl List Option Printf
