lib/benchmark/consensus_check.ml: Command Format List State_machine
