lib/benchmark/runner.ml: Address Cluster Command Config Consensus_check Executor Faults Hashtbl Kv Linearizability List Proto Region Rng Sim State_machine Stats Topology Workload
