lib/benchmark/workload.ml: Command Dist Printf Rng
