lib/benchmark/report.mli: Format
