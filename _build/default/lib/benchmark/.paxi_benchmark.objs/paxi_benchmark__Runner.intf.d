lib/benchmark/runner.mli: Config Consensus_check Faults Linearizability Proto Region Stats Topology Workload
