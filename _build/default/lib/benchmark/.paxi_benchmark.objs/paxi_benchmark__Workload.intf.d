lib/benchmark/workload.mli: Command Rng
