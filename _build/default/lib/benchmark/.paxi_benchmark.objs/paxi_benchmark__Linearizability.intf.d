lib/benchmark/linearizability.mli: Command
