lib/benchmark/consensus_check.mli: Command Format State_machine
