lib/benchmark/report.ml: Float Format List Printf Stdlib String
