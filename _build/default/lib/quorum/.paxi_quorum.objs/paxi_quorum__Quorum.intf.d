lib/quorum/quorum.mli:
