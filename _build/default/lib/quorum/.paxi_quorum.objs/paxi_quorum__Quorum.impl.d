lib/quorum/quorum.ml: Int List
