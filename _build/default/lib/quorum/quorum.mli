(** Quorum systems (§4.1): simple majority, fast quorums, grid,
    flexible grid and group quorums, behind the two-call interface the
    paper describes — [ack] votes and [satisfied] queries — plus
    offline intersection validators used by tests and by protocol
    configuration sanity checks.

    Replica identifiers are small integers [0 .. n-1]. *)

type spec =
  | Majority of int list
      (** A strict majority of the listed members. *)
  | Count of { members : int list; threshold : int }
      (** Any [threshold] of [members]; FPaxos phase-2 quorums are
          [Count] with [threshold < majority]. *)
  | Fast of int list
      (** EPaxos-style fast quorum: [⌈3n/4⌉] of the members. *)
  | Zones of { zones : int list list; need_zones : int; per_zone : per_zone }
      (** Zone-structured quorums: [need_zones] distinct zones must
          each contribute [per_zone]. WPaxos phase-1 uses
          [need_zones = Z - fz]; phase-2 uses [need_zones = fz + 1],
          both with [Per_zone_majority]. A classic grid quorum is one
          full row ([Per_zone_all] over rows) against one full
          column. *)

and per_zone = Per_zone_majority | Per_zone_all

val majority_threshold : int -> int
(** [⌊n/2⌋ + 1]. *)

val fast_threshold : int -> int
(** [⌈3n/4⌉]. *)

val members : spec -> int list
(** All replicas that may vote, without duplicates. *)

val min_size : spec -> int
(** Size of the smallest satisfying set. *)

(** {1 Vote trackers} *)

type t

val create : spec -> t
val ack : t -> int -> unit
(** Record a positive vote; unknown or duplicate voters are ignored. *)

val nack : t -> int -> unit
(** Record a rejection. *)

val satisfied : t -> bool
val rejected : t -> bool
(** [true] once enough members nacked that [satisfied] can never
    become true. *)

val acks : t -> int list
val nacks : t -> int list
val reset : t -> unit
val spec : t -> spec

(** {1 Static validation} *)

val is_quorum : spec -> int list -> bool
(** Does this exact set of acks satisfy the spec? *)

val minimal_quorums : spec -> int list list
(** All minimal satisfying sets. Exponential; intended for validating
    small configurations (n ≤ 16) in tests. *)

val intersects : spec -> spec -> bool
(** Every minimal quorum of one spec shares a member with every minimal
    quorum of the other — the FPaxos safety condition for q1/q2. *)
