(** Deployment regions. The paper's WAN experiments use five AWS
    regions: N. Virginia, Ohio, California, Ireland and Japan. *)

type t

val make : string -> t
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val local : t
(** The single region of a LAN deployment. *)

val virginia : t
val ohio : t
val california : t
val ireland : t
val japan : t

val aws_five : t list
(** [VA; OH; CA; IR; JP] in the paper's order. *)
