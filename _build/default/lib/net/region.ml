type t = string

let make s = s
let name t = t
let equal = String.equal
let compare = String.compare
let pp ppf t = Format.pp_print_string ppf t
let local = "local"
let virginia = "virginia"
let ohio = "ohio"
let california = "california"
let ireland = "ireland"
let japan = "japan"
let aws_five = [ virginia; ohio; california; ireland; japan ]
