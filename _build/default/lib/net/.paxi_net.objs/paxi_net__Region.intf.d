lib/net/region.mli: Format
