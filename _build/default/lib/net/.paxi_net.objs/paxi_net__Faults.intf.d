lib/net/faults.mli: Address Rng
