lib/net/faults.ml: Address List Rng
