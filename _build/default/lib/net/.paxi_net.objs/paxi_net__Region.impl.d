lib/net/region.ml: Format String
