lib/net/procq.mli:
