lib/net/address.mli: Format Hashtbl Map Set
