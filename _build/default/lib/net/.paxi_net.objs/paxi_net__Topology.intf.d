lib/net/topology.mli: Address Region Rng
