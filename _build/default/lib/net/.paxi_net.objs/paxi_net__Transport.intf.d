lib/net/transport.mli: Address Faults Procq Sim Topology
