lib/net/topology.ml: Address Array Float Hashtbl List Printf Region Rng
