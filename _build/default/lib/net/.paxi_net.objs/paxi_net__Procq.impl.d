lib/net/procq.ml: Float
