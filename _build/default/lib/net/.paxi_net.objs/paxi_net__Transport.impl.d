lib/net/transport.ml: Address Faults List Option Procq Rng Sim Topology
