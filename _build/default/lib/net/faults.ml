type window = { from_ms : float; until_ms : float }

let in_window w now = now >= w.from_ms && now < w.until_ms

type rule =
  | Crash of { node : Address.t; w : window }
  | Drop of { src : Address.t; dst : Address.t; w : window }
  | Slow of { src : Address.t; dst : Address.t; w : window; extra_ms : float }
  | Flaky of { src : Address.t; dst : Address.t; w : window; p_drop : float }
  | Partition of { groups : Address.Set.t list; w : window }

type t = { mutable rules : rule list }

let create () = { rules = [] }
let add t r = t.rules <- r :: t.rules

let window ~from_ms ~duration_ms =
  { from_ms; until_ms = from_ms +. duration_ms }

let crash t ~node ~from_ms ~duration_ms =
  add t (Crash { node; w = window ~from_ms ~duration_ms })

let drop t ~src ~dst ~from_ms ~duration_ms =
  add t (Drop { src; dst; w = window ~from_ms ~duration_ms })

let slow t ~src ~dst ~from_ms ~duration_ms ~extra_ms =
  add t (Slow { src; dst; w = window ~from_ms ~duration_ms; extra_ms })

let flaky t ~src ~dst ~from_ms ~duration_ms ~p_drop =
  add t (Flaky { src; dst; w = window ~from_ms ~duration_ms; p_drop })

let partition t ~groups ~from_ms ~duration_ms =
  let groups = List.map Address.Set.of_list groups in
  add t (Partition { groups; w = window ~from_ms ~duration_ms })

let is_crashed t ~now_ms node =
  List.exists
    (function
      | Crash { node = n; w } -> Address.equal n node && in_window w now_ms
      | _ -> false)
    t.rules

let link_matches ~src ~dst rule_src rule_dst =
  Address.equal src rule_src && Address.equal dst rule_dst

let partition_severed groups src dst =
  (* Severed when the two endpoints appear in different groups; nodes
     absent from every group communicate freely. *)
  let find a = List.find_opt (fun g -> Address.Set.mem a g) groups in
  match (find src, find dst) with
  | Some ga, Some gb -> not (ga == gb)
  | _ -> false

let should_drop t rng ~now_ms ~src ~dst =
  is_crashed t ~now_ms src || is_crashed t ~now_ms dst
  || List.exists
       (function
         | Drop { src = s; dst = d; w } ->
             in_window w now_ms && link_matches ~src ~dst s d
         | Flaky { src = s; dst = d; w; p_drop } ->
             in_window w now_ms && link_matches ~src ~dst s d
             && Rng.bernoulli rng ~p:p_drop
         | Partition { groups; w } ->
             in_window w now_ms && partition_severed groups src dst
         | Crash _ | Slow _ -> false)
       t.rules

let extra_delay t rng ~now_ms ~src ~dst =
  List.fold_left
    (fun acc rule ->
      match rule with
      | Slow { src = s; dst = d; w; extra_ms }
        when in_window w now_ms && link_matches ~src ~dst s d ->
          acc +. Rng.float rng extra_ms
      | _ -> acc)
    0.0 t.rules

let clear t = t.rules <- []
