(** Windowed event counting over virtual time, used to derive
    throughput (committed operations per second) from a run. *)

type t

val create : window_ms:float -> t
(** Buckets of width [window_ms]. *)

val record : t -> now_ms:float -> unit
(** Count one event at virtual time [now_ms]. *)

val record_n : t -> now_ms:float -> n:int -> unit

val rate_per_sec : t -> from_ms:float -> until_ms:float -> float
(** Average events/second over the half-open interval
    [\[from_ms, until_ms)]. *)

val total : t -> int

val buckets : t -> (float * int) list
(** [(bucket_start_ms, count)] for every non-empty bucket, sorted. *)
