(* Array-backed binary min-heap ordered by (time, seq). *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nh = Array.make ncap t.heap.(0) in
  Array.blit t.heap 0 nh 0 t.size;
  t.heap <- nh

let push t ~time payload =
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  if t.size >= Array.length t.heap then grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t = t.size <- 0
