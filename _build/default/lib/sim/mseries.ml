type t = {
  window_ms : float;
  counts : (int, int ref) Hashtbl.t;
  mutable total : int;
}

let create ~window_ms =
  assert (window_ms > 0.0);
  { window_ms; counts = Hashtbl.create 64; total = 0 }

let bucket_of t now_ms = int_of_float (now_ms /. t.window_ms)

let record_n t ~now_ms ~n =
  let b = bucket_of t now_ms in
  (match Hashtbl.find_opt t.counts b with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counts b (ref n));
  t.total <- t.total + n

let record t ~now_ms = record_n t ~now_ms ~n:1

let rate_per_sec t ~from_ms ~until_ms =
  if until_ms <= from_ms then 0.0
  else begin
    let acc = ref 0 in
    Hashtbl.iter
      (fun b r ->
        let start = float_of_int b *. t.window_ms in
        if start >= from_ms && start < until_ms then acc := !acc + !r)
      t.counts;
    float_of_int !acc /. ((until_ms -. from_ms) /. 1000.0)
  end

let total t = t.total

let buckets t =
  Hashtbl.fold
    (fun b r acc -> (float_of_int b *. t.window_ms, !r) :: acc)
    t.counts []
  |> List.sort compare
