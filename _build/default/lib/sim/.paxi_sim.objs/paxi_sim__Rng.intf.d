lib/sim/rng.mli:
