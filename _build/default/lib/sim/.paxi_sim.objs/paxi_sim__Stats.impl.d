lib/sim/stats.ml: Array Float Format Int List Stdlib
