lib/sim/mseries.mli:
