lib/sim/mseries.ml: Hashtbl List
