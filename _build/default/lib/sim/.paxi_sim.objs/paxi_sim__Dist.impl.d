lib/sim/dist.ml: Array Float Int Rng
