module V = Paxi_protocols.Vpaxos
module H = Proto_harness.Make (Paxi_protocols.Vpaxos)

let put k v = Command.Put (k, v)
let get k = Command.Get k

(* master in Ohio, objects start in Ohio — the §5.3 locality setup *)
let wan ?(owner = Some 1) () =
  let config =
    {
      (Config.default ~n_replicas:9) with
      Config.master_region_index = 1;
      initial_object_owner = owner;
    }
  in
  H.wan3 ~config ()

let test_roles () =
  let h = wan () in
  H.run_for h 10.0;
  Alcotest.(check bool) "replica 1 is master" true (V.is_master (H.replica h 1));
  Alcotest.(check bool) "replica 0 leads VA" true (V.is_zone_leader (H.replica h 0))

let test_initial_assignment () =
  let h = wan () in
  H.run_for h 10.0;
  Alcotest.(check (option int)) "keys start in ohio zone" (Some 1)
    (V.assigned_zone (H.replica h 0) 77)

let test_owner_zone_commits () =
  let h = wan () in
  let oh = H.new_client h ~region:Region.ohio in
  let replies = H.submit_seq h ~client:oh ~target:1 [ put 1 10; get 1 ] in
  Alcotest.(check int) "committed" 2 (List.length replies);
  Alcotest.(check (option int)) "read" (Some 10) (List.nth replies 1).Proto.read

let test_remote_access_forwards () =
  let h = wan () in
  let va = H.new_client h ~region:Region.virginia in
  let replies = H.submit_seq h ~client:va ~target:0 [ put 2 20 ] in
  Alcotest.(check int) "committed at owner" 1 (List.length replies);
  Alcotest.(check int) "ohio leader replied" 1 (List.hd replies).Proto.replier

let test_migration_after_streak () =
  let h = wan () in
  let va = H.new_client h ~region:Region.virginia in
  ignore (H.submit_seq h ~client:va ~target:0 (List.init 8 (fun i -> put 3 i)));
  H.run_for h 5_000.0;
  Alcotest.(check bool) "migrated" true (V.migrations (H.replica h 1) >= 1);
  Alcotest.(check (option int)) "VA owns key 3 now" (Some 0)
    (V.assigned_zone (H.replica h 1) 3);
  (* later VA accesses are region-local and answered by the VA leader *)
  let replies = H.submit_seq h ~client:va ~target:0 [ get 3 ] in
  Alcotest.(check int) "VA leader replies" 0 (List.hd replies).Proto.replier;
  (* replication is per zone group: check VA's and OH's groups *)
  H.assert_consistent ~replicas:[ 0; 3; 6 ] h;
  H.assert_consistent ~replicas:[ 1; 4; 7 ] h

let test_state_travels_with_migration () =
  let h = wan () in
  let va = H.new_client h ~region:Region.virginia in
  ignore (H.submit_seq h ~client:va ~target:0 (List.init 8 (fun i -> put 4 i)));
  H.run_for h 5_000.0;
  let replies = H.submit_seq h ~client:va ~target:0 [ get 4 ] in
  Alcotest.(check (option int)) "last write visible after migration" (Some 7)
    (List.hd replies).Proto.read

let test_fresh_key_assigned_to_requester () =
  let h = wan ~owner:None () in
  let ca = H.new_client h ~region:Region.california in
  let replies = H.submit_seq h ~client:ca ~target:2 [ put 5 50; get 5 ] in
  Alcotest.(check int) "committed" 2 (List.length replies);
  Alcotest.(check (option int)) "assigned to CA zone" (Some 2)
    (V.assigned_zone (H.replica h 1) 5)

let test_ping_pong_contention_converges () =
  let h = wan () in
  let va = H.new_client h ~region:Region.virginia in
  let ca = H.new_client h ~region:Region.california in
  let module C = H.C in
  let replies = ref 0 in
  for i = 0 to 19 do
    let va_cmd = Command.make ~id:i ~client:va (put 6 i) in
    let ca_cmd = Command.make ~id:i ~client:ca (put 6 (100 + i)) in
    ignore
      (Sim.schedule_at (H.sim h)
         ~time:(float_of_int i *. 150.0)
         (fun () ->
           C.submit h.H.cluster ~client:va ~target:0 ~command:va_cmd
             ~on_reply:(fun _ -> incr replies);
           C.submit h.H.cluster ~client:ca ~target:2 ~command:ca_cmd
             ~on_reply:(fun _ -> incr replies)))
  done;
  H.run_for h 180_000.0;
  Alcotest.(check int) "all commit under contention" 40 !replies;
  List.iter (fun zone -> H.assert_consistent ~replicas:zone h)
    [ [ 0; 3; 6 ]; [ 1; 4; 7 ]; [ 2; 5; 8 ] ]

let test_per_region_locality_distribution () =
  let h = wan () in
  List.iteri
    (fun i region ->
      let c = H.new_client h ~region in
      ignore
        (H.submit_seq h ~client:c ~target:(i)
           (List.init 10 (fun j -> put ((i * 100) + (j mod 2)) j))))
    [ Region.virginia; Region.ohio; Region.california ];
  H.run_for h 10_000.0;
  (* VA's keys migrated to zone 0, CA's to zone 2 *)
  Alcotest.(check (option int)) "VA key" (Some 0) (V.assigned_zone (H.replica h 1) 0);
  Alcotest.(check (option int)) "OH key" (Some 1) (V.assigned_zone (H.replica h 1) 100);
  Alcotest.(check (option int)) "CA key" (Some 2) (V.assigned_zone (H.replica h 1) 200)

let suite =
  ( "vpaxos",
    [
      Alcotest.test_case "roles" `Quick test_roles;
      Alcotest.test_case "initial assignment" `Quick test_initial_assignment;
      Alcotest.test_case "owner zone commits" `Quick test_owner_zone_commits;
      Alcotest.test_case "remote access forwards" `Quick test_remote_access_forwards;
      Alcotest.test_case "migration after streak" `Quick test_migration_after_streak;
      Alcotest.test_case "state travels with migration" `Quick test_state_travels_with_migration;
      Alcotest.test_case "fresh key assigned to requester" `Quick test_fresh_key_assigned_to_requester;
      Alcotest.test_case "ping-pong contention converges" `Quick test_ping_pong_contention_converges;
      Alcotest.test_case "per-region locality distribution" `Quick test_per_region_locality_distribution;
    ] )
